package idl

import (
	"strings"
	"testing"
)

// Schema enforcement end to end: declared constraints guard every update
// request, including those issued through update programs and view
// updates (the §8 extension wired into §5/§7 machinery).

func declareStockSchema(t *testing.T, db *DB) {
	t.Helper()
	err := db.Schema().Declare(RelDecl{
		DB: "euter", Rel: "r",
		Attrs: []AttrDecl{
			{Name: "date", Type: DateType, Required: true},
			{Name: "stkCode", Type: StringType, Required: true},
			{Name: "clsPrice", Type: NumberType},
		},
		Key: []string{"date", "stkCode"},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSchemaAllowsValidInsert(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	declareStockSchema(t, db)
	if _, err := db.Exec("?.euter.r+(.date=3/4/85, .stkCode=hp, .clsPrice=70)"); err != nil {
		t.Fatalf("valid insert rejected: %v", err)
	}
}

func TestSchemaRejectsTypeViolation(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	declareStockSchema(t, db)
	_, err := db.Exec(`?.euter.r+(.date=3/4/85, .stkCode=hp, .clsPrice=cheap)`)
	if err == nil || !strings.Contains(err.Error(), "type violation") {
		t.Fatalf("err = %v", err)
	}
	// And the insert was rolled back.
	res, _ := db.Query("?.euter.r(.date=3/4/85)")
	if res.Bool() {
		t.Error("violating insert should be rolled back")
	}
}

func TestSchemaRejectsMissingRequired(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	declareStockSchema(t, db)
	if _, err := db.Exec("?.euter.r+(.date=3/4/85, .clsPrice=70)"); err == nil {
		t.Fatal("missing required stkCode should be rejected")
	}
}

func TestSchemaKeyEnforcedThroughPrograms(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	declareStockSchema(t, db)
	if err := db.DefineProgram(".dbU.ins(.stk=S, .date=D, .price=P) -> .euter.r+(.stkCode=S, .date=D, .clsPrice=P)"); err != nil {
		t.Fatal(err)
	}
	// First insert via program OK; second violates the (date, stkCode) key.
	if _, err := db.Exec("?.dbU.ins(.stk=newco, .date=3/4/85, .price=1)"); err != nil {
		t.Fatal(err)
	}
	_, err := db.Exec("?.dbU.ins(.stk=newco, .date=3/4/85, .price=2)")
	if err == nil || !strings.Contains(err.Error(), "key violation") {
		t.Fatalf("err = %v", err)
	}
	// Rollback left exactly the first quote.
	res, _ := db.Query("?.euter.r(.stkCode=newco, .clsPrice=P)")
	if res.Len() != 1 || !res.Contains(Row{"P": Int(1)}) {
		t.Errorf("state after rollback:\n%s", res)
	}
}

func TestSchemaForeignKeyAcrossDatabases(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	db.Catalog().Insert("registry", "listed",
		Tup("code", "hp"), Tup("code", "ibm"), Tup("code", "sun"))
	if err := db.Schema().Declare(RelDecl{
		DB: "euter", Rel: "r",
		ForeignKeys: []ForeignKey{{From: "stkCode", RefDB: "registry", RefRel: "listed", To: "code"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("?.euter.r+(.date=3/4/85, .stkCode=hp, .clsPrice=70)"); err != nil {
		t.Fatalf("listed stock rejected: %v", err)
	}
	_, err := db.Exec("?.euter.r+(.date=3/4/85, .stkCode=unlisted, .clsPrice=70)")
	if err == nil || !strings.Contains(err.Error(), "foreign-key") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateSchemaBulkLoad(t *testing.T) {
	db := Open()
	declareStockSchema(t, db)
	// Bulk loads bypass per-request validation…
	db.Catalog().Insert("euter", "r", Tup("stkCode", "hp")) // missing date
	// …but explicit validation catches them.
	if err := db.ValidateSchema(); err == nil {
		t.Error("ValidateSchema should report the bad bulk row")
	}
	// Without declarations ValidateSchema is a no-op.
	fresh := Open()
	if err := fresh.ValidateSchema(); err != nil {
		t.Errorf("no-schema validate = %v", err)
	}
}

func TestSchemaReifiedQueryable(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	declareStockSchema(t, db)
	// Publish the declarations as data, then query them with IDL.
	reified := db.Schema().Reify()
	db.Engine().Base().Put("constraints", reified)
	db.Engine().Invalidate()
	res, err := db.Query("?.constraints.keys(.db=euter, .rel=r, .attr=A)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("reified keys:\n%s", res)
	}
	res, err = db.Query(`?.constraints.types(.attr=clsPrice, .type=T)`)
	if err != nil || !res.Contains(Row{"T": Str("number")}) {
		t.Errorf("reified types: %v, %v", res, err)
	}
}
