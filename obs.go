package idl

import (
	"context"
	"fmt"

	"idl/internal/ast"
	"idl/internal/core"
	"idl/internal/federation"
	"idl/internal/obs"
	"idl/internal/parser"
)

// Observability facade. A DB can expose a metrics registry (counters,
// gauges, latency histograms across the engine, federation, and storage
// layers) and a hierarchical span tracer. Both are off by default and
// cost a single nil check per instrumented operation until enabled.

type (
	// MetricsRegistry is a named collection of counters, gauges, and
	// latency histograms, safe for concurrent use.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time, sorted copy of a registry.
	MetricsSnapshot = obs.Snapshot
	// QueryTracer retains the span trees of recent engine operations.
	QueryTracer = obs.Tracer
	// QuerySpan is one timed node in an operation's span tree.
	QuerySpan = obs.Span
	// SLOStatus is one SLO tracker's point-in-time report (burn rate,
	// window counts) as returned inside DB.Health().
	SLOStatus = obs.SLOStatus
	// WindowSnapshot is a rolling-window histogram's merged distribution.
	WindowSnapshot = obs.WindowSnapshot
	// ExplainPlan is a query evaluation plan; after ExplainAnalyze each
	// step also carries measured actuals.
	ExplainPlan = core.Explain
)

// Metrics returns the DB's metrics registry, creating it on first use
// and attaching it to the engine, the federation catalog, and storage
// operations. Subsequent calls return the same registry.
func (db *DB) Metrics() *MetricsRegistry {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.metricsLocked()
}

// metricsLocked lazily creates and wires the registry; callers hold
// db.mu.
func (db *DB) metricsLocked() *obs.Registry {
	if db.metrics == nil {
		db.metrics = obs.NewRegistry()
		db.engine.SetMetrics(db.metrics)
		db.cat.SetMetrics(db.metrics)
		if db.wal != nil {
			db.wal.SetMetrics(db.metrics)
		}
		if db.snapshotBytes > 0 {
			db.metrics.Gauge("storage.snapshot_bytes").Set(db.snapshotBytes)
		}
	}
	return db.metrics
}

// metricsRef returns the registry without creating one (nil when
// metrics are off; all registry methods are nil-safe no-ops).
func (db *DB) metricsRef() *obs.Registry {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.metrics
}

// MetricsEnabled reports whether a metrics registry is attached,
// without attaching one (unlike Metrics, which lazily creates it).
func (db *DB) MetricsEnabled() bool {
	return db.metricsRef() != nil
}

// ResetMetrics zeroes every counter, gauge, and histogram (the
// instruments stay registered, so cached references remain valid). A
// no-op when metrics were never enabled.
func (db *DB) ResetMetrics() {
	db.metricsRef().Reset()
}

// EnableTracing attaches a span tracer retaining the last capacity root
// operations (queries, update requests, program calls, view
// materializations), each a tree of timed child spans. It returns the
// tracer for inspection; enabling replaces any previous tracer. When
// metrics are on, retention evictions count under "traces.dropped".
func (db *DB) EnableTracing(capacity int) *QueryTracer {
	t := obs.NewTracer(capacity)
	if reg := db.metricsRef(); reg != nil {
		t.SetDropCounter(reg.Counter("traces.dropped"))
	}
	db.engine.SetTracer(t)
	return t
}

// SetTraceRetention rebounds the attached tracer's ring at runtime
// (minimum 1). Shrinking evicts the oldest span trees immediately,
// counting them as dropped. A no-op when tracing is off.
func (db *DB) SetTraceRetention(capacity int) {
	db.engine.Tracer().SetCapacity(capacity)
}

// TraceRetention returns the tracer's ring bound (0 when tracing is
// off).
func (db *DB) TraceRetention() int {
	return db.engine.Tracer().Capacity()
}

// TracesDropped reports how many finished span trees the retention
// bound has evicted since tracing was enabled (0 when off).
func (db *DB) TracesDropped() uint64 {
	return db.engine.Tracer().Dropped()
}

// DisableTracing detaches the tracer; traced operations return to a
// single nil check of overhead.
func (db *DB) DisableTracing() {
	db.engine.SetTracer(nil)
}

// Tracer returns the attached tracer, or nil when tracing is off.
func (db *DB) Tracer() *QueryTracer {
	return db.engine.Tracer()
}

// LastSyncReport returns the member-health report of the most recent
// federation sync (nil before any sync or when no members are mounted).
// Unlike Result.Degraded it is present even when all members were
// reachable.
func (db *DB) LastSyncReport() *DegradedReport {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.lastReport
}

// ExplainAnalyze executes the query and renders its plan annotated with
// per-conjunct actuals: rows produced, set elements scanned, index
// probes, and self evaluation time (excluding downstream conjuncts).
// With federated members mounted, a best-effort sync runs first.
func (db *DB) ExplainAnalyze(src string) (string, error) {
	plan, _, err := db.ExplainAnalyzeCtx(context.Background(), src)
	if err != nil {
		return "", err
	}
	return plan.String(), nil
}

// ExplainAnalyzeCtx is ExplainAnalyze under a context, returning the
// structured plan and the query's answer.
func (db *DB) ExplainAnalyzeCtx(ctx context.Context, src string) (*ExplainPlan, *Result, error) {
	q, err := parser.ParseQuery(src)
	if err != nil {
		return nil, nil, err
	}
	if ast.HasUpdate(q.Body) {
		return nil, nil, fmt.Errorf("idl: %q is an update request; explain analyze runs queries only", src)
	}
	rep, err := db.syncSources(ctx, true)
	if err != nil {
		return nil, nil, err
	}
	plan, ans, err := db.engine.ExplainAnalyzeQuery(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	if rep != nil && rep.Degraded() {
		rep.Skipped = skippedConjuncts(q, rep)
		ans.Degraded = rep
	}
	return plan, ans, nil
}

// MeteredSource wraps a source so every operation against it is counted
// and timed under federation.member.<name>.* in reg; resilience probes
// (breaker state, retry attempts) pass through. Mount applies this
// automatically — the explicit wrapper is for sources used outside a DB.
func MeteredSource(name string, inner Source, reg *MetricsRegistry) Source {
	return federation.Meter(name, inner, reg)
}
