package idl

import (
	"context"
	"testing"
)

// Facade-level planner tests: the Prepare API, the catalog epoch, and
// plan-cache invalidation across the operations a driver actually
// performs — DDL through the catalog and member syncs through the
// federation layer.

func planCacheOutcome(t *testing.T, db *DB, src string) string {
	t.Helper()
	ans, err := db.Query(src)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	if ans.Plan == nil {
		t.Fatalf("query %q: no plan info attached", src)
	}
	return ans.Plan.Cache
}

func TestPrepareAPI(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	p, err := db.Prepare("?.euter.r(.stkCode=hp, .clsPrice=P)")
	if err != nil {
		t.Fatal(err)
	}
	if p.Text() == "" {
		t.Fatal("prepared statement has no canonical text")
	}
	ans, err := p.Query()
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 3 {
		t.Fatalf("prepared query: %d rows, want 3", ans.Len())
	}
	// A mutation through Exec must be visible on the next execution.
	if _, err := db.Exec("?.euter.r+(.date=3/9/85, .stkCode=hp, .clsPrice=70)"); err != nil {
		t.Fatal(err)
	}
	ans, err = p.Query()
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 4 {
		t.Fatalf("prepared query after insert: %d rows, want 4", ans.Len())
	}
	if _, err := db.Prepare("?.euter.r+(.date=3/9/85, .stkCode=hp, .clsPrice=70)"); err == nil {
		t.Fatal("Prepare accepted an update request")
	}
}

// TestPlanCacheDDLEpoch pins the invalidation contract against catalog
// DDL: every DDL call advances the epoch; DDL that does not touch a
// cached plan's dependencies revalidates it ("stale"), DDL that drops a
// relation the plan reads forces recompilation ("miss").
func TestPlanCacheDDLEpoch(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	cat := db.Catalog()
	const query = "?.euter.r(.stkCode=hp, .clsPrice=P)"

	planCacheOutcome(t, db, query) // compile and cache
	if got := planCacheOutcome(t, db, query); got != "hit" {
		t.Fatalf("warm run: outcome %q, want hit", got)
	}

	before := db.CatalogEpoch()
	if err := cat.CreateRelation("euter", "aux"); err != nil {
		t.Fatal(err)
	}
	if after := db.CatalogEpoch(); after <= before {
		t.Fatalf("DDL did not advance the catalog epoch: %d -> %d", before, after)
	}
	if cat.Epoch() != db.CatalogEpoch() {
		t.Fatal("catalog and DB disagree on the epoch")
	}
	// The new relation is not among the plan's dependencies: revalidate.
	if got := planCacheOutcome(t, db, query); got != "stale" {
		t.Fatalf("after unrelated DDL: outcome %q, want stale", got)
	}

	// Dropping the queried relation changes what the plan's ranks were
	// computed from: recompile.
	if err := cat.DropRelation("euter", "r"); err != nil {
		t.Fatal(err)
	}
	if got := planCacheOutcome(t, db, query); got != "miss" {
		t.Fatalf("after dropping the queried relation: outcome %q, want miss", got)
	}
}

// TestPlanCacheSyncEpoch pins invalidation across member syncs: a sync
// that installs a changed member snapshot advances the epoch and forces
// plans over that member's relations to recompile.
func TestPlanCacheSyncEpoch(t *testing.T) {
	db := Open()
	member := Tup("r", SetOf(
		Tup("date", Date(85, 3, 1), "stkCode", "hp", "clsPrice", 50),
		Tup("date", Date(85, 3, 2), "stkCode", "hp", "clsPrice", 55),
	))
	if err := db.Mount("euter", NewMemorySource("euter", member)); err != nil {
		t.Fatal(err)
	}
	const query = "?.euter.r(.stkCode=hp, .clsPrice=P)"
	planCacheOutcome(t, db, query) // sync + compile

	// Mutate the member behind the federation's back, then sync: the new
	// snapshot replaces the relation set, so the cached plan recompiles
	// and the answer reflects the member's new state.
	rel, _ := member.Get("r")
	rel.(*Set).Add(Tup("date", Date(85, 3, 3), "stkCode", "hp", "clsPrice", 62))
	before := db.CatalogEpoch()
	if _, err := db.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if after := db.CatalogEpoch(); after <= before {
		t.Fatalf("sync with changed member did not advance the epoch: %d -> %d", before, after)
	}
	ans, err := db.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 3 {
		t.Fatalf("post-sync answer: %d rows, want 3 (new member tuple visible)", ans.Len())
	}
	if ans.Plan == nil || ans.Plan.Cache != "miss" {
		t.Fatalf("post-sync plan outcome %v, want miss (snapshot replaced the relation)", ans.Plan)
	}
}
