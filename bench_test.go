// Benchmarks B1–B8 (see DESIGN.md §5): the performance harness for the
// reproduction. The paper (SIGMOD 1991) has no measured evaluation; these
// benchmarks quantify what it argues qualitatively — one higher-order IDL
// expression versus hand-coded per-schema plans and generated first-order
// Datalog programs — plus the ablations a systems reader would ask for
// (attribute indexes, rule-level semi-naive evaluation, conjunct
// scheduling). Run with:
//
//	go test -bench=. -benchmem
package idl_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"idl"
	"idl/internal/ast"
	"idl/internal/core"
	"idl/internal/datalog"
	"idl/internal/federation"
	"idl/internal/msql"
	"idl/internal/object"
	"idl/internal/obs"
	"idl/internal/parser"
	"idl/internal/stocks"
)

// datalogAbove is the goal atom the Datalog baselines answer.
func datalogAbove() datalog.Atom {
	return datalog.P("above", datalog.V("S"))
}

// engineFor builds a core engine over a generated universe.
func engineFor(b *testing.B, cfg stocks.Config, opts core.Options) (*core.Engine, *stocks.Dataset) {
	b.Helper()
	u, ds := stocks.Universe(cfg)
	e := core.NewEngineWithOptions(opts)
	u.Each(func(db string, v object.Object) bool {
		e.Base().Put(db, v)
		return true
	})
	e.Invalidate()
	return e, ds
}

func parseQ(b *testing.B, src string) *ast.Query {
	b.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		b.Fatalf("parse %q: %v", src, err)
	}
	return q
}

func runQuery(b *testing.B, e *core.Engine, q *ast.Query) *core.Answer {
	b.Helper()
	ans, err := e.Query(q)
	if err != nil {
		b.Fatal(err)
	}
	return ans
}

var benchSizes = []int{8, 32, 128}

// --- B1: "any stock above N" — IDL vs relalg vs Datalog, per schema ---

func BenchmarkE3AnyAbove(b *testing.B) {
	for _, n := range benchSizes {
		cfg := stocks.Config{Stocks: n, Days: 30, Seed: 7}
		e, ds := engineFor(b, cfg, core.DefaultOptions())
		u := e.Base()
		threshold := ds.MaxPrice() * 3 / 4

		queries := stocks.QueryAnyAbove(threshold)
		for _, schema := range []string{"euter", "chwab", "ource"} {
			q := parseQ(b, queries[schema])
			b.Run(fmt.Sprintf("idl/%s/stocks=%d", schema, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runQuery(b, e, q)
				}
			})
		}

		b.Run(fmt.Sprintf("relalg/euter/stocks=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := stocks.AnyAboveEuter(u, threshold); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("relalg/chwab/stocks=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := stocks.AnyAboveChwab(u, ds.ChwabName, threshold); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("relalg/ource/stocks=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := stocks.AnyAboveOurce(u, ds.OurceName, threshold); err != nil {
					b.Fatal(err)
				}
			}
		})

		// Datalog: facts loaded and program sealed once; the benchmark
		// measures query time. The interesting number reported alongside
		// is rule count: 1 for euter, n for chwab/ource.
		dlE, rulesE, err := stocks.DatalogEuter(u, threshold)
		if err != nil {
			b.Fatal(err)
		}
		dlO, rulesO, err := stocks.DatalogOurce(u, ds.OurceName, threshold)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("datalog/euter(rules=%d)/stocks=%d", rulesE, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dlE.Query(datalogAbove()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("datalog/ource(rules=%d)/stocks=%d", rulesO, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dlO.Query(datalogAbove()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B2: cross-database join chwab × ource ---

func BenchmarkE4CrossJoin(b *testing.B) {
	for _, n := range benchSizes {
		cfg := stocks.Config{Stocks: n, Days: 30, Seed: 9}
		e, ds := engineFor(b, cfg, core.DefaultOptions())
		q := parseQ(b, stocks.QueryCrossJoin)
		b.Run(fmt.Sprintf("idl/stocks=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runQuery(b, e, q)
			}
		})
		b.Run(fmt.Sprintf("relalg/stocks=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := stocks.CrossJoinChwabOurce(e.Base(), ds.Stocks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B3: negation (all-time high per stock), indexed vs scan ---

func BenchmarkE5Negation(b *testing.B) {
	for _, useIndex := range []bool{true, false} {
		opts := core.DefaultOptions()
		opts.UseIndex = useIndex
		cfg := stocks.Config{Stocks: 16, Days: 60, Seed: 13}
		e, _ := engineFor(b, cfg, opts)
		q := parseQ(b, "?.euter.r(.stkCode=stk001,.clsPrice=P,.date=D), .euter.r~(.stkCode=stk001, .clsPrice>P)")
		name := "scan"
		if useIndex {
			name = "indexed"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runQuery(b, e, q)
			}
		})
	}
}

// --- B4: view materialization — semi-naive vs naive rule iteration ---

func BenchmarkViewMaterialize(b *testing.B) {
	for _, semi := range []bool{true, false} {
		opts := core.DefaultOptions()
		opts.SemiNaive = semi
		name := "naive"
		if semi {
			name = "seminaive"
		}
		for _, n := range []int{16, 64} {
			cfg := stocks.Config{Stocks: n, Days: 20, Seed: 17}
			e, _ := engineFor(b, cfg, opts)
			for _, r := range append(append([]string{}, stocks.RulesUnified...), stocks.RulesCustomized...) {
				rule, err := parser.ParseRule(r)
				if err != nil {
					b.Fatal(err)
				}
				if err := e.AddRule(rule); err != nil {
					b.Fatal(err)
				}
			}
			b.Run(fmt.Sprintf("%s/stocks=%d", name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e.Invalidate()
					if _, err := e.EffectiveUniverse(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- B5: higher-order view fan-out: dbO grows one relation per stock ---

func BenchmarkHigherOrderViewFanout(b *testing.B) {
	for _, n := range []int{8, 64, 256} {
		cfg := stocks.Config{Stocks: n, Days: 5, Seed: 19}
		e, _ := engineFor(b, cfg, core.DefaultOptions())
		for _, r := range stocks.RulesUnified {
			addRuleB(b, e, r)
		}
		addRuleB(b, e, ".dbO.S+(.date=D, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .price=P)")
		b.Run(fmt.Sprintf("stocks=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Invalidate()
				eff, err := e.EffectiveUniverse()
				if err != nil {
					b.Fatal(err)
				}
				dbO, _ := eff.Get("dbO")
				if dbO.(*object.Tuple).Len() != n {
					b.Fatalf("dbO has %d relations, want %d", dbO.(*object.Tuple).Len(), n)
				}
			}
		})
	}
}

// --- B6: update programs vs direct base updates ---

func BenchmarkUpdatePrograms(b *testing.B) {
	newEngine := func() *core.Engine {
		e, _ := engineFor(b, stocks.Config{Stocks: 32, Days: 30, Seed: 23}, core.DefaultOptions())
		for _, c := range append(append([]string{}, stocks.ProgramDelStk...), stocks.ProgramInsStk...) {
			cl, err := parser.ParseClause(c)
			if err != nil {
				b.Fatal(err)
			}
			if err := e.AddClause(cl); err != nil {
				b.Fatal(err)
			}
		}
		return e
	}

	b.Run("insStk", func(b *testing.B) {
		e := newEngine()
		for i := 0; i < b.N; i++ {
			src := fmt.Sprintf("?.dbU.insStk(.stk=new%06d, .date=1/2/86, .price=%d)", i, 10+i%100)
			execB(b, e, src)
		}
	})
	b.Run("delStk", func(b *testing.B) {
		e := newEngine()
		b.StopTimer()
		for i := 0; i < b.N; i++ {
			execB(b, e, fmt.Sprintf("?.dbU.insStk(.stk=new%06d, .date=1/2/86, .price=10)", i))
		}
		b.StartTimer()
		for i := 0; i < b.N; i++ {
			execB(b, e, fmt.Sprintf("?.dbU.delStk(.stk=new%06d, .date=1/2/86)", i))
		}
	})
	b.Run("direct-insert-euter-only", func(b *testing.B) {
		e := newEngine()
		for i := 0; i < b.N; i++ {
			execB(b, e, fmt.Sprintf("?.euter.r+(.stkCode=new%06d, .date=1/2/86, .clsPrice=%d)", i, 10+i%100))
		}
	})
}

// --- B7: Figure 1 round trip end to end ---

func BenchmarkRoundTrip(b *testing.B) {
	for _, n := range []int{8, 32} {
		b.Run(fmt.Sprintf("stocks=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, ds := engineFor(b, stocks.Config{Stocks: n, Days: 10, Seed: 29}, core.DefaultOptions())
				for _, r := range append(append([]string{}, stocks.RulesUnified...), stocks.RulesCustomized...) {
					addRuleB(b, e, r)
				}
				eff, err := e.EffectiveUniverse()
				if err != nil {
					b.Fatal(err)
				}
				// Verify fidelity: dbE.r must equal euter.r.
				base, _ := e.Base().Get("euter")
				baseR, _ := base.(*object.Tuple).Get("r")
				dbE, _ := eff.Get("dbE")
				viewR, _ := dbE.(*object.Tuple).Get("r")
				if !baseR.Equal(viewR) {
					b.Fatal("round trip broke fidelity")
				}
				_ = ds
			}
		})
	}
}

// --- B8: ablations — attribute index and conjunct scheduling ---

func BenchmarkAblation(b *testing.B) {
	cfg := stocks.Config{Stocks: 64, Days: 60, Seed: 31}
	point := "?.euter.r(.stkCode=stk033, .date=D, .clsPrice=P)"
	// A safe left-to-right ordering (binder before negation) so both
	// scheduler settings can run it.
	neg := "?.euter.r(.stkCode=stk033,.clsPrice=P,.date=D), .euter.r~(.stkCode=stk033, .clsPrice>P)"
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"baseline", core.DefaultOptions()},
		{"no-index", func() core.Options { o := core.DefaultOptions(); o.UseIndex = false; return o }()},
		{"no-schedule", func() core.Options { o := core.DefaultOptions(); o.NoSchedule = true; return o }()},
	} {
		e, _ := engineFor(b, cfg, tc.opts)
		pq := parseQ(b, point)
		nq := parseQ(b, neg)
		b.Run("point/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runQuery(b, e, pq)
			}
		})
		b.Run("negation/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runQuery(b, e, nq)
			}
		})
	}
}

// --- helpers ---

func addRuleB(b *testing.B, e *core.Engine, src string) {
	b.Helper()
	rule, err := parser.ParseRule(src)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.AddRule(rule); err != nil {
		b.Fatal(err)
	}
}

func execB(b *testing.B, e *core.Engine, src string) {
	b.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Execute(q); err != nil {
		b.Fatal(err)
	}
}

// --- B9: incremental vs full view maintenance on additive updates ---

func BenchmarkIncrementalViews(b *testing.B) {
	for _, incremental := range []bool{true, false} {
		name := "full"
		if incremental {
			name = "incremental"
		}
		opts := core.DefaultOptions()
		opts.IncrementalViews = incremental
		e, _ := engineFor(b, stocks.Config{Stocks: 32, Days: 30, Seed: 37}, opts)
		// Negation-free rules (the incremental path's soundness domain).
		addRuleB(b, e, ".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)")
		addRuleB(b, e, ".dbO.S+(.date=D, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .price=P)")
		q := parseQ(b, "?.dbI.p(.stk=stk001)")
		runQuery(b, e, q) // initial materialization outside the timer
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				execB(b, e, fmt.Sprintf("?.euter.r+(.date=1/2/86, .stkCode=inc%06d, .clsPrice=%d)", i, i%100))
				runQuery(b, e, q) // forces view refresh
			}
		})
	}
}

// --- B10: MSQL broadcast vs its IDL translation ---

func BenchmarkMSQLvsIDL(b *testing.B) {
	u, ds := stocks.Universe(stocks.Config{Stocks: 32, Days: 30, Seed: 41})
	e := core.NewEngineWithOptions(core.DefaultOptions())
	u.Each(func(db string, v object.Object) bool {
		e.Base().Put(db, v)
		return true
	})
	e.Invalidate()
	threshold := ds.MaxPrice() * 3 / 4
	src := fmt.Sprintf("SELECT &D, r.stkCode FROM &D.r WHERE r.clsPrice > %d", threshold)
	st, err := msql.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("msql-direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := msql.Exec(st, u); err != nil {
				b.Fatal(err)
			}
		}
	})
	q, _, err := msql.Translate(st)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("idl-translated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runQuery(b, e, q)
		}
	})
}

// --- B11: context plumbing overhead ---

// BenchmarkCtxPlumbing measures what threading a context through the
// evaluator costs. Query (no context) and QueryCtx with a cancellable
// context run the same plans; the amortized cancellation check (one
// atomic-free poll every 1024 evaluator ops) should keep the cancellable
// path within a few percent of the bare one.
func BenchmarkCtxPlumbing(b *testing.B) {
	cfg := stocks.Config{Stocks: 32, Days: 30, Seed: 7}
	e, ds := engineFor(b, cfg, core.DefaultOptions())
	threshold := ds.MaxPrice() * 3 / 4
	qs := map[string]*ast.Query{
		"anyAbove":      parseQ(b, stocks.QueryAnyAbove(threshold)["euter"]),
		"highestPerDay": parseQ(b, stocks.QueryHighestPerDay()["euter"]),
	}
	for name, q := range qs {
		b.Run(name+"/bare", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runQuery(b, e, q)
			}
		})
		b.Run(name+"/ctx", func(b *testing.B) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			for i := 0; i < b.N; i++ {
				if _, err := e.QueryCtx(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B12: observability overhead ---

// BenchmarkObservability measures what the observability layer costs in
// each state. "off" is the production default: nil registry and tracer,
// so every instrumented path reduces to one pointer test — it should be
// within noise of the pre-observability engine (compare B11's bare
// numbers). "metrics" adds the registry (a handful of atomic adds and
// one histogram observe per operation). "traced" adds span construction
// and per-conjunct probes, the bound CI enforces via idlbench.
func BenchmarkObservability(b *testing.B) {
	cfg := stocks.Config{Stocks: 16, Days: 20, Seed: 43}
	q := parseQ(b, stocks.QueryHighestPerDay()["euter"])
	newEngine := func() *core.Engine {
		e, _ := engineFor(b, cfg, core.DefaultOptions())
		return e
	}
	b.Run("off", func(b *testing.B) {
		e := newEngine()
		for i := 0; i < b.N; i++ {
			runQuery(b, e, q)
		}
	})
	b.Run("metrics", func(b *testing.B) {
		e := newEngine()
		e.SetMetrics(obs.NewRegistry())
		for i := 0; i < b.N; i++ {
			runQuery(b, e, q)
		}
	})
	b.Run("traced", func(b *testing.B) {
		e := newEngine()
		e.SetMetrics(obs.NewRegistry())
		e.SetTracer(obs.NewTracer(4))
		for i := 0; i < b.N; i++ {
			runQuery(b, e, q)
		}
	})
	// The flight recorder hooks in at the DB layer (events wrap whole
	// statements), so its overhead is measured there: recorder off vs
	// the default ring, tracing and metrics off either way.
	src := stocks.QueryHighestPerDay()["euter"]
	newDB := func(ring int) *idl.DB {
		db := idl.Open()
		stocks.Generate(cfg).Populate(db.Engine().Base())
		db.Engine().Invalidate()
		db.SetFlightRecorderSize(ring)
		return db
	}
	for _, tc := range []struct {
		name string
		ring int
	}{{"flightrec-off", 0}, {"flightrec-on", 256}} {
		b.Run(tc.name, func(b *testing.B) {
			db := newDB(tc.ring)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B13: parallel evaluation speedup ---

// BenchmarkParallelQuery partitions a large negated self-join scan
// across the worker pool. Answers are byte-identical to sequential at
// every worker count (the differential layer enforces this); the
// speedup tracks GOMAXPROCS, so on a single-CPU machine the curve is
// flat — run on a multi-core box to see the scan family scale.
func BenchmarkParallelQuery(b *testing.B) {
	src := "?.euter.r(.date=D,.stkCode=S,.clsPrice=P), .euter.r~(.date=D, .clsPrice>P)"
	for _, w := range []int{1, 2, 4, 8} {
		opts := core.DefaultOptions()
		opts.Workers = w
		e, _ := engineFor(b, stocks.Config{Stocks: 48, Days: 40, Seed: 47}, opts)
		q := parseQ(b, src)
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runQuery(b, e, q)
			}
		})
	}
}

// BenchmarkParallelSync refreshes three slow federated members (every
// source operation stalls 2ms) per sync. Concurrent fetches overlap the
// stalls, so this family's speedup is latency-bound and shows up even
// with one CPU — it is the family idlbench's -min-parallel-speedup
// gate checks.
func BenchmarkParallelSync(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		db := idl.Open()
		db.SetWorkers(w)
		for i, name := range []string{"alpha", "beta", "gamma"} {
			member := idl.Tup("r", idl.SetOf(
				idl.Tup("date", idl.Date(85, 3, 3), "stkCode", fmt.Sprintf("stk%d", i), "clsPrice", 100+i),
			))
			src := federation.Inject(federation.NewMemorySource(name, member), federation.InjectorConfig{
				SlowRate: 1,
				Latency:  2 * time.Millisecond,
			})
			if err := db.Mount(name, src); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Sync(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
