package idl

import (
	"fmt"
	"io"
	"time"

	"idl/internal/qlog"
)

// Temporal observability facade (see internal/qlog). Every query,
// update request, program call, rule/clause definition, federation sync
// and breaker transition emits one Event. Three sinks consume them:
//
//   - the flight recorder: a lock-free ring of the last N events,
//     always on (DumpEvents, the REPL's \flightrec, /debug/events);
//   - the structured event log: one JSON line per event via log/slog,
//     with a slow-query threshold promoting events to WARN;
//   - the workload journal: an append-only, versioned .idlog file of
//     replayable statements plus their canonical answers, consumed by
//     cmd/idlreplay.

type (
	// Event is one record of engine activity in the flight recorder or
	// event log.
	Event = qlog.Event
	// JournalHeader is the first line of a .idlog workload journal.
	JournalHeader = qlog.Header
	// JournalRecord is one replayable statement in a journal, with the
	// answer the original run observed.
	JournalRecord = qlog.Record
	// ExecSummary is a journal record's update-outcome counters.
	ExecSummary = qlog.ExecSummary
)

// Event kinds as they appear in Event.Kind and JournalRecord.Kind.
const (
	EventQuery   = qlog.KindQuery
	EventExec    = qlog.KindExec
	EventCall    = qlog.KindCall
	EventRule    = qlog.KindRule
	EventClause  = qlog.KindClause
	EventSync    = qlog.KindSync
	EventBreaker = qlog.KindBreaker
)

// Events returns a point-in-time snapshot of the flight recorder,
// oldest first.
func (db *DB) Events() []*Event {
	return db.rec.Events()
}

// DumpEvents writes a human rendering of the flight recorder to w.
func (db *DB) DumpEvents(w io.Writer) {
	db.rec.Dump(w, false)
}

// DumpEventsRedacted is DumpEvents with timing-dependent fields
// blanked, for byte-stable output (golden tests, diffs across runs).
func (db *DB) DumpEventsRedacted(w io.Writer) {
	db.rec.Dump(w, true)
}

// SetFlightRecorderSize resizes the flight recorder to hold the last n
// events (n <= 0 turns it off). The default is qlog.DefaultRingSize.
// Resizing discards currently buffered events.
func (db *DB) SetFlightRecorderSize(n int) {
	db.rec.SetRingSize(n)
}

// FlightRecorderSize returns the flight recorder's capacity (0 = off).
func (db *DB) FlightRecorderSize() int {
	return db.rec.RingCap()
}

// SetEventLog attaches the structured event log: one JSON line per
// event to w (nil detaches). Slow and failed operations log at WARN and
// ERROR respectively.
func (db *DB) SetEventLog(w io.Writer) {
	db.rec.SetLogger(w)
}

// SetSlowQueryThreshold marks events slower than d as slow, promoting
// their log lines to WARN (d <= 0 disables the threshold).
func (db *DB) SetSlowQueryThreshold(d time.Duration) {
	db.rec.SetSlowThreshold(d)
}

// SetAutoDump makes the DB dump the flight recorder to w whenever an
// operation fails or a member's circuit breaker opens (nil disables).
func (db *DB) SetAutoDump(w io.Writer) {
	db.rec.SetAutoDump(w)
}

// StartJournal begins capturing the workload to an append-only .idlog
// journal at path: every query, update request, program call and
// rule/clause definition is recorded with its canonical answer, ready
// for cmd/idlreplay. meta is free-form provenance stored in the journal
// header (replay uses it to rebuild the original environment). An
// existing journal at path is validated and appended to. Journaling
// replaces any journal previously started on this DB.
func (db *DB) StartJournal(path string, meta map[string]string) error {
	j, err := qlog.Create(path, meta)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if old := db.rec.Journal(); old != nil {
		db.rec.SetJournal(nil)
		if cerr := old.Close(); cerr != nil {
			// The new journal is active either way, but the old capture's
			// write error must not vanish: the file may be incomplete.
			db.rec.SetJournal(j)
			return fmt.Errorf("idl: close previous journal: %w", cerr)
		}
	}
	db.rec.SetJournal(j)
	return nil
}

// CloseJournal stops journaling and flushes/closes the journal file.
// It returns the journal's sticky write error, if any; a DB without an
// active journal returns nil.
func (db *DB) CloseJournal() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	j := db.rec.Journal()
	if j == nil {
		return nil
	}
	db.rec.SetJournal(nil)
	return j.Close()
}

// JournalPath returns the active journal's file path ("" when not
// journaling).
func (db *DB) JournalPath() string {
	return db.rec.Journal().Path()
}

// ReadJournal loads a .idlog journal: its header and all records.
func ReadJournal(path string) (*JournalHeader, []JournalRecord, error) {
	return qlog.ReadJournal(path)
}
