package idl

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"idl/internal/obs"
)

// Trace export tests: every operation mints one trace ID at the facade,
// and the ID joins the operation's span tree, its federation member
// fetches, its WAL commit, and its flight-recorder event.

func attrStr(s *obs.Span, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Str
		}
	}
	return ""
}

func attrInt(s *obs.Span, key string) int64 {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Int
		}
	}
	return 0
}

func TestTracesRequireTracing(t *testing.T) {
	db := Open()
	if _, err := db.Traces(); err == nil || !strings.Contains(err.Error(), "tracing is not enabled") {
		t.Fatalf("Traces without a tracer = %v", err)
	}
	if err := db.ExportTraces(io.Discard); err == nil {
		t.Fatal("ExportTraces without a tracer should fail")
	}
}

func TestTraceIDFormatAndUniqueness(t *testing.T) {
	db := Open()
	if _, err := db.Catalog().Insert("d", "r", Tup("x", 1)); err != nil {
		t.Fatal(err)
	}
	db.EnableTracing(8)
	for i := 0; i < 3; i++ {
		if _, err := db.Query("?.d.r(.x=X)"); err != nil {
			t.Fatal(err)
		}
	}
	traces, err := db.Traces()
	if err != nil {
		t.Fatal(err)
	}
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	queries := 0
	for _, tr := range traces {
		if tr.Root.Name != "query" {
			continue
		}
		queries++
		if !hex16.MatchString(tr.TraceID) {
			t.Errorf("trace id %q is not 16 hex digits", tr.TraceID)
		}
		if seen[tr.TraceID] {
			t.Errorf("duplicate trace id %q", tr.TraceID)
		}
		seen[tr.TraceID] = true
		if tr.QID == 0 {
			t.Errorf("query trace %s lost its flight-recorder op id", tr.TraceID)
		}
	}
	if queries != 3 {
		t.Errorf("expected 3 query traces, got %d", queries)
	}
}

// TestTraceExportCorrelation is the acceptance path: a durable federated
// update's exported trace contains the member fetch and the WAL commit
// as root spans sharing the operation's trace ID, and the
// flight-recorder event carries the same ID.
func TestTraceExportCorrelation(t *testing.T) {
	db, _, err := OpenWAL(t.TempDir(), WALOptions{Durability: DurabilitySync})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Catalog().Insert("euter", "r",
		Tup("date", Date(85, 3, 1), "stkCode", "hp", "clsPrice", 50)); err != nil {
		t.Fatal(err)
	}
	member := NewMemorySource("mem1", Tup("quotes", SetOf(
		Tup("date", Date(85, 3, 1), "clsPrice", 11))))
	if err := db.Mount("mem1", member); err != nil {
		t.Fatal(err)
	}
	db.EnableTracing(32)
	if _, err := db.Exec("?.euter.r+(.date=3/4/85,.stkCode=dec,.clsPrice=80)"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.ExportTraces(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Traces []TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not JSON: %v\n%s", err, buf.String())
	}
	byName := map[string][]TraceRecord{}
	for _, tr := range doc.Traces {
		byName[tr.Root.Name] = append(byName[tr.Root.Name], tr)
	}
	execs := byName["exec"]
	if len(execs) != 1 {
		t.Fatalf("expected one exec trace, got %d:\n%s", len(execs), buf.String())
	}
	tid := execs[0].TraceID
	if tid == "" {
		t.Fatalf("exec trace has no trace id:\n%s", buf.String())
	}
	for _, name := range []string{"federation.fetch", "wal.commit"} {
		found := false
		for _, tr := range byName[name] {
			if tr.TraceID == tid {
				found = true
			}
		}
		if !found {
			t.Errorf("no %s span shares the exec trace id %s:\n%s", name, tid, buf.String())
		}
	}
	// The WAL commit span names the LSN it committed, for joining
	// against the log offline.
	for _, tr := range byName["wal.commit"] {
		if attrInt(tr.Root, "lsn") <= 0 {
			t.Errorf("wal.commit span missing lsn: %+v", tr.Root.Attrs)
		}
		if attrStr(tr.Root, "type") != "exec" {
			t.Errorf("wal.commit span type = %q, want exec", attrStr(tr.Root, "type"))
		}
	}
	for _, ev := range db.Events() {
		if ev.Kind == EventExec && ev.TraceID != tid {
			t.Errorf("exec event trace id %q != span trace id %q", ev.TraceID, tid)
		}
	}
}

// TestTraceJournalCorrelation: with a workload journal attached, the
// journal record for an operation carries the same trace ID as its
// exported span tree.
func TestTraceJournalCorrelation(t *testing.T) {
	db := Open()
	if _, err := db.Catalog().Insert("d", "r", Tup("x", 1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.idlog")
	if err := db.StartJournal(path, nil); err != nil {
		t.Fatal(err)
	}
	db.EnableTracing(8)
	if _, err := db.Query("?.d.r(.x=X)"); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	traces, err := db.Traces()
	if err != nil {
		t.Fatal(err)
	}
	var tid string
	for _, tr := range traces {
		if tr.Root.Name == "query" {
			tid = tr.TraceID
		}
	}
	if tid == "" {
		t.Fatal("no query trace recorded")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"trace_id":"`+tid+`"`) {
		t.Errorf("journal record missing trace id %s:\n%s", tid, raw)
	}
}
