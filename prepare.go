package idl

import (
	"context"
	"fmt"

	"idl/internal/ast"
	"idl/internal/core"
	"idl/internal/parser"
)

// Compiled query plans. Every Query/QueryCtx already runs through the
// engine's epoch-keyed plan cache — repeated statements reuse their
// compiled plan automatically. Prepare makes the compile-once contract
// explicit: the returned Prepared holds a private plan that skips even
// the cache lookup, and each execution revalidates it against the
// catalog epoch, so prepared answers are always as fresh as ad hoc ones.

// PlanInfo reports how a query's plan was obtained: Cache is "hit",
// "stale" (revalidated after a catalog change elsewhere), "miss"
// (recompiled), or "cold" (cache disabled); CompileNS is the compile
// time when this call compiled. Attached to Result.Plan for planned
// evaluations.
type PlanInfo = core.PlanInfo

// PlanCacheStats snapshots the engine's plan-cache counters: hits
// (including epoch revalidations), misses, LRU evictions, resident
// size, and the current catalog epoch.
type PlanCacheStats = core.PlanCacheStats

// PlanCacheStats reports the plan cache's behavior so far.
func (db *DB) PlanCacheStats() PlanCacheStats { return db.engine.PlanCacheStats() }

// ClearPlanCache empties the plan cache; counters are preserved. Plans
// recompile on next use.
func (db *DB) ClearPlanCache() { db.engine.ClearPlanCache() }

// SetPlanCaching toggles the plan cache at runtime (the CLI's
// -no-plan-cache). With caching off every query compiles a fresh plan;
// answers are unchanged, only compile work repeats.
func (db *DB) SetPlanCaching(on bool) { db.engine.SetPlanCaching(on) }

// CatalogEpoch returns the catalog epoch: a counter that advances on
// every mutation of the universe — DML, DDL, view/rule registration,
// member-snapshot installs. It versions the plan cache and the catalog
// statistics: plans compiled at one epoch are revalidated (and only
// recompiled when their inputs actually changed) after it moves.
func (db *DB) CatalogEpoch() uint64 { return db.engine.Epoch() }

// Prepared is a query compiled once by DB.Prepare and executable many
// times. It is safe for concurrent use with other DB operations; each
// execution synchronizes on the engine like an ad hoc query.
type Prepared struct {
	db *DB
	q  *ast.Query
	pq *core.PreparedQuery
}

// Prepare parses and compiles a read-only query for repeated execution.
// Update requests are rejected — preparation is for the query side only.
func (db *DB) Prepare(src string) (*Prepared, error) {
	q, err := parser.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	if ast.HasUpdate(q.Body) {
		return nil, fmt.Errorf("idl: %q is an update request; prepared statements are read-only", src)
	}
	pq, err := db.engine.Prepare(q)
	if err != nil {
		return nil, err
	}
	return &Prepared{db: db, q: q, pq: pq}, nil
}

// Text returns the canonical rendering of the prepared statement.
func (p *Prepared) Text() string { return p.q.String() }

// Query executes the prepared plan against the current universe.
func (p *Prepared) Query() (*Result, error) {
	return p.QueryCtx(context.Background())
}

// QueryCtx is Query under a context. The execution takes the same path
// as an ad hoc query — member sync, flight-recorder op, degradation
// report — except that planning reuses the prepared plan (revalidating
// or recompiling it when the catalog epoch moved).
func (p *Prepared) QueryCtx(ctx context.Context) (*Result, error) {
	return p.db.runQueryOp(ctx, p.q, p.pq.QueryCtx)
}
