package idl

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"idl/internal/object"
	"idl/internal/parser"
	"idl/internal/qlog"
	"idl/internal/wal"
)

// Durability: a DB opened with OpenWAL logs every committed logical
// mutation — update requests, program calls, rule and clause
// registrations, DDL, federated member-snapshot installs; the same event
// set that bumps the catalog epoch — to an append-only write-ahead log,
// and recovers it on the next OpenWAL by replaying the tail over the
// newest checkpoint. The log is redo-only: mutations apply in memory
// first and append on commit, so a WAL append failure leaves memory
// ahead of the log; the log then poisons itself (every later mutation
// fails) rather than let the divergence grow silently.
//
// Paths that mutate the universe without going through the facade —
// direct writes to Engine().Base(), or mutating a *Set returned by
// Catalog().Relation — bypass the log; they are advanced/testing
// surfaces and documented as such (DESIGN.md §13).

// Durability selects the WAL's fsync policy.
type Durability int

const (
	// DurabilitySync fsyncs every commit before acknowledging it — an
	// acknowledged mutation survives a crash. The default.
	DurabilitySync Durability = iota
	// DurabilityGroup group-commits: fsync when enough unsynced bytes
	// accumulate (and on checkpoint/close). A crash can lose the
	// unsynced suffix of acknowledged mutations; recovery is still
	// prefix-consistent.
	DurabilityGroup
	// DurabilityOff never fsyncs on commit (records still reach the OS);
	// the no-durability floor for benchmarking.
	DurabilityOff
)

func (d Durability) String() string {
	switch d {
	case DurabilitySync:
		return "sync"
	case DurabilityGroup:
		return "group"
	case DurabilityOff:
		return "off"
	}
	return fmt.Sprintf("durability%d", int(d))
}

func (d Durability) walMode() wal.SyncMode {
	switch d {
	case DurabilityGroup:
		return wal.SyncGroup
	case DurabilityOff:
		return wal.SyncNever
	}
	return wal.SyncAlways
}

// WALOptions tune the durability layer.
type WALOptions struct {
	// Durability is the fsync policy (default DurabilitySync).
	Durability Durability
	// SegmentBytes rotates log segments at this size (default 1 MiB).
	SegmentBytes int64
	// GroupBytes is the DurabilityGroup fsync threshold (default 64 KiB).
	GroupBytes int64
	// KeepCheckpoints bounds checkpoint retention (default 2).
	KeepCheckpoints int
	// Engine options; zero value means DefaultOptions.
	Engine *Options
	// Bootstrap installs a deterministic base environment (e.g. the demo
	// universe) before the WAL tail replays, so logged mutations land on
	// the state they were committed against. It runs only when no
	// checkpoint was restored — a checkpoint snapshot already contains
	// the bootstrapped state — and nothing it does is logged.
	Bootstrap func(*DB) error
}

// RecoveryReport describes what OpenWAL restored. Its String is the
// startup banner: deliberately timing-free so it is byte-stable for a
// given directory state.
type RecoveryReport struct {
	// CheckpointLSN is the newest good checkpoint's LSN (0 = none).
	CheckpointLSN uint64
	// RulesRestored and ClausesRestored count registrations restored from
	// the checkpoint.
	RulesRestored   int
	ClausesRestored int
	// Replayed counts tail records replayed over the checkpoint
	// (checkpoint markers excluded).
	Replayed int
	// Truncated reports that a torn trailing record was cut off.
	Truncated bool
	// TruncatedSegment names the repaired segment file.
	TruncatedSegment string
	// SkippedCheckpoints counts corrupt checkpoint files passed over.
	SkippedCheckpoints int
}

func (r *RecoveryReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wal: recovered checkpoint-lsn=%d rules=%d clauses=%d replayed=%d",
		r.CheckpointLSN, r.RulesRestored, r.ClausesRestored, r.Replayed)
	if r.Truncated {
		fmt.Fprintf(&b, " truncated-tail=%s", r.TruncatedSegment)
	}
	if r.SkippedCheckpoints > 0 {
		fmt.Fprintf(&b, " skipped-checkpoints=%d", r.SkippedCheckpoints)
	}
	return b.String()
}

// OpenWAL opens a DB whose committed mutations are logged to the
// write-ahead log in dir, first recovering whatever a previous process
// left there. The report says what was restored; print it as the
// startup banner.
func OpenWAL(dir string, opts WALOptions) (*DB, *RecoveryReport, error) {
	return openWALFS(dir, opts, nil)
}

// openWALFS is OpenWAL with an injectable write-path filesystem — the
// seam the crash-point recovery tests drive a FaultFS through.
func openWALFS(dir string, opts WALOptions, fsys wal.FS) (*DB, *RecoveryReport, error) {
	eopts := DefaultOptions()
	if opts.Engine != nil {
		eopts = *opts.Engine
	}
	db := OpenWithOptions(eopts)
	log, recovered, err := wal.Open(dir, wal.Options{
		SegmentBytes:    opts.SegmentBytes,
		Mode:            opts.Durability.walMode(),
		GroupBytes:      opts.GroupBytes,
		KeepCheckpoints: opts.KeepCheckpoints,
		FS:              fsys,
	})
	if err != nil {
		return nil, nil, err
	}
	report := &RecoveryReport{
		CheckpointLSN:      recovered.CheckpointLSN,
		Truncated:          recovered.Truncated,
		TruncatedSegment:   recovered.TruncatedSegment,
		SkippedCheckpoints: recovered.SkippedCheckpoints,
	}
	// Restore the checkpoint: universe first, then the registrations the
	// snapshot alone cannot carry. db.wal is still nil here, so nothing
	// in the replay re-logs.
	replayStart := time.Now()
	if recovered.Universe != nil {
		recovered.Universe.Each(func(name string, v Value) bool {
			db.engine.Base().Put(name, v)
			return true
		})
		db.engine.Invalidate()
	}
	for _, src := range recovered.Rules {
		if err := db.DefineView(src); err != nil {
			log.Close()
			return nil, nil, fmt.Errorf("idl: recover rule %q: %w", src, err)
		}
		report.RulesRestored++
	}
	for _, src := range recovered.Clauses {
		if err := db.DefineProgram(src); err != nil {
			log.Close()
			return nil, nil, fmt.Errorf("idl: recover clause %q: %w", src, err)
		}
		report.ClausesRestored++
	}
	if opts.Bootstrap != nil && recovered.Universe == nil {
		if err := opts.Bootstrap(db); err != nil {
			log.Close()
			return nil, nil, fmt.Errorf("idl: wal bootstrap: %w", err)
		}
	}
	for _, r := range recovered.Tail {
		if err := db.replayRecord(r); err != nil {
			log.Close()
			return nil, nil, fmt.Errorf("idl: replay lsn %d (%s): %w", r.LSN, wal.TypeName(r.Type), err)
		}
		if r.Type != wal.TypeCheckpoint {
			report.Replayed++
		}
	}
	// The logical restore (checkpoint install + registrations + tail
	// redo) joins the log's own scan time in wal.recovery.replay_ns.
	log.NoteReplay(time.Since(replayStart))
	db.rec.Emit(qlog.KindRecover, report.String(), nil)

	// Recovery done: attach the log and wire the commit hooks. From here
	// every committed mutation appends.
	db.wal = log
	db.walDurability = opts.Durability
	// A registry may already exist — a Bootstrap that Mounts a member
	// creates one — so wire the log in now; metricsLocked handles
	// registries created after this point.
	db.mu.Lock()
	if db.metrics != nil {
		log.SetMetrics(db.metrics)
	}
	db.mu.Unlock()
	db.cat.SetMutationLogger(func(op, dbName, rel string, tuples []*object.Tuple) error {
		rec := wal.DDLRecord{Op: op, DB: dbName, Rel: rel}
		for _, t := range tuples {
			raw, err := object.MarshalJSON(t)
			if err != nil {
				return fmt.Errorf("idl: wal: encode %s tuple: %w", op, err)
			}
			rec.Tuples = append(rec.Tuples, raw)
		}
		payload, err := json.Marshal(&rec)
		if err != nil {
			return fmt.Errorf("idl: wal: encode ddl: %w", err)
		}
		_, err = db.walAppend(wal.TypeDDL, payload)
		return err
	})
	db.cat.SetSnapshotLogger(func(name string, snap *Tuple) error {
		rec := wal.MemberSnapRecord{Name: name}
		if snap != nil {
			raw, err := object.MarshalJSON(snap)
			if err != nil {
				return fmt.Errorf("idl: wal: encode member snapshot: %w", err)
			}
			rec.Snap = raw
		}
		payload, err := json.Marshal(&rec)
		if err != nil {
			return fmt.Errorf("idl: wal: encode member snapshot: %w", err)
		}
		_, err = db.walAppend(wal.TypeMemberSnap, payload)
		return err
	})
	return db, report, nil
}

// replayRecord applies one recovered record. The records were committed
// by a previous process, so replay failures are recovery failures, not
// data: they abort OpenWAL.
func (db *DB) replayRecord(r wal.Record) error {
	switch r.Type {
	case wal.TypeExec:
		q, err := parser.ParseQuery(string(r.Payload))
		if err != nil {
			return err
		}
		_, err = db.engine.Execute(q)
		return err
	case wal.TypeRule:
		return db.DefineView(string(r.Payload))
	case wal.TypeClause:
		return db.DefineProgram(string(r.Payload))
	case wal.TypeDDL:
		var rec wal.DDLRecord
		if err := json.Unmarshal(r.Payload, &rec); err != nil {
			return err
		}
		switch rec.Op {
		case "create-db":
			return db.cat.CreateDatabase(rec.DB)
		case "drop-db":
			return db.cat.DropDatabase(rec.DB)
		case "create-rel":
			return db.cat.CreateRelation(rec.DB, rec.Rel)
		case "drop-rel":
			return db.cat.DropRelation(rec.DB, rec.Rel)
		case "insert":
			tuples := make([]*Tuple, 0, len(rec.Tuples))
			for _, raw := range rec.Tuples {
				v, err := object.UnmarshalJSON(raw)
				if err != nil {
					return err
				}
				t, ok := v.(*Tuple)
				if !ok {
					return fmt.Errorf("inserted element is %T, not a tuple", v)
				}
				tuples = append(tuples, t)
			}
			_, err := db.cat.Insert(rec.DB, rec.Rel, tuples...)
			return err
		}
		return fmt.Errorf("unknown ddl op %q", rec.Op)
	case wal.TypeMemberSnap:
		var rec wal.MemberSnapRecord
		if err := json.Unmarshal(r.Payload, &rec); err != nil {
			return err
		}
		// The member itself is not remounted — recovery must not depend on
		// it being reachable. Its last logged snapshot is installed as
		// plain data; a later Mount + sync supersedes it.
		if rec.Snap == nil {
			db.engine.UpdateBase(func(base *Tuple) bool {
				return base.Delete(rec.Name)
			})
			return nil
		}
		v, err := object.UnmarshalJSON(rec.Snap)
		if err != nil {
			return err
		}
		snap, ok := v.(*Tuple)
		if !ok {
			return fmt.Errorf("member snapshot is %T, not a tuple", v)
		}
		db.engine.UpdateBase(func(base *Tuple) bool {
			base.Put(rec.Name, snap)
			return true
		})
		return nil
	case wal.TypeCheckpoint:
		return nil
	}
	return fmt.Errorf("unknown record type %d", r.Type)
}

// walAppend logs one committed mutation (no-op without a WAL), returning
// the assigned LSN. An append failure means memory is ahead of the log:
// the log is now poisoned and the error propagates to the caller, who
// must treat the store as failed.
func (db *DB) walAppend(typ byte, payload []byte) (uint64, error) {
	if db.wal == nil {
		return 0, nil
	}
	return db.wal.Append(typ, payload)
}

// walAppendTraced is walAppend under a "wal.commit" span when tracing is
// enabled: the span carries the record type, the assigned LSN, and the
// caller's trace/op IDs from ctx, so a commit can be joined to the query
// that caused it and to the physical log offline.
func (db *DB) walAppendTraced(ctx context.Context, typ byte, payload []byte) error {
	tracer := db.engine.Tracer()
	if tracer == nil || db.wal == nil {
		_, err := db.walAppend(typ, payload)
		return err
	}
	span := tracer.Start("wal.commit")
	span.SetStr("type", wal.TypeName(typ))
	if tid := qlog.TraceID(ctx); tid != "" {
		span.SetStr("trace", tid)
	}
	if qid := qlog.OpID(ctx); qid != 0 {
		span.SetInt("qid", int64(qid))
	}
	lsn, err := db.walAppend(typ, payload)
	span.SetInt("lsn", int64(lsn))
	if err != nil {
		span.SetStr("err", err.Error())
	}
	span.End()
	return err
}

// SetDurability changes the WAL fsync policy at runtime. Tightening to
// DurabilitySync makes any deferred records durable immediately. It
// fails on a DB opened without a WAL.
func (db *DB) SetDurability(d Durability) error {
	if db.wal == nil {
		return fmt.Errorf("idl: no write-ahead log attached (open with OpenWAL)")
	}
	db.mu.Lock()
	db.walDurability = d
	db.mu.Unlock()
	return db.wal.SetMode(d.walMode())
}

// Checkpoint snapshots the current state (universe, view rules, update
// programs) into the WAL directory and truncates the log's sealed
// segments: recovery cost becomes proportional to the work since the
// checkpoint, not since the beginning. Returns the checkpoint's covered
// LSN.
func (db *DB) Checkpoint() (uint64, error) {
	if db.wal == nil {
		return 0, fmt.Errorf("idl: no write-ahead log attached (open with OpenWAL)")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	rules := db.Views()
	clauses := make([]string, 0)
	for _, c := range db.engine.Clauses() {
		clauses = append(clauses, c.String())
	}
	var lsn uint64
	var err error
	// The snapshot reads the base universe under the engine mutex, so it
	// is coherent with concurrent queries and syncs.
	db.engine.UpdateBase(func(base *Tuple) bool {
		lsn, err = db.wal.Checkpoint(base, rules, clauses)
		return false
	})
	db.rec.Emit(qlog.KindCheckpoint, fmt.Sprintf("lsn=%d", lsn), err)
	return lsn, err
}

// WALStatus describes the attached write-ahead log.
type WALStatus struct {
	Dir           string
	Durability    Durability
	NextLSN       uint64
	Appended      uint64 // records appended by this process
	Segments      int
	CheckpointLSN uint64
	Checkpoints   int // checkpoints taken by this process
	Err           error

	// Durability instrumentation (live native counters, present even
	// without a metrics registry; see also the wal.* registry metrics).
	CheckpointLag  uint64        // records appended since the last checkpoint
	Fsyncs         uint64        // fsyncs issued by this process
	FsyncTotal     time.Duration // total time spent in fsync
	BytesAppended  int64         // record bytes appended by this process
	Recovery       time.Duration // startup scan + logical replay
	TruncatedTails uint64        // torn tails repaired at startup

	// Incremental-checkpoint accounting for the newest checkpoint this
	// process took: bytes actually written (manifest plus new relation
	// segments) vs. the checkpoint's full footprint (manifest plus every
	// referenced segment), and the written/reused segment split. The
	// wrote÷total ratio is what segment reuse saved — near 1.0 on the
	// first checkpoint, small after a narrow update.
	CheckpointWroteBytes  int64
	CheckpointTotalBytes  int64
	CheckpointSegsWritten int
	CheckpointSegsReused  int
}

func (s WALStatus) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wal: dir=%s durability=%s next-lsn=%d appended=%d segments=%d checkpoint-lsn=%d checkpoints=%d",
		s.Dir, s.Durability, s.NextLSN, s.Appended, s.Segments, s.CheckpointLSN, s.Checkpoints)
	if s.CheckpointTotalBytes > 0 {
		fmt.Fprintf(&b, " ckpt-wrote=%d/%d (segs %d new, %d reused)",
			s.CheckpointWroteBytes, s.CheckpointTotalBytes,
			s.CheckpointSegsWritten, s.CheckpointSegsReused)
	}
	if s.Err != nil {
		fmt.Fprintf(&b, " ERROR=%v", s.Err)
	}
	return b.String()
}

// WALStatus reports the attached log's state; ok is false on a DB opened
// without a WAL.
func (db *DB) WALStatus() (WALStatus, bool) {
	if db.wal == nil {
		return WALStatus{}, false
	}
	st := db.wal.Status()
	db.mu.Lock()
	d := db.walDurability
	db.mu.Unlock()
	return WALStatus{
		Dir:            st.Dir,
		Durability:     d,
		NextLSN:        st.NextLSN,
		Appended:       st.Appended,
		Segments:       st.Segments,
		CheckpointLSN:  st.CheckpointLSN,
		Checkpoints:    st.Checkpoints,
		Err:            st.Err,
		CheckpointLag:  st.CheckpointLag,
		Fsyncs:         st.Fsyncs,
		FsyncTotal:     time.Duration(st.FsyncNanos),
		BytesAppended:  st.BytesAppended,
		Recovery:       time.Duration(st.RecoveryNS + st.ReplayNS),
		TruncatedTails: st.TruncatedTails,

		CheckpointWroteBytes:  st.CheckpointWroteBytes,
		CheckpointTotalBytes:  st.CheckpointTotalBytes,
		CheckpointSegsWritten: st.CheckpointSegsWritten,
		CheckpointSegsReused:  st.CheckpointSegsReused,
	}, true
}

// Close releases the durability layer: deferred WAL records are synced
// and the active segment is closed. A DB opened without a WAL closes to
// nil. The DB must not be used after Close.
func (db *DB) Close() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.Close()
}
