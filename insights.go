package idl

import (
	"fmt"
	"hash/fnv"
	"time"

	"idl/internal/ast"
	"idl/internal/core"
	"idl/internal/federation"
	"idl/internal/insights"
	"idl/internal/qlog"
)

// Query insights facade. When enabled, every query, update request and
// program call folds into a statement digest keyed by its AST
// fingerprint — the same structural key the plan cache uses — so the
// workload condenses into one record per query shape with call/error
// counts, a rolling latency window, plan-cache outcome tallies, and the
// evaluator's per-operation resource accounting (rows scanned, tuples
// emitted, fixpoint rounds, index work, federation fetches, WAL bytes).
// Statements that cross the configured absolute or self-relative
// latency threshold capture an exemplar: the facade-minted trace ID,
// the correlated span tree (when tracing is on), and a flight-recorder
// excerpt.

type (
	// InsightsConfig tunes the statement-digest store (see
	// insights.Config for field semantics and defaults).
	InsightsConfig = insights.Config
	// StatementDigest is one statement shape's accumulated record.
	StatementDigest = insights.Digest
	// StatementExemplar is one captured slow execution.
	StatementExemplar = insights.Exemplar
	// StatementResources is the per-digest resource-accounting record.
	StatementResources = insights.Resources
)

// exemplarEventTail bounds the flight-recorder excerpt attached to a
// captured exemplar.
const exemplarEventTail = 8

// EnableInsights attaches a statement-digest store with cfg (zero
// fields take the package defaults; the zero Config is a sensible
// production setting with capture off). Enabling replaces any previous
// store and its accumulated digests.
func (db *DB) EnableInsights(cfg InsightsConfig) {
	s := insights.New(cfg)
	s.SetCaptureSource(db.captureContext)
	db.mu.Lock()
	db.insights = s
	db.mu.Unlock()
}

// DisableInsights detaches the store; instrumented paths return to one
// nil test of overhead. Accumulated digests are discarded.
func (db *DB) DisableInsights() {
	db.mu.Lock()
	db.insights = nil
	db.mu.Unlock()
}

// InsightsEnabled reports whether a digest store is attached.
func (db *DB) InsightsEnabled() bool { return db.insightsRef() != nil }

// insightsRef returns the attached store without creating one (nil when
// insights are off).
func (db *DB) insightsRef() *insights.Store {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.insights
}

// Statements returns every tracked statement digest, ordered by
// descending total evaluation time. It fails when insights are not
// enabled (call EnableInsights), mirroring Traces.
func (db *DB) Statements() ([]StatementDigest, error) {
	s := db.insightsRef()
	if s == nil {
		return nil, fmt.Errorf("idl: insights are not enabled (call EnableInsights)")
	}
	return s.Digests(), nil
}

// TopStatements returns the k highest digests ordered by "calls",
// "p99", "rows" (rows scanned), or "time" (total evaluation time);
// k <= 0 returns all.
func (db *DB) TopStatements(k int, by string) ([]StatementDigest, error) {
	s := db.insightsRef()
	if s == nil {
		return nil, fmt.Errorf("idl: insights are not enabled (call EnableInsights)")
	}
	return s.Top(k, by)
}

// Statement looks up one digest by its 16-hex fingerprint, returning
// the digest and its captured slow-query exemplars (oldest first).
func (db *DB) Statement(fingerprint string) (StatementDigest, []StatementExemplar, error) {
	s := db.insightsRef()
	if s == nil {
		return StatementDigest{}, nil, fmt.Errorf("idl: insights are not enabled (call EnableInsights)")
	}
	fp, err := insights.ParseFingerprint(fingerprint)
	if err != nil {
		return StatementDigest{}, nil, err
	}
	d, exs, ok := s.Get(fp)
	if !ok {
		return StatementDigest{}, nil, fmt.Errorf("idl: no statement with fingerprint %s", fingerprint)
	}
	return d, exs, nil
}

// StatementsDropped reports observations of new statement shapes the
// MaxDigests bound discarded (0 when insights are off).
func (db *DB) StatementsDropped() uint64 {
	if s := db.insightsRef(); s != nil {
		return s.Dropped()
	}
	return 0
}

// ResetStatements drops every digest and exemplar, keeping the store
// attached. A no-op when insights were never enabled.
func (db *DB) ResetStatements() {
	if s := db.insightsRef(); s != nil {
		s.Reset()
	}
}

// captureContext is the store's exemplar source: the retained span tree
// whose root carries the trace ID, and the tail of the flight-recorder
// ring leading up to the capture.
func (db *DB) captureContext(traceID string) (*QuerySpan, []*qlog.Event) {
	var root *QuerySpan
	if t := db.engine.Tracer(); t != nil && traceID != "" {
		for _, s := range t.Recent() {
			for _, a := range s.Attrs {
				if a.Key == "trace" && a.Str == traceID {
					root = s
				}
			}
		}
	}
	events := db.rec.Events()
	if len(events) > exemplarEventTail {
		events = events[len(events)-exemplarEventTail:]
	}
	return root, events
}

// insightsResources widens the evaluator's resource record; the facade
// layers federation fetches and WAL bytes on top at the call sites.
func insightsResources(r core.Resources) insights.Resources {
	return insights.Resources{
		RowsScanned:    r.RowsScanned,
		TuplesEmitted:  r.TuplesEmitted,
		FixpointRounds: r.FixpointRounds,
		IndexBuilds:    r.IndexBuilds,
		IndexProbes:    r.IndexProbes,
	}
}

// observeQuery folds one finished read-only evaluation into the store.
// Called after op.End, so the journal record exists and the root span
// is filed — the exemplar's trace ID joins both.
func (db *DB) observeQuery(s *insights.Store, q *ast.Query, start time.Time, tid string, ans *Result, rep *federation.Report, err error) {
	if s == nil {
		return
	}
	o := insights.Observation{
		Fingerprint: ast.Fingerprint(q),
		Kind:        "query",
		Text:        q.String,
		Duration:    time.Since(start),
		Err:         err != nil,
		TraceID:     tid,
	}
	if ans != nil {
		o.Resources = insightsResources(ans.Resources)
		o.Degraded = ans.Degraded != nil
		if ans.Plan != nil {
			o.PlanCache = ans.Plan.Cache
		}
	}
	if rep != nil {
		o.Resources.FedFetches = uint64(len(rep.Sources))
	}
	s.Observe(o)
}

// observeExec folds one finished update request or program call into
// the store. walBytes is the payload length appended to the WAL (0
// when no WAL is attached or the commit failed before the append).
func (db *DB) observeExec(s *insights.Store, fp uint64, kind, text string, start time.Time, tid string, info *ExecInfo, walBytes int, err error) {
	if s == nil {
		return
	}
	o := insights.Observation{
		Fingerprint: fp,
		Kind:        kind,
		Text:        func() string { return text },
		Duration:    time.Since(start),
		Err:         err != nil,
		TraceID:     tid,
	}
	if info != nil {
		o.Resources = insightsResources(info.Resources)
	}
	if walBytes > 0 {
		o.Resources.WALBytes = uint64(walBytes)
	}
	s.Observe(o)
}

// callFingerprint identifies a program call by its target: calls have
// no query AST, so the digest key is an FNV-1a hash of the program's
// namespace-qualified name — every invocation of one program is one
// shape, regardless of parameter values.
func callFingerprint(namespace, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte("call:"))
	h.Write([]byte(namespace))
	h.Write([]byte("."))
	h.Write([]byte(name))
	return h.Sum64()
}
