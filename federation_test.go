package idl

import (
	"errors"
	"strings"
	"testing"
	"time"

	"idl/internal/federation"
	"idl/internal/stocks"
)

// The chaos suite: federated members behind deterministic fault
// schedules over the paper's stock workload. The invariants under test:
// with zero faults a federation-wrapped engine answers exactly like the
// seed engine; in best-effort mode the answer equals the full answer
// restricted to live members; breakers open and recover on schedule;
// updates never reach member snapshots.

// paperQuerySuite is the full §2/§4.3 example suite over the three
// stock schemas.
func paperQuerySuite() []string {
	var out []string
	above := stocks.QueryAnyAbove(100)
	highest := stocks.QueryHighestPerDay()
	for _, schema := range []string{"euter", "chwab", "ource"} {
		out = append(out, above[schema], highest[schema])
	}
	return append(out, stocks.QueryCrossJoin)
}

// memberTuples extracts the three member databases from a seeded DB so
// the identical data can be mounted as sources elsewhere.
func memberTuples(t *testing.T, db *DB) map[string]*Tuple {
	t.Helper()
	out := map[string]*Tuple{}
	for _, name := range []string{"euter", "chwab", "ource"} {
		v, ok := db.Engine().Base().Get(name)
		if !ok {
			t.Fatalf("seed db missing %s", name)
		}
		out[name] = v.(*Tuple)
	}
	return out
}

func sortedAnswer(t *testing.T, db *DB, q string) string {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	res.Sort()
	return res.String()
}

// TestFederationZeroFaultEquivalence is the acceptance gate: with no
// faults injected, mounting the members behind the full resilience
// stack changes no answer on the paper example suite, views included.
func TestFederationZeroFaultEquivalence(t *testing.T) {
	seed := Open()
	seedStocks(t, seed)
	if err := seed.DefineViews(stocks.RulesUnified...); err != nil {
		t.Fatal(err)
	}

	fed := Open()
	cfg := DefaultFederationConfig()
	cfg.RetryBase = time.Millisecond
	cfg.RetryCap = time.Millisecond
	for name, member := range memberTuples(t, seed) {
		if err := fed.Mount(name, Resilient(NewMemorySource(name, member), cfg)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.DefineViews(stocks.RulesUnified...); err != nil {
		t.Fatal(err)
	}

	suite := append(paperQuerySuite(), "?.dbI.p(.date=D, .stk=S, .price=P)")
	for _, q := range suite {
		want := sortedAnswer(t, seed, q)
		got := sortedAnswer(t, fed, q)
		if got != want {
			t.Errorf("federated answer drifts for %q:\n--- federated ---\n%s\n--- seed ---\n%s", q, got, want)
		}
	}
	res, err := fed.Query("?.euter.r(.stkCode=S)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != nil {
		t.Errorf("healthy federation should not report degradation: %v", res.Degraded)
	}
}

// TestFederationBestEffortPartialAnswers checks the degradation
// semantics: with chwab dead, every best-effort answer equals the full
// answer restricted to the live members, and the report names the dead
// member and the skipped conjuncts.
func TestFederationBestEffortPartialAnswers(t *testing.T) {
	seed := Open()
	seedStocks(t, seed)
	members := memberTuples(t, seed)

	// Reference: the same universe with chwab absent entirely.
	live := Open()
	live.Engine().Base().Put("euter", members["euter"])
	live.Engine().Base().Put("ource", members["ource"])
	live.Engine().Invalidate()
	if err := live.DefineViews(stocks.RulesUnified...); err != nil {
		t.Fatal(err)
	}

	opts := DefaultOptions()
	opts.BestEffort = true
	fed := OpenWithOptions(opts)
	mustMount(t, fed, "euter", NewMemorySource("euter", members["euter"]))
	mustMount(t, fed, "ource", NewMemorySource("ource", members["ource"]))
	dead := federation.Inject(NewMemorySource("chwab", members["chwab"]), federation.InjectorConfig{ErrorRate: 1})
	mustMount(t, fed, "chwab", dead)
	if err := fed.DefineViews(stocks.RulesUnified...); err != nil {
		t.Fatal(err)
	}

	// The unified view degrades to the live members' contribution.
	q := "?.dbI.p(.date=D, .stk=S, .price=P)"
	want := sortedAnswer(t, live, q)
	res, err := fed.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	res.Sort()
	if res.String() != want {
		t.Errorf("best-effort view answer:\n--- got ---\n%s\n--- want (live members only) ---\n%s", res.String(), want)
	}
	if res.Degraded == nil || !res.Degraded.Degraded() {
		t.Fatal("answer should carry a degradation report")
	}
	if down := res.Degraded.Unavailable(); len(down) != 1 || down[0] != "chwab" {
		t.Errorf("unavailable = %v, want [chwab]", down)
	}

	// A direct query over the dead member: empty, with the conjunct
	// reported skipped.
	res, err = fed.Query("?.chwab.r(.date=D, .hp=P)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("dead member returned %d rows", res.Len())
	}
	if res.Degraded == nil || len(res.Degraded.Skipped) != 1 {
		t.Fatalf("skipped conjuncts = %+v", res.Degraded)
	}

	// Explain marks the conjunct too.
	plan, err := fed.Explain("?.chwab.r(.date=D), .euter.r(.stkCode=S)")
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(plan, "skipped: member unavailable") {
		t.Errorf("explain does not mark the dead member:\n%s", plan)
	}
}

// TestFederationFailFast: the default mode preserves single-site
// semantics — an unreachable member is a typed error, not a partial
// answer.
func TestFederationFailFast(t *testing.T) {
	seed := Open()
	seedStocks(t, seed)
	members := memberTuples(t, seed)

	fed := Open() // BestEffort off
	mustMount(t, fed, "euter", NewMemorySource("euter", members["euter"]))
	dead := federation.Inject(NewMemorySource("chwab", members["chwab"]), federation.InjectorConfig{ErrorRate: 1})
	mustMount(t, fed, "chwab", dead)

	_, err := fed.Query("?.euter.r(.stkCode=S)")
	var serr *SourceError
	if !errors.As(err, &serr) {
		t.Fatalf("err = %v, want *SourceError", err)
	}
	if serr.Source != "chwab" {
		t.Errorf("failing source = %s", serr.Source)
	}
}

// TestFederationBreakerSchedule drives a scripted outage through the
// breaker with a fake clock: three failures open the circuit, the open
// circuit rejects the next sync without touching the member, and after
// the cooldown a successful probe closes it and the data comes back.
func TestFederationBreakerSchedule(t *testing.T) {
	seed := Open()
	seedStocks(t, seed)
	members := memberTuples(t, seed)

	flaky := federation.Inject(NewMemorySource("chwab", members["chwab"]), federation.InjectorConfig{
		Script: []federation.Fault{{Kind: federation.FaultError}, {Kind: federation.FaultError}, {Kind: federation.FaultError}},
	})
	clock := time.Unix(1000, 0)
	breaker := federation.NewBreaker(flaky, 3, time.Second)
	breaker.SetClock(func() time.Time { return clock })

	opts := DefaultOptions()
	opts.BestEffort = true
	fed := OpenWithOptions(opts)
	mustMount(t, fed, "chwab", breaker)

	q := "?.chwab.r(.date=D, .hp=P)"
	// Syncs 1–3 consume the scripted failures; the third opens the circuit.
	for i := 1; i <= 3; i++ {
		res, err := fed.Query(q)
		if err != nil || res.Len() != 0 {
			t.Fatalf("sync %d: rows=%v err=%v", i, res, err)
		}
	}
	if breaker.State() != federation.BreakerOpen {
		t.Fatalf("breaker after 3 failures = %v", breaker.State())
	}
	// Sync 4: rejected at the breaker (the script is spent, so a
	// pass-through would have succeeded), report names the open circuit.
	res, err := fed.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	health, ok := res.Degraded.Health("chwab")
	if !ok || health.Breaker != "open" {
		t.Fatalf("sync 4 health = %+v", health)
	}
	if flaky.Calls() != 3 {
		t.Errorf("open circuit still reached the member: calls=%d", flaky.Calls())
	}
	// Cooldown elapses: the half-open probe succeeds and data returns.
	clock = clock.Add(2 * time.Second)
	res, err = fed.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 || res.Degraded != nil {
		t.Fatalf("recovered member: rows=%d degraded=%v", res.Len(), res.Degraded)
	}
	if breaker.State() != federation.BreakerClosed {
		t.Errorf("breaker after recovery = %v", breaker.State())
	}
}

// TestFederationUpdatesRejected: member snapshots are read-only, and
// updates stay fail-fast even in best-effort mode.
func TestFederationUpdatesRejected(t *testing.T) {
	seed := Open()
	seedStocks(t, seed)
	members := memberTuples(t, seed)

	opts := DefaultOptions()
	opts.BestEffort = true
	fed := OpenWithOptions(opts)
	mustMount(t, fed, "euter", NewMemorySource("euter", members["euter"]))

	// Writing into a member snapshot is rejected outright.
	if _, err := fed.Query("?.euter.r(.stkCode=S)"); err != nil {
		t.Fatal(err)
	}
	_, err := fed.Exec("?.euter.r+(.date=4/1/85, .stkCode=new, .clsPrice=1)")
	if err == nil || !containsStr(err.Error(), "federated source snapshot") {
		t.Fatalf("update on member snapshot: %v", err)
	}
	// Local databases stay writable alongside members.
	fed.Catalog().Insert("local", "r", Tup("x", 1))
	if _, err := fed.Exec("?.local.r+(.x=2)"); err != nil {
		t.Fatal(err)
	}

	// Updates fail fast when any member is unreachable, BestEffort
	// notwithstanding: requests are all-or-nothing.
	dead := federation.Inject(NewMemorySource("chwab", members["chwab"]), federation.InjectorConfig{ErrorRate: 1})
	mustMount(t, fed, "chwab", dead)
	_, err = fed.Exec("?.local.r+(.x=3)")
	var serr *SourceError
	if !errors.As(err, &serr) {
		t.Fatalf("best-effort update with dead member: %v, want *SourceError", err)
	}
}

// TestFederationSeededChaosDeterminism: the same seed over the same
// statement sequence reproduces byte-identical results, degraded
// reports included.
func TestFederationSeededChaosDeterminism(t *testing.T) {
	seed := Open()
	seedStocks(t, seed)
	members := memberTuples(t, seed)

	run := func() string {
		opts := DefaultOptions()
		opts.BestEffort = true
		fed := OpenWithOptions(opts)
		for _, name := range []string{"chwab", "euter", "ource"} {
			injected := federation.Inject(NewMemorySource(name, members[name]), federation.InjectorConfig{
				Seed:          91,
				ErrorRate:     0.4,
				TruncateRate:  0.2,
				TruncateAfter: 1,
			})
			mustMount(t, fed, name, injected)
		}
		var out string
		for _, q := range paperQuerySuite() {
			res, err := fed.Query(q)
			if err != nil {
				t.Fatalf("query %q: %v", q, err)
			}
			res.Sort()
			out += ">> " + q + "\n" + res.String() + "\n"
			if res.Degraded != nil {
				out += res.Degraded.String() + "\n"
			}
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("chaos schedule not reproducible:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if !containsStr(a, "degraded:") {
		t.Errorf("seed 91 at 40%% error rate should degrade something:\n%s", a)
	}
}

// TestFederationMountLifecycle covers mount/unmount edges: name
// collisions, sources listing, and snapshot removal on unmount.
func TestFederationMountLifecycle(t *testing.T) {
	db := Open()
	member := Tup("r", SetOf(Tup("x", 1)))
	mustMount(t, db, "", NewMemorySource("m", member))
	if got := db.Sources(); len(got) != 1 || got[0] != "m" {
		t.Fatalf("sources = %v", got)
	}
	if err := db.Mount("m", NewMemorySource("m", member)); err == nil {
		t.Error("duplicate mount should fail")
	}
	db.Catalog().Insert("localdb", "r", Tup("x", 1))
	if err := db.Mount("localdb", NewMemorySource("localdb", member)); err == nil {
		t.Error("mount over a local database should fail")
	}
	res, err := db.Query("?.m.r(.x=X)")
	if err != nil || res.Len() != 1 {
		t.Fatalf("member query: %v %v", res, err)
	}
	if err := db.Unmount("m"); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query("?.m.r(.x=X)")
	if err != nil || res.Len() != 0 {
		t.Fatalf("after unmount: %v %v", res, err)
	}
	if err := db.Unmount("m"); err == nil {
		t.Error("double unmount should fail")
	}
}

func mustMount(t *testing.T, db *DB, name string, src Source) {
	t.Helper()
	if err := db.Mount(name, src); err != nil {
		t.Fatal(err)
	}
}

func containsStr(s, sub string) bool { return strings.Contains(s, sub) }
