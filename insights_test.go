package idl

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Query-insights facade tests: statement digests keyed by AST
// fingerprint, per-operation resource accounting, adaptive slow-query
// capture, and the exemplar ↔ journal ↔ trace correlation.

func TestInsightsDisabledByDefault(t *testing.T) {
	db := Open()
	if db.InsightsEnabled() {
		t.Fatal("insights should be off by default")
	}
	if _, err := db.Statements(); err == nil || !strings.Contains(err.Error(), "insights are not enabled") {
		t.Fatalf("Statements without a store = %v", err)
	}
	if _, err := db.TopStatements(3, "calls"); err == nil {
		t.Fatal("TopStatements without a store should fail")
	}
	if _, _, err := db.Statement("0000000000000001"); err == nil {
		t.Fatal("Statement without a store should fail")
	}
	db.ResetStatements() // must not panic
	if db.StatementsDropped() != 0 {
		t.Fatal("dropped counter without a store")
	}
}

func TestStatementDigestAccumulation(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	db.EnableInsights(InsightsConfig{})
	if !db.InsightsEnabled() {
		t.Fatal("InsightsEnabled after enable")
	}

	const q = "?.euter.r(.stkCode=S, .clsPrice>100)"
	for i := 0; i < 3; i++ {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("+.euter.r(.date=3/9/85, .stkCode=tandem, .clsPrice=19)"); err != nil {
		t.Fatal(err)
	}

	digests, err := db.Statements()
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) != 2 {
		t.Fatalf("digests = %d, want 2 (one query shape, one exec shape): %+v", len(digests), digests)
	}
	var qd, ed *StatementDigest
	for i := range digests {
		switch digests[i].Kind {
		case "query":
			qd = &digests[i]
		case "exec":
			ed = &digests[i]
		}
	}
	if qd == nil || ed == nil {
		t.Fatalf("missing kinds: %+v", digests)
	}
	if qd.Calls != 3 {
		t.Fatalf("query calls = %d", qd.Calls)
	}
	if qd.Text != q {
		t.Fatalf("query text = %q", qd.Text)
	}
	if len(qd.Fingerprint) != 16 {
		t.Fatalf("fingerprint = %q", qd.Fingerprint)
	}
	if qd.Resources.RowsScanned == 0 || qd.Resources.TuplesEmitted == 0 {
		t.Fatalf("query resources not threaded: %+v", qd.Resources)
	}
	// Every query resolves through the plan cache; the outcomes must
	// tally to the call count (first cold, rest hits in the steady state).
	if got := qd.PlanHit + qd.PlanStale + qd.PlanMiss + qd.PlanCold; got != qd.Calls {
		t.Fatalf("plan outcomes %d != calls %d (%+v)", got, qd.Calls, qd)
	}
	if qd.PlanHit == 0 {
		t.Fatalf("repeated query never hit the plan cache: %+v", qd)
	}
	if ed.Calls != 1 || ed.Resources.TuplesEmitted == 0 {
		t.Fatalf("exec digest: %+v", ed)
	}
	if qd.TotalNS <= 0 || qd.MeanNS <= 0 || qd.WindowCount != 3 {
		t.Fatalf("latency accounting: %+v", qd)
	}

	// Point lookup round-trips through the hex fingerprint.
	d, _, err := db.Statement(qd.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if d.Calls != 3 || d.Text != q {
		t.Fatalf("Statement(%s) = %+v", qd.Fingerprint, d)
	}
	if _, _, err := db.Statement("ffffffffffffffff"); err == nil {
		t.Fatal("unknown fingerprint should fail")
	}

	// Top orderings at the facade.
	top, err := db.TopStatements(1, "calls")
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Fingerprint != qd.Fingerprint {
		t.Fatalf("TopStatements(calls) = %+v", top)
	}
	if _, err := db.TopStatements(1, "nope"); err == nil {
		t.Fatal("unknown ordering should fail")
	}

	db.ResetStatements()
	if ds, _ := db.Statements(); len(ds) != 0 {
		t.Fatalf("digests after reset: %+v", ds)
	}
}

func TestCallDigestPerProgram(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	if err := db.DefinePrograms(".dbU.delStk(.stk=S) -> .euter.r-(.stkCode=S)"); err != nil {
		t.Fatal(err)
	}
	db.EnableInsights(InsightsConfig{})
	// Different parameters, one program: one digest.
	for _, stk := range []string{"hp", "ibm"} {
		if _, err := db.Call("dbU", "delStk", map[string]any{"S": stk}); err != nil {
			t.Fatal(err)
		}
	}
	digests, err := db.Statements()
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) != 1 {
		t.Fatalf("digests = %+v, want one call shape", digests)
	}
	d := digests[0]
	if d.Kind != "call" || d.Calls != 2 {
		t.Fatalf("call digest: %+v", d)
	}
	if !strings.Contains(d.Text, "dbU.delStk") {
		t.Fatalf("call text: %q", d.Text)
	}
	if d.Resources.TuplesEmitted == 0 {
		t.Fatalf("call resources not threaded: %+v", d.Resources)
	}
}

// TestSlowQueryExemplarJoinsJournal is the acceptance correlation: a
// query crossing the slow threshold captures an exemplar whose trace ID
// matches (a) the retained span tree and (b) the workload journal's
// record for that query.
func TestSlowQueryExemplarJoinsJournal(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	path := filepath.Join(t.TempDir(), "w.idlog")
	if err := db.StartJournal(path, nil); err != nil {
		t.Fatal(err)
	}
	db.EnableTracing(8)
	// 1ns absolute threshold: every observation is "slow".
	db.EnableInsights(InsightsConfig{SlowThreshold: time.Nanosecond})

	const q = "?.euter.r(.stkCode=S, .clsPrice=62)"
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}

	digests, err := db.Statements()
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) != 1 {
		t.Fatalf("digests = %+v", digests)
	}
	_, exemplars, err := db.Statement(digests[0].Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if len(exemplars) != 1 {
		t.Fatalf("exemplars = %+v", exemplars)
	}
	ex := exemplars[0]
	if ex.TraceID == "" || ex.DurationNS <= 0 {
		t.Fatalf("exemplar: %+v", ex)
	}
	// (a) The captured span tree is this query's: its root carries the
	// same facade-minted trace ID.
	if ex.Trace == nil {
		t.Fatal("exemplar captured no span tree despite tracing on")
	}
	if got := attrStr(ex.Trace, "trace"); got != ex.TraceID {
		t.Fatalf("span trace = %q, exemplar trace = %q", got, ex.TraceID)
	}
	if len(ex.Events) == 0 {
		t.Fatal("exemplar carries no flight-recorder excerpt")
	}

	// (b) The journal record for the query carries the same trace ID.
	if err := db.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.TraceID == ex.TraceID {
			if r.Kind != EventQuery || r.Text != q {
				t.Fatalf("journal record for trace %s = %+v", ex.TraceID, r)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no journal record with trace %s in %+v", ex.TraceID, recs)
	}
}

func TestExecWALBytesAccounted(t *testing.T) {
	db, _, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.EnableInsights(InsightsConfig{})
	if _, err := db.Exec("+.euter.r(.date=3/9/85, .stkCode=tandem, .clsPrice=19)"); err != nil {
		t.Fatal(err)
	}
	digests, err := db.Statements()
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) != 1 || digests[0].Resources.WALBytes == 0 {
		t.Fatalf("WAL bytes not accounted: %+v", digests)
	}
}

// TestResetMetricsClearsWindowedState pins the PR 7 reset semantics:
// ResetMetrics zeroes rolling windows and SLO trackers, not just the
// cumulative instruments.
func TestResetMetricsClearsWindowedState(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	reg := db.Metrics()
	if err := db.SetSLO("engine.query", time.Second, 0.99); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("?.euter.r(.stkCode=S, .clsPrice=62)"); err != nil {
		t.Fatal(err)
	}
	if ws, ok := reg.WindowValue("engine.query.latency"); !ok || ws.Count == 0 {
		t.Fatalf("precondition: window empty (ok=%v count=%d)", ok, ws.Count)
	}
	db.ResetMetrics()
	if ws, ok := reg.WindowValue("engine.query.latency"); ok && ws.Count != 0 {
		t.Fatalf("window survived ResetMetrics: count=%d", ws.Count)
	}
	for _, s := range reg.SLOStatuses() {
		if s.Total != 0 || s.Bad != 0 {
			t.Fatalf("SLO window survived ResetMetrics: %+v", s)
		}
	}
}

// TestTraceRetention pins the bounded trace ring: evictions count under
// traces.dropped, the bound is runtime-adjustable, and the export
// envelope reports the drop count.
func TestTraceRetention(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	db.Metrics() // attach first so EnableTracing wires the drop counter
	db.EnableTracing(2)
	if got := db.TraceRetention(); got != 2 {
		t.Fatalf("TraceRetention = %d", got)
	}
	for i := 0; i < 5; i++ {
		if _, err := db.Query("?.euter.r(.stkCode=S, .clsPrice=62)"); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.TracesDropped(); got != 3 {
		t.Fatalf("TracesDropped = %d, want 3", got)
	}
	if got := db.Metrics().CounterValue("traces.dropped"); got != 3 {
		t.Fatalf("traces.dropped counter = %d, want 3", got)
	}
	traces, err := db.Traces()
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("retained traces = %d", len(traces))
	}
	// Shrinking evicts immediately and counts the evictions.
	db.SetTraceRetention(1)
	if got := db.TracesDropped(); got != 4 {
		t.Fatalf("TracesDropped after shrink = %d, want 4", got)
	}
	var buf bytes.Buffer
	if err := db.ExportTraces(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dropped": 4`) {
		t.Fatalf("export envelope missing drop count: %s", buf.String())
	}
}
