package idl

import (
	"fmt"
	"strings"
	"time"

	"idl/internal/obs"
)

// Health reporting: rolling-window operation latencies (p50/p99/p999
// over the last minute, not since process start) plus SLO burn rates and
// durability state, as one structured report. This is the signal plane
// an admission controller or a human at the REPL (`\health`) reads to
// decide whether the engine is keeping up — cumulative counters in
// `\stats` answer "how much work happened", Health answers "how is it
// going right now".

// OpHealth is one operation kind's rolling-window latency summary.
type OpHealth struct {
	Name       string        `json:"name"`
	WindowNS   int64         `json:"window_ns"`
	Count      uint64        `json:"count"`
	RatePerSec float64       `json:"rate_per_sec"`
	MeanNS     int64         `json:"mean_ns"`
	P50NS      int64         `json:"p50_ns"`
	P99NS      int64         `json:"p99_ns"`
	P999NS     int64         `json:"p999_ns"`
	MaxNS      int64         `json:"max_ns"`
	Window     time.Duration `json:"-"`
}

// WALHealth is the durability layer's health entry, a JSON-friendly
// projection of WALStatus.
type WALHealth struct {
	Dir            string `json:"dir"`
	Durability     string `json:"durability"`
	LSN            uint64 `json:"lsn"`
	Segments       int    `json:"segments"`
	CheckpointLSN  uint64 `json:"checkpoint_lsn"`
	CheckpointLag  uint64 `json:"checkpoint_lag"`
	Fsyncs         uint64 `json:"fsyncs"`
	FsyncTotalNS   int64  `json:"fsync_total_ns"`
	BytesAppended  int64  `json:"bytes_appended"`
	RecoveryNS     int64  `json:"recovery_ns"`
	TruncatedTails uint64 `json:"truncated_tails"`
	Err            string `json:"err,omitempty"`
}

// StatementHealth is one statement digest's entry in the health report:
// the heaviest query shapes by total evaluation time, joined in when
// insights are enabled.
type StatementHealth struct {
	Fingerprint string `json:"fingerprint"`
	Kind        string `json:"kind"`
	Calls       uint64 `json:"calls"`
	Errors      uint64 `json:"errors"`
	RowsScanned uint64 `json:"rows_scanned"`
	P99NS       int64  `json:"p99_ns"`
	TotalNS     int64  `json:"total_ns"`
}

// MVCCHealth is the snapshot version chain's health entry, a
// JSON-friendly projection of MVCCStats: whether a head snapshot is
// published, how many versions readers are holding live, and the
// estimated retained footprint.
type MVCCHealth struct {
	LiveVersions  int      `json:"live_versions"`
	HeadEpoch     uint64   `json:"head_epoch"`
	HeadPublished bool     `json:"head_published"`
	PinnedReaders int64    `json:"pinned_readers"`
	PinnedEpochs  []uint64 `json:"pinned_epochs,omitempty"`
	RetainedBytes int64    `json:"retained_bytes"`
	Freezes       uint64   `json:"freezes"`
	Collected     uint64   `json:"collected"`
	COWClones     uint64   `json:"cow_clones"`
	MaxRevisions  int      `json:"max_revisions"`
}

// HealthReport is the DB's point-in-time health: rolling-window latency
// summaries per operation kind, SLO statuses, the heaviest statement
// digests (when insights are enabled), the MVCC version chain, and (for
// durable sessions) the WAL's state.
type HealthReport struct {
	Ops        []OpHealth        `json:"ops"`
	SLOs       []obs.SLOStatus   `json:"slos"`
	Statements []StatementHealth `json:"statements,omitempty"`
	MVCC       *MVCCHealth       `json:"mvcc,omitempty"`
	WAL        *WALHealth        `json:"wal,omitempty"`
}

// Healthy reports whether every SLO is inside its error budget and the
// WAL (when attached) has not failed.
func (h *HealthReport) Healthy() bool {
	for _, s := range h.SLOs {
		if !s.Healthy {
			return false
		}
	}
	return h.WAL == nil || h.WAL.Err == ""
}

// String renders the report for the REPL's \health command.
func (h *HealthReport) String() string {
	var b strings.Builder
	state := "healthy"
	if !h.Healthy() {
		state = "UNHEALTHY"
	}
	fmt.Fprintf(&b, "health: %s\n", state)
	for _, op := range h.Ops {
		fmt.Fprintf(&b, "%s: win=%s n=%d rate=%.3g/s mean=%s p50=%s p99=%s p999=%s max=%s\n",
			op.Name, op.Window, op.Count, op.RatePerSec,
			time.Duration(op.MeanNS), time.Duration(op.P50NS),
			time.Duration(op.P99NS), time.Duration(op.P999NS), time.Duration(op.MaxNS))
	}
	for _, s := range h.SLOs {
		fmt.Fprintf(&b, "%s\n", s.String())
	}
	for _, d := range h.Statements {
		fmt.Fprintf(&b, "digest %s kind=%s calls=%d err=%d rows=%d p99=%s total=%s\n",
			d.Fingerprint, d.Kind, d.Calls, d.Errors, d.RowsScanned,
			time.Duration(d.P99NS), time.Duration(d.TotalNS))
	}
	if m := h.MVCC; m != nil {
		fmt.Fprintf(&b, "mvcc: versions=%d/%d head-epoch=%d published=%t pinned=%d retained-bytes=%d freezes=%d collected=%d cow-clones=%d\n",
			m.LiveVersions, m.MaxRevisions, m.HeadEpoch, m.HeadPublished,
			m.PinnedReaders, m.RetainedBytes, m.Freezes, m.Collected, m.COWClones)
	}
	if h.WAL != nil {
		fmt.Fprintf(&b, "wal: durability=%s lsn=%d segments=%d checkpoint-lag=%d fsyncs=%d fsync-total=%s appended-bytes=%d recovery=%s truncated-tails=%d",
			h.WAL.Durability, h.WAL.LSN, h.WAL.Segments, h.WAL.CheckpointLag,
			h.WAL.Fsyncs, time.Duration(h.WAL.FsyncTotalNS), h.WAL.BytesAppended,
			time.Duration(h.WAL.RecoveryNS), h.WAL.TruncatedTails)
		if h.WAL.Err != "" {
			fmt.Fprintf(&b, " ERROR=%s", h.WAL.Err)
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

// opWindows are the operation kinds Health reports, in render order.
// The server.* entries populate only when internal/server fronts this
// DB (the wire server observes per-endpoint latencies into the same
// registry); WindowValue misses are skipped, so embedded sessions
// render the engine ops alone.
var opWindows = []string{
	"engine.query", "engine.exec", "engine.call",
	"server.query", "server.exec", "server.prepare", "server.prepared",
}

// Health returns the rolling-window health report. It fails when metrics
// are not enabled (Metrics attaches the registry; Mount does too) —
// health is a metrics product, and silently returning an empty report
// would read as "healthy".
func (db *DB) Health() (*HealthReport, error) {
	reg := db.metricsRef()
	if reg == nil {
		return nil, fmt.Errorf("idl: metrics are not enabled (call Metrics or mount a member)")
	}
	h := &HealthReport{}
	for _, name := range opWindows {
		ws, ok := reg.WindowValue(name + ".latency")
		if !ok {
			continue
		}
		h.Ops = append(h.Ops, OpHealth{
			Name:       name,
			WindowNS:   int64(ws.Window),
			Window:     ws.Window,
			Count:      ws.Count,
			RatePerSec: ws.Rate(),
			MeanNS:     int64(ws.Mean()),
			P50NS:      int64(ws.Quantile(0.50)),
			P99NS:      int64(ws.Quantile(0.99)),
			P999NS:     int64(ws.Quantile(0.999)),
			MaxNS:      int64(ws.Max),
		})
	}
	h.SLOs = reg.SLOStatuses()
	if s := db.insightsRef(); s != nil {
		// The three busiest shapes by call count: enough to name the
		// workload's hot statements without flooding the report (the full
		// table, including time/p99/rows orderings, lives behind
		// Statements / \top). Calls order deterministically (fingerprint
		// tiebreak), so the report goldens byte-stably.
		if tops, err := s.Top(3, "calls"); err == nil {
			for _, d := range tops {
				h.Statements = append(h.Statements, StatementHealth{
					Fingerprint: d.Fingerprint,
					Kind:        d.Kind,
					Calls:       d.Calls,
					Errors:      d.Errors,
					RowsScanned: d.Resources.RowsScanned,
					P99NS:       d.P99NS,
					TotalNS:     d.TotalNS,
				})
			}
		}
	}
	ms := db.MVCCStats()
	h.MVCC = &MVCCHealth{
		LiveVersions:  ms.LiveVersions,
		HeadEpoch:     ms.HeadEpoch,
		HeadPublished: ms.HeadPublished,
		PinnedReaders: ms.PinnedReaders,
		PinnedEpochs:  ms.PinnedEpochs,
		RetainedBytes: ms.RetainedBytes,
		Freezes:       ms.Freezes,
		Collected:     ms.Collected,
		COWClones:     ms.COWClones,
		MaxRevisions:  ms.MaxRevisions,
	}
	if st, ok := db.WALStatus(); ok {
		wh := &WALHealth{
			Dir:            st.Dir,
			Durability:     st.Durability.String(),
			LSN:            st.NextLSN - 1,
			Segments:       st.Segments,
			CheckpointLSN:  st.CheckpointLSN,
			CheckpointLag:  st.CheckpointLag,
			Fsyncs:         st.Fsyncs,
			FsyncTotalNS:   int64(st.FsyncTotal),
			BytesAppended:  st.BytesAppended,
			RecoveryNS:     int64(st.Recovery),
			TruncatedTails: st.TruncatedTails,
		}
		if st.Err != nil {
			wh.Err = st.Err.Error()
		}
		h.WAL = wh
	}
	return h, nil
}

// SetSLO adjusts one operation SLO (name "engine.query", "engine.exec"
// or "engine.call") at runtime: target is the latency above which an
// operation burns error budget, objective the required good fraction
// (0 < objective < 1). Non-positive target / out-of-range objective
// leave the respective parameter unchanged. It fails when metrics are
// not enabled.
func (db *DB) SetSLO(name string, target time.Duration, objective float64) error {
	reg := db.metricsRef()
	if reg == nil {
		return fmt.Errorf("idl: metrics are not enabled (call Metrics or mount a member)")
	}
	t := reg.SLO(name, 0, 0)
	t.SetTarget(target)
	t.SetObjective(objective)
	return nil
}
