// Package idl is an implementation of IDL — the Interoperable Database
// Language of Krishnamurthy, Litwin & Kent (SIGMOD 1991) — a higher-order
// Horn-clause language that makes databases with schematic discrepancies
// interoperable: variables may range over data AND metadata (attribute,
// relation and database names), views may define a data-dependent number
// of relations, and update programs give views updatability.
//
// A DB owns a universe of databases (a nested tuple: database → relations
// → sets of tuples) and evaluates queries, update requests, view rules
// and update programs against it:
//
//	db := idl.Open()
//	db.Catalog().Insert("euter", "r",
//	    idl.Tup("date", idl.Date(1985, 3, 3), "stkCode", "hp", "clsPrice", 50))
//	res, err := db.Query("?.euter.r(.stkCode=S, .clsPrice>40)")
//	// res.Rows[0]["S"] == idl.Str("hp")
//
// See README.md for the language tour and DESIGN.md for how this
// implementation maps to the paper.
package idl

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"idl/internal/ast"
	"idl/internal/catalog"
	"idl/internal/core"
	"idl/internal/federation"
	"idl/internal/insights"
	"idl/internal/object"
	"idl/internal/obs"
	"idl/internal/parser"
	"idl/internal/qlog"
	"idl/internal/schema"
	"idl/internal/storage"
	"idl/internal/wal"
)

// Re-exported value types. Objects are value-based: atoms, tuples of
// named objects, and sets (paper §3).
type (
	// Value is any IDL object.
	Value = object.Object
	// Tuple is an ordered collection of named objects.
	Tuple = object.Tuple
	// Set is a value-based collection of objects.
	Set = object.Set
	// Str is a string atom.
	Str = object.Str
	// Int is an integer atom.
	Int = object.Int
	// Float is a floating-point atom.
	Float = object.Float
	// Bool is a boolean atom.
	Bool = object.Bool
	// Null is the null atomic object; it satisfies no atomic expression.
	Null = object.Null
	// DateValue is a calendar-date atom.
	DateValue = object.Date
)

// Result is a query answer: the set of grounding substitutions for the
// query's free variables.
type Result = core.Answer

// Row is one answer substitution.
type Row = core.Row

// ExecInfo tallies what an update request changed.
type ExecInfo = core.ExecResult

// Stats counts evaluator work (scans, index probes, enumerations).
type Stats = core.Stats

// MVCCStats reports the engine's snapshot version chain: live versions,
// pinned readers, retained bytes, and copy-on-write / collection
// counters (see Options.MaxRevisions and Options.SerialReads).
type MVCCStats = core.MVCCStats

// Options tune the engine (index use, semi-naive evaluation, iteration
// bound).
type Options = core.Options

// Program describes a registered update program.
type Program = core.Program

// Date builds a date value; two-digit years are interpreted as 19xx the
// way the paper writes them.
func Date(year, month, day int) DateValue { return object.NewDate(year, month, day) }

// Tup builds a tuple from alternating attribute/value pairs; values may
// be Go literals (bool, int, float64, string) or Values.
func Tup(pairs ...any) *Tuple { return object.TupleOf(pairs...) }

// SetOf builds a set from values.
func SetOf(values ...any) *Set { return object.SetOf(values...) }

// Schema constraint types (the paper's §8 metadata extension: types,
// keys, referential integrity).
type (
	// SchemaRegistry holds relation constraint declarations.
	SchemaRegistry = schema.Registry
	// RelDecl declares constraints for one relation.
	RelDecl = schema.RelDecl
	// AttrDecl declares one attribute's type and nullability.
	AttrDecl = schema.AttrDecl
	// ForeignKey declares referential integrity across relations (and
	// databases).
	ForeignKey = schema.ForeignKey
)

// Attribute type constants for AttrDecl.
const (
	AnyType    = schema.AnyType
	IntType    = schema.IntType
	FloatType  = schema.FloatType
	NumberType = schema.NumberType
	StringType = schema.StringType
	DateType   = schema.DateType
	BoolType   = schema.BoolType
)

// DB is a universe of databases with an IDL engine over it. All methods
// are safe for concurrent use.
type DB struct {
	mu     sync.Mutex
	engine *core.Engine
	cat    *catalog.Catalog
	schema *schema.Registry

	// Observability (see obs.go): the registry is created lazily by
	// Metrics (or the first Mount) and attached to engine and catalog;
	// nil means metrics are off and instrumented paths cost one nil test.
	metrics       *obs.Registry
	lastReport    *federation.Report
	snapshotBytes int64 // size of the last snapshot saved or loaded

	// Temporal observability (see qlog.go): the flight recorder is on
	// from Open — a lock-free ring of the last events — and grows an
	// event log / workload journal when attached.
	rec *qlog.Recorder

	// Query insights (see insights.go): per-statement digests keyed by
	// AST fingerprint with adaptive slow-query capture; nil means
	// insights are off and the hot path pays one nil test.
	insights *insights.Store

	// Durability (see durability.go): DBs opened with OpenWAL log every
	// committed mutation here; nil means no WAL and commit hooks cost one
	// nil test. walCommit serializes apply+append on the exec path so the
	// log's record order matches the engine's apply order.
	wal           *wal.Log
	walCommit     sync.Mutex
	walDurability Durability

	// Trace identity (see trace.go): traceBase is a per-process random
	// base XORed with a golden-ratio-stepped sequence, so trace IDs are
	// unique across restarts but cheap to mint.
	traceBase uint64
	traceSeq  atomic.Uint64
}

// DefaultOptions returns the production engine defaults — the options
// Open uses. Start from these when customizing (e.g. Options.BestEffort
// for federated degradation).
func DefaultOptions() Options { return core.DefaultOptions() }

// Open creates an empty universe with default engine options.
func Open() *DB { return OpenWithOptions(DefaultOptions()) }

// OpenWithOptions creates an empty universe with explicit options.
func OpenWithOptions(opts Options) *DB {
	engine := core.NewEngineWithOptions(opts)
	cat := catalog.New(engine.Base(), engine.Invalidate)
	// Federated member snapshots install through the engine mutex so
	// source syncs stay coherent with concurrent queries.
	cat.SetApplier(engine.UpdateBase)
	// DDL and bulk loads mutate relation sets inside applier functors;
	// the barrier copy-on-writes any set shared with a live MVCC
	// snapshot before the catalog touches it.
	cat.SetWriteBarrier(engine.MutableSet)
	// The catalog epoch is the engine's mutation counter — the version
	// key of the plan cache and statistics layer.
	cat.SetEpochSource(engine.Epoch)
	// Worker parallelism extends to member syncs: fetches overlap up to
	// the same degree the evaluator partitions scans.
	cat.SetFetchConcurrency(opts.Workers)
	// Member fetches join the caller's trace when tracing is enabled.
	cat.SetTracer(engine.Tracer)
	return &DB{
		engine:    engine,
		cat:       cat,
		rec:       qlog.NewRecorder(qlog.DefaultRingSize),
		traceBase: newTraceBase(),
	}
}

// OpenSnapshot loads a universe previously written by Save.
func OpenSnapshot(path string) (*DB, error) {
	u, size, err := storage.LoadFileSized(path)
	if err != nil {
		return nil, err
	}
	db := Open()
	u.Each(func(name string, v Value) bool {
		db.engine.Base().Put(name, v)
		return true
	})
	db.engine.Invalidate()
	db.snapshotBytes = size
	return db, nil
}

// Save writes the base universe (not derived views) to path atomically.
func (db *DB) Save(path string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var start time.Time
	if db.metrics != nil {
		start = time.Now()
	}
	size, err := storage.SaveFileSized(path, db.engine.Base())
	if err == nil {
		db.snapshotBytes = size
	}
	if db.metrics != nil {
		db.metrics.Counter("storage.save.count").Inc()
		if err != nil {
			db.metrics.Counter("storage.save.errors").Inc()
		} else {
			db.metrics.Gauge("storage.snapshot_bytes").Set(size)
		}
		db.metrics.Histogram("storage.save.latency").Observe(time.Since(start))
	}
	return err
}

// Catalog exposes DDL and metadata introspection.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Engine exposes the underlying evaluation engine for advanced use
// (statistics, AST-level queries).
func (db *DB) Engine() *core.Engine { return db.engine }

// Query evaluates a pure query (the leading `?` is optional) against the
// effective universe — base databases plus materialized views. Mounted
// member databases (see Mount) are synced first.
func (db *DB) Query(src string) (*Result, error) {
	return db.QueryCtx(context.Background(), src)
}

// Exec runs an update request: a conjunction of query expressions, update
// expressions, and update-program calls, executed left to right under a
// shared substitution bag. Requests are atomic.
func (db *DB) Exec(src string) (*ExecInfo, error) {
	return db.ExecCtx(context.Background(), src)
}

// DefineView registers one view rule, e.g.
//
//	.dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)
func (db *DB) DefineView(src string) error {
	r, err := parser.ParseRule(src)
	if err != nil {
		return err
	}
	err = db.engine.AddRule(r)
	db.rec.Emit(qlog.KindRule, r.String(), err)
	if err == nil {
		_, err = db.walAppend(wal.TypeRule, []byte(r.String()))
	}
	return err
}

// DefineViews registers several view rules, stopping at the first error.
func (db *DB) DefineViews(srcs ...string) error {
	for _, src := range srcs {
		if err := db.DefineView(src); err != nil {
			return fmt.Errorf("idl: rule %q: %w", src, err)
		}
	}
	return nil
}

// DefineProgram registers one update-program clause, e.g.
//
//	.dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S, .date=D)
func (db *DB) DefineProgram(src string) error {
	c, err := parser.ParseClause(src)
	if err != nil {
		return err
	}
	err = db.engine.AddClause(c)
	db.rec.Emit(qlog.KindClause, c.String(), err)
	if err == nil {
		_, err = db.walAppend(wal.TypeClause, []byte(c.String()))
	}
	return err
}

// DefinePrograms registers several clauses, stopping at the first error.
func (db *DB) DefinePrograms(srcs ...string) error {
	for _, src := range srcs {
		if err := db.DefineProgram(src); err != nil {
			return fmt.Errorf("idl: clause %q: %w", src, err)
		}
	}
	return nil
}

// Call invokes a named update program with parameter bindings keyed by
// the program's head variables. Values may be Go literals or Values.
func (db *DB) Call(namespace, name string, params map[string]any) (*ExecInfo, error) {
	return db.CallCtx(context.Background(), namespace, name, params)
}

// CallCtx is Call under a context: member sync and program execution
// observe cancellation and deadlines, and a ctx already tagged with a
// trace ID (the wire server's X-Trace-Id adoption) keeps it.
func (db *DB) CallCtx(ctx context.Context, namespace, name string, params map[string]any) (*ExecInfo, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	converted := make(map[string]Value, len(params))
	for k, v := range params {
		switch x := v.(type) {
		case Value:
			converted[k] = x
		case bool:
			converted[k] = Bool(x)
		case int:
			converted[k] = Int(x)
		case int64:
			converted[k] = Int(x)
		case float64:
			converted[k] = Float(x)
		case string:
			converted[k] = Str(x)
		default:
			return nil, fmt.Errorf("idl: unsupported parameter type %T for %s", v, k)
		}
	}
	ins := db.insightsRef()
	op := db.rec.Begin(qlog.KindCall)
	tracer := db.engine.Tracer()
	var tid string
	if op != nil || tracer != nil || (ins != nil && ins.CaptureEnabled()) {
		tid = db.traceIDFor(ctx)
		op.SetTraceID(tid)
		if op == nil {
			ctx = qlog.WithTraceID(ctx, tid)
		} else if tracer != nil {
			ctx = op.Context(ctx)
		}
	}
	var text string
	if op != nil || db.wal != nil || ins != nil {
		var attrs map[string]string
		if p, ok := db.engine.LookupProgram(namespace, name); ok {
			attrs = p.ParamAttrs()
		}
		// The IDL rendering serves both the journal and the WAL: a logged
		// call replays as an ordinary update request.
		text = callText(namespace, name, converted, attrs)
		op.SetText(text)
	}
	var start time.Time
	if ins != nil {
		start = time.Now()
	}
	// Programs run updates; member sync is fail-fast like Exec.
	if _, err := db.syncSources(ctx, false); err != nil {
		op.End(err)
		db.observeExec(ins, callFingerprint(namespace, name), "call", text, start, tid, nil, 0, err)
		return nil, err
	}
	var info *ExecInfo
	var err error
	var walBytes int
	if db.wal != nil {
		db.walCommit.Lock()
		info, err = db.engine.CallCtx(ctx, namespace, name, converted)
		if err == nil {
			if err = db.walAppendTraced(ctx, wal.TypeExec, []byte(text)); err == nil {
				walBytes = len(text)
			}
		}
		db.walCommit.Unlock()
	} else {
		info, err = db.engine.CallCtx(ctx, namespace, name, converted)
	}
	if info != nil {
		sum, changes := execSummary(info)
		op.SetExec(sum, changes)
	}
	op.End(err)
	db.observeExec(ins, callFingerprint(namespace, name), "call", text, start, tid, info, walBytes, err)
	return info, err
}

// callText renders a program invocation in IDL surface syntax —
// `?.ns.name(.attr=v, …)` with sorted parameters — so journaled calls
// are replayable as ordinary update requests. attrs translates the
// call's parameter variables into the attribute names the program's
// head declares (S → stk); variables the program does not declare (or
// calls to unknown programs) keep their given keys.
func callText(namespace, name string, params map[string]Value, attrs map[string]string) string {
	keys := make([]string, 0, len(params))
	rendered := make(map[string]string, len(params))
	for k := range params {
		r := k
		if attr, ok := attrs[k]; ok {
			r = attr
		}
		keys = append(keys, k)
		rendered[k] = r
	}
	sort.Slice(keys, func(i, j int) bool { return rendered[keys[i]] < rendered[keys[j]] })
	var b strings.Builder
	fmt.Fprintf(&b, "?.%s.%s(", namespace, name)
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, ".%s=%s", rendered[k], params[k])
	}
	b.WriteByte(')')
	return b.String()
}

// execSummary converts an engine ExecResult into the journal's
// serializable form plus the total mutation count.
func execSummary(info *ExecInfo) (qlog.ExecSummary, int) {
	sum := qlog.ExecSummary{
		ElemsInserted: info.ElemsInserted,
		ElemsDeleted:  info.ElemsDeleted,
		AttrsCreated:  info.AttrsCreated,
		AttrsDeleted:  info.AttrsDeleted,
		ValuesSet:     info.ValuesSet,
		Bindings:      info.Bindings,
	}
	changes := info.ElemsInserted + info.ElemsDeleted + info.AttrsCreated + info.AttrsDeleted + info.ValuesSet
	return sum, changes
}

// Load runs a `;`-separated IDL script: rules and clauses register, and
// queries / update requests execute in order. It returns the results of
// the executed statements.
func (db *DB) Load(src string) ([]*ScriptResult, error) {
	return db.LoadCtx(context.Background(), src)
}

// isProgramCall reports whether any conjunct targets a registered update
// program (such statements route through Execute even without signs).
func (db *DB) isProgramCall(q *ast.Query) bool {
	for _, c := range q.Body.Conjuncts {
		a, ok := c.(*ast.AttrExpr)
		if !ok {
			continue
		}
		dbName, ok := constStr(a.Name)
		if !ok {
			continue
		}
		te, ok := a.Expr.(*ast.TupleExpr)
		if !ok || len(te.Conjuncts) != 1 {
			continue
		}
		inner, ok := te.Conjuncts[0].(*ast.AttrExpr)
		if !ok {
			continue
		}
		name, ok := constStr(inner.Name)
		if !ok {
			continue
		}
		if _, found := db.engine.LookupProgram(dbName, name); found {
			return true
		}
	}
	return false
}

func constStr(t ast.Term) (string, bool) {
	c, ok := t.(ast.Const)
	if !ok {
		return "", false
	}
	s, ok := c.Value.(Str)
	return string(s), ok
}

// ScriptResult reports one executed script statement.
type ScriptResult struct {
	Statement string
	Kind      string // "rule", "clause", "query", "exec"
	Answer    *Result
	Exec      *ExecInfo
}

// Schema returns the constraint registry, installing integrity
// enforcement on first use: every subsequent mutating request is
// validated against the declarations and rolled back on violation. Bulk
// loads through the Catalog are not auto-validated; call ValidateSchema
// after loading.
func (db *DB) Schema() *SchemaRegistry {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.schema == nil {
		db.schema = schema.NewRegistry()
		db.engine.SetValidator(db.schema.Validate)
	}
	return db.schema
}

// ValidateSchema checks the current base universe against all schema
// declarations (nil if none are declared).
func (db *DB) ValidateSchema() error {
	db.mu.Lock()
	reg := db.schema
	db.mu.Unlock()
	if reg == nil {
		return nil
	}
	return reg.Validate(db.engine.Base())
}

// Explain returns the engine's evaluation plan for a query: scheduled
// conjunct order, access paths (index/scan), and variable flow. With
// federated members mounted, a best-effort sync runs first so conjuncts
// over unreachable members are marked skipped.
func (db *DB) Explain(src string) (string, error) {
	q, err := parser.ParseQuery(src)
	if err != nil {
		return "", err
	}
	if _, err := db.syncSources(context.Background(), true); err != nil {
		return "", err
	}
	plan, err := db.engine.ExplainQuery(q)
	if err != nil {
		return "", err
	}
	return plan.String(), nil
}

// Programs lists registered update programs.
func (db *DB) Programs() []*Program { return db.engine.Programs() }

// Views lists registered view rules (as source strings).
func (db *DB) Views() []string {
	rules := db.engine.Rules()
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.String()
	}
	return out
}

// Stats returns evaluator counters.
func (db *DB) Stats() Stats { return db.engine.Stats() }

// MVCCStats snapshots the engine's version-chain state: how many
// snapshot versions are retained, which epochs readers have pinned, the
// estimated retained footprint, and the freeze / collect / copy-on-write
// counters. Native counters — available without a metrics registry.
func (db *DB) MVCCStats() MVCCStats { return db.engine.MVCCStats() }

// SetWorkers sets the degree of intra-operation parallelism (see
// Options.Workers): n > 1 partitions large scans across n workers,
// evaluates independent view rules concurrently, and overlaps federated
// member fetches — with answers byte-identical to sequential evaluation.
// 0 and 1 evaluate sequentially; negative values clamp to 0. Safe to
// call at any time, including between queries.
func (db *DB) SetWorkers(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if n < 0 {
		n = 0
	}
	db.engine.SetWorkers(n)
	db.cat.SetFetchConcurrency(n)
}

// Workers returns the configured parallelism degree.
func (db *DB) Workers() int { return db.engine.Workers() }
