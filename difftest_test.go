package idl

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"idl/internal/datalog"
	"idl/internal/object"
	"idl/internal/stocks"
)

// Differential-testing harness (DESIGN.md §10): every experiment script
// E1–E12 and a generated stock workload run under sequential evaluation
// and under parallel evaluation at 2, 4 and 8 workers, and under every
// planning mode — interpreted (no compiled plans), cold-compiled (plan
// per query, cache disabled) and cached (the default epoch-keyed plan
// cache); the rendered transcripts — canonical answers, row order,
// update counts, errors — must be byte-identical across the whole
// mode × workers grid. Where the intention is first-order expressible,
// answers are also cross-checked against the internal/datalog baseline.

// diffFixture loads the paper's running example (hp/ibm/sun over three
// days, all three schemas) — the same fixture cmd/idlexp uses.
func diffFixture(t testing.TB, db *DB) {
	t.Helper()
	cat := db.Catalog()
	dates := []DateValue{Date(85, 3, 1), Date(85, 3, 2), Date(85, 3, 3)}
	prices := map[string][]int{"hp": {50, 55, 62}, "ibm": {140, 155, 160}, "sun": {201, 210, 150}}
	stockOrder := []string{"hp", "ibm", "sun"}
	for _, s := range stockOrder {
		for i, p := range prices[s] {
			if _, err := cat.Insert("euter", "r", Tup("date", dates[i], "stkCode", s, "clsPrice", p)); err != nil {
				t.Fatal(err)
			}
			if _, err := cat.Insert("ource", s, Tup("date", dates[i], "clsPrice", p)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, d := range dates {
		row := Tup("date", d)
		for _, s := range stockOrder {
			row.Put(s, Int(prices[s][i]))
		}
		if _, err := cat.Insert("chwab", "r", row); err != nil {
			t.Fatal(err)
		}
	}
}

// diffExperiment is one scripted experiment: an optional environment
// builder plus the statement sequence (queries, updates, rules, clauses
// and program calls all load through db.Load).
type diffExperiment struct {
	name  string
	setup func(t testing.TB, db *DB)
	stmts []string
}

var e12Programs = []string{
	".dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S,.date=D)",
	".dbU.delStk(.stk=S, .date=D) -> .chwab.r(.date=D, .S-=X)",
	".dbU.delStk(.stk=S, .date=D) -> .ource.S-(.date=D)",
	".dbU.rmStk(.stk=S) -> .euter.r-(.stkCode=S)",
	".dbU.rmStk(.stk=S) -> .chwab.r(-.S)",
	".dbU.rmStk(.stk=S) -> .ource-.S",
	".dbU.insStk(.stk=S, .date=D, .price=P) -> .euter.r+(.stkCode=S,.date=D,.clsPrice=P)",
	".dbU.insStk(.stk=S, .date=D, .price=P) -> .chwab.r(.date=D, +.S=P)",
	".dbU.insStk(.stk=S, .date=D, .price=P) -> .ource.S+(.date=D,.clsPrice=P)",
	".dbI.p+(.date=D, .stk=S, .price=P) -> .euter.r+(.date=D, .stkCode=S, .clsPrice=P)",
	".dbO.S+(.date=D, .clsPrice=P) -> .dbI.p+(.date=D, .stk=S, .price=P)",
}

// diffExperiments mirrors cmd/idlexp's E1–E12 statement-for-statement.
var diffExperiments = []diffExperiment{
	{name: "E1", stmts: []string{
		"?.euter.r(.stkCode=hp, .clsPrice>60)",
		"?.euter.r(.stkCode=hp,.clsPrice>60,.date=D), .euter.r(.stkCode=ibm,.clsPrice>150,.date=D)",
		"?.euter.r(.stkCode=hp,.clsPrice=P,.date=D), .euter.r~(.stkCode=hp, .clsPrice>P)",
		"?.euter.r(.stkCode=S, .clsPrice>200)",
	}},
	{name: "E2", stmts: []string{
		"?.X", "?.ource.Y", "?.X.Y, X = ource", "?.X.Y", "?.X.hp",
		"?.X.Y(.stkCode)", "?.euter.Y, .chwab.Y, .ource.Y",
	}},
	{name: "E3", stmts: []string{
		"?.euter.r(.stkCode=S, .clsPrice>200)",
		"?.chwab.r(.S>200)",
		"?.ource.S(.clsPrice > 200)",
	}},
	{name: "E4", stmts: []string{
		"?.chwab.r(.date=D,.S=P), .ource.S(.date=D,.clsPrice=P)",
	}},
	{name: "E5", stmts: []string{
		"?.euter.r(.date=D,.stkCode=S,.clsPrice=P), .euter.r~(.date=D, .clsPrice>P)",
		"?.chwab.r(.date=D,.S=P), .chwab.r~(.date=D,.S2>P), S != date",
		"?.ource.S(.date=D,.clsPrice=P), ~.ource.S2(.date=D, .clsPrice>P)",
	}},
	{name: "E6", stmts: []string{
		"?.euter.r+(.date=3/4/85,.stkCode=hp,.clsPrice=70)",
		"?.euter.r(.date=3/4/85,.stkCode=hp,.clsPrice=P)",
		"?.euter.r(.date=3/4/85,.stkCode=hp,.clsPrice=C),.euter.r-(.date=3/4/85,.stkCode=hp,.clsPrice=C)",
		"?.euter.r(.date=3/4/85,.stkCode=hp)",
	}},
	{name: "E7", stmts: []string{
		"?.chwab.r(.date=3/3/85, .hp-=C)",
		"?.chwab.r(.date=3/3/85, .hp=P)",
		"?.chwab.r(.date=3/3/85, .A), A = hp",
		"?.chwab.r(.date=3/2/85, -.hp=C)",
		"?.chwab.r(.date=D, .hp=P)",
	}},
	{name: "E8", stmts: []string{
		"?.chwab.r(.date=3/3/85,.hp=C), .chwab.r-(.date=3/3/85,.hp=C), .chwab.r+(.date=3/3/85,.hp=C+10)",
		"?.chwab.r(.date=3/3/85,.hp=P)",
	}},
	{name: "E9", setup: func(t testing.TB, db *DB) {
		if err := db.DefineViews(stocks.RulesUnified...); err != nil {
			t.Fatal(err)
		}
		if err := db.DefineView(stocks.RulePnew); err != nil {
			t.Fatal(err)
		}
	}, stmts: []string{
		"?.dbI.p(.stk=S, .price>200)",
		"?.chwab.r(.date=3/1/85,.hp=C), .chwab.r-(.date=3/1/85,.hp=C), .chwab.r+(.date=3/1/85,.hp=51)",
		"?.dbI.p(.stk=hp, .date=3/1/85, .price=P)",
		"?.dbI.pnew(.stk=hp, .date=3/1/85, .price=P)",
	}},
	{name: "E10", setup: func(t testing.TB, db *DB) {
		if err := db.DefineViews(stocks.RulesUnified...); err != nil {
			t.Fatal(err)
		}
		if err := db.DefineViews(stocks.RulesCustomized...); err != nil {
			t.Fatal(err)
		}
	}, stmts: []string{
		"?.dbE.r(.date=3/3/85,.stkCode=S,.clsPrice=P)",
		"?.dbC.r(.date=3/2/85, .hp=HP, .ibm=IBM, .sun=SUN)",
		"?.dbO.Y",
		"?.euter.r+(.date=3/1/85,.stkCode=dec,.clsPrice=80)",
		"?.dbO.Y",
		"?.dbO.dec(.date=D,.clsPrice=P)",
	}},
	{name: "E12", setup: func(t testing.TB, db *DB) {
		if err := db.DefineViews(stocks.RulesUnified...); err != nil {
			t.Fatal(err)
		}
		if err := db.DefineViews(stocks.RulesCustomized...); err != nil {
			t.Fatal(err)
		}
		if err := db.DefinePrograms(e12Programs...); err != nil {
			t.Fatal(err)
		}
	}, stmts: []string{
		"?.dbU.delStk(.stk=hp, .date=3/3/85)",
		"?.euter.r(.stkCode=hp,.date=3/3/85)",
		"?.dbU.rmStk(.stk=ibm)",
		"?.ource.Y",
		"?.dbU.insStk(.stk=dec, .date=3/1/85, .price=80)",
		"?.chwab.r(.date=3/1/85,.dec=P)",
		"?.dbO.newco+(.date=3/9/85, .clsPrice=7)",
		"?.dbO.newco(.date=D,.clsPrice=P)",
		"?.euter.r(.stkCode=newco,.clsPrice=P)",
	}},
}

// e11Experiment needs its own tiny fixture (name-mapping databases).
func e11Transcript(t testing.TB, mode func(*Options), workers int) []string {
	t.Helper()
	db := diffOpen(mode, workers)
	cat := db.Catalog()
	d := Date(85, 3, 1)
	for _, ins := range []struct {
		db, rel string
		tup     *Tuple
	}{
		{"euter", "r", Tup("date", d, "stkCode", "hewlettPackard", "clsPrice", 50)},
		{"chwab", "r", Tup("date", d, "hp", 50)},
		{"ource", "hpq", Tup("date", d, "clsPrice", 50)},
		{"maps", "mapCE", Tup("from", "hp", "to", "hewlettPackard")},
		{"maps", "mapOE", Tup("from", "hpq", "to", "hewlettPackard")},
	} {
		if _, err := cat.Insert(ins.db, ins.rel, ins.tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DefineViews(stocks.RulesUnifiedMapped...); err != nil {
		t.Fatal(err)
	}
	return diffTranscript(t, db, []string{"?.dbI.p(.stk=S,.price=P)"})
}

// diffTranscript runs the statements in order and renders every
// observable outcome deterministically — including the raw row order of
// each answer, which the parallel merge must reproduce exactly.
func diffTranscript(t testing.TB, db *DB, stmts []string) []string {
	t.Helper()
	var out []string
	for _, stmt := range stmts {
		results, err := db.Load(stmt)
		if err != nil {
			out = append(out, fmt.Sprintf("error: %v", err))
			continue
		}
		for _, r := range results {
			switch r.Kind {
			case "query":
				out = append(out, "answer: "+r.Answer.String())
				for i, row := range r.Answer.Rows {
					var cells []string
					for _, v := range r.Answer.Vars {
						cells = append(cells, fmt.Sprintf("%s=%s", v, row[v]))
					}
					out = append(out, fmt.Sprintf("row[%d]: %s", i, strings.Join(cells, " ")))
				}
			case "exec":
				out = append(out, fmt.Sprintf("exec: +%d -%d +a%d -a%d set%d bind%d",
					r.Exec.ElemsInserted, r.Exec.ElemsDeleted, r.Exec.AttrsCreated,
					r.Exec.AttrsDeleted, r.Exec.ValuesSet, r.Exec.Bindings))
			default:
				out = append(out, r.Kind+": "+r.Statement)
			}
		}
	}
	return out
}

// diffCompare fails with a readable first-divergence report.
func diffCompare(t *testing.T, label string, seq, par []string) {
	t.Helper()
	n := len(seq)
	if len(par) < n {
		n = len(par)
	}
	for i := 0; i < n; i++ {
		if seq[i] != par[i] {
			t.Fatalf("%s: transcript diverges at line %d\nsequential: %s\nparallel:   %s", label, i, seq[i], par[i])
		}
	}
	if len(seq) != len(par) {
		t.Fatalf("%s: transcript length diverges: sequential %d lines, parallel %d", label, len(seq), len(par))
	}
}

var diffWorkerCounts = []int{2, 4, 8}

// diffModes are the planning modes the grid covers. "interpreted" is the
// baseline: scheduling analysis recomputed per evaluation, no plans.
// "cold" compiles a plan for every query but never caches it.
// "cached" is the production default: the epoch-keyed plan cache.
var diffModes = []struct {
	name string
	set  func(*Options)
}{
	{"interpreted", func(o *Options) { o.Interpret = true }},
	{"cold", func(o *Options) { o.NoPlanCache = true }},
	{"cached", func(o *Options) {}},
}

// diffOpen builds a DB in the named planning mode at a worker count.
func diffOpen(mode func(*Options), workers int) *DB {
	opts := DefaultOptions()
	mode(&opts)
	db := OpenWithOptions(opts)
	db.SetWorkers(workers)
	return db
}

// TestDifferentialExperiments runs E1–E12 across the full planning-mode ×
// worker-count grid, byte-comparing every transcript against the
// sequential interpreted baseline.
func TestDifferentialExperiments(t *testing.T) {
	for _, exp := range diffExperiments {
		exp := exp
		t.Run(exp.name, func(t *testing.T) {
			run := func(mode func(*Options), workers int) []string {
				db := diffOpen(mode, workers)
				diffFixture(t, db)
				if exp.setup != nil {
					exp.setup(t, db)
				}
				return diffTranscript(t, db, exp.stmts)
			}
			base := run(diffModes[0].set, 0)
			for _, m := range diffModes {
				for _, w := range append([]int{0}, diffWorkerCounts...) {
					if m.name == diffModes[0].name && w == 0 {
						continue
					}
					diffCompare(t, fmt.Sprintf("%s mode=%s workers=%d", exp.name, m.name, w), base, run(m.set, w))
				}
			}
		})
	}
	t.Run("E11", func(t *testing.T) {
		base := e11Transcript(t, diffModes[0].set, 0)
		for _, m := range diffModes {
			for _, w := range append([]int{0}, diffWorkerCounts...) {
				if m.name == diffModes[0].name && w == 0 {
					continue
				}
				diffCompare(t, fmt.Sprintf("E11 mode=%s workers=%d", m.name, w), base, e11Transcript(t, m.set, w))
			}
		}
	})
}

// TestDifferentialMVCCModes byte-compares the two concurrency-control
// modes: SerialReads (every query under the engine mutex — the old
// single-mutex behavior) and MVCC snapshot reads (the default lock-free
// path), across worker counts 0/1/2/4/8, over every E1–E12 experiment.
// The read path must be invisible to answers, row order, update counts
// and errors alike.
func TestDifferentialMVCCModes(t *testing.T) {
	ccModes := []struct {
		name string
		set  func(*Options)
	}{
		{"mutex", func(o *Options) { o.SerialReads = true }},
		{"mvcc", func(o *Options) {}},
	}
	workerGrid := []int{0, 1, 2, 4, 8}
	for _, exp := range diffExperiments {
		exp := exp
		t.Run(exp.name, func(t *testing.T) {
			run := func(mode func(*Options), workers int) []string {
				db := diffOpen(mode, workers)
				diffFixture(t, db)
				if exp.setup != nil {
					exp.setup(t, db)
				}
				return diffTranscript(t, db, exp.stmts)
			}
			base := run(ccModes[0].set, 0)
			for _, m := range ccModes {
				for _, w := range workerGrid {
					if m.name == ccModes[0].name && w == 0 {
						continue
					}
					diffCompare(t, fmt.Sprintf("%s cc=%s workers=%d", exp.name, m.name, w), base, run(m.set, w))
				}
			}
		})
	}
}

// generatedWorkloadStatements is the large-workload script: the paper's
// three intentions over every schema, plus view queries over the unified
// and customized views.
func generatedWorkloadStatements(threshold int) []string {
	var stmts []string
	for _, schema := range []string{"euter", "chwab", "ource"} {
		stmts = append(stmts, stocks.QueryAnyAbove(threshold)[schema])
	}
	for _, schema := range []string{"euter", "chwab", "ource"} {
		stmts = append(stmts, stocks.QueryHighestPerDay()[schema])
	}
	stmts = append(stmts,
		stocks.QueryCrossJoin,
		fmt.Sprintf("?.dbI.p(.stk=S, .price>%d)", threshold),
		"?.dbI.pnew(.date=D, .stk=S, .price=P), .dbI.pnew~(.date=D, .price>P)",
		"?.dbE.r(.stkCode=S, .clsPrice=P), .euter.r~(.stkCode=S, .clsPrice>P)",
		"?.dbO.Y",
	)
	return stmts
}

// TestDifferentialGeneratedWorkload runs the generated stock universe —
// large enough that every query partitions — across the full
// planning-mode × worker-count grid. Each mode's statements run twice
// per DB so the cached mode actually exercises plan-cache hits.
func TestDifferentialGeneratedWorkload(t *testing.T) {
	cfg := stocks.Config{Stocks: 20, Days: 25, Seed: 7, Discrepancies: 9}
	probe := stocks.Generate(cfg)
	threshold := probe.MaxPrice() * 3 / 4
	stmts := generatedWorkloadStatements(threshold)
	// Two passes over the read-only statements: pass one compiles (or
	// interprets), pass two must serve cached plans byte-identically.
	stmts = append(stmts, stmts...)
	run := func(mode func(*Options), workers int) []string {
		db := diffOpen(mode, workers)
		ds := stocks.Generate(cfg)
		ds.Populate(db.Engine().Base())
		db.Engine().Invalidate()
		if err := db.DefineViews(stocks.RulesUnified...); err != nil {
			t.Fatal(err)
		}
		if err := db.DefineView(stocks.RulePnew); err != nil {
			t.Fatal(err)
		}
		if err := db.DefineViews(stocks.RulesCustomized...); err != nil {
			t.Fatal(err)
		}
		return diffTranscript(t, db, stmts)
	}
	base := run(diffModes[0].set, 0)
	for _, m := range diffModes {
		for _, w := range append([]int{0}, diffWorkerCounts...) {
			if m.name == diffModes[0].name && w == 0 {
				continue
			}
			diffCompare(t, fmt.Sprintf("generated workload mode=%s workers=%d", m.name, w), base, run(m.set, w))
		}
	}
	// The cached run above must have actually hit the cache on pass two.
	db := diffOpen(diffModes[2].set, 0)
	ds := stocks.Generate(cfg)
	ds.Populate(db.Engine().Base())
	db.Engine().Invalidate()
	if err := db.DefineViews(stocks.RulesUnified...); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineView(stocks.RulePnew); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineViews(stocks.RulesCustomized...); err != nil {
		t.Fatal(err)
	}
	diffTranscript(t, db, stmts)
	if st := db.PlanCacheStats(); st.Hits == 0 {
		t.Fatalf("cached mode recorded no plan-cache hits: %+v", st)
	}
}

// TestDifferentialDigestCounters extends the differential surface to
// statement insights: for a fixed workload, every digest's call, error
// and resource counters (rows scanned, tuples emitted, fixpoint rounds,
// index work, federation fetches) must be identical whether evaluation
// ran sequentially or at 2/4/8 workers. Latency fields are timing
// products and excluded; everything else in a digest is evaluation
// output and falls under the same byte-identity contract as answers.
func TestDifferentialDigestCounters(t *testing.T) {
	cfg := stocks.Config{Stocks: 12, Days: 15, Seed: 11, Discrepancies: 5}
	probe := stocks.Generate(cfg)
	threshold := probe.MaxPrice() * 3 / 4
	stmts := generatedWorkloadStatements(threshold)

	type key struct{ fp, kind string }
	type counters struct {
		calls, errors uint64
		res           StatementResources
	}
	run := func(workers int) map[key]counters {
		db := diffOpen(diffModes[2].set, workers)
		ds := stocks.Generate(cfg)
		ds.Populate(db.Engine().Base())
		db.Engine().Invalidate()
		if err := db.DefineViews(stocks.RulesUnified...); err != nil {
			t.Fatal(err)
		}
		if err := db.DefineView(stocks.RulePnew); err != nil {
			t.Fatal(err)
		}
		if err := db.DefineViews(stocks.RulesCustomized...); err != nil {
			t.Fatal(err)
		}
		db.EnableInsights(InsightsConfig{})
		diffTranscript(t, db, stmts)
		digests, err := db.Statements()
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[key]counters, len(digests))
		for _, d := range digests {
			out[key{d.Fingerprint, d.Kind}] = counters{d.Calls, d.Errors, d.Resources}
		}
		return out
	}
	base := run(0)
	if len(base) != len(stmts) {
		t.Fatalf("sequential run digested %d statements, want %d", len(base), len(stmts))
	}
	for _, w := range diffWorkerCounts {
		got := run(w)
		if len(got) != len(base) {
			t.Fatalf("workers=%d digested %d statements, sequential %d", w, len(got), len(base))
		}
		for k, b := range base {
			g, ok := got[k]
			if !ok {
				t.Fatalf("workers=%d missing digest %s kind=%s", w, k.fp, k.kind)
			}
			if !reflect.DeepEqual(b, g) {
				t.Errorf("workers=%d digest %s counters diverge:\nsequential: %+v\nparallel:   %+v", w, k.fp, b, g)
			}
		}
	}
}

// TestDifferentialDatalogBaseline cross-checks the first-order-expressible
// intention ("any stock above N") against the internal/datalog baseline,
// for sequential and parallel IDL evaluation alike.
func TestDifferentialDatalogBaseline(t *testing.T) {
	cfg := stocks.Config{Stocks: 15, Days: 20, Seed: 3}
	u, ds := stocks.Universe(cfg)
	threshold := ds.MaxPrice() * 3 / 4

	baseline := map[string][]string{}
	dlE, _, err := stocks.DatalogEuter(u, threshold)
	if err != nil {
		t.Fatal(err)
	}
	dlC, _, err := stocks.DatalogChwab(u, ds.ChwabName, threshold)
	if err != nil {
		t.Fatal(err)
	}
	dlO, _, err := stocks.DatalogOurce(u, ds.OurceName, threshold)
	if err != nil {
		t.Fatal(err)
	}
	for name, dl := range map[string]*datalog.DB{"euter": dlE, "chwab": dlC, "ource": dlO} {
		rows, err := dl.Query(datalog.P("above", datalog.V("S")))
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, row := range rows {
			seen[string(row["S"].(object.Str))] = true
		}
		var names []string
		for s := range seen {
			names = append(names, s)
		}
		sort.Strings(names)
		baseline[name] = names
	}

	for _, workers := range append([]int{0}, diffWorkerCounts...) {
		db := Open()
		db.SetWorkers(workers)
		u.Each(func(name string, v Value) bool {
			db.Engine().Base().Put(name, v)
			return true
		})
		db.Engine().Invalidate()
		for schema, src := range stocks.QueryAnyAbove(threshold) {
			ans, err := db.Query(src)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, src, err)
			}
			seen := map[string]bool{}
			for _, v := range ans.Column("S") {
				seen[string(v.(Str))] = true
			}
			var names []string
			for s := range seen {
				names = append(names, s)
			}
			sort.Strings(names)
			if !reflect.DeepEqual(names, baseline[schema]) {
				t.Errorf("workers=%d %s: IDL %v != datalog %v", workers, schema, names, baseline[schema])
			}
		}
	}
}
