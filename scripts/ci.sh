#!/bin/sh
# Full CI gate: compile everything, vet, then run the whole test suite
# (chaos, concurrency and cancellation tests included) under the race
# detector, and finally regenerate the benchmark snapshot in short mode
# and validate it — the build fails on a malformed BENCH_report.json or
# when enabled-tracing overhead exceeds the bound stated in DESIGN.md §8.
# Run from the repository root: scripts/ci.sh
set -eux

go build ./...
go vet ./...
go test -race ./...

go run ./cmd/idlbench -short -out BENCH_report.json
go run ./cmd/idlbench -validate BENCH_report.json -max-trace-overhead 3.0
