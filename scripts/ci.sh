#!/bin/sh
# Full CI gate: formatting, compile, vet, the whole test suite (chaos,
# concurrency and cancellation tests included) under the race detector
# with shuffled test order, then the benchmark pipeline:
#
#   1. regenerate the snapshot in short mode to BENCH_new.json;
#   2. validate it — malformed reports, unmeasured benchmarks, or
#      tracing / flight-recorder overhead beyond the DESIGN.md §8–§9
#      bounds fail the build;
#   3. compare it against the committed BENCH_report.json — any
#      benchmark more than 25% slower fails the build (the
#      bench-regression gate; a failed compare re-measures once so a
#      transient load spike cannot fail the build by itself);
#   4. promote BENCH_new.json to BENCH_report.json so a passing run
#      leaves the refreshed snapshot ready to commit.
#
# Run from the repository root: scripts/ci.sh
set -eux

test -z "$(gofmt -l .)"

go build ./...
go vet ./...
go test -race -shuffle=on ./...

go run ./cmd/idlbench -short -out BENCH_new.json
go run ./cmd/idlbench -validate BENCH_new.json -max-trace-overhead 3.0 -max-flight-overhead 1.25
# The regression gate, with one confirmation pass: sustained host
# contention can inflate a whole snapshot run, so a failed compare
# re-measures once and only fails when the regression reproduces. A
# real slowdown fails both runs; a noise spike on a loaded CI box
# almost never hits the same benchmark twice.
if ! go run ./cmd/idlbench -compare -max-regress 0.25 BENCH_report.json BENCH_new.json; then
    go run ./cmd/idlbench -short -out BENCH_new.json
    go run ./cmd/idlbench -compare -max-regress 0.25 BENCH_report.json BENCH_new.json
fi
mv BENCH_new.json BENCH_report.json
