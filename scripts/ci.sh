#!/bin/sh
# Full CI gate: formatting, compile, vet, the whole test suite (chaos,
# concurrency and cancellation tests included) under the race detector
# with shuffled test order, a coverage floor on the engine, fuzz smoke
# on the parser and the parallel evaluator, a served-path smoke (idld
# on an ephemeral port: wire replay check, open-loop SLO gates,
# graceful-drain exit 0), then the benchmark pipeline:
#
#   1. regenerate the snapshot in short mode to BENCH_new.json;
#   2. validate it — malformed reports, unmeasured benchmarks,
#      tracing / flight-recorder overhead beyond the DESIGN.md §8–§9
#      bounds, a B13 sync-family parallel speedup below 1.5× at four
#      workers (DESIGN.md §10), a B14 plan-cache hit rate below 0.95,
#      a B14 repeated-query speedup below 1.15× (DESIGN.md §11; the
#      design target is 1.5×, the gate absorbs short-mode timer noise),
#      a B15 WAL read-path tax above 1.15× (queries never append, so
#      the bound is tight), a B15 group-commit amortization below
#      1.5× (DESIGN.md §13; ~8× measured), a B16 windowed-telemetry
#      tax above 1.03× (DESIGN.md §14: rolling histograms and SLO
#      trackers must cost ≤3% on a cheap query), a B17
#      statement-digest tax above 1.03× (DESIGN.md §15: fingerprinting
#      and digest accounting must cost ≤3% per query), a B18
#      during-commit read scaling below 2.5× (DESIGN.md §17: snapshot
#      readers must keep completing while a writer holds the commit
#      path; measured in the thousands, serial readers complete ~0),
#      or a B18 incremental-checkpoint ratio above 0.25 (a
#      single-relation update must rewrite at most a quarter of the
#      universe's checkpoint bytes; ~0.05 measured) fail the build;
#   3. compare it against the committed BENCH_report.json — any
#      benchmark more than 25% slower fails the build (the
#      bench-regression gate; a failed compare re-measures once so a
#      transient load spike cannot fail the build by itself);
#   4. promote BENCH_new.json to BENCH_report.json so a passing run
#      leaves the refreshed snapshot ready to commit.
#
# Run from the repository root: scripts/ci.sh
set -eux

test -z "$(gofmt -l .)"

go build ./...
go vet ./...
go test -race -shuffle=on ./...

# Coverage floor on the engine package: the planner and plan-cache layer
# raised the floor from its 77.8% seed to 80.0% (81.3% measured when the
# planner landed); new evaluation layers must keep the tests that come
# with them.
go test -coverprofile=/tmp/core_cover.out ./internal/core
go tool cover -func=/tmp/core_cover.out | awk '
    /^total:/ {
        sub(/%/, "", $3)
        if ($3 + 0 < 80.0) {
            printf "internal/core coverage %.1f%% below 80.0%% floor\n", $3
            exit 1
        }
        printf "internal/core coverage %.1f%% (floor 80.0%%)\n", $3
    }'

# Crash-recovery smoke: the seeded crash-point grid drives the durable
# session through every WAL write and fsync index (with torn tails) and
# checks the recovered state against the prefix-consistency oracle.
# Short mode strides the grid; the full grid runs in `go test ./...`
# above.
go test -run '^TestCrashPointGrid$|^TestCheckpointRecovery$' -short .

# Fuzz smoke: a short randomized pass over the parser round-trip, the
# sequential-vs-parallel differential oracle, and randomized
# crash-point recovery against the prefix-consistency oracle. Any
# corpus crasher found earlier re-runs here as a regression seed.
go test -run '^$' -fuzz '^FuzzParse$' -fuzztime 15s ./internal/parser
go test -run '^$' -fuzz '^FuzzEvalQuery$' -fuzztime 15s ./internal/core
go test -run '^$' -fuzz '^FuzzRecovery$' -fuzztime 15s .

# Server smoke: capture a queries-only journal, serve the same demo
# universe from idld on an ephemeral port, byte-compare the journal's
# answers through the wire protocol (-check), then drive the pool
# open-loop for 5 s under SLO gates: minimum achieved QPS, a p99
# ceiling generous enough for a loaded CI host (measured p99 is ~2 ms),
# and zero errors. The daemon runs with -debug -mutex-profile so the
# load run doubles as a lock-contention capture: after the open-loop
# pass, /debug/pprof/mutex must serve a non-empty profile (the artifact
# that names the engine's contended locks if the lock-free read path
# regresses) and /debug/mvcc must report a live snapshot version chain.
# The SIGTERM at the end is itself a gate — the daemon must drain
# inflight requests, checkpoint, and exit 0.
go build -o /tmp/idld ./cmd/idld
go build -o /tmp/idlload ./cmd/idlload
rm -f /tmp/server_smoke.idlog /tmp/idld.addr
go run ./cmd/idl -demo -journal /tmp/server_smoke.idlog -script scripts/server_smoke.idl > /dev/null
/tmp/idld -demo -addr 127.0.0.1:0 -addr-file /tmp/idld.addr -debug -mutex-profile 5 &
IDLD_PID=$!
for i in $(seq 100); do test -s /tmp/idld.addr && break; sleep 0.1; done
IDLD_ADDR="http://$(cat /tmp/idld.addr)"
/tmp/idlload -addr "$IDLD_ADDR" -check /tmp/server_smoke.idlog
/tmp/idlload -addr "$IDLD_ADDR" -qps 200 -duration 5s -min-qps 150 -max-p99 250ms -max-error-rate 0 /tmp/server_smoke.idlog
curl -sf "$IDLD_ADDR/debug/pprof/mutex?debug=1" > /tmp/idld_mutex.pprof
test -s /tmp/idld_mutex.pprof
curl -sf "$IDLD_ADDR/debug/mvcc" | grep -q '"head_epoch"'
kill -TERM "$IDLD_PID"
wait "$IDLD_PID"

go run ./cmd/idlbench -short -out BENCH_new.json
go run ./cmd/idlbench -validate BENCH_new.json -max-trace-overhead 3.0 -max-flight-overhead 1.25 -min-parallel-speedup 1.5 -min-plan-cache-hit 0.95 -min-plan-speedup 1.15 -max-wal-overhead 1.15 -min-group-amortize 1.5 -max-telemetry-overhead 1.03 -max-insights-overhead 1.03 -min-read-scaling 2.5 -max-ckpt-ratio 0.25
# The regression gate, with one confirmation pass: sustained host
# contention can inflate a whole snapshot run, so a failed compare
# re-measures once and only fails when the regression reproduces. A
# real slowdown fails both runs; a noise spike on a loaded CI box
# almost never hits the same benchmark twice.
if ! go run ./cmd/idlbench -compare -max-regress 0.25 BENCH_report.json BENCH_new.json; then
    go run ./cmd/idlbench -short -out BENCH_new.json
    go run ./cmd/idlbench -compare -max-regress 0.25 BENCH_report.json BENCH_new.json
fi
mv BENCH_new.json BENCH_report.json
