// Command idlbench is the repository's benchmark snapshot pipeline: it
// runs the B1–B18 engine benchmarks (see DESIGN.md §5, §8, §10–§15, §17)
// against the deterministic internal/stocks workload and writes a
// machine-readable BENCH_report.json — per-benchmark ns/op, allocs/op,
// and the engine's evaluator counters — so performance can be compared
// across commits without parsing `go test -bench` text.
//
// Usage:
//
//	idlbench [-short] [-out BENCH_report.json]   run and write a report
//	idlbench -validate BENCH_report.json         check an existing report
//	idlbench -compare old.json new.json          regression-gate two reports
//
// Flags:
//
//	-short                CI mode: fewer iterations per benchmark
//	-out path             where to write the report (default BENCH_report.json)
//	-max-trace-overhead   validation bound on the enabled-tracing slowdown
//	                      ratio (traced ns/op ÷ plain ns/op); see §8
//	-max-flight-overhead  validation bound on the flight-recorder slowdown
//	                      ratio (recorder-on ns/op ÷ recorder-off ns/op)
//	-max-regress          compare mode: fail when any benchmark's ns/op
//	                      grew by more than this fraction (default 0.25)
//	-min-parallel-speedup validation bound on the B13 sync-family speedup
//	                      at four workers (w1 ns/op ÷ w4 ns/op); the sync
//	                      family is latency-bound, so the bound holds even
//	                      on single-CPU machines
//	-min-plan-cache-hit   validation bound on the B14 cached-family plan
//	                      cache hit rate (hits ÷ lookups)
//	-min-plan-speedup     validation bound on the B14 repeated-query
//	                      speedup (interpreted ns/op ÷ cached ns/op)
//	-max-wal-overhead     validation bound on the B15 query-family WAL
//	                      tax (WAL-on ns/op ÷ WAL-off ns/op): reads never
//	                      append, so the bound is tight
//	-min-group-amortize   validation bound on the B15 exec-family group-
//	                      commit amortization (sync ns/op ÷ group ns/op)
//	-max-telemetry-overhead validation bound on the B16 windowed-telemetry
//	                      tax (windowed ns/op ÷ off ns/op): rolling
//	                      histograms and SLO trackers must stay within a
//	                      few percent of the uninstrumented engine
//	-max-insights-overhead validation bound on the B17 statement-digest
//	                      tax (digests ns/op ÷ off ns/op): fingerprinting,
//	                      digest accounting and the windowed latency
//	                      histogram must stay within a few percent
//	-min-read-scaling     validation bound on the B18 mixed-workload read
//	                      scaling: reads completed by four readers WHILE a
//	                      writer's statement was executing, snapshot-read
//	                      engine ÷ SerialReads engine. Serial readers
//	                      block on the engine mutex for the whole commit,
//	                      so the bound holds even on single-CPU machines
//	-max-ckpt-ratio       validation bound on the B18 incremental
//	                      checkpoint ratio (bytes written ÷ full
//	                      checkpoint footprint after a single-relation
//	                      update): unchanged relation segments must be
//	                      reused by reference
//
// The workload is seeded, so the report's structure — benchmark names,
// iteration floors, engine counters — is identical run to run; only the
// timing fields vary with the machine.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"idl"
	"idl/internal/ast"
	"idl/internal/core"
	"idl/internal/federation"
	"idl/internal/object"
	"idl/internal/obs"
	"idl/internal/parser"
	"idl/internal/stocks"
)

// reportSchema versions the report layout for downstream tooling.
// Schema 2 added FlightOverhead; schema 3 added Parallel (B13); schema 4
// added PlanCache (B14); schema 5 added WAL (B15); schema 6 added
// Telemetry (B16); schema 7 added Insights (B17); schema 8 added MVCC
// (B18).
const reportSchema = 8

// Benchmark is one measured benchmark in the report.
type Benchmark struct {
	Name        string            `json:"name"`
	Iters       int               `json:"iters"`
	NsPerOp     int64             `json:"ns_per_op"`
	AllocsPerOp uint64            `json:"allocs_per_op"`
	BytesPerOp  uint64            `json:"bytes_per_op"`
	Counters    map[string]uint64 `json:"counters,omitempty"` // evaluator work per op
}

// TraceOverhead is the B12 result: the same query with observability
// off, with metrics attached, and with metrics plus tracing.
type TraceOverhead struct {
	OffNsPerOp     int64   `json:"off_ns_per_op"`
	MetricsNsPerOp int64   `json:"metrics_ns_per_op"`
	TracedNsPerOp  int64   `json:"traced_ns_per_op"`
	TracedRatio    float64 `json:"traced_ratio"` // traced ÷ off
}

// FlightOverhead is the flight-recorder half of B12: the same query at
// the DB layer (where events are recorded) with the ring disabled and
// at its default capacity, tracing off. The design target is ≤5%; the
// validation default is looser to absorb timer noise on small ns/op.
type FlightOverhead struct {
	OffNsPerOp int64   `json:"off_ns_per_op"`
	OnNsPerOp  int64   `json:"on_ns_per_op"`
	Ratio      float64 `json:"ratio"` // on ÷ off
}

// ParallelSpeedup is the B13 summary: wall-clock speedup of parallel
// evaluation at four workers over sequential, for both benchmark
// families. The query family partitions a large in-memory scan across
// workers, so its speedup tracks available CPUs (≈1.0 when GOMAXPROCS
// is 1). The sync family refreshes three slow federated members
// concurrently, so its speedup is latency-bound and holds on any
// machine — that is the family the validation gate checks.
type ParallelSpeedup struct {
	NumCPU        int     `json:"num_cpu"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	QuerySpeedup4 float64 `json:"query_speedup_4"` // query w1 ns/op ÷ w4 ns/op
	SyncSpeedup4  float64 `json:"sync_speedup_4"`  // sync w1 ns/op ÷ w4 ns/op
}

// PlanCacheSummary is the B14 summary: the same repeated point-query
// batch evaluated interpreted (analysis recomputed per run), cold-
// compiled (a plan per run, cache off), cached (the epoch-keyed plan
// cache) and prepared (DB.Prepare once, execute many). Speedup is the
// headline ratio interpreted ÷ cached; HitRate is the cached family's
// plan-cache hit fraction over the measured runs.
type PlanCacheSummary struct {
	InterpretedNsPerOp int64   `json:"interpreted_ns_per_op"`
	CompileNsPerOp     int64   `json:"compile_ns_per_op"`
	CachedNsPerOp      int64   `json:"cached_ns_per_op"`
	PreparedNsPerOp    int64   `json:"prepared_ns_per_op"`
	HitRate            float64 `json:"hit_rate"` // hits ÷ (hits + misses)
	Speedup            float64 `json:"speedup"`  // interpreted ÷ cached
}

// WALSummary is the B15 result: the durability tax. The query family
// runs the same read with and without a WAL attached — reads never
// append, so the ratio bounds the bookkeeping overhead. The exec family
// measures the commit path three ways: no WAL (the in-memory floor),
// per-commit fsync (DurabilitySync), and group commit (DurabilityGroup),
// whose amortization ratio shows what deferring fsync buys.
type WALSummary struct {
	QueryOffNsPerOp   int64   `json:"query_off_ns_per_op"`
	QueryOnNsPerOp    int64   `json:"query_on_ns_per_op"`
	QueryRatio        float64 `json:"query_ratio"` // on ÷ off
	ExecOffNsPerOp    int64   `json:"exec_off_ns_per_op"`
	ExecSyncNsPerOp   int64   `json:"exec_sync_ns_per_op"`
	ExecGroupNsPerOp  int64   `json:"exec_group_ns_per_op"`
	GroupAmortization float64 `json:"group_amortization"` // sync ÷ group
}

// TelemetrySummary is the B16 result: the windowed-telemetry tax on the
// E5 query. off is the nil-registry floor; metrics attaches a registry
// with windowed instruments disabled (cumulative counters and histograms
// only); windowed is the production default — rolling-window histograms
// plus SLO trackers observing every operation; traced additionally
// attaches the span tracer. WindowedRatio (windowed ÷ off) is the
// CI-gated headline: live rolling quantiles and burn rates must cost only
// a few percent even on a cheap query.
type TelemetrySummary struct {
	OffNsPerOp      int64   `json:"off_ns_per_op"`
	MetricsNsPerOp  int64   `json:"metrics_ns_per_op"`
	WindowedNsPerOp int64   `json:"windowed_ns_per_op"`
	TracedNsPerOp   int64   `json:"traced_ns_per_op"`
	WindowedRatio   float64 `json:"windowed_ratio"` // windowed ÷ off
}

// InsightsSummary is the B17 result: the statement-digest tax on the E5
// query at the DB layer. off is a plain DB; digests enables the insights
// store with slow-query capture off (the production default shape:
// fingerprint, counter and windowed-histogram updates per query);
// capture sets an always-firing slow threshold so every op also snapshots
// an exemplar — the worst case, reported but not gated. DigestsRatio
// (digests ÷ off) is the CI-gated headline.
type InsightsSummary struct {
	OffNsPerOp     int64   `json:"off_ns_per_op"`
	DigestsNsPerOp int64   `json:"digests_ns_per_op"`
	CaptureNsPerOp int64   `json:"capture_ns_per_op"`
	DigestsRatio   float64 `json:"digests_ratio"` // digests ÷ off
}

// MVCCSummary is the B18 result: what epoch-pinned snapshot reads buy.
// The readers family (reported, machine-dependent) runs N concurrent
// point queries per op on the default snapshot-read engine.  The mixed
// family is the CI-gated headline and measures the one MVCC property
// that is scheduler-independent: whether reads complete while a commit
// is in flight.  Each round starts one writer statement that drags a
// negated self-join scan through the commit path (a multi-millisecond
// engine-mutex hold), then releases four readers and counts only the
// reads that finish before the statement does.  On a SerialReads engine
// (the pre-MVCC architecture) every read takes the mutex, so the count
// is ~zero; on the default engine readers pin the published snapshot
// and never block, so the count is thousands.  ReadScaling is the
// snapshot ÷ serial ratio (serial clamped to ≥1), and it holds on one
// CPU — free-running aggregate throughput would not, because the OS
// scheduler time-shares blocked readers' CPU back to the writer and
// the arms converge.  The ckpt family takes a full checkpoint, updates
// a single relation, checkpoints again, and reports written ÷ total
// bytes for the second checkpoint — the incremental-checkpoint ratio,
// bounded because every unchanged relation segment is reused by
// reference.
type MVCCSummary struct {
	NumCPU            int     `json:"num_cpu"`
	GoMaxProcs        int     `json:"gomaxprocs"`
	ReaderSpeedup4    float64 `json:"reader_speedup_4"`    // 4 × serial ns/op ÷ 4-reader ns/op
	SerialCommitReads uint64  `json:"serial_commit_reads"` // reads finished during commits, SerialReads engine
	MVCCCommitReads   uint64  `json:"mvcc_commit_reads"`   // reads finished during commits, snapshot engine
	ReadScaling       float64 `json:"read_scaling"`        // mvcc ÷ max(serial, 1) commit reads
	CkptWroteBytes    int64   `json:"ckpt_wrote_bytes"`    // second checkpoint: bytes written
	CkptTotalBytes    int64   `json:"ckpt_total_bytes"`    // second checkpoint: full footprint
	CkptRatio         float64 `json:"ckpt_ratio"`          // wrote ÷ total after one-relation update
}

// Report is the BENCH_report.json envelope.
type Report struct {
	Schema         int              `json:"schema"`
	Short          bool             `json:"short"`
	GoVersion      string           `json:"go_version"`
	Benchmarks     []Benchmark      `json:"benchmarks"`
	TraceOverhead  TraceOverhead    `json:"trace_overhead"`
	FlightOverhead FlightOverhead   `json:"flight_overhead"`
	Parallel       ParallelSpeedup  `json:"parallel"`
	PlanCache      PlanCacheSummary `json:"plan_cache"`
	WAL            WALSummary       `json:"wal"`
	Telemetry      TelemetrySummary `json:"telemetry"`
	Insights       InsightsSummary  `json:"insights"`
	MVCC           MVCCSummary      `json:"mvcc"`
}

func main() {
	var (
		short     = flag.Bool("short", false, "CI mode: fewer iterations per benchmark")
		out       = flag.String("out", "BENCH_report.json", "report output path")
		validate  = flag.String("validate", "", "validate an existing report instead of running")
		maxRatio  = flag.Float64("max-trace-overhead", 3.0, "validation bound on traced_ratio")
		maxFlight = flag.Float64("max-flight-overhead", 1.25, "validation bound on flight-recorder ratio")
		compare   = flag.Bool("compare", false, "compare two reports (old.json new.json) and fail on regression")
		maxRegr   = flag.Float64("max-regress", 0.25, "compare mode: max tolerated fractional ns/op growth")
		minPar    = flag.Float64("min-parallel-speedup", 1.5, "validation bound on the B13 sync-family speedup at 4 workers")
		minHit    = flag.Float64("min-plan-cache-hit", 0.9, "validation bound on the B14 cached-family plan cache hit rate")
		minPlan   = flag.Float64("min-plan-speedup", 1.0, "validation bound on the B14 interpreted÷cached speedup")
		maxWAL    = flag.Float64("max-wal-overhead", 1.15, "validation bound on the B15 query-family WAL-on÷WAL-off ratio")
		minAmort  = flag.Float64("min-group-amortize", 1.5, "validation bound on the B15 sync÷group exec amortization")
		maxTelem  = flag.Float64("max-telemetry-overhead", 1.03, "validation bound on the B16 windowed÷off telemetry ratio")
		maxIns    = flag.Float64("max-insights-overhead", 1.03, "validation bound on the B17 digests÷off insights ratio")
		minScale  = flag.Float64("min-read-scaling", 2.5, "validation bound on the B18 snapshot÷serial during-commit read scaling")
		maxCkpt   = flag.Float64("max-ckpt-ratio", 0.25, "validation bound on the B18 incremental checkpoint wrote÷total ratio")
	)
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: idlbench -compare [-max-regress f] old.json new.json")
			os.Exit(2)
		}
		if err := compareFiles(os.Stdout, flag.Arg(0), flag.Arg(1), *maxRegr); err != nil {
			fmt.Fprintln(os.Stderr, "idlbench:", err)
			os.Exit(1)
		}
		return
	}
	if *validate != "" {
		if err := validateReport(*validate, *maxRatio, *maxFlight, *minPar, *minHit, *minPlan, *maxWAL, *minAmort, *maxTelem, *maxIns, *minScale, *maxCkpt); err != nil {
			fmt.Fprintln(os.Stderr, "idlbench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid (schema %d)\n", *validate, reportSchema)
		return
	}
	rep := runAll(*short)
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "idlbench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "idlbench:", err)
		os.Exit(1)
	}
	f.Close()
	for _, b := range rep.Benchmarks {
		fmt.Printf("%-40s %10d ns/op %8d allocs/op\n", b.Name, b.NsPerOp, b.AllocsPerOp)
	}
	fmt.Printf("%-40s ratio=%.2f (off=%dns metrics=%dns traced=%dns)\n",
		"B12/tracing-overhead", rep.TraceOverhead.TracedRatio,
		rep.TraceOverhead.OffNsPerOp, rep.TraceOverhead.MetricsNsPerOp, rep.TraceOverhead.TracedNsPerOp)
	fmt.Printf("%-40s ratio=%.2f (off=%dns on=%dns)\n",
		"B12/flightrec-overhead", rep.FlightOverhead.Ratio,
		rep.FlightOverhead.OffNsPerOp, rep.FlightOverhead.OnNsPerOp)
	fmt.Printf("%-40s query=%.2fx sync=%.2fx at 4 workers (cpus=%d gomaxprocs=%d)\n",
		"B13/parallel-speedup", rep.Parallel.QuerySpeedup4, rep.Parallel.SyncSpeedup4,
		rep.Parallel.NumCPU, rep.Parallel.GoMaxProcs)
	fmt.Printf("%-40s %.2fx cached over interpreted, hit rate %.3f (interpreted=%dns compile=%dns cached=%dns prepared=%dns)\n",
		"B14/plan-cache-speedup", rep.PlanCache.Speedup, rep.PlanCache.HitRate,
		rep.PlanCache.InterpretedNsPerOp, rep.PlanCache.CompileNsPerOp,
		rep.PlanCache.CachedNsPerOp, rep.PlanCache.PreparedNsPerOp)
	fmt.Printf("%-40s query-ratio=%.2f group-amortize=%.2fx (exec off=%dns sync=%dns group=%dns)\n",
		"B15/wal-overhead", rep.WAL.QueryRatio, rep.WAL.GroupAmortization,
		rep.WAL.ExecOffNsPerOp, rep.WAL.ExecSyncNsPerOp, rep.WAL.ExecGroupNsPerOp)
	fmt.Printf("%-40s windowed-ratio=%.3f (off=%dns metrics=%dns windowed=%dns traced=%dns)\n",
		"B16/telemetry-overhead", rep.Telemetry.WindowedRatio,
		rep.Telemetry.OffNsPerOp, rep.Telemetry.MetricsNsPerOp,
		rep.Telemetry.WindowedNsPerOp, rep.Telemetry.TracedNsPerOp)
	fmt.Printf("%-40s digests-ratio=%.3f (off=%dns digests=%dns capture=%dns)\n",
		"B17/insights-overhead", rep.Insights.DigestsRatio,
		rep.Insights.OffNsPerOp, rep.Insights.DigestsNsPerOp, rep.Insights.CaptureNsPerOp)
	fmt.Printf("%-40s read-scaling=%.0fx (during-commit reads serial=%d mvcc=%d) reader-speedup4=%.2fx ckpt-ratio=%.3f (%d/%d bytes)\n",
		"B18/mvcc", rep.MVCC.ReadScaling,
		rep.MVCC.SerialCommitReads, rep.MVCC.MVCCCommitReads, rep.MVCC.ReaderSpeedup4,
		rep.MVCC.CkptRatio, rep.MVCC.CkptWroteBytes, rep.MVCC.CkptTotalBytes)
	fmt.Println("wrote", *out)
}

// compareFiles is the bench-regression gate: every benchmark in the old
// report must still exist in the new one and must not have slowed by
// more than maxRegress (fractional growth in ns/op). New-only
// benchmarks are reported but never fail the gate.
func compareFiles(w *os.File, oldPath, newPath string, maxRegress float64) error {
	load := func(path string) (*Report, error) {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rep Report
		if err := json.Unmarshal(raw, &rep); err != nil {
			return nil, fmt.Errorf("%s: malformed report: %w", path, err)
		}
		return &rep, nil
	}
	oldRep, err := load(oldPath)
	if err != nil {
		return err
	}
	newRep, err := load(newPath)
	if err != nil {
		return err
	}
	lines, regressions := compareReports(oldRep, newRep, maxRegress)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%: %v",
			len(regressions), maxRegress*100, regressions)
	}
	fmt.Fprintf(w, "no regressions beyond %.0f%% (%d benchmarks compared)\n",
		maxRegress*100, len(oldRep.Benchmarks))
	return nil
}

// compareReports renders a per-benchmark delta table and returns the
// names of benchmarks whose ns/op grew beyond maxRegress. A benchmark
// present in old but missing from new counts as a regression (a silently
// dropped measurement must not pass the gate).
func compareReports(oldRep, newRep *Report, maxRegress float64) (lines, regressions []string) {
	newBy := map[string]Benchmark{}
	for _, b := range newRep.Benchmarks {
		newBy[b.Name] = b
	}
	oldSeen := map[string]bool{}
	for _, ob := range oldRep.Benchmarks {
		oldSeen[ob.Name] = true
		nb, ok := newBy[ob.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("%-40s MISSING from new report", ob.Name))
			regressions = append(regressions, ob.Name)
			continue
		}
		delta := float64(nb.NsPerOp-ob.NsPerOp) / float64(ob.NsPerOp)
		mark := ""
		if delta > maxRegress {
			mark = "  REGRESSION"
			regressions = append(regressions, ob.Name)
		}
		lines = append(lines, fmt.Sprintf("%-40s %10d -> %10d ns/op  %+6.1f%%%s",
			ob.Name, ob.NsPerOp, nb.NsPerOp, delta*100, mark))
	}
	var added []string
	for name := range newBy {
		if !oldSeen[name] {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		lines = append(lines, fmt.Sprintf("%-40s new benchmark (%d ns/op)", name, newBy[name].NsPerOp))
	}
	return lines, regressions
}

// validateReport enforces the CI gate: well-formed JSON with the
// expected schema, every benchmark measured, tracing plus
// flight-recorder overhead under the stated bounds, the B13 sync-family
// parallel speedup above its floor, the B14 plan-cache hit rate and
// repeated-query speedup above theirs, the B16 windowed-telemetry and
// B17 statement-digest taxes under their ceilings, and the B18 MVCC
// read scaling and incremental-checkpoint ratio inside their bounds.
func validateReport(path string, maxRatio, maxFlight, minParallel, minHitRate, minPlanSpeedup, maxWALOverhead, minGroupAmortize, maxTelemetry, maxInsights, minReadScaling, maxCkptRatio float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("%s: malformed report: %w", path, err)
	}
	if rep.Schema != reportSchema {
		return fmt.Errorf("%s: schema %d, want %d", path, rep.Schema, reportSchema)
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks recorded", path)
	}
	seen := map[string]bool{}
	for _, b := range rep.Benchmarks {
		if b.Name == "" || b.Iters <= 0 || b.NsPerOp <= 0 {
			return fmt.Errorf("%s: benchmark %+v not measured", path, b)
		}
		if seen[b.Name] {
			return fmt.Errorf("%s: duplicate benchmark %q", path, b.Name)
		}
		seen[b.Name] = true
	}
	to := rep.TraceOverhead
	if to.OffNsPerOp <= 0 || to.TracedNsPerOp <= 0 {
		return fmt.Errorf("%s: trace overhead not measured", path)
	}
	if to.TracedRatio > maxRatio {
		return fmt.Errorf("%s: tracing overhead ratio %.2f exceeds bound %.2f", path, to.TracedRatio, maxRatio)
	}
	fo := rep.FlightOverhead
	if fo.OffNsPerOp <= 0 || fo.OnNsPerOp <= 0 {
		return fmt.Errorf("%s: flight-recorder overhead not measured", path)
	}
	if fo.Ratio > maxFlight {
		return fmt.Errorf("%s: flight-recorder overhead ratio %.2f exceeds bound %.2f", path, fo.Ratio, maxFlight)
	}
	ps := rep.Parallel
	if ps.QuerySpeedup4 <= 0 || ps.SyncSpeedup4 <= 0 {
		return fmt.Errorf("%s: parallel speedup not measured", path)
	}
	// Only the sync family is gated: it overlaps member latency, so its
	// speedup does not depend on CPU count. The query family's speedup is
	// reported but machine-dependent (≈1.0 when GOMAXPROCS is 1).
	if ps.SyncSpeedup4 < minParallel {
		return fmt.Errorf("%s: parallel sync speedup %.2fx at 4 workers below bound %.2fx", path, ps.SyncSpeedup4, minParallel)
	}
	pc := rep.PlanCache
	if pc.InterpretedNsPerOp <= 0 || pc.CompileNsPerOp <= 0 || pc.CachedNsPerOp <= 0 || pc.PreparedNsPerOp <= 0 {
		return fmt.Errorf("%s: plan-cache families not measured", path)
	}
	if pc.HitRate < minHitRate {
		return fmt.Errorf("%s: plan cache hit rate %.3f below bound %.3f", path, pc.HitRate, minHitRate)
	}
	if pc.Speedup < minPlanSpeedup {
		return fmt.Errorf("%s: plan-cache speedup %.2fx below bound %.2fx", path, pc.Speedup, minPlanSpeedup)
	}
	wl := rep.WAL
	if wl.QueryOffNsPerOp <= 0 || wl.QueryOnNsPerOp <= 0 ||
		wl.ExecOffNsPerOp <= 0 || wl.ExecSyncNsPerOp <= 0 || wl.ExecGroupNsPerOp <= 0 {
		return fmt.Errorf("%s: WAL families not measured", path)
	}
	if wl.QueryRatio > maxWALOverhead {
		return fmt.Errorf("%s: WAL query overhead ratio %.2f exceeds bound %.2f", path, wl.QueryRatio, maxWALOverhead)
	}
	if wl.GroupAmortization < minGroupAmortize {
		return fmt.Errorf("%s: group-commit amortization %.2fx below bound %.2fx", path, wl.GroupAmortization, minGroupAmortize)
	}
	tl := rep.Telemetry
	if tl.OffNsPerOp <= 0 || tl.MetricsNsPerOp <= 0 || tl.WindowedNsPerOp <= 0 || tl.TracedNsPerOp <= 0 {
		return fmt.Errorf("%s: telemetry families not measured", path)
	}
	if tl.WindowedRatio > maxTelemetry {
		return fmt.Errorf("%s: windowed telemetry ratio %.3f exceeds bound %.3f", path, tl.WindowedRatio, maxTelemetry)
	}
	in := rep.Insights
	if in.OffNsPerOp <= 0 || in.DigestsNsPerOp <= 0 || in.CaptureNsPerOp <= 0 {
		return fmt.Errorf("%s: insights families not measured", path)
	}
	if in.DigestsRatio > maxInsights {
		return fmt.Errorf("%s: insights digests ratio %.3f exceeds bound %.3f", path, in.DigestsRatio, maxInsights)
	}
	mv := rep.MVCC
	// SerialCommitReads is legitimately zero — serial readers block for
	// the whole commit; only the snapshot arm must have measured reads.
	if mv.MVCCCommitReads == 0 {
		return fmt.Errorf("%s: MVCC mixed family not measured", path)
	}
	if mv.ReadScaling < minReadScaling {
		return fmt.Errorf("%s: MVCC read scaling %.2fx below bound %.2fx", path, mv.ReadScaling, minReadScaling)
	}
	if mv.CkptWroteBytes <= 0 || mv.CkptTotalBytes <= 0 {
		return fmt.Errorf("%s: incremental checkpoint not measured", path)
	}
	if mv.CkptRatio > maxCkptRatio {
		return fmt.Errorf("%s: incremental checkpoint ratio %.3f exceeds bound %.3f", path, mv.CkptRatio, maxCkptRatio)
	}
	return nil
}

// measure times fn with a calibrated iteration count, reporting ns/op,
// allocation deltas, and (when e is non-nil) the engine's evaluator
// counters per op.
func measure(name string, short bool, e *core.Engine, fn func()) Benchmark {
	fn() // warm caches, force lazy materialization
	target := 100 * time.Millisecond
	minIters := 5
	batches := 3
	if short {
		// Short batches are cheap, so take more of them: under bursty
		// host contention the minimum over eight 20 ms batches is far
		// more likely to catch a quiet window than over three, which is
		// what keeps the regression gate's run-to-run variance down.
		target = 20 * time.Millisecond
		minIters = 2
		batches = 8
	}
	// Calibrate from a single timed run.
	t0 := time.Now()
	fn()
	per := time.Since(t0)
	iters := minIters
	if per > 0 && int(target/per) > iters {
		iters = int(target / per)
	}
	if iters > 1<<20 {
		iters = 1 << 20
	}
	// Best of the batches: scheduler or GC interference inflates a
	// batch but never deflates one, so the minimum is the stable
	// estimate (and the one overhead ratios should compare).
	var best time.Duration
	var msBefore, msAfter runtime.MemStats
	var allocs, bytes uint64
	for rep := 0; rep < batches; rep++ {
		runtime.GC()
		if e != nil {
			e.ResetStats()
		}
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&msAfter)
		if rep == 0 || elapsed < best {
			best = elapsed
			allocs = msAfter.Mallocs - msBefore.Mallocs
			bytes = msAfter.TotalAlloc - msBefore.TotalAlloc
		}
	}
	b := Benchmark{
		Name:        name,
		Iters:       iters,
		NsPerOp:     best.Nanoseconds() / int64(iters),
		AllocsPerOp: allocs / uint64(iters),
		BytesPerOp:  bytes / uint64(iters),
	}
	if b.NsPerOp <= 0 {
		b.NsPerOp = 1 // sub-ns loops still count as measured
	}
	if e != nil {
		st := e.Stats()
		b.Counters = map[string]uint64{
			"elements_scanned": st.ElementsScanned / uint64(iters),
			"index_probes":     st.IndexProbes / uint64(iters),
			"index_builds":     st.IndexBuilds / uint64(iters),
			"attr_enums":       st.AttrEnums / uint64(iters),
		}
	}
	return b
}

// engineFor builds an engine over a generated stock universe.
func engineFor(cfg stocks.Config, opts core.Options) (*core.Engine, *stocks.Dataset) {
	u, ds := stocks.Universe(cfg)
	e := core.NewEngineWithOptions(opts)
	u.Each(func(db string, v object.Object) bool {
		e.Base().Put(db, v)
		return true
	})
	e.Invalidate()
	return e, ds
}

func mustQuery(src string) func(*core.Engine) {
	q, err := parser.ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return func(e *core.Engine) {
		if _, err := e.Query(q); err != nil {
			panic(err)
		}
	}
}

func mustAddRules(e *core.Engine, rules ...string) {
	for _, r := range rules {
		rule, err := parser.ParseRule(r)
		if err != nil {
			panic(err)
		}
		if err := e.AddRule(rule); err != nil {
			panic(err)
		}
	}
}

// runAll executes B1–B12. The set mirrors bench_test.go on one
// representative configuration per benchmark, so a snapshot stays
// comparable to `go test -bench` output.
func runAll(short bool) *Report {
	rep := &Report{Schema: reportSchema, Short: short, GoVersion: runtime.Version()}
	add := func(b Benchmark) { rep.Benchmarks = append(rep.Benchmarks, b) }
	n := 32
	if short {
		n = 8
	}

	// B1: the E3 intention on all three schemas.
	{
		e, ds := engineFor(stocks.Config{Stocks: n, Days: 30, Seed: 7}, core.DefaultOptions())
		queries := stocks.QueryAnyAbove(ds.MaxPrice() * 3 / 4)
		for _, schema := range []string{"euter", "chwab", "ource"} {
			run := mustQuery(queries[schema])
			add(measure("B1/anyAbove/"+schema, short, e, func() { run(e) }))
		}
	}

	// B2: cross-database join chwab × ource.
	{
		e, _ := engineFor(stocks.Config{Stocks: n, Days: 30, Seed: 9}, core.DefaultOptions())
		run := mustQuery(stocks.QueryCrossJoin)
		add(measure("B2/crossJoin", short, e, func() { run(e) }))
	}

	// B3: negation, indexed vs scan.
	for _, useIndex := range []bool{true, false} {
		opts := core.DefaultOptions()
		opts.UseIndex = useIndex
		e, _ := engineFor(stocks.Config{Stocks: 16, Days: 60, Seed: 13}, opts)
		run := mustQuery("?.euter.r(.stkCode=stk001,.clsPrice=P,.date=D), .euter.r~(.stkCode=stk001, .clsPrice>P)")
		name := "B3/negation/scan"
		if useIndex {
			name = "B3/negation/indexed"
		}
		add(measure(name, short, e, func() { run(e) }))
	}

	// B4: view materialization, semi-naive vs naive.
	for _, semi := range []bool{true, false} {
		opts := core.DefaultOptions()
		opts.SemiNaive = semi
		e, _ := engineFor(stocks.Config{Stocks: 16, Days: 20, Seed: 17}, opts)
		mustAddRules(e, append(append([]string{}, stocks.RulesUnified...), stocks.RulesCustomized...)...)
		name := "B4/materialize/naive"
		if semi {
			name = "B4/materialize/seminaive"
		}
		add(measure(name, short, e, func() {
			e.Invalidate()
			if _, err := e.EffectiveUniverse(); err != nil {
				panic(err)
			}
		}))
	}

	// B5: higher-order view fan-out (one derived relation per stock).
	{
		e, _ := engineFor(stocks.Config{Stocks: n, Days: 5, Seed: 19}, core.DefaultOptions())
		mustAddRules(e, stocks.RulesUnified...)
		mustAddRules(e, ".dbO.S+(.date=D, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .price=P)")
		add(measure("B5/fanout", short, e, func() {
			e.Invalidate()
			if _, err := e.EffectiveUniverse(); err != nil {
				panic(err)
			}
		}))
	}

	// B6: update program call vs direct base update.
	{
		e, _ := engineFor(stocks.Config{Stocks: n, Days: 30, Seed: 23}, core.DefaultOptions())
		for _, c := range append(append([]string{}, stocks.ProgramDelStk...), stocks.ProgramInsStk...) {
			cl, err := parser.ParseClause(c)
			if err != nil {
				panic(err)
			}
			if err := e.AddClause(cl); err != nil {
				panic(err)
			}
		}
		i := 0
		add(measure("B6/insStk", short, e, func() {
			src := fmt.Sprintf("?.dbU.insStk(.stk=new%06d, .date=1/2/86, .price=%d)", i, 10+i%100)
			i++
			q, err := parser.ParseQuery(src)
			if err != nil {
				panic(err)
			}
			if _, err := e.Execute(q); err != nil {
				panic(err)
			}
		}))
	}

	// B7: Figure 1 round trip (build engine + rules + materialize).
	{
		add(measure("B7/roundTrip", short, nil, func() {
			e, _ := engineFor(stocks.Config{Stocks: 8, Days: 10, Seed: 29}, core.DefaultOptions())
			mustAddRules(e, append(append([]string{}, stocks.RulesUnified...), stocks.RulesCustomized...)...)
			if _, err := e.EffectiveUniverse(); err != nil {
				panic(err)
			}
		}))
	}

	// B8: ablations on a point query.
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"baseline", core.DefaultOptions()},
		{"no-index", func() core.Options { o := core.DefaultOptions(); o.UseIndex = false; return o }()},
		{"no-schedule", func() core.Options { o := core.DefaultOptions(); o.NoSchedule = true; return o }()},
	} {
		e, _ := engineFor(stocks.Config{Stocks: 64, Days: 60, Seed: 31}, tc.opts)
		run := mustQuery("?.euter.r(.stkCode=stk033, .date=D, .clsPrice=P)")
		add(measure("B8/point/"+tc.name, short, e, func() { run(e) }))
	}

	// B9: incremental vs full view maintenance on additive updates.
	for _, incremental := range []bool{true, false} {
		opts := core.DefaultOptions()
		opts.IncrementalViews = incremental
		e, _ := engineFor(stocks.Config{Stocks: n, Days: 30, Seed: 37}, opts)
		mustAddRules(e, ".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)")
		run := mustQuery("?.dbI.p(.stk=stk001)")
		run(e)
		name := "B9/maintenance/full"
		if incremental {
			name = "B9/maintenance/incremental"
		}
		i := 0
		add(measure(name, short, e, func() {
			src := fmt.Sprintf("?.euter.r+(.date=1/2/86, .stkCode=inc%06d, .clsPrice=%d)", i, i%100)
			i++
			q, err := parser.ParseQuery(src)
			if err != nil {
				panic(err)
			}
			if _, err := e.Execute(q); err != nil {
				panic(err)
			}
			run(e)
		}))
	}

	// B10 (ctx plumbing, PR-1's B11): bare Query vs QueryCtx.
	{
		e, ds := engineFor(stocks.Config{Stocks: n, Days: 30, Seed: 7}, core.DefaultOptions())
		src := stocks.QueryAnyAbove(ds.MaxPrice() * 3 / 4)["euter"]
		run := mustQuery(src)
		add(measure("B10/ctx/bare", short, e, func() { run(e) }))
	}

	// B11 + B12: observability overhead on the E5 highest-close query —
	// off (nil registry and tracer: the production default), metrics
	// attached, and metrics plus span tracing with per-conjunct probes.
	{
		src := stocks.QueryHighestPerDay()["euter"]
		newE := func() *core.Engine {
			e, _ := engineFor(stocks.Config{Stocks: 16, Days: 20, Seed: 43}, core.DefaultOptions())
			return e
		}
		eOff := newE()
		runOff := mustQuery(src)
		off := measure("B11/obs/off", short, eOff, func() { runOff(eOff) })
		add(off)

		eMet := newE()
		eMet.SetMetrics(obs.NewRegistry())
		runMet := mustQuery(src)
		met := measure("B11/obs/metrics", short, eMet, func() { runMet(eMet) })
		add(met)

		eTr := newE()
		eTr.SetMetrics(obs.NewRegistry())
		eTr.SetTracer(obs.NewTracer(4))
		runTr := mustQuery(src)
		tr := measure("B12/obs/traced", short, eTr, func() { runTr(eTr) })
		add(tr)

		rep.TraceOverhead = TraceOverhead{
			OffNsPerOp:     off.NsPerOp,
			MetricsNsPerOp: met.NsPerOp,
			TracedNsPerOp:  tr.NsPerOp,
			TracedRatio:    float64(tr.NsPerOp) / float64(off.NsPerOp),
		}
	}

	// B12 (flight recorder): the same E5 query at the DB layer — where
	// events are recorded — with the ring off and at default capacity,
	// tracing and metrics off. The recorder is the only always-on sink,
	// so this ratio is the observability tax every query pays.
	{
		src := stocks.QueryHighestPerDay()["euter"]
		newDB := func(ring int) *idl.DB {
			db := idl.Open()
			ds := stocks.Generate(stocks.Config{Stocks: 16, Days: 20, Seed: 43})
			ds.Populate(db.Engine().Base())
			db.Engine().Invalidate()
			db.SetFlightRecorderSize(ring)
			return db
		}
		runQ := func(db *idl.DB) {
			if _, err := db.Query(src); err != nil {
				panic(err)
			}
		}
		dbOff := newDB(0)
		off := measure("B12/flightrec/off", short, dbOff.Engine(), func() { runQ(dbOff) })
		add(off)
		dbOn := newDB(256)
		on := measure("B12/flightrec/on", short, dbOn.Engine(), func() { runQ(dbOn) })
		add(on)
		rep.FlightOverhead = FlightOverhead{
			OffNsPerOp: off.NsPerOp,
			OnNsPerOp:  on.NsPerOp,
			Ratio:      float64(on.NsPerOp) / float64(off.NsPerOp),
		}
	}

	// B13: parallel evaluation speedup at 1/2/4/8 workers, two families.
	// The query family partitions a large negated self-join scan; its
	// speedup tracks GOMAXPROCS. The sync family refreshes three slow
	// federated members (every source operation stalls 2ms); concurrent
	// fetches overlap the stalls, so its speedup holds on one CPU.
	{
		workerCounts := []int{1, 2, 4, 8}
		src := "?.euter.r(.date=D,.stkCode=S,.clsPrice=P), .euter.r~(.date=D, .clsPrice>P)"
		queryNs := map[int]int64{}
		for _, w := range workerCounts {
			opts := core.DefaultOptions()
			opts.Workers = w
			e, _ := engineFor(stocks.Config{Stocks: 48, Days: 40, Seed: 47}, opts)
			run := mustQuery(src)
			b := measure(fmt.Sprintf("B13/query/w%d", w), short, e, func() { run(e) })
			add(b)
			queryNs[w] = b.NsPerOp
		}
		syncNs := map[int]int64{}
		for _, w := range workerCounts {
			db := slowFederationDB(w)
			b := measure(fmt.Sprintf("B13/sync/w%d", w), short, nil, func() {
				if _, err := db.Sync(context.Background()); err != nil {
					panic(err)
				}
			})
			add(b)
			syncNs[w] = b.NsPerOp
		}
		rep.Parallel = ParallelSpeedup{
			NumCPU:        runtime.NumCPU(),
			GoMaxProcs:    runtime.GOMAXPROCS(0),
			QuerySpeedup4: float64(queryNs[1]) / float64(queryNs[4]),
			SyncSpeedup4:  float64(syncNs[1]) / float64(syncNs[4]),
		}
	}

	// B14: plan caching on a repeated-query workload. One op runs a fixed
	// batch of selective point queries (index probes, cheap execution, so
	// planning work is a visible fraction) in four families: interpreted
	// recomputes the scheduling analysis per evaluation, compile builds a
	// fresh plan per evaluation with the cache off, cached reuses
	// epoch-validated plans, prepared compiles once via Engine.Prepare and
	// only revalidates. All four answer byte-identically (the difftest
	// grid pins that); this measures what the reuse is worth.
	{
		// Three days keeps each probe's result tiny, so per-query planning
		// work — the thing the cache elides — is a measurable fraction.
		b14cfg := stocks.Config{Stocks: 64, Days: 3, Seed: 53}
		const batch = 24
		var srcs []string
		for i := 0; i < batch; i++ {
			srcs = append(srcs, fmt.Sprintf("?.euter.r(.stkCode=stk%03d, .date=D, .clsPrice=P), P > 10", i+1))
		}
		parsed := make([]*ast.Query, batch)
		for i, src := range srcs {
			q, err := parser.ParseQuery(src)
			if err != nil {
				panic(err)
			}
			parsed[i] = q
		}
		runBatch := func(e *core.Engine) {
			for _, q := range parsed {
				if _, err := e.Query(q); err != nil {
					panic(err)
				}
			}
		}
		ns := map[string]int64{}
		for _, fam := range []struct {
			name string
			opts func() core.Options
		}{
			{"interpreted", func() core.Options { o := core.DefaultOptions(); o.Interpret = true; return o }},
			{"compile", func() core.Options { o := core.DefaultOptions(); o.NoPlanCache = true; return o }},
			{"cached", core.DefaultOptions},
		} {
			e, _ := engineFor(b14cfg, fam.opts())
			b := measure("B14/plancache/"+fam.name, short, e, func() { runBatch(e) })
			add(b)
			ns[fam.name] = b.NsPerOp
			if fam.name == "cached" {
				st := e.PlanCacheStats()
				if total := st.Hits + st.Misses; total > 0 {
					rep.PlanCache.HitRate = float64(st.Hits) / float64(total)
				}
			}
		}
		{
			e, _ := engineFor(b14cfg, core.DefaultOptions())
			pqs := make([]*core.PreparedQuery, batch)
			for i, q := range parsed {
				pq, err := e.Prepare(q)
				if err != nil {
					panic(err)
				}
				pqs[i] = pq
			}
			b := measure("B14/plancache/prepared", short, e, func() {
				for _, pq := range pqs {
					if _, err := pq.Query(); err != nil {
						panic(err)
					}
				}
			})
			add(b)
			ns["prepared"] = b.NsPerOp
		}
		rep.PlanCache.InterpretedNsPerOp = ns["interpreted"]
		rep.PlanCache.CompileNsPerOp = ns["compile"]
		rep.PlanCache.CachedNsPerOp = ns["cached"]
		rep.PlanCache.PreparedNsPerOp = ns["prepared"]
		rep.PlanCache.Speedup = float64(ns["interpreted"]) / float64(ns["cached"])
	}

	// B15: the durability tax. Query family runs the same E5 query at the
	// DB layer with and without a WAL attached — queries never append, so
	// the ratio bounds the bookkeeping a durable session pays on its read
	// path and should sit near 1.0. Exec family runs unique-key inserts
	// (every op commits one tuple, so every op appends and, in sync mode,
	// fsyncs) under no WAL, per-commit fsync, and group commit; the
	// sync÷group ratio is what deferring fsync to the 64 KiB group
	// threshold buys back.
	{
		populate := func(db *idl.DB) {
			ds := stocks.Generate(stocks.Config{Stocks: 16, Days: 20, Seed: 43})
			ds.Populate(db.Engine().Base())
			db.Engine().Invalidate()
		}
		src := stocks.QueryHighestPerDay()["euter"]
		runQ := func(db *idl.DB) {
			if _, err := db.Query(src); err != nil {
				panic(err)
			}
		}
		withWALDB := func(mode idl.Durability, fn func(db *idl.DB)) {
			dir, err := os.MkdirTemp("", "idlbench-wal-")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(dir)
			db, _, err := idl.OpenWAL(dir, idl.WALOptions{Durability: mode})
			if err != nil {
				panic(err)
			}
			defer db.Close()
			fn(db)
		}

		dbOff := idl.Open()
		populate(dbOff)
		qoff := measure("B15/wal/query-off", short, dbOff.Engine(), func() { runQ(dbOff) })
		add(qoff)
		var qon Benchmark
		withWALDB(idl.DurabilitySync, func(db *idl.DB) {
			populate(db)
			qon = measure("B15/wal/query-on", short, db.Engine(), func() { runQ(db) })
		})
		add(qon)

		// Unique keys per op: duplicate inserts would commit zero changes
		// and skip the append, measuring nothing.
		var seq int
		runExec := func(db *idl.DB) {
			seq++
			stmt := fmt.Sprintf("?.euter.r+(.date=3/1/85,.stkCode=b%d,.clsPrice=%d)", seq, 10+seq%90)
			if _, err := db.Exec(stmt); err != nil {
				panic(err)
			}
		}
		dbEOff := idl.Open()
		populate(dbEOff)
		eoff := measure("B15/wal/exec-off", short, dbEOff.Engine(), func() { runExec(dbEOff) })
		add(eoff)
		var esync, egroup Benchmark
		withWALDB(idl.DurabilitySync, func(db *idl.DB) {
			populate(db)
			seq = 0
			esync = measure("B15/wal/exec-sync", short, db.Engine(), func() { runExec(db) })
		})
		add(esync)
		withWALDB(idl.DurabilityGroup, func(db *idl.DB) {
			populate(db)
			seq = 0
			egroup = measure("B15/wal/exec-group", short, db.Engine(), func() { runExec(db) })
		})
		add(egroup)

		rep.WAL = WALSummary{
			QueryOffNsPerOp:   qoff.NsPerOp,
			QueryOnNsPerOp:    qon.NsPerOp,
			QueryRatio:        float64(qon.NsPerOp) / float64(qoff.NsPerOp),
			ExecOffNsPerOp:    eoff.NsPerOp,
			ExecSyncNsPerOp:   esync.NsPerOp,
			ExecGroupNsPerOp:  egroup.NsPerOp,
			GroupAmortization: float64(esync.NsPerOp) / float64(egroup.NsPerOp),
		}
	}

	// B16: the windowed-telemetry tax. The E5 query runs with telemetry
	// escalating through its four levels: no registry, cumulative-only
	// (windowed instruments gated off), the windowed default (rolling
	// histograms + SLO classification per operation), and windowed plus
	// span tracing. The gated ratio is windowed ÷ off — the full price of
	// live rolling quantiles and burn rates over an uninstrumented engine.
	{
		src := stocks.QueryHighestPerDay()["euter"]
		newE := func() *core.Engine {
			e, _ := engineFor(stocks.Config{Stocks: 16, Days: 20, Seed: 43}, core.DefaultOptions())
			return e
		}
		eOff := newE()
		runOff := mustQuery(src)
		off := measure("B16/telemetry/off", short, eOff, func() { runOff(eOff) })
		add(off)

		eMet := newE()
		rMet := obs.NewRegistry()
		rMet.SetWindowed(false)
		eMet.SetMetrics(rMet)
		runMet := mustQuery(src)
		met := measure("B16/telemetry/metrics", short, eMet, func() { runMet(eMet) })
		add(met)

		eWin := newE()
		eWin.SetMetrics(obs.NewRegistry()) // windowed instruments default on
		runWin := mustQuery(src)
		win := measure("B16/telemetry/windowed", short, eWin, func() { runWin(eWin) })
		add(win)

		eTr := newE()
		eTr.SetMetrics(obs.NewRegistry())
		eTr.SetTracer(obs.NewTracer(4))
		runTr := mustQuery(src)
		tr := measure("B16/telemetry/traced", short, eTr, func() { runTr(eTr) })
		add(tr)

		rep.Telemetry = TelemetrySummary{
			OffNsPerOp:      off.NsPerOp,
			MetricsNsPerOp:  met.NsPerOp,
			WindowedNsPerOp: win.NsPerOp,
			TracedNsPerOp:   tr.NsPerOp,
			WindowedRatio:   float64(win.NsPerOp) / float64(off.NsPerOp),
		}
	}

	// B17: the statement-digest tax. The E5 query runs at the DB layer —
	// where the insights store observes — three ways: a plain DB (off), a
	// DB with the digest store enabled but capture off (the production
	// default: per-op fingerprint, atomic counter and windowed-histogram
	// updates), and a DB whose slow threshold fires on every op, so each
	// query also snapshots a flight-recorder exemplar into the digest's
	// ring (the worst case; captures are bounded per digest in practice).
	// The gated ratio is digests ÷ off.
	{
		src := stocks.QueryHighestPerDay()["euter"]
		newDB := func(cfg *idl.InsightsConfig) *idl.DB {
			db := idl.Open()
			ds := stocks.Generate(stocks.Config{Stocks: 16, Days: 20, Seed: 43})
			ds.Populate(db.Engine().Base())
			db.Engine().Invalidate()
			if cfg != nil {
				db.EnableInsights(*cfg)
			}
			return db
		}
		runQ := func(db *idl.DB) {
			if _, err := db.Query(src); err != nil {
				panic(err)
			}
		}
		dbOff := newDB(nil)
		off := measure("B17/insights/off", short, dbOff.Engine(), func() { runQ(dbOff) })
		add(off)
		dbDig := newDB(&idl.InsightsConfig{})
		dig := measure("B17/insights/digests", short, dbDig.Engine(), func() { runQ(dbDig) })
		add(dig)
		dbCap := newDB(&idl.InsightsConfig{SlowThreshold: time.Nanosecond})
		capt := measure("B17/insights/capture", short, dbCap.Engine(), func() { runQ(dbCap) })
		add(capt)
		rep.Insights = InsightsSummary{
			OffNsPerOp:     off.NsPerOp,
			DigestsNsPerOp: dig.NsPerOp,
			CaptureNsPerOp: capt.NsPerOp,
			DigestsRatio:   float64(dig.NsPerOp) / float64(off.NsPerOp),
		}
	}

	// B18: the MVCC dividend, three families (DESIGN.md §17).
	{
		parse := func(src string) *ast.Query {
			q, err := parser.ParseQuery(src)
			if err != nil {
				panic(err)
			}
			return q
		}
		readQ := parse("?.euter.r(.stkCode=stk001, .clsPrice=P)")

		// Readers: N concurrent point queries per op on the default
		// snapshot-read engine. Reported, not gated: per-read scaling
		// tracks GOMAXPROCS (≈1.0 on one CPU), the difftest grid pins
		// that the answers stay byte-identical.
		{
			e, _ := engineFor(stocks.Config{Stocks: 48, Days: 40, Seed: 59}, core.DefaultOptions())
			runRead := func() {
				if _, err := e.Query(readQ); err != nil {
					panic(err)
				}
			}
			readerNs := map[int]int64{}
			for _, readers := range []int{1, 2, 4, 8} {
				name := fmt.Sprintf("B18/mvcc/readers/%d", readers)
				fn := runRead
				if readers == 1 {
					name = "B18/mvcc/readers/serial"
				} else {
					n := readers
					fn = func() {
						var wg sync.WaitGroup
						for i := 0; i < n; i++ {
							wg.Add(1)
							go func() {
								defer wg.Done()
								runRead()
							}()
						}
						wg.Wait()
					}
				}
				b := measure(name, short, e, fn)
				add(b)
				readerNs[readers] = b.NsPerOp
			}
			rep.MVCC.NumCPU = runtime.NumCPU()
			rep.MVCC.GoMaxProcs = runtime.GOMAXPROCS(0)
			rep.MVCC.ReaderSpeedup4 = float64(readerNs[1]*4) / float64(readerNs[4])
		}

		// Mixed: can four readers make progress while a commit is in
		// flight? Each round starts one writer statement whose negated
		// self-join scan holds the engine mutex for several milliseconds,
		// waits for the writer to be inside its critical section, then
		// releases the readers and counts only reads that FINISH before
		// the statement does. Serial readers block on the mutex for the
		// whole commit (count ~0); snapshot readers keep reading the
		// published head. Counting completions during the commit — rather
		// than free-running throughput over a window — is what makes the
		// gate hold on one CPU: a blocked reader's timeslice goes back to
		// the writer, so wall-clock aggregate rates converge between the
		// arms even though the serial arm spends every commit frozen.
		commitReads := func(serial bool) uint64 {
			opts := core.DefaultOptions()
			opts.SerialReads = serial
			e, _ := engineFor(stocks.Config{Stocks: 96, Days: 40, Seed: 61}, opts)
			// Flip one tuple in and out so every commit mutates; the scan
			// conjuncts are the lock hold.
			ins := parse("?.euter.r(.date=D,.stkCode=S,.clsPrice=P), .euter.r~(.date=D, .clsPrice>P), .euter.r+(.date=1/2/86,.stkCode=mix,.clsPrice=42)")
			del := parse("?.euter.r(.date=D,.stkCode=S,.clsPrice=P), .euter.r~(.date=D, .clsPrice>P), .euter.r-(.stkCode=mix)")
			// Warm both statement plans and publish a head.
			for _, stmt := range []*ast.Query{ins, del} {
				if _, err := e.Execute(stmt); err != nil {
					panic(err)
				}
			}
			if _, err := e.Query(readQ); err != nil {
				panic(err)
			}
			rounds := 6
			if short {
				rounds = 3
			}
			var during atomic.Uint64
			var inFlight atomic.Bool
			for i := 0; i < rounds; i++ {
				stmt := ins
				if i%2 == 1 {
					stmt = del
				}
				release := make(chan struct{})
				roundDone := make(chan struct{})
				inFlight.Store(true)
				go func() {
					if _, err := e.Execute(stmt); err != nil {
						panic(err)
					}
					inFlight.Store(false)
					close(roundDone)
				}()
				var wg sync.WaitGroup
				for r := 0; r < 4; r++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						<-release
						for {
							select {
							case <-roundDone:
								return
							default:
							}
							if _, err := e.Query(readQ); err != nil {
								panic(err)
							}
							// Completions after the statement finished (the
							// serial arm's unblocked stragglers) don't count.
							if inFlight.Load() {
								during.Add(1)
							}
						}
					}()
				}
				// The readers are quiescent, so the writer acquires the
				// engine mutex immediately; by the time this sleep returns
				// it is deep inside its scan.
				time.Sleep(500 * time.Microsecond)
				close(release)
				<-roundDone
				wg.Wait()
				// Republish the head for the next round (the commit
				// invalidated it); on the serial engine this is a plain read.
				if _, err := e.Query(readQ); err != nil {
					panic(err)
				}
			}
			return during.Load()
		}
		rep.MVCC.SerialCommitReads = commitReads(true)
		rep.MVCC.MVCCCommitReads = commitReads(false)
		rep.MVCC.ReadScaling = float64(rep.MVCC.MVCCCommitReads) / float64(max(rep.MVCC.SerialCommitReads, 1))

		// Checkpoint ratio: full checkpoint, single-relation update,
		// checkpoint again; the second checkpoint's wrote ÷ total bytes is
		// the incremental ratio (every unchanged relation segment reused).
		{
			dir, err := os.MkdirTemp("", "idlbench-ckpt-")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(dir)
			db, _, err := idl.OpenWAL(dir, idl.WALOptions{Durability: idl.DurabilitySync})
			if err != nil {
				panic(err)
			}
			defer db.Close()
			ds := stocks.Generate(stocks.Config{Stocks: 16, Days: 20, Seed: 43})
			ds.Populate(db.Engine().Base())
			db.Engine().Invalidate()
			if _, err := db.Checkpoint(); err != nil {
				panic(err)
			}
			if _, err := db.Exec("?.ource.stk001+(.date=1/2/86,.clsPrice=55)"); err != nil {
				panic(err)
			}
			if _, err := db.Checkpoint(); err != nil {
				panic(err)
			}
			st, ok := db.WALStatus()
			if !ok {
				panic("WAL status unavailable on a durable session")
			}
			rep.MVCC.CkptWroteBytes = st.CheckpointWroteBytes
			rep.MVCC.CkptTotalBytes = st.CheckpointTotalBytes
			rep.MVCC.CkptRatio = float64(st.CheckpointWroteBytes) / float64(st.CheckpointTotalBytes)
		}
	}

	return rep
}

// slowFederationDB mounts three single-relation members whose every
// operation stalls 2ms (SlowRate 1), the B13 sync fixture. Each member
// fetch costs one Relations call plus one Scan — ~4ms — so a sequential
// sync pays ~12ms while four workers pay ~4ms.
func slowFederationDB(workers int) *idl.DB {
	db := idl.Open()
	db.SetWorkers(workers)
	for i, name := range []string{"alpha", "beta", "gamma"} {
		member := idl.Tup("r", idl.SetOf(
			idl.Tup("date", idl.Date(85, 3, 3), "stkCode", fmt.Sprintf("stk%d", i), "clsPrice", 100+i),
			idl.Tup("date", idl.Date(85, 3, 4), "stkCode", fmt.Sprintf("stk%d", i), "clsPrice", 110+i),
		))
		src := federation.Inject(federation.NewMemorySource(name, member), federation.InjectorConfig{
			SlowRate: 1,
			Latency:  2 * time.Millisecond,
		})
		if err := db.Mount(name, src); err != nil {
			panic(err)
		}
	}
	return db
}
