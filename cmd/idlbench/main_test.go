package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(benches map[string]int64) *Report {
	rep := &Report{
		Schema:         reportSchema,
		GoVersion:      "go-test",
		TraceOverhead:  TraceOverhead{OffNsPerOp: 100, MetricsNsPerOp: 105, TracedNsPerOp: 150, TracedRatio: 1.5},
		FlightOverhead: FlightOverhead{OffNsPerOp: 100, OnNsPerOp: 104, Ratio: 1.04},
		Parallel:       ParallelSpeedup{NumCPU: 1, GoMaxProcs: 1, QuerySpeedup4: 1.0, SyncSpeedup4: 2.8},
		PlanCache: PlanCacheSummary{
			InterpretedNsPerOp: 150, CompileNsPerOp: 160, CachedNsPerOp: 100,
			PreparedNsPerOp: 95, HitRate: 0.99, Speedup: 1.5,
		},
		WAL: WALSummary{
			QueryOffNsPerOp: 100, QueryOnNsPerOp: 102, QueryRatio: 1.02,
			ExecOffNsPerOp: 200, ExecSyncNsPerOp: 900, ExecGroupNsPerOp: 400,
			GroupAmortization: 2.25,
		},
		Telemetry: TelemetrySummary{
			OffNsPerOp: 100, MetricsNsPerOp: 101, WindowedNsPerOp: 102,
			TracedNsPerOp: 150, WindowedRatio: 1.02,
		},
		Insights: InsightsSummary{
			OffNsPerOp: 100, DigestsNsPerOp: 102, CaptureNsPerOp: 130,
			DigestsRatio: 1.02,
		},
		MVCC: MVCCSummary{
			NumCPU: 1, GoMaxProcs: 1, ReaderSpeedup4: 1.0,
			SerialCommitReads: 0, MVCCCommitReads: 5000, ReadScaling: 5000,
			CkptWroteBytes: 500, CkptTotalBytes: 10000, CkptRatio: 0.05,
		},
	}
	for name, ns := range benches {
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{Name: name, Iters: 10, NsPerOp: ns})
	}
	return rep
}

func TestCompareReports(t *testing.T) {
	oldRep := report(map[string]int64{"B1": 100, "B2": 200, "B3": 50})
	newRep := report(map[string]int64{"B1": 110, "B2": 290, "B4": 70})
	lines, regressions := compareReports(oldRep, newRep, 0.25)
	if len(regressions) != 2 {
		t.Fatalf("regressions = %v, want B2 (+45%%) and B3 (missing)", regressions)
	}
	got := strings.Join(regressions, ",")
	if !strings.Contains(got, "B2") || !strings.Contains(got, "B3") {
		t.Errorf("regressions = %v", regressions)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"REGRESSION", "MISSING from new report", "new benchmark"} {
		if !strings.Contains(joined, want) {
			t.Errorf("delta table missing %q:\n%s", want, joined)
		}
	}
	if _, regressions := compareReports(oldRep, oldRep, 0.25); len(regressions) != 0 {
		t.Errorf("self-compare should be clean, got %v", regressions)
	}
}

func writeReport(t *testing.T, rep *Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "report.json")
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareFiles(t *testing.T) {
	oldPath := writeReport(t, report(map[string]int64{"B1": 100}))
	newPath := writeReport(t, report(map[string]int64{"B1": 300}))
	if err := compareFiles(os.Stdout, oldPath, oldPath, 0.25); err != nil {
		t.Errorf("identical reports should pass: %v", err)
	}
	err := compareFiles(os.Stdout, oldPath, newPath, 0.25)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("3x slowdown should fail the gate, got %v", err)
	}
}

func TestValidateReport(t *testing.T) {
	good := writeReport(t, report(map[string]int64{"B1": 100}))
	if err := validateReport(good, 3.0, 1.25, 1.5, 0.95, 1.15, 1.15, 1.0, 1.03, 1.03, 2.5, 0.25); err != nil {
		t.Errorf("well-formed report should validate: %v", err)
	}
	if err := validateReport(good, 3.0, 1.01, 1.5, 0.95, 1.15, 1.15, 1.0, 1.03, 1.03, 2.5, 0.25); err == nil {
		t.Error("flight overhead 1.04 should exceed a 1.01 bound")
	}
	noFlight := report(map[string]int64{"B1": 100})
	noFlight.FlightOverhead = FlightOverhead{}
	if err := validateReport(writeReport(t, noFlight), 3.0, 1.25, 1.5, 0.95, 1.15, 1.15, 1.0, 1.03, 1.03, 2.5, 0.25); err == nil {
		t.Error("missing flight overhead should fail validation")
	}
	stale := report(map[string]int64{"B1": 100})
	stale.Schema = 1
	if err := validateReport(writeReport(t, stale), 3.0, 1.25, 1.5, 0.95, 1.15, 1.15, 1.0, 1.03, 1.03, 2.5, 0.25); err == nil {
		t.Error("stale schema should fail validation")
	}
	slow := report(map[string]int64{"B1": 100})
	slow.Parallel.SyncSpeedup4 = 1.2
	if err := validateReport(writeReport(t, slow), 3.0, 1.25, 1.5, 0.95, 1.15, 1.15, 1.0, 1.03, 1.03, 2.5, 0.25); err == nil {
		t.Error("sync speedup 1.2 should miss a 1.5 floor")
	}
	unmeasured := report(map[string]int64{"B1": 100})
	unmeasured.Parallel = ParallelSpeedup{}
	if err := validateReport(writeReport(t, unmeasured), 3.0, 1.25, 1.5, 0.95, 1.15, 1.15, 1.0, 1.03, 1.03, 2.5, 0.25); err == nil {
		t.Error("missing parallel speedup should fail validation")
	}
	coldCache := report(map[string]int64{"B1": 100})
	coldCache.PlanCache.HitRate = 0.5
	if err := validateReport(writeReport(t, coldCache), 3.0, 1.25, 1.5, 0.95, 1.15, 1.15, 1.0, 1.03, 1.03, 2.5, 0.25); err == nil {
		t.Error("hit rate 0.5 should miss a 0.95 floor")
	}
	slowPlan := report(map[string]int64{"B1": 100})
	slowPlan.PlanCache.Speedup = 1.05
	if err := validateReport(writeReport(t, slowPlan), 3.0, 1.25, 1.5, 0.95, 1.15, 1.15, 1.0, 1.03, 1.03, 2.5, 0.25); err == nil {
		t.Error("plan-cache speedup 1.05 should miss a 1.15 floor")
	}
	noPlan := report(map[string]int64{"B1": 100})
	noPlan.PlanCache = PlanCacheSummary{}
	if err := validateReport(writeReport(t, noPlan), 3.0, 1.25, 1.5, 0.95, 1.15, 1.15, 1.0, 1.03, 1.03, 2.5, 0.25); err == nil {
		t.Error("missing plan-cache section should fail validation")
	}
	taxed := report(map[string]int64{"B1": 100})
	taxed.WAL.QueryRatio = 1.4
	if err := validateReport(writeReport(t, taxed), 3.0, 1.25, 1.5, 0.95, 1.15, 1.15, 1.0, 1.03, 1.03, 2.5, 0.25); err == nil {
		t.Error("WAL query ratio 1.4 should exceed a 1.15 bound")
	}
	noAmort := report(map[string]int64{"B1": 100})
	noAmort.WAL.GroupAmortization = 0.8
	if err := validateReport(writeReport(t, noAmort), 3.0, 1.25, 1.5, 0.95, 1.15, 1.15, 1.0, 1.03, 1.03, 2.5, 0.25); err == nil {
		t.Error("group amortization 0.8 should miss a 1.0 floor")
	}
	noWAL := report(map[string]int64{"B1": 100})
	noWAL.WAL = WALSummary{}
	if err := validateReport(writeReport(t, noWAL), 3.0, 1.25, 1.5, 0.95, 1.15, 1.15, 1.0, 1.03, 1.03, 2.5, 0.25); err == nil {
		t.Error("missing WAL section should fail validation")
	}
	taxedIns := report(map[string]int64{"B1": 100})
	taxedIns.Insights.DigestsRatio = 1.2
	if err := validateReport(writeReport(t, taxedIns), 3.0, 1.25, 1.5, 0.95, 1.15, 1.15, 1.0, 1.03, 1.03, 2.5, 0.25); err == nil {
		t.Error("insights digests ratio 1.2 should exceed a 1.03 bound")
	}
	noIns := report(map[string]int64{"B1": 100})
	noIns.Insights = InsightsSummary{}
	if err := validateReport(writeReport(t, noIns), 3.0, 1.25, 1.5, 0.95, 1.15, 1.15, 1.0, 1.03, 1.03, 2.5, 0.25); err == nil {
		t.Error("missing insights section should fail validation")
	}
	blocked := report(map[string]int64{"B1": 100})
	blocked.MVCC.ReadScaling = 1.1
	if err := validateReport(writeReport(t, blocked), 3.0, 1.25, 1.5, 0.95, 1.15, 1.15, 1.0, 1.03, 1.03, 2.5, 0.25); err == nil {
		t.Error("read scaling 1.1 should miss a 2.5 floor")
	}
	noMVCC := report(map[string]int64{"B1": 100})
	noMVCC.MVCC = MVCCSummary{}
	if err := validateReport(writeReport(t, noMVCC), 3.0, 1.25, 1.5, 0.95, 1.15, 1.15, 1.0, 1.03, 1.03, 2.5, 0.25); err == nil {
		t.Error("missing MVCC section should fail validation")
	}
	fatCkpt := report(map[string]int64{"B1": 100})
	fatCkpt.MVCC.CkptRatio = 0.9
	if err := validateReport(writeReport(t, fatCkpt), 3.0, 1.25, 1.5, 0.95, 1.15, 1.15, 1.0, 1.03, 1.03, 2.5, 0.25); err == nil {
		t.Error("checkpoint ratio 0.9 should exceed a 0.25 bound")
	}
}

// TestRunAllShort smoke-runs the full pipeline in -short mode: every
// benchmark measured, both overhead sections populated.
func TestRunAllShort(t *testing.T) {
	if testing.Short() {
		t.Skip("runAll is itself the benchmark runner")
	}
	rep := runAll(true)
	path := writeReport(t, rep)
	if err := validateReport(path, 25, 25, 0.1, 0, 0, 25, 0, 25, 25, 0, 25); err != nil {
		t.Fatalf("generated report should validate structurally: %v", err)
	}
	if rep.FlightOverhead.Ratio <= 0 {
		t.Error("flight overhead not measured")
	}
	if rep.Parallel.SyncSpeedup4 <= 0 || rep.Parallel.QuerySpeedup4 <= 0 {
		t.Error("parallel speedup not measured")
	}
	if rep.PlanCache.HitRate <= 0 || rep.PlanCache.Speedup <= 0 {
		t.Error("plan-cache family not measured")
	}
	if rep.WAL.QueryRatio <= 0 || rep.WAL.GroupAmortization <= 0 {
		t.Error("WAL families not measured")
	}
	if rep.Telemetry.WindowedRatio <= 0 {
		t.Error("telemetry families not measured")
	}
	if rep.Insights.DigestsRatio <= 0 {
		t.Error("insights families not measured")
	}
	if rep.MVCC.MVCCCommitReads == 0 || rep.MVCC.ReadScaling <= 0 {
		t.Error("MVCC mixed family not measured")
	}
	if rep.MVCC.CkptRatio <= 0 || rep.MVCC.CkptRatio > 1 {
		t.Errorf("incremental checkpoint ratio %v outside (0, 1]", rep.MVCC.CkptRatio)
	}
}
