package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"idl"
	"idl/internal/server"
	"idl/internal/workload"
)

// syncBuffer guards concurrent writes from the serving goroutine while
// the test reads after exit.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startIdld runs the daemon in-process and returns its bound address
// and exit-code channel.
func startIdld(t *testing.T, args []string) (string, *syncBuffer, chan int) {
	t.Helper()
	var out, errOut syncBuffer
	ready := make(chan string, 1)
	code := make(chan int, 1)
	go func() { code <- run(args, &out, &errOut, ready) }()
	select {
	case addr := <-ready:
		return addr, &out, code
	case c := <-code:
		t.Fatalf("idld exited %d before listening\nstdout: %s\nstderr: %s", c, out.String(), errOut.String())
	case <-time.After(10 * time.Second):
		t.Fatal("idld never reported ready")
	}
	return "", nil, nil
}

// TestServeQueryAndGracefulDrain is the daemon's end-to-end path: serve
// the demo universe durably, answer wire requests, then exit 0 on
// SIGTERM with a drained, checkpointed WAL that a fresh open recovers.
func TestServeQueryAndGracefulDrain(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	addrFile := filepath.Join(t.TempDir(), "addr")
	addr, out, code := startIdld(t, []string{
		"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-demo", "-wal", walDir,
	})

	// The addr file is how shell scripts find an ephemeral port.
	fileAddr, err := os.ReadFile(addrFile)
	if err != nil {
		t.Fatalf("addr file: %v", err)
	}
	if got := strings.TrimSpace(string(fileAddr)); got != addr {
		t.Errorf("addr file %q != bound address %q", got, addr)
	}

	ctx := context.Background()
	c := server.NewClient("http://" + addr)
	ans, err := c.Query(ctx, "?.euter.r(.stkCode=S, .clsPrice>100)")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if ans.Rows == 0 {
		t.Fatal("demo universe served an empty answer")
	}
	if _, err := c.Exec(ctx, "?.euter.r+(.date=7/7/85, .stkCode=walco, .clsPrice=12)"); err != nil {
		t.Fatalf("exec: %v", err)
	}
	hz, err := c.Healthz(ctx)
	if err != nil || hz.Status != "ok" {
		t.Fatalf("healthz: %+v, %v", hz, err)
	}

	// SIGTERM → graceful drain → exit 0.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	select {
	case got := <-code:
		if got != 0 {
			t.Fatalf("exit %d after SIGTERM, want 0\nstdout: %s", got, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("idld did not exit after SIGTERM")
	}
	if s := out.String(); !strings.Contains(s, "draining") || !strings.Contains(s, "drained, exiting") {
		t.Errorf("drain banner missing from stdout: %q", s)
	}

	// The drained WAL recovers the served mutation.
	wcfg := workload.Default()
	db, _, err := idl.OpenWAL(walDir, idl.WALOptions{
		Bootstrap: func(db *idl.DB) error { return workload.Apply(db, wcfg) },
	})
	if err != nil {
		t.Fatalf("reopen wal: %v", err)
	}
	defer db.Close()
	got, err := db.Query("?.euter.r(.stkCode=walco, .clsPrice=P)")
	if err != nil {
		t.Fatalf("recovered query: %v", err)
	}
	if got.Len() != 1 {
		t.Errorf("recovered %d walco rows, want 1", got.Len())
	}
	st, ok := db.WALStatus()
	if !ok {
		t.Fatal("wal status unavailable after recovery")
	}
	if st.CheckpointLSN == 0 {
		t.Errorf("drain left no checkpoint: %+v", st)
	}
}

// TestBootstrapScript runs a script before serving and checks its
// definitions are visible on the wire.
func TestBootstrapScript(t *testing.T) {
	script := filepath.Join(t.TempDir(), "boot.idl")
	src := ".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P);\n"
	if err := os.WriteFile(script, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	addr, out, code := startIdld(t, []string{"-addr", "127.0.0.1:0", "-demo", "-script", script})

	c := server.NewClient("http://" + addr)
	ans, err := c.Query(context.Background(), "?.dbI.p(.stk=S, .price>100)")
	if err != nil {
		t.Fatalf("query over bootstrap view: %v", err)
	}
	if ans.Rows == 0 {
		t.Error("bootstrap view served an empty answer")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	select {
	case got := <-code:
		if got != 0 {
			t.Fatalf("exit %d, want 0\nstdout: %s", got, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("idld did not exit after SIGTERM")
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut syncBuffer
	if code := run([]string{"positional"}, &out, &errOut, nil); code != 2 {
		t.Fatalf("positional-arg exit %d, want 2", code)
	}
	if code := run([]string{"-durability", "bogus", "-wal", t.TempDir()}, &out, &errOut, nil); code != 1 {
		t.Fatalf("bad durability exit %d, want 1", code)
	}
	if code := run([]string{"-script", filepath.Join(t.TempDir(), "missing.idl")}, &out, &errOut, nil); code != 1 {
		t.Fatalf("missing script exit %d, want 1", code)
	}
}
