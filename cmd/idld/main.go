// Command idld serves an IDL database over the HTTP/JSON wire protocol
// (internal/server): multi-tenant query/exec/prepare endpoints with
// admission control, per-request deadlines, server-side sessions and
// graceful drain.
//
// Usage:
//
//	idld [flags]
//
// The database bootstraps like cmd/idl: -demo preloads the paper's
// three stock databases, -script runs an IDL script before serving, and
// -wal makes the session durable (recovering whatever a previous run
// left in the directory). On SIGTERM or SIGINT the server drains
// gracefully: the admission gate closes (new requests get 503 +
// Connection: close), inflight requests run to completion, the WAL is
// checkpointed when one is attached, and the process exits 0.
//
// Flags:
//
//	-addr a             listen address (default 127.0.0.1:8089; use :0
//	                    for an ephemeral port)
//	-addr-file path     write the bound address to this file once
//	                    listening — how scripts find an ephemeral port
//	-demo               preload the paper's three stock databases
//	-script file.idl    run this script against the DB before serving
//	-wal dir            durable serving: write-ahead log directory
//	-durability m       with -wal: sync (default), group, or off
//	-best-effort        degrade queries when a federated member is down
//	-timeout d          per-attempt federated member timeout
//	-retries n          federated member retry attempts
//	-workers n          parallel evaluation workers
//	-max-inflight n     admitted-request bound; excess sheds with 429
//	-tenant-inflight n  per-tenant admitted-request bound
//	-request-timeout d  default per-request deadline
//	-max-timeout d      cap on client-requested X-Timeout-Ms deadlines
//	-session-idle d     expire sessions unused this long
//	-max-sessions n     session table bound
//	-default-tenant t   tenant for requests without X-Tenant
//	-slo-target d       per-endpoint SLO latency target
//	-drain-timeout d    how long SIGTERM waits for inflight requests
//	-debug              mount the /debug/ observability endpoints
//	-mutex-profile n    sample 1/n of mutex contention events so
//	                    /debug/pprof/mutex captures lock hot spots
//	                    (0 disables; pair with -debug)
//	-no-insights        do not accumulate per-statement query digests
//	-slow-query d       capture statements slower than d as exemplars
//
// Exit status: 0 on clean drain, 1 on serve or drain failure, 2 on
// usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"idl"
	"idl/internal/server"
	"idl/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run serves until the listener fails or a shutdown signal arrives.
// ready, when non-nil, receives the bound address once listening —
// the in-process hook the tests use instead of -addr-file.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("idld", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8089", "listen address (use :0 for an ephemeral port)")
		addrFile   = fs.String("addr-file", "", "write the bound address to this file once listening")
		demo       = fs.Bool("demo", false, "preload the paper's three stock databases")
		script     = fs.String("script", "", "run this IDL script before serving")
		wal        = fs.String("wal", "", "write-ahead log directory for durable serving")
		durability = fs.String("durability", "sync", "with -wal: fsync policy — sync, group, or off")
		bestEffort = fs.Bool("best-effort", false, "degrade queries when a federated member is unreachable")
		timeout    = fs.Duration("timeout", idl.DefaultFederationConfig().Timeout, "per-attempt federated member timeout")
		retries    = fs.Int("retries", idl.DefaultFederationConfig().Retries, "federated member retry attempts")
		workers    = fs.Int("workers", 0, "parallel evaluation workers (0 or 1 = sequential)")

		maxInflight    = fs.Int("max-inflight", 64, "admitted-request bound; excess sheds with 429")
		tenantInflight = fs.Int("tenant-inflight", 0, "per-tenant admitted-request bound (0 = max-inflight/4)")
		reqTimeout     = fs.Duration("request-timeout", 5*time.Second, "default per-request deadline")
		maxTimeout     = fs.Duration("max-timeout", 30*time.Second, "cap on client-requested deadlines")
		sessionIdle    = fs.Duration("session-idle", 10*time.Minute, "expire sessions unused this long")
		maxSessions    = fs.Int("max-sessions", 1024, "session table bound")
		defaultTenant  = fs.String("default-tenant", "public", "tenant for requests without X-Tenant")
		sloTarget      = fs.Duration("slo-target", 100*time.Millisecond, "per-endpoint SLO latency target")
		drainTimeout   = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for inflight requests")
		debug          = fs.Bool("debug", false, "mount the /debug/ observability endpoints")
		mutexProfile   = fs.Int("mutex-profile", 0, "sample 1/n of mutex contention events for /debug/pprof/mutex (0 = off)")
		noInsights     = fs.Bool("no-insights", false, "do not accumulate per-statement query digests")
		slowQuery      = fs.Duration("slow-query", 0, "capture statements slower than this as exemplars (0 = relative rule only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: idld [flags]")
		fs.PrintDefaults()
		return 2
	}
	if *mutexProfile > 0 {
		// Sampled mutex contention: cheap enough to leave on in smoke
		// runs, and /debug/pprof/mutex then names the contended locks.
		runtime.SetMutexProfileFraction(*mutexProfile)
	}

	db, err := openDB(dbConfig{
		demo: *demo, wal: *wal, durability: *durability,
		bestEffort: *bestEffort, timeout: *timeout, retries: *retries, workers: *workers,
	})
	if err != nil {
		fmt.Fprintln(stderr, "idld:", err)
		return 1
	}
	if !*noInsights {
		db.EnableInsights(idl.InsightsConfig{SlowThreshold: *slowQuery, SlowFactor: 4})
	}
	if *script != "" {
		src, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(stderr, "idld:", err)
			return 1
		}
		if _, err := db.Load(string(src)); err != nil {
			fmt.Fprintln(stderr, "idld: script:", err)
			return 1
		}
	}

	srv := server.New(db, server.Config{
		MaxInflight:    *maxInflight,
		TenantInflight: *tenantInflight,
		RequestTimeout: *reqTimeout,
		MaxTimeout:     *maxTimeout,
		SessionIdle:    *sessionIdle,
		MaxSessions:    *maxSessions,
		DefaultTenant:  *defaultTenant,
		SLOTarget:      *sloTarget,
		Debug:          *debug,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "idld:", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintln(stderr, "idld:", err)
			return 1
		}
	}
	if ready != nil {
		ready <- bound
	}
	perTenant := "auto"
	if *tenantInflight > 0 {
		perTenant = strconv.Itoa(*tenantInflight)
	}
	fmt.Fprintf(stdout, "idld: serving on http://%s/ (max-inflight=%d, tenant-inflight %s, default tenant %q)\n",
		bound, *maxInflight, perTenant, *defaultTenant)

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// Periodic session expiry: a fraction of the idle window keeps the
	// sweep timely without a busy timer.
	sweepEvery := max(*sessionIdle/4, time.Second)
	sweeper := time.NewTicker(sweepEvery)
	defer sweeper.Stop()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	for {
		select {
		case <-sweeper.C:
			srv.SweepSessions(time.Now())
		case err := <-serveErr:
			fmt.Fprintln(stderr, "idld: serve:", err)
			return 1
		case <-sigCtx.Done():
			stop()
			fmt.Fprintln(stdout, "idld: draining...")
			drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			err := srv.Drain(drainCtx)
			cancel()
			if err != nil {
				fmt.Fprintln(stderr, "idld:", err)
				httpSrv.Close()
				return 1
			}
			// Inflight work is done and checkpointed; now close listeners
			// and any idle connections.
			shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			httpSrv.Shutdown(shutCtx)
			cancel()
			if err := db.Close(); err != nil {
				fmt.Fprintln(stderr, "idld: close wal:", err)
				return 1
			}
			fmt.Fprintln(stdout, "idld: drained, exiting")
			return 0
		}
	}
}

// dbConfig is the subset of cmd/idl's bootstrap knobs idld exposes.
type dbConfig struct {
	demo       bool
	wal        string
	durability string
	bestEffort bool
	timeout    time.Duration
	retries    int
	workers    int
}

func (c dbConfig) workload() workload.Config {
	w := workload.Default()
	w.Demo = c.demo
	w.BestEffort = c.bestEffort
	w.Timeout = c.timeout
	w.Retries = c.retries
	w.Workers = c.workers
	return w
}

// openDB builds the served database: WAL-backed when -wal is set (the
// demo universe installs as bootstrap base environment, exactly like
// cmd/idl), in-memory otherwise.
func openDB(c dbConfig) (*idl.DB, error) {
	wcfg := c.workload()
	if c.wal != "" {
		d, err := parseDurability(c.durability)
		if err != nil {
			return nil, err
		}
		opts := idl.DefaultOptions()
		opts.BestEffort = c.bestEffort
		walOpts := idl.WALOptions{Durability: d, Engine: &opts}
		walOpts.Bootstrap = func(db *idl.DB) error { return workload.Apply(db, wcfg) }
		recovered, _, err := idl.OpenWAL(c.wal, walOpts)
		if err != nil {
			return nil, err
		}
		if c.workers > 0 {
			recovered.SetWorkers(c.workers)
		}
		return recovered, nil
	}
	opts := idl.DefaultOptions()
	opts.BestEffort = c.bestEffort
	db := idl.OpenWithOptions(opts)
	if err := workload.Apply(db, wcfg); err != nil {
		return nil, err
	}
	return db, nil
}

func parseDurability(s string) (idl.Durability, error) {
	switch s {
	case "sync", "":
		return idl.DurabilitySync, nil
	case "group":
		return idl.DurabilityGroup, nil
	case "off":
		return idl.DurabilityOff, nil
	}
	return 0, fmt.Errorf("unknown -durability %q (want sync, group, or off)", s)
}
