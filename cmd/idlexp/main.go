// Command idlexp regenerates the paper's example suite (experiments
// E1–E12 in DESIGN.md): every query, update, view and update program in
// "Language Features for Interoperability of Databases with Schematic
// Discrepancies" (SIGMOD 1991), run against the three-schema stock
// fixture. Its output is recorded in EXPERIMENTS.md.
//
// Usage:
//
//	idlexp              run every experiment
//	idlexp -run E3      run one experiment
//	idlexp -list        list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"idl"
	"idl/internal/core"
	"idl/internal/msql"
)

func main() {
	var (
		runID = flag.String("run", "", "run a single experiment (e.g. E3)")
		list  = flag.Bool("list", false, "list experiments")
	)
	flag.Parse()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}
	ran := 0
	for _, e := range experiments {
		if *runID != "" && !strings.EqualFold(*runID, e.id) {
			continue
		}
		fmt.Printf("== %s — %s ==\n", e.id, e.title)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment %q; use -list\n", *runID)
		os.Exit(1)
	}
}

type experiment struct {
	id    string
	title string
	run   func() error
}

// fixture loads the paper's running example: hp/ibm/sun over three days
// in all three schemas.
func fixture() *idl.DB {
	db := idl.Open()
	cat := db.Catalog()
	dates := []idl.DateValue{idl.Date(85, 3, 1), idl.Date(85, 3, 2), idl.Date(85, 3, 3)}
	prices := map[string][]int{"hp": {50, 55, 62}, "ibm": {140, 155, 160}, "sun": {201, 210, 150}}
	stockOrder := []string{"hp", "ibm", "sun"}
	for _, s := range stockOrder {
		for i, p := range prices[s] {
			cat.Insert("euter", "r", idl.Tup("date", dates[i], "stkCode", s, "clsPrice", p))
			cat.Insert("ource", s, idl.Tup("date", dates[i], "clsPrice", p))
		}
	}
	for i, d := range dates {
		row := idl.Tup("date", d)
		for _, s := range stockOrder {
			row.Put(s, idl.Int(prices[s][i]))
		}
		cat.Insert("chwab", "r", row)
	}
	return db
}

// show runs a query and prints it with its result.
func show(db *idl.DB, caption, src string) error {
	fmt.Printf("-- %s\n   %s\n", caption, src)
	res, err := db.Query(src)
	if err != nil {
		return err
	}
	for _, line := range strings.Split(res.String(), "\n") {
		fmt.Printf("   | %s\n", line)
	}
	return nil
}

// do runs an update request and prints its effects.
func do(db *idl.DB, caption, src string) error {
	fmt.Printf("-- %s\n   %s\n", caption, src)
	info, err := db.Exec(src)
	if err != nil {
		return err
	}
	fmt.Printf("   | +%d tuples, -%d tuples, +%d attrs, -%d attrs, %d values set\n",
		info.ElemsInserted, info.ElemsDeleted, info.AttrsCreated, info.AttrsDeleted, info.ValuesSet)
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

var unifiedRules = []string{
	".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)",
	".dbI.p+(.date=D, .stk=S, .price=P) <- .chwab.r(.date=D, .S=P), S != date",
	".dbI.p+(.date=D, .stk=S, .price=P) <- .ource.S(.date=D, .clsPrice=P)",
}

var customizedRules = []string{
	".dbE.r+(.date=D, .stkCode=S, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
	".dbC.r+(.date=D, .S=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
	".dbO.S+(.date=D, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
}

var experiments = []experiment{
	{"E1", "first-order queries on euter (paper §4.2)", func() error {
		db := fixture()
		return firstErr(
			show(db, "did hp ever close above 60?", "?.euter.r(.stkCode=hp, .clsPrice>60)"),
			show(db, "dates when hp>60 and ibm>150 (self join)",
				"?.euter.r(.stkCode=hp,.clsPrice>60,.date=D), .euter.r(.stkCode=ibm,.clsPrice>150,.date=D)"),
			show(db, "hp's all-time high (negation + inequality join)",
				"?.euter.r(.stkCode=hp,.clsPrice=P,.date=D), .euter.r~(.stkCode=hp, .clsPrice>P)"),
			show(db, "did any stock ever close above 200?", "?.euter.r(.stkCode=S, .clsPrice>200)"),
		)
	}},
	{"E2", "higher-order metadata queries (paper §4.3)", func() error {
		db := fixture()
		return firstErr(
			show(db, "database names in the universe", "?.X"),
			show(db, "relation names in ource", "?.ource.Y"),
			show(db, "same, via footnote-7 constraint", "?.X.Y, X = ource"),
			show(db, "all database/relation pairs", "?.X.Y"),
			show(db, "databases containing a relation named hp", "?.X.hp"),
			show(db, "relations containing an attribute stkCode", "?.X.Y(.stkCode)"),
			show(db, "relation names common to all three databases", "?.euter.Y, .chwab.Y, .ource.Y"),
		)
	}},
	{"E3", "one intention, three schemas: any stock above 200 (§2/§4.3)", func() error {
		db := fixture()
		return firstErr(
			show(db, "euter (stock as data)", "?.euter.r(.stkCode=S, .clsPrice>200)"),
			show(db, "chwab (stock as attribute name)", "?.chwab.r(.S>200)"),
			show(db, "ource (stock as relation name)", "?.ource.S(.clsPrice > 200)"),
		)
	}},
	{"E4", "cross-database join: chwab × ource on closing price (§4.3)", func() error {
		db := fixture()
		return show(db, "stocks priced the same in ource and chwab",
			"?.chwab.r(.date=D,.S=P), .ource.S(.date=D,.clsPrice=P)")
	}},
	{"E5", "highest close per day, in all three schemas (§2 query 2)", func() error {
		db := fixture()
		return firstErr(
			show(db, "euter", "?.euter.r(.date=D,.stkCode=S,.clsPrice=P), .euter.r~(.date=D, .clsPrice>P)"),
			show(db, "chwab", "?.chwab.r(.date=D,.S=P), .chwab.r~(.date=D,.S2>P), S != date"),
			show(db, "ource", "?.ource.S(.date=D,.clsPrice=P), ~.ource.S2(.date=D, .clsPrice>P)"),
		)
	}},
	{"E6", "insert & delete set expressions on euter (§5.2)", func() error {
		db := fixture()
		return firstErr(
			do(db, "insert a quote", "?.euter.r+(.date=3/4/85,.stkCode=hp,.clsPrice=70)"),
			show(db, "visible", "?.euter.r(.date=3/4/85,.stkCode=hp,.clsPrice=P)"),
			do(db, "query-dependent delete",
				"?.euter.r(.date=3/4/85,.stkCode=hp,.clsPrice=C),.euter.r-(.date=3/4/85,.stkCode=hp,.clsPrice=C)"),
			show(db, "gone", "?.euter.r(.date=3/4/85,.stkCode=hp)"),
		)
	}},
	{"E7", "attribute-level updates on chwab (§5.2)", func() error {
		db := fixture()
		return firstErr(
			do(db, "null hp's price on 3/3/85 (atomic minus, attribute kept)",
				"?.chwab.r(.date=3/3/85, .hp-=C)"),
			show(db, "no longer satisfied", "?.chwab.r(.date=3/3/85, .hp=P)"),
			show(db, "but the attribute still exists", "?.chwab.r(.date=3/3/85, .A), A = hp"),
			do(db, "delete the attribute itself from the 3/2/85 tuple (tuple minus)",
				"?.chwab.r(.date=3/2/85, -.hp=C)"),
			show(db, "heterogeneous tuples: hp survives only on 3/1/85", "?.chwab.r(.date=D, .hp=P)"),
		)
	}},
	{"E8", "update as delete-then-insert; ordering matters (§5.2)", func() error {
		db := fixture()
		return firstErr(
			do(db, "raise hp's 3/3/85 price by 10",
				"?.chwab.r(.date=3/3/85,.hp=C), .chwab.r-(.date=3/3/85,.hp=C), .chwab.r+(.date=3/3/85,.hp=C+10)"),
			show(db, "result", "?.chwab.r(.date=3/3/85,.hp=P)"),
		)
	}},
	{"E9", "unified view dbI.p over all three schemas; pnew reconciliation (§6)", func() error {
		db := fixture()
		if err := db.DefineViews(unifiedRules...); err != nil {
			return err
		}
		if err := db.DefineView(".dbI.pnew+(.date=D,.stk=S,.price=P) <- .dbI.p(.date=D,.stk=S,.price=P), .dbI.p~(.date=D,.stk=S,.price>P)"); err != nil {
			return err
		}
		return firstErr(
			show(db, "database transparency: one query, all databases", "?.dbI.p(.stk=S, .price>200)"),
			do(db, "introduce a value discrepancy in chwab",
				"?.chwab.r(.date=3/1/85,.hp=C), .chwab.r-(.date=3/1/85,.hp=C), .chwab.r+(.date=3/1/85,.hp=51)"),
			show(db, "both prices are in the user's view (paper's wording)",
				"?.dbI.p(.stk=hp, .date=3/1/85, .price=P)"),
			show(db, "pnew keeps one reconciled price",
				"?.dbI.pnew(.stk=hp, .date=3/1/85, .price=P)"),
		)
	}},
	{"E10", "customized views dbE/dbC/dbO; Figure 1 round trip (§6)", func() error {
		db := fixture()
		if err := db.DefineViews(unifiedRules...); err != nil {
			return err
		}
		if err := db.DefineViews(customizedRules...); err != nil {
			return err
		}
		return firstErr(
			show(db, "dbE re-creates the euter schema", "?.dbE.r(.date=3/3/85,.stkCode=S,.clsPrice=P)"),
			show(db, "dbC re-creates the chwab schema (one row per day)",
				"?.dbC.r(.date=3/2/85, .hp=HP, .ibm=IBM, .sun=SUN)"),
			show(db, "dbO is a higher-order view: one relation per stock", "?.dbO.Y"),
			do(db, "adding a stock anywhere grows dbO's schema",
				"?.euter.r+(.date=3/1/85,.stkCode=dec,.clsPrice=80)"),
			show(db, "dbO now has a dec relation", "?.dbO.Y"),
			show(db, "with the right content", "?.dbO.dec(.date=D,.clsPrice=P)"),
		)
	}},
	{"E11", "name mappings mapCE/mapOE (§6, last example)", func() error {
		db := idl.Open()
		cat := db.Catalog()
		d := idl.Date(85, 3, 1)
		cat.Insert("euter", "r", idl.Tup("date", d, "stkCode", "hewlettPackard", "clsPrice", 50))
		cat.Insert("chwab", "r", idl.Tup("date", d, "hp", 50))
		cat.Insert("ource", "hpq", idl.Tup("date", d, "clsPrice", 50))
		cat.Insert("maps", "mapCE", idl.Tup("from", "hp", "to", "hewlettPackard"))
		cat.Insert("maps", "mapOE", idl.Tup("from", "hpq", "to", "hewlettPackard"))
		if err := db.DefineViews(
			".dbI.p+(.date=D,.stk=S,.price=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P)",
			".dbI.p+(.date=D,.stk=S,.price=P) <- .chwab.r(.date=D,.SC=P), .maps.mapCE(.from=SC,.to=S)",
			".dbI.p+(.date=D,.stk=S,.price=P) <- .ource.SO(.date=D,.clsPrice=P), .maps.mapOE(.from=SO,.to=S)",
		); err != nil {
			return err
		}
		return show(db, "unified view under name mappings", "?.dbI.p(.stk=S,.price=P)")
	}},
	{"E12", "update programs delStk/rmStk/insStk; view updatability (§7)", func() error {
		db := fixture()
		if err := db.DefineViews(unifiedRules...); err != nil {
			return err
		}
		if err := db.DefineViews(customizedRules...); err != nil {
			return err
		}
		programs := []string{
			".dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S,.date=D)",
			".dbU.delStk(.stk=S, .date=D) -> .chwab.r(.date=D, .S-=X)",
			".dbU.delStk(.stk=S, .date=D) -> .ource.S-(.date=D)",
			".dbU.rmStk(.stk=S) -> .euter.r-(.stkCode=S)",
			".dbU.rmStk(.stk=S) -> .chwab.r(-.S)",
			".dbU.rmStk(.stk=S) -> .ource-.S",
			".dbU.insStk(.stk=S, .date=D, .price=P) -> .euter.r+(.stkCode=S,.date=D,.clsPrice=P)",
			".dbU.insStk(.stk=S, .date=D, .price=P) -> .chwab.r(.date=D, +.S=P)",
			".dbU.insStk(.stk=S, .date=D, .price=P) -> .ource.S+(.date=D,.clsPrice=P)",
			".dbI.p+(.date=D, .stk=S, .price=P) -> .euter.r+(.date=D, .stkCode=S, .clsPrice=P)",
			".dbO.S+(.date=D, .clsPrice=P) -> .dbI.p+(.date=D, .stk=S, .price=P)",
		}
		if err := db.DefinePrograms(programs...); err != nil {
			return err
		}
		for _, p := range db.Programs() {
			fmt.Printf("-- program .%s.%s  params: %s  required: %s\n",
				p.DB, p.Name, strings.Join(p.Params(), ","), strings.Join(p.Required(), ","))
		}
		return firstErr(
			do(db, "delStk(hp, 3/3/85): data in euter/ource, null in chwab",
				"?.dbU.delStk(.stk=hp, .date=3/3/85)"),
			show(db, "euter no longer has the tuple", "?.euter.r(.stkCode=hp,.date=3/3/85)"),
			do(db, "rmStk(ibm): data, attribute and relation deletion", "?.dbU.rmStk(.stk=ibm)"),
			show(db, "ource relations after rmStk", "?.ource.Y"),
			do(db, "insStk(dec): inserts into all three schemas",
				"?.dbU.insStk(.stk=dec, .date=3/1/85, .price=80)"),
			show(db, "chwab gained a dec attribute", "?.chwab.r(.date=3/1/85,.dec=P)"),
			do(db, "view update on the higher-order view dbO (translated by programs)",
				"?.dbO.newco+(.date=3/9/85, .clsPrice=7)"),
			show(db, "dbO grew a newco relation backed by a base insert",
				"?.dbO.newco(.date=D,.clsPrice=P)"),
			show(db, "base euter received the translated insert", "?.euter.r(.stkCode=newco,.clsPrice=P)"),
		)
	}},
	{"X1", "extension: reified metadata (meta database; paper §2 third need)", func() error {
		opts := core.DefaultOptions()
		opts.ExposeMeta = true
		db := idl.OpenWithOptions(opts)
		seedInto(db)
		return firstErr(
			show(db, "the universe's schema as data", "?.meta.relations(.db=D, .rel=R, .tuples=N)"),
			show(db, "metadata joined with data: databases with a relation named after a 200+ stock",
				"?.euter.r(.stkCode=S, .clsPrice>200), .meta.relations(.db=D, .rel=S)"),
		)
	}},
	{"X2", "extension: keys/types/referential integrity (paper §8)", func() error {
		db := fixture()
		if err := db.Schema().Declare(idl.RelDecl{
			DB: "euter", Rel: "r",
			Attrs: []idl.AttrDecl{
				{Name: "date", Type: idl.DateType, Required: true},
				{Name: "stkCode", Type: idl.StringType, Required: true},
				{Name: "clsPrice", Type: idl.NumberType},
			},
			Key: []string{"date", "stkCode"},
		}); err != nil {
			return err
		}
		if err := do(db, "a valid insert passes", "?.euter.r+(.date=3/4/85, .stkCode=hp, .clsPrice=70)"); err != nil {
			return err
		}
		fmt.Println("-- a key-violating insert is rejected and rolled back")
		if _, err := db.Exec("?.euter.r+(.date=3/4/85, .stkCode=hp, .clsPrice=71)"); err != nil {
			fmt.Printf("   | error (as required): %v\n", err)
		} else {
			return fmt.Errorf("duplicate key accepted")
		}
		fmt.Println("-- a type-violating insert is rejected")
		if _, err := db.Exec("?.euter.r+(.date=3/5/85, .stkCode=hp, .clsPrice=cheap)"); err != nil {
			fmt.Printf("   | error (as required): %v\n", err)
			return nil
		}
		return fmt.Errorf("type violation accepted")
	}},
	{"X3", "extension: MSQL subsumption — broadcast SQL compiled to IDL (§1)", func() error {
		db := fixture()
		// Clone euter as euter2 so the broadcast has something to span.
		base := db.Engine().Base()
		euter, _ := base.Get("euter")
		base.Put("euter2", euter.Clone())
		db.Engine().Invalidate()
		src := "SELECT &D, r.stkCode FROM &D.r WHERE r.clsPrice > 200"
		st, err := msql.Parse(src)
		if err != nil {
			return err
		}
		rs, err := msql.Exec(st, base)
		if err != nil {
			return err
		}
		fmt.Printf("-- MSQL broadcast (database semantic variable &D)\n   %s\n", src)
		for _, line := range strings.Split(rs.Canonical(), "\n") {
			fmt.Printf("   | %s\n", line)
		}
		q, columns, err := msql.Translate(st)
		if err != nil {
			return err
		}
		fmt.Printf("-- the same statement compiled to IDL (subsumption)\n   %s\n", q.String())
		ans, err := db.Engine().Query(q)
		if err != nil {
			return err
		}
		// Project onto the statement's SELECT list before counting
		// (iterate the columns in sorted order for a stable key).
		var colVars []string
		for _, v := range columns {
			colVars = append(colVars, v)
		}
		sort.Strings(colVars)
		distinct := map[string]bool{}
		for _, row := range ans.Rows {
			key := ""
			for _, v := range colVars {
				if val, ok := row[v]; ok {
					key += val.String() + "\x00"
				}
			}
			distinct[key] = true
		}
		fmt.Printf("   | %d projected rows — identical to the MSQL result (checked by tests)\n", len(distinct))
		fmt.Println("-- what MSQL cannot say at all: ?.chwab.r(.S>200) — attribute variables")
		return nil
	}},
}

// seedInto loads the paper fixture into an already-opened DB (for
// experiments needing special engine options).
func seedInto(db *idl.DB) {
	src := fixture()
	src.Engine().Base().Each(func(name string, v idl.Value) bool {
		db.Engine().Base().Put(name, v)
		return true
	})
	db.Engine().Invalidate()
}
