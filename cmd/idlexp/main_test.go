package main

import (
	"os"
	"testing"
)

// TestAllExperimentsRun executes every paper experiment E1–E12 and fails
// on any error — the integration test behind `go run ./cmd/idlexp`.
func TestAllExperimentsRun(t *testing.T) {
	silence(t)
	// E1–E12 from the paper plus the X1–X3 extension experiments.
	if len(experiments) != 15 {
		t.Fatalf("experiment count = %d, want 15", len(experiments))
	}
	seen := map[string]bool{}
	for _, e := range experiments {
		if seen[e.id] {
			t.Errorf("duplicate experiment id %s", e.id)
		}
		seen[e.id] = true
		if err := e.run(); err != nil {
			t.Errorf("%s (%s): %v", e.id, e.title, err)
		}
	}
}

func TestFixtureShape(t *testing.T) {
	db := fixture()
	res, err := db.Query("?.euter.r(.date=D,.stkCode=S,.clsPrice=P)")
	if err != nil || res.Len() != 9 {
		t.Fatalf("fixture euter rows = %v, %v", res, err)
	}
	res, err = db.Query("?.ource.Y")
	if err != nil || res.Len() != 3 {
		t.Fatalf("fixture ource relations = %v, %v", res, err)
	}
}

// silence redirects stdout for the duration of the test so experiment
// prints don't clutter test output.
func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	t.Cleanup(func() {
		os.Stdout = old
		devNull.Close()
	})
}
