package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"idl"
)

// TestMetaTopAndStatement drives the \top and \statement meta-commands:
// orderings, k, the per-digest detail view with captured exemplars, the
// insights-off error path, and \reset-stats clearing the digest store.
func TestMetaTopAndStatement(t *testing.T) {
	db, err := openDB(config{demo: true})
	if err != nil {
		t.Fatal(err)
	}
	db.EnableInsights(idl.InsightsConfig{SlowThreshold: time.Nanosecond})
	// Two untraced runs tally plan-cache outcomes (traced queries bypass
	// the plan cache for per-conjunct probes)...
	for i := 0; i < 2; i++ {
		if _, err := db.Query("?.euter.r(.stkCode=S, .clsPrice>100)"); err != nil {
			t.Fatal(err)
		}
	}
	// ...then a traced run captures an exemplar with its span tree.
	db.EnableTracing(8)
	if _, err := db.Query("?.euter.r(.stkCode=S, .clsPrice>100)"); err != nil {
		t.Fatal(err)
	}

	out := captureStdout(t, func() { meta(db, config{}, `\top`) })
	if !strings.Contains(out, "top 1 statements by time:") || !strings.Contains(out, "calls=3") {
		t.Errorf("\\top output:\n%s", out)
	}
	out = captureStdout(t, func() { meta(db, config{}, `\top calls 5`) })
	if !strings.Contains(out, "top 1 statements by calls:") {
		t.Errorf("\\top calls 5 output:\n%s", out)
	}
	out = captureStdout(t, func() { meta(db, config{}, `\top bogus`) })
	if !strings.Contains(out, "usage:") {
		t.Errorf("\\top bogus should print usage:\n%s", out)
	}

	digests, err := db.Statements()
	if err != nil || len(digests) != 1 {
		t.Fatalf("digests: %v %+v", err, digests)
	}
	fp := digests[0].Fingerprint
	out = captureStdout(t, func() { meta(db, config{}, `\statement `+fp) })
	for _, want := range []string{
		"statement " + fp + " kind=query calls=3",
		"plan-cache: hit=1",
		"resources: rows=",
		"captures: 3",
		"exemplar 3: trace=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("\\statement output missing %q:\n%s", want, out)
		}
	}
	// Tracing was on, so the exemplar embeds the rendered span tree
	// (root carries the trace attr; children the per-conjunct scans).
	if !strings.Contains(out, "elements_scanned=") {
		t.Errorf("\\statement should render the captured span tree:\n%s", out)
	}
	out = captureStdout(t, func() { meta(db, config{}, `\statement ffffffffffffffff`) })
	if !strings.Contains(out, "error:") {
		t.Errorf("unknown fingerprint should error:\n%s", out)
	}
	out = captureStdout(t, func() { meta(db, config{}, `\statement`) })
	if !strings.Contains(out, "usage:") {
		t.Errorf("bare \\statement should print usage:\n%s", out)
	}

	// \reset-stats clears the digest store along with the metrics.
	captureStdout(t, func() { meta(db, config{}, `\reset-stats`) })
	out = captureStdout(t, func() { meta(db, config{}, `\top`) })
	if !strings.Contains(out, "no statements digested yet") {
		t.Errorf("\\top after \\reset-stats:\n%s", out)
	}

	// Without a store the commands degrade with the facade's error.
	plain, err := openDB(config{demo: true})
	if err != nil {
		t.Fatal(err)
	}
	out = captureStdout(t, func() { meta(plain, config{}, `\top`) })
	if !strings.Contains(out, "insights are not enabled") {
		t.Errorf("\\top without insights:\n%s", out)
	}
}

// TestDebugStatementsEndpoints: /debug/statements answers 503 JSON while
// insights are off, 200 with the digest table once enabled; the
// per-fingerprint endpoint serves one digest with exemplars and 404s on
// unknown fingerprints.
func TestDebugStatementsEndpoints(t *testing.T) {
	db, err := openDB(config{demo: true})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := startDebugServer("127.0.0.1:0", db)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
	}

	for _, path := range []string{"/debug/statements", "/debug/statements/0000000000000001"} {
		code, ct, body := get(path)
		if code != http.StatusServiceUnavailable || ct != "application/json" {
			t.Errorf("GET %s while disabled: status %d content type %q", path, code, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &e); err != nil || !strings.Contains(e.Error, "insights are not enabled") {
			t.Errorf("GET %s while disabled: body %q", path, body)
		}
	}

	db.EnableInsights(idl.InsightsConfig{SlowThreshold: time.Nanosecond})
	if _, err := db.Query("?.euter.r(.stkCode=S, .clsPrice>100)"); err != nil {
		t.Fatal(err)
	}

	code, ct, body := get("/debug/statements?by=calls&k=5")
	if code != http.StatusOK || ct != "application/json" {
		t.Fatalf("GET /debug/statements: status %d content type %q", code, ct)
	}
	var doc struct {
		Statements []idl.StatementDigest `json:"statements"`
		Dropped    uint64                `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/statements is not JSON: %v\n%s", err, body)
	}
	if len(doc.Statements) != 1 || doc.Statements[0].Calls != 1 {
		t.Fatalf("/debug/statements: %s", body)
	}

	code, _, body = get("/debug/statements/" + doc.Statements[0].Fingerprint)
	if code != http.StatusOK {
		t.Fatalf("GET /debug/statements/<fp>: status %d", code)
	}
	var one struct {
		Digest    idl.StatementDigest     `json:"digest"`
		Exemplars []idl.StatementExemplar `json:"exemplars"`
	}
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatalf("per-digest body is not JSON: %v\n%s", err, body)
	}
	if one.Digest.Calls != 1 || len(one.Exemplars) != 1 || one.Exemplars[0].TraceID == "" {
		t.Fatalf("per-digest body: %s", body)
	}

	if code, _, _ := get("/debug/statements/ffffffffffffffff"); code != http.StatusNotFound {
		t.Errorf("unknown fingerprint: status %d, want 404", code)
	}
	if code, _, _ := get("/debug/statements/not-hex"); code != http.StatusNotFound {
		t.Errorf("malformed fingerprint: status %d, want 404", code)
	}
}

// TestGoldenTopSession pins the \top surface over a session touching all
// three stock schemas. Ordering is by calls (deterministic: counts and
// the fingerprint tiebreak), fingerprints are version-salted structural
// hashes (stable across runs), and resource counters are byte-identical
// at every worker count — only latencies normalize away.
func TestGoldenTopSession(t *testing.T) {
	cfg := defaultConfig()
	cfg.demo = true
	out := captureStdout(t, func() {
		db, err := openDB(cfg)
		if err != nil {
			t.Error(err)
			return
		}
		db.EnableInsights(idl.InsightsConfig{}) // as run() does via setupObservability
		script := `?.euter.r(.stkCode=S, .clsPrice>100);
?.euter.r(.stkCode=S, .clsPrice>100);
?.euter.r(.stkCode=S, .clsPrice>100);
?.chwab.r(.date=D, .sun=P);
?.chwab.r(.date=D, .sun=P);
?.ource.hp(.date=D, .clsPrice=P);
?.euter.r+(.date=1/7/85,.stkCode=stk001,.clsPrice=70)`
		if err := execute(db, script); err != nil {
			t.Error(err)
		}
		meta(db, cfg, `\top calls`)
	})
	got := normalizeHealth(out)

	goldenPath := filepath.Join("testdata", "top_session.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("top session output drift:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
