package main

import (
	"net"
	"net/http"

	"idl"
	"idl/internal/server"
)

// The REPL's -debug-addr endpoints are the shared registration helper
// in internal/server — the same handlers idld mounts behind /debug/ on
// its serving mux, so the embedded and the standalone server cannot
// drift.

// startDebugServer listens on addr and serves the shared debug handler
// in the background, returning the bound address (useful with ":0").
func startDebugServer(addr string, db *idl.DB) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: server.DebugHandler(db)}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
