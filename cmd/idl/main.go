// Command idl is an interactive shell and script runner for the IDL
// engine.
//
// Usage:
//
//	idl [flags]                 interactive shell
//	idl -script file.idl        run a script, print results
//	idl -e '?.euter.r(.x=1)'    run one statement
//
// Flags:
//
//	-snapshot path   load the universe from a snapshot at start and save
//	                 it back on exit (created if missing)
//	-wal dir         durable session: log every committed mutation to a
//	                 write-ahead log in dir and recover whatever a
//	                 previous session left there (prints the recovery
//	                 banner at startup); incompatible with -snapshot
//	-durability m    with -wal: fsync policy — sync (fsync every commit,
//	                 the default), group (group-commit: fsync when enough
//	                 bytes accumulate), off (no fsync on commit)
//	-demo            preload the paper's three stock databases
//	-tokens          with -e: dump the token stream (debugging)
//	-best-effort     degrade queries gracefully when a federated member
//	                 database is unreachable (default: fail fast)
//	-timeout d       per-attempt timeout for federated member operations
//	-retries n       retry attempts for federated member operations
//	-chaos-seed n    with -demo: mount the stock databases as federated
//	                 members behind a seeded fault injector (0 = off);
//	                 the same seed reproduces the same fault schedule
//	-workers n       evaluate with n parallel workers: large scans
//	                 partition across workers, independent view rules run
//	                 concurrently, and federated member fetches overlap —
//	                 answers stay byte-identical to sequential evaluation
//	                 (0 or 1 = sequential)
//	-no-plan-cache   compile a fresh plan for every query instead of
//	                 reusing epoch-validated cached plans (answers are
//	                 unchanged; only compile work repeats)
//	-debug-addr a    serve debug endpoints on this address:
//	                 /debug/metrics (engine metrics, JSON or ?format=table),
//	                 /debug/events (flight recorder, JSON or ?format=text),
//	                 /debug/health (rolling-window health report),
//	                 /debug/slo (SLO burn rates only),
//	                 /debug/traces (exported span trees with trace IDs),
//	                 /debug/statements (statement digests; append a
//	                 fingerprint for one digest with its exemplars),
//	                 /debug/vars (expvar), /debug/pprof/ (profiles)
//	-journal path    append every statement and its answer to a .idlog
//	                 workload journal, replayable with cmd/idlreplay
//	-log path        structured event log: one JSON line per statement
//	                 ("-" = stderr)
//	-slow-query d    log statements slower than d at WARN (0 = off)
//	-flightrec n     flight recorder capacity (0 disables it)
//	-dump-on-error   dump the flight recorder to stderr when a statement
//	                 fails or a member's circuit breaker opens
//	-no-metrics      do not collect engine metrics for the session
//	-no-insights     do not accumulate per-statement query digests (on by
//	                 default: every statement folds into a digest keyed by
//	                 its AST fingerprint, with resource accounting and
//	                 adaptive slow-query capture; see \top, \statement)
//
// Shell meta-commands:
//
//	\dbs                       list databases
//	\rels <db>                 list relations in a database
//	\cat                       catalog statistics (tuples, attributes)
//	\stats [json]              engine metrics (counters, gauges, latency
//	                           histograms), federation member health, and
//	                           WAL status on durable sessions
//	\health [json]             rolling-window health: last-minute op
//	                           latencies (p50/p99/p999), SLO burn rates,
//	                           heaviest statement digests, durability
//	                           state
//	\top [calls|p99|rows|time] [k]
//	                           top statement digests by the given key
//	                           (default: time, k=10)
//	\statement <fingerprint>   one digest in full: plan-cache outcomes,
//	                           resource accounting, captured slow-query
//	                           exemplars with their trace trees
//	\reset-stats               zero the metrics and evaluator counters
//	\flightrec [json|clear]    dump (or clear) the flight recorder
//	\views                     registered view rules
//	\programs                  registered update programs and signatures
//	\save <path>               save a snapshot
//	\estats                    evaluator counters
//	\explain <query>           show the evaluation plan
//	\explain analyze <query>   run the query; show the plan with actual
//	                           rows, scans, probes, and per-conjunct time
//	\trace on|off|show         toggle span tracing / show recent traces
//	\workers [n]               show or set the parallel worker count
//	\plan-cache [clear]        plan cache counters (hits, misses,
//	                           evictions, resident plans, catalog epoch),
//	                           or clear the cached plans
//	\mvcc                      snapshot version-chain status: live
//	                           versions, pinned reader epochs, retained
//	                           bytes, freeze / GC / copy-on-write counts
//	\wal                       write-ahead log status (next LSN, records
//	                           appended, segments, last checkpoint)
//	\checkpoint                snapshot the state into the WAL directory
//	                           and truncate the log's sealed segments
//	\help                      this list
//	\quit                      exit
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"idl"
	"idl/internal/lex"
	"idl/internal/qlog"
	"idl/internal/workload"
)

// config collects everything the CLI needs to build and drive a DB.
type config struct {
	snapshot string
	script   string
	expr     string
	demo     bool
	tokens   bool

	// Durability: WAL directory and fsync policy (sync/group/off).
	wal        string
	durability string

	// Federation knobs.
	bestEffort bool
	timeout    time.Duration
	retries    int
	chaosSeed  uint64

	// Evaluation parallelism (0 or 1 = sequential).
	workers int

	// Planning: disable the epoch-keyed plan cache (B-series ablation).
	noPlanCache bool

	// Observability.
	debugAddr   string
	journal     string
	logPath     string
	slowQuery   time.Duration
	flightRec   int
	dumpOnError bool
	noMetrics   bool
	noInsights  bool
}

func defaultConfig() config {
	fed := idl.DefaultFederationConfig()
	return config{timeout: fed.Timeout, retries: fed.Retries, flightRec: qlog.DefaultRingSize, durability: "sync"}
}

func main() {
	cfg := defaultConfig()
	flag.StringVar(&cfg.snapshot, "snapshot", "", "load/save the universe snapshot at this path")
	flag.StringVar(&cfg.wal, "wal", "", "write-ahead log directory: log committed mutations and recover at startup")
	flag.StringVar(&cfg.durability, "durability", cfg.durability, "with -wal: fsync policy — sync, group, or off")
	flag.StringVar(&cfg.script, "script", "", "run an IDL script file and exit")
	flag.StringVar(&cfg.expr, "e", "", "run one statement and exit")
	flag.BoolVar(&cfg.demo, "demo", false, "preload the paper's three stock databases")
	flag.BoolVar(&cfg.tokens, "tokens", false, "with -e: print the token stream instead of evaluating")
	flag.BoolVar(&cfg.bestEffort, "best-effort", false, "answer queries best-effort when a federated member is unreachable")
	flag.DurationVar(&cfg.timeout, "timeout", cfg.timeout, "per-attempt timeout for federated member operations")
	flag.IntVar(&cfg.retries, "retries", cfg.retries, "retry attempts for federated member operations")
	flag.Uint64Var(&cfg.chaosSeed, "chaos-seed", 0, "with -demo: mount the stock databases behind a seeded fault injector (0 = off)")
	flag.IntVar(&cfg.workers, "workers", 0, "parallel evaluation workers; answers stay byte-identical to sequential (0 or 1 = sequential)")
	flag.BoolVar(&cfg.noPlanCache, "no-plan-cache", false, "compile a fresh plan for every query (disables the epoch-keyed plan cache)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve /debug/metrics, /debug/events, /debug/vars, and /debug/pprof/ on this address")
	flag.StringVar(&cfg.journal, "journal", "", "append a replayable .idlog workload journal at this path")
	flag.StringVar(&cfg.logPath, "log", "", `structured event log path ("-" = stderr)`)
	flag.DurationVar(&cfg.slowQuery, "slow-query", 0, "log statements slower than this at WARN (0 = off)")
	flag.IntVar(&cfg.flightRec, "flightrec", cfg.flightRec, "flight recorder capacity in events (0 disables it)")
	flag.BoolVar(&cfg.dumpOnError, "dump-on-error", false, "dump the flight recorder to stderr on statement failure or breaker open")
	flag.BoolVar(&cfg.noMetrics, "no-metrics", false, "do not collect engine metrics for the session")
	flag.BoolVar(&cfg.noInsights, "no-insights", false, "do not accumulate per-statement query digests")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "idl:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	db, err := openDB(cfg)
	if err != nil {
		return err
	}
	cleanup, err := setupObservability(db, cfg)
	if err != nil {
		return err
	}
	if cfg.debugAddr != "" {
		addr, err := startDebugServer(cfg.debugAddr, db)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/debug/\n", addr)
	}
	switch {
	case cfg.tokens && cfg.expr != "":
		fmt.Println(lex.Describe(lex.Tokens(cfg.expr)))
		return cleanup()
	case cfg.expr != "":
		if err := execute(db, cfg.expr); err != nil {
			cleanup()
			return err
		}
	case cfg.script != "":
		src, err := os.ReadFile(cfg.script)
		if err != nil {
			cleanup()
			return err
		}
		if err := execute(db, string(src)); err != nil {
			cleanup()
			return err
		}
	default:
		repl(db, cfg)
	}
	if cfg.snapshot != "" {
		if err := db.Save(cfg.snapshot); err != nil {
			cleanup()
			return fmt.Errorf("save snapshot: %w", err)
		}
	}
	cerr := cleanup()
	// Close the WAL last: deferred group-commit records sync here, so an
	// error means the tail of the session may not be durable.
	if err := db.Close(); err != nil {
		return fmt.Errorf("close wal: %w", err)
	}
	return cerr
}

// setupObservability applies the session's observability flags: metrics,
// flight recorder size, event log, slow-query threshold, auto-dump, and
// the workload journal. The returned cleanup closes the journal and
// surfaces its sticky write error.
func setupObservability(db *idl.DB, cfg config) (cleanup func() error, err error) {
	// Collect metrics for the whole session (unless refused) so the first
	// \stats or a scrape of -debug-addr reflects every statement, not
	// just those after it. The registry costs nothing measurable (B11).
	if !cfg.noMetrics {
		db.Metrics()
	}
	if !cfg.noInsights {
		// Digests for the whole session. The slow-query log threshold
		// doubles as the absolute capture threshold; the ×4-of-own-p50
		// rule adaptively flags statements degrading relative to
		// themselves even when no absolute threshold is set.
		db.EnableInsights(idl.InsightsConfig{SlowThreshold: cfg.slowQuery, SlowFactor: 4})
	}
	db.SetFlightRecorderSize(cfg.flightRec)
	db.SetSlowQueryThreshold(cfg.slowQuery)
	if cfg.dumpOnError {
		db.SetAutoDump(os.Stderr)
	}
	if cfg.logPath != "" {
		if cfg.logPath == "-" {
			db.SetEventLog(os.Stderr)
		} else {
			f, err := os.OpenFile(cfg.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("event log: %w", err)
			}
			db.SetEventLog(f)
		}
	}
	if cfg.journal != "" {
		if err := db.StartJournal(cfg.journal, workloadConfig(cfg).Meta()); err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
	}
	return func() error {
		if err := db.CloseJournal(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		return nil
	}, nil
}

// parseDurability maps the -durability flag to the facade's policy.
func parseDurability(s string) (idl.Durability, error) {
	switch s {
	case "sync", "":
		return idl.DurabilitySync, nil
	case "group":
		return idl.DurabilityGroup, nil
	case "off":
		return idl.DurabilityOff, nil
	}
	return 0, fmt.Errorf("unknown -durability %q (want sync, group, or off)", s)
}

// workloadConfig renders the CLI flags as a workload configuration —
// the same structure cmd/idlreplay rebuilds from a journal header.
func workloadConfig(cfg config) workload.Config {
	w := workload.Default()
	w.Demo = cfg.demo
	w.BestEffort = cfg.bestEffort
	w.ChaosSeed = cfg.chaosSeed
	w.Timeout = cfg.timeout
	w.Retries = cfg.retries
	w.Workers = cfg.workers
	return w
}

func openDB(cfg config) (*idl.DB, error) {
	var db *idl.DB
	if cfg.wal != "" {
		if cfg.snapshot != "" {
			return nil, fmt.Errorf("-wal and -snapshot are mutually exclusive (the WAL checkpoints its own snapshots)")
		}
		d, err := parseDurability(cfg.durability)
		if err != nil {
			return nil, err
		}
		opts := idl.DefaultOptions()
		opts.BestEffort = cfg.bestEffort
		walOpts := idl.WALOptions{Durability: d, Engine: &opts}
		wcfg := workloadConfig(cfg)
		if cfg.chaosSeed == 0 {
			// The demo universe is deterministic base environment, not a
			// logged mutation: install it before the tail replays (skipped
			// when a checkpoint already carries it). Chaos members instead
			// mount below like any session — their snapshot installs are
			// logged on sync.
			walOpts.Bootstrap = func(db *idl.DB) error { return workload.Apply(db, wcfg) }
		}
		recovered, report, err := idl.OpenWAL(cfg.wal, walOpts)
		if err != nil {
			return nil, err
		}
		fmt.Println(report.String())
		if cfg.noPlanCache {
			recovered.SetPlanCaching(false)
		}
		if cfg.workers > 0 {
			// Bootstrap (which applies the workload's worker count) is
			// skipped when a checkpoint was restored; set it directly.
			recovered.SetWorkers(cfg.workers)
		}
		if cfg.chaosSeed != 0 {
			if err := workload.Apply(recovered, wcfg); err != nil {
				return nil, err
			}
		}
		return recovered, nil
	}
	if db == nil && cfg.snapshot != "" {
		if _, err := os.Stat(cfg.snapshot); err == nil {
			loaded, err := idl.OpenSnapshot(cfg.snapshot)
			if err != nil {
				return nil, err
			}
			db = loaded
		}
	}
	if db == nil {
		opts := idl.DefaultOptions()
		opts.BestEffort = cfg.bestEffort
		db = idl.OpenWithOptions(opts)
	}
	if cfg.noPlanCache {
		// Applied after open so the flag also covers the snapshot path,
		// which constructs the DB with default options.
		db.SetPlanCaching(false)
	}
	// The demo universe (and its chaos-mounted variant) comes from
	// internal/workload so a journaled session replays from its header.
	if err := workload.Apply(db, workloadConfig(cfg)); err != nil {
		return nil, err
	}
	return db, nil
}

// execute runs a script chunk and prints each statement's outcome.
func execute(db *idl.DB, src string) error {
	results, err := db.Load(src)
	for _, r := range results {
		printResult(r)
	}
	return err
}

func printResult(r *idl.ScriptResult) {
	switch r.Kind {
	case "rule":
		fmt.Printf("defined view rule: %s\n", r.Statement)
	case "clause":
		fmt.Printf("defined update program clause: %s\n", r.Statement)
	case "exec":
		fmt.Printf("ok: +%d tuples, -%d tuples, +%d attrs, -%d attrs, %d values set (%d bindings)\n",
			r.Exec.ElemsInserted, r.Exec.ElemsDeleted, r.Exec.AttrsCreated,
			r.Exec.AttrsDeleted, r.Exec.ValuesSet, r.Exec.Bindings)
	case "query":
		fmt.Println(r.Answer.String())
		if len(r.Answer.Vars) > 0 {
			fmt.Printf("(%d rows)\n", r.Answer.Len())
		}
		if r.Answer.Degraded != nil {
			fmt.Println(r.Answer.Degraded.String())
		}
	}
}

func repl(db *idl.DB, cfg config) {
	fmt.Println("IDL shell — Interoperable Database Language (SIGMOD 1991 reproduction)")
	fmt.Println(`type statements ending with ';', or \help for meta-commands`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("idl> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !meta(db, cfg, trimmed) {
				return
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") || trimmed == "" {
			src := pending.String()
			pending.Reset()
			if strings.TrimSpace(src) != "" {
				if err := execute(db, src); err != nil {
					fmt.Println("error:", err)
				}
			}
		}
		prompt()
	}
}

// meta handles a \command; returns false to exit the shell.
func meta(db *idl.DB, cfg config, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case `\quit`, `\q`:
		return false
	case `\help`:
		fmt.Println(`\dbs \rels <db> \cat \stats [json] \health [json] \top [calls|p99|rows|time] [k] \statement <fp> \reset-stats \flightrec [json|clear] \views \programs \estats \explain [analyze] <query> \trace on|off|show \workers [n] \plan-cache [clear] \mvcc \wal \checkpoint \save <path> \quit`)
	case `\explain`:
		if len(fields) < 2 {
			fmt.Println("usage: \\explain [analyze] <query>")
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(cmd, `\explain`))
		var plan string
		var err error
		if fields[1] == "analyze" {
			rest = strings.TrimSpace(strings.TrimPrefix(rest, "analyze"))
			if rest == "" {
				fmt.Println("usage: \\explain analyze <query>")
				break
			}
			plan, err = db.ExplainAnalyze(rest)
		} else {
			plan, err = db.Explain(rest)
		}
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println(plan)
	case `\dbs`:
		for _, d := range db.Catalog().Databases() {
			fmt.Println(d)
		}
	case `\rels`:
		if len(fields) < 2 {
			fmt.Println("usage: \\rels <db>")
			break
		}
		rels, err := db.Catalog().Relations(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		for _, r := range rels {
			fmt.Println(r)
		}
	case `\cat`:
		for _, s := range db.Catalog().Stats() {
			fmt.Printf("%s.%s\t%d tuples\tattrs: %s\n", s.Database, s.Relation, s.Tuples, strings.Join(s.Attributes, ","))
		}
	case `\stats`:
		if cfg.noMetrics {
			// db.Metrics() would lazily attach a registry, silently undoing
			// the flag for the rest of the session.
			fmt.Println("metrics disabled (-no-metrics)")
			break
		}
		if len(fields) > 1 && fields[1] == "json" {
			if err := db.Metrics().WriteJSON(os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
			break
		}
		snap := db.Metrics().Snapshot()
		if tbl := snap.Table(); tbl != "" {
			fmt.Print(tbl)
		} else {
			fmt.Println("no metrics recorded yet")
		}
		if rep := db.LastSyncReport(); rep != nil {
			fmt.Println("federation:", rep.String())
		}
		if st, ok := db.WALStatus(); ok {
			fmt.Println(st.String())
		}
	case `\health`:
		if cfg.noMetrics {
			fmt.Println("metrics disabled (-no-metrics)")
			break
		}
		db.Metrics() // health is a metrics product; attach lazily like \stats
		h, err := db.Health()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		if len(fields) > 1 && fields[1] == "json" {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(h); err != nil {
				fmt.Println("error:", err)
			}
			break
		}
		fmt.Println(h.String())
	case `\flightrec`:
		mode := "text"
		if len(fields) > 1 {
			mode = fields[1]
		}
		switch mode {
		case "text":
			if len(db.Events()) == 0 {
				fmt.Println("flight recorder is off (-flightrec 0) or empty")
			} else {
				db.DumpEvents(os.Stdout)
			}
		case "json":
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(db.Events()); err != nil {
				fmt.Println("error:", err)
			}
		case "clear":
			db.SetFlightRecorderSize(db.FlightRecorderSize())
			fmt.Println("flight recorder cleared")
		default:
			fmt.Println("usage: \\flightrec [json|clear]")
		}
	case `\reset-stats`:
		db.ResetMetrics()
		db.Engine().ResetStats()
		db.ResetStatements()
		fmt.Println("metrics, evaluator counters, and statement digests reset")
	case `\top`:
		metaTop(db, fields[1:])
	case `\statement`:
		if len(fields) < 2 {
			fmt.Println("usage: \\statement <fingerprint>")
			break
		}
		metaStatement(db, fields[1])
	case `\trace`:
		metaTrace(db, fields[1:])
	case `\workers`:
		if len(fields) < 2 {
			fmt.Printf("workers: %d\n", db.Workers())
			break
		}
		n := 0
		if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || n < 0 {
			fmt.Println("usage: \\workers [n]  (n >= 0; 0 or 1 = sequential)")
			break
		}
		db.SetWorkers(n)
		fmt.Printf("workers: %d\n", db.Workers())
	case `\plan-cache`:
		if len(fields) > 1 {
			if fields[1] != "clear" {
				fmt.Println("usage: \\plan-cache [clear]")
				break
			}
			db.ClearPlanCache()
			fmt.Println("plan cache cleared")
			break
		}
		st := db.PlanCacheStats()
		fmt.Printf("hits=%d misses=%d evictions=%d plans=%d epoch=%d\n",
			st.Hits, st.Misses, st.Evictions, st.Size, st.Epoch)
		if cfg.noPlanCache {
			fmt.Println("plan cache disabled (-no-plan-cache)")
		}
	case `\mvcc`:
		st := db.MVCCStats()
		fmt.Printf("versions=%d/%d head-epoch=%d published=%t\n",
			st.LiveVersions, st.MaxRevisions, st.HeadEpoch, st.HeadPublished)
		fmt.Printf("pinned-readers=%d pinned-epochs=%v retained-bytes=%d\n",
			st.PinnedReaders, st.PinnedEpochs, st.RetainedBytes)
		fmt.Printf("freezes=%d collected=%d cow-clones=%d\n",
			st.Freezes, st.Collected, st.COWClones)
	case `\wal`:
		st, ok := db.WALStatus()
		if !ok {
			fmt.Println("no write-ahead log attached (run with -wal <dir>)")
			break
		}
		fmt.Println(st.String())
	case `\checkpoint`:
		lsn, err := db.Checkpoint()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("checkpoint taken through lsn=%d\n", lsn)
	case `\views`:
		for _, v := range db.Views() {
			fmt.Println(v)
		}
	case `\programs`:
		for _, p := range db.Programs() {
			fmt.Printf(".%s.%s  params: %s  required: %s\n",
				p.DB, p.Name, strings.Join(p.Params(), ","), strings.Join(p.Required(), ","))
		}
	case `\estats`:
		st := db.Stats()
		fmt.Printf("scanned=%d indexProbes=%d indexBuilds=%d attrEnums=%d\n",
			st.ElementsScanned, st.IndexProbes, st.IndexBuilds, st.AttrEnums)
	case `\save`:
		if len(fields) < 2 {
			fmt.Println("usage: \\save <path>")
			break
		}
		if err := db.Save(fields[1]); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("saved", fields[1])
		}
	default:
		fmt.Println("unknown meta-command; try \\help")
	}
	return true
}

// metaTop prints the top statement digests: \top [calls|p99|rows|time] [k].
func metaTop(db *idl.DB, args []string) {
	by, k := "time", 10
	if len(args) > 0 {
		switch args[0] {
		case "calls", "p99", "rows", "time":
			by = args[0]
			args = args[1:]
		default:
			if _, err := fmt.Sscanf(args[0], "%d", &k); err != nil {
				fmt.Println("usage: \\top [calls|p99|rows|time] [k]")
				return
			}
			args = args[1:]
		}
	}
	if len(args) > 0 {
		if _, err := fmt.Sscanf(args[0], "%d", &k); err != nil || k < 1 {
			fmt.Println("usage: \\top [calls|p99|rows|time] [k]")
			return
		}
	}
	digests, err := db.TopStatements(k, by)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if len(digests) == 0 {
		fmt.Println("no statements digested yet")
		return
	}
	fmt.Printf("top %d statements by %s:\n", len(digests), by)
	for _, d := range digests {
		fmt.Printf("%s %s calls=%d err=%d rows=%d p99=%s total=%s %s\n",
			d.Fingerprint, d.Kind, d.Calls, d.Errors, d.Resources.RowsScanned,
			time.Duration(d.P99NS), time.Duration(d.TotalNS), d.Text)
	}
	if n := db.StatementsDropped(); n > 0 {
		fmt.Printf("(%d observations of new shapes dropped at the digest bound)\n", n)
	}
}

// metaStatement prints one digest in full, with captured exemplars.
func metaStatement(db *idl.DB, fp string) {
	d, exemplars, err := db.Statement(fp)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("statement %s kind=%s calls=%d err=%d degraded=%d\n", d.Fingerprint, d.Kind, d.Calls, d.Errors, d.Degraded)
	fmt.Printf("text: %s\n", d.Text)
	fmt.Printf("plan-cache: hit=%d stale=%d miss=%d cold=%d\n", d.PlanHit, d.PlanStale, d.PlanMiss, d.PlanCold)
	r := d.Resources
	fmt.Printf("resources: rows=%d tuples=%d fixpoint=%d index-builds=%d index-probes=%d fed-fetches=%d wal-bytes=%d\n",
		r.RowsScanned, r.TuplesEmitted, r.FixpointRounds, r.IndexBuilds, r.IndexProbes, r.FedFetches, r.WALBytes)
	fmt.Printf("latency: mean=%s p50=%s p99=%s window-n=%d rate=%.3g/s\n",
		time.Duration(d.MeanNS), time.Duration(d.P50NS), time.Duration(d.P99NS), d.WindowCount, d.RatePerSec)
	fmt.Printf("captures: %d (exemplars kept: %d)\n", d.Captures, len(exemplars))
	for i, ex := range exemplars {
		fmt.Printf("exemplar %d: trace=%s dur=%s events=%d\n", i+1, ex.TraceID, time.Duration(ex.DurationNS), len(ex.Events))
		if ex.Trace != nil {
			fmt.Println(ex.Trace.String())
		}
	}
}

// metaTrace drives the span tracer: on [capacity] / off / show.
func metaTrace(db *idl.DB, args []string) {
	mode := "show"
	if len(args) > 0 {
		mode = args[0]
	}
	switch mode {
	case "on":
		capacity := 16
		if len(args) > 1 {
			fmt.Sscanf(args[1], "%d", &capacity)
		}
		db.EnableTracing(capacity)
		fmt.Printf("tracing on (keeping last %d operations)\n", capacity)
	case "off":
		db.DisableTracing()
		fmt.Println("tracing off")
	case "show":
		t := db.Tracer()
		if t == nil {
			fmt.Println(`tracing is off; enable with \trace on`)
			return
		}
		spans := t.Recent()
		if len(spans) == 0 {
			fmt.Println("no traced operations yet")
			return
		}
		for _, s := range spans {
			fmt.Println(s.String())
		}
	default:
		fmt.Println("usage: \\trace on [capacity] | off | show")
	}
}
