// Command idl is an interactive shell and script runner for the IDL
// engine.
//
// Usage:
//
//	idl [flags]                 interactive shell
//	idl -script file.idl        run a script, print results
//	idl -e '?.euter.r(.x=1)'    run one statement
//
// Flags:
//
//	-snapshot path   load the universe from a snapshot at start and save
//	                 it back on exit (created if missing)
//	-demo            preload the paper's three stock databases
//	-tokens          with -e: dump the token stream (debugging)
//
// Shell meta-commands:
//
//	\dbs               list databases
//	\rels <db>         list relations in a database
//	\stats             catalog statistics (tuples, attributes)
//	\views             registered view rules
//	\programs          registered update programs and binding signatures
//	\save <path>       save a snapshot
//	\estats            evaluator counters
//	\explain <query>   show the evaluation plan
//	\help              this list
//	\quit              exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"idl"
	"idl/internal/lex"
	"idl/internal/stocks"
)

func main() {
	var (
		snapshot = flag.String("snapshot", "", "load/save the universe snapshot at this path")
		script   = flag.String("script", "", "run an IDL script file and exit")
		expr     = flag.String("e", "", "run one statement and exit")
		demo     = flag.Bool("demo", false, "preload the paper's three stock databases")
		tokens   = flag.Bool("tokens", false, "with -e: print the token stream instead of evaluating")
	)
	flag.Parse()
	if err := run(*snapshot, *script, *expr, *demo, *tokens); err != nil {
		fmt.Fprintln(os.Stderr, "idl:", err)
		os.Exit(1)
	}
}

func run(snapshot, script, expr string, demo, tokens bool) error {
	db, err := openDB(snapshot, demo)
	if err != nil {
		return err
	}
	switch {
	case tokens && expr != "":
		fmt.Println(lex.Describe(lex.Tokens(expr)))
		return nil
	case expr != "":
		if err := execute(db, expr); err != nil {
			return err
		}
	case script != "":
		src, err := os.ReadFile(script)
		if err != nil {
			return err
		}
		if err := execute(db, string(src)); err != nil {
			return err
		}
	default:
		repl(db)
	}
	if snapshot != "" {
		if err := db.Save(snapshot); err != nil {
			return fmt.Errorf("save snapshot: %w", err)
		}
	}
	return nil
}

func openDB(snapshot string, demo bool) (*idl.DB, error) {
	var db *idl.DB
	if snapshot != "" {
		if _, err := os.Stat(snapshot); err == nil {
			loaded, err := idl.OpenSnapshot(snapshot)
			if err != nil {
				return nil, err
			}
			db = loaded
		}
	}
	if db == nil {
		db = idl.Open()
	}
	if demo {
		u := db.Engine().Base()
		ds := stocks.Generate(stocks.Config{Stocks: 5, Days: 5, Seed: 1991})
		ds.Populate(u)
		db.Engine().Invalidate()
	}
	return db, nil
}

// execute runs a script chunk and prints each statement's outcome.
func execute(db *idl.DB, src string) error {
	results, err := db.Load(src)
	for _, r := range results {
		printResult(r)
	}
	return err
}

func printResult(r *idl.ScriptResult) {
	switch r.Kind {
	case "rule":
		fmt.Printf("defined view rule: %s\n", r.Statement)
	case "clause":
		fmt.Printf("defined update program clause: %s\n", r.Statement)
	case "exec":
		fmt.Printf("ok: +%d tuples, -%d tuples, +%d attrs, -%d attrs, %d values set (%d bindings)\n",
			r.Exec.ElemsInserted, r.Exec.ElemsDeleted, r.Exec.AttrsCreated,
			r.Exec.AttrsDeleted, r.Exec.ValuesSet, r.Exec.Bindings)
	case "query":
		fmt.Println(r.Answer.String())
		if len(r.Answer.Vars) > 0 {
			fmt.Printf("(%d rows)\n", r.Answer.Len())
		}
	}
}

func repl(db *idl.DB) {
	fmt.Println("IDL shell — Interoperable Database Language (SIGMOD 1991 reproduction)")
	fmt.Println(`type statements ending with ';', or \help for meta-commands`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("idl> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !meta(db, trimmed) {
				return
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") || trimmed == "" {
			src := pending.String()
			pending.Reset()
			if strings.TrimSpace(src) != "" {
				if err := execute(db, src); err != nil {
					fmt.Println("error:", err)
				}
			}
		}
		prompt()
	}
}

// meta handles a \command; returns false to exit the shell.
func meta(db *idl.DB, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case `\quit`, `\q`:
		return false
	case `\help`:
		fmt.Println(`\dbs \rels <db> \stats \views \programs \estats \explain <query> \save <path> \quit`)
	case `\explain`:
		if len(fields) < 2 {
			fmt.Println("usage: \\explain <query>")
			break
		}
		plan, err := db.Explain(strings.TrimSpace(strings.TrimPrefix(cmd, `\explain`)))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println(plan)
	case `\dbs`:
		for _, d := range db.Catalog().Databases() {
			fmt.Println(d)
		}
	case `\rels`:
		if len(fields) < 2 {
			fmt.Println("usage: \\rels <db>")
			break
		}
		rels, err := db.Catalog().Relations(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		for _, r := range rels {
			fmt.Println(r)
		}
	case `\stats`:
		for _, s := range db.Catalog().Stats() {
			fmt.Printf("%s.%s\t%d tuples\tattrs: %s\n", s.Database, s.Relation, s.Tuples, strings.Join(s.Attributes, ","))
		}
	case `\views`:
		for _, v := range db.Views() {
			fmt.Println(v)
		}
	case `\programs`:
		for _, p := range db.Programs() {
			fmt.Printf(".%s.%s  params: %s  required: %s\n",
				p.DB, p.Name, strings.Join(p.Params(), ","), strings.Join(p.Required(), ","))
		}
	case `\estats`:
		st := db.Stats()
		fmt.Printf("scanned=%d indexProbes=%d indexBuilds=%d attrEnums=%d\n",
			st.ElementsScanned, st.IndexProbes, st.IndexBuilds, st.AttrEnums)
	case `\save`:
		if len(fields) < 2 {
			fmt.Println("usage: \\save <path>")
			break
		}
		if err := db.Save(fields[1]); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("saved", fields[1])
		}
	default:
		fmt.Println("unknown meta-command; try \\help")
	}
	return true
}
