// Command idl is an interactive shell and script runner for the IDL
// engine.
//
// Usage:
//
//	idl [flags]                 interactive shell
//	idl -script file.idl        run a script, print results
//	idl -e '?.euter.r(.x=1)'    run one statement
//
// Flags:
//
//	-snapshot path   load the universe from a snapshot at start and save
//	                 it back on exit (created if missing)
//	-demo            preload the paper's three stock databases
//	-tokens          with -e: dump the token stream (debugging)
//	-best-effort     degrade queries gracefully when a federated member
//	                 database is unreachable (default: fail fast)
//	-timeout d       per-attempt timeout for federated member operations
//	-retries n       retry attempts for federated member operations
//	-chaos-seed n    with -demo: mount the stock databases as federated
//	                 members behind a seeded fault injector (0 = off);
//	                 the same seed reproduces the same fault schedule
//	-debug-addr a    serve debug endpoints on this address:
//	                 /debug/metrics (engine metrics as JSON),
//	                 /debug/vars (expvar), /debug/pprof/ (profiles)
//
// Shell meta-commands:
//
//	\dbs                       list databases
//	\rels <db>                 list relations in a database
//	\cat                       catalog statistics (tuples, attributes)
//	\stats                     engine metrics (counters, gauges, latency
//	                           histograms) and federation member health
//	\reset-stats               zero the metrics and evaluator counters
//	\views                     registered view rules
//	\programs                  registered update programs and signatures
//	\save <path>               save a snapshot
//	\estats                    evaluator counters
//	\explain <query>           show the evaluation plan
//	\explain analyze <query>   run the query; show the plan with actual
//	                           rows, scans, probes, and per-conjunct time
//	\trace on|off|show         toggle span tracing / show recent traces
//	\help                      this list
//	\quit                      exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"idl"
	"idl/internal/federation"
	"idl/internal/lex"
	"idl/internal/stocks"
)

// config collects everything the CLI needs to build and drive a DB.
type config struct {
	snapshot string
	script   string
	expr     string
	demo     bool
	tokens   bool

	// Federation knobs.
	bestEffort bool
	timeout    time.Duration
	retries    int
	chaosSeed  uint64

	// Observability.
	debugAddr string
}

func defaultConfig() config {
	fed := idl.DefaultFederationConfig()
	return config{timeout: fed.Timeout, retries: fed.Retries}
}

func main() {
	cfg := defaultConfig()
	flag.StringVar(&cfg.snapshot, "snapshot", "", "load/save the universe snapshot at this path")
	flag.StringVar(&cfg.script, "script", "", "run an IDL script file and exit")
	flag.StringVar(&cfg.expr, "e", "", "run one statement and exit")
	flag.BoolVar(&cfg.demo, "demo", false, "preload the paper's three stock databases")
	flag.BoolVar(&cfg.tokens, "tokens", false, "with -e: print the token stream instead of evaluating")
	flag.BoolVar(&cfg.bestEffort, "best-effort", false, "answer queries best-effort when a federated member is unreachable")
	flag.DurationVar(&cfg.timeout, "timeout", cfg.timeout, "per-attempt timeout for federated member operations")
	flag.IntVar(&cfg.retries, "retries", cfg.retries, "retry attempts for federated member operations")
	flag.Uint64Var(&cfg.chaosSeed, "chaos-seed", 0, "with -demo: mount the stock databases behind a seeded fault injector (0 = off)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve /debug/metrics, /debug/vars, and /debug/pprof/ on this address")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "idl:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	db, err := openDB(cfg)
	if err != nil {
		return err
	}
	// Collect metrics for the whole session so the first \stats (or a
	// scrape of -debug-addr) reflects every statement, not just those
	// after it. The registry costs nothing measurable (B11).
	db.Metrics()
	if cfg.debugAddr != "" {
		addr, err := startDebugServer(cfg.debugAddr, db)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/debug/\n", addr)
	}
	switch {
	case cfg.tokens && cfg.expr != "":
		fmt.Println(lex.Describe(lex.Tokens(cfg.expr)))
		return nil
	case cfg.expr != "":
		if err := execute(db, cfg.expr); err != nil {
			return err
		}
	case cfg.script != "":
		src, err := os.ReadFile(cfg.script)
		if err != nil {
			return err
		}
		if err := execute(db, string(src)); err != nil {
			return err
		}
	default:
		repl(db)
	}
	if cfg.snapshot != "" {
		if err := db.Save(cfg.snapshot); err != nil {
			return fmt.Errorf("save snapshot: %w", err)
		}
	}
	return nil
}

func openDB(cfg config) (*idl.DB, error) {
	var db *idl.DB
	if cfg.snapshot != "" {
		if _, err := os.Stat(cfg.snapshot); err == nil {
			loaded, err := idl.OpenSnapshot(cfg.snapshot)
			if err != nil {
				return nil, err
			}
			db = loaded
		}
	}
	if db == nil {
		opts := idl.DefaultOptions()
		opts.BestEffort = cfg.bestEffort
		db = idl.OpenWithOptions(opts)
	}
	if cfg.demo {
		if cfg.chaosSeed != 0 {
			if err := mountChaosDemo(db, cfg); err != nil {
				return nil, err
			}
		} else {
			u := db.Engine().Base()
			ds := stocks.Generate(stocks.Config{Stocks: 5, Days: 5, Seed: 1991})
			ds.Populate(u)
			db.Engine().Invalidate()
		}
	}
	return db, nil
}

// mountChaosDemo mounts the paper's three stock databases as federated
// members behind a seeded fault injector and the resilience stack, so
// failure semantics can be demonstrated (and reproduced: a fixed seed
// over the same statement sequence injects the same faults).
func mountChaosDemo(db *idl.DB, cfg config) error {
	u, _ := stocks.Universe(stocks.Config{Stocks: 5, Days: 5, Seed: 1991})
	fed := idl.DefaultFederationConfig()
	fed.Timeout = cfg.timeout
	fed.Retries = cfg.retries
	fed.Seed = cfg.chaosSeed
	for i, name := range []string{"chwab", "euter", "ource"} {
		v, _ := u.Get(name)
		member, ok := v.(*idl.Tuple)
		if !ok {
			return fmt.Errorf("demo database %s missing", name)
		}
		injected := federation.Inject(federation.NewMemorySource(name, member), federation.InjectorConfig{
			Seed:          cfg.chaosSeed + uint64(i)*7919, // distinct schedule per member
			ErrorRate:     0.2,
			SlowRate:      0.1,
			TruncateRate:  0.05,
			Latency:       5 * time.Millisecond,
			TruncateAfter: 1,
		})
		if err := db.Mount(name, idl.Resilient(injected, fed)); err != nil {
			return err
		}
	}
	return nil
}

// execute runs a script chunk and prints each statement's outcome.
func execute(db *idl.DB, src string) error {
	results, err := db.Load(src)
	for _, r := range results {
		printResult(r)
	}
	return err
}

func printResult(r *idl.ScriptResult) {
	switch r.Kind {
	case "rule":
		fmt.Printf("defined view rule: %s\n", r.Statement)
	case "clause":
		fmt.Printf("defined update program clause: %s\n", r.Statement)
	case "exec":
		fmt.Printf("ok: +%d tuples, -%d tuples, +%d attrs, -%d attrs, %d values set (%d bindings)\n",
			r.Exec.ElemsInserted, r.Exec.ElemsDeleted, r.Exec.AttrsCreated,
			r.Exec.AttrsDeleted, r.Exec.ValuesSet, r.Exec.Bindings)
	case "query":
		fmt.Println(r.Answer.String())
		if len(r.Answer.Vars) > 0 {
			fmt.Printf("(%d rows)\n", r.Answer.Len())
		}
		if r.Answer.Degraded != nil {
			fmt.Println(r.Answer.Degraded.String())
		}
	}
}

func repl(db *idl.DB) {
	fmt.Println("IDL shell — Interoperable Database Language (SIGMOD 1991 reproduction)")
	fmt.Println(`type statements ending with ';', or \help for meta-commands`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("idl> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !meta(db, trimmed) {
				return
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") || trimmed == "" {
			src := pending.String()
			pending.Reset()
			if strings.TrimSpace(src) != "" {
				if err := execute(db, src); err != nil {
					fmt.Println("error:", err)
				}
			}
		}
		prompt()
	}
}

// meta handles a \command; returns false to exit the shell.
func meta(db *idl.DB, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case `\quit`, `\q`:
		return false
	case `\help`:
		fmt.Println(`\dbs \rels <db> \cat \stats \reset-stats \views \programs \estats \explain [analyze] <query> \trace on|off|show \save <path> \quit`)
	case `\explain`:
		if len(fields) < 2 {
			fmt.Println("usage: \\explain [analyze] <query>")
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(cmd, `\explain`))
		var plan string
		var err error
		if fields[1] == "analyze" {
			rest = strings.TrimSpace(strings.TrimPrefix(rest, "analyze"))
			if rest == "" {
				fmt.Println("usage: \\explain analyze <query>")
				break
			}
			plan, err = db.ExplainAnalyze(rest)
		} else {
			plan, err = db.Explain(rest)
		}
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println(plan)
	case `\dbs`:
		for _, d := range db.Catalog().Databases() {
			fmt.Println(d)
		}
	case `\rels`:
		if len(fields) < 2 {
			fmt.Println("usage: \\rels <db>")
			break
		}
		rels, err := db.Catalog().Relations(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		for _, r := range rels {
			fmt.Println(r)
		}
	case `\cat`:
		for _, s := range db.Catalog().Stats() {
			fmt.Printf("%s.%s\t%d tuples\tattrs: %s\n", s.Database, s.Relation, s.Tuples, strings.Join(s.Attributes, ","))
		}
	case `\stats`:
		snap := db.Metrics().Snapshot()
		if tbl := snap.Table(); tbl != "" {
			fmt.Print(tbl)
		} else {
			fmt.Println("no metrics recorded yet")
		}
		if rep := db.LastSyncReport(); rep != nil {
			fmt.Println("federation:", rep.String())
		}
	case `\reset-stats`:
		db.ResetMetrics()
		db.Engine().ResetStats()
		fmt.Println("metrics and evaluator counters reset")
	case `\trace`:
		metaTrace(db, fields[1:])
	case `\views`:
		for _, v := range db.Views() {
			fmt.Println(v)
		}
	case `\programs`:
		for _, p := range db.Programs() {
			fmt.Printf(".%s.%s  params: %s  required: %s\n",
				p.DB, p.Name, strings.Join(p.Params(), ","), strings.Join(p.Required(), ","))
		}
	case `\estats`:
		st := db.Stats()
		fmt.Printf("scanned=%d indexProbes=%d indexBuilds=%d attrEnums=%d\n",
			st.ElementsScanned, st.IndexProbes, st.IndexBuilds, st.AttrEnums)
	case `\save`:
		if len(fields) < 2 {
			fmt.Println("usage: \\save <path>")
			break
		}
		if err := db.Save(fields[1]); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("saved", fields[1])
		}
	default:
		fmt.Println("unknown meta-command; try \\help")
	}
	return true
}

// metaTrace drives the span tracer: on [capacity] / off / show.
func metaTrace(db *idl.DB, args []string) {
	mode := "show"
	if len(args) > 0 {
		mode = args[0]
	}
	switch mode {
	case "on":
		capacity := 16
		if len(args) > 1 {
			fmt.Sscanf(args[1], "%d", &capacity)
		}
		db.EnableTracing(capacity)
		fmt.Printf("tracing on (keeping last %d operations)\n", capacity)
	case "off":
		db.DisableTracing()
		fmt.Println("tracing off")
	case "show":
		t := db.Tracer()
		if t == nil {
			fmt.Println(`tracing is off; enable with \trace on`)
			return
		}
		spans := t.Recent()
		if len(spans) == 0 {
			fmt.Println("no traced operations yet")
			return
		}
		for _, s := range spans {
			fmt.Println(s.String())
		}
	default:
		fmt.Println("usage: \\trace on [capacity] | off | show")
	}
}
