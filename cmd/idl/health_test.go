package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"idl"
)

// TestMetaHealth: \health renders the rolling-window report, \health
// json emits the same report as JSON, and -no-metrics sessions degrade
// gracefully.
func TestMetaHealth(t *testing.T) {
	db, _ := openDB(config{demo: true})
	db.Metrics()
	if _, err := db.Query("?.euter.r(.stkCode=S)"); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() { meta(db, config{}, `\health`) })
	for _, want := range []string{"health: healthy", "engine.query: win=", "slo engine.query:"} {
		if !strings.Contains(out, want) {
			t.Errorf("\\health output missing %q:\n%s", want, out)
		}
	}
	out = captureStdout(t, func() { meta(db, config{}, `\health json`) })
	var rep idl.HealthReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("\\health json is not JSON: %v\n%s", err, out)
	}
	if len(rep.Ops) == 0 || rep.Ops[0].Name != "engine.query" {
		t.Errorf("\\health json ops = %+v", rep.Ops)
	}
	if len(rep.SLOs) == 0 {
		t.Errorf("\\health json missing slos:\n%s", out)
	}
	out = captureStdout(t, func() { meta(db, config{noMetrics: true}, `\health`) })
	if !strings.Contains(out, "metrics disabled") {
		t.Errorf("-no-metrics \\health should degrade:\n%s", out)
	}
}

// TestMetaStatsWAL: on a durable session, \stats surfaces the WAL's
// status line alongside the metrics table.
func TestMetaStatsWAL(t *testing.T) {
	cfg := defaultConfig()
	cfg.demo = true
	cfg.wal = t.TempDir()
	out := captureStdout(t, func() {
		db, err := openDB(cfg)
		if err != nil {
			t.Error(err)
			return
		}
		db.Metrics() // as run() does via setupObservability
		if err := execute(db, "?.euter.r+(.date=1/7/85,.stkCode=stk001,.clsPrice=70)"); err != nil {
			t.Error(err)
		}
		meta(db, cfg, `\stats`)
		if err := db.Close(); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "wal: dir=") || !strings.Contains(out, "durability=sync") {
		t.Errorf("\\stats on a durable session should include the WAL status:\n%s", out)
	}
	if !strings.Contains(out, "wal.fsync.count") {
		t.Errorf("\\stats should include WAL fsync metrics:\n%s", out)
	}
}

// TestDebugHealthEndpoints: the three health endpoints answer 503 JSON
// while their subsystem is off and 200 JSON once enabled.
func TestDebugHealthEndpoints(t *testing.T) {
	cfg := defaultConfig()
	cfg.demo = true
	cfg.noMetrics = true
	db, err := openDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := startDebugServer("127.0.0.1:0", db)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
	}

	// Disabled subsystems: a clean 503 with a JSON error body, so
	// scrapers can tell "off" from "broken".
	for _, path := range []string{"/debug/health", "/debug/slo", "/debug/traces"} {
		code, ct, body := get(path)
		if code != http.StatusServiceUnavailable {
			t.Errorf("GET %s while disabled: status %d, want 503", path, code)
		}
		if ct != "application/json" {
			t.Errorf("GET %s while disabled: content type %q", path, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
			t.Errorf("GET %s while disabled: body %q", path, body)
		}
	}

	db.Metrics()
	db.EnableTracing(16)
	if _, err := db.Query("?.euter.r(.stkCode=S)"); err != nil {
		t.Fatal(err)
	}

	code, ct, body := get("/debug/health")
	if code != http.StatusOK || ct != "application/json" {
		t.Fatalf("GET /debug/health: status %d content type %q", code, ct)
	}
	var rep idl.HealthReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/debug/health is not JSON: %v\n%s", err, body)
	}
	if len(rep.Ops) == 0 || len(rep.SLOs) == 0 {
		t.Errorf("/debug/health report is empty:\n%s", body)
	}

	code, ct, body = get("/debug/slo")
	if code != http.StatusOK || ct != "application/json" {
		t.Fatalf("GET /debug/slo: status %d content type %q", code, ct)
	}
	var slo struct {
		Healthy bool            `json:"healthy"`
		SLOs    []idl.SLOStatus `json:"slos"`
	}
	if err := json.Unmarshal([]byte(body), &slo); err != nil {
		t.Fatalf("/debug/slo is not JSON: %v\n%s", err, body)
	}
	found := false
	for _, s := range slo.SLOs {
		if s.Name == "engine.query" {
			found = true
		}
	}
	if !found {
		t.Errorf("/debug/slo missing engine.query:\n%s", body)
	}

	code, ct, body = get("/debug/traces")
	if code != http.StatusOK || ct != "application/json" {
		t.Fatalf("GET /debug/traces: status %d content type %q", code, ct)
	}
	var doc struct {
		Traces []idl.TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/traces is not JSON: %v\n%s", err, body)
	}
	if len(doc.Traces) == 0 || doc.Traces[len(doc.Traces)-1].TraceID == "" {
		t.Errorf("/debug/traces should contain the traced query:\n%s", body)
	}
}

// healthNormalizers scrub the timing-dependent tokens out of \health
// output; counts, SLO parameters, WAL LSNs and byte counts stay.
var healthNormalizers = []struct {
	re   *regexp.Regexp
	repl string
}{
	{regexp.MustCompile(`(rate|mean|p50|p99|p999|max|total|burn|fsync-total|recovery)=[^ \n]+`), `$1=_`},
	{regexp.MustCompile(`bad=\d+/`), `bad=_/`},
	{regexp.MustCompile(`burn=_ (ok|BURNING)`), `burn=_ _`},
	{regexp.MustCompile(`health: (healthy|UNHEALTHY)`), `health: _`},
}

func normalizeHealth(s string) string {
	for _, n := range healthNormalizers {
		s = n.re.ReplaceAllString(s, n.repl)
	}
	return s
}

// TestGoldenHealthSession pins the \health surface of a durable session
// that updated all three stock schemas. Latencies, rates and burn rates
// are nondeterministic and normalized away; operation counts, SLO
// parameters, window sizes and WAL progress (LSNs, segment and fsync
// counts, appended bytes) are deterministic and pinned byte for byte.
func TestGoldenHealthSession(t *testing.T) {
	dir := t.TempDir()
	cfg := defaultConfig()
	cfg.demo = true
	cfg.wal = dir

	out := captureStdout(t, func() {
		db, err := openDB(cfg)
		if err != nil {
			t.Error(err)
			return
		}
		db.Metrics()                            // as run() does via setupObservability
		db.EnableInsights(idl.InsightsConfig{}) // likewise: digests join \health
		script := `?.euter.r+(.date=1/7/85,.stkCode=stk001,.clsPrice=70);
?.chwab.r(.date=1/2/85, +.newco=99);
?.ource.newco+(.date=1/2/85,.clsPrice=99);
?.euter.r(.stkCode=stk001,.clsPrice=P)`
		if err := execute(db, script); err != nil {
			t.Error(err)
		}
		meta(db, cfg, `\health`)
		if err := db.Close(); err != nil {
			t.Error(err)
		}
	})
	got := normalizeHealth(strings.ReplaceAll(out, dir, "WALDIR"))

	goldenPath := filepath.Join("testdata", "health_session.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("health session output drift:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
