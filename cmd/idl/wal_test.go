package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idl"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestGoldenWALSession pins the durable-session CLI surface byte for
// byte: the recovery banner on a fresh directory, updates against all
// three stock schemas, \wal and \checkpoint output, and the banner a
// second session prints when it recovers the first one's work. The WAL
// directory is the only nondeterministic part of the output, so it is
// rewritten to WALDIR before comparison.
func TestGoldenWALSession(t *testing.T) {
	dir := t.TempDir()
	cfg := defaultConfig()
	cfg.demo = true
	cfg.wal = dir

	out := captureStdout(t, func() {
		db, err := openDB(cfg)
		if err != nil {
			t.Error(err)
			return
		}
		script := `?.euter.r+(.date=1/7/85,.stkCode=stk001,.clsPrice=70);
?.chwab.r(.date=1/2/85, +.newco=99);
?.ource.newco+(.date=1/2/85,.clsPrice=99);`
		if err := execute(db, script); err != nil {
			t.Error(err)
		}
		meta(db, cfg, `\wal`)
		meta(db, cfg, `\checkpoint`)
		meta(db, cfg, `\wal`)
		if err := db.Close(); err != nil {
			t.Error(err)
		}

		// Second session: recover everything the first one committed.
		db2, err := openDB(cfg)
		if err != nil {
			t.Error(err)
			return
		}
		meta(db2, cfg, `\wal`)
		if err := db2.Close(); err != nil {
			t.Error(err)
		}
	})
	got := strings.ReplaceAll(out, dir, "WALDIR")

	goldenPath := filepath.Join("testdata", "wal_session.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("WAL session output drift:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWALSessionRecoversState: the second session actually has the first
// session's mutations, across all three schemas.
func TestWALSessionRecoversState(t *testing.T) {
	silenceStdout(t)
	dir := t.TempDir()
	cfg := defaultConfig()
	cfg.demo = true
	cfg.wal = dir
	db, err := openDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	script := `?.euter.r+(.date=1/7/85,.stkCode=stk001,.clsPrice=70);
?.chwab.r(.date=1/2/85, +.newco=99);
?.ource.newco+(.date=1/2/85,.clsPrice=99);`
	if err := execute(db, script); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := openDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, q := range []string{
		"?.euter.r(.date=1/7/85,.stkCode=stk001,.clsPrice=70)",
		"?.chwab.r(.date=1/2/85,.newco=99)",
		"?.ource.newco(.date=1/2/85,.clsPrice=99)",
	} {
		res, err := db2.Query(q)
		if err != nil || !res.Bool() {
			t.Errorf("recovered session missing %s: %v, %v", q, res, err)
		}
	}
}

// TestWALSnapshotFlagConflict: -wal and -snapshot refuse to combine.
func TestWALSnapshotFlagConflict(t *testing.T) {
	cfg := defaultConfig()
	cfg.wal = t.TempDir()
	cfg.snapshot = filepath.Join(t.TempDir(), "u.idl")
	if _, err := openDB(cfg); err == nil {
		t.Fatal("-wal with -snapshot should fail")
	}
}

// TestParseDurability covers the flag's vocabulary.
func TestParseDurability(t *testing.T) {
	cases := []struct {
		in   string
		want idl.Durability
		ok   bool
	}{
		{"sync", idl.DurabilitySync, true},
		{"", idl.DurabilitySync, true},
		{"group", idl.DurabilityGroup, true},
		{"off", idl.DurabilityOff, true},
		{"paranoid", 0, false},
	}
	for _, tc := range cases {
		got, err := parseDurability(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("parseDurability(%q) = %v, %v", tc.in, got, err)
		}
	}
}

// TestMetaWALWithoutLog: \wal and \checkpoint degrade gracefully on a
// session opened without -wal.
func TestMetaWALWithoutLog(t *testing.T) {
	db, _ := openDB(config{demo: true})
	out := captureStdout(t, func() {
		meta(db, config{}, `\wal`)
		meta(db, config{}, `\checkpoint`)
	})
	if !strings.Contains(out, "no write-ahead log attached") {
		t.Errorf("\\wal without a log:\n%s", out)
	}
	if !strings.Contains(out, "error:") {
		t.Errorf("\\checkpoint without a log should error:\n%s", out)
	}
}
