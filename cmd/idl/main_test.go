package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idl"
)

func TestOpenDBDemo(t *testing.T) {
	db, err := openDB(config{demo: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("?.X")
	if err != nil || res.Len() != 3 {
		t.Fatalf("demo databases = %v, %v", res, err)
	}
}

func TestOpenDBSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "u.idl")
	db, err := openDB(config{snapshot: path, demo: true}) // missing snapshot: start fresh + demo
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := openDB(config{snapshot: path})
	if err != nil {
		t.Fatal(err)
	}
	res, err := back.Query("?.euter.r(.stkCode=S)")
	if err != nil || !res.Bool() {
		t.Fatalf("restored universe: %v, %v", res, err)
	}
}

func TestExecuteScript(t *testing.T) {
	silenceStdout(t)
	db := idl.Open()
	db.Catalog().Insert("d", "r", idl.Tup("x", 1))
	script := `
		.v.p+(.x=X) <- .d.r(.x=X);
		?.v.p(.x=X);
		?.d.r+(.x=2)
	`
	if err := execute(db, script); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query("?.d.r(.x=X)")
	if res.Len() != 2 {
		t.Errorf("rows after script = %d", res.Len())
	}
	if err := execute(db, "?.broken("); err == nil {
		t.Error("parse error should surface")
	}
}

func TestMetaCommands(t *testing.T) {
	out := captureStdout(t, func() {
		db, _ := openDB(config{demo: true})
		db.Query("?.euter.r(.stkCode=S)") // populate metrics for \stats
		for _, cmd := range []string{
			`\help`, `\dbs`, `\rels euter`, `\rels`, `\rels nosuch`,
			`\cat`, `\stats`, `\views`, `\programs`, `\estats`, `\save`, `\bogus`,
		} {
			if !meta(db, config{}, cmd) {
				t.Errorf("%s should not exit", cmd)
			}
		}
		if meta(db, config{}, `\quit`) {
			t.Error(`\quit should exit`)
		}
	})
	for _, want := range []string{"euter", "chwab", "ource", "usage:", "unknown meta-command"} {
		if !strings.Contains(out, want) {
			t.Errorf("meta output missing %q", want)
		}
	}
}

// TestMetaStats: \stats renders the metrics registry (query counters
// recorded by the engine) and \reset-stats zeroes it.
func TestMetaStats(t *testing.T) {
	db, _ := openDB(config{demo: true})
	db.Metrics() // enable before the query so engine counters record
	if _, err := db.Query("?.euter.r(.stkCode=S)"); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() { meta(db, config{}, `\stats`) })
	for _, want := range []string{"engine.query.count", "engine.query.latency", "engine.eval.elements_scanned"} {
		if !strings.Contains(out, want) {
			t.Errorf("\\stats output missing %q:\n%s", want, out)
		}
	}
	out = captureStdout(t, func() {
		meta(db, config{}, `\reset-stats`)
		meta(db, config{}, `\stats`)
	})
	if !strings.Contains(out, "reset") {
		t.Errorf("\\reset-stats should confirm:\n%s", out)
	}
	if db.Metrics().CounterValue("engine.query.count") != 0 {
		t.Error("reset should zero counters")
	}
	st := db.Stats()
	if st.ElementsScanned != 0 {
		t.Error("reset should zero evaluator counters")
	}
}

// TestMetaStatsFederation: with chaos members mounted, \stats surfaces
// per-member resilience counters and the last sync report.
func TestMetaStatsFederation(t *testing.T) {
	cfg := defaultConfig()
	cfg.demo = true
	cfg.bestEffort = true
	cfg.retries = 0
	cfg.chaosSeed = 7
	db, err := openDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	silenceStdout(t)
	if err := execute(db, "?.euter.r(.stkCode=S);\n?.chwab.r(.date=D);"); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() { meta(db, config{}, `\stats`) })
	for _, want := range []string{"federation.member.euter.ops", "federation.sync.count", "federation:"} {
		if !strings.Contains(out, want) {
			t.Errorf("\\stats output missing %q:\n%s", want, out)
		}
	}
}

// TestMetaExplainAnalyze: the analyze variant runs the query and
// annotates every step with actuals.
func TestMetaExplainAnalyze(t *testing.T) {
	db, _ := openDB(config{demo: true})
	out := captureStdout(t, func() {
		meta(db, config{}, `\explain analyze ?.euter.r(.stkCode=S, .clsPrice=P)`)
	})
	for _, want := range []string{"actual rows=", "total time="} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
	out = captureStdout(t, func() { meta(db, config{}, `\explain analyze`) })
	if !strings.Contains(out, "usage:") {
		t.Errorf("bare analyze should print usage:\n%s", out)
	}
}

// TestMetaTrace: \trace on/show/off drives the span tracer.
func TestMetaTrace(t *testing.T) {
	db, _ := openDB(config{demo: true})
	out := captureStdout(t, func() {
		meta(db, config{}, `\trace show`)
		meta(db, config{}, `\trace on 4`)
	})
	if !strings.Contains(out, "tracing is off") || !strings.Contains(out, "tracing on") {
		t.Errorf("trace toggle output:\n%s", out)
	}
	if _, err := db.Query("?.euter.r(.stkCode=S)"); err != nil {
		t.Fatal(err)
	}
	out = captureStdout(t, func() { meta(db, config{}, `\trace show`) })
	if !strings.Contains(out, "query") || !strings.Contains(out, "rows=") {
		t.Errorf("trace show should render the query span tree:\n%s", out)
	}
	out = captureStdout(t, func() { meta(db, config{}, `\trace off`) })
	if !strings.Contains(out, "tracing off") {
		t.Errorf("trace off output:\n%s", out)
	}
}

func TestMetaSave(t *testing.T) {
	silenceStdout(t)
	db, _ := openDB(config{demo: true})
	path := filepath.Join(t.TempDir(), "s.idl")
	if !meta(db, config{}, `\save `+path) {
		t.Fatal("save should not exit")
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("snapshot not written: %v", err)
	}
}

func silenceStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	t.Cleanup(func() {
		os.Stdout = old
		devNull.Close()
	})
}

func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 1024)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out
}

// TestChaosRunDeterministic is the CLI-level reproducibility guarantee:
// the same -chaos-seed over the same script yields byte-identical
// output, degraded reports included.
func TestChaosRunDeterministic(t *testing.T) {
	script := `?.euter.r(.stkCode=S, .clsPrice=P);
?.chwab.r(.date=D);
?.ource.stk001(.clsPrice=P);
?.euter.r(.stkCode=S, .clsPrice>90);`
	run := func() string {
		return captureStdout(t, func() {
			cfg := defaultConfig()
			cfg.demo = true
			cfg.bestEffort = true
			cfg.retries = 0 // no retries: injected faults surface as degradation
			cfg.chaosSeed = 7
			db, err := openDB(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			if err := execute(db, script); err != nil {
				t.Error(err)
			}
		})
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("chaos run not reproducible:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if !strings.Contains(a, "degraded:") {
		t.Errorf("seed 7 should degrade at least one statement:\n%s", a)
	}
}

func TestShippedDemoScript(t *testing.T) {
	silenceStdout(t)
	db, err := openDB(config{demo: true})
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile("../../scripts/stocks.idl")
	if err != nil {
		t.Fatal(err)
	}
	if err := execute(db, string(src)); err != nil {
		t.Fatalf("demo script failed: %v", err)
	}
	// The script's final state: newco present in every schema.
	res, err := db.Query("?.ource.newco(.clsPrice=P)")
	if err != nil || !res.Bool() {
		t.Errorf("script end state: %v, %v", res, err)
	}
}

// TestDebugServer: -debug-addr serves metrics JSON, expvar, and the
// pprof index.
func TestDebugServer(t *testing.T) {
	db, _ := openDB(config{demo: true})
	db.Metrics()
	if _, err := db.Query("?.euter.r(.stkCode=S)"); err != nil {
		t.Fatal(err)
	}
	addr, err := startDebugServer("127.0.0.1:0", db)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	metrics := get("/debug/metrics")
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value uint64 `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal([]byte(metrics), &snap); err != nil {
		t.Fatalf("/debug/metrics is not JSON: %v\n%s", err, metrics)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "engine.query.count" && c.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("/debug/metrics missing engine.query.count:\n%s", metrics)
	}
	if !strings.Contains(get("/debug/vars"), "idl.metrics") {
		t.Error("/debug/vars missing idl.metrics")
	}
	if !strings.Contains(get("/debug/pprof/"), "profile") {
		t.Error("/debug/pprof/ index not served")
	}
	if !strings.Contains(get("/debug/metrics?format=table"), "engine.query.count") {
		t.Error("/debug/metrics?format=table missing engine.query.count")
	}
	events := get("/debug/events")
	var evs []idl.Event
	if err := json.Unmarshal([]byte(events), &evs); err != nil {
		t.Fatalf("/debug/events is not JSON: %v\n%s", err, events)
	}
	if len(evs) == 0 || evs[len(evs)-1].Kind != idl.EventQuery {
		t.Errorf("/debug/events should end with the query event: %+v", evs)
	}
	if !strings.Contains(get("/debug/events?format=text"), "query") {
		t.Error("/debug/events?format=text missing the query event")
	}
}

// TestMetaFlightRec: \flightrec dumps the recorder, json mode emits a
// JSON array, clear empties it.
func TestMetaFlightRec(t *testing.T) {
	db, _ := openDB(config{demo: true})
	if _, err := db.Query("?.euter.r(.stkCode=S)"); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() { meta(db, config{}, `\flightrec`) })
	if !strings.Contains(out, "query") || !strings.Contains(out, "?.euter.r(.stkCode=S)") {
		t.Errorf("\\flightrec should show the query event:\n%s", out)
	}
	out = captureStdout(t, func() { meta(db, config{}, `\flightrec json`) })
	var evs []idl.Event
	if err := json.Unmarshal([]byte(out), &evs); err != nil {
		t.Fatalf("\\flightrec json is not JSON: %v\n%s", err, out)
	}
	if len(evs) == 0 {
		t.Error("\\flightrec json should include the query event")
	}
	out = captureStdout(t, func() {
		meta(db, config{}, `\flightrec clear`)
		meta(db, config{}, `\flightrec`)
	})
	if !strings.Contains(out, "cleared") || !strings.Contains(out, "off (-flightrec 0) or empty") {
		t.Errorf("clear should empty the recorder:\n%s", out)
	}
}

// TestMetaStatsJSON: \stats json emits the registry as JSON.
func TestMetaStatsJSON(t *testing.T) {
	db, _ := openDB(config{demo: true})
	db.Metrics()
	if _, err := db.Query("?.euter.r(.stkCode=S)"); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() { meta(db, config{}, `\stats json`) })
	var snap struct {
		Counters []struct {
			Name string `json:"name"`
		} `json:"counters"`
	}
	if err := json.Unmarshal([]byte(out), &snap); err != nil {
		t.Fatalf("\\stats json is not JSON: %v\n%s", err, out)
	}
	if len(snap.Counters) == 0 {
		t.Errorf("\\stats json should include counters:\n%s", out)
	}
}

// TestNoMetricsHonored: with -no-metrics the session must not attach a
// registry — not even via \stats, which used to lazily re-enable it.
func TestNoMetricsHonored(t *testing.T) {
	db, err := openDB(config{demo: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultConfig()
	cfg.noMetrics = true
	cleanup, err := setupObservability(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if _, err := db.Query("?.euter.r(.stkCode=S)"); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() { meta(db, cfg, `\stats`) })
	if !strings.Contains(out, "metrics disabled (-no-metrics)") {
		t.Errorf("\\stats should refuse under -no-metrics:\n%s", out)
	}
	if db.MetricsEnabled() {
		t.Error("-no-metrics session must not have a metrics registry attached")
	}
}

// TestJournalFlag: a session with -journal leaves a replayable .idlog
// behind whose header carries the workload configuration.
func TestJournalFlag(t *testing.T) {
	cfg := defaultConfig()
	cfg.demo = true
	cfg.journal = filepath.Join(t.TempDir(), "session.idlog")
	db, err := openDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cleanup, err := setupObservability(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	silenceStdout(t)
	if err := execute(db, "?.euter.r(.stkCode=S, .clsPrice=P);"); err != nil {
		t.Fatal(err)
	}
	if err := cleanup(); err != nil {
		t.Fatal(err)
	}
	hdr, recs, err := idl.ReadJournal(cfg.journal)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Meta["demo"] != "true" {
		t.Errorf("journal header meta = %v", hdr.Meta)
	}
	if len(recs) != 1 || recs[0].Kind != idl.EventQuery {
		t.Errorf("journal records = %+v", recs)
	}
}
