package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idl"
)

func TestOpenDBDemo(t *testing.T) {
	db, err := openDB(config{demo: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("?.X")
	if err != nil || res.Len() != 3 {
		t.Fatalf("demo databases = %v, %v", res, err)
	}
}

func TestOpenDBSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "u.idl")
	db, err := openDB(config{snapshot: path, demo: true}) // missing snapshot: start fresh + demo
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := openDB(config{snapshot: path})
	if err != nil {
		t.Fatal(err)
	}
	res, err := back.Query("?.euter.r(.stkCode=S)")
	if err != nil || !res.Bool() {
		t.Fatalf("restored universe: %v, %v", res, err)
	}
}

func TestExecuteScript(t *testing.T) {
	silenceStdout(t)
	db := idl.Open()
	db.Catalog().Insert("d", "r", idl.Tup("x", 1))
	script := `
		.v.p+(.x=X) <- .d.r(.x=X);
		?.v.p(.x=X);
		?.d.r+(.x=2)
	`
	if err := execute(db, script); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query("?.d.r(.x=X)")
	if res.Len() != 2 {
		t.Errorf("rows after script = %d", res.Len())
	}
	if err := execute(db, "?.broken("); err == nil {
		t.Error("parse error should surface")
	}
}

func TestMetaCommands(t *testing.T) {
	out := captureStdout(t, func() {
		db, _ := openDB(config{demo: true})
		for _, cmd := range []string{
			`\help`, `\dbs`, `\rels euter`, `\rels`, `\rels nosuch`,
			`\stats`, `\views`, `\programs`, `\estats`, `\save`, `\bogus`,
		} {
			if !meta(db, cmd) {
				t.Errorf("%s should not exit", cmd)
			}
		}
		if meta(db, `\quit`) {
			t.Error(`\quit should exit`)
		}
	})
	for _, want := range []string{"euter", "chwab", "ource", "usage:", "unknown meta-command"} {
		if !strings.Contains(out, want) {
			t.Errorf("meta output missing %q", want)
		}
	}
}

func TestMetaSave(t *testing.T) {
	silenceStdout(t)
	db, _ := openDB(config{demo: true})
	path := filepath.Join(t.TempDir(), "s.idl")
	if !meta(db, `\save `+path) {
		t.Fatal("save should not exit")
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("snapshot not written: %v", err)
	}
}

func silenceStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	t.Cleanup(func() {
		os.Stdout = old
		devNull.Close()
	})
}

func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 1024)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out
}

// TestChaosRunDeterministic is the CLI-level reproducibility guarantee:
// the same -chaos-seed over the same script yields byte-identical
// output, degraded reports included.
func TestChaosRunDeterministic(t *testing.T) {
	script := `?.euter.r(.stkCode=S, .clsPrice=P);
?.chwab.r(.date=D);
?.ource.stk001(.clsPrice=P);
?.euter.r(.stkCode=S, .clsPrice>90);`
	run := func() string {
		return captureStdout(t, func() {
			cfg := defaultConfig()
			cfg.demo = true
			cfg.bestEffort = true
			cfg.retries = 0 // no retries: injected faults surface as degradation
			cfg.chaosSeed = 7
			db, err := openDB(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			if err := execute(db, script); err != nil {
				t.Error(err)
			}
		})
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("chaos run not reproducible:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if !strings.Contains(a, "degraded:") {
		t.Errorf("seed 7 should degrade at least one statement:\n%s", a)
	}
}

func TestShippedDemoScript(t *testing.T) {
	silenceStdout(t)
	db, err := openDB(config{demo: true})
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile("../../scripts/stocks.idl")
	if err != nil {
		t.Fatal(err)
	}
	if err := execute(db, string(src)); err != nil {
		t.Fatalf("demo script failed: %v", err)
	}
	// The script's final state: newco present in every schema.
	res, err := db.Query("?.ource.newco(.clsPrice=P)")
	if err != nil || !res.Bool() {
		t.Errorf("script end state: %v, %v", res, err)
	}
}
