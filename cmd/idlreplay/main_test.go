package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idl"
	"idl/internal/workload"
)

// captureJournal records a small workload journal and returns its path.
func captureJournal(t *testing.T, cfg workload.Config, stmts []string) string {
	t.Helper()
	db, err := workload.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "capture.idlog")
	if err := db.StartJournal(path, cfg.Meta()); err != nil {
		t.Fatal(err)
	}
	for _, s := range stmts {
		if _, err := db.Load(s); err != nil {
			t.Fatalf("capture %q: %v", s, err)
		}
	}
	if err := db.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	return path
}

var demoStatements = []string{
	".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)",
	"?.euter.r(.date=D,.stkCode=S,.clsPrice=P), .euter.r~(.date=D, .clsPrice>P)",
	"?.euter.r+(.date=6/6/85, .stkCode=newco, .clsPrice=321)",
	"?.dbI.p(.stk=newco, .price=P)",
}

func TestReplayCleanJournal(t *testing.T) {
	path := captureJournal(t, workload.Default(), demoStatements)
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "replayed 4 records") || !strings.Contains(out.String(), "OK") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestReplayPerfOutput(t *testing.T) {
	path := captureJournal(t, workload.Default(), demoStatements)
	var out, errOut bytes.Buffer
	if code := run([]string{"-perf", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"latency (recorded vs replayed):", "query", "recorded n=", "replayed n=", "p50=", "all"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("perf output missing %q:\n%s", want, out.String())
		}
	}
}

// TestReplayDetectsTampering rewrites one journaled answer and expects
// exit status 1 with the mismatch named.
func TestReplayDetectsTampering(t *testing.T) {
	path := captureJournal(t, workload.Default(), demoStatements)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	tampered := false
	for i, line := range lines[1:] {
		var rec idl.JournalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Kind == idl.EventQuery && rec.Answer != "" {
			rec.Answer += "\nbogus\t999"
			out, err := json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
			lines[i+1] = string(out)
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no query record to tamper with")
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "mismatch") || !strings.Contains(out.String(), "answer") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestReplayChaosJournal(t *testing.T) {
	cfg := workload.Default()
	cfg.BestEffort = true
	cfg.ChaosSeed = 13
	cfg.Retries = 0
	cfg.BreakerThreshold = 1000
	stmts := []string{
		"?.euter.r(.date=D,.stkCode=S,.clsPrice=P), .euter.r~(.date=D, .clsPrice>P)",
		"?.chwab.r(.date=D, .S>150)",
		"?.ource.S(.clsPrice>150)",
		"?.euter.r(.stkCode=S, .clsPrice>150)",
	}
	path := captureJournal(t, cfg, stmts)
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("chaos replay diverged (exit %d)\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}

// TestReplayParallelJournal captures a journal with parallel evaluation
// on (workers=4). The journal must carry the worker count, replay
// byte-for-byte through the metadata round trip, and — because parallel
// answers are byte-identical to sequential ones — still replay cleanly
// when the workers key is stripped and the replay runs sequentially.
func TestReplayParallelJournal(t *testing.T) {
	cfg := workload.Default()
	cfg.Workers = 4
	cfg.Stocks = 12
	cfg.Days = 10
	path := captureJournal(t, cfg, demoStatements)

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	var hdr idl.JournalHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Meta["workers"] != "4" {
		t.Fatalf("journal meta workers = %q, want 4", hdr.Meta["workers"])
	}
	tagged := false
	for _, line := range lines[1:] {
		var rec idl.JournalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Kind == idl.EventQuery && rec.Workers == 4 {
			tagged = true
		}
	}
	if !tagged {
		t.Fatal("no query record tagged with workers=4")
	}

	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("parallel replay diverged (exit %d)\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("output = %q", out.String())
	}

	// Strip the workers key: the replay environment is now sequential,
	// and the recorded parallel answers must still match byte-for-byte.
	delete(hdr.Meta, "workers")
	hdrLine, err := json.Marshal(hdr)
	if err != nil {
		t.Fatal(err)
	}
	lines[0] = string(hdrLine)
	seqPath := filepath.Join(t.TempDir(), "sequential.idlog")
	if err := os.WriteFile(seqPath, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{seqPath}, &out, &errOut); code != 0 {
		t.Fatalf("sequential replay of parallel journal diverged (exit %d)\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}

func TestReplaySnapshotEnvironment(t *testing.T) {
	// A journal captured against a hand-built universe carries no
	// workload metadata; -snapshot supplies the environment instead.
	db := idl.Open()
	if _, err := db.Exec("+.lab.r(.n=1)"); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "lab.snap")
	if err := db.Save(snap); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lab.idlog")
	if err := db.StartJournal(path, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("?.lab.r(.n=N)"); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-snapshot", snap, path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	// Without the snapshot the environment is empty and the answer
	// diverges.
	out.Reset()
	if code := run([]string{path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s", code, out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.idlog")}, &out, &errOut); code != 2 {
		t.Fatalf("missing-file exit %d, want 2", code)
	}
}
