// Command idlreplay replays a captured .idlog workload journal and
// diffs the outcome of every statement against what the original run
// recorded.
//
// Usage:
//
//	idlreplay [flags] journal.idlog
//
// The replay environment is rebuilt from the journal header's metadata
// (the workload configuration cmd/idl stamps when -journal is combined
// with -demo), so a journal replays from the file alone. Chaos captures
// replay deterministically: the seeded fault injector reproduces the
// recorded fault schedule, down to the degraded reports' member error
// strings.
//
// Flags:
//
//	-snapshot path  build the replay DB from a snapshot instead of the
//	                journal metadata (for journals captured against a
//	                hand-built universe)
//	-recovered      accept records captured under degradation that
//	                replay healthy, when the recorded rows are a subset
//	                of the replayed answer (degraded-vs-recovered mode)
//	-perf           also report recorded vs replayed latency
//	                distributions per statement kind
//
// Exit status: 0 when every record replays to its recorded outcome,
// 1 on divergence, 2 on usage or I/O errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"idl"
	"idl/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("idlreplay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	snapshot := fs.String("snapshot", "", "build the replay DB from this snapshot instead of the journal metadata")
	recovered := fs.Bool("recovered", false, "accept degraded records that replay healthy with a superset answer")
	perf := fs.Bool("perf", false, "report recorded vs replayed latency distributions")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: idlreplay [flags] <journal.idlog>")
		fs.PrintDefaults()
		return 2
	}
	path := fs.Arg(0)

	hdr, recs, err := idl.ReadJournal(path)
	if err != nil {
		fmt.Fprintln(stderr, "idlreplay:", err)
		return 2
	}
	db, err := buildDB(hdr, *snapshot)
	if err != nil {
		fmt.Fprintln(stderr, "idlreplay:", err)
		return 2
	}

	rep := workload.Replay(context.Background(), db, recs, workload.Options{Recovered: *recovered})
	fmt.Fprintf(stdout, "%s: %s\n", path, rep)
	for _, m := range rep.Mismatches {
		fmt.Fprintf(stdout, "  %s\n", m)
	}
	if *perf {
		printLatencies(stdout, rep)
	}
	if !rep.OK() {
		return 1
	}
	return 0
}

// buildDB reconstructs the environment the journal was captured in:
// from an explicit snapshot when given, else from the workload
// configuration in the journal header (an empty header replays onto an
// empty DB — the journal's own rules and updates still apply).
func buildDB(hdr *idl.JournalHeader, snapshot string) (*idl.DB, error) {
	if snapshot != "" {
		return idl.OpenSnapshot(snapshot)
	}
	cfg, err := workload.FromMeta(hdr.Meta)
	if err != nil {
		return nil, err
	}
	return workload.Open(cfg)
}

func printLatencies(w io.Writer, rep *workload.Report) {
	kinds := make([]string, 0, len(rep.ByKind))
	for k := range rep.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintln(w, "latency (recorded vs replayed):")
	for _, kind := range append(kinds, "") {
		recorded, replayed := rep.Latencies(kind)
		if recorded.Count == 0 {
			continue
		}
		label := kind
		if label == "" {
			label = "all"
		}
		fmt.Fprintf(w, "  %-8s recorded %s\n", label, recorded)
		fmt.Fprintf(w, "  %-8s replayed %s\n", "", replayed)
	}
}
