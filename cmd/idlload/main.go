// Command idlload drives an idld server from a captured .idlog
// workload journal, in one of two modes:
//
// Load mode (default) replays the journal's statements open-loop at a
// target QPS: requests fire on a fixed schedule regardless of
// completions, so a server falling behind shows up as latency and shed
// rather than a silently slowed generator. The report covers
// p50/p90/p99/p999/max latency, achieved QPS, and error/shed rates,
// and the -min-qps / -max-p99 / -max-error-rate flags turn the report
// into an SLO gate (exit 1 on violation) for CI.
//
// Check mode (-check) replays the journal once, in order, through the
// wire protocol and byte-compares every response against what the
// original embedded run recorded — the server-equivalence check.
//
// Usage:
//
//	idlload -addr http://127.0.0.1:8089 [flags] journal.idlog
//
// Flags:
//
//	-addr url          server base URL (required)
//	-check             ordered replay + byte-comparison instead of load
//	-qps n             target send rate (default 200)
//	-duration d        how long to send (default 5s)
//	-tenants a,b,c     cycle requests across these tenants
//	-timeout-ms n      per-request X-Timeout-Ms (0 = server default)
//	-include-exec      load mode: also fire the journal's update
//	                   statements (default: queries only, so a fixed-rate
//	                   run leaves the served database unchanged)
//	-min-qps n         gate: fail when achieved QPS is below n
//	-max-p99 d         gate: fail when p99 latency exceeds d
//	-max-error-rate f  gate: fail when errors/sent exceeds f (0 = any
//	                   error fails; negative = gate off)
//
// Exit status: 0 when the run (and any gates) pass, 1 on gate or
// comparison failure, 2 on usage or I/O errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"idl"
	"idl/internal/qlog"
	"idl/internal/server"
	"idl/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("idlload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "", "server base URL, e.g. http://127.0.0.1:8089")
		check       = fs.Bool("check", false, "ordered replay + byte-comparison instead of open-loop load")
		qps         = fs.Float64("qps", 200, "target send rate")
		duration    = fs.Duration("duration", 5*time.Second, "how long to send")
		tenants     = fs.String("tenants", "", "comma-separated tenants to cycle across")
		timeoutMs   = fs.Int("timeout-ms", 0, "per-request X-Timeout-Ms (0 = server default)")
		includeExec = fs.Bool("include-exec", false, "load mode: also fire the journal's update statements")
		minQPS      = fs.Float64("min-qps", 0, "gate: fail when achieved QPS is below this (0 = off)")
		maxP99      = fs.Duration("max-p99", 0, "gate: fail when p99 latency exceeds this (0 = off)")
		maxErrRate  = fs.Float64("max-error-rate", -1, "gate: fail when errors/sent exceeds this (negative = off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *addr == "" || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: idlload -addr <url> [flags] <journal.idlog>")
		fs.PrintDefaults()
		return 2
	}
	path := fs.Arg(0)
	_, recs, err := idl.ReadJournal(path)
	if err != nil {
		fmt.Fprintln(stderr, "idlload:", err)
		return 2
	}

	if *check {
		return runCheck(stdout, *addr, path, recs)
	}
	return runLoad(stdout, stderr, *addr, recs, loadFlags{
		qps: *qps, duration: *duration, tenants: *tenants, timeoutMs: *timeoutMs,
		includeExec: *includeExec, minQPS: *minQPS, maxP99: *maxP99, maxErrRate: *maxErrRate,
	})
}

// runCheck replays the journal in order over the wire and diffs every
// response against the recorded outcome.
func runCheck(stdout io.Writer, addr, path string, recs []qlog.Record) int {
	c := server.NewClient(addr)
	rep := workload.ReplayServer(context.Background(), c, recs, workload.Options{})
	fmt.Fprintf(stdout, "%s: %s\n", path, rep)
	for _, m := range rep.Mismatches {
		fmt.Fprintf(stdout, "  %s\n", m)
	}
	if !rep.OK() {
		return 1
	}
	return 0
}

type loadFlags struct {
	qps         float64
	duration    time.Duration
	tenants     string
	timeoutMs   int
	includeExec bool
	minQPS      float64
	maxP99      time.Duration
	maxErrRate  float64
}

// runLoad fires the journal's statements open-loop and applies the SLO
// gates to the resulting report.
func runLoad(stdout, stderr io.Writer, addr string, recs []qlog.Record, f loadFlags) int {
	cfg := server.LoadConfig{QPS: f.qps, Duration: f.duration, TimeoutMs: f.timeoutMs, Execs: map[int]bool{}}
	for _, rec := range recs {
		switch rec.Kind {
		case qlog.KindQuery:
			cfg.Statements = append(cfg.Statements, rec.Text)
		case qlog.KindExec, qlog.KindCall:
			if f.includeExec {
				cfg.Execs[len(cfg.Statements)] = true
				cfg.Statements = append(cfg.Statements, rec.Text)
			}
		}
	}
	if len(cfg.Statements) == 0 {
		fmt.Fprintln(stderr, "idlload: journal has no replayable statements for load mode")
		return 2
	}
	if f.tenants != "" {
		cfg.Tenants = strings.Split(f.tenants, ",")
	}
	rep, err := server.RunLoad(context.Background(), addr, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "idlload:", err)
		return 2
	}
	printReport(stdout, rep, len(cfg.Statements))

	failed := false
	gate := func(ok bool, format string, a ...any) {
		if !ok {
			failed = true
			fmt.Fprintf(stdout, "GATE FAIL: "+format+"\n", a...)
		}
	}
	if f.minQPS > 0 {
		gate(rep.AchievedQPS() >= f.minQPS, "achieved %.1f qps < min %.1f", rep.AchievedQPS(), f.minQPS)
	}
	if f.maxP99 > 0 {
		gate(rep.P99 <= f.maxP99, "p99 %s > max %s", rep.P99, f.maxP99)
	}
	if f.maxErrRate >= 0 {
		gate(rep.ErrorRate() <= f.maxErrRate, "error rate %.4f > max %.4f", rep.ErrorRate(), f.maxErrRate)
	}
	if failed {
		return 1
	}
	if f.minQPS > 0 || f.maxP99 > 0 || f.maxErrRate >= 0 {
		fmt.Fprintln(stdout, "GATES PASS")
	}
	return 0
}

func printReport(w io.Writer, rep *server.LoadReport, pool int) {
	fmt.Fprintf(w, "sent=%d ok=%d shed=%d errors=%d (pool of %d statements, wall %s)\n",
		rep.Sent, rep.OK, rep.Shed, rep.Errors, pool, rep.Wall.Round(time.Millisecond))
	fmt.Fprintf(w, "achieved %.1f qps, shed rate %.4f, error rate %.4f\n",
		rep.AchievedQPS(), rep.ShedRate(), rep.ErrorRate())
	fmt.Fprintf(w, "latency p50=%s p90=%s p99=%s p999=%s max=%s\n",
		rep.P50, rep.P90, rep.P99, rep.P999, rep.Max)
	if len(rep.ByStatus) > 0 {
		var codes []int
		for c := range rep.ByStatus {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		var parts []string
		for _, c := range codes {
			label := fmt.Sprint(c)
			if c == 0 {
				label = "transport"
			}
			parts = append(parts, fmt.Sprintf("%s=%d", label, rep.ByStatus[c]))
		}
		fmt.Fprintf(w, "by status: %s\n", strings.Join(parts, " "))
	}
}
