package main

import (
	"bytes"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"idl/internal/server"
	"idl/internal/workload"
)

// captureJournal records a workload journal against an embedded demo
// DB — the ground truth the server round-trip is compared against.
func captureJournal(t *testing.T, cfg workload.Config, stmts []string) string {
	t.Helper()
	db, err := workload.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "capture.idlog")
	if err := db.StartJournal(path, cfg.Meta()); err != nil {
		t.Fatal(err)
	}
	for _, s := range stmts {
		if _, err := db.Load(s); err != nil {
			t.Fatalf("capture %q: %v", s, err)
		}
	}
	if err := db.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	return path
}

// serveDemo starts an in-process idld-equivalent server over a fresh
// demo universe built from the same workload config.
func serveDemo(t *testing.T, cfg workload.Config) *httptest.Server {
	t.Helper()
	db, err := workload.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(db, server.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

var demoStatements = []string{
	".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)",
	"?.euter.r(.stkCode=S, .clsPrice>100)",
	"?.euter.r+(.date=6/6/85, .stkCode=newco, .clsPrice=321)",
	"?.dbI.p(.stk=newco, .price=P)",
	"?.chwab.r(.S>100)",
}

// TestCheckRoundTrip: a journal captured against the embedded engine
// replays byte-identically through the wire protocol — rules register,
// updates apply, and every answer matches the recorded canonical form.
func TestCheckRoundTrip(t *testing.T) {
	cfg := workload.Default()
	path := captureJournal(t, cfg, demoStatements)
	ts := serveDemo(t, cfg)

	var out, errOut bytes.Buffer
	if code := run([]string{"-addr", ts.URL, "-check", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "replayed 5 records") || !strings.Contains(out.String(), "OK") {
		t.Fatalf("output = %q", out.String())
	}
}

// TestCheckDetectsDivergence: replaying against a server whose universe
// was perturbed first exits 1 and names the mismatching field.
func TestCheckDetectsDivergence(t *testing.T) {
	cfg := workload.Default()
	path := captureJournal(t, cfg, demoStatements)

	db, err := workload.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the served universe: one extra high-priced stock changes
	// the recorded answers.
	if _, err := db.Exec("?.euter.r+(.date=1/1/85, .stkCode=rogue, .clsPrice=999)"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(db, server.Config{}).Handler())
	defer ts.Close()

	var out, errOut bytes.Buffer
	if code := run([]string{"-addr", ts.URL, "-check", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "mismatch") || !strings.Contains(out.String(), "answer") {
		t.Fatalf("output = %q", out.String())
	}
}

// TestLoadGates: an open-loop run against a healthy server passes
// generous SLO gates and reports the latency distribution; impossible
// gates fail with exit 1.
func TestLoadGates(t *testing.T) {
	cfg := workload.Default()
	path := captureJournal(t, cfg, demoStatements)
	ts := serveDemo(t, cfg)

	var out, errOut bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-qps", "100", "-duration", "300ms",
		"-min-qps", "10", "-max-p99", "5s", "-max-error-rate", "0", path,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"sent=30", "latency p50=", "GATES PASS"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}

	// An impossible p99 gate fails the run.
	out.Reset()
	code = run([]string{
		"-addr", ts.URL, "-qps", "50", "-duration", "200ms", "-max-p99", "1ns", path,
	}, &out, &errOut)
	if code != 1 {
		t.Fatalf("impossible gate exit %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "GATE FAIL") {
		t.Fatalf("output = %q", out.String())
	}
}

// TestLoadTenants cycles tenants and checks the per-tenant counters
// moved on the server.
func TestLoadTenants(t *testing.T) {
	cfg := workload.Default()
	path := captureJournal(t, cfg, demoStatements)

	db, err := workload.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(db, server.Config{}).Handler())
	defer ts.Close()

	var out, errOut bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-qps", "100", "-duration", "200ms", "-tenants", "alpha,beta", path,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	a := db.Metrics().Counter("server.tenant.alpha.requests").Value()
	b := db.Metrics().Counter("server.tenant.beta.requests").Value()
	if a == 0 || b == 0 {
		t.Errorf("tenant cycling: alpha=%d beta=%d requests, want both > 0", a, b)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	if code := run([]string{"-addr", "http://127.0.0.1:1", filepath.Join(t.TempDir(), "missing.idlog")}, &out, &errOut); code != 2 {
		t.Fatalf("missing journal exit %d, want 2", code)
	}
}
