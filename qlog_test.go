package idl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"idl/internal/federation"
)

// TestFlightRecorderGoldenDegraded captures the flight recorder after a
// best-effort degraded run — a live member answering and a dead member
// forcing a skipped conjunct — and compares the timing-redacted dump to
// a golden file. Regenerate with -update-golden.
func TestFlightRecorderGoldenDegraded(t *testing.T) {
	seed := Open()
	seedStocks(t, seed)
	members := memberTuples(t, seed)

	opts := DefaultOptions()
	opts.BestEffort = true
	fed := OpenWithOptions(opts)
	mustMount(t, fed, "euter", NewMemorySource("euter", members["euter"]))
	dead := federation.Inject(NewMemorySource("chwab", members["chwab"]), federation.InjectorConfig{ErrorRate: 1})
	mustMount(t, fed, "chwab", dead)

	if _, err := fed.Query("?.euter.r(.stkCode=S, .clsPrice=62)"); err != nil {
		t.Fatal(err)
	}
	res, err := fed.Query("?.chwab.r(.date=D, .hp=P)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded == nil || len(res.Degraded.Skipped) == 0 {
		t.Fatalf("expected a degraded answer with skipped conjuncts, got %+v", res.Degraded)
	}

	var buf bytes.Buffer
	fed.DumpEventsRedacted(&buf)
	got := buf.String()

	goldenPath := filepath.Join("testdata", "flightrec_degraded.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("flight recorder drift:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestJournalCapture(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	path := filepath.Join(t.TempDir(), "w.idlog")
	if err := db.StartJournal(path, map[string]string{"fixture": "paper"}); err != nil {
		t.Fatal(err)
	}
	if db.JournalPath() != path {
		t.Fatalf("JournalPath = %q", db.JournalPath())
	}

	if err := db.DefineView(".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("?.dbI.p(.stk=S, .price=P, .price>200)")
	if err != nil {
		t.Fatal(err)
	}
	res.Sort()
	info, err := db.Exec("+.euter.r(.date=3/9/85, .stkCode=tandem, .clsPrice=19)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("?bad("); err == nil {
		t.Fatal("parse error expected")
	}
	if err := db.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	if db.JournalPath() != "" {
		t.Fatalf("journal still attached after close: %q", db.JournalPath())
	}

	hdr, recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Meta["fixture"] != "paper" {
		t.Fatalf("meta = %v", hdr.Meta)
	}
	// Parse failures never reach the recorder, so: rule, query, exec.
	if len(recs) != 3 {
		t.Fatalf("journal has %d records, want 3: %+v", len(recs), recs)
	}
	if recs[0].Kind != EventRule {
		t.Errorf("rec 0 kind = %q", recs[0].Kind)
	}
	if recs[1].Kind != EventQuery || recs[1].Answer != res.String() || recs[1].Rows != res.Len() {
		t.Errorf("rec 1 = %+v, want answer %q", recs[1], res.String())
	}
	if recs[2].Kind != EventExec || recs[2].Exec == nil || recs[2].Exec.ElemsInserted != info.ElemsInserted {
		t.Errorf("rec 2 = %+v", recs[2])
	}
}

func TestQueryIDJoinsSpans(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	tracer := db.EnableTracing(4)
	if _, err := db.Query("?.euter.r(.stkCode=S, .clsPrice=62)"); err != nil {
		t.Fatal(err)
	}
	evs := db.Events()
	var queryEv *Event
	for _, e := range evs {
		if e.Kind == EventQuery {
			queryEv = e
		}
	}
	if queryEv == nil {
		t.Fatal("no query event recorded")
	}
	roots := tracer.Recent()
	if len(roots) == 0 {
		t.Fatal("no spans recorded")
	}
	var qid int64 = -1
	for _, a := range roots[len(roots)-1].Attrs {
		if a.Key == "qid" {
			qid = a.Int
		}
	}
	if qid != int64(queryEv.Seq) {
		t.Fatalf("span qid = %d, event seq = %d", qid, queryEv.Seq)
	}
}

func TestSlowQueryPromotion(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	var logBuf bytes.Buffer
	db.SetEventLog(&logBuf)
	db.SetSlowQueryThreshold(time.Nanosecond)
	if _, err := db.Query("?.euter.r(.stkCode=S)"); err != nil {
		t.Fatal(err)
	}
	var sawWarn bool
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var entry map[string]any
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		if entry["msg"] == EventQuery {
			if entry["level"] != "WARN" || entry["slow"] != true {
				t.Fatalf("query entry not promoted: %v", entry)
			}
			if entry["plan_digest"] == nil || entry["digest"] == nil {
				t.Fatalf("query entry missing digests: %v", entry)
			}
			sawWarn = true
		}
	}
	if !sawWarn {
		t.Fatalf("no query log line in %q", logBuf.String())
	}
}

func TestAutoDumpOnQueryError(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	var dump bytes.Buffer
	db.SetAutoDump(&dump)
	if _, err := db.Call("dbU", "nope", nil); err == nil {
		t.Fatal("unknown program call should fail")
	}
	out := dump.String()
	if !strings.Contains(out, "auto-dump: call failed") || !strings.Contains(out, "flight recorder:") {
		t.Fatalf("auto-dump = %q", out)
	}
}

func TestFlightRecorderResize(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	if db.FlightRecorderSize() == 0 {
		t.Fatal("flight recorder should be on by default")
	}
	db.SetFlightRecorderSize(2)
	for i := 0; i < 5; i++ {
		if _, err := db.Query("?.euter.r(.stkCode=hp, .clsPrice=P)"); err != nil {
			t.Fatal(err)
		}
	}
	if evs := db.Events(); len(evs) != 2 {
		t.Fatalf("resized ring holds %d events, want 2", len(evs))
	}
	db.SetFlightRecorderSize(0)
	if db.FlightRecorderSize() != 0 || db.Events() != nil {
		t.Fatal("disabled recorder should be empty")
	}
	// With every sink off, the query path must not record anything.
	if _, err := db.Query("?.euter.r(.stkCode=hp, .clsPrice=P)"); err != nil {
		t.Fatal(err)
	}
	if db.Events() != nil {
		t.Fatal("events recorded while disabled")
	}
}

// TestConcurrentQueriesAgainstJournal is the -race stress for satellite
// coverage: concurrent readers and writers against one journaling DB,
// with flight-recorder snapshots racing the writes.
func TestConcurrentQueriesAgainstJournal(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	path := filepath.Join(t.TempDir(), "stress.idlog")
	if err := db.StartJournal(path, nil); err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	db.SetEventLog(lockedWriter{&logMu, &logBuf})

	const readers, writers, per = 4, 2, 25
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := db.Query("?.euter.r(.stkCode=S, .clsPrice>100)"); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				stmt := fmt.Sprintf("+.scratch%d.r(.n=%d)", w, i)
				if _, err := db.Exec(stmt); err != nil {
					t.Errorf("exec: %v", err)
					return
				}
			}
		}(w)
	}
	// A dumper racing the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			for _, e := range db.Events() {
				_ = e.String()
			}
		}
	}()
	wg.Wait()
	if err := db.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := readers*per + writers*per; len(recs) != want {
		t.Fatalf("journal has %d records, want %d", len(recs), want)
	}
	for i, rec := range recs {
		if rec.Seq != i {
			t.Fatalf("rec %d has seq %d: sequence not dense", i, rec.Seq)
		}
		if rec.Kind == EventQuery && rec.Answer == "" {
			t.Fatalf("query record %d has no answer", i)
		}
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
