package idl

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestGoldenScripts runs every testdata/scripts/*.idl against the paper
// fixture and compares the rendered results to the .golden file next to
// it. Regenerate with `go test -run TestGoldenScripts -update-golden`.
func TestGoldenScripts(t *testing.T) {
	scripts, err := filepath.Glob(filepath.Join("testdata", "scripts", "*.idl"))
	if err != nil || len(scripts) == 0 {
		t.Fatalf("no golden scripts found: %v", err)
	}
	for _, script := range scripts {
		script := script
		t.Run(filepath.Base(script), func(t *testing.T) {
			src, err := os.ReadFile(script)
			if err != nil {
				t.Fatal(err)
			}
			db := Open()
			seedStocks(t, db)
			results, err := db.Load(string(src))
			if err != nil {
				t.Fatalf("script failed: %v", err)
			}
			got := renderScriptResults(results)
			goldenPath := strings.TrimSuffix(script, ".idl") + ".golden"
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("output drift for %s:\n--- got ---\n%s\n--- want ---\n%s", script, got, want)
			}
		})
	}
}

// renderScriptResults renders statement outcomes deterministically
// (answers sorted canonically).
func renderScriptResults(results []*ScriptResult) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, ">> %s\n", r.Statement)
		switch r.Kind {
		case "rule":
			b.WriteString("rule registered\n")
		case "clause":
			b.WriteString("clause registered\n")
		case "exec":
			fmt.Fprintf(&b, "exec: +%dt -%dt +%da -%da %dv\n",
				r.Exec.ElemsInserted, r.Exec.ElemsDeleted,
				r.Exec.AttrsCreated, r.Exec.AttrsDeleted, r.Exec.ValuesSet)
		case "query":
			r.Answer.Sort()
			b.WriteString(r.Answer.String())
			b.WriteString("\n")
		}
	}
	return b.String()
}
