package idl

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"idl/internal/federation"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestGoldenScripts runs every testdata/scripts/*.idl against the paper
// fixture and compares the rendered results to the .golden file next to
// it. Regenerate with `go test -run TestGoldenScripts -update-golden`.
func TestGoldenScripts(t *testing.T) {
	scripts, err := filepath.Glob(filepath.Join("testdata", "scripts", "*.idl"))
	if err != nil || len(scripts) == 0 {
		t.Fatalf("no golden scripts found: %v", err)
	}
	for _, script := range scripts {
		script := script
		t.Run(filepath.Base(script), func(t *testing.T) {
			src, err := os.ReadFile(script)
			if err != nil {
				t.Fatal(err)
			}
			db := Open()
			seedStocks(t, db)
			results, err := db.Load(string(src))
			if err != nil {
				t.Fatalf("script failed: %v", err)
			}
			got := renderScriptResults(results)
			goldenPath := strings.TrimSuffix(script, ".idl") + ".golden"
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("output drift for %s:\n--- got ---\n%s\n--- want ---\n%s", script, got, want)
			}
		})
	}
}

// renderScriptResults renders statement outcomes deterministically
// (answers sorted canonically).
func renderScriptResults(results []*ScriptResult) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, ">> %s\n", r.Statement)
		switch r.Kind {
		case "rule":
			b.WriteString("rule registered\n")
		case "clause":
			b.WriteString("clause registered\n")
		case "exec":
			fmt.Fprintf(&b, "exec: +%dt -%dt +%da -%da %dv\n",
				r.Exec.ElemsInserted, r.Exec.ElemsDeleted,
				r.Exec.AttrsCreated, r.Exec.AttrsDeleted, r.Exec.ValuesSet)
		case "query":
			r.Answer.Sort()
			b.WriteString(r.Answer.String())
			b.WriteString("\n")
			if r.Answer.Degraded != nil {
				b.WriteString(r.Answer.Degraded.String())
				b.WriteString("\n")
			}
		}
	}
	return b.String()
}

// TestGoldenBestEffort runs the federation script against a best-effort
// DB whose members sit behind scripted fault injectors: chwab fails
// every operation, euter stays healthy. The golden file pins the
// degraded output — partial answers plus the degradation report —
// byte for byte.
func TestGoldenBestEffort(t *testing.T) {
	script := filepath.Join("testdata", "scripts", "federation", "best_effort.idl")
	src, err := os.ReadFile(script)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.BestEffort = true
	db := OpenWithOptions(opts)
	mountFederationFixture(t, db)
	results, err := db.Load(string(src))
	if err != nil {
		t.Fatalf("script failed: %v", err)
	}
	got := renderScriptResults(results)
	goldenPath := strings.TrimSuffix(script, ".idl") + ".golden"
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drift for %s:\n--- got ---\n%s\n--- want ---\n%s", script, got, want)
	}
}

// seedStocksOrdered is seedStocks with a fixed stock insertion order.
// Negation conjuncts short-circuit on the first counterexample, so the
// golden scanned= counts depend on set order; map-order seeding would
// make them flap.
func seedStocksOrdered(t *testing.T, db *DB) {
	t.Helper()
	cat := db.Catalog()
	dates := []DateValue{Date(85, 3, 1), Date(85, 3, 2), Date(85, 3, 3)}
	prices := map[string][]int{"hp": {50, 55, 62}, "ibm": {140, 155, 160}, "sun": {201, 210, 150}}
	for _, s := range []string{"hp", "ibm", "sun"} {
		for i, p := range prices[s] {
			if _, err := cat.Insert("euter", "r", Tup("date", dates[i], "stkCode", s, "clsPrice", p)); err != nil {
				t.Fatal(err)
			}
			if _, err := cat.Insert("ource", s, Tup("date", dates[i], "clsPrice", p)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, d := range dates {
		row := Tup("date", d)
		for _, s := range []string{"hp", "ibm", "sun"} {
			row.Put(s, Int(prices[s][i]))
		}
		if _, err := cat.Insert("chwab", "r", row); err != nil {
			t.Fatal(err)
		}
	}
}

// analyzeTimeRE matches the wall-clock fields of an analyzed plan —
// the only nondeterministic part of its rendering.
var analyzeTimeRE = regexp.MustCompile(`time=[^\s)]+`)

// TestGoldenExplainAnalyze pins the `\explain analyze` output for the
// E5 highest-close query on all three schemas against the paper
// fixture. Durations are normalized to time=<t>; everything else —
// step order, access paths, actual rows, scans, probes, answer counts —
// must match byte for byte.
func TestGoldenExplainAnalyze(t *testing.T) {
	db := Open()
	seedStocksOrdered(t, db)
	queries := map[string]string{
		"euter": "?.euter.r(.date=D,.stkCode=S,.clsPrice=P), .euter.r~(.date=D, .clsPrice>P)",
		"chwab": "?.chwab.r(.date=D,.S=P), .chwab.r~(.date=D,.S2>P), S != date",
		"ource": "?.ource.S(.date=D,.clsPrice=P), ~.ource.S2(.date=D, .clsPrice>P)",
	}
	var b strings.Builder
	for _, schema := range []string{"euter", "chwab", "ource"} {
		src := queries[schema]
		fmt.Fprintf(&b, ">> %s\n", src)
		plan, ans, err := db.ExplainAnalyzeCtx(context.Background(), src)
		if err != nil {
			t.Fatalf("%s: %v", schema, err)
		}
		if plan.Rows != 3 {
			t.Errorf("%s: highest-close should find 3 day winners, got %d", schema, plan.Rows)
		}
		for i, s := range plan.Steps {
			if s.Analyze == nil {
				t.Errorf("%s step %d: no actuals attached", schema, i)
			}
		}
		ans.Sort()
		b.WriteString(analyzeTimeRE.ReplaceAllString(plan.String(), "time=<t>"))
		b.WriteString("\n")
		b.WriteString(ans.String())
		b.WriteString("\n")
	}
	got := b.String()
	goldenPath := filepath.Join("testdata", "scripts", "analyze", "highest_close.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("analyze output drift:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestGoldenExplainEstimates pins the plain `\explain` output — access
// paths plus the planner's estimated rows per step — for representative
// queries over all three stock schemas, next to the analyzed actuals of
// the same queries. The pairing makes estimate drift visible: a planner
// change that reorders steps or moves an estimate shows up as a golden
// diff against both renderings at once.
func TestGoldenExplainEstimates(t *testing.T) {
	db := Open()
	seedStocksOrdered(t, db)
	queries := []string{
		"?.euter.r(.stkCode=hp, .clsPrice=P)",
		"?.euter.r(.date=D,.stkCode=S,.clsPrice=P), .euter.r~(.date=D, .clsPrice>P)",
		"?.chwab.r(.date=D, .hp=P), P > 52",
		"?.ource.S(.date=D,.clsPrice=P), ~.ource.S2(.date=D, .clsPrice>P)",
	}
	var b strings.Builder
	for _, src := range queries {
		fmt.Fprintf(&b, ">> %s\n", src)
		plan, err := db.Explain(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		b.WriteString(plan)
		b.WriteString("\n")
		analyzed, ans, err := db.ExplainAnalyzeCtx(context.Background(), src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		ans.Sort()
		b.WriteString(analyzeTimeRE.ReplaceAllString(analyzed.String(), "time=<t>"))
		b.WriteString("\n")
	}
	got := b.String()
	goldenPath := filepath.Join("testdata", "scripts", "analyze", "explain_estimates.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("explain estimates drift:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// mountFederationFixture mounts two members: euter (healthy) and chwab
// (every operation fails). Data mirrors the paper's running example.
func mountFederationFixture(t *testing.T, db *DB) {
	t.Helper()
	euter := Tup("r", SetOf(
		Tup("date", Date(85, 3, 3), "stkCode", "hp", "clsPrice", 50),
		Tup("date", Date(85, 3, 3), "stkCode", "ibm", "clsPrice", 140),
		Tup("date", Date(85, 3, 4), "stkCode", "hp", "clsPrice", 51),
	))
	chwab := Tup("r", SetOf(
		Tup("date", Date(85, 3, 3), "hp", 50, "ibm", 141),
		Tup("date", Date(85, 3, 4), "hp", 52, "ibm", 142),
	))
	if err := db.Mount("euter", NewMemorySource("euter", euter)); err != nil {
		t.Fatal(err)
	}
	dead := federation.Inject(federation.NewMemorySource("chwab", chwab), federation.InjectorConfig{ErrorRate: 1})
	if err := db.Mount("chwab", dead); err != nil {
		t.Fatal(err)
	}
}
