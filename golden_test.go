package idl

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idl/internal/federation"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestGoldenScripts runs every testdata/scripts/*.idl against the paper
// fixture and compares the rendered results to the .golden file next to
// it. Regenerate with `go test -run TestGoldenScripts -update-golden`.
func TestGoldenScripts(t *testing.T) {
	scripts, err := filepath.Glob(filepath.Join("testdata", "scripts", "*.idl"))
	if err != nil || len(scripts) == 0 {
		t.Fatalf("no golden scripts found: %v", err)
	}
	for _, script := range scripts {
		script := script
		t.Run(filepath.Base(script), func(t *testing.T) {
			src, err := os.ReadFile(script)
			if err != nil {
				t.Fatal(err)
			}
			db := Open()
			seedStocks(t, db)
			results, err := db.Load(string(src))
			if err != nil {
				t.Fatalf("script failed: %v", err)
			}
			got := renderScriptResults(results)
			goldenPath := strings.TrimSuffix(script, ".idl") + ".golden"
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("output drift for %s:\n--- got ---\n%s\n--- want ---\n%s", script, got, want)
			}
		})
	}
}

// renderScriptResults renders statement outcomes deterministically
// (answers sorted canonically).
func renderScriptResults(results []*ScriptResult) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, ">> %s\n", r.Statement)
		switch r.Kind {
		case "rule":
			b.WriteString("rule registered\n")
		case "clause":
			b.WriteString("clause registered\n")
		case "exec":
			fmt.Fprintf(&b, "exec: +%dt -%dt +%da -%da %dv\n",
				r.Exec.ElemsInserted, r.Exec.ElemsDeleted,
				r.Exec.AttrsCreated, r.Exec.AttrsDeleted, r.Exec.ValuesSet)
		case "query":
			r.Answer.Sort()
			b.WriteString(r.Answer.String())
			b.WriteString("\n")
			if r.Answer.Degraded != nil {
				b.WriteString(r.Answer.Degraded.String())
				b.WriteString("\n")
			}
		}
	}
	return b.String()
}

// TestGoldenBestEffort runs the federation script against a best-effort
// DB whose members sit behind scripted fault injectors: chwab fails
// every operation, euter stays healthy. The golden file pins the
// degraded output — partial answers plus the degradation report —
// byte for byte.
func TestGoldenBestEffort(t *testing.T) {
	script := filepath.Join("testdata", "scripts", "federation", "best_effort.idl")
	src, err := os.ReadFile(script)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.BestEffort = true
	db := OpenWithOptions(opts)
	mountFederationFixture(t, db)
	results, err := db.Load(string(src))
	if err != nil {
		t.Fatalf("script failed: %v", err)
	}
	got := renderScriptResults(results)
	goldenPath := strings.TrimSuffix(script, ".idl") + ".golden"
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drift for %s:\n--- got ---\n%s\n--- want ---\n%s", script, got, want)
	}
}

// mountFederationFixture mounts two members: euter (healthy) and chwab
// (every operation fails). Data mirrors the paper's running example.
func mountFederationFixture(t *testing.T, db *DB) {
	t.Helper()
	euter := Tup("r", SetOf(
		Tup("date", Date(85, 3, 3), "stkCode", "hp", "clsPrice", 50),
		Tup("date", Date(85, 3, 3), "stkCode", "ibm", "clsPrice", 140),
		Tup("date", Date(85, 3, 4), "stkCode", "hp", "clsPrice", 51),
	))
	chwab := Tup("r", SetOf(
		Tup("date", Date(85, 3, 3), "hp", 50, "ibm", 141),
		Tup("date", Date(85, 3, 4), "hp", 52, "ibm", 142),
	))
	if err := db.Mount("euter", NewMemorySource("euter", euter)); err != nil {
		t.Fatal(err)
	}
	dead := federation.Inject(federation.NewMemorySource("chwab", chwab), federation.InjectorConfig{ErrorRate: 1})
	if err := db.Mount("chwab", dead); err != nil {
		t.Fatal(err)
	}
}
