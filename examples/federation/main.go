// Federation shows schematic discrepancies outside the stock-market
// domain: three hospital admission databases, each administered
// autonomously, where one hospital's data (ward names) are another's
// metadata. A health authority unifies them, queries across them, and
// reconciles conflicting conventions with name mappings — the paper's §6
// machinery on a different workload.
//
//	general:  admissions{(day, ward, patients)}     ward as data
//	mercy:    admissions{(day, icu, er, surgery)}   ward as attribute
//	stVitus:  icu{(day, patients)}, er{…}, …        ward as relation
package main

import (
	"fmt"
	"log"

	"idl"
)

func main() {
	db := idl.Open()
	seed(db)

	fmt.Println("== Which hospitals track an ICU? (pure metadata question) ==")
	// In mercy the ICU is an attribute; in stVitus a relation; in
	// general a data value. Three different higher-order queries expose
	// where the concept lives in each schema:
	fmt.Printf("  as a relation:        %v\n", column(db, "?.H.icu", "H"))
	fmt.Printf("  as an attribute:      %v\n", column(db, "?.H.R(.icu), H != stVitus", "H"))
	fmt.Printf("  as data:              %v\n", column(db, "?.H.R(.ward=icu)", "H"))

	fmt.Println("\n== Unified admissions view ==")
	// stVitus calls the emergency room "casualty"; a name mapping fixes
	// the vocabulary (paper §6's mapOE).
	must(db.DefineViews(
		".authority.adm+(.hospital=general, .day=D, .ward=W, .patients=N) <- .general.admissions(.day=D, .ward=W, .patients=N)",
		".authority.adm+(.hospital=mercy, .day=D, .ward=W, .patients=N) <- .mercy.admissions(.day=D, .W=N), W != day",
		".authority.adm+(.hospital=stVitus, .day=D, .ward=W, .patients=N) <- .stVitus.WV(.day=D, .patients=N), .maps.wardMap(.from=WV, .to=W)",
	))
	fmt.Println(render(db, "?.authority.adm(.hospital=H, .day=1, .ward=W, .patients=N)"))

	fmt.Println("\n== Cross-hospital analytics through the unified view ==")
	fmt.Println("  busiest ward per day (negation over the view):")
	fmt.Println(render(db, "?.authority.adm(.day=D, .hospital=H, .ward=W, .patients=N), .authority.adm~(.day=D, .patients>N)"))
	fmt.Println("  wards that were over 20 patients anywhere:")
	fmt.Println(render(db, "?.authority.adm(.ward=W, .patients>20)"))

	fmt.Println("\n== Per-hospital customized views (higher-order heads) ==")
	// Every hospital gets a stVitus-style rendering of the whole
	// federation: one relation per ward, created on demand.
	must(db.DefineView(".perWard.W+(.hospital=H, .day=D, .patients=N) <- .authority.adm(.hospital=H, .day=D, .ward=W, .patients=N)"))
	fmt.Printf("  perWard relations (data dependent): %v\n", column(db, "?.perWard.W", "W"))
	fmt.Println(render(db, "?.perWard.icu(.hospital=H, .day=D, .patients=N)"))

	fmt.Println("\n== Updatability: the authority closes a ward federation-wide ==")
	must(db.DefinePrograms(
		".ops.closeWard(.ward=W) -> .general.admissions-(.ward=W)",
		".ops.closeWard(.ward=W) -> .mercy.admissions(-.W)",
		".ops.closeWard(.ward=W) -> .maps.wardMap(.from=WV, .to=W), .stVitus-.WV",
	))
	if _, err := db.Exec("?.ops.closeWard(.ward=er)"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after closeWard(er): perWard relations = %v\n", column(db, "?.perWard.W", "W"))
	fmt.Printf("  stVitus relations = %v (casualty dropped via the name mapping)\n",
		column(db, "?.stVitus.R", "R"))
}

func seed(db *idl.DB) {
	cat := db.Catalog()
	// patients[ward][day], identical facts in all three hospitals' areas
	// of overlap; each hospital also has quirks of its own.
	wards := []string{"icu", "er", "surgery"}
	patients := map[string][]int{
		"icu":     {12, 15, 9},
		"er":      {25, 19, 31},
		"surgery": {7, 8, 6},
	}
	for day := 1; day <= 3; day++ {
		for _, w := range wards {
			cat.Insert("general", "admissions",
				idl.Tup("day", day, "ward", w, "patients", patients[w][day-1]))
		}
		row := idl.Tup("day", day)
		for _, w := range wards {
			row.Put(w, idl.Int(patients[w][day-1]+1)) // mercy is always one busier
		}
		cat.Insert("mercy", "admissions", row)
	}
	// stVitus: one relation per ward, with "casualty" for the ER.
	local := map[string]string{"icu": "icu", "er": "casualty", "surgery": "surgery"}
	for day := 1; day <= 3; day++ {
		for _, w := range wards {
			cat.Insert("stVitus", local[w],
				idl.Tup("day", day, "patients", patients[w][day-1]+2))
		}
	}
	for from, to := range map[string]string{"icu": "icu", "casualty": "er", "surgery": "surgery"} {
		cat.Insert("maps", "wardMap", idl.Tup("from", from, "to", to))
	}
}

func render(db *idl.DB, src string) string {
	res, err := db.Query(src)
	if err != nil {
		log.Fatalf("%s: %v", src, err)
	}
	out := "  " + src + "\n"
	for _, line := range splitLines(res.String()) {
		out += "    | " + line + "\n"
	}
	return out[:len(out)-1]
}

func column(db *idl.DB, src, v string) []string {
	res, err := db.Query(src)
	if err != nil {
		log.Fatalf("%s: %v", src, err)
	}
	res.Sort()
	var out []string
	seen := map[string]bool{}
	for _, val := range res.Column(v) {
		s := val.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
