// Administration shows the operational substrate around the language:
// catalog DDL, CSV import, schema constraints (types / keys / foreign
// keys — the paper's §8 metadata extension), reified metadata queries,
// evaluation plans, and checksummed snapshots.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"idl"
	"idl/internal/core"
	"idl/internal/storage"
)

func main() {
	opts := core.DefaultOptions()
	opts.ExposeMeta = true // reify schema as a queryable `meta` database
	db := idl.OpenWithOptions(opts)

	fmt.Println("== Load a relation from CSV ==")
	csv := `date,stkCode,clsPrice
3/1/85,hp,50
3/2/85,hp,55
3/3/85,hp,62
3/1/85,sun,201
`
	rel, err := storage.ImportCSV(strings.NewReader(csv))
	must(err)
	imported := 0
	for _, e := range rel.Elems() {
		if _, err := db.Catalog().Insert("euter", "r", e.(*idl.Tuple)); err != nil {
			log.Fatal(err)
		}
		imported++
	}
	fmt.Printf("   imported %d tuples into euter.r\n", imported)

	fmt.Println("\n== Declare integrity constraints (types, key, foreign key) ==")
	db.Catalog().Insert("registry", "listed", idl.Tup("code", "hp"), idl.Tup("code", "sun"))
	must(db.Schema().Declare(idl.RelDecl{
		DB: "euter", Rel: "r",
		Attrs: []idl.AttrDecl{
			{Name: "date", Type: idl.DateType, Required: true},
			{Name: "stkCode", Type: idl.StringType, Required: true},
			{Name: "clsPrice", Type: idl.NumberType},
		},
		Key:         []string{"date", "stkCode"},
		ForeignKeys: []idl.ForeignKey{{From: "stkCode", RefDB: "registry", RefRel: "listed", To: "code"}},
	}))
	must(db.ValidateSchema())
	fmt.Println("   bulk-loaded data validates cleanly")

	fmt.Println("\n== Constraints guard every update request ==")
	if _, err := db.Exec("?.euter.r+(.date=3/1/85, .stkCode=hp, .clsPrice=51)"); err != nil {
		fmt.Println("   duplicate key rejected:", firstLine(err))
	}
	if _, err := db.Exec("?.euter.r+(.date=3/4/85, .stkCode=unlisted, .clsPrice=9)"); err != nil {
		fmt.Println("   unlisted stock rejected:", firstLine(err))
	}
	if _, err := db.Exec("?.euter.r+(.date=3/4/85, .stkCode=sun, .clsPrice=190)"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("   valid insert accepted")

	fmt.Println("\n== The schema is data: reified metadata queries ==")
	res, err := db.Query("?.meta.relations(.db=D, .rel=R, .tuples=N)")
	must(err)
	res.Sort()
	for _, row := range res.Rows {
		fmt.Printf("   %s.%s has %s tuples\n", row["D"], row["R"], row["N"])
	}

	fmt.Println("\n== Evaluation plans ==")
	plan, err := db.Explain("?.euter.r(.stkCode=hp, .clsPrice=P), .euter.r~(.stkCode=hp, .clsPrice>P)")
	must(err)
	for _, line := range strings.Split(plan, "\n") {
		fmt.Println("  ", line)
	}

	fmt.Println("\n== Checksummed snapshot round trip ==")
	dir, err := os.MkdirTemp("", "idl-admin-*")
	must(err)
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "universe.idl")
	must(db.Save(path))
	restored, err := idl.OpenSnapshot(path)
	must(err)
	res, err = restored.Query("?.euter.r(.stkCode=S, .clsPrice>100)")
	must(err)
	fmt.Printf("   restored universe answers: %d distinct stocks above 100\n", res.Len())
}

func firstLine(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, ';'); i > 0 {
		return s[:i]
	}
	return s
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
