// Quickstart: create two schematically different databases, pose the same
// question to both with one kind of expression, unify them with a view,
// and make the view updatable.
package main

import (
	"fmt"
	"log"

	"idl"
)

func main() {
	db := idl.Open()
	cat := db.Catalog()

	// Two databases holding the same kind of fact under different
	// schemas: in `rows` the city is data; in `cols` it is metadata (an
	// attribute name).
	cat.Insert("rows", "temps",
		idl.Tup("day", 1, "city", "paris", "celsius", 21),
		idl.Tup("day", 1, "city", "oslo", "celsius", 11),
		idl.Tup("day", 2, "city", "paris", "celsius", 24),
		idl.Tup("day", 2, "city", "oslo", "celsius", 9),
	)
	cat.Insert("cols", "temps",
		idl.Tup("day", 1, "paris", 21, "oslo", 11),
		idl.Tup("day", 2, "paris", 24, "oslo", 9),
	)

	// One intention, two schemas. The second query's variable C ranges
	// over *attribute names* — a higher-order variable.
	warmRows := query(db, "?.rows.temps(.city=C, .celsius>20)")
	warmCols := query(db, "?.cols.temps(.C>20), C != day")
	fmt.Println("cities above 20°C (row schema):\n" + warmRows)
	fmt.Println("cities above 20°C (column schema):\n" + warmCols)

	// A unified view over both databases…
	must(db.DefineViews(
		".u.t+(.day=D, .city=C, .celsius=T) <- .rows.temps(.day=D, .city=C, .celsius=T)",
		".u.t+(.day=D, .city=C, .celsius=T) <- .cols.temps(.day=D, .C=T), C != day",
	))
	fmt.Println("unified view:\n" + query(db, "?.u.t(.day=D, .city=C, .celsius=T)"))

	// …made updatable by an administrator-supplied translation.
	must(db.DefineProgram(".u.t+(.day=D, .city=C, .celsius=T) -> .rows.temps+(.day=D, .city=C, .celsius=T)"))
	if _, err := db.Exec("?.u.t+(.day=3, .city=rome, .celsius=28)"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after inserting through the view:\n" + query(db, "?.u.t(.city=rome, .celsius=T)"))
}

func query(db *idl.DB, src string) string {
	res, err := db.Query(src)
	if err != nil {
		log.Fatalf("%s: %v", src, err)
	}
	return res.String()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
