// Viewupdate demonstrates the paper's §7 view-updatability story end to
// end: a user who only knows the ource-style schema works entirely
// through the customized higher-order view dbO — reads AND writes — while
// the schema administrator's update programs translate every write into
// base updates across all three real databases (Figure 1's two-level
// mapping, round trip included).
package main

import (
	"fmt"
	"log"

	"idl"
)

func main() {
	db := idl.Open()
	seed(db)

	// --- The administrator's setup (two-level mapping) ---
	must(db.DefineViews(
		// D_i -> U: the unified view.
		".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)",
		".dbI.p+(.date=D, .stk=S, .price=P) <- .chwab.r(.date=D, .S=P), S != date",
		".dbI.p+(.date=D, .stk=S, .price=P) <- .ource.S(.date=D, .clsPrice=P)",
		// U -> D_i': the ource user's customized (higher-order) view.
		".dbO.S+(.date=D, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
	))
	must(db.DefinePrograms(
		// The unified view's update translations (the administrator's
		// unambiguous choice among the many possible ones, §7.2).
		".dbI.p+(.date=D, .stk=S, .price=P) -> .euter.r+(.date=D, .stkCode=S, .clsPrice=P), .chwab.r(.date=D, +.S=P), .ource.S+(.date=D, .clsPrice=P)",
		".dbI.p-(.date=D, .stk=S, .price=P) -> .euter.r-(.date=D, .stkCode=S), .chwab.r(.date=D, .S-=X), .ource.S-(.date=D)",
		// The customized view's updates reuse them (programs built from
		// programs, nonrecursively).
		".dbO.S+(.date=D, .clsPrice=P) -> .dbI.p+(.date=D, .stk=S, .price=P)",
		".dbO.S-(.date=D, .clsPrice=P) -> .dbI.p-(.date=D, .stk=S, .price=P)",
	))

	// --- The ource user's session: reads and writes on dbO only ---
	fmt.Println("The user sees one relation per stock (data-dependent schema):")
	fmt.Println("   ", column(db, "?.dbO.Y", "Y"))

	fmt.Println("\nRead through the view:")
	fmt.Println(render(db, "?.dbO.hp(.date=D, .clsPrice=P)"))

	fmt.Println("\nInsert through the view (a relation that does not exist yet!):")
	if _, err := db.Exec("?.dbO.tandem+(.date=3/1/85, .clsPrice=33)"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("    view now:", column(db, "?.dbO.Y", "Y"))
	fmt.Println(render(db, "?.dbO.tandem(.date=D, .clsPrice=P)"))

	fmt.Println("\nAll three base databases received the translated insert:")
	fmt.Println(render(db, "?.euter.r(.stkCode=tandem, .clsPrice=P)"))
	fmt.Println(render(db, "?.chwab.r(.date=3/1/85, .tandem=P)"))
	fmt.Println(render(db, "?.ource.tandem(.clsPrice=P)"))

	fmt.Println("\nDelete through the view:")
	if _, err := db.Exec("?.dbO.hp-(.date=3/1/85)"); err != nil {
		log.Fatal(err)
	}
	fmt.Println(render(db, "?.dbO.hp(.date=D, .clsPrice=P)"))
	fmt.Println("    base euter rows for hp:", countRows(db, "?.euter.r(.stkCode=hp, .date=D)"))

	fmt.Println("\nA view without a registered translation refuses updates:")
	must(db.DefineView(".dbX.watch+(.stk=S) <- .dbI.p(.stk=S, .price>100)"))
	if _, err := db.Exec("?.dbX.watch+(.stk=ghost)"); err != nil {
		fmt.Println("    error (as required):", err)
	} else {
		log.Fatal("update of untranslatable view should have failed")
	}

	fmt.Println("\nBinding signatures protect inserts (§7.1 insStk argument):")
	if _, err := db.Exec("?.dbO.tandem+(.date=3/2/85)"); err != nil {
		fmt.Println("    error (as required):", err)
	} else {
		log.Fatal("insert with unbound price should have failed")
	}
}

func seed(db *idl.DB) {
	cat := db.Catalog()
	dates := []idl.DateValue{idl.Date(85, 3, 1), idl.Date(85, 3, 2)}
	prices := map[string][]int{"hp": {50, 55}, "ibm": {140, 155}}
	for s, ps := range prices {
		for i, p := range ps {
			cat.Insert("euter", "r", idl.Tup("date", dates[i], "stkCode", s, "clsPrice", p))
			cat.Insert("ource", s, idl.Tup("date", dates[i], "clsPrice", p))
		}
	}
	for i, d := range dates {
		row := idl.Tup("date", d)
		for s, ps := range prices {
			row.Put(s, idl.Int(ps[i]))
		}
		cat.Insert("chwab", "r", row)
	}
}

func render(db *idl.DB, src string) string {
	res, err := db.Query(src)
	if err != nil {
		log.Fatalf("%s: %v", src, err)
	}
	out := "    " + src + "\n"
	cur := ""
	for _, r := range res.String() {
		if r == '\n' {
			out += "      | " + cur + "\n"
			cur = ""
			continue
		}
		cur += string(r)
	}
	out += "      | " + cur
	return out
}

func column(db *idl.DB, src, v string) []string {
	res, err := db.Query(src)
	if err != nil {
		log.Fatalf("%s: %v", src, err)
	}
	res.Sort()
	var out []string
	for _, val := range res.Column(v) {
		out = append(out, val.String())
	}
	return out
}

func countRows(db *idl.DB, src string) int {
	res, err := db.Query(src)
	if err != nil {
		log.Fatalf("%s: %v", src, err)
	}
	return res.Len()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
