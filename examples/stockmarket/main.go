// Stockmarket walks through the paper's running example end to end at a
// larger, generated scale: three stock databases with schematic
// discrepancies (euter / chwab / ource), higher-order queries, the
// unified view with value reconciliation, the customized higher-order
// views of Figure 1, and the delStk/rmStk/insStk update programs.
package main

import (
	"fmt"
	"log"

	"idl"
)

const (
	numStocks = 8
	numDays   = 6
)

func main() {
	db := idl.Open()
	seed(db)

	fmt.Println("== The three schemas (catalog view) ==")
	for _, s := range db.Catalog().Stats() {
		fmt.Printf("  %s.%-8s %3d tuples   attrs: %v\n", s.Database, s.Relation, s.Tuples, s.Attributes)
	}

	fmt.Println("\n== One intention, three schemas: which stocks ever closed above 100? ==")
	for _, q := range []string{
		"?.euter.r(.stkCode=S, .clsPrice>100)", // stock as data
		"?.chwab.r(.S>100)",                    // stock as attribute name
		"?.ource.S(.clsPrice>100)",             // stock as relation name
	} {
		fmt.Printf("  %s\n    -> %v\n", q, column(db, q, "S"))
	}

	fmt.Println("\n== Metadata queries ==")
	fmt.Printf("  databases:            %v\n", column(db, "?.X", "X"))
	fmt.Printf("  relations of ource:   %v\n", column(db, "?.ource.Y", "Y"))
	fmt.Printf("  relations w/ stkCode: %v\n", column(db, "?.X.Y(.stkCode)", "Y"))

	fmt.Println("\n== Unified view (database transparency) ==")
	must(db.DefineViews(
		".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)",
		".dbI.p+(.date=D, .stk=S, .price=P) <- .chwab.r(.date=D, .S=P), S != date",
		".dbI.p+(.date=D, .stk=S, .price=P) <- .ource.S(.date=D, .clsPrice=P)",
		// pnew: reconcile discrepant quotes by keeping the highest.
		".dbI.pnew+(.date=D,.stk=S,.price=P) <- .dbI.p(.date=D,.stk=S,.price=P), .dbI.p~(.date=D,.stk=S,.price>P)",
	))
	res := mustQuery(db, "?.dbI.p(.date=D,.stk=S,.price=P)")
	resNew := mustQuery(db, "?.dbI.pnew(.date=D,.stk=S,.price=P)")
	fmt.Printf("  dbI.p: %d quotes (chwab discrepancies included twice)\n", res.Len())
	fmt.Printf("  dbI.pnew: %d reconciled quotes (one per stock per day)\n", resNew.Len())

	fmt.Println("\n== Customized views (integration transparency, Figure 1) ==")
	must(db.DefineViews(
		".dbE.r+(.date=D, .stkCode=S, .clsPrice=P) <- .dbI.pnew(.date=D, .stk=S, .price=P)",
		".dbC.r+(.date=D, .S=P) <- .dbI.pnew(.date=D, .stk=S, .price=P)",
		".dbO.S+(.date=D, .clsPrice=P) <- .dbI.pnew(.date=D, .stk=S, .price=P)",
	))
	fmt.Printf("  dbO's schema is data dependent: relations = %v\n", column(db, "?.dbO.Y", "Y"))
	fmt.Printf("  a chwab-style user sees one row per day: %d rows\n",
		mustQuery(db, "?.dbC.r(.date=D)").Len())

	fmt.Println("\n== Update programs (§7) ==")
	must(db.DefinePrograms(
		".dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S,.date=D)",
		".dbU.delStk(.stk=S, .date=D) -> .chwab.r(.date=D, .S-=X)",
		".dbU.delStk(.stk=S, .date=D) -> .ource.S-(.date=D)",
		".dbU.rmStk(.stk=S) -> .euter.r-(.stkCode=S)",
		".dbU.rmStk(.stk=S) -> .chwab.r(-.S)",
		".dbU.rmStk(.stk=S) -> .ource-.S",
		".dbU.insStk(.stk=S, .date=D, .price=P) -> .euter.r+(.stkCode=S,.date=D,.clsPrice=P)",
		".dbU.insStk(.stk=S, .date=D, .price=P) -> .chwab.r(.date=D, +.S=P)",
		".dbU.insStk(.stk=S, .date=D, .price=P) -> .ource.S+(.date=D,.clsPrice=P)",
	))
	for _, p := range db.Programs() {
		fmt.Printf("  .%s.%-7s params %v required %v\n", p.DB, p.Name, p.Params(), p.Required())
	}

	// Remove one stock from ALL schemas: deletes tuples in euter, an
	// attribute in chwab, a relation in ource.
	if _, err := db.Exec("?.dbU.rmStk(.stk=stk001)"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after rmStk(stk001): ource relations = %v\n", column(db, "?.ource.Y", "Y"))
	fmt.Printf("  dbO followed automatically: %v\n", column(db, "?.dbO.Y", "Y"))

	// Insert a brand-new listing everywhere with one call.
	if _, err := db.Exec("?.dbU.insStk(.stk=newco, .date=1/2/85, .price=42)"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after insStk(newco): chwab columns now include newco -> %v\n",
		column(db, "?.chwab.r(.newco=P)", "P"))
}

// seed builds the three schemas from one deterministic price table.
func seed(db *idl.DB) {
	cat := db.Catalog()
	prices := make([][]int, numStocks)
	state := uint64(1991)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	for s := range prices {
		prices[s] = make([]int, numDays)
		p := 40 + next(160)
		for d := range prices[s] {
			p += next(9) - 4
			if p < 1 {
				p = 1
			}
			prices[s][d] = p
		}
	}
	name := func(s int) string { return fmt.Sprintf("stk%03d", s+1) }
	for s := 0; s < numStocks; s++ {
		for d := 0; d < numDays; d++ {
			date := idl.Date(85, 1, 2+d)
			cat.Insert("euter", "r", idl.Tup("date", date, "stkCode", name(s), "clsPrice", prices[s][d]))
			cat.Insert("ource", name(s), idl.Tup("date", date, "clsPrice", prices[s][d]))
		}
	}
	for d := 0; d < numDays; d++ {
		row := idl.Tup("date", idl.Date(85, 1, 2+d))
		for s := 0; s < numStocks; s++ {
			p := prices[s][d]
			if s == 0 && d == 0 {
				p++ // one injected discrepancy for pnew to reconcile
			}
			row.Put(name(s), idl.Int(p))
		}
		cat.Insert("chwab", "r", row)
	}
}

func mustQuery(db *idl.DB, src string) *idl.Result {
	res, err := db.Query(src)
	if err != nil {
		log.Fatalf("%s: %v", src, err)
	}
	return res
}

func column(db *idl.DB, src, v string) []string {
	res := mustQuery(db, src)
	res.Sort()
	var out []string
	for _, val := range res.Column(v) {
		out = append(out, val.String())
	}
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
