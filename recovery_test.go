package idl

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"idl/internal/object"
	"idl/internal/wal"
)

// Crash-point recovery tests (DESIGN.md §13): a generated workload of
// committed mutations runs against a WAL-backed DB whose filesystem is a
// FaultFS that crashes — short-writes, fails fsync, or dies — at the Nth
// operation. After every injected crash, recovery through the real
// filesystem must restore a state byte-identical to replaying some
// prefix of the committed mutations (the prefix-consistency oracle); in
// sync mode the prefix must cover at least every acknowledged mutation.
// The grid enumerates every write and fsync index rather than sampling.

// mutStep is one logical mutation of the recovery workload.
type mutStep struct {
	desc  string
	apply func(db *DB) error
}

// recoveryWorkload exercises every WAL record type: catalog DDL and bulk
// inserts, exec statements, rule and clause registrations, a program
// call, and federated member-snapshot installs and removals.
func recoveryWorkload() []mutStep {
	member := func() Source {
		return NewMemorySource("mem1", Tup("quotes", SetOf(
			Tup("date", Date(85, 3, 1), "clsPrice", 11),
			Tup("date", Date(85, 3, 2), "clsPrice", 12),
		)))
	}
	return []mutStep{
		{"insert-euter", func(db *DB) error {
			_, err := db.Catalog().Insert("euter", "r",
				Tup("date", Date(85, 3, 1), "stkCode", "hp", "clsPrice", 50),
				Tup("date", Date(85, 3, 2), "stkCode", "hp", "clsPrice", 55),
				Tup("date", Date(85, 3, 1), "stkCode", "ibm", "clsPrice", 140))
			return err
		}},
		{"rule-unified", func(db *DB) error {
			return db.DefineView(".dbI.p(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)")
		}},
		{"exec-insert", func(db *DB) error {
			_, err := db.Exec("?.euter.r+(.date=3/4/85,.stkCode=dec,.clsPrice=80)")
			return err
		}},
		{"create-rel", func(db *DB) error {
			return db.Catalog().CreateRelation("euter", "empty")
		}},
		{"clause-program", func(db *DB) error {
			return db.DefineProgram(".dbU.insStk(.stk=S, .date=D, .price=P) -> .euter.r+(.stkCode=S,.date=D,.clsPrice=P)")
		}},
		{"call-program", func(db *DB) error {
			_, err := db.Call("dbU", "insStk", map[string]any{"S": "nec", "D": Date(85, 3, 4), "P": 95})
			return err
		}},
		{"mount-sync", func(db *DB) error {
			if err := db.Mount("mem1", member()); err != nil {
				return err
			}
			_, err := db.Sync(context.Background())
			return err
		}},
		{"exec-delete", func(db *DB) error {
			_, err := db.Exec("?.euter.r-(.stkCode=hp,.date=3/1/85)")
			return err
		}},
		{"unmount", func(db *DB) error {
			return db.Unmount("mem1")
		}},
		{"create-db", func(db *DB) error {
			return db.Catalog().CreateDatabase("scratch")
		}},
		{"insert-scratch", func(db *DB) error {
			_, err := db.Catalog().Insert("scratch", "t", Tup("k", 1), Tup("k", 2))
			return err
		}},
		{"drop-rel", func(db *DB) error {
			return db.Catalog().DropRelation("euter", "empty")
		}},
		{"drop-db", func(db *DB) error {
			return db.Catalog().DropDatabase("scratch")
		}},
	}
}

// stateDigest renders everything recovery must restore — the base
// universe (in insertion order, which MarshalJSON preserves), the view
// rules, and the program clauses — as one byte-comparable string.
func stateDigest(t testing.TB, db *DB) string {
	t.Helper()
	raw, err := object.MarshalJSON(db.Engine().Base())
	if err != nil {
		t.Fatalf("marshal universe: %v", err)
	}
	var clauses []string
	for _, c := range db.Engine().Clauses() {
		clauses = append(clauses, c.String())
	}
	return string(raw) +
		"\n--views--\n" + strings.Join(db.Views(), "\n") +
		"\n--clauses--\n" + strings.Join(clauses, "\n")
}

// recoveryReference runs the workload cleanly once and derives the
// oracle: the committed WAL records in order, the cumulative record
// count at the end of each step, and the reference digest after
// replaying each record prefix (states[j] = fresh DB + records[:j]).
type recoveryRef struct {
	records     []wal.Record
	stepRecords []uint64 // cumulative records appended after step i
	states      []string // len(records)+1 prefix digests
	writes      int      // FS write ops the clean run issued
	syncs       int      // FS fsync ops the clean run issued
}

func buildRecoveryReference(t testing.TB, steps []mutStep) *recoveryRef {
	t.Helper()
	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OSFS(), wal.FaultPlan{})
	db, _, err := openWALFS(dir, WALOptions{Durability: DurabilitySync}, ffs)
	if err != nil {
		t.Fatalf("clean open: %v", err)
	}
	ref := &recoveryRef{}
	for _, s := range steps {
		if err := s.apply(db); err != nil {
			t.Fatalf("clean run %s: %v", s.desc, err)
		}
		st, _ := db.WALStatus()
		ref.stepRecords = append(ref.stepRecords, st.Appended)
	}
	cleanDigest := stateDigest(t, db)
	if err := db.Close(); err != nil {
		t.Fatalf("clean close: %v", err)
	}
	ref.writes, ref.syncs = ffs.Writes(), ffs.Syncs()

	// The committed record sequence, read back through recovery itself
	// (no checkpoint was taken, so the tail is the whole history).
	log, recovered, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("read back records: %v", err)
	}
	log.Close()
	if recovered.Truncated {
		t.Fatal("clean run left a torn tail")
	}
	ref.records = recovered.Tail

	// Prefix states, built by replaying record prefixes onto a plain DB.
	rdb := Open()
	ref.states = append(ref.states, stateDigest(t, rdb))
	for _, r := range ref.records {
		if err := rdb.replayRecord(r); err != nil {
			t.Fatalf("reference replay lsn %d: %v", r.LSN, err)
		}
		ref.states = append(ref.states, stateDigest(t, rdb))
	}

	// Replay determinism: the full-record replay must reproduce the
	// original run's state exactly — this anchors the per-record
	// reference states to the original execution semantics.
	if got := ref.states[len(ref.states)-1]; got != cleanDigest {
		t.Fatalf("replaying all %d records diverges from the original run:\n got %s\nwant %s",
			len(ref.records), got, cleanDigest)
	}

	// And so must the original semantics applied directly, WAL-free.
	plain := Open()
	for _, s := range steps {
		if err := s.apply(plain); err != nil {
			t.Fatalf("plain run %s: %v", s.desc, err)
		}
	}
	if got := stateDigest(t, plain); got != cleanDigest {
		t.Fatalf("WAL-backed run diverges from plain run:\n got %s\nwant %s", cleanDigest, got)
	}
	return ref
}

// runCrashPoint executes the workload under the fault plan, then
// recovers through the real filesystem and checks the oracle. Returns a
// description of the matched prefix for logging.
// The optional ckptAfter indices take an (incremental) checkpoint after
// those steps, so crashes can land inside segment writes, manifest
// installs, or segment GC; a checkpoint never changes logical state, so
// the oracle is unchanged.
func runCrashPoint(t testing.TB, steps []mutStep, ref *recoveryRef, plan wal.FaultPlan, mode Durability, ckptAfter ...int) {
	t.Helper()
	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OSFS(), plan)
	ckptAt := make(map[int]bool, len(ckptAfter))
	for _, i := range ckptAfter {
		ckptAt[i] = true
	}
	ackedSteps := 0
	db, _, err := openWALFS(dir, WALOptions{Durability: mode}, ffs)
	if err == nil {
		for i, s := range steps {
			if err := s.apply(db); err != nil {
				break // the crash surfaced; everything after must fail too
			}
			ackedSteps++
			if ckptAt[i] {
				if _, err := db.Checkpoint(); err != nil {
					break // crashed inside the checkpoint; log is poisoned
				}
			}
		}
		db.Close()
	}

	rdb, report, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatalf("%+v: recovery failed: %v", plan, err)
	}
	defer rdb.Close()
	got := stateDigest(t, rdb)

	// In sync mode every record of an acknowledged step was fsynced
	// before the ack, so the recovered prefix must cover them all. In
	// group/off modes acknowledged records may be lost: any prefix is
	// consistent.
	lower := 0
	if mode == DurabilitySync && ackedSteps > 0 {
		lower = int(ref.stepRecords[ackedSteps-1])
	}
	for j := lower; j <= len(ref.records); j++ {
		if got == ref.states[j] {
			return
		}
	}
	t.Fatalf("%+v mode=%s: recovered state matches no committed prefix >= %d (acked steps %d, report %s)\nrecovered: %s",
		plan, mode, lower, ackedSteps, report, got)
}

// TestCrashPointGrid enumerates every write index (with three tear
// shapes) and every fsync index of the workload, in sync and group
// modes. Short mode strides the write grid.
func TestCrashPointGrid(t *testing.T) {
	steps := recoveryWorkload()
	ref := buildRecoveryReference(t, steps)
	stride := 1
	if testing.Short() {
		stride = 5
	}
	t.Run("write-crashes", func(t *testing.T) {
		for w := 1; w <= ref.writes; w += stride {
			for _, short := range []int{0, 5, 1 << 20} {
				runCrashPoint(t, steps, ref, wal.FaultPlan{CrashAtWrite: w, ShortBytes: short}, DurabilitySync)
			}
		}
	})
	t.Run("sync-crashes", func(t *testing.T) {
		for sy := 1; sy <= ref.syncs; sy += stride {
			runCrashPoint(t, steps, ref, wal.FaultPlan{CrashAtSync: sy}, DurabilitySync)
		}
	})
	t.Run("sync-failures", func(t *testing.T) {
		// Transient fsync failure: no crash, but the log must refuse
		// further appends and recovery must still be prefix-consistent.
		for sy := 1; sy <= ref.syncs; sy += stride {
			runCrashPoint(t, steps, ref, wal.FaultPlan{FailSyncAt: sy}, DurabilitySync)
		}
	})
	t.Run("group-commit-crashes", func(t *testing.T) {
		// Group mode defers fsync, so far fewer sync ops exist; crash on
		// writes and verify the weaker (lower bound 0) oracle.
		for w := 1; w <= ref.writes; w += stride {
			runCrashPoint(t, steps, ref, wal.FaultPlan{CrashAtWrite: w, ShortBytes: 3}, DurabilityGroup)
		}
	})
}

// TestRecoveryRoundTrip is the no-fault case: close cleanly, reopen,
// byte-compare, then keep working and recover again.
func TestRecoveryRoundTrip(t *testing.T) {
	steps := recoveryWorkload()
	dir := t.TempDir()
	db, report, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Replayed != 0 || report.CheckpointLSN != 0 {
		t.Fatalf("fresh dir recovered %s", report)
	}
	for _, s := range steps {
		if err := s.apply(db); err != nil {
			t.Fatalf("%s: %v", s.desc, err)
		}
	}
	want := stateDigest(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, report, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Replayed == 0 {
		t.Fatalf("nothing replayed: %s", report)
	}
	if got := stateDigest(t, db2); got != want {
		t.Fatalf("recovered state diverges:\n got %s\nwant %s", got, want)
	}
	// The recovered DB keeps working and those mutations recover too.
	if _, err := db2.Exec("?.euter.r+(.date=3/5/85,.stkCode=hp,.clsPrice=61)"); err != nil {
		t.Fatal(err)
	}
	want = stateDigest(t, db2)
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, _, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if got := stateDigest(t, db3); got != want {
		t.Fatalf("second recovery diverges:\n got %s\nwant %s", got, want)
	}
}

// TestCheckpointRecovery verifies recovery from checkpoint + tail and
// that crashes inside the checkpoint itself fall back cleanly.
func TestCheckpointRecovery(t *testing.T) {
	steps := recoveryWorkload()
	t.Run("checkpoint-plus-tail", func(t *testing.T) {
		dir := t.TempDir()
		db, _, err := OpenWAL(dir, WALOptions{})
		if err != nil {
			t.Fatal(err)
		}
		mid := len(steps) / 2
		for _, s := range steps[:mid] {
			if err := s.apply(db); err != nil {
				t.Fatalf("%s: %v", s.desc, err)
			}
		}
		if _, err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		for _, s := range steps[mid:] {
			if err := s.apply(db); err != nil {
				t.Fatalf("%s: %v", s.desc, err)
			}
		}
		want := stateDigest(t, db)
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		db2, report, err := OpenWAL(dir, WALOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer db2.Close()
		if report.CheckpointLSN == 0 {
			t.Fatalf("recovery ignored the checkpoint: %s", report)
		}
		if got := stateDigest(t, db2); got != want {
			t.Fatalf("checkpoint recovery diverges:\n got %s\nwant %s", got, want)
		}
	})
	t.Run("crash-during-checkpoint", func(t *testing.T) {
		// Probe how many FS ops a checkpoint costs, then crash at each.
		probeDir := t.TempDir()
		probeFS := wal.NewFaultFS(wal.OSFS(), wal.FaultPlan{})
		db, _, err := openWALFS(probeDir, WALOptions{}, probeFS)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range steps[:4] {
			if err := s.apply(db); err != nil {
				t.Fatal(err)
			}
		}
		preWrites, preSyncs := probeFS.Writes(), probeFS.Syncs()
		if _, err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		ckWrites, ckSyncs := probeFS.Writes()-preWrites, probeFS.Syncs()-preSyncs
		db.Close()

		for w := 1; w <= ckWrites; w++ {
			dir := t.TempDir()
			ffs := wal.NewFaultFS(wal.OSFS(), wal.FaultPlan{CrashAtWrite: preWrites + w, ShortBytes: 9})
			db, _, err := openWALFS(dir, WALOptions{}, ffs)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range steps[:4] {
				if err := s.apply(db); err != nil {
					t.Fatalf("workload must precede the checkpoint crash: %v", err)
				}
			}
			want := stateDigest(t, db)
			db.Checkpoint() // crashes somewhere inside
			db.Close()
			rdb, _, err := OpenWAL(dir, WALOptions{})
			if err != nil {
				t.Fatalf("ckpt write %d: recovery failed: %v", w, err)
			}
			if got := stateDigest(t, rdb); got != want {
				t.Fatalf("ckpt write %d: recovered state diverges:\n got %s\nwant %s", w, got, want)
			}
			rdb.Close()
		}
		for sy := 1; sy <= ckSyncs; sy++ {
			dir := t.TempDir()
			ffs := wal.NewFaultFS(wal.OSFS(), wal.FaultPlan{CrashAtSync: preSyncs + sy})
			db, _, err := openWALFS(dir, WALOptions{}, ffs)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range steps[:4] {
				if err := s.apply(db); err != nil {
					t.Fatalf("workload must precede the checkpoint crash: %v", err)
				}
			}
			want := stateDigest(t, db)
			db.Checkpoint()
			db.Close()
			rdb, _, err := OpenWAL(dir, WALOptions{})
			if err != nil {
				t.Fatalf("ckpt sync %d: recovery failed: %v", sy, err)
			}
			if got := stateDigest(t, rdb); got != want {
				t.Fatalf("ckpt sync %d: recovered state diverges:\n got %s\nwant %s", sy, got, want)
			}
			rdb.Close()
		}
	})
}

// TestWALPoisonAfterAppendFailure pins the commit protocol: once an
// append fails, the in-memory state is ahead of the log, so every later
// mutation must be refused rather than widen the divergence.
func TestWALPoisonAfterAppendFailure(t *testing.T) {
	dir := t.TempDir()
	// Write budget: 1 segment header, then the seed insert's three DDL
	// records (create-db, create-rel, insert), then one exec record per
	// acknowledged statement. Crash the 6th write: the seed and the first
	// exec commit, the second exec's append dies.
	ffs := wal.NewFaultFS(wal.OSFS(), wal.FaultPlan{CrashAtWrite: 6})
	db, _, err := openWALFS(dir, WALOptions{}, ffs)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Catalog().Insert("euter", "r",
		Tup("date", Date(85, 3, 1), "stkCode", "seed", "clsPrice", 1)); err != nil {
		t.Fatalf("seed insert: %v", err)
	}
	var firstErr error
	for i := 0; i < 8; i++ {
		_, err := db.Exec(fmt.Sprintf("?.euter.r+(.date=3/1/85,.stkCode=s%d,.clsPrice=%d)", i, 10+i))
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if err == nil && firstErr != nil {
			t.Fatalf("exec %d acknowledged after append failure %v", i, firstErr)
		}
	}
	if firstErr == nil {
		t.Fatal("no exec failed despite the injected crash")
	}
	if st, ok := db.WALStatus(); !ok || st.Err == nil {
		t.Fatalf("WAL status does not surface the sticky error: %+v ok=%v", st, ok)
	}
	// DDL paths are poisoned too.
	if err := db.Catalog().CreateDatabase("late"); err == nil {
		t.Fatal("DDL acknowledged after append failure")
	}
}

// TestDifferentialRecovery wires durability into the differential
// harness: every experiment's transcript must be byte-identical with the
// WAL on, and the state a crashless close leaves behind must recover
// byte-identically.
func TestDifferentialRecovery(t *testing.T) {
	for _, exp := range diffExperiments {
		exp := exp
		t.Run(exp.name, func(t *testing.T) {
			plain := diffOpen(diffModes[0].set, 0)
			diffFixture(t, plain)
			if exp.setup != nil {
				exp.setup(t, plain)
			}
			want := diffTranscript(t, plain, exp.stmts)

			dir := t.TempDir()
			opts := DefaultOptions()
			diffModes[0].set(&opts)
			db, _, err := OpenWAL(dir, WALOptions{Engine: &opts})
			if err != nil {
				t.Fatal(err)
			}
			diffFixture(t, db)
			if exp.setup != nil {
				exp.setup(t, db)
			}
			got := diffTranscript(t, db, exp.stmts)
			diffCompare(t, exp.name+" wal-on", want, got)
			wantState := stateDigest(t, db)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			rdb, _, err := OpenWAL(dir, WALOptions{Engine: &opts})
			if err != nil {
				t.Fatal(err)
			}
			defer rdb.Close()
			if gotState := stateDigest(t, rdb); gotState != wantState {
				t.Fatalf("%s: recovered state diverges:\n got %s\nwant %s", exp.name, gotState, wantState)
			}
		})
	}
}

// fuzzWorkload derives a deterministic mutation sequence from a seed —
// a little LCG walk over inserts, deletes, DDL and registrations.
func fuzzWorkload(seed uint64) []mutStep {
	rng := seed*2862933555777941757 + 3037000493
	next := func(n int) int {
		rng = rng*2862933555777941757 + 3037000493
		return int((rng >> 33) % uint64(n))
	}
	nSteps := 4 + next(6)
	// Every workload seeds euter.r first: exec statements need the
	// relation to exist.
	steps := []mutStep{{"seed", func(db *DB) error {
		_, err := db.Catalog().Insert("euter", "r",
			Tup("date", Date(85, 3, 1), "stkCode", "seed", "clsPrice", 1))
		return err
	}}}
	for i := 0; i < nSteps; i++ {
		switch next(6) {
		case 0:
			stk := fmt.Sprintf("s%d", next(5))
			price := 10 + next(90)
			day := 1 + next(28)
			steps = append(steps, mutStep{"insert", func(db *DB) error {
				_, err := db.Catalog().Insert("euter", "r",
					Tup("date", Date(85, 3, day), "stkCode", stk, "clsPrice", price))
				return err
			}})
		case 1:
			stk := fmt.Sprintf("s%d", next(5))
			price := 10 + next(90)
			day := 1 + next(28)
			steps = append(steps, mutStep{"exec-insert", func(db *DB) error {
				_, err := db.Exec(fmt.Sprintf("?.euter.r+(.date=3/%d/85,.stkCode=%s,.clsPrice=%d)", day, stk, price))
				return err
			}})
		case 2:
			stk := fmt.Sprintf("s%d", next(5))
			steps = append(steps, mutStep{"exec-delete", func(db *DB) error {
				_, err := db.Exec(fmt.Sprintf("?.euter.r-(.stkCode=%s)", stk))
				return err
			}})
		case 3:
			rel := fmt.Sprintf("t%d", i)
			steps = append(steps, mutStep{"create-rel", func(db *DB) error {
				_, err := db.Catalog().Insert("scratch", rel, Tup("k", i))
				return err
			}})
		case 4:
			view := fmt.Sprintf("v%d", i)
			steps = append(steps, mutStep{"rule", func(db *DB) error {
				return db.DefineView(fmt.Sprintf(".dbI.%s(.stk=S) <- .euter.r(.stkCode=S)", view))
			}})
		case 5:
			prog := fmt.Sprintf("p%d", i)
			steps = append(steps, mutStep{"clause", func(db *DB) error {
				return db.DefineProgram(fmt.Sprintf(".dbU.%s(.stk=S) -> .euter.r-(.stkCode=S)", prog))
			}})
		}
	}
	return steps
}

// FuzzRecovery fuzzes the prefix-consistency oracle: an arbitrary
// seeded workload, an arbitrary crash point, and a recovered state that
// must equal some committed prefix.
func FuzzRecovery(f *testing.F) {
	f.Add(uint64(1), uint16(3), uint8(0), false)
	f.Add(uint64(7), uint16(9), uint8(5), false)
	f.Add(uint64(42), uint16(1), uint8(255), true)
	f.Add(uint64(99), uint16(30), uint8(16), false)
	f.Fuzz(func(t *testing.T, seed uint64, crashOp uint16, short uint8, crashSync bool) {
		steps := fuzzWorkload(seed)
		ref := buildRecoveryReference(t, steps)
		plan := wal.FaultPlan{}
		if crashSync {
			if ref.syncs == 0 {
				t.Skip("workload issued no fsyncs")
			}
			plan.CrashAtSync = 1 + int(crashOp)%ref.syncs
		} else {
			plan.CrashAtWrite = 1 + int(crashOp)%ref.writes
			plan.ShortBytes = int(short)
		}
		runCrashPoint(t, steps, ref, plan, DurabilitySync)
	})
}

// FuzzCheckpointRecovery fuzzes the incremental-checkpoint crash
// surface: a seeded workload with checkpoints interleaved at arbitrary
// steps, and a crash point that can land inside relation-segment writes,
// the manifest install, segment GC, or the post-checkpoint tail. The
// recovered state must still equal a committed prefix covering every
// acknowledged step.
func FuzzCheckpointRecovery(f *testing.F) {
	f.Add(uint64(1), uint16(3), uint8(0), false, uint8(0))
	f.Add(uint64(7), uint16(40), uint8(5), false, uint8(2))
	f.Add(uint64(42), uint16(80), uint8(255), true, uint8(1))
	f.Add(uint64(99), uint16(120), uint8(16), false, uint8(6))
	f.Fuzz(func(t *testing.T, seed uint64, crashOp uint16, short uint8, crashSync bool, ckptAt uint8) {
		steps := fuzzWorkload(seed)
		ref := buildRecoveryReference(t, steps)
		// Checkpoint after two workload-dependent steps; checkpoints cost
		// extra FS ops, so let the crash index range well past the clean
		// run's op counts (indices beyond the run simply never fire).
		ck1 := int(ckptAt) % len(steps)
		ck2 := (int(ckptAt) + 1 + len(steps)/2) % len(steps)
		plan := wal.FaultPlan{}
		if crashSync {
			if ref.syncs == 0 {
				t.Skip("workload issued no fsyncs")
			}
			plan.CrashAtSync = 1 + int(crashOp)%(4*ref.syncs)
		} else {
			plan.CrashAtWrite = 1 + int(crashOp)%(4*ref.writes)
			plan.ShortBytes = int(short)
		}
		runCrashPoint(t, steps, ref, plan, DurabilitySync, ck1, ck2)
	})
}
