package qlog

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(4)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", r.Cap())
	}
	for i := 1; i <= 6; i++ {
		r.Put(&Event{Seq: uint64(i), Kind: KindQuery})
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(i + 3); e.Seq != want {
			t.Errorf("evs[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if r.Total() != 6 {
		t.Errorf("total = %d, want 6", r.Total())
	}
}

func TestRingNilAndDisabled(t *testing.T) {
	var r *Ring
	r.Put(&Event{Seq: 1})
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil ring snapshot = %v, want nil", got)
	}
	if NewRing(0) != nil || NewRing(-1) != nil {
		t.Fatal("NewRing(<=0) should be nil")
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Put(&Event{Seq: uint64(w*1000 + i)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, e := range r.Snapshot() {
				_ = e.Seq
			}
		}
	}()
	wg.Wait()
	<-done
	if r.Total() != 2000 {
		t.Fatalf("total = %d, want 2000", r.Total())
	}
}

func TestEventRendering(t *testing.T) {
	e := &Event{
		Seq: 7, Kind: KindQuery, Text: "?.euter.r(X)", Rows: 3,
		Duration: 1500 * time.Microsecond,
		Skipped:  []string{".chwab.stk(...)"},
		Degraded: "degraded: 1/3 member databases unreachable\n  chwab: timeout",
	}
	s := e.String()
	for _, want := range []string{"#7", "query", "1.5ms", "rows=3", "skipped=[.chwab.stk(...)]", `degraded="degraded: 1/3 member databases unreachable"`} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	red := e.Redacted()
	if strings.Contains(red, "1.5ms") {
		t.Errorf("Redacted() = %q, should not carry duration", red)
	}
	if !strings.Contains(red, "rows=3") {
		t.Errorf("Redacted() = %q, should keep rows", red)
	}
}

func TestDigestStable(t *testing.T) {
	a, b := Digest("?.euter.r(X)"), Digest("?.euter.r(X)")
	if a != b || len(a) != 16 {
		t.Fatalf("digest unstable or wrong width: %q vs %q", a, b)
	}
	if Digest("x") == Digest("y") {
		t.Fatal("distinct inputs collided")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.idlog")
	j, err := Create(path, map[string]string{"demo": "1", "seed": "1991"})
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: KindRule, Text: "all.r(X) :- .a.r(X)."},
		{Kind: KindQuery, Text: "?all.r(X)", Rows: 2, Answer: "X\n1\n2", NS: 1234},
		{Kind: KindExec, Text: "+.a.r(3)", Exec: &ExecSummary{ElemsInserted: 1, Bindings: 1}},
		{Kind: KindQuery, Text: "?bad(", Err: "parse error"},
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	hdr, got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Format != FormatName || hdr.Version != FormatVersion {
		t.Fatalf("header = %+v", hdr)
	}
	if hdr.Meta["seed"] != "1991" {
		t.Fatalf("meta = %v", hdr.Meta)
	}
	if len(got) != len(recs) {
		t.Fatalf("records = %d, want %d", len(got), len(recs))
	}
	for i, rec := range got {
		if rec.Seq != i {
			t.Errorf("rec %d Seq = %d", i, rec.Seq)
		}
		if rec.Text != recs[i].Text || rec.Answer != recs[i].Answer || rec.Err != recs[i].Err {
			t.Errorf("rec %d = %+v, want %+v", i, rec, recs[i])
		}
	}
	if got[2].Exec == nil || got[2].Exec.ElemsInserted != 1 {
		t.Errorf("exec summary lost: %+v", got[2].Exec)
	}
}

func TestJournalAppendContinuesSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.idlog")
	j, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Record{Kind: KindQuery, Text: "?a(X)"})
	j.Close()

	j2, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Records() != 1 {
		t.Fatalf("pre-existing records = %d, want 1", j2.Records())
	}
	j2.Append(Record{Kind: KindQuery, Text: "?b(X)"})
	j2.Close()

	_, recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != 0 || recs[1].Seq != 1 {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestJournalRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus.idlog")
	if err := os.WriteFile(path, []byte("{\"format\":\"other\",\"version\":9}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(path, nil); err == nil {
		t.Fatal("Create accepted a foreign journal")
	}
	if _, _, err := ReadJournal(path); err == nil {
		t.Fatal("ReadJournal accepted a foreign journal")
	}
}

func TestRecorderPipeline(t *testing.T) {
	rec := NewRecorder(8)
	var logBuf bytes.Buffer
	rec.SetLogger(&logBuf)
	path := filepath.Join(t.TempDir(), "w.idlog")
	j, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec.SetJournal(j)

	op := rec.Begin(KindQuery)
	if op == nil {
		t.Fatal("Begin returned nil with sinks attached")
	}
	op.SetText("?.euter.r(X)")
	op.SetPlanDigest("1. [query/scan] .euter.r(X)")
	if !op.Journaling() {
		t.Fatal("op should be journaling")
	}
	op.SetAnswer("X\n1", 1)
	op.SetDegraded("degraded: 1/2 member databases unreachable", []string{".chwab.stk(...)"})
	op.End(nil)

	rec.Emit(KindRule, "v(X) :- .a.r(X).", nil)
	rec.Emit(KindSync, "members=2 unreachable=0", nil)

	evs := rec.Events()
	if len(evs) != 3 {
		t.Fatalf("ring has %d events, want 3", len(evs))
	}
	q := evs[0]
	if q.Kind != KindQuery || q.Rows != 1 || q.Digest == "" || q.PlanDigest == "" || len(q.Skipped) != 1 {
		t.Fatalf("query event = %+v", q)
	}

	// Log: one JSON line per event, joinable via seq.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("log lines = %d, want 3: %q", len(lines), logBuf.String())
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatal(err)
	}
	if entry["msg"] != KindQuery || entry["text"] != "?.euter.r(X)" || entry["level"] != "INFO" {
		t.Fatalf("log entry = %v", entry)
	}
	if entry["seq"] != float64(q.Seq) {
		t.Fatalf("log seq = %v, event seq = %d", entry["seq"], q.Seq)
	}

	// Journal: statement kinds only — the sync event must not appear.
	rec.SetJournal(nil)
	j.Close()
	_, recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("journal records = %d, want 2 (query+rule, no sync)", len(recs))
	}
	if recs[0].Kind != KindQuery || recs[0].Answer != "X\n1" || recs[0].Degraded == "" {
		t.Fatalf("journal query rec = %+v", recs[0])
	}
	if recs[1].Kind != KindRule {
		t.Fatalf("journal rec 1 kind = %q", recs[1].Kind)
	}
}

func TestRecorderSlowPromotion(t *testing.T) {
	rec := NewRecorder(4)
	var logBuf bytes.Buffer
	rec.SetLogger(&logBuf)
	rec.SetSlowThreshold(time.Nanosecond) // everything is slow
	op := rec.Begin(KindQuery)
	op.SetText("?a(X)")
	time.Sleep(time.Microsecond)
	op.End(nil)
	var entry map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &entry); err != nil {
		t.Fatal(err)
	}
	if entry["level"] != "WARN" || entry["slow"] != true {
		t.Fatalf("slow query not promoted: %v", entry)
	}
	if !rec.Events()[0].Slow {
		t.Fatal("ring event not marked slow")
	}
}

func TestRecorderErrorLevelAndAutoDump(t *testing.T) {
	rec := NewRecorder(4)
	var logBuf, dumpBuf bytes.Buffer
	rec.SetLogger(&logBuf)
	rec.SetAutoDump(&dumpBuf)

	op := rec.Begin(KindQuery)
	op.SetText("?unsafe(X)")
	op.End(errors.New("unsafe query"))

	var entry map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &entry); err != nil {
		t.Fatal(err)
	}
	if entry["level"] != "ERROR" || entry["err"] != "unsafe query" {
		t.Fatalf("error entry = %v", entry)
	}
	dump := dumpBuf.String()
	if !strings.Contains(dump, "auto-dump: query failed: unsafe query") ||
		!strings.Contains(dump, "?unsafe(X)") {
		t.Fatalf("auto-dump = %q", dump)
	}
}

func TestRecorderBreakerTransition(t *testing.T) {
	rec := NewRecorder(4)
	var dumpBuf bytes.Buffer
	rec.SetAutoDump(&dumpBuf)
	rec.BreakerTransition("chwab", "closed", "open")
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Kind != KindBreaker || evs[0].Member != "chwab" || evs[0].Text != "closed -> open" {
		t.Fatalf("breaker event = %+v", evs[0])
	}
	if !strings.Contains(dumpBuf.String(), `breaker opened on member "chwab"`) {
		t.Fatalf("no auto-dump on breaker open: %q", dumpBuf.String())
	}
	dumpBuf.Reset()
	rec.BreakerTransition("chwab", "open", "half-open")
	if dumpBuf.Len() != 0 {
		t.Fatal("auto-dump fired on non-open transition")
	}
}

func TestRecorderInactive(t *testing.T) {
	rec := NewRecorder(0)
	if rec.Active() {
		t.Fatal("recorder with no sinks reports active")
	}
	if op := rec.Begin(KindQuery); op != nil {
		t.Fatal("Begin should return nil when inactive")
	}
	// nil op is inert end to end.
	var op *Op
	op.SetText("x")
	op.SetRows(1)
	op.SetAnswer("a", 1)
	op.SetExec(ExecSummary{}, 0)
	op.SetDegraded("d", nil)
	op.SetPlanDigest("p")
	if op.Journaling() || op.Logging() || op.Seq() != 0 {
		t.Fatal("nil op should report inactive")
	}
	if ctx := op.Context(context.Background()); OpID(ctx) != 0 {
		t.Fatal("nil op should not tag ctx")
	}
	op.End(nil)

	var nilRec *Recorder
	nilRec.Emit(KindRule, "x", nil)
	nilRec.BreakerTransition("a", "closed", "open")
	if nilRec.Begin(KindQuery) != nil || nilRec.Active() {
		t.Fatal("nil recorder should be inert")
	}
}

func TestOpContextID(t *testing.T) {
	rec := NewRecorder(4)
	op := rec.Begin(KindQuery)
	ctx := op.Context(context.Background())
	if OpID(ctx) != op.Seq() || op.Seq() == 0 {
		t.Fatalf("OpID = %d, want %d", OpID(ctx), op.Seq())
	}
	if OpID(context.Background()) != 0 {
		t.Fatal("background ctx should have no op ID")
	}
}

func TestRecorderConcurrentJournal(t *testing.T) {
	rec := NewRecorder(16)
	path := filepath.Join(t.TempDir(), "w.idlog")
	j, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec.SetJournal(j)
	var wg sync.WaitGroup
	const workers, per = 4, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				op := rec.Begin(KindQuery)
				op.SetText(fmt.Sprintf("?q%d_%d(X)", w, i))
				op.SetAnswer("X\n1", 1)
				op.End(nil)
			}
		}(w)
	}
	wg.Wait()
	rec.SetJournal(nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != workers*per {
		t.Fatalf("journal records = %d, want %d", len(recs), workers*per)
	}
	for i, rec := range recs {
		if rec.Seq != i {
			t.Fatalf("rec %d has seq %d: journal sequence not dense", i, rec.Seq)
		}
	}
}
