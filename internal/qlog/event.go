// Package qlog is the engine's temporal observability layer: where
// internal/obs answers "what is the system doing right now" (counters,
// spans), qlog answers "what happened, in order". It provides three
// cooperating pieces built around a single Event type:
//
//   - a fixed-size lock-free Ring holding the last N events (the flight
//     recorder — always on, near-zero cost),
//   - an slog-based structured JSON event log with a slow-query
//     threshold that promotes events to WARN,
//   - an append-only, versioned `.idlog` Journal capturing a replayable
//     workload (statements plus their canonical answers).
//
// qlog sits below the public idl package and below internal/core so both
// can emit into it without an import cycle: qlog imports neither.
package qlog

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"
)

// Event kinds. Statement kinds (query/exec/call/rule/clause) are
// replayable and eligible for journaling; sync and breaker events are
// environmental and recorded only in the ring and event log.
const (
	KindQuery   = "query"   // read-only query request
	KindExec    = "exec"    // update request
	KindCall    = "call"    // named program invocation
	KindRule    = "rule"    // view/rule definition
	KindClause  = "clause"  // program clause definition
	KindSync    = "sync"    // federation member snapshot sync
	KindBreaker = "breaker" // circuit breaker state transition

	// Durability events (environmental: ring and event log only).
	KindRecover    = "recover"    // WAL recovery summary at startup
	KindCheckpoint = "checkpoint" // WAL checkpoint taken
)

// Event is one record of engine activity. Events are immutable once
// published to the ring; all fields are plain values so a snapshot can
// be rendered or serialized without coordination.
type Event struct {
	Seq        uint64        `json:"seq"`                   // recorder-wide sequence number (also the op ID joined into span trees)
	Time       time.Time     `json:"time"`                  // wall-clock start of the operation
	Kind       string        `json:"kind"`                  // one of the Kind* constants
	Text       string        `json:"text,omitempty"`        // canonical statement rendering (or sync/breaker summary)
	Digest     string        `json:"digest,omitempty"`      // FNV-1a of Text: stable statement identity across runs
	PlanDigest string        `json:"plan_digest,omitempty"` // FNV-1a of the static plan rendering, when the event log is on
	Duration   time.Duration `json:"duration_ns"`
	Rows       int           `json:"rows,omitempty"`       // answer cardinality (queries)
	Changes    int           `json:"changes,omitempty"`    // total mutations applied (exec/call)
	Skipped    []string      `json:"skipped,omitempty"`    // conjuncts skipped due to unreachable members
	Degraded   string        `json:"degraded,omitempty"`   // federation degraded report, deterministic rendering
	Member     string        `json:"member,omitempty"`     // member database name (breaker events)
	Workers    int           `json:"workers,omitempty"`    // parallelism degree the operation ran under (0 = sequential)
	PlanCache  string        `json:"plan_cache,omitempty"` // plan-cache outcome: hit / stale / miss / cold (queries)
	TraceID    string        `json:"trace_id,omitempty"`   // facade-minted trace ID shared with span trees and WAL commit spans
	Slow       bool          `json:"slow,omitempty"`       // duration exceeded the slow threshold
	Err        string        `json:"err,omitempty"`
}

// String renders the event as a human-oriented one-liner, as shown by
// the REPL's \flightrec and in auto-dumps.
func (e *Event) String() string { return e.format(false) }

// Redacted renders the event with timing-dependent fields (duration,
// slow marker) blanked, so dumps are byte-stable for golden tests.
func (e *Event) Redacted() string { return e.format(true) }

func (e *Event) format(redact bool) string {
	dur := e.Duration.String()
	if redact {
		dur = "-"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %-7s %s", e.Seq, e.Kind, dur)
	if e.Member != "" {
		fmt.Fprintf(&b, " member=%s", e.Member)
	}
	if e.Text != "" {
		fmt.Fprintf(&b, " %s", e.Text)
	}
	switch e.Kind {
	case KindQuery:
		if e.Err == "" {
			fmt.Fprintf(&b, " rows=%d", e.Rows)
		}
	case KindExec, KindCall:
		if e.Err == "" {
			fmt.Fprintf(&b, " changes=%d", e.Changes)
		}
	}
	if e.Workers > 0 {
		fmt.Fprintf(&b, " workers=%d", e.Workers)
	}
	if e.PlanCache != "" {
		fmt.Fprintf(&b, " plan=%s", e.PlanCache)
	}
	if len(e.Skipped) > 0 {
		fmt.Fprintf(&b, " skipped=[%s]", strings.Join(e.Skipped, "; "))
	}
	if e.Degraded != "" {
		fmt.Fprintf(&b, " degraded=%q", firstLine(e.Degraded))
	}
	if e.Slow && !redact {
		b.WriteString(" SLOW")
	}
	if e.Err != "" {
		fmt.Fprintf(&b, " err=%q", e.Err)
	}
	return b.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Journaled reports whether events of this kind are replayable
// statements that belong in a workload journal.
func Journaled(kind string) bool {
	switch kind {
	case KindQuery, KindExec, KindCall, KindRule, KindClause:
		return true
	}
	return false
}

// Digest returns the 64-bit FNV-1a hash of s in fixed-width hex. It is
// the statement/plan identity used to join journal records, log events
// and span trees across runs without shipping full text everywhere.
func Digest(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}
