package qlog

import (
	"sort"
	"sync/atomic"
)

// Ring is a fixed-size lock-free buffer of the most recent events: the
// flight recorder proper. Writers claim a slot with one atomic add and
// publish the event with one atomic pointer store — no locks, no
// allocation beyond the event itself — so it can stay on for every
// operation at near-zero cost (benchmarked by B12's flightrec pair).
//
// Readers take a point-in-time snapshot by loading every slot. A writer
// racing a snapshot can only make a slot disappear or advance to a newer
// event; snapshots are therefore always a set of valid events, sorted by
// sequence number, but may momentarily miss the oldest entries while a
// lap is in progress. That trade is deliberate: the recorder favours the
// write path, which runs on every query, over the dump path, which runs
// when a human asks.
type Ring struct {
	slots []atomic.Pointer[Event]
	n     atomic.Uint64 // total events ever published
}

// NewRing returns a ring holding the last size events, or nil when
// size <= 0 (a nil *Ring drops events and snapshots empty).
func NewRing(size int) *Ring {
	if size <= 0 {
		return nil
	}
	return &Ring{slots: make([]atomic.Pointer[Event], size)}
}

// Cap returns the ring capacity; 0 for a nil ring.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Total returns how many events have ever been published.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.n.Load()
}

// Put publishes an event, overwriting the oldest slot once full. The
// event must not be mutated afterwards.
func (r *Ring) Put(e *Event) {
	if r == nil || e == nil {
		return
	}
	i := r.n.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(e)
}

// Snapshot returns the currently buffered events ordered by sequence
// number (oldest first).
func (r *Ring) Snapshot() []*Event {
	if r == nil {
		return nil
	}
	out := make([]*Event, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
