package qlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Journal file format (".idlog"): JSON lines, append-only, versioned.
// The first line is a Header identifying the format and carrying
// free-form metadata (enough for cmd/idlreplay to rebuild the workload's
// environment — schema seeds, chaos seeds, federation settings). Every
// subsequent line is one Record: a replayable statement together with
// the answer the original run observed, rendered canonically so replay
// comparison is a byte comparison.
const (
	FormatName    = "idlog"
	FormatVersion = 1
)

// Header is the first line of a journal file.
type Header struct {
	Format  string            `json:"format"`
	Version int               `json:"version"`
	Meta    map[string]string `json:"meta,omitempty"`
}

// ExecSummary mirrors the engine's update-request outcome counters; it
// is the journal's serializable copy (qlog cannot import internal/core).
type ExecSummary struct {
	ElemsInserted int `json:"elems_inserted,omitempty"`
	ElemsDeleted  int `json:"elems_deleted,omitempty"`
	AttrsCreated  int `json:"attrs_created,omitempty"`
	AttrsDeleted  int `json:"attrs_deleted,omitempty"`
	ValuesSet     int `json:"values_set,omitempty"`
	Bindings      int `json:"bindings,omitempty"`
}

// Record is one replayable statement with its observed outcome.
type Record struct {
	Seq       int          `json:"seq"` // 0-based position in the journal
	Kind      string       `json:"kind"`
	Text      string       `json:"text"`
	Digest    string       `json:"digest,omitempty"`
	NS        int64        `json:"ns"` // original duration, for perf-mode comparison
	Rows      int          `json:"rows,omitempty"`
	Answer    string       `json:"answer,omitempty"` // canonical Answer rendering (sorted)
	Exec      *ExecSummary `json:"exec,omitempty"`
	Degraded  string       `json:"degraded,omitempty"`   // deterministic degraded-report rendering
	Workers   int          `json:"workers,omitempty"`    // parallelism degree the statement ran under (0 = sequential)
	PlanCache string       `json:"plan_cache,omitempty"` // plan-cache outcome: hit / stale / miss / cold
	TraceID   string       `json:"trace_id,omitempty"`   // facade-minted trace ID joining span trees and WAL commit spans
	Err       string       `json:"err,omitempty"`
}

// Journal is an open journal file. Appends are serialized by a mutex
// and flushed per record so a crash loses at most the in-flight line;
// write errors are sticky and surfaced by Err/Close.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	n    int // records written (including pre-existing ones when appending)
	path string
	err  error
}

// Create opens path for journaling. A new or empty file gets a fresh
// header; an existing journal is validated and appended to, continuing
// its sequence numbering.
func Create(path string, meta map[string]string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, path: path}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size() == 0 {
		hdr, err := json.Marshal(Header{Format: FormatName, Version: FormatVersion, Meta: meta})
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		// Appending: validate the header and count existing records so
		// new sequence numbers continue where the file left off.
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		if !sc.Scan() {
			f.Close()
			return nil, fmt.Errorf("qlog: %s: missing journal header", path)
		}
		if err := parseHeader(sc.Bytes(), path); err != nil {
			f.Close()
			return nil, err
		}
		for sc.Scan() {
			if len(sc.Bytes()) > 0 {
				j.n++
			}
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(0, 2); err != nil {
			f.Close()
			return nil, err
		}
	}
	j.w = bufio.NewWriter(f)
	return j, nil
}

func parseHeader(line []byte, path string) error {
	var hdr Header
	if err := json.Unmarshal(line, &hdr); err != nil {
		return fmt.Errorf("qlog: %s: bad journal header: %w", path, err)
	}
	if hdr.Format != FormatName {
		return fmt.Errorf("qlog: %s: not an idlog journal (format %q)", path, hdr.Format)
	}
	if hdr.Version != FormatVersion {
		return fmt.Errorf("qlog: %s: unsupported journal version %d (want %d)", path, hdr.Version, FormatVersion)
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Records returns how many records the journal holds.
func (j *Journal) Records() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Append writes one record, assigning its sequence number.
func (j *Journal) Append(rec Record) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	rec.Seq = j.n
	line, err := json.Marshal(rec)
	if err != nil {
		j.err = err
		return err
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		j.err = err
		return err
	}
	if err := j.w.Flush(); err != nil {
		j.err = err
		return err
	}
	j.n++
	return nil
}

// Err returns the sticky write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes, fsyncs and closes the journal file: a captured workload
// survives power loss once Close returns. The sticky write error, flush,
// sync and close failures all surface (first one wins).
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	ferr := j.w.Flush()
	serr := j.f.Sync()
	cerr := j.f.Close()
	for _, err := range []error{j.err, ferr, serr, cerr} {
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadJournal loads a journal file: header plus all records, in order.
func ReadJournal(path string) (*Header, []Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, nil, fmt.Errorf("qlog: %s: missing journal header", path)
	}
	var hdr Header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, nil, fmt.Errorf("qlog: %s: bad journal header: %w", path, err)
	}
	if err := parseHeader(sc.Bytes(), path); err != nil {
		return nil, nil, err
	}
	var recs []Record
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, nil, fmt.Errorf("qlog: %s: record %d: %w", path, len(recs), err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return &hdr, recs, nil
}
