package qlog

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRingSize is the flight recorder's default capacity. Small
// enough that a dump is readable, large enough to cover the window
// leading up to a failure.
const DefaultRingSize = 256

// Recorder is the per-DB event pipeline. Every engine operation opens
// an Op, annotates it, and Ends it; the recorder then fans the finished
// Event out to whichever sinks are attached:
//
//   - the flight-recorder ring (on by default),
//   - the structured slog JSON event log (off by default),
//   - the workload journal (off by default; statement kinds only),
//   - the auto-dump writer (off by default; fires on errors and on
//     breaker-open transitions).
//
// All sink pointers are atomics so the hot path never takes a lock and
// reconfiguration is safe against in-flight operations.
type Recorder struct {
	ring    atomic.Pointer[Ring]
	seq     atomic.Uint64
	slowNS  atomic.Int64
	logger  atomic.Pointer[slog.Logger]
	journal atomic.Pointer[Journal]

	dumpMu sync.Mutex
	dump   io.Writer
}

// NewRecorder returns a recorder whose flight ring holds ringSize
// events (<= 0 disables the ring).
func NewRecorder(ringSize int) *Recorder {
	r := &Recorder{}
	r.ring.Store(NewRing(ringSize))
	return r
}

// SetRingSize replaces the flight ring with one of the given capacity
// (<= 0 disables it). Buffered events are discarded; sequence numbers
// continue.
func (r *Recorder) SetRingSize(n int) {
	if r == nil {
		return
	}
	r.ring.Store(NewRing(n))
}

// RingCap returns the current flight-ring capacity.
func (r *Recorder) RingCap() int {
	if r == nil {
		return 0
	}
	return r.ring.Load().Cap()
}

// SetLogger attaches the structured event log, emitting one JSON line
// per event to w (nil detaches).
func (r *Recorder) SetLogger(w io.Writer) {
	if r == nil {
		return
	}
	if w == nil {
		r.logger.Store(nil)
		return
	}
	r.logger.Store(slog.New(slog.NewJSONHandler(w, nil)))
}

// SetSlowThreshold promotes events slower than d to WARN in the event
// log and marks them Slow in the ring (d <= 0 disables).
func (r *Recorder) SetSlowThreshold(d time.Duration) {
	if r == nil {
		return
	}
	r.slowNS.Store(int64(d))
}

// SlowThreshold returns the current slow-query threshold.
func (r *Recorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.slowNS.Load())
}

// SetJournal attaches a workload journal (nil detaches). The journal is
// not closed by the recorder; the owner must Close it.
func (r *Recorder) SetJournal(j *Journal) {
	if r == nil {
		return
	}
	if j == nil {
		r.journal.Store(nil)
		return
	}
	r.journal.Store(j)
}

// Journal returns the attached journal, or nil.
func (r *Recorder) Journal() *Journal {
	if r == nil {
		return nil
	}
	return r.journal.Load()
}

// SetAutoDump makes the recorder dump the flight ring to w whenever an
// operation ends in an error or a breaker opens (nil disables).
func (r *Recorder) SetAutoDump(w io.Writer) {
	if r == nil {
		return
	}
	r.dumpMu.Lock()
	r.dump = w
	r.dumpMu.Unlock()
}

// Events returns a point-in-time snapshot of the flight ring, oldest
// first.
func (r *Recorder) Events() []*Event {
	if r == nil {
		return nil
	}
	return r.ring.Load().Snapshot()
}

// Dump writes a human rendering of the flight ring to w; redact blanks
// timing-dependent fields for byte-stable output.
func (r *Recorder) Dump(w io.Writer, redact bool) {
	if r == nil {
		return
	}
	ring := r.ring.Load()
	evs := ring.Snapshot()
	fmt.Fprintf(w, "flight recorder: %d buffered / %d total events (cap %d)\n",
		len(evs), ring.Total(), ring.Cap())
	for _, e := range evs {
		fmt.Fprintf(w, "%s\n", e.format(redact))
	}
}

// Active reports whether any sink would observe an operation; callers
// may skip building event text when false.
func (r *Recorder) Active() bool {
	if r == nil {
		return false
	}
	return r.ring.Load() != nil || r.logger.Load() != nil || r.journal.Load() != nil
}

// Logging reports whether the structured event log is attached (used to
// gate optional, costlier annotations such as plan digests).
func (r *Recorder) Logging() bool {
	return r != nil && r.logger.Load() != nil
}

// Op is one in-flight operation. A nil *Op is valid and inert, so call
// sites stay branch-free: annotate unconditionally, End once.
type Op struct {
	r       *Recorder
	ev      Event
	start   time.Time
	journal bool   // this op's kind is journaled and a journal is attached
	answer  string // canonical answer rendering, when journaling
	exec    *ExecSummary
}

// Begin opens an operation of the given kind, or returns nil when no
// sink is attached.
func (r *Recorder) Begin(kind string) *Op {
	if r == nil || !r.Active() {
		return nil
	}
	op := &Op{
		r:       r,
		start:   time.Now(),
		journal: Journaled(kind) && r.journal.Load() != nil,
	}
	op.ev.Seq = r.seq.Add(1)
	op.ev.Time = op.start
	op.ev.Kind = kind
	return op
}

// Emit records a zero-duration event (rule/clause definitions, where
// the interesting payload is the text and any error).
func (r *Recorder) Emit(kind, text string, err error) {
	op := r.Begin(kind)
	if op == nil {
		return
	}
	op.SetText(text)
	op.End(err)
}

// BreakerTransition records a circuit-breaker state change on a member
// database. Transitions to "open" trigger an auto-dump: the ring at
// that moment is the story of how the member died.
func (r *Recorder) BreakerTransition(member, from, to string) {
	op := r.Begin(KindBreaker)
	if op == nil {
		return
	}
	op.ev.Member = member
	op.SetText(fmt.Sprintf("%s -> %s", from, to))
	op.finish("")
	if to == "open" {
		op.autoDump(fmt.Sprintf("breaker opened on member %q", member))
	}
}

// Seq returns the operation's recorder-wide sequence number (0 for a
// nil op).
func (op *Op) Seq() uint64 {
	if op == nil {
		return 0
	}
	return op.ev.Seq
}

// Context tags ctx with this operation's ID (and trace ID, when one was
// minted) so downstream span trees can be joined back to the event
// ("qid" / "trace" annotations).
func (op *Op) Context(ctx context.Context) context.Context {
	if op == nil {
		return ctx
	}
	ctx = WithOpID(ctx, op.ev.Seq)
	if op.ev.TraceID != "" {
		ctx = WithTraceID(ctx, op.ev.TraceID)
	}
	return ctx
}

// SetTraceID records the facade-minted trace ID joining this event to
// span trees, journal records and WAL commit spans.
func (op *Op) SetTraceID(id string) {
	if op == nil || id == "" {
		return
	}
	op.ev.TraceID = id
}

// Journaling reports whether this op will be appended to the journal;
// callers use it to decide whether to render the full canonical answer.
func (op *Op) Journaling() bool { return op != nil && op.journal }

// Logging reports whether the structured event log will see this op.
func (op *Op) Logging() bool { return op != nil && op.r.Logging() }

// SetText sets the canonical statement rendering and its digest.
func (op *Op) SetText(text string) {
	if op == nil {
		return
	}
	op.ev.Text = text
	op.ev.Digest = Digest(text)
}

// SetPlanDigest hashes the static plan rendering into the event.
func (op *Op) SetPlanDigest(plan string) {
	if op == nil {
		return
	}
	op.ev.PlanDigest = Digest(plan)
}

// SetRows records the answer cardinality.
func (op *Op) SetRows(rows int) {
	if op == nil {
		return
	}
	op.ev.Rows = rows
}

// SetAnswer records the canonical answer rendering (journaled) plus its
// cardinality.
func (op *Op) SetAnswer(answer string, rows int) {
	if op == nil {
		return
	}
	op.answer = answer
	op.ev.Rows = rows
}

// SetWorkers records the parallelism degree the operation ran under.
// Sequential runs (n <= 1) leave the field zero so event renderings and
// journal records are unchanged from pre-parallel captures.
func (op *Op) SetWorkers(n int) {
	if op == nil || n <= 1 {
		return
	}
	op.ev.Workers = n
}

// SetPlanCache records the query's plan-cache outcome ("hit", "stale",
// "miss", "cold"). Unplanned runs (empty outcome) leave the field zero
// so event renderings and journal records are unchanged from pre-planner
// captures.
func (op *Op) SetPlanCache(outcome string) {
	if op == nil || outcome == "" {
		return
	}
	op.ev.PlanCache = outcome
}

// SetExec records an update request's outcome counters.
func (op *Op) SetExec(sum ExecSummary, changes int) {
	if op == nil {
		return
	}
	op.exec = &sum
	op.ev.Changes = changes
}

// SetDegraded records the federation degraded report and the conjuncts
// it caused to be skipped.
func (op *Op) SetDegraded(report string, skipped []string) {
	if op == nil {
		return
	}
	op.ev.Degraded = report
	op.ev.Skipped = skipped
}

// End closes the operation: stamps the duration, classifies slowness,
// publishes to the ring, emits the log line, appends the journal record
// and fires the auto-dump on error. End must be called exactly once.
func (op *Op) End(err error) {
	if op == nil {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	op.finish(msg)
	if msg != "" {
		op.autoDump(fmt.Sprintf("%s failed: %s", op.ev.Kind, msg))
	}
}

func (op *Op) finish(errMsg string) {
	op.ev.Duration = time.Since(op.start)
	op.ev.Err = errMsg
	if t := op.r.slowNS.Load(); t > 0 && int64(op.ev.Duration) >= t {
		op.ev.Slow = true
	}
	ev := &op.ev
	op.r.ring.Load().Put(ev)
	if lg := op.r.logger.Load(); lg != nil {
		lg.LogAttrs(context.Background(), level(ev), ev.Kind, attrs(ev)...)
	}
	if op.journal {
		if j := op.r.journal.Load(); j != nil {
			// Append assigns the journal-local sequence number.
			j.Append(Record{
				Kind:      ev.Kind,
				Text:      ev.Text,
				Digest:    ev.Digest,
				NS:        int64(ev.Duration),
				Rows:      ev.Rows,
				Answer:    op.answer,
				Exec:      op.exec,
				Degraded:  ev.Degraded,
				Workers:   ev.Workers,
				PlanCache: ev.PlanCache,
				TraceID:   ev.TraceID,
				Err:       ev.Err,
			})
		}
	}
}

func (op *Op) autoDump(why string) {
	r := op.r
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	if r.dump == nil {
		return
	}
	fmt.Fprintf(r.dump, "-- auto-dump: %s --\n", why)
	r.Dump(r.dump, false)
}

func level(ev *Event) slog.Level {
	switch {
	case ev.Err != "":
		return slog.LevelError
	case ev.Slow:
		return slog.LevelWarn
	}
	return slog.LevelInfo
}

func attrs(ev *Event) []slog.Attr {
	out := make([]slog.Attr, 0, 12)
	out = append(out,
		slog.Uint64("seq", ev.Seq),
		slog.Duration("dur", ev.Duration),
	)
	if ev.Text != "" {
		out = append(out, slog.String("text", ev.Text), slog.String("digest", ev.Digest))
	}
	if ev.PlanDigest != "" {
		out = append(out, slog.String("plan_digest", ev.PlanDigest))
	}
	if ev.Kind == KindQuery && ev.Err == "" {
		out = append(out, slog.Int("rows", ev.Rows))
	}
	if (ev.Kind == KindExec || ev.Kind == KindCall) && ev.Err == "" {
		out = append(out, slog.Int("changes", ev.Changes))
	}
	if len(ev.Skipped) > 0 {
		out = append(out, slog.Any("skipped", ev.Skipped))
	}
	if ev.Degraded != "" {
		out = append(out, slog.String("degraded", firstLine(ev.Degraded)))
	}
	if ev.Member != "" {
		out = append(out, slog.String("member", ev.Member))
	}
	if ev.Workers > 0 {
		out = append(out, slog.Int("workers", ev.Workers))
	}
	if ev.PlanCache != "" {
		out = append(out, slog.String("plan_cache", ev.PlanCache))
	}
	if ev.TraceID != "" {
		out = append(out, slog.String("trace", ev.TraceID))
	}
	if ev.Slow {
		out = append(out, slog.Bool("slow", true))
	}
	if ev.Err != "" {
		out = append(out, slog.String("err", ev.Err))
	}
	return out
}

type opIDKey struct{}

// WithOpID tags ctx with a recorder sequence number.
func WithOpID(ctx context.Context, seq uint64) context.Context {
	return context.WithValue(ctx, opIDKey{}, seq)
}

// OpID extracts the recorder sequence number from ctx (0 when absent).
func OpID(ctx context.Context) uint64 {
	if v, ok := ctx.Value(opIDKey{}).(uint64); ok {
		return v
	}
	return 0
}

type traceIDKey struct{}

// WithTraceID tags ctx with a facade-minted trace ID so spans created
// anywhere below the facade (member fetches, WAL commits, evaluator
// roots) can carry the same correlation key.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceID extracts the trace ID from ctx ("" when absent).
func TraceID(ctx context.Context) string {
	if v, ok := ctx.Value(traceIDKey{}).(string); ok {
		return v
	}
	return ""
}
