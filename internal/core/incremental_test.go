package core

import (
	"testing"

	"idl/internal/object"
)

func incrementalEngine(t *testing.T) *Engine {
	t.Helper()
	opts := DefaultOptions()
	opts.IncrementalViews = true
	e := NewEngineWithOptions(opts)
	buildStockBase(t, e)
	return e
}

// monotoneRules is a negation-free subset of the unified-view rules.
var monotoneRules = []string{
	".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)",
	".dbI.p+(.date=D, .stk=S, .price=P) <- .ource.S(.date=D, .clsPrice=P)",
	".dbO.S+(.date=D, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
}

func TestIncrementalAfterInsert(t *testing.T) {
	e := incrementalEngine(t)
	addRules(t, e, monotoneRules)
	if ans := q(t, e, "?.dbI.p(.stk=S)"); ans.Len() != 3 {
		t.Fatalf("initial stocks = %d", ans.Len())
	}
	if e.LastRecompute().Incremental {
		t.Error("first materialization must be full")
	}
	exec(t, e, "?.euter.r+(.date=3/4/85,.stkCode=dec,.clsPrice=80)")
	ans := q(t, e, "?.dbO.dec(.date=3/4/85,.clsPrice=P)")
	if !ans.Contains(row("P", 80)) {
		t.Fatalf("incremental view missing new fact:\n%s", ans)
	}
	if !e.LastRecompute().Incremental {
		t.Error("additive change should take the incremental path")
	}
}

func TestIncrementalFallsBackOnDelete(t *testing.T) {
	e := incrementalEngine(t)
	addRules(t, e, monotoneRules)
	q(t, e, "?.dbI.p(.stk=S)") // materialize
	exec(t, e, "?.euter.r-(.stkCode=hp), .ource-.hp")
	ans := q(t, e, "?.dbI.p(.stk=hp)")
	if ans.Bool() {
		t.Error("deleted facts must vanish from the view")
	}
	if e.LastRecompute().Incremental {
		t.Error("deletion must force full recomputation")
	}
}

func TestIncrementalDisabledForNegationRules(t *testing.T) {
	e := incrementalEngine(t)
	addRules(t, e, monotoneRules)
	// A rule with negation makes derivation non-monotone.
	mustRule(t, e, ".dbI.pnew+(.date=D,.stk=S,.price=P) <- .dbI.p(.date=D,.stk=S,.price=P), .dbI.p~(.date=D,.stk=S,.price>P)")
	q(t, e, "?.dbI.pnew(.stk=S)")
	exec(t, e, "?.euter.r+(.date=3/4/85,.stkCode=dec,.clsPrice=80)")
	q(t, e, "?.dbI.pnew(.stk=dec)")
	if e.LastRecompute().Incremental {
		t.Error("negation in the rule set must disable the incremental path")
	}
}

func TestIncrementalMatchesFullRecompute(t *testing.T) {
	// The incremental engine's view must equal a fresh engine's view
	// after the same sequence of additive updates.
	inc := incrementalEngine(t)
	full := newStockEngine(t)
	addRules(t, inc, monotoneRules)
	addRules(t, full, monotoneRules)
	updates := []string{
		"?.euter.r+(.date=3/4/85,.stkCode=dec,.clsPrice=80)",
		"?.ource.dec+(.date=3/5/85,.clsPrice=81)",
		"?.euter.r+(.date=3/5/85,.stkCode=next,.clsPrice=12)",
	}
	for _, u := range updates {
		exec(t, inc, u)
		exec(t, full, u)
		// Query both after every step to force alternating refresh modes.
		a := q(t, inc, "?.dbI.p(.date=D,.stk=S,.price=P)")
		b := q(t, full, "?.dbI.p(.date=D,.stk=S,.price=P)")
		a.Sort()
		b.Sort()
		if a.String() != b.String() {
			t.Fatalf("incremental diverged after %s:\n%s\nvs\n%s", u, a, b)
		}
	}
	effInc, err := inc.EffectiveUniverse()
	if err != nil {
		t.Fatal(err)
	}
	effFull, err := full.EffectiveUniverse()
	if err != nil {
		t.Fatal(err)
	}
	dbOInc, _ := effInc.Get("dbO")
	dbOFull, _ := effFull.Get("dbO")
	if !dbOInc.Equal(dbOFull) {
		t.Error("higher-order view diverged between incremental and full")
	}
}

func TestIncrementalExternalInvalidateForcesFull(t *testing.T) {
	e := incrementalEngine(t)
	addRules(t, e, monotoneRules)
	q(t, e, "?.dbI.p(.stk=S)")
	// Direct base mutation + Invalidate is treated as non-monotone. The
	// fact must vanish from both sources feeding the view.
	rel := relation(t, e, "euter", "r")
	rel.RemoveWhere(func(o object.Object) bool {
		tp, ok := o.(*object.Tuple)
		if !ok {
			return false
		}
		v, _ := tp.Get("stkCode")
		return v.Equal(object.Str("hp"))
	})
	ource, _ := e.Base().Get("ource")
	ource.(*object.Tuple).Delete("hp")
	e.Invalidate()
	if ans := q(t, e, "?.dbI.p(.stk=hp)"); ans.Bool() {
		t.Error("external deletion must be reflected (full recompute)")
	}
	if e.LastRecompute().Incremental {
		t.Error("external invalidation must force full recomputation")
	}
}
