// Package core implements the IDL evaluation engine: higher-order query
// expressions (paper §4), update expressions (§5), higher-order views with
// stratified materialization (§6), and update programs with view
// updatability (§7).
package core

import (
	"sort"
	"strings"

	"idl/internal/federation"
	"idl/internal/object"
)

// Env is a substitution (paper §4.2): a mapping from variable names to
// objects, extended and retracted as the evaluator backtracks. The trail
// records bind order so enumeration can undo extensions cheaply.
type Env struct {
	bindings map[string]object.Object
	trail    []string
}

// NewEnv returns an empty substitution.
func NewEnv() *Env {
	return &Env{bindings: make(map[string]object.Object)}
}

// Lookup returns the binding for name, if any.
func (e *Env) Lookup(name string) (object.Object, bool) {
	v, ok := e.bindings[name]
	return v, ok
}

// Bound reports whether name is bound.
func (e *Env) Bound(name string) bool {
	_, ok := e.bindings[name]
	return ok
}

// Bind associates name with val. The variable must be unbound; enumerators
// guarantee this by checking Lookup first.
func (e *Env) Bind(name string, val object.Object) {
	if _, ok := e.bindings[name]; ok {
		panic("core: Bind of already-bound variable " + name)
	}
	e.bindings[name] = val
	e.trail = append(e.trail, name)
}

// Mark returns the current trail position, for use with Undo.
func (e *Env) Mark() int { return len(e.trail) }

// Undo retracts every binding made since mark.
func (e *Env) Undo(mark int) {
	for i := len(e.trail) - 1; i >= mark; i-- {
		delete(e.bindings, e.trail[i])
	}
	e.trail = e.trail[:mark]
}

// Snapshot copies the current bindings restricted to names (all bindings
// when names is nil).
func (e *Env) Snapshot(names []string) map[string]object.Object {
	if names == nil {
		out := make(map[string]object.Object, len(e.bindings))
		for k, v := range e.bindings {
			out[k] = v
		}
		return out
	}
	out := make(map[string]object.Object, len(names))
	for _, n := range names {
		if v, ok := e.bindings[n]; ok {
			out[n] = v
		}
	}
	return out
}

// withBindings seeds an env from a parameter map (used by update-program
// invocation).
func envFrom(params map[string]object.Object) *Env {
	e := NewEnv()
	for k, v := range params {
		e.Bind(k, v)
	}
	return e
}

// ---------------------------------------------------------------------------
// Answers

// Row is one answer substitution, restricted to the query's free
// variables.
type Row map[string]object.Object

// hashRow produces a hash of the row for deduplication, combining
// name/value entry hashes commutatively.
func hashRow(r Row) uint64 {
	var acc uint64 = 0x243f6a8885a308d3
	for k, v := range r {
		h := object.Str(k).Hash() * 31
		acc += h ^ v.Hash()
	}
	return acc
}

func rowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}

// Answer is the result of a query: the set of grounding substitutions for
// its free variables (paper §4.2). A query with no variables has an empty
// Vars list and Bool carries the truth value.
type Answer struct {
	Vars []string // free variables in first-occurrence order
	Rows []Row    // deduplicated satisfying substitutions

	// Degraded, when non-nil, reports that the answer was computed
	// best-effort against a federation with unreachable members: which
	// members failed and which conjuncts were skipped. nil for single-site
	// queries and fully healthy federations in fail-fast mode.
	Degraded *federation.Report

	// Plan, when non-nil, reports how the query was planned: whether the
	// compiled plan came from the cache ("hit"), was revalidated after an
	// epoch move ("stale"), was compiled fresh ("miss"), or bypassed the
	// cache ("cold"), plus compile time when a compile happened. nil for
	// interpreted, unscheduled, and traced evaluations, which do not use
	// the planner.
	Plan *PlanInfo

	// Resources is this query's resource-accounting record: the evaluator
	// work it consumed (scans, probes, enumerations), the rows it emitted,
	// and the fixpoint rounds of any view rematerialization it triggered.
	// Deterministic at every worker count.
	Resources Resources

	rowIndex map[uint64][]int
}

func newAnswer(vars []string) *Answer {
	return &Answer{Vars: vars, rowIndex: make(map[uint64][]int)}
}

// add appends a row unless an equal row is already present.
func (a *Answer) add(r Row) bool {
	h := hashRow(r)
	for _, i := range a.rowIndex[h] {
		if rowsEqual(a.Rows[i], r) {
			return false
		}
	}
	a.rowIndex[h] = append(a.rowIndex[h], len(a.Rows))
	a.Rows = append(a.Rows, r)
	return true
}

// Bool reports the truth value: for variable-free queries, whether the
// query was satisfied; otherwise whether any row exists.
func (a *Answer) Bool() bool { return len(a.Rows) > 0 }

// Len returns the number of distinct answer rows.
func (a *Answer) Len() int { return len(a.Rows) }

// Contains reports whether the answer includes a row binding the given
// variables to the given values (converted Go literals, see object
// package).
func (a *Answer) Contains(want Row) bool {
	for _, r := range a.Rows {
		if rowsEqual(r, want) {
			return true
		}
	}
	return false
}

// Column returns the values of one variable across all rows, in row
// order.
func (a *Answer) Column(name string) []object.Object {
	out := make([]object.Object, 0, len(a.Rows))
	for _, r := range a.Rows {
		if v, ok := r[name]; ok {
			out = append(out, v)
		}
	}
	return out
}

// Project returns a new answer restricted to the given variables,
// deduplicating rows that become equal under the narrower view (the
// "structure to the answer" the paper alludes to in §4.2).
func (a *Answer) Project(vars ...string) *Answer {
	out := newAnswer(vars)
	for _, r := range a.Rows {
		p := Row{}
		for _, v := range vars {
			if val, ok := r[v]; ok {
				p[v] = val
			}
		}
		out.add(p)
	}
	return out
}

// Sort orders rows canonically (by each variable in Vars order) for
// deterministic output.
func (a *Answer) Sort() {
	sort.SliceStable(a.Rows, func(i, j int) bool {
		for _, v := range a.Vars {
			x, okx := a.Rows[i][v]
			y, oky := a.Rows[j][v]
			if !okx || !oky {
				if okx != oky {
					return !okx
				}
				continue
			}
			if c := x.Compare(y); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// String renders the answer as a small table: a header of variable names
// and one line per row, canonically ordered. Variable-free answers render
// as "true"/"false".
func (a *Answer) String() string {
	if len(a.Vars) == 0 {
		if a.Bool() {
			return "true"
		}
		return "false"
	}
	cp := &Answer{Vars: a.Vars, Rows: append([]Row(nil), a.Rows...)}
	cp.Sort()
	var b strings.Builder
	b.WriteString(strings.Join(a.Vars, "\t"))
	for _, r := range cp.Rows {
		b.WriteByte('\n')
		for i, v := range a.Vars {
			if i > 0 {
				b.WriteByte('\t')
			}
			if val, ok := r[v]; ok {
				b.WriteString(val.String())
			} else {
				b.WriteString("_")
			}
		}
	}
	return b.String()
}
