package core

import (
	"fmt"
	"testing"

	"idl/internal/object"
	"idl/internal/parser"
)

// Moderate-scale correctness: at tens of thousands of tuples, the indexed
// and scanning evaluators must agree exactly, updates must stay coherent,
// and views must track.
func TestStressLargeRelationIndexScanAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const n = 20000
	build := func(useIndex bool) *Engine {
		opts := DefaultOptions()
		opts.UseIndex = useIndex
		e := NewEngineWithOptions(opts)
		rel := object.NewSet()
		for i := 0; i < n; i++ {
			// val cycles within each group so cross-group joins match.
			rel.Add(object.TupleOf(
				"id", i,
				"grp", fmt.Sprintf("g%03d", i%200),
				"val", (i/200)%100,
			))
		}
		d := object.NewTuple()
		d.Put("r", rel)
		e.Base().Put("d", d)
		e.Invalidate()
		return e
	}
	indexed, scanning := build(true), build(false)
	queries := []string{
		"?.d.r(.grp=g007, .val=V)",
		"?.d.r(.grp=g007, .val=V), .d.r(.grp=g008, .val=V)",
		"?.d.r(.grp=g001, .val=V), .d.r~(.grp=g001, .val>V)",
	}
	for _, src := range queries {
		a := q(t, indexed, src)
		b := q(t, scanning, src)
		a.Sort()
		b.Sort()
		if a.String() != b.String() {
			t.Errorf("index/scan disagreement on %s: %d vs %d rows", src, a.Len(), b.Len())
		}
		if a.Len() == 0 {
			t.Errorf("query %s found nothing (bad fixture)", src)
		}
	}
	// Targeted deletion stays O(matching) correct.
	res := exec(t, indexed, "?.d.r-(.grp=g007)")
	if res.ElemsDeleted != n/200 {
		t.Errorf("deleted %d, want %d", res.ElemsDeleted, n/200)
	}
	if ans := q(t, indexed, "?.d.r(.grp=g007)"); ans.Bool() {
		t.Error("g007 should be empty")
	}
	if ans := q(t, indexed, "?.d.r(.grp=g008, .val=V)"); ans.Len() == 0 {
		t.Error("other groups must survive")
	}
}

func TestStressViewOverLargeBase(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	e := NewEngine()
	rel := object.NewSet()
	const n = 10000
	for i := 0; i < n; i++ {
		rel.Add(object.TupleOf("k", i, "grp", fmt.Sprintf("g%02d", i%50), "v", i%100))
	}
	d := object.NewTuple()
	d.Put("r", rel)
	e.Base().Put("d", d)
	e.Invalidate()
	// Higher-order view: one relation per group (50 relations × 100 max).
	mustRule(t, e, ".byGroup.G+(.k=K, .v=V) <- .d.r(.grp=G, .k=K, .v=V)")
	ans := q(t, e, "?.byGroup.Y")
	if ans.Len() != 50 {
		t.Fatalf("group relations = %d, want 50", ans.Len())
	}
	ans = q(t, e, "?.byGroup.g07(.k=K)")
	if ans.Len() != n/50 {
		t.Errorf("g07 rows = %d, want %d", ans.Len(), n/50)
	}
	st := e.LastRecompute()
	if st.FactsDerived != n {
		t.Errorf("derived %d facts, want %d", st.FactsDerived, n)
	}
}

func TestStressManySmallUpdates(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	e := NewEngine()
	e.Base().Put("d", object.NewTuple())
	e.Invalidate()
	exec(t, e, "?.d+.r()")
	const n = 3000
	for i := 0; i < n; i++ {
		query, err := parser.ParseQuery(fmt.Sprintf("?.d.r+(.k=%d, .v=%d)", i, i%7))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Execute(query); err != nil {
			t.Fatal(err)
		}
	}
	if got := relation(t, e, "d", "r").Len(); got != n {
		t.Fatalf("rows = %d, want %d", got, n)
	}
	// Delete every third.
	res := exec(t, e, "?.d.r(.k=K, .v=0), .d.r-(.k=K)")
	if res.ElemsDeleted == 0 {
		t.Error("nothing deleted")
	}
	if got := relation(t, e, "d", "r").Len(); got != n-res.ElemsDeleted {
		t.Errorf("rows = %d after deleting %d", got, res.ElemsDeleted)
	}
}
