package core

import (
	"idl/internal/object"
)

// Metadata reification (extension). The paper's §2 asks for "queries
// about the databases and the information they contain" and §8 suggests
// extending the reasoning to further schema information. Higher-order
// variables already quantify over names; reification additionally makes
// the schema available as ordinary *data*, so first-order joins,
// counting-style comparisons and views can be written over it.
//
// With Options.ExposeMeta, every effective universe carries a synthetic
// database named `meta`:
//
//	meta.databases  {(db)}                one tuple per database
//	meta.relations  {(db, rel, tuples)}   one per relation, with cardinality
//	meta.attributes {(db, rel, attr)}     one per attribute occurrence
//
// The meta database reflects the *effective* universe — base and derived
// alike — so a higher-order view's data-dependent schema is itself
// queryable. `meta` is reserved: if a user database of that name exists,
// reification is skipped for that refresh.

// MetaDB is the reserved name of the reified-metadata database.
const MetaDB = "meta"

// buildMeta constructs the meta database for an effective universe.
func buildMeta(eff *object.Tuple) *object.Tuple {
	databases := object.NewSet()
	relations := object.NewSet()
	attributes := object.NewSet()
	eff.Each(func(dbName string, dbObj object.Object) bool {
		databases.Add(object.TupleOf("db", dbName))
		dbt, ok := dbObj.(*object.Tuple)
		if !ok {
			return true
		}
		dbt.Each(func(relName string, relObj object.Object) bool {
			rs, ok := relObj.(*object.Set)
			if !ok {
				return true
			}
			relations.Add(object.TupleOf("db", dbName, "rel", relName, "tuples", rs.Len()))
			seen := map[string]bool{}
			rs.Each(func(e object.Object) bool {
				t, ok := e.(*object.Tuple)
				if !ok {
					return true
				}
				for _, a := range t.Attrs() {
					if !seen[a] {
						seen[a] = true
						attributes.Add(object.TupleOf("db", dbName, "rel", relName, "attr", a))
					}
				}
				return true
			})
			return true
		})
		return true
	})
	meta := object.NewTuple()
	meta.Put("databases", databases)
	meta.Put("relations", relations)
	meta.Put("attributes", attributes)
	return meta
}
