package core

import (
	"errors"
	"fmt"

	"idl/internal/ast"
	"idl/internal/object"
	"idl/internal/obs"
)

// ExecResult tallies the effects of an update request.
type ExecResult struct {
	ElemsInserted int // set elements added
	ElemsDeleted  int // set elements removed
	AttrsCreated  int // tuple attributes created or reset
	AttrsDeleted  int // tuple attributes deleted
	ValuesSet     int // atomic values replaced (incl. nulled)
	Bindings      int // substitutions the request's query parts produced

	// Resources is the request's resource-accounting record (scans,
	// probes, fixpoint rounds triggered); TuplesEmitted carries Bindings.
	Resources Resources
}

func (r *ExecResult) total() int {
	return r.ElemsInserted + r.ElemsDeleted + r.AttrsCreated + r.AttrsDeleted + r.ValuesSet
}

// Changed reports whether the request mutated anything.
func (r *ExecResult) Changed() bool { return r.total() > 0 }

// InsertUnboundError reports a `+` expression evaluated with an unbound
// variable — the condition the paper's insStk discussion flags: "if any of
// the arguments is not given then the plus expressions are not defined"
// (§7.1).
type InsertUnboundError struct {
	Var  string
	Expr ast.Expr
}

func (e *InsertUnboundError) Error() string {
	return fmt.Sprintf("insert expression %q is undefined: variable %s is unbound", e.Expr.String(), e.Var)
}

// undoLog records inverse mutations; rollback applies them in reverse.
type undoLog struct {
	entries []func()
}

func (u *undoLog) record(fn func()) { u.entries = append(u.entries, fn) }

func (u *undoLog) rollback() {
	for i := len(u.entries) - 1; i >= 0; i-- {
		u.entries[i]()
	}
	u.entries = nil
}

// updater executes update requests (§5.2). Query parts locate targets and
// bind variables; signed parts mutate. All mutations are journaled so a
// failing request rolls back completely (requests are atomic).
type updater struct {
	ev     *evaluator
	undo   *undoLog
	result *ExecResult
	// cow, when set, is the engine's copy-on-write barrier (version.go):
	// called before navigating into a set that may be shared with a live
	// MVCC snapshot, it returns the writer-private set to mutate (cloning
	// and re-parenting it if needed, with rollback recorded). Nil when the
	// updater works on structures no snapshot can see (rule
	// materialization into fresh derived overlays).
	cow func(parent *object.Tuple, attr string, s *object.Set) *object.Set
	// span is the current position in the traced update call tree (nil
	// when tracing is off); program invocations hang children off it.
	span *obs.Span
}

// validateUpdateConjunct rejects update signs under negation and inside
// constraints — neither has defined semantics.
func validateUpdateConjunct(e ast.Expr) error {
	var err error
	ast.Walk(e, func(node ast.Expr) bool {
		if n, ok := node.(*ast.Not); ok && ast.HasUpdate(n.X) {
			err = fmt.Errorf("core: update expression under negation: %q", n.String())
			return false
		}
		return true
	})
	return err
}

// slot is a writable location holding the object currently being updated,
// so atomic plus/minus can replace values in place.
type slot interface {
	set(u *updater, val object.Object)
	settable() bool
}

// noSlot is the root universe position — not replaceable.
type noSlot struct{}

func (noSlot) set(*updater, object.Object) { panic("core: set on root slot") }
func (noSlot) settable() bool              { return false }

// tupleSlot is a tuple attribute position.
type tupleSlot struct {
	tup  *object.Tuple
	attr string
}

func (s tupleSlot) settable() bool { return true }

func (s tupleSlot) set(u *updater, val object.Object) {
	old, had := s.tup.Get(s.attr)
	s.tup.Put(s.attr, val)
	u.undo.record(func() {
		if had {
			s.tup.Put(s.attr, old)
		} else {
			s.tup.Delete(s.attr)
		}
	})
}

// execUpdate applies an update expression (or navigates an unsigned
// expression containing updates) to obj.
func (u *updater) execUpdate(e ast.Expr, obj object.Object, sl slot) error {
	switch x := e.(type) {
	case *ast.AttrExpr:
		return u.execAttr(x, obj, sl)
	case *ast.TupleExpr:
		return u.execTupleConjuncts(x.Conjuncts, obj, sl)
	case *ast.SetExpr:
		return u.execSet(x, obj)
	case *ast.Atomic:
		return u.execAtomic(x, obj, sl)
	default:
		return fmt.Errorf("core: expression %q cannot appear in update position", e.String())
	}
}

// execAttr handles the three attribute-conjunct forms on a tuple object:
// navigation (sign none), tuple plus (create/reset attribute, §5.2), and
// tuple minus (delete attribute when its object satisfies the
// condition).
func (u *updater) execAttr(x *ast.AttrExpr, obj object.Object, sl slot) error {
	tup, ok := obj.(*object.Tuple)
	if !ok {
		return fmt.Errorf("core: attribute expression %q applied to %s object", x.String(), obj.Kind())
	}
	names, enumerated, err := u.resolveAttrNames(x, tup)
	if err != nil {
		return err
	}
	switch x.Sign {
	case ast.SignPlus:
		if enumerated {
			return &InsertUnboundError{Var: x.Name.(ast.Var).Name, Expr: x}
		}
		for _, name := range names {
			val, err := u.buildPlus(x.Expr)
			if err != nil {
				return err
			}
			tupleSlot{tup: tup, attr: name}.set(u, val)
			u.result.AttrsCreated++
		}
		return nil

	case ast.SignMinus:
		for _, name := range names {
			val, ok := tup.Get(name)
			if !ok {
				continue
			}
			mark := u.ev.env.Mark()
			bindLocalName(u.ev.env, x.Name, name, enumerated)
			sat, err := u.ev.exists(x.Expr, val)
			u.ev.env.Undo(mark)
			if err != nil {
				return err
			}
			if !sat {
				continue
			}
			old, _ := tup.Get(name)
			tup.Delete(name)
			nameCopy := name
			u.undo.record(func() { tup.Put(nameCopy, old) })
			u.result.AttrsDeleted++
		}
		return nil

	default: // navigation
		matched := false
		for _, name := range names {
			val, ok := tup.Get(name)
			if !ok {
				continue
			}
			// Navigating into a set with updates below will mutate it:
			// copy-on-write first if a live snapshot shares it. Tuples need
			// no barrier — snapshots carry private tuple skeletons.
			if s, isSet := val.(*object.Set); isSet && u.cow != nil {
				val = u.cow(tup, name, s)
			}
			matched = true
			mark := u.ev.env.Mark()
			bindLocalName(u.ev.env, x.Name, name, enumerated)
			err := u.execUpdate(x.Expr, val, tupleSlot{tup: tup, attr: name})
			u.ev.env.Undo(mark)
			if err != nil {
				return err
			}
		}
		if !matched && !enumerated {
			// Navigate-or-create: a purely additive nested update may
			// create the missing attribute — this is what lets the
			// paper's insStk clause `.ource.S+(…)` insert a stock whose
			// relation does not exist yet (§7.1). The universe root is
			// exempt: databases are created by DDL, not by navigation, so
			// a mistyped database name stays an error.
			if sl.settable() && purelyAdditive(x.Expr) {
				empty := emptyFor(x.Expr)
				if empty == nil {
					return fmt.Errorf("core: cannot infer object kind for %q", x.Expr.String())
				}
				tupleSlot{tup: tup, attr: names[0]}.set(u, empty)
				u.result.AttrsCreated++
				return u.execUpdate(x.Expr, empty, tupleSlot{tup: tup, attr: names[0]})
			}
			return fmt.Errorf("core: no attribute %q to update", names[0])
		}
		return nil
	}
}

// purelyAdditive reports whether every update sign in e is a plus and at
// least one is present — the condition under which navigation may create
// missing attributes on the way down.
func purelyAdditive(e ast.Expr) bool {
	plus, minus := false, false
	ast.Walk(e, func(node ast.Expr) bool {
		switch x := node.(type) {
		case *ast.Atomic:
			switch x.Sign {
			case ast.SignPlus:
				plus = true
			case ast.SignMinus:
				minus = true
			}
		case *ast.AttrExpr:
			switch x.Sign {
			case ast.SignPlus:
				plus = true
			case ast.SignMinus:
				minus = true
			}
		case *ast.SetExpr:
			switch x.Sign {
			case ast.SignPlus:
				plus = true
			case ast.SignMinus:
				minus = true
			}
		}
		return !minus
	})
	return plus && !minus
}

// resolveAttrNames determines which attribute(s) an AttrExpr addresses:
// a constant name, a bound variable's value, or — for an unbound variable
// — every attribute of the tuple (the paper's delStk-without-stock
// wildcard semantics, §7.1).
func (u *updater) resolveAttrNames(x *ast.AttrExpr, tup *object.Tuple) (names []string, enumerated bool, err error) {
	switch name := x.Name.(type) {
	case ast.Const:
		s, ok := name.Value.(object.Str)
		if !ok {
			return nil, false, fmt.Errorf("core: attribute name %s is not a string", name.Value)
		}
		return []string{string(s)}, false, nil
	case ast.Var:
		if bound, ok := u.ev.env.Lookup(name.Name); ok {
			s, ok := bound.(object.Str)
			if !ok {
				return nil, false, fmt.Errorf("core: attribute variable %s bound to non-string %s", name.Name, bound)
			}
			return []string{string(s)}, false, nil
		}
		return append([]string(nil), tup.Attrs()...), true, nil
	default:
		return nil, false, fmt.Errorf("core: attribute name must be constant or variable")
	}
}

// bindLocalName binds an enumerated attribute variable for the duration
// of one attribute's processing.
func bindLocalName(env *Env, nameTerm ast.Term, name string, enumerated bool) {
	if !enumerated {
		return
	}
	if v, ok := nameTerm.(ast.Var); ok && !env.Bound(v.Name) {
		env.Bind(v.Name, object.Str(name))
	}
}

// execSet handles set plus (insert a new element made true by the inner
// expression), set minus (delete every element satisfying it), and
// navigation into elements for updates nested below.
func (u *updater) execSet(x *ast.SetExpr, obj object.Object) error {
	set, ok := obj.(*object.Set)
	if !ok {
		return fmt.Errorf("core: set expression %q applied to %s object", x.String(), obj.Kind())
	}
	switch x.Sign {
	case ast.SignPlus:
		elem, err := u.buildPlus(x.X)
		if err != nil {
			return err
		}
		if set.Add(elem) {
			u.undo.record(func() { set.Remove(elem) })
			u.result.ElemsInserted++
		}
		return nil

	case ast.SignMinus:
		var victims []object.Object
		var failure error
		set.Each(func(elem object.Object) bool {
			sat, err := u.ev.exists(x.X, elem)
			if err != nil {
				failure = err
				return false
			}
			if sat {
				victims = append(victims, elem)
			}
			return true
		})
		if failure != nil {
			return failure
		}
		for _, elem := range victims {
			if set.Remove(elem) {
				el := elem
				u.undo.record(func() { set.Add(el) })
				u.result.ElemsDeleted++
			}
		}
		return nil

	default: // navigation into elements carrying nested updates
		return u.execSetElements(x.X, set)
	}
}

// execTupleConjuncts handles a conjunct list containing updates applied
// to a tuple object (e.g. navigating `.ource-.S`, or a mixed list like
// `.date=D, -.hp=C` on one tuple): query conjuncts bind local
// substitutions against the tuple, then the update conjuncts apply under
// each.
func (u *updater) execTupleConjuncts(conjuncts []ast.Expr, obj object.Object, sl slot) error {
	queryParts, updateParts := splitTupleParts(conjuncts)
	var locals []map[string]object.Object
	dedupe := newAnswer(nil)
	base := u.ev.env.Snapshot(nil)
	err := u.satisfyAll(queryParts, obj, func() error {
		snap := u.ev.env.Snapshot(nil)
		if dedupe.add(snap) {
			locals = append(locals, snap)
		}
		return nil
	})
	if err != nil {
		return err
	}
	defer func() { u.ev.env = envFrom(base) }()
	for _, local := range locals {
		u.ev.env = envFrom(local)
		for _, part := range updateParts {
			if err := u.execUpdate(part, obj, sl); err != nil {
				return err
			}
		}
	}
	return nil
}

func splitTupleParts(conjuncts []ast.Expr) (queryParts, updateParts []ast.Expr) {
	for _, c := range conjuncts {
		if ast.HasUpdate(c) {
			updateParts = append(updateParts, c)
		} else {
			queryParts = append(queryParts, c)
		}
	}
	return queryParts, updateParts
}

// execSetElements applies an inner expression containing updates to every
// element it matches. For each element, the query parts of the inner
// conjunct list are matched first (binding local variables); the update
// parts then apply under each local substitution. The mutation lands on
// a deep clone of the element: the original is removed, the clone
// mutated and re-added — keeping the set's hash index coherent, merging
// any elements that became equal (set semantics), and, crucially for
// MVCC, never touching the original element, which readers of an older
// snapshot may still reach through a pre-COW copy of this set (set
// clones are shallow; elements are shared by pointer).
func (u *updater) execSetElements(inner ast.Expr, set *object.Set) error {
	queryParts, updateParts := splitParts(inner)
	for _, elem := range set.Elems() {
		// Collect the local substitutions before mutating.
		var locals []map[string]object.Object
		dedupe := newAnswer(nil)
		base := u.ev.env.Snapshot(nil)
		err := u.satisfyAll(queryParts, elem, func() error {
			snap := u.ev.env.Snapshot(nil)
			if dedupe.add(snap) {
				locals = append(locals, snap)
			}
			return nil
		})
		if err != nil {
			return err
		}
		if len(locals) == 0 {
			continue
		}
		work := elem.Clone()
		set.Remove(elem)
		for _, local := range locals {
			u.ev.env = envFrom(local)
			for _, part := range updateParts {
				if err := u.execUpdate(part, work, noSlot{}); err != nil {
					u.ev.env = envFrom(base)
					set.Add(elem)
					return err
				}
			}
		}
		u.ev.env = envFrom(base)
		added := set.Add(work)
		el, wk := elem, work
		u.undo.record(func() {
			if added {
				set.Remove(wk)
			}
			set.Add(el)
		})
	}
	return nil
}

// splitParts separates an inner expression into query conjuncts (no
// update signs) and update conjuncts, preserving order within each
// class. A non-conjunct inner expression with updates is a single update
// part applying to every element.
func splitParts(inner ast.Expr) (queryParts, updateParts []ast.Expr) {
	te, ok := inner.(*ast.TupleExpr)
	if !ok {
		if ast.HasUpdate(inner) {
			return nil, []ast.Expr{inner}
		}
		return []ast.Expr{inner}, nil
	}
	for _, c := range te.Conjuncts {
		if ast.HasUpdate(c) {
			updateParts = append(updateParts, c)
		} else {
			queryParts = append(queryParts, c)
		}
	}
	return queryParts, updateParts
}

// satisfyAll enumerates extensions satisfying every conjunct on obj.
func (u *updater) satisfyAll(conjuncts []ast.Expr, obj object.Object, k cont) error {
	if len(conjuncts) == 0 {
		return k()
	}
	return u.ev.satisfy(&ast.TupleExpr{Conjuncts: conjuncts}, obj, k)
}

// execAtomic handles `+=c` (replace the value, making `=c` true hence
// forth) and `-=c` (replace with null when the value satisfies `=c`). An
// unbound variable in `-=X` binds to the current value first, so
// `.hp-=C` nulls unconditionally while exporting nothing (§5.2).
func (u *updater) execAtomic(x *ast.Atomic, obj object.Object, sl slot) error {
	if !obj.Kind().IsAtomic() {
		return fmt.Errorf("core: atomic update %q applied to %s object", x.String(), obj.Kind())
	}
	if !sl.settable() {
		return fmt.Errorf("core: atomic update %q has no enclosing location", x.String())
	}
	switch x.Sign {
	case ast.SignPlus:
		val, err := evalTerm(x.Term, u.ev.env)
		if err != nil {
			return insertErrFrom(err, x)
		}
		sl.set(u, val)
		u.result.ValuesSet++
		return nil
	case ast.SignMinus:
		if name, ok := singleUnboundVar(x.Term, u.ev.env); ok {
			// Bind locally to the current value; null satisfies nothing,
			// so a null value stays null (no-op).
			if _, isNull := obj.(object.Null); isNull {
				return nil
			}
			_ = name
			sl.set(u, object.Null{})
			u.result.ValuesSet++
			return nil
		}
		val, err := evalTerm(x.Term, u.ev.env)
		if err != nil {
			return err
		}
		if compare(ast.OpEQ, obj, val) {
			sl.set(u, object.Null{})
			u.result.ValuesSet++
		}
		return nil
	default:
		return fmt.Errorf("core: unsigned atomic expression %q in update position", x.String())
	}
}

// buildPlus constructs the object a plus expression decrees into
// existence: the paper's "create an empty object and recursively evaluate
// +exp on it" (§5.2), with the sign propagating through the whole
// sub-expression. All terms must be ground.
func (u *updater) buildPlus(e ast.Expr) (object.Object, error) {
	switch x := e.(type) {
	case ast.Epsilon:
		// `+()` — an empty object; it concretizes as an empty tuple,
		// the common element shape for relations.
		return object.NewTuple(), nil
	case *ast.Atomic:
		if x.Op != ast.OpEQ {
			return nil, fmt.Errorf("core: insert requires simple expressions; %q is not", x.String())
		}
		val, err := evalTerm(x.Term, u.ev.env)
		if err != nil {
			return nil, insertErrFrom(err, x)
		}
		return cloneForStore(val), nil
	case *ast.AttrExpr:
		tup := object.NewTuple()
		if err := u.putPlusAttr(tup, x); err != nil {
			return nil, err
		}
		return tup, nil
	case *ast.TupleExpr:
		tup := object.NewTuple()
		for _, c := range x.Conjuncts {
			a, ok := c.(*ast.AttrExpr)
			if !ok {
				return nil, fmt.Errorf("core: insert requires attribute conjuncts; %q is not", c.String())
			}
			if err := u.putPlusAttr(tup, a); err != nil {
				return nil, err
			}
		}
		return tup, nil
	case *ast.SetExpr:
		s := object.NewSet()
		if _, isEps := x.X.(ast.Epsilon); !isEps {
			elem, err := u.buildPlus(x.X)
			if err != nil {
				return nil, err
			}
			s.Add(elem)
		}
		return s, nil
	default:
		return nil, fmt.Errorf("core: expression %q cannot be inserted", e.String())
	}
}

func (u *updater) putPlusAttr(tup *object.Tuple, a *ast.AttrExpr) error {
	if a.Sign == ast.SignMinus {
		return fmt.Errorf("core: minus expression %q inside an insert", a.String())
	}
	var name string
	switch n := a.Name.(type) {
	case ast.Const:
		s, ok := n.Value.(object.Str)
		if !ok {
			return fmt.Errorf("core: attribute name %s is not a string", n.Value)
		}
		name = string(s)
	case ast.Var:
		bound, ok := u.ev.env.Lookup(n.Name)
		if !ok {
			return &InsertUnboundError{Var: n.Name, Expr: a}
		}
		s, ok := bound.(object.Str)
		if !ok {
			return fmt.Errorf("core: attribute variable %s bound to non-string %s", n.Name, bound)
		}
		name = string(s)
	default:
		return fmt.Errorf("core: attribute name must be constant or variable")
	}
	val, err := u.buildPlus(a.Expr)
	if err != nil {
		return err
	}
	tup.Put(name, val)
	return nil
}

// cloneForStore deep-copies aggregate values bound from elsewhere in the
// universe so an insert never aliases existing structures.
func cloneForStore(o object.Object) object.Object {
	if o.Kind().IsAtomic() {
		return o
	}
	return o.Clone()
}

func insertErrFrom(err error, e ast.Expr) error {
	var ub *unboundError
	if errors.As(err, &ub) {
		return &InsertUnboundError{Var: ub.Var, Expr: e}
	}
	return err
}
