package core

import (
	"strings"
	"testing"

	"idl/internal/ast"
	"idl/internal/parser"
)

// FuzzEvalQuery cross-checks evaluation modes on arbitrary read-only
// queries: sequential interpreted evaluation is the oracle, and parallel
// (3 workers), cold-compiled (plan per query, cache off) and cached
// (epoch-keyed plan cache, exercised twice per input so the second run
// hits) evaluation must each either fail identically or answer
// byte-identically. This is the fuzzing arm of the differential layer —
// the table-driven equivalence tests in parallel_test.go pin known query
// shapes, the fuzzer searches for shapes nobody thought to pin.
//
// All engines are built once per process: queries are read-only (update
// bodies are skipped), so evaluation never mutates the fixture.
func FuzzEvalQuery(f *testing.F) {
	seeds := []string{
		// Paper-style queries over the three stock schemas (E1–E6 shapes).
		"?.euter.r(.stkCode=S, .clsPrice>200)",
		"?.chwab.r(.S>200)",
		"?.ource.S(.clsPrice>200)",
		"?.euter.r(.date=D,.stkCode=hp,.clsPrice=P), .euter.r~(.stkCode=hp, .clsPrice>P)",
		"?.chwab.r(.date=D, .hp=H, .ibm=I), H>60, I>150",
		"?.X.Y, X = ource",
		// Derived relations materialized by the fixture rules.
		"?.dbI.p(.stk=S, .price>150)",
		"?.dbI.hi(.stk=S)",
		// The partitioned big relation: scans, joins, negation, self-join.
		"?.big.r(.stkCode=S, .clsPrice>150)",
		"?.big.r(.stkCode=S)",
		"?.big.r(.date=D,.stkCode=S,.clsPrice=P), .big.r~(.date=D, .clsPrice>P)",
		"?.big.r(.date=D, .stkCode=S, .clsPrice=P), .euter.r(.date=D, .clsPrice=P)",
		// Expression evaluation and constraint-only conjuncts.
		"?.big.r(.stkCode=S, .clsPrice=(100+50))",
		"?.euter.r(.clsPrice=P), P > 100, P < 200",
		// Error shape: an expression naming its own operand.
		"?.big.r(.stkCode=S, .clsPrice=(S + 1))",
		// Update body (skipped) and garbage (parse error).
		"?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=50)",
		"?.5 .x ( ) ;;; ~~~",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	oracle := fuzzEngine(f, Options{Interpret: true})
	variants := []struct {
		name string
		e    *Engine
		runs int // cached runs twice so run two serves from the plan cache
	}{
		{"parallel", fuzzEngine(f, Options{Workers: 3}), 1},
		{"cold", fuzzEngine(f, Options{NoPlanCache: true}), 1},
		{"cached", fuzzEngine(f, Options{}), 2},
	}

	f.Fuzz(func(t *testing.T, src string) {
		// Bound the work per input: deep cross joins over the big relation
		// are legal but explode combinatorially, drowning the fuzzer.
		if len(src) > 150 {
			t.Skip("input too long")
		}
		q, err := parser.ParseQuery(src)
		if err != nil {
			return
		}
		if ast.HasUpdate(q.Body) {
			t.Skip("update body")
		}
		if len(q.Body.Conjuncts) > 3 {
			t.Skip("too many conjuncts")
		}
		sAns, sErr := oracle.Query(q)
		for _, v := range variants {
			for run := 0; run < v.runs; run++ {
				pAns, pErr := v.e.Query(q)
				if (sErr == nil) != (pErr == nil) {
					t.Fatalf("error divergence for %q:\ninterpreted: %v\n%s(run %d): %v", src, sErr, v.name, run, pErr)
				}
				if sErr != nil {
					if sErr.Error() != pErr.Error() {
						t.Fatalf("error text divergence for %q:\ninterpreted: %v\n%s(run %d): %v", src, sErr, v.name, run, pErr)
					}
					continue
				}
				if s, p := sAns.String(), pAns.String(); s != p {
					t.Fatalf("answer divergence for %q:\ninterpreted: %s\n%s(run %d): %s", src, clip(s), v.name, run, clip(p))
				}
			}
		}
	})
}

// fuzzEngine builds the shared fuzz fixture: the three stock databases,
// the partitioned big relation, and two rules so derived relations are
// in play.
func fuzzEngine(f *testing.F, opts Options) *Engine {
	f.Helper()
	e := NewEngineWithOptions(opts)
	buildStockBase(f, e)
	buildBigBase(f, e, 32)
	mustRule(f, e, ".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)")
	mustRule(f, e, ".dbI.hi+(.stk=S) <- .dbI.p(.stk=S, .price=P), P > 150")
	return e
}

// clip truncates long answer renderings in failure messages.
func clip(s string) string {
	if len(s) > 400 {
		return s[:400] + "…"
	}
	return strings.ReplaceAll(s, "\n", " ")
}
