package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"idl/internal/ast"
	"idl/internal/object"
)

// errStop aborts an enumeration from inside a continuation; it never
// escapes the evaluator.
var errStop = errors.New("core: stop enumeration")

// cont is an enumeration continuation: called once per satisfying
// extension of the substitution. Returning errStop unwinds the whole
// enumeration.
type cont func() error

// Stats counts evaluator work, for the benchmark harness and the CLI's
// `\stats` command.
type Stats struct {
	ElementsScanned uint64 // set elements tested by full scans
	IndexProbes     uint64 // set expressions answered via an attribute index
	IndexBuilds     uint64 // attribute indexes (re)built
	AttrEnums       uint64 // higher-order enumerations over attribute names
}

// add accumulates o into s. Each engine operation evaluates against its
// own Stats and merges into the engine totals under the engine mutex, so
// per-operation deltas (EXPLAIN ANALYZE, metrics) come for free.
func (s *Stats) add(o Stats) {
	s.ElementsScanned += o.ElementsScanned
	s.IndexProbes += o.IndexProbes
	s.IndexBuilds += o.IndexBuilds
	s.AttrEnums += o.AttrEnums
}

// statsDelta returns after − before, field-wise.
func statsDelta(before, after Stats) Stats {
	return Stats{
		ElementsScanned: after.ElementsScanned - before.ElementsScanned,
		IndexProbes:     after.IndexProbes - before.IndexProbes,
		IndexBuilds:     after.IndexBuilds - before.IndexBuilds,
		AttrEnums:       after.AttrEnums - before.AttrEnums,
	}
}

// conjunctProbe accumulates the runtime behaviour of one top-level query
// conjunct during an ANALYZE (or traced) run: rows produced, evaluator
// work, and self wall time (time inside the conjunct's enumeration minus
// time spent in the downstream continuation).
type conjunctProbe struct {
	rows        uint64
	selfTime    time.Duration
	scanned     uint64
	indexProbes uint64
}

// analyzeState maps the top-level conjuncts under measurement to their
// probes, keyed by expression identity. Only the conjuncts of the query
// body are registered; nested tuple expressions miss the map and run
// unprobed.
type analyzeState struct {
	probes map[ast.Expr]*conjunctProbe
}

// evaluator carries one query evaluation: the substitution under
// construction, the index cache shared with the engine, and feature
// switches.
type evaluator struct {
	env        *Env
	indexes    *indexCache
	useIndex   bool
	noSchedule bool
	stats      *Stats
	// consumedCache memoizes per-conjunct consumed-variable lists; the
	// analysis is environment independent, and set expressions re-enter
	// satisfyTuple once per element, so this is hot. Compiled plans and
	// rule analyses seed it with a complete precomputed map (shared
	// read-only, including across parallel workers); unseeded evaluators
	// fill it lazily.
	consumedCache map[*ast.TupleExpr][][]string
	// ranks, when non-nil, carries cost ranks for the tuple expressions
	// that schedule cost-based (the top-level query or rule body): among
	// runnable conjuncts the scheduler picks the lowest rank, source
	// order breaking ties. Tuple expressions absent from the map (all
	// nested conjunct lists) schedule in source order, as does a nil map.
	ranks map[*ast.TupleExpr][]float64
	// ctx, when non-nil, is polled during enumeration so long-running
	// queries observe cancellation. nil (the context-free entry points)
	// reduces checkCtx to a pointer test plus a counter increment.
	ctx context.Context
	ops uint64 // operations since the last ctx poll (amortizes ctx.Err)
	// analyze, when non-nil, measures per-conjunct rows/work/self-time
	// for EXPLAIN ANALYZE and traced queries. nil (the default) costs one
	// pointer test per scheduled conjunct.
	analyze *analyzeState
	// part, when non-nil, restricts this evaluator's first enumeration
	// of one specific set to a chunk of its elements — the partitioned-
	// scan parallel path (parallel.go). nil costs one pointer test per
	// set enumeration.
	part *partition
}

// checkCtx polls the evaluation context once every 1024 operations.
// Called from the enumeration hot paths; the amortization keeps the
// overhead of context support below the benchmark noise floor.
func (ev *evaluator) checkCtx() error {
	if ev.ctx == nil {
		return nil
	}
	ev.ops++
	if ev.ops&1023 != 0 {
		return nil
	}
	return ev.ctx.Err()
}

// UnsafeError reports a query that cannot be evaluated safely: an
// inequality or arithmetic over a variable that no other conjunct binds.
type UnsafeError struct {
	Var  string
	Expr ast.Expr
}

func (e *UnsafeError) Error() string {
	return fmt.Sprintf("unsafe expression %q: variable %s is not bound by any other conjunct", e.Expr.String(), e.Var)
}

// satisfy enumerates the extensions of ev.env under which o satisfies e,
// invoking k once per extension. Bindings are undone as enumeration
// backtracks; after satisfy returns, the env is as it was (unless k
// retained a snapshot).
func (ev *evaluator) satisfy(e ast.Expr, o object.Object, k cont) error {
	switch x := e.(type) {
	case ast.Epsilon:
		return k()

	case *ast.Not:
		sat, err := ev.exists(x.X, o)
		if err != nil {
			return err
		}
		if !sat {
			return k()
		}
		return nil

	case *ast.VarExpr:
		return ev.satisfy(&ast.Atomic{Op: ast.OpEQ, Term: ast.Var{Name: x.Name}}, o, k)

	case *ast.Atomic:
		if x.Sign != ast.SignNone {
			return fmt.Errorf("core: update expression %q in query context", x.String())
		}
		return ev.satisfyAtomic(x, o, k)

	case *ast.Constraint:
		return ev.satisfyConstraint(x, k)

	case *ast.AttrExpr:
		if x.Sign != ast.SignNone {
			return fmt.Errorf("core: update expression %q in query context", x.String())
		}
		return ev.satisfyAttr(x, o, k)

	case *ast.TupleExpr:
		return ev.satisfyTuple(x, o, k)

	case *ast.SetExpr:
		if x.Sign != ast.SignNone {
			return fmt.Errorf("core: update expression %q in query context", x.String())
		}
		return ev.satisfySet(x, o, k)

	default:
		return fmt.Errorf("core: unknown expression type %T", e)
	}
}

// exists reports whether any extension of the current substitution
// satisfies e on o; all extensions are undone (negation as failure).
func (ev *evaluator) exists(e ast.Expr, o object.Object) (bool, error) {
	mark := ev.env.Mark()
	err := ev.satisfy(e, o, func() error { return errStop })
	ev.env.Undo(mark)
	switch {
	case err == nil:
		return false, nil
	case errors.Is(err, errStop):
		return true, nil
	default:
		return false, err
	}
}

// satisfyAtomic implements §4.2: a ground comparison tests directly; `=X`
// with X unbound binds X to the object — including aggregate objects
// (§4.1's extension). Null satisfies no atomic expression.
func (ev *evaluator) satisfyAtomic(x *ast.Atomic, o object.Object, k cont) error {
	if name, ok := singleUnboundVar(x.Term, ev.env); ok {
		if x.Op != ast.OpEQ {
			return &UnsafeError{Var: name, Expr: x}
		}
		if _, isNull := o.(object.Null); isNull {
			return nil // null satisfies nothing, not even =X
		}
		mark := ev.env.Mark()
		ev.env.Bind(name, o)
		err := k()
		ev.env.Undo(mark)
		return err
	}
	val, err := evalTerm(x.Term, ev.env)
	if err != nil {
		var ub *unboundError
		if errors.As(err, &ub) {
			return &UnsafeError{Var: ub.Var, Expr: x}
		}
		return err
	}
	if compare(x.Op, o, val) {
		return k()
	}
	return nil
}

// satisfyConstraint implements the Datalog-style side condition
// (footnote 7). `=` with one unbound side binds it; everything else
// requires ground terms.
func (ev *evaluator) satisfyConstraint(x *ast.Constraint, k cont) error {
	lv, lerr := evalTerm(x.L, ev.env)
	rv, rerr := evalTerm(x.R, ev.env)
	// A hard evaluation error (e.g. arithmetic on a non-number) outranks
	// unbound-variable reporting on the other side.
	if lerr != nil && !isUnbound(lerr) {
		return lerr
	}
	if rerr != nil && !isUnbound(rerr) {
		return rerr
	}
	switch {
	case lerr == nil && rerr == nil:
		if compare(x.Op, lv, rv) {
			return k()
		}
		return nil
	case x.Op == ast.OpEQ && lerr != nil && rerr == nil:
		if name, ok := singleUnboundVar(x.L, ev.env); ok {
			mark := ev.env.Mark()
			ev.env.Bind(name, rv)
			err := k()
			ev.env.Undo(mark)
			return err
		}
		return unsafeFrom(lerr, x)
	case x.Op == ast.OpEQ && rerr != nil && lerr == nil:
		if name, ok := singleUnboundVar(x.R, ev.env); ok {
			mark := ev.env.Mark()
			ev.env.Bind(name, lv)
			err := k()
			ev.env.Undo(mark)
			return err
		}
		return unsafeFrom(rerr, x)
	default:
		if lerr != nil {
			return unsafeFrom(lerr, x)
		}
		return unsafeFrom(rerr, x)
	}
}

func unsafeFrom(err error, e ast.Expr) error {
	var ub *unboundError
	if errors.As(err, &ub) {
		return &UnsafeError{Var: ub.Var, Expr: e}
	}
	return err
}

// isUnbound reports whether err is (only) an unbound-variable condition.
func isUnbound(err error) bool {
	var ub *unboundError
	return errors.As(err, &ub)
}

// satisfyAttr implements tuple-expression conjuncts, including
// higher-order quantification (§4.3): an unbound variable in attribute
// position enumerates the tuple's attribute names.
func (ev *evaluator) satisfyAttr(x *ast.AttrExpr, o object.Object, k cont) error {
	tup, ok := o.(*object.Tuple)
	if !ok {
		return nil // attribute expressions are satisfied only by tuples
	}
	switch name := x.Name.(type) {
	case ast.Const:
		s, ok := name.Value.(object.Str)
		if !ok {
			return nil
		}
		val, ok := tup.Get(string(s))
		if !ok {
			return nil
		}
		return ev.satisfy(x.Expr, val, k)
	case ast.Var:
		if bound, ok := ev.env.Lookup(name.Name); ok {
			s, ok := bound.(object.Str)
			if !ok {
				return nil // attribute names are strings
			}
			val, ok := tup.Get(string(s))
			if !ok {
				return nil
			}
			return ev.satisfy(x.Expr, val, k)
		}
		// Higher-order enumeration over the attribute names.
		ev.stats.AttrEnums++
		for _, attr := range tup.Attrs() {
			val, ok := tup.Get(attr)
			if !ok {
				continue
			}
			mark := ev.env.Mark()
			ev.env.Bind(name.Name, object.Str(attr))
			err := ev.satisfy(x.Expr, val, k)
			ev.env.Undo(mark)
			if err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("core: attribute name must be a constant or variable, got %T", x.Name)
	}
}

// satisfyTuple evaluates a conjunct list under one shared substitution.
// Conjuncts are scheduled for safety: a conjunct whose "consumed"
// variables (those it can only test, not bind — inequality operands,
// arithmetic inputs, everything under negation) are not yet all bound is
// deferred until some producing conjunct binds them. If nothing is
// runnable the first deferred conjunct runs anyway — correct for
// negation (its bindings are local) and a checked error for inequalities.
func (ev *evaluator) satisfyTuple(x *ast.TupleExpr, o object.Object, k cont) error {
	if len(x.Conjuncts) == 0 {
		return k()
	}
	consumed, ok := ev.consumedCache[x]
	if !ok {
		consumed = make([][]string, len(x.Conjuncts))
		for i, c := range x.Conjuncts {
			consumed[i] = consumedVars(c)
		}
		if ev.consumedCache == nil {
			ev.consumedCache = make(map[*ast.TupleExpr][][]string)
		}
		ev.consumedCache[x] = consumed
	}
	used := make([]bool, len(x.Conjuncts))
	var ranks []float64
	if ev.ranks != nil {
		ranks = ev.ranks[x]
	}
	return ev.scheduleConjuncts(x.Conjuncts, consumed, ranks, used, len(x.Conjuncts), o, k)
}

// scheduleConjuncts picks the next runnable conjunct (depth-first, with
// the shared `used` mask undone on backtrack — the choice can differ per
// binding because boundness differs). With cost ranks, the cheapest
// runnable conjunct runs first (source order breaking ties) — ordering
// within the safety constraints, never instead of them; without ranks
// the first runnable conjunct in source order runs, as before.
func (ev *evaluator) scheduleConjuncts(conjuncts []ast.Expr, consumed [][]string, ranks []float64, used []bool, left int, o object.Object, k cont) error {
	if left == 0 {
		return k()
	}
	if err := ev.checkCtx(); err != nil {
		return err
	}
	pick := -1
	for idx := range conjuncts {
		if used[idx] {
			continue
		}
		if ev.noSchedule {
			pick = idx
			break
		}
		runnable := true
		for _, v := range consumed[idx] {
			if !ev.env.Bound(v) {
				runnable = false
				break
			}
		}
		if runnable {
			if ranks == nil {
				pick = idx
				break
			}
			if pick < 0 || ranks[idx] < ranks[pick] {
				pick = idx
			}
		}
	}
	if pick < 0 {
		// No conjunct is safe; run the first unscheduled one anyway.
		// Negation evaluates with local bindings (the paper's literal ∃σ
		// reading); inequalities raise UnsafeError downstream.
		for idx := range conjuncts {
			if !used[idx] {
				pick = idx
				break
			}
		}
	}
	used[pick] = true
	next := func() error {
		return ev.scheduleConjuncts(conjuncts, consumed, ranks, used, left-1, o, k)
	}
	var err error
	if p := ev.probeFor(conjuncts[pick]); p != nil {
		err = ev.satisfyProbed(p, conjuncts[pick], o, next)
	} else {
		err = ev.satisfy(conjuncts[pick], o, next)
	}
	used[pick] = false
	return err
}

// probeFor returns the analyze probe registered for a conjunct, or nil —
// the common case, and the only cost of ANALYZE support on unmeasured
// evaluations.
func (ev *evaluator) probeFor(c ast.Expr) *conjunctProbe {
	if ev.analyze == nil {
		return nil
	}
	return ev.analyze.probes[c]
}

// satisfyProbed runs one measured conjunct: rows are counted at each
// continuation entry, and both wall time and stats deltas attribute to
// the conjunct only what its own enumeration consumed — time and work
// inside the downstream continuation (which evaluates the remaining
// conjuncts, themselves possibly probed) are subtracted out.
func (ev *evaluator) satisfyProbed(p *conjunctProbe, c ast.Expr, o object.Object, next cont) error {
	before := *ev.stats
	var childStats Stats
	var childTime time.Duration
	start := time.Now()
	err := ev.satisfy(c, o, func() error {
		p.rows++
		cb := *ev.stats
		cs := time.Now()
		err := next()
		childTime += time.Since(cs)
		childStats.add(statsDelta(cb, *ev.stats))
		return err
	})
	p.selfTime += time.Since(start) - childTime
	d := statsDelta(before, *ev.stats)
	p.scanned += d.ElementsScanned - childStats.ElementsScanned
	p.indexProbes += d.IndexProbes - childStats.IndexProbes
	return err
}

// consumedVars returns the variables a conjunct can only test, not
// produce: operands of non-equality comparisons, arithmetic inputs, and
// every variable under a negation.
func consumedVars(e ast.Expr) []string {
	var out []string
	seen := map[string]bool{}
	add := func(names []string) {
		for _, n := range names {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	var rec func(e ast.Expr, underNot bool)
	rec = func(e ast.Expr, underNot bool) {
		switch x := e.(type) {
		case *ast.Not:
			rec(x.X, true)
		case *ast.Atomic:
			if underNot || x.Op != ast.OpEQ {
				add(termVarNames(x.Term))
			} else if _, isArith := x.Term.(ast.Arith); isArith {
				add(termVarNames(x.Term))
			}
		case *ast.Constraint:
			lv, lIsVar := x.L.(ast.Var)
			rv, rIsVar := x.R.(ast.Var)
			if underNot || x.Op != ast.OpEQ {
				add(termVarNames(x.L))
				add(termVarNames(x.R))
				return
			}
			// `X = term`: the bare-var side is a producer when the other
			// side is ground-able; both-bare `X = Y` consumes neither
			// (runtime binds whichever is free once one is bound).
			if !lIsVar {
				add(termVarNames(x.L))
			}
			if !rIsVar {
				add(termVarNames(x.R))
			}
			_ = lv
			_ = rv
		case *ast.AttrExpr:
			if underNot {
				add(termVarNames(x.Name))
			}
			rec(x.Expr, underNot)
		case *ast.TupleExpr:
			for _, c := range x.Conjuncts {
				rec(c, underNot)
			}
		case *ast.SetExpr:
			rec(x.X, underNot)
		}
	}
	rec(e, false)
	return out
}

// satisfySet implements set expressions: ∃ element satisfying the inner
// expression. When the inner expression pins an attribute to a ground
// value (`.attr = const`), a lazily built per-set attribute index narrows
// the candidate elements; otherwise the set is scanned.
func (ev *evaluator) satisfySet(x *ast.SetExpr, o object.Object, k cont) error {
	set, ok := o.(*object.Set)
	if !ok {
		return nil
	}
	if p := ev.part; p != nil && !p.used && p.set == set {
		// Partitioned scan: this worker's first encounter of the target
		// set enumerates only its chunk. scanTarget guaranteed the
		// sequential evaluator would have full-scanned here, and the
		// first set this evaluation reaches is the target by
		// construction, so marking the partition consumed keeps every
		// later enumeration of the same set (self-joins, negations)
		// identical to the sequential one.
		p.used = true
		for _, elem := range p.elems {
			ev.stats.ElementsScanned++
			if err := ev.checkCtx(); err != nil {
				return err
			}
			if err := ev.satisfy(x.X, elem, k); err != nil {
				return err
			}
		}
		return nil
	}
	if ev.useIndex {
		if cands, ok := ev.indexCandidates(x, set); ok {
			ev.stats.IndexProbes++
			for _, elem := range cands {
				if err := ev.checkCtx(); err != nil {
					return err
				}
				if err := ev.satisfy(x.X, elem, k); err != nil {
					return err
				}
			}
			return nil
		}
	}
	var failure error
	set.Each(func(elem object.Object) bool {
		ev.stats.ElementsScanned++
		if err := ev.checkCtx(); err != nil {
			failure = err
			return false
		}
		if err := ev.satisfy(x.X, elem, k); err != nil {
			failure = err
			return false
		}
		return true
	})
	return failure
}

// indexCandidates finds an equality-pinned attribute in the inner tuple
// expression and returns the matching elements from the set's attribute
// index. Inner expressions that aren't conjunct lists, or with no ground
// equality conjunct, fall back to scanning.
func (ev *evaluator) indexCandidates(x *ast.SetExpr, set *object.Set) ([]object.Object, bool) {
	te, ok := x.X.(*ast.TupleExpr)
	if !ok {
		return nil, false
	}
	// Indexing only pays off beyond trivial sizes.
	if set.Len() < 16 {
		return nil, false
	}
	for _, c := range te.Conjuncts {
		attr, val, ok := ev.groundEqConjunct(c)
		if !ok {
			continue
		}
		return ev.indexes.lookup(set, attr, val, ev.stats), true
	}
	return nil, false
}

// groundEqConjunct recognizes `.attr = groundterm` conjuncts.
func (ev *evaluator) groundEqConjunct(c ast.Expr) (string, object.Object, bool) {
	a, ok := c.(*ast.AttrExpr)
	if !ok || a.Sign != ast.SignNone {
		return "", nil, false
	}
	nameConst, ok := a.Name.(ast.Const)
	if !ok {
		return "", nil, false
	}
	nameStr, ok := nameConst.Value.(object.Str)
	if !ok {
		return "", nil, false
	}
	at, ok := a.Expr.(*ast.Atomic)
	if !ok || at.Op != ast.OpEQ || at.Sign != ast.SignNone {
		return "", nil, false
	}
	val, err := evalTerm(at.Term, ev.env)
	if err != nil {
		return "", nil, false
	}
	if !val.Kind().IsAtomic() {
		return "", nil, false
	}
	return string(nameStr), val, true
}
