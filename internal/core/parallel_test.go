package core

import (
	"fmt"
	"strings"
	"testing"

	"idl/internal/object"
	"idl/internal/obs"
	"idl/internal/parser"
)

// Parallel-evaluation tests: every observable — answer rows and their
// order, derived overlays and their insertion order, errors, evaluator
// counters — must be byte-identical to sequential evaluation at any
// worker count (DESIGN.md §10).

// buildBigBase populates a "big" database large enough to partition
// (minPartition is 16): n price rows in euter's schema plus a chwab-style
// relation keyed by date, deterministic contents.
func buildBigBase(t testing.TB, e *Engine, n int) {
	t.Helper()
	u := e.Base()
	bigR := object.NewSet()
	for i := 0; i < n; i++ {
		d := fixDates[i%len(fixDates)]
		s := fmt.Sprintf("stk%03d", i%10)
		bigR.Add(object.TupleOf("date", d, "stkCode", s, "clsPrice", 20+(i*37)%180))
	}
	big := object.NewTuple()
	big.Put("r", bigR)
	u.Put("big", big)
	e.Invalidate()
}

// bigEngine returns an engine with both the small stock fixture and the
// big partitionable relation, configured with the given options.
func bigEngine(t testing.TB, opts Options, n int) *Engine {
	t.Helper()
	e := NewEngineWithOptions(opts)
	buildStockBase(t, e)
	buildBigBase(t, e, n)
	return e
}

// rowsIdentical asserts two answers agree byte-for-byte: same variables,
// same rows in the same order.
func rowsIdentical(t *testing.T, label string, seq, par *Answer) {
	t.Helper()
	if got, want := par.String(), seq.String(); got != want {
		t.Fatalf("%s: answer mismatch\nsequential: %s\nparallel:   %s", label, want, got)
	}
	if len(par.Rows) != len(seq.Rows) {
		t.Fatalf("%s: row count mismatch: sequential %d, parallel %d", label, len(seq.Rows), len(par.Rows))
	}
	for i := range seq.Rows {
		for _, v := range seq.Vars {
			sv, pv := seq.Rows[i][v], par.Rows[i][v]
			if sv == nil || pv == nil || !sv.Equal(pv) {
				t.Fatalf("%s: row %d differs at %s: sequential %v, parallel %v", label, i, v, sv, pv)
			}
		}
	}
}

// parallelQueries is the shape mix the equivalence tests run: plain
// filtered scans, joins, negation over the partitioned set, higher-order
// attribute/relation variables, constraints, and sub-threshold scans.
var parallelQueries = []string{
	// Filtered full scan of the partitioned set.
	"?.big.r(.stkCode=S, .clsPrice>150)",
	// Projection with duplicate rows collapsing in arrival order.
	"?.big.r(.stkCode=S)",
	// Self-join plus negation: the partitioned set re-enumerated in full.
	"?.big.r(.date=D,.stkCode=S,.clsPrice=P), .big.r~(.date=D, .clsPrice>P)",
	// Join against a different relation.
	"?.big.r(.date=D, .stkCode=S, .clsPrice=P), .euter.r(.date=D, .clsPrice=P)",
	// Higher-order: relation name quantified, no static scan target.
	"?.ource.S(.clsPrice>200)",
	// Attribute name quantified (chwab schema).
	"?.chwab.r(.S>200)",
	// Constraint after the scan.
	"?.big.r(.stkCode=S, .clsPrice=P), P > 190",
	// Point lookup the index answers when enabled.
	"?.big.r(.stkCode=\"stk003\", .clsPrice=P)",
	// Small set, below the partition threshold.
	"?.euter.r(.stkCode=S, .clsPrice>60)",
	// Empty result.
	"?.big.r(.clsPrice>100000)",
	// Variable-free truth query.
	"?.big.r(.clsPrice>150)",
}

// TestParallelQueryMatchesSequential runs the shape mix at several worker
// counts and option sets, byte-comparing answers and counters against
// workers=0.
func TestParallelQueryMatchesSequential(t *testing.T) {
	optionSets := map[string]Options{
		"default":    DefaultOptions(),
		"noindex":    {SemiNaive: true, MaxIterations: 10000},
		"noschedule": {UseIndex: true, SemiNaive: true, NoSchedule: true, MaxIterations: 10000},
	}
	for optName, base := range optionSets {
		seqEng := bigEngine(t, base, 100)
		for _, src := range parallelQueries {
			query, err := parser.ParseQuery(src)
			if err != nil {
				t.Fatalf("parse %q: %v", src, err)
			}
			seqEng.SetWorkers(0)
			seq, err := seqEng.Query(query)
			if err != nil {
				t.Fatalf("%s: sequential %q: %v", optName, src, err)
			}
			seqEng.ResetStats()
			if _, err := seqEng.Query(query); err != nil {
				t.Fatal(err)
			}
			seqStats := seqEng.Stats()
			for _, workers := range []int{1, 2, 3, 4, 8} {
				seqEng.SetWorkers(workers)
				par, err := seqEng.Query(query)
				if err != nil {
					t.Fatalf("%s: workers=%d %q: %v", optName, workers, src, err)
				}
				label := fmt.Sprintf("%s workers=%d %q", optName, workers, src)
				rowsIdentical(t, label, seq, par)
				seqEng.ResetStats()
				if _, err := seqEng.Query(query); err != nil {
					t.Fatal(err)
				}
				if got := seqEng.Stats(); got != seqStats {
					t.Errorf("%s: stats diverge: sequential %+v, parallel %+v", label, seqStats, got)
				}
			}
			seqEng.SetWorkers(0)
		}
	}
}

// TestParallelErrorMatchesSequential: when evaluation fails mid-scan the
// parallel path must surface the error the sequential evaluator hits
// first — the message names the failing operands, so an error from any
// later element would differ.
func TestParallelErrorMatchesSequential(t *testing.T) {
	src := "?.big.r(.stkCode=S, .clsPrice=(S + 1))"
	query, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	e := bigEngine(t, DefaultOptions(), 100)
	_, seqErr := e.Query(query)
	if seqErr == nil {
		t.Fatalf("sequential %q: expected error", src)
	}
	for _, workers := range []int{2, 4, 8} {
		e.SetWorkers(workers)
		_, parErr := e.Query(query)
		if parErr == nil {
			t.Fatalf("workers=%d %q: expected error", workers, src)
		}
		if parErr.Error() != seqErr.Error() {
			t.Errorf("workers=%d: error diverges\nsequential: %v\nparallel:   %v", workers, seqErr, parErr)
		}
	}
}

// overlayString materializes the engine's views and renders the overlay
// in insertion order, which byte-captures the exact fact application
// sequence.
func overlayString(t *testing.T, e *Engine) (string, RecomputeStats) {
	t.Helper()
	e.Invalidate()
	overlay, err := e.DerivedOverlay()
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	return overlay.String(), e.LastRecompute()
}

// TestParallelMaterializeMatchesSequential checks rule-wave evaluation:
// the unified stock view (independent rules, one head), a reconciliation
// rule reading that view, and the customized re-renderings must produce
// a byte-identical overlay at any worker count.
func TestParallelMaterializeMatchesSequential(t *testing.T) {
	rules := []string{
		".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)",
		".dbI.p+(.date=D, .stk=S, .price=P) <- .chwab.r(.date=D, .S=P), S != date",
		".dbI.p+(.date=D, .stk=S, .price=P) <- .ource.S(.date=D, .clsPrice=P)",
		".dbI.p+(.date=D, .stk=S, .price=P) <- .big.r(.date=D, .stkCode=S, .clsPrice=P)",
		".dbI.pnew+(.date=D,.stk=S,.price=P) <- .dbI.p(.date=D,.stk=S,.price=P), .dbI.p~(.date=D,.stk=S,.price>P)",
		".dbE.r+(.date=D, .stkCode=S, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
		".dbC.r+(.date=D, .S=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
	}
	build := func(workers int) *Engine {
		e := bigEngine(t, DefaultOptions(), 60)
		e.SetWorkers(workers)
		for _, r := range rules {
			mustRule(t, e, r)
		}
		return e
	}
	seqOverlay, seqStats := overlayString(t, build(0))
	for _, workers := range []int{2, 4, 8} {
		parOverlay, parStats := overlayString(t, build(workers))
		if parOverlay != seqOverlay {
			t.Fatalf("workers=%d: overlay diverges from sequential\nsequential: %.200s…\nparallel:   %.200s…", workers, seqOverlay, parOverlay)
		}
		if parStats != seqStats {
			t.Errorf("workers=%d: recompute stats diverge: sequential %+v, parallel %+v", workers, seqStats, parStats)
		}
	}
}

// TestParallelRecursiveMatchesSequential covers a recursive program — the
// second rule reads the first rule's head, so waves must split and the
// fixpoint must still converge to the identical overlay.
func TestParallelRecursiveMatchesSequential(t *testing.T) {
	build := func(workers int) *Engine {
		e := NewEngineWithOptions(DefaultOptions())
		u := e.Base()
		edges := object.NewSet()
		for i := 0; i < 24; i++ {
			edges.Add(object.TupleOf("from", fmt.Sprintf("n%02d", i), "to", fmt.Sprintf("n%02d", i+1)))
		}
		g := object.NewTuple()
		g.Put("edge", edges)
		u.Put("g", g)
		e.Invalidate()
		e.SetWorkers(workers)
		mustRule(t, e, ".g.tc+(.from=X,.to=Y) <- .g.edge(.from=X,.to=Y)")
		mustRule(t, e, ".g.tc+(.from=X,.to=Y) <- .g.edge(.from=X,.to=Z), .g.tc(.from=Z,.to=Y)")
		return e
	}
	seqOverlay, seqStats := overlayString(t, build(0))
	if !strings.Contains(seqOverlay, "tc") {
		t.Fatalf("expected tc relation in overlay, got %.120s…", seqOverlay)
	}
	for _, workers := range []int{2, 4} {
		parOverlay, parStats := overlayString(t, build(workers))
		if parOverlay != seqOverlay {
			t.Fatalf("workers=%d: recursive overlay diverges", workers)
		}
		if parStats != seqStats {
			t.Errorf("workers=%d: recompute stats diverge: sequential %+v, parallel %+v", workers, seqStats, parStats)
		}
	}
}

// TestRuleWave exercises the wave planner directly: independent rules
// batch into one wave, a dependent rule starts the next.
func TestRuleWave(t *testing.T) {
	parse := func(src string) *compiledRule {
		r, err := parser.ParseRule(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		cr, err := compileRule(r)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		return cr
	}
	indep1 := parse(".dbI.p+(.x=X) <- .euter.r(.stkCode=X)")
	indep2 := parse(".dbI.q+(.x=X) <- .chwab.r(.date=X)")
	reader := parse(".dbI.s+(.x=X) <- .dbI.p(.x=X)")
	selfRec := parse(".dbI.t+(.x=X) <- .dbI.t(.x=X)")

	stratum := []*compiledRule{indep1, indep2, reader}
	if got := ruleWave(stratum, []int{0, 1, 2}); got != 2 {
		t.Errorf("independent prefix: wave = %d, want 2 (reader must wait for indep1's head)", got)
	}
	if got := ruleWave(stratum, []int{2}); got != 1 {
		t.Errorf("singleton wave = %d, want 1", got)
	}
	// Self-recursion alone does not constrain the wave: a rule never sees
	// its own new facts mid-run, sequentially either.
	if got := ruleWave([]*compiledRule{selfRec, indep2}, []int{0, 1}); got != 2 {
		t.Errorf("self-recursive + independent: wave = %d, want 2", got)
	}
	// But a rule reading an earlier member's head splits the wave.
	if got := ruleWave([]*compiledRule{indep1, selfRec}, []int{0, 1}); got != 2 {
		t.Errorf("distinct heads: wave = %d, want 2", got)
	}
}

// TestSplitChunks pins the contiguity invariant the merge relies on.
func TestSplitChunks(t *testing.T) {
	elems := make([]object.Object, 10)
	for i := range elems {
		elems[i] = object.Int(i)
	}
	for _, n := range []int{1, 2, 3, 4, 10, 15} {
		chunks := splitChunks(elems, n)
		var flat []object.Object
		for _, c := range chunks {
			if len(c) == 0 {
				t.Fatalf("n=%d: empty chunk", n)
			}
			flat = append(flat, c...)
		}
		if len(flat) != len(elems) {
			t.Fatalf("n=%d: lost elements: %d != %d", n, len(flat), len(elems))
		}
		for i := range flat {
			if !flat[i].Equal(elems[i]) {
				t.Fatalf("n=%d: order changed at %d", n, i)
			}
		}
	}
}

// TestScanTargetSkipsIndexableScans: a scan the index would answer keeps
// its sequential probe path; partitioning it would change candidate
// enumeration.
func TestScanTargetSkipsIndexableScans(t *testing.T) {
	e := bigEngine(t, DefaultOptions(), 100)
	eff := e.Base()
	query, err := parser.ParseQuery("?.big.r(.stkCode=\"stk003\", .clsPrice=P)")
	if err != nil {
		t.Fatal(err)
	}
	if target := e.scanTarget(query.Body, eff, nil, e.opts); target != nil {
		t.Errorf("index-eligible scan: scanTarget = %v, want nil", target)
	}
	query2, err := parser.ParseQuery("?.big.r(.stkCode=S, .clsPrice>150)")
	if err != nil {
		t.Fatal(err)
	}
	if target := e.scanTarget(query2.Body, eff, nil, e.opts); target == nil {
		t.Error("plain scan: scanTarget = nil, want big.r")
	} else if target.Len() != 100 {
		t.Errorf("plain scan: wrong set, len %d", target.Len())
	}
	// Negated first conjunct: nothing to partition.
	query3, err := parser.ParseQuery("?.big.r~(.clsPrice>150)")
	if err != nil {
		t.Fatal(err)
	}
	if target := e.scanTarget(query3.Body, eff, nil, e.opts); target != nil {
		t.Error("negation: scanTarget should be nil")
	}
}

// TestParallelMetrics checks the worker instruments move when parallel
// paths actually run.
func TestParallelMetrics(t *testing.T) {
	e := bigEngine(t, DefaultOptions(), 100)
	r := obs.NewRegistry()
	e.SetMetrics(r)
	e.SetWorkers(4)
	query, err := parser.ParseQuery("?.big.r(.stkCode=S, .clsPrice>150)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(query); err != nil {
		t.Fatal(err)
	}
	if got := r.Counter("engine.eval.parallel_ops").Value(); got == 0 {
		t.Error("parallel_ops did not move")
	}
	if got := r.Counter("engine.eval.partitions").Value(); got < 2 {
		t.Errorf("partitions = %d, want >= 2", got)
	}
	if got := r.Gauge("engine.eval.worker_busy").Value(); got != 0 {
		t.Errorf("worker_busy = %v after queries finished, want 0", got)
	}
}
