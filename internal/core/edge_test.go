package core

import (
	"strings"
	"testing"

	"idl/internal/ast"
	"idl/internal/object"
	"idl/internal/parser"
)

// Edge-path coverage: constraint binding directions, arithmetic kinds,
// insert validation, merged-universe collisions, engine accessors.

func TestConstraintBindingDirections(t *testing.T) {
	e := newStockEngine(t)
	// Bind left from right.
	if ans := q(t, e, "?X = ource, .X.Y"); ans.Len() != 3 {
		t.Errorf("left-bind rows:\n%s", ans)
	}
	// Bind right from left (X already bound by enumeration).
	if ans := q(t, e, "?.X, X = euter"); ans.Len() != 1 {
		t.Errorf("filter rows:\n%s", ans)
	}
	// Var = Var with one side bound.
	if ans := q(t, e, "?.X, Y = X, .Y.r"); ans.Len() != 2 { // euter, chwab have r
		t.Errorf("var=var rows:\n%s", ans)
	}
	// NE and ordering constraints on bound values.
	if ans := q(t, e, "?.X, X != euter"); ans.Len() != 2 {
		t.Errorf("!= rows:\n%s", ans)
	}
	if ans := q(t, e, "?.euter.r(.clsPrice=P, .stkCode=S), P >= 201"); ans.Len() != 2 {
		t.Errorf(">= rows:\n%s", ans)
	}
}

func TestConstraintUnsafeBothUnbound(t *testing.T) {
	e := newStockEngine(t)
	query, err := parser.ParseQuery("?X = Y")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(query); err == nil {
		t.Error("X = Y with both unbound should be unsafe")
	}
	query, err = parser.ParseQuery("?X < 5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(query); err == nil {
		t.Error("X < 5 with X unbound should be unsafe")
	}
}

func TestArithmeticKinds(t *testing.T) {
	e := NewEngine()
	d := object.NewTuple()
	d.Put("r", object.SetOf(
		object.TupleOf("i", 6, "f", 2.5, "s", "x"),
	))
	e.Base().Put("d", d)
	e.Invalidate()
	// Int arithmetic stays integral.
	if ans := q(t, e, "?.d.r(.i=I), J = I*2, J = 12"); !ans.Bool() {
		t.Error("int multiply")
	}
	if ans := q(t, e, "?.d.r(.i=I), J = I-7, J = -1"); !ans.Bool() {
		t.Error("int subtract")
	}
	// Mixed promotes to float.
	if ans := q(t, e, "?.d.r(.i=I, .f=F), G = F+I, G = 8.5"); !ans.Bool() {
		t.Error("mixed add")
	}
	if ans := q(t, e, "?.d.r(.i=I, .f=F), G = F*2, G = 5.0"); !ans.Bool() {
		t.Error("float multiply")
	}
	if ans := q(t, e, "?.d.r(.f=F), G = F-0.5, G = 2"); !ans.Bool() {
		t.Error("float subtract")
	}
	// Arithmetic on non-numerics errors.
	query, err := parser.ParseQuery("?.d.r(.s=S), G = S+1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(query); err == nil || !strings.Contains(err.Error(), "arithmetic") {
		t.Errorf("err = %v", err)
	}
}

func TestInsertValidationErrors(t *testing.T) {
	e := newStockEngine(t)
	cases := map[string]string{
		"?.euter.r+(.x>5)":        "simple",        // non-equality inside insert
		"?.euter.r+(.a=1, -.b=2)": "minus",         // minus inside insert
		"?.euter.r+=5":            "atomic update", // atomic plus on a set
		"?.euter.r(+.A=5)":        "unbound",       // tuple plus with unbound attr name
	}
	for src, wantSub := range cases {
		err := execErr(t, e, src)
		if !strings.Contains(strings.ToLower(err.Error()), wantSub) {
			t.Errorf("%s: err = %v (want mention of %q)", src, err, wantSub)
		}
	}
}

func TestWildcardAtomicPlusWritesEveryAttribute(t *testing.T) {
	// `.A+=5` with A unbound is a wildcard write: every attribute of the
	// matched tuples is replaced — the plus analogue of delStk's `.S-=X`
	// wildcard delete.
	e := NewEngine()
	d := object.NewTuple()
	d.Put("r", object.SetOf(object.TupleOf("a", 1, "b", 2)))
	e.Base().Put("d", d)
	e.Invalidate()
	res := exec(t, e, "?.d.r(.A+=9)")
	if res.ValuesSet != 2 {
		t.Fatalf("values set = %d, want 2", res.ValuesSet)
	}
	ans := q(t, e, "?.d.r(.a=9, .b=9)")
	if !ans.Bool() {
		t.Error("both attributes should be 9")
	}
}

func TestInsertAggregateValueCloned(t *testing.T) {
	e := NewEngine()
	d := object.NewTuple()
	inner := object.SetOf(object.TupleOf("v", 1))
	d.Put("r", object.SetOf(object.TupleOf("k", 1, "payload", inner)))
	d.Put("dst", object.NewSet())
	e.Base().Put("d", d)
	e.Invalidate()
	// Copy the aggregate payload into dst via a bound variable.
	exec(t, e, "?.d.r(.k=1, .payload=P), .d.dst+(.copy=P)")
	// Mutating the original must not affect the stored copy.
	inner.Add(object.TupleOf("v", 2))
	e.Invalidate()
	ans := q(t, e, "?.d.dst(.copy=C)")
	if ans.Len() != 1 {
		t.Fatalf("dst rows:\n%s", ans)
	}
	c := ans.Rows[0]["C"].(*object.Set)
	if c.Len() != 1 {
		t.Error("stored aggregate aliased the source (not cloned)")
	}
}

func TestAtomicMinusNonMatchingNoop(t *testing.T) {
	e := newStockEngine(t)
	// -=999 does not match hp's price: no change.
	res := exec(t, e, "?.chwab.r(.date=3/1/85, .hp-=999)")
	if res.ValuesSet != 0 {
		t.Errorf("values set = %d, want 0", res.ValuesSet)
	}
	if ans := q(t, e, "?.chwab.r(.date=3/1/85, .hp=50)"); !ans.Bool() {
		t.Error("value should be untouched")
	}
	// -= with matching ground value nulls it.
	res = exec(t, e, "?.chwab.r(.date=3/1/85, .hp-=50)")
	if res.ValuesSet != 1 {
		t.Errorf("values set = %d, want 1", res.ValuesSet)
	}
}

func TestMergedUniverseCollisionUnion(t *testing.T) {
	// A rule head targets an existing base relation name: queries see the
	// union, the base is untouched.
	e := newStockEngine(t)
	mustRule(t, e, ".euter.r+(.date=D, .stkCode=S, .clsPrice=P) <- .ource.S(.date=D, .clsPrice=P), S = sun, P = 210")
	// That derived fact duplicates an existing base fact: union size
	// stays 9.
	ans := q(t, e, "?.euter.r(.date=D,.stkCode=S,.clsPrice=P)")
	if ans.Len() != 9 {
		t.Errorf("union rows = %d:\n%s", ans.Len(), ans)
	}
	// Now derive a new fact into the same relation.
	mustRule(t, e, ".euter.r+(.date=D, .stkCode=extra, .clsPrice=P) <- .ource.hp(.date=D, .clsPrice=P)")
	ans = q(t, e, "?.euter.r(.stkCode=extra)")
	if !ans.Bool() {
		t.Error("derived facts should appear in the merged relation")
	}
	if relation(t, e, "euter", "r").Len() != 9 {
		t.Error("base must stay untouched")
	}
}

func TestEngineAccessors(t *testing.T) {
	e := newStockEngine(t)
	e.ResetStats()
	if st := e.Stats(); st.ElementsScanned != 0 {
		t.Error("ResetStats failed")
	}
	q(t, e, "?.euter.r(.stkCode=hp)")
	if st := e.Stats(); st.ElementsScanned == 0 {
		t.Error("stats should accumulate")
	}
	overlay, err := e.DerivedOverlay()
	if err != nil || overlay == nil {
		t.Fatalf("overlay: %v %v", overlay, err)
	}
	if overlay.Len() != 0 {
		t.Error("no rules: overlay should be empty")
	}
	mustRule(t, e, ".v.p+(.s=S) <- .euter.r(.stkCode=S)")
	overlay, err = e.DerivedOverlay()
	if err != nil || !overlay.Has("v") {
		t.Errorf("overlay after rule: %v %v", overlay, err)
	}
	if len(e.Programs()) != 0 {
		t.Error("no programs registered yet")
	}
}

func TestVarExprNode(t *testing.T) {
	// The API-level VarExpr node binds whole objects like `=X`.
	e := newStockEngine(t)
	body := ast.Conj(ast.Attr("euter", ast.Conj(ast.Attr("r", &ast.VarExpr{Name: "R"}))))
	ans, err := e.Query(&ast.Query{Body: body})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 1 {
		t.Fatalf("rows = %d", ans.Len())
	}
	if _, ok := ans.Rows[0]["R"].(*object.Set); !ok {
		t.Error("R should bind the relation set")
	}
}

func TestAnswerSortWithMissingColumns(t *testing.T) {
	a := newAnswer([]string{"X", "Y"})
	a.add(Row{"X": object.Int(2)})
	a.add(Row{"X": object.Int(1), "Y": object.Int(5)})
	a.Sort()
	if _, ok := a.Rows[0]["Y"]; !ok {
		// rows missing Y sort first
		t.Log("missing-column row sorted first as expected")
	}
	if !a.Rows[1]["X"].Equal(object.Int(2)) && !a.Rows[0]["X"].Equal(object.Int(1)) {
		t.Errorf("sort order: %v", a.Rows)
	}
}

func TestUnknownStatementKinds(t *testing.T) {
	e := newStockEngine(t)
	// Navigating a non-tuple with an attribute expression in update mode.
	err := execErr(t, e, "?.euter.r(.date=3/1/85, .clsPrice(.deep+=1))")
	if !strings.Contains(err.Error(), "applied to") {
		t.Errorf("err = %v", err)
	}
}

func TestGroundNameErrors(t *testing.T) {
	e := NewEngine()
	e.Base().Put("b", object.NewTuple())
	// Head attribute var bound to a non-string: S binds to an int.
	r, err := parser.ParseRule(".v.S+(.x=1) <- .b.s(.k=S)")
	if err != nil {
		t.Fatal(err)
	}
	db := object.NewTuple()
	db.Put("s", object.SetOf(object.TupleOf("k", 42)))
	e.Base().Put("b", db)
	e.Invalidate()
	if err := e.AddRule(r); err != nil {
		t.Fatal(err)
	}
	if _, err := e.EffectiveUniverse(); err == nil {
		t.Error("non-string head attribute should fail materialization")
	}
}

func TestQueryAgainstEmptyUniverse(t *testing.T) {
	e := NewEngine()
	if ans := q(t, e, "?.X"); ans.Len() != 0 {
		t.Errorf("empty universe rows:\n%s", ans)
	}
	if ans := q(t, e, "?.nosuch.r(.x=1)"); ans.Bool() {
		t.Error("missing database should be false, not error")
	}
}

func TestDeepNestedNavigationUpdate(t *testing.T) {
	// Updates through three levels of nesting keep hashes coherent.
	e := NewEngine()
	leaf := object.SetOf(object.TupleOf("v", 1))
	mid := object.TupleOf("leafs", leaf, "tag", "m")
	d := object.NewTuple()
	d.Put("r", object.SetOf(object.TupleOf("k", 1, "mid", mid)))
	e.Base().Put("d", d)
	e.Invalidate()
	exec(t, e, "?.d.r(.k=1, .mid.leafs+(.v=2))")
	ans := q(t, e, "?.d.r(.k=1, .mid.leafs(.v=V))")
	if ans.Len() != 2 {
		t.Fatalf("leaf values:\n%s", ans)
	}
	rel := relation(t, e, "d", "r")
	found := 0
	rel.Each(func(elem object.Object) bool {
		if rel.Contains(elem) {
			found++
		}
		return true
	})
	if found != rel.Len() {
		t.Error("nested mutation broke set membership")
	}
}

func TestAnswerProject(t *testing.T) {
	e := newStockEngine(t)
	ans := q(t, e, "?.euter.r(.stkCode=S, .clsPrice=P)")
	if ans.Len() != 9 {
		t.Fatalf("rows = %d", ans.Len())
	}
	stocks := ans.Project("S")
	if stocks.Len() != 3 {
		t.Errorf("projected stocks = %d, want 3 (dedup)", stocks.Len())
	}
	if len(stocks.Vars) != 1 || stocks.Vars[0] != "S" {
		t.Errorf("projected vars = %v", stocks.Vars)
	}
	// Projecting onto an absent variable yields a single empty row.
	empty := ans.Project("Nope")
	if empty.Len() != 1 {
		t.Errorf("absent-var projection rows = %d", empty.Len())
	}
}

func TestErrorMessageRendering(t *testing.T) {
	// Error types render with enough context to act on.
	unsafe := &UnsafeError{Var: "P", Expr: ast.Gt(ast.V("P"))}
	if !strings.Contains(unsafe.Error(), "P") || !strings.Contains(unsafe.Error(), "unsafe") {
		t.Errorf("UnsafeError = %q", unsafe.Error())
	}
	ns := &NotStratifiedError{Rules: []string{"r1", "r2"}}
	if !strings.Contains(ns.Error(), "stratified") || !strings.Contains(ns.Error(), "2 rule") {
		t.Errorf("NotStratifiedError = %q", ns.Error())
	}
	ub := &unboundError{Var: "X"}
	if !strings.Contains(ub.Error(), "X") {
		t.Errorf("unboundError = %q", ub.Error())
	}
	iu := &InsertUnboundError{Var: "V", Expr: ast.Eq(ast.V("V"))}
	if !strings.Contains(iu.Error(), "V") || !strings.Contains(iu.Error(), "undefined") {
		t.Errorf("InsertUnboundError = %q", iu.Error())
	}
}

func TestValidatorHookDirect(t *testing.T) {
	e := newStockEngine(t)
	calls := 0
	e.SetValidator(func(u *object.Tuple) error {
		calls++
		return nil
	})
	exec(t, e, "?.euter.r-(.stkCode=hp)")
	if calls != 1 {
		t.Errorf("validator calls = %d, want 1", calls)
	}
	// Pure query requests skip validation.
	exec(t, e, "?.euter.r(.stkCode=ibm)")
	if calls != 1 {
		t.Errorf("validator ran for a read (%d calls)", calls)
	}
	// Clearing the validator stops enforcement.
	e.SetValidator(nil)
	exec(t, e, "?.euter.r-(.stkCode=ibm)")
	if calls != 1 {
		t.Errorf("cleared validator still ran (%d)", calls)
	}
}

func TestBuildPlusNestedShapes(t *testing.T) {
	e := NewEngine()
	e.Base().Put("d", object.NewTuple())
	e.Invalidate()
	// Insert a tuple whose attribute holds a nested set built by a
	// nested plus: `.d+.r(); .d.r+(.k=1, .tags(+(.t=a)))` — nested set
	// expressions inside inserts build singleton sets.
	exec(t, e, "?.d+.r()")
	exec(t, e, "?.d.r+(.k=1, .tags(.t=a))")
	ans := q(t, e, "?.d.r(.k=1, .tags(.t=T))")
	if !ans.Contains(row("T", "a")) {
		t.Errorf("nested set insert:\n%s", ans)
	}
	// `+()` inserts an empty tuple element.
	exec(t, e, "?.d.r+()")
	if got := relation(t, e, "d", "r").Len(); got != 2 {
		t.Errorf("rows = %d, want 2", got)
	}
}

func TestEmptyForUnknownShape(t *testing.T) {
	if emptyFor(ast.Eq(1)) != nil {
		t.Error("atomic expressions have no inferable empty object")
	}
	if emptyFor(ast.Epsilon{}) == nil {
		t.Error("epsilon concretizes as an empty tuple")
	}
}

func TestSortBooleanAnswerStable(t *testing.T) {
	a := newAnswer(nil)
	a.add(Row{})
	a.Sort() // no vars: must not panic
	if !a.Bool() {
		t.Error("row present")
	}
}
