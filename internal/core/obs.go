package core

import (
	"context"
	"time"

	"idl/internal/ast"
	"idl/internal/obs"
	"idl/internal/qlog"
)

// opMetrics are one operation kind's instruments (query / exec / call),
// resolved once at SetMetrics time so the hot paths never take the
// registry lock.
type opMetrics struct {
	count   *obs.Counter
	errors  *obs.Counter
	latency *obs.Histogram
	window  *obs.WindowedHistogram
	slo     *obs.SLOTracker
}

// engineMetrics caches every engine-level metric pointer. A nil
// *engineMetrics means no registry is attached; operation paths check
// that single pointer.
type engineMetrics struct {
	query opMetrics
	exec  opMetrics
	call  opMetrics

	elementsScanned *obs.Counter
	indexProbes     *obs.Counter
	indexBuilds     *obs.Counter
	attrEnums       *obs.Counter

	matCount        *obs.Counter
	matIncremental  *obs.Counter
	matIterations   *obs.Counter
	matRuleRuns     *obs.Counter
	matFactsDerived *obs.Counter
	matLatency      *obs.Histogram

	programCalls *obs.Counter

	// Parallel evaluation instruments (parallel.go): how many workers
	// are evaluating right now, how many scan partitions and parallel
	// operations were dispatched, and how long chunk-order merges take.
	workerBusy   *obs.Gauge
	partitions   *obs.Counter
	parallelOps  *obs.Counter
	mergeLatency *obs.Histogram

	// Plan-cache instruments (plan.go): cache hits (including stale
	// revalidations), misses (fresh compiles), LRU evictions, and how
	// long each compile took.
	planCacheHit   *obs.Counter
	planCacheMiss  *obs.Counter
	planCacheEvict *obs.Counter
	planCompile    *obs.Histogram

	// MVCC instruments (version.go): how many snapshot versions are
	// retained and their estimated logical footprint.
	mvccLiveVersions  *obs.Gauge
	mvccRetainedBytes *obs.Gauge
}

func opMetricsFor(r *obs.Registry, op string) opMetrics {
	return opMetrics{
		count:   r.Counter("engine." + op + ".count"),
		errors:  r.Counter("engine." + op + ".errors"),
		latency: r.Histogram("engine." + op + ".latency"),
		window:  r.Window("engine." + op + ".latency"),
		slo:     r.SLO("engine."+op, 0, 0), // registry defaults
	}
}

func newEngineMetrics(r *obs.Registry) *engineMetrics {
	if r == nil {
		return nil
	}
	return &engineMetrics{
		query:           opMetricsFor(r, "query"),
		exec:            opMetricsFor(r, "exec"),
		call:            opMetricsFor(r, "call"),
		elementsScanned: r.Counter("engine.eval.elements_scanned"),
		indexProbes:     r.Counter("engine.eval.index_probes"),
		indexBuilds:     r.Counter("engine.eval.index_builds"),
		attrEnums:       r.Counter("engine.eval.attr_enums"),
		matCount:        r.Counter("engine.materialize.count"),
		matIncremental:  r.Counter("engine.materialize.incremental"),
		matIterations:   r.Counter("engine.materialize.iterations"),
		matRuleRuns:     r.Counter("engine.materialize.rule_runs"),
		matFactsDerived: r.Counter("engine.materialize.facts_derived"),
		matLatency:      r.Histogram("engine.materialize.latency"),
		programCalls:    r.Counter("engine.program.calls"),
		workerBusy:      r.Gauge("engine.eval.worker_busy"),
		partitions:      r.Counter("engine.eval.partitions"),
		parallelOps:     r.Counter("engine.eval.parallel_ops"),
		mergeLatency:    r.Histogram("engine.eval.merge_latency"),
		planCacheHit:    r.Counter("engine.plan.cache_hit"),
		planCacheMiss:   r.Counter("engine.plan.cache_miss"),
		planCacheEvict:  r.Counter("engine.plan.evict"),
		planCompile:     r.Histogram("engine.plan.compile_ns"),

		mvccLiveVersions:  r.Gauge("mvcc.live_versions"),
		mvccRetainedBytes: r.Gauge("mvcc.retained_bytes"),
	}
}

// record publishes one finished operation.
func (em *engineMetrics) record(om *opMetrics, start time.Time, local Stats, err error) {
	om.count.Inc()
	if err != nil {
		om.errors.Inc()
	}
	d := time.Since(start)
	om.latency.Observe(d)
	om.window.Observe(d)
	om.slo.Observe(d, err != nil)
	em.evalWork(local)
}

// evalWork publishes evaluator counters accumulated by one operation.
func (em *engineMetrics) evalWork(local Stats) {
	em.elementsScanned.Add(local.ElementsScanned)
	em.indexProbes.Add(local.IndexProbes)
	em.indexBuilds.Add(local.IndexBuilds)
	em.attrEnums.Add(local.AttrEnums)
}

// SetMetrics attaches a metrics registry (nil detaches). Operations
// publish counts, error counts, latency histograms and evaluator work
// under the engine.* namespace. The published MVCC head is dropped
// because snapshots capture the metric hooks they report through.
func (e *Engine) SetMetrics(r *obs.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.metrics = r
	e.em = newEngineMetrics(r)
	e.invalidateHead()
}

// Metrics returns the attached registry, possibly nil.
func (e *Engine) Metrics() *obs.Registry {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.metrics
}

// SetTracer attaches a span tracer (nil detaches). Traced operations
// build hierarchical spans: queries get per-conjunct children, view
// materializations per-round children, update requests a program call
// tree. The published MVCC head is dropped because snapshot readers
// consult the tracer captured at freeze time to decide whether they must
// take the serialized (traceable) path.
func (e *Engine) SetTracer(t *obs.Tracer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tracer = t
	e.invalidateHead()
}

// Tracer returns the attached tracer, possibly nil.
func (e *Engine) Tracer() *obs.Tracer {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tracer
}

// annotateOpID joins a span to the flight-recorder event that opened
// the operation: when the caller's context carries a qlog op ID, the
// span gets a "qid" annotation matching the event's sequence number, so
// a trace tree can be correlated with the query journal and event log.
func annotateOpID(span *obs.Span, ctx context.Context) {
	if span == nil {
		return
	}
	if qid := qlog.OpID(ctx); qid != 0 {
		span.SetInt("qid", int64(qid))
	}
	if tid := qlog.TraceID(ctx); tid != "" {
		span.SetStr("trace", tid)
	}
}

// attachConjunctSpans converts analyze probes into per-conjunct child
// spans, in source order. Durations are each conjunct's self time.
func attachConjunctSpans(span *obs.Span, conjuncts []ast.Expr, probes map[ast.Expr]*conjunctProbe) {
	for _, c := range conjuncts {
		p := probes[c]
		if p == nil {
			continue
		}
		span.AddChild(conjunctLabel(c), p.selfTime).
			SetInt("rows", int64(p.rows)).
			SetInt("scanned", int64(p.scanned)).
			SetInt("index_probes", int64(p.indexProbes))
	}
}

// conjunctLabel renders a conjunct for span trees, truncated so one
// monster conjunct cannot flood the output.
func conjunctLabel(c ast.Expr) string {
	s := c.String()
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}

// newProbes registers an analyze probe per top-level conjunct.
func newProbes(conjuncts []ast.Expr) map[ast.Expr]*conjunctProbe {
	probes := make(map[ast.Expr]*conjunctProbe, len(conjuncts))
	for _, c := range conjuncts {
		probes[c] = &conjunctProbe{}
	}
	return probes
}
