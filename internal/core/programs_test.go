package core

import (
	"strings"
	"testing"

	"idl/internal/object"
)

// The paper's three update programs (§7.1).
var delStkClauses = []string{
	".dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S,.date=D)",
	".dbU.delStk(.stk=S, .date=D) -> .chwab.r(.date=D, .S-=X)",
	".dbU.delStk(.stk=S, .date=D) -> .ource.S-(.date=D)",
}

var rmStkClauses = []string{
	".dbU.rmStk(.stk=S) -> .euter.r-(.stkCode=S)",
	".dbU.rmStk(.stk=S) -> .chwab.r(-.S)",
	".dbU.rmStk(.stk=S) -> .ource-.S",
}

var insStkClauses = []string{
	".dbU.insStk(.stk=S, .date=D, .price=P) -> .euter.r+(.stkCode=S,.date=D,.clsPrice=P)",
	".dbU.insStk(.stk=S, .date=D, .price=P) -> .chwab.r(.date=D, +.S=P)",
	".dbU.insStk(.stk=S, .date=D, .price=P) -> .ource.S+(.date=D,.clsPrice=P)",
}

func addClauses(t testing.TB, e *Engine, clauses []string) {
	t.Helper()
	for _, c := range clauses {
		mustClause(t, e, c)
	}
}

func TestDelStkBothArguments(t *testing.T) {
	e := newStockEngine(t)
	addClauses(t, e, delStkClauses)
	exec(t, e, "?.dbU.delStk(.stk=hp, .date=3/3/85)")
	// euter: the (hp, 3/3/85) tuple is gone.
	if ans := q(t, e, "?.euter.r(.stkCode=hp,.date=3/3/85)"); ans.Bool() {
		t.Error("euter tuple should be deleted")
	}
	if relation(t, e, "euter", "r").Len() != 8 {
		t.Error("only one euter tuple should go")
	}
	// chwab: hp's price nulled on that date, attribute retained.
	if ans := q(t, e, "?.chwab.r(.date=3/3/85,.hp=P)"); ans.Bool() {
		t.Error("chwab hp price should be nulled")
	}
	if ans := q(t, e, "?.chwab.r(.date=3/1/85,.hp=50)"); !ans.Bool() {
		t.Error("chwab other dates untouched")
	}
	// ource: hp relation lost its 3/3/85 tuple but still exists.
	if ans := q(t, e, "?.ource.hp(.date=3/3/85)"); ans.Bool() {
		t.Error("ource.hp tuple should be deleted")
	}
	if ans := q(t, e, "?.ource.hp(.date=3/1/85)"); !ans.Bool() {
		t.Error("ource.hp other dates remain")
	}
}

func TestDelStkWildcardDate(t *testing.T) {
	e := newStockEngine(t)
	addClauses(t, e, delStkClauses)
	// No date: delete hp's closing price for every day, but keep the
	// structure (§7.1).
	exec(t, e, "?.dbU.delStk(.stk=hp)")
	if ans := q(t, e, "?.euter.r(.stkCode=hp)"); ans.Bool() {
		t.Error("all hp euter tuples should be gone")
	}
	// chwab still *has* the hp attribute (structure unchanged)…
	if ans := q(t, e, "?.chwab.r(.A), A = hp"); !ans.Bool() {
		t.Error("chwab attribute hp should remain")
	}
	// …but no priced value survives.
	if ans := q(t, e, "?.chwab.r(.hp=P)"); ans.Bool() {
		t.Error("all chwab hp prices should be nulled")
	}
	// ource.hp exists but is empty.
	if ans := q(t, e, "?.ource.Y, Y = hp"); !ans.Bool() {
		t.Error("ource.hp relation should remain")
	}
	if ans := q(t, e, "?.ource.hp()"); ans.Bool() {
		t.Error("ource.hp should be empty")
	}
}

func TestDelStkWildcardStock(t *testing.T) {
	e := newStockEngine(t)
	addClauses(t, e, delStkClauses)
	// No stock: delete every stock's closing price for the date.
	exec(t, e, "?.dbU.delStk(.date=3/2/85)")
	if ans := q(t, e, "?.euter.r(.date=3/2/85)"); ans.Bool() {
		t.Error("euter 3/2/85 rows should be gone")
	}
	if ans := q(t, e, "?.ource.hp(.date=3/2/85)"); ans.Bool() {
		t.Error("ource 3/2/85 rows should be gone")
	}
	if ans := q(t, e, "?.euter.r(.date=3/1/85)"); !ans.Bool() {
		t.Error("other dates remain")
	}
}

func TestRmStkUpdatesMetadata(t *testing.T) {
	e := newStockEngine(t)
	addClauses(t, e, rmStkClauses)
	exec(t, e, "?.dbU.rmStk(.stk=hp)")
	// euter: data deletion.
	if ans := q(t, e, "?.euter.r(.stkCode=hp)"); ans.Bool() {
		t.Error("euter hp rows gone")
	}
	// chwab: the attribute itself is gone from every tuple.
	if ans := q(t, e, "?.chwab.r(.A), A = hp"); ans.Bool() {
		t.Error("chwab attribute hp should be deleted")
	}
	// ource: the relation is gone.
	if ans := q(t, e, "?.ource.Y, Y = hp"); ans.Bool() {
		t.Error("ource relation hp should be deleted")
	}
	// Other stocks untouched in all three.
	if ans := q(t, e, "?.chwab.r(.ibm=P)"); !ans.Bool() {
		t.Error("ibm remains in chwab")
	}
	if ans := q(t, e, "?.ource.ibm(.clsPrice=P)"); !ans.Bool() {
		t.Error("ibm remains in ource")
	}
}

func TestInsStkInsertsEverywhere(t *testing.T) {
	e := newStockEngine(t)
	addClauses(t, e, insStkClauses)
	exec(t, e, "?.dbU.insStk(.stk=dec, .date=3/1/85, .price=80)")
	if ans := q(t, e, "?.euter.r(.stkCode=dec,.clsPrice=80)"); !ans.Bool() {
		t.Error("euter insert missing")
	}
	if ans := q(t, e, "?.chwab.r(.date=3/1/85,.dec=80)"); !ans.Bool() {
		t.Error("chwab attribute insert missing")
	}
	if ans := q(t, e, "?.ource.dec(.date=3/1/85,.clsPrice=80)"); !ans.Bool() {
		t.Error("ource relation insert missing")
	}
}

func TestInsStkRequiresAllArguments(t *testing.T) {
	e := newStockEngine(t)
	addClauses(t, e, insStkClauses)
	err := execErr(t, e, "?.dbU.insStk(.stk=dec, .date=3/1/85)")
	if !strings.Contains(err.Error(), "requires parameter") {
		t.Errorf("error = %v", err)
	}
	// Nothing changed (atomicity).
	if ans := q(t, e, "?.euter.r(.stkCode=dec)"); ans.Bool() {
		t.Error("failed call must not leave partial inserts")
	}
}

func TestBindingSignatures(t *testing.T) {
	e := newStockEngine(t)
	addClauses(t, e, delStkClauses)
	addClauses(t, e, insStkClauses)
	del, ok := e.LookupProgram("dbU", "delStk")
	if !ok {
		t.Fatal("delStk not registered")
	}
	if len(del.Required()) != 0 {
		t.Errorf("delStk requires %v, want none (all parameters optional)", del.Required())
	}
	ins, ok := e.LookupProgram("dbU", "insStk")
	if !ok {
		t.Fatal("insStk not registered")
	}
	req := ins.Required()
	if len(req) != 3 {
		t.Errorf("insStk required = %v, want [D P S]", req)
	}
	if params := ins.Params(); len(params) != 3 {
		t.Errorf("insStk params = %v", params)
	}
}

func TestCallAPIDirect(t *testing.T) {
	e := newStockEngine(t)
	addClauses(t, e, delStkClauses)
	res, err := e.Call("dbU", "delStk", map[string]object.Object{
		"S": object.Str("hp"),
		"D": object.NewDate(85, 3, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Changed() {
		t.Error("call should report changes")
	}
	if _, err := e.Call("dbU", "nosuch", nil); err == nil {
		t.Error("unknown program should error")
	}
}

func TestUnknownCallArgumentRejected(t *testing.T) {
	e := newStockEngine(t)
	addClauses(t, e, delStkClauses)
	err := execErr(t, e, "?.dbU.delStk(.bogus=hp)")
	if !strings.Contains(err.Error(), "no parameter") {
		t.Errorf("error = %v", err)
	}
}

func TestProgramCallingProgram(t *testing.T) {
	e := newStockEngine(t)
	addClauses(t, e, delStkClauses)
	// A composite program reusing delStk (nonrecursive reuse, §7.1).
	mustClause(t, e, ".dbU.purgeDay(.date=D) -> .dbU.delStk(.date=D)")
	exec(t, e, "?.dbU.purgeDay(.date=3/1/85)")
	if ans := q(t, e, "?.euter.r(.date=3/1/85)"); ans.Bool() {
		t.Error("purgeDay should cascade through delStk")
	}
}

func TestRecursiveProgramRejected(t *testing.T) {
	e := newStockEngine(t)
	mustClause(t, e, ".dbU.loop(.x=X) -> .dbU.loop(.x=X)")
	err := execErr(t, e, "?.dbU.loop(.x=1)")
	if !strings.Contains(err.Error(), "recursive") {
		t.Errorf("error = %v", err)
	}
}

func TestMutuallyRecursiveProgramsRejected(t *testing.T) {
	e := newStockEngine(t)
	mustClause(t, e, ".dbU.ping(.x=X) -> .dbU.pong(.x=X)")
	mustClause(t, e, ".dbU.pong(.x=X) -> .dbU.ping(.x=X)")
	err := execErr(t, e, "?.dbU.ping(.x=1)")
	if !strings.Contains(err.Error(), "recursive") {
		t.Errorf("error = %v", err)
	}
}

func TestProgramFailureRollsBackAllClauses(t *testing.T) {
	e := newStockEngine(t)
	// First clause succeeds; the second fails (insert with unbound var).
	mustClause(t, e, ".dbU.bad(.stk=S) -> .euter.r-(.stkCode=S)")
	mustClause(t, e, ".dbU.bad(.stk=S) -> .euter.r+(.stkCode=S, .clsPrice=Missing)")
	before := relation(t, e, "euter", "r").Len()
	execErr(t, e, "?.dbU.bad(.stk=hp)")
	if got := relation(t, e, "euter", "r").Len(); got != before {
		t.Errorf("rollback across clauses failed: %d != %d", got, before)
	}
}

func TestClauseValidation(t *testing.T) {
	e := NewEngine()
	bad := []string{
		".dbU.f(.x>X) -> .b.r-(.k=X)",  // non-equality parameter
		".dbU.f(-.x=X) -> .b.r-(.k=X)", // signed parameter
	}
	for _, src := range bad {
		c, err := parseClauseHelper(src)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if err := e.AddClause(c); err == nil {
			t.Errorf("AddClause(%q) should fail", src)
		}
	}
}

// --- View updatability (§7.2) ---

func viewUpdateEngine(t testing.TB) *Engine {
	e := newStockEngine(t)
	addRules(t, e, unifiedViewRules)
	addRules(t, e, customizedViewRules)
	// The schema administrator's translations: an insert into the unified
	// view becomes a base insert into euter (the administrator's choice of
	// translation, §7.2); a delete cascades to all three bases.
	mustClause(t, e, ".dbI.p+(.date=D, .stk=S, .price=P) -> .euter.r+(.date=D, .stkCode=S, .clsPrice=P)")
	mustClause(t, e, ".dbI.p-(.date=D, .stk=S, .price=P) -> .euter.r-(.date=D, .stkCode=S, .clsPrice=P), .chwab.r(.date=D, .S-=P2), .ource.S-(.date=D)")
	// Customized-view updates translate through the unified view's
	// updaters (building view updates from other view updates).
	mustClause(t, e, ".dbO.S+(.date=D, .clsPrice=P) -> .dbI.p+(.date=D, .stk=S, .price=P)")
	mustClause(t, e, ".dbE.r+(.date=D, .stkCode=S, .clsPrice=P) -> .dbI.p+(.date=D, .stk=S, .price=P)")
	return e
}

func TestViewInsertTranslatesToBase(t *testing.T) {
	e := viewUpdateEngine(t)
	exec(t, e, "?.dbI.p+(.date=3/9/85, .stk=dec, .price=91)")
	// Base euter received the fact.
	if ans := q(t, e, "?.euter.r(.stkCode=dec,.clsPrice=91)"); !ans.Bool() {
		t.Error("base insert missing")
	}
	// The view now shows it — and so do all customized views.
	if ans := q(t, e, "?.dbI.p(.stk=dec,.price=91)"); !ans.Bool() {
		t.Error("view should reflect its own update")
	}
	if ans := q(t, e, "?.dbO.dec(.date=3/9/85,.clsPrice=91)"); !ans.Bool() {
		t.Error("dbO should grow a dec relation")
	}
	if ans := q(t, e, "?.dbC.r(.date=3/9/85,.dec=91)"); !ans.Bool() {
		t.Error("dbC should show dec attribute")
	}
}

func TestViewDeleteTranslatesToAllBases(t *testing.T) {
	e := viewUpdateEngine(t)
	exec(t, e, "?.dbI.p-(.date=3/3/85, .stk=hp)")
	if ans := q(t, e, "?.dbI.p(.stk=hp, .date=3/3/85)"); ans.Bool() {
		t.Error("view should no longer show the fact")
	}
	if ans := q(t, e, "?.euter.r(.stkCode=hp,.date=3/3/85)"); ans.Bool() {
		t.Error("euter base delete missing")
	}
	if ans := q(t, e, "?.ource.hp(.date=3/3/85)"); ans.Bool() {
		t.Error("ource base delete missing")
	}
}

func TestHigherOrderViewUpdate(t *testing.T) {
	e := viewUpdateEngine(t)
	// Insert through a *data-dependent* view relation: dbO.newco does not
	// even exist yet; the update program creates the backing fact and the
	// next materialization grows the view schema.
	exec(t, e, "?.dbO.newco+(.date=3/9/85, .clsPrice=7)")
	if ans := q(t, e, "?.dbO.newco(.date=3/9/85,.clsPrice=7)"); !ans.Bool() {
		t.Error("dbO.newco should exist after the view update")
	}
	if ans := q(t, e, "?.euter.r(.stkCode=newco)"); !ans.Bool() {
		t.Error("base fact missing")
	}
}

func TestCustomizedViewUpdateViaUnifiedView(t *testing.T) {
	e := viewUpdateEngine(t)
	// dbE's updater routes through dbI's updater (program reuse).
	exec(t, e, "?.dbE.r+(.date=3/9/85, .stkCode=xx, .clsPrice=5)")
	if ans := q(t, e, "?.euter.r(.stkCode=xx,.clsPrice=5)"); !ans.Bool() {
		t.Error("cascaded translation missing")
	}
	if ans := q(t, e, "?.dbE.r(.stkCode=xx)"); !ans.Bool() {
		t.Error("dbE should reflect the update")
	}
}

func TestViewUpdateWithoutProgramForSign(t *testing.T) {
	e := newStockEngine(t)
	addRules(t, e, unifiedViewRules)
	mustClause(t, e, ".dbI.p+(.date=D, .stk=S, .price=P) -> .euter.r+(.date=D, .stkCode=S, .clsPrice=P)")
	// Plus works; minus has no translator.
	exec(t, e, "?.dbI.p+(.date=3/9/85,.stk=aa,.price=1)")
	err := execErr(t, e, "?.dbI.p-(.stk=aa)")
	if !strings.Contains(err.Error(), "not updatable") {
		t.Errorf("error = %v", err)
	}
}

func TestViewUpdateUndeclaredAttributeRejected(t *testing.T) {
	e := viewUpdateEngine(t)
	err := execErr(t, e, "?.dbI.p+(.date=3/9/85, .stk=aa, .price=1, .volume=99)")
	if !strings.Contains(err.Error(), "volume") {
		t.Errorf("error = %v", err)
	}
}

func TestViewUpdateMixedWithQueryConjuncts(t *testing.T) {
	e := viewUpdateEngine(t)
	// Copy hp's 3/3/85 quote to a new listing via the view, using a query
	// conjunct to bind P first.
	exec(t, e, "?.dbI.p(.date=3/3/85,.stk=hp,.price=P), .dbI.p+(.date=3/3/85,.stk=hpclone,.price=P)")
	if ans := q(t, e, "?.euter.r(.stkCode=hpclone,.clsPrice=62)"); !ans.Bool() {
		t.Error("view-mediated copy failed")
	}
}

func TestViewDeleteWildcardCascades(t *testing.T) {
	// A view delete with an omitted component must cascade through
	// program reuse as a wildcard: dbO's minus translator passes its
	// unbound price variable into dbI's minus translator.
	e := viewUpdateEngine(t)
	mustClause(t, e, ".dbO.S-(.date=D, .clsPrice=P) -> .dbI.p-(.date=D, .stk=S, .price=P)")
	exec(t, e, "?.dbO.hp-(.date=3/1/85)")
	if ans := q(t, e, "?.dbO.hp(.date=3/1/85)"); ans.Bool() {
		t.Error("view should no longer show the 3/1/85 quote")
	}
	if ans := q(t, e, "?.euter.r(.stkCode=hp,.date=3/1/85)"); ans.Bool() {
		t.Error("base delete missing")
	}
	if ans := q(t, e, "?.dbO.hp(.date=3/2/85)"); !ans.Bool() {
		t.Error("other dates must survive")
	}
}

func TestProgramCallWildcardThroughCall(t *testing.T) {
	// Program-to-program calls pass unbound arguments as wildcards.
	e := newStockEngine(t)
	addClauses(t, e, delStkClauses)
	mustClause(t, e, ".dbU.purgeStock(.stk=S) -> .dbU.delStk(.stk=S, .date=D)")
	exec(t, e, "?.dbU.purgeStock(.stk=hp)")
	if ans := q(t, e, "?.euter.r(.stkCode=hp)"); ans.Bool() {
		t.Error("wildcard date should delete all hp quotes")
	}
	if ans := q(t, e, "?.euter.r(.stkCode=ibm)"); !ans.Bool() {
		t.Error("other stocks survive")
	}
}

// TestEmpMgrViewUpdateChoice reproduces §2's motivating example: the
// empMgr view joins emp and dept, so "change this employee's manager"
// has two translations — move the employee to another department, or
// change the department's manager. The paper's resolution: the schema
// administrator states the choice as an update program; both choices are
// expressible, and each behaves differently for colleagues.
func TestEmpMgrViewUpdateChoice(t *testing.T) {
	build := func() *Engine {
		e := NewEngine()
		d := object.NewTuple()
		d.Put("emp", object.SetOf(
			object.TupleOf("name", "john", "dno", 10),
			object.TupleOf("name", "mary", "dno", 10),
			object.TupleOf("name", "ann", "dno", 20),
		))
		d.Put("dept", object.SetOf(
			object.TupleOf("dno", 10, "mgr", "boss"),
			object.TupleOf("dno", 20, "mgr", "chief"),
		))
		e.Base().Put("co", d)
		e.Invalidate()
		mustRule(t, e, ".v.empMgr+(.name=N, .mgr=M) <- .co.emp(.name=N, .dno=D), .co.dept(.dno=D, .mgr=M)")
		return e
	}

	// Choice 1: reassign the employee to a department led by the new
	// manager (affects only this employee).
	e1 := build()
	mustClause(t, e1, ".ops.setMgr(.name=N, .mgr=M) -> .co.dept(.dno=D2, .mgr=M), .co.emp-(.name=N), .co.emp+(.name=N, .dno=D2)")
	exec(t, e1, "?.ops.setMgr(.name=john, .mgr=chief)")
	if ans := q(t, e1, "?.v.empMgr(.name=john, .mgr=M)"); !ans.Contains(row("M", "chief")) {
		t.Errorf("john's manager:\n%s", ans)
	}
	if ans := q(t, e1, "?.v.empMgr(.name=mary, .mgr=M)"); !ans.Contains(row("M", "boss")) {
		t.Errorf("choice 1 must not touch mary:\n%s", ans)
	}

	// Choice 2: change the department's manager (affects every
	// colleague).
	e2 := build()
	mustClause(t, e2, ".ops.setMgr(.name=N, .mgr=M) -> .co.emp(.name=N, .dno=D), .co.dept-(.dno=D), .co.dept+(.dno=D, .mgr=M)")
	exec(t, e2, "?.ops.setMgr(.name=john, .mgr=chief)")
	if ans := q(t, e2, "?.v.empMgr(.name=john, .mgr=M)"); !ans.Contains(row("M", "chief")) {
		t.Errorf("john's manager:\n%s", ans)
	}
	if ans := q(t, e2, "?.v.empMgr(.name=mary, .mgr=M)"); !ans.Contains(row("M", "chief")) {
		t.Errorf("choice 2 must ALSO move mary:\n%s", ans)
	}
}
