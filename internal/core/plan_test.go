package core

import (
	"fmt"
	"testing"

	"idl/internal/ast"
	"idl/internal/object"
	"idl/internal/parser"
)

// Planner and plan-cache unit tests (DESIGN.md §11): fingerprint
// stability, hit/stale/miss/cold outcomes, LRU bounds, prepared-query
// freshness, and the per-relation index-cache invalidation the planner
// work rides on.

func mustParse(t testing.TB, src string) *ast.Query {
	t.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

func TestFingerprintStability(t *testing.T) {
	// Identical text parses to identical fingerprints across parses.
	a := Fingerprint(mustParse(t, "?.euter.r(.stkCode=S, .clsPrice>200)"))
	b := Fingerprint(mustParse(t, "?.euter.r(.stkCode=S, .clsPrice>200)"))
	if a != b {
		t.Fatalf("same query text fingerprints differently: %x vs %x", a, b)
	}
	// Structurally distinct queries must not collide pairwise.
	variants := []string{
		"?.euter.r(.stkCode=S, .clsPrice>200)",
		"?.euter.r(.stkCode=S, .clsPrice>201)",
		"?.euter.r(.stkCode=S, .clsPrice<200)",
		"?.euter.r(.stkCode=T, .clsPrice>200)",
		"?.euter.r(.stkCode=S)",
		"?.chwab.r(.stkCode=S, .clsPrice>200)",
		"?.euter.r~(.stkCode=S, .clsPrice>200)",
		"?.euter.r(.stkCode=S), .euter.r(.clsPrice>200)",
		"?.X.Y",
		"?.X.Y, X = ource",
	}
	seen := map[uint64]string{}
	for _, src := range variants {
		fp := Fingerprint(mustParse(t, src))
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision: %q and %q both hash to %x", prev, src, fp)
		}
		seen[fp] = src
	}
}

// planOutcome runs a query and returns the plan-cache outcome it reports.
func planOutcome(t testing.TB, e *Engine, src string) string {
	t.Helper()
	ans, err := e.Query(mustParse(t, src))
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	if ans.Plan == nil {
		t.Fatalf("query %q: no plan info attached", src)
	}
	return ans.Plan.Cache
}

func TestPlanCacheOutcomes(t *testing.T) {
	e := newStockEngine(t)
	const query = "?.euter.r(.stkCode=hp, .clsPrice=P)"

	if got := planOutcome(t, e, query); got != "miss" {
		t.Fatalf("first run: outcome %q, want miss", got)
	}
	if got := planOutcome(t, e, query); got != "hit" {
		t.Fatalf("second run: outcome %q, want hit", got)
	}

	// A mutation elsewhere bumps the epoch but leaves every dependency of
	// this plan untouched: revalidation succeeds, no recompile.
	before := e.Epoch()
	exec(t, e, "?.ource.hp+(.date=3/9/85, .clsPrice=70)")
	if after := e.Epoch(); after <= before {
		t.Fatalf("epoch did not advance on mutation: %d -> %d", before, after)
	}
	if got := planOutcome(t, e, query); got != "stale" {
		t.Fatalf("after unrelated update: outcome %q, want stale", got)
	}

	// A mutation of the queried relation moves its set version: the plan
	// fails validation and recompiles.
	exec(t, e, "?.euter.r+(.date=3/9/85, .stkCode=hp, .clsPrice=70)")
	if got := planOutcome(t, e, query); got != "miss" {
		t.Fatalf("after relevant update: outcome %q, want miss", got)
	}

	st := e.PlanCacheStats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("counter drift: %+v, want 2 hits (one revalidated) and 2 misses", st)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	e := NewEngineWithOptions(Options{NoPlanCache: true})
	buildStockBase(t, e)
	const query = "?.euter.r(.stkCode=hp, .clsPrice=P)"
	for i := 0; i < 2; i++ {
		if got := planOutcome(t, e, query); got != "cold" {
			t.Fatalf("run %d: outcome %q, want cold", i, got)
		}
	}
	if st := e.PlanCacheStats(); st.Size != 0 || st.Hits != 0 {
		t.Fatalf("disabled cache accumulated state: %+v", st)
	}
}

func TestSetPlanCachingToggle(t *testing.T) {
	e := newStockEngine(t)
	const query = "?.euter.r(.stkCode=hp, .clsPrice=P)"
	planOutcome(t, e, query) // miss, populates
	e.SetPlanCaching(false)
	if got := planOutcome(t, e, query); got != "cold" {
		t.Fatalf("caching off: outcome %q, want cold", got)
	}
	e.SetPlanCaching(true)
	if got := planOutcome(t, e, query); got != "hit" {
		t.Fatalf("caching back on: outcome %q, want hit (resident plan survives the toggle)", got)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	e := NewEngineWithOptions(Options{PlanCacheSize: 2})
	buildStockBase(t, e)
	queries := []string{
		"?.euter.r(.stkCode=hp, .clsPrice=P)",
		"?.euter.r(.stkCode=ibm, .clsPrice=P)",
		"?.euter.r(.stkCode=sun, .clsPrice=P)",
	}
	for _, src := range queries {
		planOutcome(t, e, src)
	}
	st := e.PlanCacheStats()
	if st.Size != 2 || st.Evictions != 1 {
		t.Fatalf("after 3 distinct queries at capacity 2: %+v, want size 2 / 1 eviction", st)
	}
	// The oldest entry was evicted; re-running it misses, and evicts the
	// second-oldest in turn.
	if got := planOutcome(t, e, queries[0]); got != "miss" {
		t.Fatalf("evicted query re-run: outcome %q, want miss", got)
	}
	// The most recently used entry is still resident.
	if got := planOutcome(t, e, queries[2]); got != "hit" {
		t.Fatalf("MRU query re-run: outcome %q, want hit", got)
	}
}

func TestClearPlanCache(t *testing.T) {
	e := newStockEngine(t)
	const query = "?.euter.r(.stkCode=hp, .clsPrice=P)"
	planOutcome(t, e, query)
	planOutcome(t, e, query)
	e.ClearPlanCache()
	if st := e.PlanCacheStats(); st.Size != 0 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("clear should empty the cache and keep counters: %+v", st)
	}
	if got := planOutcome(t, e, query); got != "miss" {
		t.Fatalf("after clear: outcome %q, want miss", got)
	}
}

func TestPreparedQueryStaysFresh(t *testing.T) {
	e := newStockEngine(t)
	pq, err := e.Prepare(mustParse(t, "?.euter.r(.stkCode=hp, .clsPrice=P)"))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := pq.Query()
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 3 || ans.Plan.Cache != "hit" {
		t.Fatalf("first prepared run: %d rows outcome %q, want 3 rows / hit", ans.Len(), ans.Plan.Cache)
	}

	// Mutating the queried relation must be visible on the next execution:
	// the plan recompiles, and the answer includes the new tuple.
	exec(t, e, "?.euter.r+(.date=3/9/85, .stkCode=hp, .clsPrice=70)")
	ans, err = pq.Query()
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 4 {
		t.Fatalf("prepared answer is stale: %d rows, want 4 after insert", ans.Len())
	}
	if ans.Plan.Cache != "miss" {
		t.Fatalf("after relevant update: outcome %q, want miss (recompiled)", ans.Plan.Cache)
	}

	// A mutation elsewhere revalidates without recompiling.
	exec(t, e, "?.ource.hp+(.date=3/9/85, .clsPrice=70)")
	ans, err = pq.Query()
	if err != nil {
		t.Fatal(err)
	}
	if ans.Plan.Cache != "stale" {
		t.Fatalf("after unrelated update: outcome %q, want stale", ans.Plan.Cache)
	}
}

func TestPrepareRejectsUpdates(t *testing.T) {
	e := newStockEngine(t)
	if _, err := e.Prepare(mustParse(t, "?.euter.r+(.date=3/9/85, .stkCode=hp, .clsPrice=70)")); err == nil {
		t.Fatal("Prepare accepted an update request")
	}
}

// TestIndexCacheSurvivesUnrelatedUpdate is the regression test for
// per-relation index invalidation: an update to one relation must not
// discard another relation's hash index. Both relations exceed the
// 16-element index threshold; equality probes build their indexes, then a
// mutation of dbA.r must leave dbB.r's index reusable (no rebuild on the
// next probe) while dbA.r's own index rebuilds.
func TestIndexCacheSurvivesUnrelatedUpdate(t *testing.T) {
	e := NewEngine()
	u := e.Base()
	for _, name := range []string{"dbA", "dbB"} {
		rel := object.NewSet()
		for i := 0; i < 24; i++ {
			rel.Add(object.TupleOf("k", i%6, "v", fmt.Sprintf("%s-%d", name, i)))
		}
		d := object.NewTuple()
		d.Put("r", rel)
		u.Put(name, d)
	}
	e.Invalidate()

	builds := func() uint64 { return e.Stats().IndexBuilds }
	q(t, e, "?.dbA.r(.k=3, .v=V)")
	q(t, e, "?.dbB.r(.k=3, .v=V)")
	after := builds()
	if after == 0 {
		t.Fatal("equality probes built no indexes; fixture below the index threshold?")
	}

	// Warm re-runs reuse both indexes.
	q(t, e, "?.dbA.r(.k=4, .v=V)")
	q(t, e, "?.dbB.r(.k=4, .v=V)")
	if got := builds(); got != after {
		t.Fatalf("warm probes rebuilt indexes: %d -> %d builds", after, got)
	}

	// Mutate dbA only. dbB's index must survive: its next probe may not
	// rebuild anything.
	exec(t, e, "?.dbA.r+(.k=99, .v=fresh)")
	q(t, e, "?.dbB.r(.k=5, .v=V)")
	if got := builds(); got != after {
		t.Fatalf("update to dbA.r invalidated dbB.r's index: %d -> %d builds", after, got)
	}

	// dbA's index, by contrast, rebuilds exactly once on next use.
	q(t, e, "?.dbA.r(.k=5, .v=V)")
	if got := builds(); got != after+1 {
		t.Fatalf("dbA.r probe after mutation: %d -> %d builds, want exactly one rebuild", after, got)
	}
}
