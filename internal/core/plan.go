package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"idl/internal/ast"
	"idl/internal/object"
)

// Compiled query plans (DESIGN.md §11). A plan is the reusable half of a
// query evaluation: the per-conjunct safety analysis (consumed-variable
// lists), the cost-based conjunct ranks derived from catalog statistics,
// the answer-variable signature, and the set of universe objects the
// ranking touched (the plan's dependencies). Plans carry no data — the
// evaluator always reads the live effective universe — so a cached plan
// can never produce a wrong answer; dependencies exist to keep the ranks
// (and therefore the enumeration order) byte-identical to what a fresh
// compilation would produce.

// costHuge ranks a conjunct whose enumeration is data-dependent in a way
// statistics cannot bound (a higher-order database or relation variable):
// it runs after every estimable conjunct that is runnable alongside it.
const costHuge = 1e18

// bodyAnalysis is the execution-relevant analysis of one tuple-expression
// body: consumed-variable lists for every nested tuple expression
// (safety), and cost ranks for the tuple expressions that schedule
// cost-based — the top-level body only; nested conjunct lists keep source
// order. Both maps are complete for the analyzed body, so evaluators
// (including parallel workers) share them read-only.
type bodyAnalysis struct {
	consumed map[*ast.TupleExpr][][]string
	ranks    map[*ast.TupleExpr][]float64
}

// collectConsumed precomputes the consumed-variable lists of every tuple
// expression nested anywhere in e (the analysis is environment
// independent, so it is computed once per compilation instead of once per
// evaluation).
func collectConsumed(e ast.Expr, out map[*ast.TupleExpr][][]string) {
	switch x := e.(type) {
	case *ast.Not:
		collectConsumed(x.X, out)
	case *ast.AttrExpr:
		collectConsumed(x.Expr, out)
	case *ast.SetExpr:
		collectConsumed(x.X, out)
	case *ast.TupleExpr:
		lists := make([][]string, len(x.Conjuncts))
		for i, c := range x.Conjuncts {
			lists[i] = consumedVars(c)
			collectConsumed(c, out)
		}
		out[x] = lists
	}
}

// consumedMap returns the complete consumed-variable analysis of a body.
func consumedMap(body *ast.TupleExpr) map[*ast.TupleExpr][][]string {
	out := make(map[*ast.TupleExpr][][]string)
	collectConsumed(body, out)
	return out
}

// analyzeBody computes the full execution analysis of a body against the
// given effective universe: consumed lists plus cost ranks for the
// top-level conjuncts. consumed may be nil (computed here) or a
// precomputed map shared with the caller (rule bodies reuse theirs across
// materializations). Safe without e.mu when eff is an immutable snapshot
// (statistics live in a concurrent memo).
func (e *Engine) analyzeBody(body *ast.TupleExpr, eff *object.Tuple, consumed map[*ast.TupleExpr][][]string) *bodyAnalysis {
	if consumed == nil {
		consumed = consumedMap(body)
	}
	ranks := make([]float64, len(body.Conjuncts))
	for i, c := range body.Conjuncts {
		ranks[i] = e.estimateConjunct(c, eff, nil)
	}
	return &bodyAnalysis{
		consumed: consumed,
		ranks:    map[*ast.TupleExpr][]float64{body: ranks},
	}
}

// planDep records one universe object the rank computation resolved: the
// navigation path (database, optional relation) and the object it reached
// — nil when the path resolved to nothing. A plan stays valid while every
// dep re-resolves to the same object (same set version); then a fresh
// compilation would reproduce the same ranks, so the cached plan's
// enumeration order is byte-identical to cold compilation.
type planDep struct {
	db, rel string
	obj     object.Object // resolved object; nil = absent
	version uint64        // set version when obj is a *object.Set
}

// queryPlan is a compiled query: its own AST (cache hits execute the
// plan's AST, so every evaluation of one plan walks identical pointers),
// the answer-variable signature, the body analysis, per-conjunct row
// estimates, and the dependency set with the engine epoch at which it was
// last validated.
type queryPlan struct {
	key       planKey
	q         *ast.Query
	vars      []string
	an        *bodyAnalysis
	deps      []planDep
	epoch     uint64
	compileNS int64
}

// PlanInfo reports how an answer's plan was obtained; attached to Answer
// by QueryCtx so the facade and query log can surface cache behavior.
type PlanInfo struct {
	// Cache is "hit" (epoch unchanged), "stale" (deps revalidated after
	// an epoch bump), "miss" (compiled and cached), or "cold" (compiled,
	// caching disabled). Empty for interpreted/unscheduled evaluation.
	Cache string
	// CompileNS is the compile time in nanoseconds when this call
	// compiled a plan; 0 on cache hits.
	CompileNS int64
}

// compilePlan builds a plan for q against the given effective universe,
// stamped at the given epoch. Safe without e.mu when eff is an immutable
// snapshot.
func (e *Engine) compilePlan(q *ast.Query, eff *object.Tuple, key planKey, epoch uint64, em *engineMetrics) *queryPlan {
	start := time.Now()
	consumed := consumedMap(q.Body)
	var deps []planDep
	ranks := make([]float64, len(q.Body.Conjuncts))
	for i, c := range q.Body.Conjuncts {
		ranks[i] = e.estimateConjunct(c, eff, &deps)
	}
	pl := &queryPlan{
		key:  key,
		q:    q,
		vars: ast.PositiveVars(q.Body),
		an: &bodyAnalysis{
			consumed: consumed,
			ranks:    map[*ast.TupleExpr][]float64{q.Body: ranks},
		},
		deps:  deps,
		epoch: epoch,
	}
	pl.compileNS = time.Since(start).Nanoseconds()
	if em != nil {
		em.planCompile.Observe(time.Duration(pl.compileNS))
	}
	return pl
}

// validatePlan re-resolves every dependency against the current effective
// universe: pointer-identical objects (and unchanged set versions) mean a
// fresh compilation would produce the same ranks, so the plan may be
// reused across the epoch bump.
func (e *Engine) validatePlan(pl *queryPlan, eff *object.Tuple) bool {
	for _, d := range pl.deps {
		var cur object.Object
		obj, has := eff.Get(d.db)
		if has && d.rel == "" {
			cur = obj
		} else if has {
			if dbt, ok := obj.(*object.Tuple); ok {
				cur, _ = dbt.Get(d.rel)
			}
		}
		if cur != d.obj {
			return false
		}
		if set, ok := cur.(*object.Set); ok && set.Version() != d.version {
			return false
		}
	}
	return true
}

// planFor returns a plan for q, consulting the fingerprint-keyed cache
// unless caching is disabled, plus the cache outcome ("hit", "stale",
// "miss", "cold"). eff must be immutable for the duration of the call —
// a frozen MVCC snapshot, or the live effective universe with e.mu held.
// The cache itself is guarded by e.planMu, not e.mu, so lock-free
// snapshot readers and the locked mutation path share one cache without
// contending on the engine mutex.
func (e *Engine) planFor(q *ast.Query, eff *object.Tuple, epoch uint64, opts Options, em *engineMetrics) (*queryPlan, string) {
	key := planKey{fp: ast.Fingerprint(q), useIndex: opts.UseIndex}
	if opts.NoPlanCache {
		return e.compilePlan(q, eff, key, epoch, em), "cold"
	}
	e.planMu.Lock()
	defer e.planMu.Unlock()
	if pl := e.plans.get(key); pl != nil {
		if pl.epoch == epoch {
			e.planHits++
			if em != nil {
				em.planCacheHit.Inc()
			}
			return pl, "hit"
		}
		if e.validatePlan(pl, eff) {
			// Epoch moved but every dependency is unchanged: the change
			// was elsewhere in the universe. Re-stamp — upward only, so a
			// reader pinned to an older snapshot never drags a fresher
			// plan's stamp backwards — and reuse.
			if epoch > pl.epoch {
				pl.epoch = epoch
			}
			e.planHits++
			if em != nil {
				em.planCacheHit.Inc()
			}
			return pl, "stale"
		}
		if epoch < pl.epoch {
			// The cached plan is stamped for a newer universe than this
			// pinned snapshot; compile a private plan for the snapshot
			// without evicting the fresher one.
			e.planMisses++
			if em != nil {
				em.planCacheMiss.Inc()
			}
			return e.compilePlan(q, eff, key, epoch, em), "miss"
		}
	}
	e.planMisses++
	if em != nil {
		em.planCacheMiss.Inc()
	}
	pl := e.compilePlan(q, eff, key, epoch, em)
	if e.plans.put(key, pl) {
		e.planEvictions++
		if em != nil {
			em.planCacheEvict.Inc()
		}
	}
	return pl, "miss"
}

// firstRunnable mirrors the scheduler's first pick under the empty
// substitution: the minimum-rank conjunct among those with no consumed
// variables (source order breaking ties), or -1 when none is runnable.
// scanTarget (parallel.go) and the plan simulation must agree with
// scheduleConjuncts on this pick.
func firstRunnable(consumed [][]string, ranks []float64) int {
	pick := -1
	for i := range consumed {
		if len(consumed[i]) != 0 {
			continue
		}
		if ranks == nil {
			return i
		}
		if pick < 0 || ranks[i] < ranks[pick] {
			pick = i
		}
	}
	return pick
}

// estimateConjunct estimates the rows one top-level conjunct enumerates,
// from catalog statistics. Filters (constraints, negations, atomics) cost
// nothing — once runnable they only prune. deps, when non-nil, records
// every universe object the estimate resolved. Callers hold e.mu.
func (e *Engine) estimateConjunct(c ast.Expr, eff *object.Tuple, deps *[]planDep) float64 {
	switch x := c.(type) {
	case *ast.AttrExpr:
		return e.estimateAttr(x, eff, deps)
	case *ast.TupleExpr:
		return 1
	case *ast.Constraint:
		if x.Op == ast.OpEQ {
			_, lVar := x.L.(ast.Var)
			_, rVar := x.R.(ast.Var)
			if lVar && rVar {
				// `X = Y` consumes neither side (the runtime binds
				// whichever is free once one is bound), so the safety
				// analysis always calls it runnable. Source order placed it
				// after its producers; cost order must too, or it runs with
				// both sides unbound and raises UnsafeError.
				return costHuge
			}
		}
		return 0
	default:
		// Epsilon, *Not, *Atomic, *VarExpr: pure tests or single bindings
		// against the universe object itself.
		return 0
	}
}

// estimateAttr estimates a `.db(...)` conjunct by resolving its constant
// path against the effective universe and consulting relation statistics.
func (e *Engine) estimateAttr(a *ast.AttrExpr, eff *object.Tuple, deps *[]planDep) float64 {
	db, ok := constTermName(a.Name)
	if !ok {
		// Higher-order database enumeration: unbounded by statistics.
		return costHuge
	}
	obj, has := eff.Get(db)
	te, isTE := a.Expr.(*ast.TupleExpr)
	if deps != nil && (!has || !isTE) {
		// Leaf dep on the database object itself (existence / identity).
		var rec object.Object
		if has {
			rec = obj
		}
		*deps = append(*deps, planDep{db: db, obj: rec})
	}
	if !has {
		return 0 // absent database: the conjunct enumerates nothing
	}
	dbt, isTup := obj.(*object.Tuple)
	if !isTup || !isTE {
		return 1 // navigation into a non-tuple or a non-conjunct body
	}
	cost := 0.0
	for _, rc := range te.Conjuncts {
		ra, ok := rc.(*ast.AttrExpr)
		if !ok {
			continue // relation-level filters cost nothing extra
		}
		rel, ok := constTermName(ra.Name)
		if !ok {
			return costHuge // higher-order relation enumeration
		}
		robj, rhas := dbt.Get(rel)
		if deps != nil {
			d := planDep{db: db, rel: rel}
			if rhas {
				d.obj = robj
				if set, ok := robj.(*object.Set); ok {
					d.version = set.Version()
				}
			}
			*deps = append(*deps, d)
		}
		if !rhas {
			continue // absent relation enumerates nothing
		}
		set, ok := robj.(*object.Set)
		if !ok {
			cost++
			continue
		}
		cost += e.estimateSet(ra.Expr, set)
	}
	return cost
}

// estimateSet estimates the rows a relation-level expression yields from
// a set: full cardinality for a scan, cardinality over the attribute's
// distinct count for an equality-pinned scan or index probe.
func (e *Engine) estimateSet(inner ast.Expr, set *object.Set) float64 {
	card := float64(set.Len())
	se, ok := inner.(*ast.SetExpr)
	if !ok {
		return 1 // atomic/navigate on the set value itself
	}
	te, ok := se.X.(*ast.TupleExpr)
	if !ok {
		return card
	}
	for _, c := range te.Conjuncts {
		attr, ok := staticGroundEq(c)
		if !ok {
			continue
		}
		st := e.statFor(set)
		if d := st.distinct[attr]; d > 0 {
			return card / float64(d)
		}
		return 1 // equality on an unseen attribute: assume selective
	}
	return card
}

// staticGroundEq recognizes `.attr = const` conjuncts — the statically
// decidable subset of groundEqConjunct (no environment, so bound-variable
// terms do not qualify).
func staticGroundEq(c ast.Expr) (string, bool) {
	a, ok := c.(*ast.AttrExpr)
	if !ok || a.Sign != ast.SignNone {
		return "", false
	}
	attr, ok := constTermName(a.Name)
	if !ok {
		return "", false
	}
	at, ok := a.Expr.(*ast.Atomic)
	if !ok || at.Op != ast.OpEQ || at.Sign != ast.SignNone {
		return "", false
	}
	ct, ok := at.Term.(ast.Const)
	if !ok {
		return "", false
	}
	if !ct.Value.Kind().IsAtomic() {
		return "", false
	}
	return attr, true
}

// ---------------------------------------------------------------------------
// Prepared queries

// PreparedQuery is a query compiled once and executable many times. Each
// execution revalidates the plan against the catalog epoch (recompiling
// when dependencies moved), so a prepared query never returns stale
// answers — preparation only amortizes parsing-free analysis, never
// correctness. Executions are safe for concurrent use: like ad-hoc
// queries they pin the MVCC head snapshot and evaluate lock-free; the
// prepared plan itself is guarded by a small private mutex (held only
// around revalidation, never during evaluation).
type PreparedQuery struct {
	e  *Engine
	mu sync.Mutex // guards pl: revalidation may restamp or replace it
	pl *queryPlan
}

// Prepare compiles a query into a reusable plan. The plan is private to
// the returned PreparedQuery (it does not populate the shared cache).
func (e *Engine) Prepare(q *ast.Query) (*PreparedQuery, error) {
	if ast.HasUpdate(q.Body) {
		return nil, fmt.Errorf("core: cannot prepare an update request; use Execute")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	eff, err := e.refreshEffective(nil)
	if err != nil {
		return nil, err
	}
	key := planKey{fp: ast.Fingerprint(q), useIndex: e.opts.UseIndex}
	return &PreparedQuery{e: e, pl: e.compilePlan(q, eff, key, e.epoch, e.em)}, nil
}

// Query executes the prepared plan against the current universe.
func (p *PreparedQuery) Query() (*Answer, error) {
	return p.QueryCtx(context.Background())
}

// revalidate brings the prepared plan up to date against eff at epoch and
// returns the plan to execute plus its cache outcome. A plan stamped for
// a newer universe than an older pinned snapshot is left untouched and a
// throwaway plan is compiled for that snapshot.
func (p *PreparedQuery) revalidate(eff *object.Tuple, epoch uint64, em *engineMetrics) (*queryPlan, *PlanInfo) {
	e := p.e
	p.mu.Lock()
	defer p.mu.Unlock()
	pl := p.pl
	info := &PlanInfo{Cache: "hit"}
	if pl.epoch == epoch {
		return pl, info
	}
	if e.validatePlan(pl, eff) {
		if epoch > pl.epoch {
			pl.epoch = epoch
		}
		info.Cache = "stale"
		return pl, info
	}
	fresh := e.compilePlan(pl.q, eff, pl.key, epoch, em)
	if epoch > pl.epoch {
		p.pl = fresh
	}
	info.Cache = "miss"
	info.CompileNS = fresh.compileNS
	return fresh, info
}

// QueryCtx executes the prepared plan under a context. A stale plan
// (catalog epoch moved and a dependency changed) is recompiled in place
// first. Like Engine.QueryCtx, it pins the published head snapshot and
// evaluates without the engine mutex when it can.
func (p *PreparedQuery) QueryCtx(ctx context.Context) (*Answer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e := p.e
	if v := e.pinHead(); v != nil {
		if v.opts.SerialReads || v.tracer != nil {
			v.unpin()
		} else {
			defer v.unpin()
			pl, info := p.revalidate(v.eff, v.epoch, v.em)
			return e.runSnapshot(cancellable(ctx), ctx, pl.q, v, pl, info)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cctx := cancellable(ctx)
	rounds := e.fixpointRounds
	eff, err := e.refreshEffective(cctx)
	if err != nil {
		return nil, err
	}
	if !e.opts.SerialReads {
		e.publishHeadLocked()
	}
	pl, info := p.revalidate(eff, e.epoch, e.em)
	ans, err := e.runPlanned(cctx, ctx, pl.q, pl, info)
	if ans != nil {
		ans.Resources.FixpointRounds = e.fixpointRounds - rounds
	}
	return ans, err
}
