package core

import (
	"sync"
	"unsafe"

	"idl/internal/object"
)

// indexCache holds lazily built per-(set, attribute) hash indexes mapping
// attribute values to the elements carrying them. An index is rebuilt when
// its set's version counter moves (the update evaluator bumps versions by
// removing and re-adding mutated elements; the MVCC COW path replaces the
// set pointer outright, which reads as a miss here).
//
// The cache is owned by an Engine and shared across its evaluations,
// including the worker goroutines of parallel evaluation (parallel.go)
// and, since the MVCC refactor, fully concurrent snapshot readers. It is
// sharded by set pointer with a read/write mutex per shard: once an index
// is built, concurrent readers take only a shard read-lock — the hot
// lookup path no longer serializes parallel workers on one mutex. A miss
// upgrades to the shard write-lock and double-checks before building, so
// concurrent workers still share one build of each index.
type indexCache struct {
	shards [indexShards]indexShard
}

// indexShards is the shard count; a small power of two keeps the
// pointer-hash cheap while spreading relations across locks.
const indexShards = 16

type indexShard struct {
	mu sync.RWMutex
	m  map[indexKey]*setIndex
}

type indexKey struct {
	set  *object.Set
	attr string
}

type setIndex struct {
	version uint64
	byValue map[uint64][]object.Object // value hash -> elements
}

func newIndexCache() *indexCache {
	c := &indexCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[indexKey]*setIndex)
	}
	return c
}

// shardFor picks the shard for a set by mixing its pointer bits.
func (c *indexCache) shardFor(set *object.Set) *indexShard {
	// Fibonacci hash of the pointer; low bits of Go pointers are aligned
	// zeros, so mix before masking.
	h := uint64(uintptr(unsafe.Pointer(set))) * 0x9e3779b97f4a7c15
	return &c.shards[(h>>59)&(indexShards-1)]
}

// lookup returns the elements of set whose attr equals val (candidates:
// hash collisions are filtered by the caller's full evaluation).
func (c *indexCache) lookup(set *object.Set, attr string, val object.Object, stats *Stats) []object.Object {
	sh := c.shardFor(set)
	key := indexKey{set: set, attr: attr}
	ver := set.Version()
	sh.mu.RLock()
	idx, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok && idx.version == ver {
		return idx.byValue[val.Hash()]
	}
	sh.mu.Lock()
	idx, ok = sh.m[key]
	if !ok || idx.version != ver {
		idx = buildIndex(set, attr)
		sh.m[key] = idx
		stats.IndexBuilds++
	}
	sh.mu.Unlock()
	return idx.byValue[val.Hash()]
}

func buildIndex(set *object.Set, attr string) *setIndex {
	idx := &setIndex{version: set.Version(), byValue: make(map[uint64][]object.Object)}
	set.Each(func(elem object.Object) bool {
		tup, ok := elem.(*object.Tuple)
		if !ok {
			return true
		}
		v, ok := tup.Get(attr)
		if !ok {
			return true
		}
		h := v.Hash()
		idx.byValue[h] = append(idx.byValue[h], elem)
		return true
	})
	return idx
}

// retain drops every index whose set is not in the live set — the
// relations reachable from the (just rebuilt) effective universe and any
// retained MVCC snapshot — and keeps the rest. Per-relation invalidation
// instead of a wholesale wipe: an update to one relation no longer
// discards every other relation's index. Retention is always safe:
// lookup re-checks the set's version and rebuilds on mismatch, so a
// retained index over a mutated set simply rebuilds on next use.
func (c *indexCache) retain(live map[*object.Set]bool) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for key := range sh.m {
			if !live[key.set] {
				delete(sh.m, key)
			}
		}
		sh.mu.Unlock()
	}
}
