package core

import (
	"sync"

	"idl/internal/object"
)

// indexCache holds lazily built per-(set, attribute) hash indexes mapping
// attribute values to the elements carrying them. An index is rebuilt when
// its set's version counter moves (the update evaluator bumps versions by
// removing and re-adding mutated elements).
//
// The cache is owned by an Engine and shared across its evaluations,
// including the worker goroutines of parallel evaluation (parallel.go):
// a mutex serializes lookups, so concurrent workers share one build of
// each index instead of building per-worker copies. The critical section
// is a map probe (plus the build on a miss); the uncontended lock is
// noise next to the candidate enumeration it guards.
type indexCache struct {
	mu sync.Mutex
	m  map[indexKey]*setIndex
}

type indexKey struct {
	set  *object.Set
	attr string
}

type setIndex struct {
	version uint64
	byValue map[uint64][]object.Object // value hash -> elements
}

func newIndexCache() *indexCache {
	return &indexCache{m: make(map[indexKey]*setIndex)}
}

// lookup returns the elements of set whose attr equals val (candidates:
// hash collisions are filtered by the caller's full evaluation).
func (c *indexCache) lookup(set *object.Set, attr string, val object.Object, stats *Stats) []object.Object {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := indexKey{set: set, attr: attr}
	idx, ok := c.m[key]
	if !ok || idx.version != set.Version() {
		idx = buildIndex(set, attr)
		c.m[key] = idx
		stats.IndexBuilds++
	}
	return idx.byValue[val.Hash()]
}

func buildIndex(set *object.Set, attr string) *setIndex {
	idx := &setIndex{version: set.Version(), byValue: make(map[uint64][]object.Object)}
	set.Each(func(elem object.Object) bool {
		tup, ok := elem.(*object.Tuple)
		if !ok {
			return true
		}
		v, ok := tup.Get(attr)
		if !ok {
			return true
		}
		h := v.Hash()
		idx.byValue[h] = append(idx.byValue[h], elem)
		return true
	})
	return idx
}

// retain drops every index whose set is not in the live set — the
// relations reachable from the (just rebuilt) effective universe — and
// keeps the rest. Per-relation invalidation instead of a wholesale wipe:
// an update to one relation no longer discards every other relation's
// index. Retention is always safe: lookup re-checks the set's version
// and rebuilds on mismatch, so a retained index over a mutated set
// simply rebuilds on next use.
func (c *indexCache) retain(live map[*object.Set]bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key := range c.m {
		if !live[key.set] {
			delete(c.m, key)
		}
	}
}
