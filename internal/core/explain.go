package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"idl/internal/ast"
	"idl/internal/object"
)

// Explain reports how the engine would evaluate a query: the safety-
// scheduled order of its top-level conjuncts and, for each, the access
// path of its outermost set expression (index probe vs. scan) and the
// variables it binds. It is a static analysis — no data is enumerated
// beyond resolving index applicability — backing the CLI's `\explain`.
type Explain struct {
	Steps []ExplainStep

	// Analyzed is set by ExplainAnalyzeQuery: the query was executed and
	// each step carries actuals; Rows/Total summarize the run.
	Analyzed bool
	Rows     int
	Total    time.Duration
}

// ExplainStep describes one scheduled conjunct.
type ExplainStep struct {
	Conjunct string   // source rendering
	Kind     string   // "query", "negation", "constraint"
	Access   string   // "index", "scan", "navigate", "n/a"
	Binds    []string // variables this conjunct can produce
	Consumes []string // variables it needs bound first
	Deferred bool     // true when scheduling moved it later than written
	// Skipped marks a conjunct over a federated member database whose
	// last sync failed: in best-effort mode it evaluates against an empty
	// member and contributes nothing.
	Skipped bool
	// EstRows is the planner's estimated row count for this conjunct,
	// from catalog statistics; Estimated marks the estimate as present.
	// Higher-order conjuncts (whose enumeration statistics cannot bound)
	// and unplanned runs carry none.
	EstRows   int64
	Estimated bool
	// Analyze carries runtime actuals when the plan came from
	// ExplainAnalyzeQuery; nil on static plans.
	Analyze *StepActuals
}

// StepActuals are one conjunct's measured runtime behaviour: rows it
// produced (continuation entries), evaluator work, and self wall time
// (excluding downstream conjuncts).
type StepActuals struct {
	Rows        uint64
	Scanned     uint64
	IndexProbes uint64
	Time        time.Duration
}

// String renders the plan as an indented list; analyzed plans append
// per-step actuals and a summary line.
func (e *Explain) String() string {
	var b strings.Builder
	for i, s := range e.Steps {
		fmt.Fprintf(&b, "%d. [%s/%s] %s", i+1, s.Kind, s.Access, s.Conjunct)
		if len(s.Binds) > 0 {
			fmt.Fprintf(&b, "  binds %s", strings.Join(s.Binds, ","))
		}
		if len(s.Consumes) > 0 {
			fmt.Fprintf(&b, "  needs %s", strings.Join(s.Consumes, ","))
		}
		if s.Deferred {
			b.WriteString("  (deferred)")
		}
		if s.Skipped {
			b.WriteString("  (skipped: member unavailable)")
		}
		if s.Estimated {
			fmt.Fprintf(&b, "  (est rows=%d)", s.EstRows)
		}
		if s.Analyze != nil {
			fmt.Fprintf(&b, "  (actual rows=%d scanned=%d probes=%d time=%s)",
				s.Analyze.Rows, s.Analyze.Scanned, s.Analyze.IndexProbes, s.Analyze.Time)
		}
		if i < len(e.Steps)-1 || e.Analyzed {
			b.WriteByte('\n')
		}
	}
	if e.Analyzed {
		fmt.Fprintf(&b, "-- %d rows, total time=%s", e.Rows, e.Total)
	}
	return b.String()
}

// ExplainQuery produces the evaluation plan for a query without running
// it.
func (e *Engine) ExplainQuery(q *ast.Query) (*Explain, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ast.HasUpdate(q.Body) {
		return nil, fmt.Errorf("core: cannot explain an update request")
	}
	eff, err := e.refreshEffective(nil)
	if err != nil {
		return nil, err
	}
	plan, _ := e.planQuery(q, eff, e.explainAnalysis(q, eff))
	return plan, nil
}

// explainAnalysis computes the cost analysis EXPLAIN mirrors — the same
// ranks execution uses — or nil under NoSchedule, where the scheduler
// runs strictly left-to-right and ranks would misreport the order.
func (e *Engine) explainAnalysis(q *ast.Query, eff *object.Tuple) *bodyAnalysis {
	if e.opts.NoSchedule {
		return nil
	}
	return e.analyzeBody(q.Body, eff, nil)
}

// ExplainAnalyzeQuery produces the plan and then executes the query,
// annotating each step with its measured actuals (rows produced, set
// elements scanned, index probes, self wall time). Both the plan and the
// answer are returned.
func (e *Engine) ExplainAnalyzeQuery(ctx context.Context, q *ast.Query) (*Explain, *Answer, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if ast.HasUpdate(q.Body) {
		return nil, nil, fmt.Errorf("core: cannot explain an update request")
	}
	cctx := cancellable(ctx)
	eff, err := e.refreshEffective(cctx)
	if err != nil {
		return nil, nil, err
	}
	an := e.explainAnalysis(q, eff)
	plan, order := e.planQuery(q, eff, an)
	probes := newProbes(q.Body.Conjuncts)
	vars := ast.PositiveVars(q.Body)
	ans := newAnswer(vars)
	var local Stats
	ev := &evaluator{
		env: NewEnv(), indexes: e.indexes,
		useIndex: e.opts.UseIndex, noSchedule: e.opts.NoSchedule,
		stats: &local, ctx: cctx,
		analyze: &analyzeState{probes: probes},
	}
	if an != nil {
		// Execute with the same ranks the plan simulation used, so the
		// actuals attach to the order the steps report.
		ev.consumedCache = an.consumed
		ev.ranks = an.ranks
	}
	span := e.tracer.Start("explain-analyze")
	start := time.Now()
	err = ev.satisfy(q.Body, eff, func() error {
		ans.add(ev.env.Snapshot(vars))
		return nil
	})
	total := time.Since(start)
	e.addStats(local)
	if e.em != nil {
		e.em.record(&e.em.query, start, local, err)
	}
	if span != nil {
		span.SetInt("rows", int64(ans.Len()))
		span.SetInt("elements_scanned", int64(local.ElementsScanned))
		span.SetInt("index_probes", int64(local.IndexProbes))
		attachConjunctSpans(span, q.Body.Conjuncts, probes)
		span.End()
	}
	if err != nil {
		return nil, nil, err
	}
	for i, c := range order {
		if p := probes[c]; p != nil {
			plan.Steps[i].Analyze = &StepActuals{
				Rows:        p.rows,
				Scanned:     p.scanned,
				IndexProbes: p.indexProbes,
				Time:        p.selfTime,
			}
		}
	}
	plan.Analyzed = true
	plan.Rows = ans.Len()
	plan.Total = total
	return plan, ans, nil
}

// planQuery simulates the conjunct scheduler against the effective
// universe, returning the static plan plus the scheduled conjuncts in
// step order (the mapping ANALYZE uses to attach actuals). an, when
// non-nil, carries the cost ranks the real scheduler would use: among
// runnable conjuncts the cheapest is picked, source order breaking ties
// — the same rule as scheduleConjuncts. Callers hold e.mu.
func (e *Engine) planQuery(q *ast.Query, eff *object.Tuple, an *bodyAnalysis) (*Explain, []ast.Expr) {
	conjuncts := q.Body.Conjuncts
	consumed := make([][]string, len(conjuncts))
	for i, c := range conjuncts {
		consumed[i] = consumedVars(c)
	}
	var ranks []float64
	if an != nil {
		ranks = an.ranks[q.Body]
	}
	// Simulate the scheduler: repeatedly pick the cheapest conjunct whose
	// consumed variables are all "bound" by previously scheduled ones.
	bound := map[string]bool{}
	remaining := make([]int, len(conjuncts))
	for i := range remaining {
		remaining[i] = i
	}
	plan := &Explain{}
	var order []ast.Expr
	var scheduled []int
	for len(remaining) > 0 {
		pick := -1
		for pos, idx := range remaining {
			ok := true
			for _, v := range consumed[idx] {
				if !bound[v] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if ranks == nil {
				pick = pos
				break
			}
			if pick < 0 || ranks[idx] < ranks[remaining[pick]] {
				pick = pos
			}
		}
		if pick < 0 {
			pick = 0
		}
		idx := remaining[pick]
		step := e.explainConjunct(conjuncts[idx], consumed[idx], eff)
		if ranks != nil && ranks[idx] < costHuge {
			step.EstRows = int64(ranks[idx])
			step.Estimated = true
		}
		if len(e.unavailable) > 0 {
			if a, ok := conjuncts[idx].(*ast.AttrExpr); ok {
				if db, ok := constTermName(a.Name); ok && e.unavailable[db] {
					step.Skipped = true
				}
			}
		}
		// Deferred: a textually later conjunct ran first.
		for _, done := range scheduled {
			if done > idx {
				step.Deferred = true
				break
			}
		}
		scheduled = append(scheduled, idx)
		plan.Steps = append(plan.Steps, step)
		order = append(order, conjuncts[idx])
		for _, v := range step.Binds {
			bound[v] = true
		}
		remaining = append(remaining[:pick], remaining[pick+1:]...)
	}
	return plan, order
}

// explainConjunct classifies one conjunct and resolves its access path
// against the effective universe.
func (e *Engine) explainConjunct(c ast.Expr, consumes []string, eff *object.Tuple) ExplainStep {
	step := ExplainStep{
		Conjunct: c.String(),
		Kind:     "query",
		Access:   "n/a",
		Consumes: consumes,
	}
	switch x := c.(type) {
	case *ast.Not:
		step.Kind = "negation"
		inner := e.explainConjunct(x.X, nil, eff)
		step.Access = inner.Access
		return step
	case *ast.Constraint:
		step.Kind = "constraint"
		step.Binds = producerVars(c, consumes)
		return step
	case *ast.AttrExpr:
		step.Binds = producerVars(c, consumes)
		step.Access = e.accessPath(x, eff)
		ast.Walk(c, func(node ast.Expr) bool {
			if _, isNot := node.(*ast.Not); isNot {
				step.Kind = "negation"
				return false
			}
			return true
		})
		return step
	default:
		step.Binds = producerVars(c, consumes)
		return step
	}
}

// producerVars lists the variables a conjunct can bind: its variables
// minus the consumed ones.
func producerVars(c ast.Expr, consumes []string) []string {
	consumed := map[string]bool{}
	for _, v := range consumes {
		consumed[v] = true
	}
	var out []string
	for _, v := range ast.Vars(c) {
		if !consumed[v] {
			out = append(out, v)
		}
	}
	return out
}

// accessPath resolves whether the conjunct's relation-level set
// expression would use an attribute index.
func (e *Engine) accessPath(a *ast.AttrExpr, eff *object.Tuple) string {
	// Walk the path: db attr -> rel attr -> set expr.
	dbName, ok := constTermName(a.Name)
	if !ok {
		return "scan" // higher-order database enumeration
	}
	inner, ok := a.Expr.(*ast.TupleExpr)
	if !ok || len(inner.Conjuncts) != 1 {
		return "navigate"
	}
	relAttr, ok := inner.Conjuncts[0].(*ast.AttrExpr)
	if !ok {
		return "navigate"
	}
	var set *object.Set
	if relName, ok := constTermName(relAttr.Name); ok {
		dbObj, has := eff.Get(dbName)
		if !has {
			return "scan"
		}
		dbt, isT := dbObj.(*object.Tuple)
		if !isT {
			return "scan"
		}
		relObj, has := dbt.Get(relName)
		if !has {
			return "scan"
		}
		set, _ = relObj.(*object.Set)
	}
	se, ok := relAttr.Expr.(*ast.SetExpr)
	if !ok {
		if nse, isNot := relAttr.Expr.(*ast.Not); isNot {
			se, ok = nse.X.(*ast.SetExpr)
			if !ok {
				return "navigate"
			}
		} else {
			return "navigate"
		}
	}
	if !e.opts.UseIndex || set == nil || set.Len() < 16 {
		return "scan"
	}
	te, ok := se.X.(*ast.TupleExpr)
	if !ok {
		return "scan"
	}
	ev := &evaluator{env: NewEnv(), indexes: e.indexes, useIndex: true, stats: &Stats{}}
	for _, c := range te.Conjuncts {
		// A conjunct with a constant attribute name and a ground-or-
		// bindable equality can use the index once its term is ground;
		// statically we report "index" for constant equalities.
		if attr, _, ok := ev.groundEqConjunct(c); ok && attr != "" {
			return "index"
		}
	}
	return "scan"
}

func constTermName(t ast.Term) (string, bool) {
	c, ok := t.(ast.Const)
	if !ok {
		return "", false
	}
	s, ok := c.Value.(object.Str)
	return string(s), ok
}
