package core

import (
	"context"
	"fmt"

	"idl/internal/ast"
	"idl/internal/object"
	"idl/internal/obs"
)

// A compiledRule is a validated view rule with the metadata stratification
// needs: its head pattern (db, relation term) and the (db, rel) patterns
// its body references, each flagged if it occurs under negation.
type compiledRule struct {
	src     *ast.Rule
	headDB  string   // constant database name (head level 1)
	headRel ast.Term // constant or variable (head level 2); nil for db-level heads
	headHO  bool     // head contains a higher-order variable (§6)
	refs    []patternRef
	stratum int
	// consumed is the body's precomputed safety analysis (pure AST
	// function, computed once at registration); each materialization
	// pairs it with fresh cost ranks into a bodyAnalysis.
	consumed map[*ast.TupleExpr][][]string
}

// patternRef is a (database, relation) reference pattern from a rule
// body. Variable components match anything.
type patternRef struct {
	db      ast.Term
	rel     ast.Term // nil when the reference stops at the database level
	negated bool
}

// NotStratifiedError reports a rule set with negation in a dependency
// cycle; the paper requires view definitions to be stratified (§6).
type NotStratifiedError struct {
	Rules []string
}

func (e *NotStratifiedError) Error() string {
	return fmt.Sprintf("rule set is not stratified: negation inside a recursive component involving %d rule(s): %v", len(e.Rules), e.Rules)
}

// compileRule validates a rule per §6: the head is a simple tuple
// expression on the universe whose variables all occur in the body, with
// a constant database name.
func compileRule(r *ast.Rule) (*compiledRule, error) {
	if r.Head == nil || len(r.Head.Conjuncts) != 1 {
		return nil, fmt.Errorf("core: rule head must be a single path expression")
	}
	if !headSimpleEnough(r.Head) {
		return nil, fmt.Errorf("core: rule head %q must be a simple expression (only '=', no negation, no signs beyond the insertion '+')", r.Head.String())
	}
	headAttr, ok := r.Head.Conjuncts[0].(*ast.AttrExpr)
	if !ok {
		return nil, fmt.Errorf("core: rule head must start with a database attribute")
	}
	dbConst, ok := headAttr.Name.(ast.Const)
	if !ok {
		return nil, fmt.Errorf("core: rule head database name must be a constant")
	}
	dbStr, ok := dbConst.Value.(object.Str)
	if !ok {
		return nil, fmt.Errorf("core: rule head database name must be a string")
	}
	bodyVars := map[string]bool{}
	for _, v := range ast.Vars(r.Body) {
		bodyVars[v] = true
	}
	for _, v := range ast.Vars(r.Head) {
		if !bodyVars[v] {
			return nil, fmt.Errorf("core: head variable %s does not occur in the body", v)
		}
	}
	cr := &compiledRule{
		src:      r,
		headDB:   string(dbStr),
		headHO:   len(ast.HigherOrderVars(r.Head)) > 0,
		refs:     collectRefs(r.Body),
		consumed: consumedMap(r.Body),
	}
	if te, ok := headAttr.Expr.(*ast.TupleExpr); ok && len(te.Conjuncts) == 1 {
		if rel, ok := te.Conjuncts[0].(*ast.AttrExpr); ok {
			cr.headRel = rel.Name
		}
	}
	return cr, nil
}

// headSimpleEnough relaxation: the conventional head form `.db.rel+(...)`
// carries a single plus sign on the insertion set expression. IsSimple
// rejects signs, so validate specially: strip one level of set-expression
// plus when checking.
func headSimpleEnough(te *ast.TupleExpr) bool {
	ok := true
	var rec func(e ast.Expr, allowPlus bool)
	rec = func(e ast.Expr, allowPlus bool) {
		switch x := e.(type) {
		case *ast.Not:
			ok = false
		case *ast.Constraint:
			ok = false
		case *ast.Atomic:
			if x.Op != ast.OpEQ || x.Sign != ast.SignNone {
				ok = false
			}
		case *ast.AttrExpr:
			if x.Sign != ast.SignNone {
				ok = false
			}
			rec(x.Expr, allowPlus)
		case *ast.TupleExpr:
			for _, c := range x.Conjuncts {
				rec(c, allowPlus)
			}
		case *ast.SetExpr:
			if x.Sign == ast.SignMinus {
				ok = false
			}
			rec(x.X, allowPlus)
		}
	}
	rec(te, true)
	return ok
}

// collectRefs extracts the (db, rel) patterns a body references, flagging
// references under negation.
func collectRefs(body *ast.TupleExpr) []patternRef {
	var refs []patternRef
	var walkConjunct func(e ast.Expr, negated bool)
	walkConjunct = func(e ast.Expr, negated bool) {
		switch x := e.(type) {
		case *ast.Not:
			walkConjunct(x.X, true)
		case *ast.AttrExpr:
			ref := patternRef{db: x.Name, negated: negated}
			// Second level: the relation name, when the path goes deeper.
			if te, ok := x.Expr.(*ast.TupleExpr); ok {
				for _, c := range te.Conjuncts {
					if rel, ok := c.(*ast.AttrExpr); ok {
						refs = append(refs, patternRef{db: x.Name, rel: rel.Name, negated: negated || relNegated(c)})
					}
				}
				return
			}
			refs = append(refs, ref)
		case *ast.TupleExpr:
			for _, c := range x.Conjuncts {
				walkConjunct(c, negated)
			}
		}
	}
	for _, c := range body.Conjuncts {
		walkConjunct(c, false)
	}
	return refs
}

// relNegated reports whether the relation-level expression itself is
// negated (`.euter.r~(...)`).
func relNegated(c ast.Expr) bool {
	a, ok := c.(*ast.AttrExpr)
	if !ok {
		return false
	}
	_, isNot := a.Expr.(*ast.Not)
	return isNot
}

// termsUnify reports whether two name terms can refer to the same name:
// variables match anything; constants must be equal strings.
func termsUnify(a, b ast.Term) bool {
	if a == nil || b == nil {
		return true // absent level matches anything (conservative)
	}
	ca, aIsConst := a.(ast.Const)
	cb, bIsConst := b.(ast.Const)
	if aIsConst && bIsConst {
		return ca.Value.Equal(cb.Value)
	}
	return true // at least one variable
}

// refMatchesHead reports whether a body reference may read a rule's head
// relation.
func refMatchesHead(ref patternRef, head *compiledRule) bool {
	if !termsUnify(ref.db, ast.Const{Value: object.Str(head.headDB)}) {
		return false
	}
	return termsUnify(ref.rel, head.headRel)
}

// stratify assigns strata using the condensation of the rule dependency
// graph: an edge i→j when rule j's body reads rule i's head. A negative
// edge inside a strongly connected component is an error.
func stratify(rules []*compiledRule) error {
	n := len(rules)
	succ := make([][]int, n) // i -> rules that read i's head
	negEdge := make(map[[2]int]bool)
	for i, producer := range rules {
		for j, consumer := range rules {
			for _, ref := range consumer.refs {
				if refMatchesHead(ref, producer) {
					succ[i] = append(succ[i], j)
					if ref.negated {
						negEdge[[2]int{i, j}] = true
					}
					break
				}
			}
		}
	}
	// Tarjan's SCC algorithm (iterative would be safer for huge rule
	// sets; rule sets are small, so recursion is fine).
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var sccs [][]int
	var counter int
	var strong func(v int)
	strong = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if index[w] == -1 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strong(v)
		}
	}
	// Check for negative edges within a component.
	compOf := make([]int, n)
	for ci, comp := range sccs {
		for _, v := range comp {
			compOf[v] = ci
		}
	}
	for e := range negEdge {
		if compOf[e[0]] == compOf[e[1]] {
			comp := sccs[compOf[e[0]]]
			var names []string
			for _, v := range comp {
				names = append(names, rules[v].src.String())
			}
			return &NotStratifiedError{Rules: names}
		}
	}
	// Tarjan emits components in reverse topological order of the
	// condensation (every component after all components it reaches), so
	// strata count down from len(sccs)-1.
	for ci, comp := range sccs {
		stratum := len(sccs) - 1 - ci
		for _, v := range comp {
			rules[v].stratum = stratum
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Materialization

// RecomputeStats reports work done by one derived-view materialization.
type RecomputeStats struct {
	Iterations   int  // total fixpoint iterations across strata
	RuleRuns     int  // rule body evaluations
	FactsDerived int  // make-true operations that changed the overlay
	Incremental  bool // overlay was grown in place instead of rebuilt
}

// materialize evaluates all rules bottom-up by stratum into a fresh
// derived overlay, reading base ∪ overlay. With semiNaive, within a
// stratum a rule re-runs only when the previous iteration changed a head
// its body may read (rule-level semi-naive evaluation).
func (e *Engine) materialize(ctx context.Context, span *obs.Span) (*object.Tuple, RecomputeStats, error) {
	derived := object.NewTuple()
	stats, err := e.materializeInto(ctx, derived, span)
	return derived, stats, err
}

// materializeInto runs the stratified fixpoint on top of an existing
// overlay. With a fresh overlay this is a full materialization; with the
// previous overlay it is the incremental path (sound only for additive
// base changes and negation-free rules — the engine checks both). A
// non-nil span gets one child per fixpoint round.
func (e *Engine) materializeInto(ctx context.Context, derived *object.Tuple, span *obs.Span) (RecomputeStats, error) {
	stats := RecomputeStats{}
	var evalStats Stats
	defer func() {
		e.addStats(evalStats)
		if e.em != nil {
			e.em.evalWork(evalStats)
		}
	}()
	maxStratum := 0
	for _, r := range e.rules {
		if r.stratum > maxStratum {
			maxStratum = r.stratum
		}
	}
	// Each rule body is compiled once per materialization: the
	// registration-time safety analysis pairs with cost ranks computed at
	// the rule's first run this materialization, then reused across every
	// iteration (and shared read-only by parallel rule waves). The first
	// run happens at the same iteration for every worker count, so the
	// ranks — and the enumeration order they induce — are identical
	// sequentially and in parallel.
	ruleAns := make(map[*compiledRule]*bodyAnalysis)
	anFor := func(rule *compiledRule, effective *object.Tuple) *bodyAnalysis {
		an := ruleAns[rule]
		if an == nil {
			an = e.analyzeBody(rule.src.Body, effective, rule.consumed)
			ruleAns[rule] = an
		}
		return an
	}
	for s := 0; s <= maxStratum; s++ {
		var stratum []*compiledRule
		for _, r := range e.rules {
			if r.stratum == s {
				stratum = append(stratum, r)
			}
		}
		if len(stratum) == 0 {
			continue
		}
		changedLast := map[int]bool{} // indexes into stratum changed last iter
		first := true
		for iter := 0; ; iter++ {
			if iter >= e.opts.MaxIterations {
				return stats, fmt.Errorf("core: view materialization exceeded %d iterations (non-terminating rule set?)", e.opts.MaxIterations)
			}
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return stats, err
				}
			}
			stats.Iterations++
			var round *obs.Span
			if span != nil {
				round = span.Child(fmt.Sprintf("stratum%d.round%d", s, iter))
			}
			runsBefore, factsBefore := stats.RuleRuns, stats.FactsDerived
			effective := mergeUniverse(e.base, derived)
			changedNow := map[int]bool{}
			anyChange := false
			if e.opts.Workers > 1 {
				// Parallel path: evaluate waves of independent rules
				// concurrently, apply derived facts strictly in rule order
				// (see parallel.go for the equivalence argument).
				var affected []int
				for ri, rule := range stratum {
					if e.opts.SemiNaive && !first && !e.ruleAffected(rule, stratum, changedLast) {
						continue
					}
					affected = append(affected, ri)
				}
				for len(affected) > 0 {
					waveLen := ruleWave(stratum, affected)
					wave := make([]*compiledRule, waveLen)
					waveAns := make([]*bodyAnalysis, waveLen)
					for i, ri := range affected[:waveLen] {
						wave[i] = stratum[ri]
						waveAns[i] = anFor(stratum[ri], effective)
					}
					snaps, errs := e.evalRuleBodies(ctx, wave, effective, &evalStats, waveAns)
					for wi, rule := range wave {
						stats.RuleRuns++
						if errs[wi] != nil {
							round.End()
							return stats, fmt.Errorf("core: rule %q: %w", rule.src.String(), errs[wi])
						}
						n, err := applyRuleSnaps(rule, derived, snaps[wi], e.cowSet)
						if err != nil {
							round.End()
							return stats, fmt.Errorf("core: rule %q: %w", rule.src.String(), err)
						}
						if n > 0 {
							stats.FactsDerived += n
							changedNow[affected[wi]] = true
							anyChange = true
						}
					}
					affected = affected[waveLen:]
				}
			} else {
				for ri, rule := range stratum {
					if e.opts.SemiNaive && !first && !e.ruleAffected(rule, stratum, changedLast) {
						continue
					}
					stats.RuleRuns++
					n, err := e.runRule(ctx, rule, effective, derived, &evalStats, anFor(rule, effective))
					if err != nil {
						round.End()
						return stats, fmt.Errorf("core: rule %q: %w", rule.src.String(), err)
					}
					if n > 0 {
						stats.FactsDerived += n
						changedNow[ri] = true
						anyChange = true
					}
				}
			}
			if round != nil {
				round.SetInt("rule_runs", int64(stats.RuleRuns-runsBefore))
				round.SetInt("facts", int64(stats.FactsDerived-factsBefore))
				round.End()
			}
			if !anyChange {
				break
			}
			changedLast = changedNow
			first = false
		}
	}
	return stats, nil
}

// ruleAffected reports whether rule's body may read the head of any
// stratum-mate that changed in the previous iteration.
func (e *Engine) ruleAffected(rule *compiledRule, stratum []*compiledRule, changed map[int]bool) bool {
	for ri, other := range stratum {
		if !changed[ri] {
			continue
		}
		for _, ref := range rule.refs {
			if refMatchesHead(ref, other) {
				return true
			}
		}
	}
	return false
}

// runRule enumerates body substitutions against the effective universe
// and makes the head true in the derived overlay for each; it returns how
// many make-true operations changed the overlay.
func (e *Engine) runRule(ctx context.Context, rule *compiledRule, effective, derived *object.Tuple, stats *Stats, an *bodyAnalysis) (int, error) {
	envSnaps, err := e.evalRuleBody(ctx, rule, effective, stats, an)
	if err != nil {
		return 0, err
	}
	return applyRuleSnaps(rule, derived, envSnaps, e.cowSet)
}

// evalRuleBody is the read-only half of a rule run: it collects the
// deduped head-variable snapshots of every body substitution. Head
// instantiations are collected before any make-true applies because the
// body may be reading the overlay through the merged universe — which is
// also what makes this phase safe to run concurrently for independent
// rules (parallel.go).
func (e *Engine) evalRuleBody(ctx context.Context, rule *compiledRule, effective *object.Tuple, stats *Stats, an *bodyAnalysis) ([]Row, error) {
	ev := &evaluator{env: NewEnv(), indexes: e.indexes, useIndex: e.opts.UseIndex, noSchedule: e.opts.NoSchedule, stats: stats, ctx: ctx}
	if an != nil {
		ev.consumedCache = an.consumed
		ev.ranks = an.ranks
	}
	var envSnaps []Row
	headVars := ast.Vars(rule.src.Head)
	dedupe := newAnswer(nil)
	err := ev.satisfy(rule.src.Body, effective, func() error {
		snap := ev.env.Snapshot(headVars)
		if dedupe.add(snap) {
			envSnaps = append(envSnaps, snap)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return envSnaps, nil
}

// cowBarrier is the engine's copy-on-write hook (version.go): given a
// set reached under parent.attr, it returns the set safe to mutate —
// the set itself when no live MVCC snapshot shares it, a re-parented
// shallow clone otherwise. A nil barrier means mutate in place.
type cowBarrier func(parent *object.Tuple, attr string, s *object.Set) *object.Set

// applyRuleSnaps is the mutating half of a rule run: it makes the head
// true once per collected snapshot, in enumeration order (the order
// make-true merges into host tuples is observable, so it must match the
// sequential order exactly). cow guards the incremental path, where the
// derived overlay being extended may share sets with live snapshots; on
// a fresh overlay every set is private and the barrier no-ops.
func applyRuleSnaps(rule *compiledRule, derived *object.Tuple, envSnaps []Row, cow cowBarrier) (int, error) {
	changed := 0
	for _, snap := range envSnaps {
		env := envFrom(snap)
		n, err := makeTrue(rule.src.Head, derived, env, cow)
		if err != nil {
			return changed, err
		}
		changed += n
	}
	return changed, nil
}

// makeTrue implements §6's derivation semantics: navigate-or-create down
// the head expression and insert the decreed fact. It returns the number
// of overlay changes (0 when the fact already held, which is what lets
// the fixpoint terminate).
func makeTrue(e ast.Expr, obj object.Object, env *Env, cow cowBarrier) (int, error) {
	switch x := e.(type) {
	case *ast.TupleExpr:
		tup, ok := obj.(*object.Tuple)
		if !ok {
			return 0, fmt.Errorf("core: make-true of tuple expression on %s object", obj.Kind())
		}
		total := 0
		for _, c := range x.Conjuncts {
			n, err := makeTrue(c, tup, env, cow)
			if err != nil {
				return total, err
			}
			total += n
		}
		return total, nil

	case *ast.AttrExpr:
		tup, ok := obj.(*object.Tuple)
		if !ok {
			return 0, fmt.Errorf("core: make-true of attribute expression on %s object", obj.Kind())
		}
		name, err := groundName(x.Name, env)
		if err != nil {
			return 0, err
		}
		val, ok := tup.Get(name)
		if !ok {
			val = emptyFor(x.Expr)
			if val == nil {
				return 0, fmt.Errorf("core: cannot infer object kind for head expression %q", x.Expr.String())
			}
			tup.Put(name, val)
		} else if s, isSet := val.(*object.Set); isSet && cow != nil {
			// Descending into a set the decree will extend: copy-on-write
			// if an MVCC snapshot shares it.
			val = cow(tup, name, s)
		}
		return makeTrue(x.Expr, val, env, cow)

	case *ast.SetExpr:
		set, ok := obj.(*object.Set)
		if !ok {
			return 0, fmt.Errorf("core: make-true of set expression on %s object", obj.Kind())
		}
		u := &updater{ev: &evaluator{env: env, indexes: newIndexCache(), stats: &Stats{}}, undo: &undoLog{}, result: &ExecResult{}}
		elem, err := u.buildPlus(x.X)
		if err != nil {
			return 0, err
		}
		return makeTrueInSet(set, elem), nil

	case *ast.Atomic:
		return 0, fmt.Errorf("core: head atomic expression %q has no enclosing location; heads must decree facts inside tuples or sets", x.String())

	default:
		return 0, fmt.Errorf("core: expression %q cannot appear in a rule head", e.String())
	}
}

// makeTrueInSet realizes the decree "some element of this set satisfies
// the (ground, simple) expression that built target" with minimal change:
//
//  1. If an element already subsumes the decree (has every decreed
//     attribute with the decreed value), nothing changes.
//  2. Otherwise, if an element is *compatible* — every decreed attribute
//     is either absent from it or already equal — the decree merges into
//     that element (first such element in insertion order).
//  3. Otherwise a fresh element is inserted.
//
// The merge step is what makes the paper's §6 claims come out: the dbC
// rule `.dbC.r+(.date=D, .S=P) ← .dbI.p(…)` folds every stock of one day
// into a single chwab-style row, while a conflicting value (a price
// discrepancy) is incompatible and lands in its own tuple — "both prices
// are in the user's view". The paper's own recursive definition of
// make-true is in the unavailable technical memo [KLK90]; this reading is
// the one under which §6's integration-transparency examples hold.
//
// It returns 1 if the overlay changed, 0 otherwise.
func makeTrueInSet(set *object.Set, target object.Object) int {
	tgt, isTuple := target.(*object.Tuple)
	if !isTuple {
		if set.Add(target) {
			return 1
		}
		return 0
	}
	var host *object.Tuple
	found := false
	set.Each(func(elem object.Object) bool {
		e, ok := elem.(*object.Tuple)
		if !ok {
			return true
		}
		compatible := true
		subsumes := true
		tgt.Each(func(attr string, want object.Object) bool {
			have, has := e.Get(attr)
			switch {
			case !has:
				subsumes = false
			case !have.Equal(want):
				subsumes = false
				compatible = false
				return false
			}
			return true
		})
		if subsumes {
			found = true
			return false
		}
		if compatible && host == nil {
			host = e
		}
		return true
	})
	if found {
		return 0
	}
	if host != nil {
		// Merge into a clone and re-add under the new hash: the original
		// element is never mutated — an older MVCC snapshot may still
		// reach it through a pre-COW copy of this set.
		set.Remove(host)
		h2, _ := host.Clone().(*object.Tuple)
		tgt.Each(func(attr string, want object.Object) bool {
			if !h2.Has(attr) {
				h2.Put(attr, want)
			}
			return true
		})
		set.Add(h2)
		return 1
	}
	set.Add(tgt)
	return 1
}

// groundName resolves an attribute-name term under env.
func groundName(t ast.Term, env *Env) (string, error) {
	switch n := t.(type) {
	case ast.Const:
		s, ok := n.Value.(object.Str)
		if !ok {
			return "", fmt.Errorf("core: attribute name %s is not a string", n.Value)
		}
		return string(s), nil
	case ast.Var:
		v, ok := env.Lookup(n.Name)
		if !ok {
			return "", fmt.Errorf("core: head attribute variable %s is unbound", n.Name)
		}
		s, ok := v.(object.Str)
		if !ok {
			return "", fmt.Errorf("core: head attribute variable %s bound to non-string %s", n.Name, v)
		}
		return string(s), nil
	default:
		return "", fmt.Errorf("core: attribute name must be constant or variable")
	}
}

// emptyFor returns the empty object matching an expression's shape.
func emptyFor(e ast.Expr) object.Object {
	switch e.(type) {
	case *ast.SetExpr:
		return object.NewSet()
	case *ast.TupleExpr, *ast.AttrExpr:
		return object.NewTuple()
	case ast.Epsilon:
		return object.NewTuple()
	default:
		return nil
	}
}

// mergeUniverse builds the effective universe: base databases overlaid
// with derived ones. Databases and relations present on only one side are
// shared by reference (queries never mutate); name collisions union the
// two relation sets into a fresh set.
func mergeUniverse(base, derived *object.Tuple) *object.Tuple {
	if derived == nil || derived.Len() == 0 {
		return base
	}
	out := object.NewTuple()
	base.Each(func(dbName string, dbObj object.Object) bool {
		dv, ok := derived.Get(dbName)
		if !ok {
			out.Put(dbName, dbObj)
			return true
		}
		bt, bOK := dbObj.(*object.Tuple)
		dt, dOK := dv.(*object.Tuple)
		if !bOK || !dOK {
			out.Put(dbName, dv) // derived shadows malformed bases
			return true
		}
		out.Put(dbName, mergeDB(bt, dt))
		return true
	})
	derived.Each(func(dbName string, dbObj object.Object) bool {
		if !base.Has(dbName) {
			out.Put(dbName, dbObj)
		}
		return true
	})
	return out
}

func mergeDB(base, derived *object.Tuple) *object.Tuple {
	out := object.NewTuple()
	base.Each(func(rel string, relObj object.Object) bool {
		dv, ok := derived.Get(rel)
		if !ok {
			out.Put(rel, relObj)
			return true
		}
		bs, bOK := relObj.(*object.Set)
		ds, dOK := dv.(*object.Set)
		if !bOK || !dOK {
			out.Put(rel, dv)
			return true
		}
		union := object.NewSet()
		bs.Each(func(e object.Object) bool { union.Add(e); return true })
		ds.Each(func(e object.Object) bool { union.Add(e); return true })
		out.Put(rel, union)
		return true
	})
	derived.Each(func(rel string, relObj object.Object) bool {
		if !base.Has(rel) {
			out.Put(rel, relObj)
		}
		return true
	})
	return out
}
