package core

import (
	"container/list"

	"idl/internal/ast"
)

// Epoch-keyed plan cache (DESIGN.md §11). Plans are keyed by the
// structural fingerprint of the query plus the plan-relevant options, and
// validated against the engine's catalog epoch: a hit at the compiling
// epoch is reused outright; after an epoch bump the plan's dependencies
// are re-resolved and only plans whose inputs actually moved recompile —
// precise invalidation, not wholesale.

// defaultPlanCacheSize bounds the cache when Options.PlanCacheSize is
// zero. LRU eviction: ad-hoc one-off queries age out, the repeated
// workload stays resident.
const defaultPlanCacheSize = 256

// planKey identifies a plan: query structure plus the options that change
// compilation (index use changes access-path estimates).
type planKey struct {
	fp       uint64
	useIndex bool
}

// planCache is an LRU map from planKey to compiled plans. It is owned by
// an Engine and accessed only under e.planMu (a dedicated mutex so the
// MVCC lock-free read path can consult the cache without touching e.mu;
// the locked mutation path acquires e.mu first, then e.planMu — never
// the reverse).
type planCache struct {
	cap   int
	m     map[planKey]*list.Element
	order *list.List // front = most recently used
}

type planEntry struct {
	key planKey
	pl  *queryPlan
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = defaultPlanCacheSize
	}
	return &planCache{
		cap:   capacity,
		m:     make(map[planKey]*list.Element),
		order: list.New(),
	}
}

// get returns the cached plan for key, or nil, marking it most recently
// used.
func (c *planCache) get(key planKey) *queryPlan {
	el, ok := c.m[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*planEntry).pl
}

// put inserts (or replaces) the plan for key, reporting whether an entry
// was evicted to make room.
func (c *planCache) put(key planKey, pl *queryPlan) (evicted bool) {
	if el, ok := c.m[key]; ok {
		el.Value.(*planEntry).pl = pl
		c.order.MoveToFront(el)
		return false
	}
	c.m[key] = c.order.PushFront(&planEntry{key: key, pl: pl})
	if c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.m, back.Value.(*planEntry).key)
		return true
	}
	return false
}

// clear empties the cache.
func (c *planCache) clear() {
	c.m = make(map[planKey]*list.Element)
	c.order.Init()
}

// len returns the number of cached plans.
func (c *planCache) len() int { return c.order.Len() }

// PlanCacheStats snapshots the plan cache's counters.
type PlanCacheStats struct {
	Hits      uint64 // lookups answered from the cache (incl. revalidated)
	Misses    uint64 // lookups that compiled a new plan
	Evictions uint64 // entries dropped by the LRU bound
	Size      int    // resident plans
	Epoch     uint64 // current catalog epoch
}

// PlanCacheStats reports the plan cache's hit/miss/eviction counters,
// resident size, and the current catalog epoch.
func (e *Engine) PlanCacheStats() PlanCacheStats {
	epoch := e.Epoch()
	e.planMu.Lock()
	defer e.planMu.Unlock()
	return PlanCacheStats{
		Hits:      e.planHits,
		Misses:    e.planMisses,
		Evictions: e.planEvictions,
		Size:      e.plans.len(),
		Epoch:     epoch,
	}
}

// ClearPlanCache empties the plan cache (counters are preserved).
func (e *Engine) ClearPlanCache() {
	e.planMu.Lock()
	defer e.planMu.Unlock()
	e.plans.clear()
}

// SetPlanCaching toggles the plan cache at runtime (the setter form of
// Options.NoPlanCache, for CLIs and tests). Disabling does not clear
// resident plans; they simply stop being consulted. The published MVCC
// head is dropped because snapshots capture the options they evaluate
// under.
func (e *Engine) SetPlanCaching(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.opts.NoPlanCache = !on
	e.invalidateHead()
}

// Epoch returns the catalog epoch: a counter bumped on every change to
// the universe or the rule set. Plans and prepared queries validated at
// the current epoch are known fresh without dependency checks.
func (e *Engine) Epoch() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epoch
}

// Fingerprint exposes the structural query fingerprint used as the plan
// cache key (for tests and tooling).
func Fingerprint(q *ast.Query) uint64 { return ast.Fingerprint(q) }
