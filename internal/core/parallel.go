package core

import (
	"context"
	"sync"

	"idl/internal/ast"
	"idl/internal/object"
)

// Parallel evaluation (DESIGN.md §10). With Options.Workers > 1 the
// engine spreads work across goroutines in two places, both constructed
// so every observable result is byte-identical to sequential evaluation:
//
//   - Partitioned scans: when the first conjunct an operation schedules
//     resolves (under the empty substitution) to a full scan of one set,
//     that set's elements are split into contiguous chunks, one worker
//     per chunk, each running the complete evaluation restricted to its
//     chunk. Concatenating the per-chunk results in chunk order
//     reproduces the sequential enumeration order exactly, so the shared
//     ordered dedup sees the same row sequence it would have seen.
//
//   - Rule waves: within a stratum iteration, a maximal prefix of the
//     runnable rules whose bodies cannot read any earlier wave member's
//     head evaluates concurrently (body evaluation is a pure read);
//     derived facts are then applied strictly in rule order, preserving
//     the sequential make-true merge sequence.
//
// Workers share the engine's index cache (sharded, read-locked on hits)
// and the effective universe, which is never mutated during body
// evaluation — either the live universe under e.mu or a frozen MVCC
// snapshot, whose options and metrics are threaded in explicitly so the
// evaluation matches what the snapshot captured. Per-conjunct analyze
// probes are not parallel-safe, so traced/EXPLAIN ANALYZE queries always
// evaluate sequentially.

// minPartition is the smallest scan worth splitting: below this the
// goroutine fan-out costs more than the scan.
const minPartition = 16

// partition restricts the first enumeration of one specific set to a
// contiguous chunk of its elements. Later enumerations of the same set
// during the same evaluation (self-joins, negations over the scanned
// relation) see the full set, exactly as the sequential evaluator does.
type partition struct {
	set   *object.Set
	elems []object.Object
	used  bool
}

// scanTarget statically resolves the set that the first scheduled
// conjunct of body will fully scan, mirroring the scheduler's first pick
// under the empty substitution (including the cost ranks carried by an,
// when present — the parallel first pick must stay in lockstep with the
// ranked scheduler). It returns nil when the first conjunct is not a
// plain constant-path scan — a negation, a constraint, a variable
// database or relation name, or a set expression the index would answer
// (partitioning an index probe would change the candidate enumeration
// order).
func (e *Engine) scanTarget(x ast.Expr, o object.Object, an *bodyAnalysis, opts Options) *object.Set {
	switch expr := x.(type) {
	case *ast.TupleExpr:
		if len(expr.Conjuncts) == 0 {
			return nil
		}
		// Mirror scheduleConjuncts with an empty env: the cheapest
		// conjunct whose consumed-variable list is empty runs first (rank
		// order with source-order ties, or plain source order without
		// ranks); if none qualifies the scheduler falls back to the first
		// conjunct.
		pick := 0
		if !opts.NoSchedule {
			var consumed [][]string
			var ranks []float64
			if an != nil {
				consumed = an.consumed[expr]
				ranks = an.ranks[expr]
			}
			if consumed == nil {
				consumed = make([][]string, len(expr.Conjuncts))
				for i, c := range expr.Conjuncts {
					consumed[i] = consumedVars(c)
				}
			}
			pick = firstRunnable(consumed, ranks)
			if pick < 0 {
				pick = 0
			}
		}
		return e.scanTarget(expr.Conjuncts[pick], o, an, opts)

	case *ast.AttrExpr:
		if expr.Sign != ast.SignNone {
			return nil
		}
		name, ok := constStrName(expr.Name)
		if !ok {
			return nil
		}
		tup, ok := o.(*object.Tuple)
		if !ok {
			return nil
		}
		val, ok := tup.Get(name)
		if !ok {
			return nil
		}
		return e.scanTarget(expr.Expr, val, an, opts)

	case *ast.SetExpr:
		if expr.Sign != ast.SignNone {
			return nil
		}
		set, ok := o.(*object.Set)
		if !ok {
			return nil
		}
		if opts.UseIndex && wouldUseIndex(expr, set) {
			// The index path would answer this scan, so the sequential
			// evaluator never enumerates the full set; leave it alone.
			return nil
		}
		return set

	default:
		return nil
	}
}

// wouldUseIndex mirrors indexCandidates' decision under the empty
// substitution without touching the index cache: same inner-shape, size,
// and ground-equality-conjunct tests, no lookup.
func wouldUseIndex(x *ast.SetExpr, set *object.Set) bool {
	te, ok := x.X.(*ast.TupleExpr)
	if !ok {
		return false
	}
	if set.Len() < 16 {
		return false
	}
	probe := &evaluator{env: NewEnv(), stats: &Stats{}}
	for _, c := range te.Conjuncts {
		if _, _, ok := probe.groundEqConjunct(c); ok {
			return true
		}
	}
	return false
}

// splitChunks cuts elems into at most n contiguous, non-empty chunks of
// near-equal size.
func splitChunks(elems []object.Object, n int) [][]object.Object {
	if n > len(elems) {
		n = len(elems)
	}
	chunks := make([][]object.Object, 0, n)
	for i := 0; i < n; i++ {
		lo := i * len(elems) / n
		hi := (i + 1) * len(elems) / n
		if lo < hi {
			chunks = append(chunks, elems[lo:hi])
		}
	}
	return chunks
}

// parallelEnumerate evaluates body against root with the first scanned
// set partitioned across e.opts.Workers workers, returning each chunk's
// variable snapshots in chunk order (their concatenation is the exact
// sequential enumeration order). ok is false when the body has no
// partitionable scan or the target set is too small to split; the caller
// then evaluates sequentially. On error, the reported error is the one
// the earliest chunk raised — the same error sequential evaluation would
// have hit first, since workers fail at the first failing element of
// their own chunk.
func (e *Engine) parallelEnumerate(ctx context.Context, body *ast.TupleExpr, root *object.Tuple, vars []string, stats *Stats, an *bodyAnalysis, opts Options, em *engineMetrics) ([][]Row, bool, error) {
	workers := opts.Workers
	target := e.scanTarget(body, root, an, opts)
	if target == nil || target.Len() < minPartition {
		return nil, false, nil
	}
	chunks := splitChunks(target.Elems(), workers)
	if len(chunks) < 2 {
		return nil, false, nil
	}
	if em != nil {
		em.parallelOps.Inc()
		em.partitions.Add(uint64(len(chunks)))
	}
	rows := make([][]Row, len(chunks))
	errs := make([]error, len(chunks))
	chunkStats := make([]Stats, len(chunks))
	var wg sync.WaitGroup
	for w, chunk := range chunks {
		wg.Add(1)
		go func(w int, chunk []object.Object) {
			defer wg.Done()
			if em != nil {
				em.workerBusy.Add(1)
				defer em.workerBusy.Add(-1)
			}
			ev := &evaluator{
				env:        NewEnv(),
				indexes:    e.indexes,
				useIndex:   opts.UseIndex,
				noSchedule: opts.NoSchedule,
				stats:      &chunkStats[w],
				ctx:        ctx,
				part:       &partition{set: target, elems: chunk},
			}
			if an != nil {
				// Workers share the plan's complete analysis read-only —
				// same consumed lists and ranks as sequential evaluation.
				ev.consumedCache = an.consumed
				ev.ranks = an.ranks
			}
			errs[w] = ev.satisfy(body, root, func() error {
				rows[w] = append(rows[w], ev.env.Snapshot(vars))
				return nil
			})
		}(w, chunk)
	}
	wg.Wait()
	for w := range chunkStats {
		stats.add(chunkStats[w])
	}
	for _, err := range errs {
		if err != nil {
			return nil, true, err
		}
	}
	return rows, true, nil
}

// ruleReadsHead reports whether r's body may read other's head relation
// (conservatively: variable name components match anything).
func ruleReadsHead(r, other *compiledRule) bool {
	for _, ref := range r.refs {
		if refMatchesHead(ref, other) {
			return true
		}
	}
	return false
}

// ruleWave returns the length of the longest prefix of affected (indexes
// into stratum) that can evaluate concurrently: no member's body may
// read the head of an earlier member, because sequential evaluation
// would have let that member observe the earlier rule's freshly applied
// facts. Self-reads do not constrain the wave — a rule's body always
// evaluates before its own head applies, sequentially too.
func ruleWave(stratum []*compiledRule, affected []int) int {
	n := 1
	for n < len(affected) {
		cand := stratum[affected[n]]
		ok := true
		for _, earlier := range affected[:n] {
			if ruleReadsHead(cand, stratum[earlier]) {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		n++
	}
	return n
}

// evalRuleBodies evaluates the bodies of a wave of rules concurrently
// (capped at e.opts.Workers goroutines), collecting each rule's deduped
// head-variable snapshots. A single-rule wave instead tries to partition
// that rule's body scan across the workers. Bodies only read the shared
// effective universe, so the concurrency is race-free; derived facts are
// applied by the caller, strictly in rule order. ans carries each wave
// member's per-materialization body analysis (parallel to wave).
func (e *Engine) evalRuleBodies(ctx context.Context, wave []*compiledRule, effective *object.Tuple, stats *Stats, ans []*bodyAnalysis) ([][]Row, []error) {
	snaps := make([][]Row, len(wave))
	errs := make([]error, len(wave))
	if len(wave) == 1 {
		rule := wave[0]
		headVars := ast.Vars(rule.src.Head)
		chunks, ok, err := e.parallelEnumerate(ctx, rule.src.Body, effective, headVars, stats, ans[0], e.opts, e.em)
		if ok {
			if err == nil {
				dedupe := newAnswer(nil)
				for _, rows := range chunks {
					for _, r := range rows {
						if dedupe.add(r) {
							snaps[0] = append(snaps[0], r)
						}
					}
				}
			}
			errs[0] = err
			return snaps, errs
		}
		snaps[0], errs[0] = e.evalRuleBody(ctx, rule, effective, stats, ans[0])
		return snaps, errs
	}
	ruleStats := make([]Stats, len(wave))
	sem := make(chan struct{}, e.opts.Workers)
	var wg sync.WaitGroup
	for i, rule := range wave {
		wg.Add(1)
		go func(i int, rule *compiledRule) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if e.em != nil {
				e.em.workerBusy.Add(1)
				defer e.em.workerBusy.Add(-1)
			}
			snaps[i], errs[i] = e.evalRuleBody(ctx, rule, effective, &ruleStats[i], ans[i])
		}(i, rule)
	}
	wg.Wait()
	for i := range ruleStats {
		stats.add(ruleStats[i])
	}
	return snaps, errs
}

// SetWorkers sets the degree of intra-operation parallelism (see
// Options.Workers). Values below zero clamp to zero (sequential). The
// published MVCC head is dropped because snapshots capture the options
// they evaluate under.
func (e *Engine) SetWorkers(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n < 0 {
		n = 0
	}
	e.opts.Workers = n
	e.invalidateHead()
}

// Workers returns the configured parallelism degree.
func (e *Engine) Workers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.opts.Workers
}
