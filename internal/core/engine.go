package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"idl/internal/ast"
	"idl/internal/object"
	"idl/internal/obs"
)

// Options configure an Engine. The zero value selects the defaults noted
// on each field.
type Options struct {
	// UseIndex enables per-(set, attribute) hash indexes for equality-
	// pinned set expressions. Default true via NewEngine.
	UseIndex bool
	// SemiNaive enables rule-level semi-naive fixpoint iteration during
	// view materialization. Default true via NewEngine.
	SemiNaive bool
	// MaxIterations bounds fixpoint iterations per stratum (guards
	// non-terminating rule sets). Default 10000.
	MaxIterations int
	// NoSchedule disables safety-driven conjunct reordering: conjuncts
	// evaluate strictly left to right, so queries whose negations or
	// inequalities precede their binders fail with UnsafeError. Used by
	// the scheduling ablation benchmark.
	NoSchedule bool
	// ExposeMeta reifies the effective universe's schema as a synthetic
	// `meta` database (see meta.go) so metadata can be queried as data.
	ExposeMeta bool
	// IncrementalViews maintains materialized views incrementally when it
	// is sound to do so: after a purely additive update (no deletes, no
	// nulled values) and with a negation-free rule set, rules re-run on
	// top of the existing overlay instead of from scratch. Any other
	// change falls back to full recomputation.
	IncrementalViews bool
	// Workers sets the degree of intra-operation parallelism. With a
	// value above one, queries whose first scheduled conjunct scans a
	// large set partition that scan across workers, and view
	// materialization evaluates independent rules of a stratum
	// concurrently — with answers, derived overlays, and evaluator
	// counters byte-identical to sequential evaluation (DESIGN.md §10).
	// 0 and 1 evaluate sequentially. Default 0.
	Workers int
	// BestEffort degrades queries gracefully when a federated member
	// database is unreachable: instead of failing, the member is treated
	// as empty and the answer carries a Degraded report (which members
	// failed, which conjuncts were skipped). Default false — fail fast,
	// preserving single-site semantics. Updates ignore this setting and
	// always fail fast (they are all-or-nothing).
	BestEffort bool
	// NoPlanCache compiles a fresh plan for every query instead of
	// consulting the epoch-keyed plan cache. Compilation (analysis, cost
	// ranking) still happens — only reuse is disabled. Used by the
	// plan-cache ablation benchmark and the differential suite.
	NoPlanCache bool
	// Interpret evaluates queries directly from the AST with no plan
	// object at all: safety analysis is recomputed lazily per evaluation,
	// exactly as the pre-planner engine did. Conjunct cost ranks are
	// still applied (computed per call from the same statistics), so
	// answers stay byte-identical to compiled evaluation. Used by the
	// differential suite as the reference mode.
	Interpret bool
	// PlanCacheSize bounds the plan cache (LRU eviction). 0 selects the
	// default of 256 plans.
	PlanCacheSize int
	// MaxRevisions bounds MVCC snapshot retention: at each freeze,
	// unpinned versions beyond the newest MaxRevisions are collected
	// (pinned versions always survive). 0 selects the default of 4.
	MaxRevisions int
	// SerialReads disables the MVCC lock-free read path: queries
	// evaluate under the engine mutex exactly as before the versioned
	// universe landed. Used as the single-mutex baseline by the B18
	// bench family and the differential suite's {mutex} arm.
	SerialReads bool
}

// DefaultOptions returns the production defaults.
func DefaultOptions() Options {
	return Options{UseIndex: true, SemiNaive: true, MaxIterations: 10000}
}

// Engine is the IDL evaluation engine over one universe of databases: it
// answers higher-order queries (§4), executes update requests (§5),
// materializes (higher-order) views (§6), and runs update programs
// including view-update translation (§7).
//
// An Engine is safe for concurrent use. Mutations (Execute, Call,
// UpdateBase, DDL, rule registration) serialize on the engine mutex;
// queries pin an immutable snapshot version (version.go) and evaluate
// lock-free, falling back to the mutex only to freeze a fresh snapshot
// after a mutation — or always, under Options.SerialReads.
type Engine struct {
	mu sync.Mutex

	base    *object.Tuple // extensional universe (the only updatable part)
	rules   []*compiledRule
	regs    *programRegistry
	indexes *indexCache
	opts    Options
	stats   Stats
	// statsMu guards the aggregate evaluator counters: lock-free
	// snapshot readers merge their local counters without e.mu.
	statsMu sync.Mutex

	// MVCC version chain (version.go). head is the newest frozen
	// snapshot (nil after any mutation, until a reader freezes a fresh
	// one); versions are the retained snapshots; published marks every
	// set shared into a live snapshot — the sets writers must
	// copy-on-write. versions/published live under e.mu.
	head      atomic.Pointer[version]
	versions  []*version
	published map[*object.Set]bool
	// mvcc counters, under e.mu.
	mvccFreezes   uint64
	mvccCollected uint64
	mvccCOWClones uint64

	// epoch counts catalog changes: every mutation of the universe or
	// the rule set bumps it (markDirty). Plans, prepared queries, and
	// relation statistics validated at the current epoch are fresh.
	epoch uint64
	// plans is the epoch-keyed compiled-plan cache, under planMu so the
	// lock-free read path can consult it; relStats is the lazy
	// per-relation statistics memo (a sync.Map — see stats.go).
	planMu        sync.Mutex
	plans         *planCache
	planHits      uint64
	planMisses    uint64
	planEvictions uint64
	relStats      sync.Map // *object.Set -> *relStat

	// metrics/tracer are the optional observability hooks (obs.go); em
	// caches per-metric pointers so operations skip registry lookups.
	// All three are nil by default — instrumentation sites reduce to
	// pointer tests, keeping observability zero-cost when disabled.
	metrics *obs.Registry
	em      *engineMetrics
	tracer  *obs.Tracer

	derivedDynamic map[string]bool            // db -> has higher-order heads
	derivedRels    map[string]map[string]bool // db -> rel -> derived

	derived   *object.Tuple // overlay from last materialization
	effective *object.Tuple // merged base+derived from last refresh
	dirty     bool          // base or rules changed since last refresh
	// monotoneDirty: every change since the last refresh was purely
	// additive, so (for negation-free rule sets) the existing overlay is
	// still a sound lower bound and can be grown incrementally.
	monotoneDirty bool
	rulesMonotone bool // no rule body contains a negated reference

	// validator, when set, checks the base universe after every
	// mutating request; a non-nil error rolls the request back
	// (integrity enforcement — see internal/schema).
	validator func(*object.Tuple) error

	// unavailable names federated member databases whose last sync
	// failed (best-effort mode); Explain marks conjuncts over them as
	// skipped. Maintained by the federation layer via SetUnavailable.
	unavailable map[string]bool
	// readOnly names databases backed by federated sources: their
	// contents are snapshots, so update requests targeting them are
	// rejected rather than silently lost on the next sync.
	readOnly map[string]bool

	lastRecompute RecomputeStats
	// fixpointRounds counts view-materialization iterations engine-wide;
	// entry points snapshot it around an operation to attribute the rounds
	// that operation triggered (Answer.Resources / ExecResult.Resources).
	fixpointRounds uint64
}

// SetValidator installs (or clears, with nil) an integrity validator run
// against the base universe after every mutating request. A validation
// error aborts and rolls back the request.
func (e *Engine) SetValidator(fn func(*object.Tuple) error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.validator = fn
}

// NewEngine returns an engine with an empty universe.
func NewEngine() *Engine { return NewEngineWithOptions(DefaultOptions()) }

// NewEngineWithOptions returns an engine with explicit options.
func NewEngineWithOptions(opts Options) *Engine {
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 10000
	}
	return &Engine{
		base:           object.NewTuple(),
		regs:           newProgramRegistry(),
		indexes:        newIndexCache(),
		plans:          newPlanCache(opts.PlanCacheSize),
		opts:           opts,
		derivedDynamic: map[string]bool{},
		derivedRels:    map[string]map[string]bool{},
		dirty:          true,
	}
}

// Base returns the extensional universe tuple. Callers who mutate it
// directly (e.g. bulk loaders) must call Invalidate afterwards.
func (e *Engine) Base() *object.Tuple { return e.base }

// Options returns a copy of the engine options.
func (e *Engine) Options() Options {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.opts
}

// UpdateBase runs fn against the base universe under the engine mutex
// and marks derived state dirty when fn reports a change. It is the
// hook for components that must mutate the base coherently with
// concurrent queries — notably the federation sync installing member
// snapshots.
func (e *Engine) UpdateBase(fn func(base *object.Tuple) bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if fn(e.base) {
		e.markDirty(false)
	}
}

// SetUnavailable records which federated member databases are currently
// unreachable (nil clears). Explain marks conjuncts over them.
func (e *Engine) SetUnavailable(names []string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(names) == 0 {
		e.unavailable = nil
		return
	}
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	e.unavailable = m
}

// SetReadOnly marks databases as federated snapshots: update requests
// that target them fail with a *ReadOnlyDBError.
func (e *Engine) SetReadOnly(names []string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(names) == 0 {
		e.readOnly = nil
		return
	}
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	e.readOnly = m
}

// ReadOnlyDBError reports an update request that targeted a federated
// (source-backed) database. Member snapshots are read-only: a write
// would be silently lost on the next sync instead of reaching the
// autonomously administered member.
type ReadOnlyDBError struct{ DB string }

func (e *ReadOnlyDBError) Error() string {
	return fmt.Sprintf("core: database %s is a federated source snapshot and cannot be updated through this engine", e.DB)
}

// Invalidate marks derived views stale; the next query rematerializes
// from scratch (external mutations are assumed non-monotone).
func (e *Engine) Invalidate() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.markDirty(false)
}

// markDirty records staleness; monotone dirt can stack on monotone dirt,
// anything else forces a full recomputation. Every call bumps the
// catalog epoch — each corresponds to a change to the universe or rule
// set, so plans and statistics stamped at an older epoch must revalidate
// their dependencies before reuse. It also drops the published MVCC
// head: new readers fall into the locked slow path and block on e.mu
// until the mutation in progress commits (or rolls back), then freeze a
// fresh snapshot. Readers already pinned to an older version are
// unaffected — their snapshot is immutable. Callers hold e.mu.
func (e *Engine) markDirty(monotone bool) {
	e.epoch++
	e.invalidateHead()
	if e.dirty {
		e.monotoneDirty = e.monotoneDirty && monotone
	} else {
		e.dirty = true
		e.monotoneDirty = monotone
	}
}

// Stats returns a copy of the evaluator counters.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.stats
}

// ResetStats zeroes the evaluator counters.
func (e *Engine) ResetStats() {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	e.stats = Stats{}
}

// addStats merges one operation's local counters into the engine-wide
// aggregate. Safe without e.mu.
func (e *Engine) addStats(local Stats) {
	e.statsMu.Lock()
	e.stats.add(local)
	e.statsMu.Unlock()
}

// LastRecompute reports the work done by the most recent view
// materialization.
func (e *Engine) LastRecompute() RecomputeStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastRecompute
}

// AddRule registers a view rule (§6) after validation and restratifies
// the rule set.
func (e *Engine) AddRule(r *ast.Rule) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ast.HasUpdate(r.Body) {
		return fmt.Errorf("core: rule body %q must not contain update expressions", r.Body.String())
	}
	cr, err := compileRule(r)
	if err != nil {
		return err
	}
	candidate := append(append([]*compiledRule(nil), e.rules...), cr)
	if err := stratify(candidate); err != nil {
		return err
	}
	e.rules = candidate
	if cr.headRel == nil {
		e.derivedDynamic[cr.headDB] = true
	} else if v, ok := cr.headRel.(ast.Const); ok {
		if s, ok := v.Value.(object.Str); ok {
			rels := e.derivedRels[cr.headDB]
			if rels == nil {
				rels = map[string]bool{}
				e.derivedRels[cr.headDB] = rels
			}
			rels[string(s)] = true
		}
	} else {
		// Higher-order head: relation set is data dependent, so the whole
		// database is derived.
		e.derivedDynamic[cr.headDB] = true
	}
	e.markDirty(false)
	e.rulesMonotone = true
	for _, cr := range e.rules {
		for _, ref := range cr.refs {
			if ref.negated {
				e.rulesMonotone = false
			}
		}
	}
	return nil
}

// Rules returns the source rules in registration order.
func (e *Engine) Rules() []*ast.Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*ast.Rule, len(e.rules))
	for i, r := range e.rules {
		out[i] = r.src
	}
	return out
}

// AddClause registers an update-program clause (§7).
func (e *Engine) AddClause(c *ast.Clause) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	cc, err := compileClause(c)
	if err != nil {
		return err
	}
	e.regs.add(cc)
	return nil
}

// Clauses returns the source clauses — callable programs and view
// updaters alike — in global registration order, so the full clause set
// can be checkpointed and re-registered on recovery.
func (e *Engine) Clauses() []*ast.Clause {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*ast.Clause(nil), e.regs.srcs...)
}

// Programs lists the registered callable programs.
func (e *Engine) Programs() []*Program {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.regs.All()
}

// LookupProgram finds a callable program by namespace and name.
func (e *Engine) LookupProgram(db, name string) (*Program, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.regs.lookup(db, name)
}

// Query answers a pure query (§4) against the effective universe
// (base ∪ materialized views). It rejects update requests.
func (e *Engine) Query(q *ast.Query) (*Answer, error) {
	return e.QueryCtx(context.Background(), q)
}

// QueryCtx is Query under a context: evaluation observes cancellation
// and deadlines, with checks amortized so the enumeration hot path
// stays fast. A cancelled query returns ctx.Err().
//
// Reads are snapshot-isolated: the query pins the newest committed
// version of the effective universe (version.go) and evaluates against
// it without holding the engine mutex, so concurrent queries share the
// machine instead of a lock queue. The mutex is taken only when no
// fresh snapshot is published (the first read after a mutation freezes
// one), under Options.SerialReads, or when a tracer is attached
// (per-conjunct probes are not concurrency-safe).
//
// Unless the planner is bypassed (NoSchedule, Interpret, or a traced
// run), evaluation goes through a compiled plan from the epoch-keyed
// plan cache; the answer's Plan field reports the cache outcome.
func (e *Engine) QueryCtx(ctx context.Context, q *ast.Query) (*Answer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ast.HasUpdate(q.Body) {
		return nil, fmt.Errorf("core: query contains update expressions; use Execute")
	}
	if v := e.pinHead(); v != nil {
		if v.opts.SerialReads || v.tracer != nil {
			v.unpin()
		} else {
			defer v.unpin()
			return e.runSnapshot(cancellable(ctx), ctx, q, v, nil, nil)
		}
	}
	return e.queryLocked(ctx, q)
}

// queryLocked is the mutex-guarded read path: refresh the effective
// universe, publish a fresh snapshot for subsequent lock-free readers,
// and evaluate under the lock (pre-MVCC semantics).
func (e *Engine) queryLocked(ctx context.Context, q *ast.Query) (*Answer, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cctx := cancellable(ctx)
	rounds := e.fixpointRounds
	if _, err := e.refreshEffective(cctx); err != nil {
		return nil, err
	}
	if !e.opts.SerialReads {
		e.publishHeadLocked()
	}
	ans, err := e.runPlanned(cctx, ctx, q, nil, nil)
	if ans != nil {
		ans.Resources.FixpointRounds = e.fixpointRounds - rounds
	}
	return ans, err
}

// runPlanned evaluates a pure query under e.mu against the refreshed
// effective universe. With pl == nil a plan is acquired according to the
// engine options: from the plan cache (default), compiled cold
// (NoPlanCache), or skipped entirely (Interpret / NoSchedule / traced
// runs, which analyze the caller's AST transiently). Prepared queries
// pass their own plan. All routes apply the same cost ranks, so answers
// — including raw row order — are byte-identical across them.
func (e *Engine) runPlanned(cctx context.Context, ctx context.Context, q *ast.Query, pl *queryPlan, info *PlanInfo) (*Answer, error) {
	eff := e.effective
	obsOn := e.em != nil || e.tracer != nil
	var start time.Time
	var span *obs.Span
	if obsOn {
		start = time.Now()
		span = e.tracer.Start("query")
		annotateOpID(span, ctx)
	}
	// Answer variables are those with a positive occurrence; variables
	// confined to negations are existential and never bind outward.
	body := q.Body
	var vars []string
	var an *bodyAnalysis
	switch {
	case e.opts.NoSchedule:
		// Ablation mode: strict left-to-right evaluation, no planner.
		vars = ast.PositiveVars(q.Body)
	case span != nil:
		// Traced queries carry per-conjunct probes keyed by the caller's
		// AST identity, so they evaluate q itself — with a transient
		// analysis carrying the same cost ranks a plan would.
		vars = ast.PositiveVars(q.Body)
		an = e.analyzeBody(q.Body, eff, nil)
	case e.opts.Interpret:
		vars = ast.PositiveVars(q.Body)
		an = e.analyzeBody(q.Body, eff, nil)
	default:
		if pl == nil {
			var state string
			pl, state = e.planFor(q, eff, e.epoch, e.opts, e.em)
			info = &PlanInfo{Cache: state}
			if state == "miss" || state == "cold" {
				info.CompileNS = pl.compileNS
			}
		}
		// Execute the plan's own AST: every evaluation of one plan walks
		// identical pointers, so structurally equal queries enumerate
		// identically whether they hit or miss the cache.
		body = pl.q.Body
		vars = pl.vars
		an = pl.an
	}
	ans := newAnswer(vars)
	var local Stats
	ev := &evaluator{env: NewEnv(), indexes: e.indexes, useIndex: e.opts.UseIndex, noSchedule: e.opts.NoSchedule, stats: &local, ctx: cctx}
	if an != nil {
		ev.consumedCache = an.consumed
		ev.ranks = an.ranks
	}
	var probes map[ast.Expr]*conjunctProbe
	if span != nil {
		// Traced queries carry per-conjunct child spans, measured by the
		// same probes EXPLAIN ANALYZE uses.
		probes = newProbes(q.Body.Conjuncts)
		ev.analyze = &analyzeState{probes: probes}
	}
	// Parallel path: partition the query's first scan across workers and
	// merge the per-chunk rows in chunk order, reproducing the sequential
	// row order exactly. Traced queries (span != nil) stay sequential —
	// per-conjunct probes are not parallel-safe.
	var err error
	ran := false
	if e.opts.Workers > 1 && span == nil {
		var chunks [][]Row
		var ok bool
		chunks, ok, err = e.parallelEnumerate(cctx, body, eff, vars, &local, an, e.opts, e.em)
		if ok {
			ran = true
			if err == nil {
				var mergeStart time.Time
				if e.em != nil {
					mergeStart = time.Now()
				}
				for _, rows := range chunks {
					for _, r := range rows {
						ans.add(r)
					}
				}
				if e.em != nil {
					e.em.mergeLatency.Observe(time.Since(mergeStart))
				}
			}
		}
	}
	if !ran {
		err = ev.satisfy(body, eff, func() error {
			ans.add(ev.env.Snapshot(vars))
			return nil
		})
	}
	e.addStats(local)
	if obsOn {
		if e.em != nil {
			e.em.record(&e.em.query, start, local, err)
		}
		if span != nil {
			span.SetInt("rows", int64(ans.Len()))
			span.SetInt("elements_scanned", int64(local.ElementsScanned))
			span.SetInt("index_probes", int64(local.IndexProbes))
			attachConjunctSpans(span, q.Body.Conjuncts, probes)
			span.End()
		}
	}
	if err != nil {
		return nil, err
	}
	ans.Plan = info
	ans.Resources = resourcesFrom(local, ans.Len())
	return ans, nil
}

// runSnapshot evaluates a pure query against a pinned immutable version
// with NO engine lock held — the MVCC fast path. It mirrors runPlanned:
// the same plan acquisition (from the planMu-guarded cache, keyed by the
// version's epoch), the same cost ranks, the same parallel-partition
// path, so answers — including raw row order — are byte-identical to the
// locked path at the same epoch. Shared state it touches is individually
// synchronized: the plan cache under planMu, the index cache's sharded
// read locks, the statistics sync.Map, and the aggregate counters under
// statsMu. pl, when non-nil, is a prepared query's revalidated plan.
func (e *Engine) runSnapshot(cctx context.Context, ctx context.Context, q *ast.Query, v *version, pl *queryPlan, info *PlanInfo) (*Answer, error) {
	eff := v.eff
	em := v.em
	var start time.Time
	if em != nil {
		start = time.Now()
	}
	body := q.Body
	var vars []string
	var an *bodyAnalysis
	switch {
	case v.opts.NoSchedule:
		vars = ast.PositiveVars(q.Body)
	case v.opts.Interpret:
		vars = ast.PositiveVars(q.Body)
		an = e.analyzeBody(q.Body, eff, nil)
	default:
		if pl == nil {
			var state string
			pl, state = e.planFor(q, eff, v.epoch, v.opts, em)
			info = &PlanInfo{Cache: state}
			if state == "miss" || state == "cold" {
				info.CompileNS = pl.compileNS
			}
		}
		body = pl.q.Body
		vars = pl.vars
		an = pl.an
	}
	ans := newAnswer(vars)
	var local Stats
	ev := &evaluator{env: NewEnv(), indexes: e.indexes, useIndex: v.opts.UseIndex, noSchedule: v.opts.NoSchedule, stats: &local, ctx: cctx}
	if an != nil {
		ev.consumedCache = an.consumed
		ev.ranks = an.ranks
	}
	var err error
	ran := false
	if v.opts.Workers > 1 {
		var chunks [][]Row
		var ok bool
		chunks, ok, err = e.parallelEnumerate(cctx, body, eff, vars, &local, an, v.opts, em)
		if ok {
			ran = true
			if err == nil {
				var mergeStart time.Time
				if em != nil {
					mergeStart = time.Now()
				}
				for _, rows := range chunks {
					for _, r := range rows {
						ans.add(r)
					}
				}
				if em != nil {
					em.mergeLatency.Observe(time.Since(mergeStart))
				}
			}
		}
	}
	if !ran {
		err = ev.satisfy(body, eff, func() error {
			ans.add(ev.env.Snapshot(vars))
			return nil
		})
	}
	e.addStats(local)
	if em != nil {
		em.record(&em.query, start, local, err)
	}
	if err != nil {
		return nil, err
	}
	ans.Plan = info
	ans.Resources = resourcesFrom(local, ans.Len())
	return ans, nil
}

// cancellable strips never-cancelled contexts down to nil so the
// evaluator's amortized check compiles to a single pointer test on the
// legacy (context-free) entry points.
func cancellable(ctx context.Context) context.Context {
	if ctx == nil || ctx == context.Background() || ctx == context.TODO() {
		return nil
	}
	return ctx
}

// Execute runs an update request (§5.2): a conjunction of query
// expressions, update expressions, and update-program calls, processed
// left → right under a shared substitution bag. The request is atomic —
// any error rolls every mutation back.
func (e *Engine) Execute(q *ast.Query) (*ExecResult, error) {
	return e.ExecuteCtx(context.Background(), q)
}

// ExecuteCtx is Execute under a context. Cancellation aborts the
// request and rolls back every mutation already applied — the request
// stays atomic.
func (e *Engine) ExecuteCtx(ctx context.Context, q *ast.Query) (*ExecResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	obsOn := e.em != nil || e.tracer != nil
	var start time.Time
	var span *obs.Span
	if obsOn {
		start = time.Now()
		span = e.tracer.Start("exec")
		annotateOpID(span, ctx)
	}
	var local Stats
	rounds := e.fixpointRounds
	u := &updater{
		ev:     &evaluator{env: NewEnv(), indexes: e.indexes, useIndex: e.opts.UseIndex, noSchedule: e.opts.NoSchedule, stats: &local, ctx: cancellable(ctx)},
		undo:   &undoLog{},
		result: &ExecResult{},
		span:   span,
	}
	u.cow = e.cowSetUndo(u)
	err := e.execBody(q.Body, u, map[string]object.Object{}, map[*compiledClause]bool{})
	if err == nil {
		err = e.validate(u)
	}
	e.addStats(local)
	if obsOn {
		if e.em != nil {
			e.em.record(&e.em.exec, start, local, err)
		}
		if span != nil {
			span.SetInt("bindings", int64(u.result.Bindings))
			span.SetInt("changes", int64(u.result.total()))
			span.End()
		}
	}
	if err != nil {
		u.undo.rollback()
		e.markDirty(false)
		return nil, err
	}
	if u.result.Changed() {
		e.markDirty(monotoneResult(u.result))
	}
	u.result.Resources = resourcesFrom(local, u.result.Bindings)
	u.result.Resources.FixpointRounds = e.fixpointRounds - rounds
	return u.result, nil
}

// monotoneResult reports whether a request only added facts.
func monotoneResult(r *ExecResult) bool {
	return r.ElemsDeleted == 0 && r.AttrsDeleted == 0 && r.ValuesSet == 0
}

// validate runs the installed integrity validator for a mutating request.
func (e *Engine) validate(u *updater) error {
	if e.validator == nil || !u.result.Changed() {
		return nil
	}
	return e.validator(e.base)
}

// Call invokes a named update program with explicit parameter bindings —
// the API-level equivalent of `?.db.prog(.param=value, …)`.
func (e *Engine) Call(db, name string, params map[string]object.Object) (*ExecResult, error) {
	return e.CallCtx(context.Background(), db, name, params)
}

// CallCtx is Call under a context; cancellation aborts and rolls back.
func (e *Engine) CallCtx(ctx context.Context, db, name string, params map[string]object.Object) (*ExecResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.regs.lookup(db, name)
	if !ok {
		return nil, fmt.Errorf("core: no update program %s.%s", db, name)
	}
	obsOn := e.em != nil || e.tracer != nil
	var start time.Time
	var span *obs.Span
	if obsOn {
		start = time.Now()
		span = e.tracer.Start("call")
		annotateOpID(span, ctx)
	}
	var local Stats
	rounds := e.fixpointRounds
	u := &updater{
		ev:     &evaluator{env: NewEnv(), indexes: e.indexes, useIndex: e.opts.UseIndex, noSchedule: e.opts.NoSchedule, stats: &local, ctx: cancellable(ctx)},
		undo:   &undoLog{},
		result: &ExecResult{},
		span:   span,
	}
	u.cow = e.cowSetUndo(u)
	err := e.invokeProgramDirect(p, params, u, map[*compiledClause]bool{})
	if err == nil {
		err = e.validate(u)
	}
	e.addStats(local)
	if obsOn {
		if e.em != nil {
			e.em.record(&e.em.call, start, local, err)
		}
		if span != nil {
			span.SetInt("changes", int64(u.result.total()))
			span.End()
		}
	}
	if err != nil {
		u.undo.rollback()
		e.markDirty(false)
		return nil, err
	}
	if u.result.Changed() {
		e.markDirty(monotoneResult(u.result))
	}
	u.result.Resources = resourcesFrom(local, u.result.Bindings)
	u.result.Resources.FixpointRounds = e.fixpointRounds - rounds
	return u.result, nil
}

// EffectiveUniverse returns the merged base+derived universe,
// rematerializing views if stale. The result must not be mutated.
func (e *Engine) EffectiveUniverse() (*object.Tuple, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.refreshEffective(nil)
}

// DerivedOverlay returns the current derived overlay (views only),
// rematerializing if stale.
func (e *Engine) DerivedOverlay() (*object.Tuple, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.refreshEffective(nil); err != nil {
		return nil, err
	}
	return e.derived, nil
}

// refreshEffective rematerializes views when stale. Callers hold e.mu.
// A nil ctx means uncancellable.
func (e *Engine) refreshEffective(ctx context.Context) (*object.Tuple, error) {
	if !e.dirty && e.effective != nil {
		return e.effective, nil
	}
	obsOn := e.em != nil || e.tracer != nil
	var start time.Time
	var span *obs.Span
	if obsOn && len(e.rules) > 0 {
		start = time.Now()
		span = e.tracer.Start("materialize")
	}
	var derived *object.Tuple
	var stats RecomputeStats
	var err error
	if e.opts.IncrementalViews && e.monotoneDirty && e.rulesMonotone && e.derived != nil {
		// Purely additive change + negation-free rules: grow the
		// existing overlay (sound because derivation is monotone).
		derived = e.derived
		stats, err = e.materializeInto(ctx, derived, span)
		stats.Incremental = true
	} else {
		derived, stats, err = e.materialize(ctx, span)
	}
	if !start.IsZero() && e.em != nil {
		e.em.matCount.Inc()
		if stats.Incremental {
			e.em.matIncremental.Inc()
		}
		e.em.matIterations.Add(uint64(stats.Iterations))
		e.em.matRuleRuns.Add(uint64(stats.RuleRuns))
		e.em.matFactsDerived.Add(uint64(stats.FactsDerived))
		e.em.matLatency.Observe(time.Since(start))
	}
	if span != nil {
		span.SetInt("iterations", int64(stats.Iterations))
		span.SetInt("rule_runs", int64(stats.RuleRuns))
		span.SetInt("facts_derived", int64(stats.FactsDerived))
		if stats.Incremental {
			span.SetStr("mode", "incremental")
		}
		span.End()
	}
	if err != nil {
		return nil, err
	}
	e.derived = derived
	e.lastRecompute = stats
	e.fixpointRounds += uint64(stats.Iterations)
	e.effective = mergeUniverse(e.base, derived)
	if e.opts.ExposeMeta && !e.effective.Has(MetaDB) {
		// Reify on a copy when the merge returned the base by reference,
		// so the synthetic database never leaks into the base universe.
		if e.effective == e.base {
			cp := object.NewTuple()
			e.base.Each(func(db string, v object.Object) bool {
				cp.Put(db, v)
				return true
			})
			e.effective = cp
		}
		e.effective.Put(MetaDB, buildMeta(e.effective))
	}
	// Per-relation cache invalidation: retain index and statistics
	// entries whose sets are still reachable from the new effective
	// universe, drop the rest. Sets shared by reference across the merge
	// (every relation an unchanged base database contributes) keep their
	// caches — only relations rebuilt by the merge (derived overlaps,
	// meta) lose theirs. Keeping is safe because both caches re-check the
	// set's version on use; dropping merely forces a rebuild.
	live := make(map[*object.Set]bool)
	e.effective.Each(func(_ string, v object.Object) bool {
		dbt, ok := v.(*object.Tuple)
		if !ok {
			return true
		}
		dbt.Each(func(_ string, rv object.Object) bool {
			if set, ok := rv.(*object.Set); ok {
				live[set] = true
			}
			return true
		})
		return true
	})
	// Sets shared into retained MVCC snapshots stay live too: in-flight
	// readers may still probe their indexes and statistics.
	for _, v := range e.versions {
		for _, set := range v.sets {
			live[set] = true
		}
	}
	e.indexes.retain(live)
	e.pruneStats(live)
	e.dirty = false
	e.monotoneDirty = false
	return e.effective, nil
}

// execBody is the shared request loop used by Execute, program clause
// bodies, and view-update translations: classify each conjunct as query /
// program call / update and process left → right over the substitution
// bag.
func (e *Engine) execBody(body *ast.TupleExpr, u *updater, seed map[string]object.Object, active map[*compiledClause]bool) error {
	type envMap = map[string]object.Object
	envs := []envMap{seed}
	for _, conjunct := range body.Conjuncts {
		if err := validateUpdateConjunct(conjunct); err != nil {
			return err
		}
		switch {
		case !ast.HasUpdate(conjunct):
			// Program call or query conjunct.
			if p, params, ok := e.programCall(conjunct); ok {
				for _, em := range envs {
					u.ev.env = envFrom(em)
					bound, err := bindCallParams(params.clause, params.args, u.ev.env)
					if err != nil {
						return err
					}
					if err := e.invokeProgram(p, bound, u, active); err != nil {
						return err
					}
				}
				continue
			}
			eff, err := e.refreshEffective(u.ev.ctx)
			if err != nil {
				return err
			}
			var extended []envMap
			dedupe := newAnswer(nil)
			for _, em := range envs {
				u.ev.env = envFrom(em)
				err := u.ev.satisfy(conjunct, eff, func() error {
					snap := u.ev.env.Snapshot(nil)
					if dedupe.add(snap) {
						extended = append(extended, snap)
					}
					return nil
				})
				if err != nil {
					return err
				}
			}
			envs = extended

		default:
			// Update conjunct: route to a view updater or the base.
			for _, em := range envs {
				u.ev.env = envFrom(em)
				if err := e.execUpdateConjunct(conjunct, u, active); err != nil {
					return err
				}
			}
			e.markDirty(monotoneResult(u.result))
		}
	}
	u.result.Bindings = len(envs)
	return nil
}

// callSite carries a matched program-call conjunct.
type callSite struct {
	clause *compiledClause
	args   *ast.TupleExpr
}

type matchedCall struct {
	clause *compiledClause
	args   *ast.TupleExpr
}

// programCall recognizes `.db.name(args…)` conjuncts naming a registered
// update program. Registered program namespaces shadow same-named data.
func (e *Engine) programCall(conjunct ast.Expr) (*Program, *matchedCall, bool) {
	a, ok := conjunct.(*ast.AttrExpr)
	if !ok || a.Sign != ast.SignNone {
		return nil, nil, false
	}
	db, ok := constStrName(a.Name)
	if !ok {
		return nil, nil, false
	}
	inner, ok := a.Expr.(*ast.TupleExpr)
	if !ok || len(inner.Conjuncts) != 1 {
		return nil, nil, false
	}
	nameAttr, ok := inner.Conjuncts[0].(*ast.AttrExpr)
	if !ok || nameAttr.Sign != ast.SignNone {
		return nil, nil, false
	}
	name, ok := constStrName(nameAttr.Name)
	if !ok {
		return nil, nil, false
	}
	p, found := e.regs.lookup(db, name)
	if !found {
		return nil, nil, false
	}
	var args *ast.TupleExpr
	switch x := nameAttr.Expr.(type) {
	case *ast.SetExpr:
		if x.Sign != ast.SignNone {
			return nil, nil, false
		}
		switch in := x.X.(type) {
		case *ast.TupleExpr:
			args = in
		case ast.Epsilon:
			args = &ast.TupleExpr{}
		case *ast.AttrExpr:
			args = &ast.TupleExpr{Conjuncts: []ast.Expr{in}}
		default:
			return nil, nil, false
		}
	case ast.Epsilon:
		args = &ast.TupleExpr{}
	default:
		return nil, nil, false
	}
	if len(p.Clauses) == 0 {
		return nil, nil, false
	}
	return p, &matchedCall{clause: p.Clauses[0], args: args}, true
}

func constStrName(t ast.Term) (string, bool) {
	c, ok := t.(ast.Const)
	if !ok {
		return "", false
	}
	s, ok := c.Value.(object.Str)
	if !ok {
		return "", false
	}
	return string(s), true
}

// invokeProgram executes every clause of a program, in order, under the
// given parameter bindings — re-matching each clause's own parameter
// declaration (clauses may declare different subsets).
func (e *Engine) invokeProgram(p *Program, bound map[string]object.Object, u *updater, active map[*compiledClause]bool) error {
	return e.invokeProgramDirect(p, bound, u, active)
}

func (e *Engine) invokeProgramDirect(p *Program, bound map[string]object.Object, u *updater, active map[*compiledClause]bool) error {
	for _, cc := range p.Clauses {
		if active[cc] {
			return fmt.Errorf("core: recursive invocation of update program %s.%s", p.DB, p.Name)
		}
	}
	if e.em != nil {
		e.em.programCalls.Inc()
	}
	if u.span != nil {
		// Nested program invocations hang off the caller's span, giving
		// the traced request an update-program call tree.
		parent := u.span
		sp := parent.Child("program " + p.DB + "." + p.Name)
		u.span = sp
		defer func() { sp.End(); u.span = parent }()
	}
	for _, cc := range p.Clauses {
		// Check the clause's binding signature.
		for _, req := range cc.required {
			if _, ok := bound[req]; !ok {
				return fmt.Errorf("core: program %s.%s requires parameter variable %s to be bound (insert expressions would be undefined)", p.DB, p.Name, req)
			}
		}
		seed := map[string]object.Object{}
		for k, v := range bound {
			if varDeclared(cc, k) {
				seed[k] = v
			}
		}
		active[cc] = true
		prev := u.ev.consumedCache
		u.ev.consumedCache = cc.consumed
		err := e.execBody(cc.src.Body, u, seed, active)
		u.ev.consumedCache = prev
		delete(active, cc)
		if err != nil {
			return fmt.Errorf("core: program %s.%s: %w", p.DB, p.Name, err)
		}
	}
	return nil
}

func varDeclared(cc *compiledClause, name string) bool {
	for _, v := range cc.paramVars {
		if v == name {
			return true
		}
	}
	return false
}

// execUpdateConjunct routes one update conjunct: updates touching derived
// (view) relations dispatch to registered view-update programs; everything
// else applies to the base universe.
func (e *Engine) execUpdateConjunct(conjunct ast.Expr, u *updater, active map[*compiledClause]bool) error {
	if db, rel, sign, inner, ok := e.updateTarget(conjunct, u.ev.env); ok && e.isDerived(db, rel) {
		cc, found := e.regs.lookupViewUpdater(db, rel, sign)
		if !found {
			return fmt.Errorf("core: view %s.%s is not updatable: no %s-update program is registered for it", db, rel, sign)
		}
		if active[cc] {
			return fmt.Errorf("core: recursive view-update translation for %s.%s", db, rel)
		}
		bound, err := matchViewUpdate(cc, rel, inner, u.ev.env)
		if err != nil {
			return err
		}
		for _, req := range cc.required {
			if _, ok := bound[req]; !ok {
				return fmt.Errorf("core: view update on %s.%s requires %s to be bound", db, rel, req)
			}
		}
		active[cc] = true
		prev := u.ev.consumedCache
		u.ev.consumedCache = cc.consumed
		err = e.execBody(cc.src.Body, u, bound, active)
		u.ev.consumedCache = prev
		delete(active, cc)
		if err != nil {
			return fmt.Errorf("core: view update on %s.%s: %w", db, rel, err)
		}
		return nil
	}
	// Guard: an update conjunct whose database level is derived but whose
	// shape we could not match is an error rather than a silent base write.
	if a, ok := conjunct.(*ast.AttrExpr); ok {
		if len(e.readOnly) > 0 {
			if db, ok := resolveName(a.Name, u.ev.env); ok && e.readOnly[db] {
				return &ReadOnlyDBError{DB: db}
			}
		}
		if db, ok := constStrName(a.Name); ok && e.dbIsDerived(db) {
			if _, _, _, _, matched := e.updateTarget(conjunct, u.ev.env); !matched {
				return fmt.Errorf("core: cannot update derived database %s: only relation-level +/- set expressions are translatable", db)
			}
			return fmt.Errorf("core: view in database %s is not updatable: no update program is registered for it", db)
		}
	}
	return u.execUpdate(conjunct, e.base, noSlot{})
}

// updateTarget recognizes the translatable view-update shape:
// `.db.rel±(inner)` with resolvable names.
func (e *Engine) updateTarget(conjunct ast.Expr, env *Env) (db, rel string, sign ast.Sign, inner ast.Expr, ok bool) {
	a, isAttr := conjunct.(*ast.AttrExpr)
	if !isAttr || a.Sign != ast.SignNone {
		return "", "", 0, nil, false
	}
	db, okDB := resolveName(a.Name, env)
	if !okDB {
		return "", "", 0, nil, false
	}
	te, isTE := a.Expr.(*ast.TupleExpr)
	if !isTE || len(te.Conjuncts) != 1 {
		return "", "", 0, nil, false
	}
	relAttr, isAttr := te.Conjuncts[0].(*ast.AttrExpr)
	if !isAttr || relAttr.Sign != ast.SignNone {
		return "", "", 0, nil, false
	}
	rel, okRel := resolveName(relAttr.Name, env)
	if !okRel {
		return "", "", 0, nil, false
	}
	se, isSet := relAttr.Expr.(*ast.SetExpr)
	if !isSet || se.Sign == ast.SignNone {
		return "", "", 0, nil, false
	}
	return db, rel, se.Sign, se.X, true
}

func resolveName(t ast.Term, env *Env) (string, bool) {
	switch n := t.(type) {
	case ast.Const:
		s, ok := n.Value.(object.Str)
		return string(s), ok
	case ast.Var:
		v, ok := env.Lookup(n.Name)
		if !ok {
			return "", false
		}
		s, ok := v.(object.Str)
		return string(s), ok
	default:
		return "", false
	}
}

// isDerived reports whether (db, rel) is produced by view rules.
func (e *Engine) isDerived(db, rel string) bool {
	if e.derivedDynamic[db] {
		return true
	}
	return e.derivedRels[db][rel]
}

func (e *Engine) dbIsDerived(db string) bool {
	return e.derivedDynamic[db] || len(e.derivedRels[db]) > 0
}
