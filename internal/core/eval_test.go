package core

import (
	"errors"
	"testing"

	"idl/internal/object"
	"idl/internal/parser"
)

// --- Paper §4.2: first-order queries on euter ---

func TestPaperE1HpAbove60(t *testing.T) {
	e := newStockEngine(t)
	ans := q(t, e, "?.euter.r(.stkCode=hp, .clsPrice>60)")
	if len(ans.Vars) != 0 {
		t.Fatalf("expected boolean query, vars = %v", ans.Vars)
	}
	if !ans.Bool() {
		t.Error("hp closed at 62 > 60; query should be true")
	}
	ans = q(t, e, "?.euter.r(.stkCode=hp, .clsPrice>100)")
	if ans.Bool() {
		t.Error("hp never closed above 100")
	}
}

func TestPaperE1SelfJoin(t *testing.T) {
	e := newStockEngine(t)
	// Dates when hp closed above 60 and ibm above 150 (same day).
	ans := q(t, e, "?.euter.r(.stkCode=hp,.clsPrice>60,.date=D), .euter.r(.stkCode=ibm,.clsPrice>150,.date=D)")
	if ans.Len() != 1 {
		t.Fatalf("rows = %d, want 1:\n%s", ans.Len(), ans)
	}
	if !ans.Contains(row("D", object.NewDate(85, 3, 3))) {
		t.Errorf("missing 3/3/85:\n%s", ans)
	}
}

func TestPaperE1AllTimeHigh(t *testing.T) {
	e := newStockEngine(t)
	// Dates/prices when hp closed at its all-time high (negation +
	// inequality join). Note the negation precedes its binder textually;
	// the scheduler must defer it.
	ans := q(t, e, "?.euter.r(.stkCode=hp,.clsPrice=P,.date=D), .euter.r~(.stkCode=hp, .clsPrice>P)")
	if ans.Len() != 1 {
		t.Fatalf("rows = %d, want 1:\n%s", ans.Len(), ans)
	}
	if !ans.Contains(row("D", object.NewDate(85, 3, 3), "P", 62)) {
		t.Errorf("want (3/3/85, 62):\n%s", ans)
	}
}

func TestPaperE1AnyStockAbove200OnEuter(t *testing.T) {
	e := newStockEngine(t)
	ans := q(t, e, "?.euter.r(.stkCode=S, .clsPrice>200)")
	if ans.Len() != 1 || !ans.Contains(row("S", "sun")) {
		t.Errorf("want S=sun only:\n%s", ans)
	}
}

// --- Paper §4.3: higher-order queries ---

func TestHigherOrderDatabaseNames(t *testing.T) {
	e := newStockEngine(t)
	ans := q(t, e, "?.X")
	want := []string{"chwab", "euter", "ource"}
	if ans.Len() != 3 {
		t.Fatalf("databases = %d, want 3:\n%s", ans.Len(), ans)
	}
	for _, db := range want {
		if !ans.Contains(row("X", db)) {
			t.Errorf("missing database %s", db)
		}
	}
}

func TestHigherOrderRelationNamesInOurce(t *testing.T) {
	e := newStockEngine(t)
	ans := q(t, e, "?.ource.Y")
	if ans.Len() != 3 {
		t.Fatalf("rows = %d:\n%s", ans.Len(), ans)
	}
	for _, s := range fixStocks {
		if !ans.Contains(row("Y", s)) {
			t.Errorf("missing relation %s", s)
		}
	}
}

func TestHigherOrderConstraintForm(t *testing.T) {
	e := newStockEngine(t)
	// Footnote 7: ?.X.Y, X = ource
	ans := q(t, e, "?.X.Y, X = ource")
	if ans.Len() != 3 {
		t.Fatalf("rows = %d:\n%s", ans.Len(), ans)
	}
	if !ans.Contains(row("X", "ource", "Y", "hp")) {
		t.Errorf("missing (ource, hp):\n%s", ans)
	}
}

func TestHigherOrderAllDBRelPairs(t *testing.T) {
	e := newStockEngine(t)
	ans := q(t, e, "?.X.Y")
	// euter.r, chwab.r, ource.{hp,ibm,sun} = 5 pairs.
	if ans.Len() != 5 {
		t.Errorf("rows = %d, want 5:\n%s", ans.Len(), ans)
	}
}

func TestHigherOrderDatabasesWithRelationHp(t *testing.T) {
	e := newStockEngine(t)
	ans := q(t, e, "?.X.hp")
	if ans.Len() != 1 || !ans.Contains(row("X", "ource")) {
		t.Errorf("want X=ource only:\n%s", ans)
	}
}

func TestHigherOrderRelationsWithAttributeStkCode(t *testing.T) {
	e := newStockEngine(t)
	ans := q(t, e, "?.X.Y(.stkCode)")
	if ans.Len() != 1 || !ans.Contains(row("X", "euter", "Y", "r")) {
		t.Errorf("want (euter, r) only:\n%s", ans)
	}
}

func TestCrossDatabaseJoinChwabOurce(t *testing.T) {
	e := newStockEngine(t)
	// Stocks in ource and chwab with the same closing price: S is an
	// attribute name in chwab and a relation name in ource.
	ans := q(t, e, "?.chwab.r(.date=D,.S=P), .ource.S(.date=D,.clsPrice=P)")
	// Every (stock, day) pair matches by construction, but S also ranges
	// over chwab's "date" attribute: .date=D, .date=P can only unify when
	// D = P, and a date never equals a price — so exactly 9 rows.
	if ans.Len() != 9 {
		t.Fatalf("rows = %d, want 9:\n%s", ans.Len(), ans)
	}
	if !ans.Contains(row("S", "hp", "D", object.NewDate(85, 3, 1), "P", 50)) {
		t.Errorf("missing (hp, 3/1/85, 50):\n%s", ans)
	}
}

func TestRelationsInAllThreeDatabases(t *testing.T) {
	e := newStockEngine(t)
	ans := q(t, e, "?.euter.Y, .chwab.Y, .ource.Y")
	// euter and chwab have only r; ource has hp/ibm/sun: no common name.
	if ans.Len() != 0 {
		t.Errorf("rows = %d, want 0:\n%s", ans.Len(), ans)
	}
}

func TestAnyStockAbove200AllSchemas(t *testing.T) {
	e := newStockEngine(t)
	// The same intention posed against each schema (§2 query 1, §4.3).
	cases := map[string]string{
		"euter": "?.euter.r(.stkCode=S, .clsPrice>200)",
		"chwab": "?.chwab.r(.S>200)",
		"ource": "?.ource.S(.clsPrice > 200)",
	}
	for db, src := range cases {
		ans := q(t, e, src)
		if !ans.Contains(row("S", "sun")) {
			t.Errorf("%s: missing S=sun:\n%s", db, ans)
		}
		// chwab's S>200 also never matches the date attribute (dates are
		// not comparable with ints), so sun is the only answer everywhere.
		if ans.Len() != 1 {
			t.Errorf("%s: rows = %d, want 1:\n%s", db, ans.Len(), ans)
		}
	}
}

func TestHighestClosePerDayAllSchemas(t *testing.T) {
	e := newStockEngine(t)
	// §2 query 2: for each day, the stock with the highest closing price.
	// Highest per day: 3/1 sun 201, 3/2 sun 210, 3/3 ibm 160.
	type want struct {
		s string
		p int
	}
	wants := map[object.Date]want{
		object.NewDate(85, 3, 1): {"sun", 201},
		object.NewDate(85, 3, 2): {"sun", 210},
		object.NewDate(85, 3, 3): {"ibm", 160},
	}
	check := func(name string, ans *Answer) {
		t.Helper()
		if ans.Len() != 3 {
			t.Errorf("%s: rows = %d, want 3:\n%s", name, ans.Len(), ans)
			return
		}
		for d, w := range wants {
			if !ans.Contains(row("D", d, "S", w.s, "P", w.p)) {
				t.Errorf("%s: missing (%s, %s, %d):\n%s", name, d, w.s, w.p, ans)
			}
		}
	}
	check("euter", q(t, e,
		"?.euter.r(.date=D,.stkCode=S,.clsPrice=P), .euter.r~(.date=D, .clsPrice>P)"))
	check("chwab", q(t, e,
		"?.chwab.r(.date=D,.S=P), .chwab.r~(.date=D,.S2>P), S != date"))
	check("ource", q(t, e,
		"?.ource.S(.date=D,.clsPrice=P), ~.ource.S2(.date=D, .clsPrice>P)"))
}

// --- Aggregate-object variables (§4.1 extension) ---

func TestAggregateVariableBindsRelation(t *testing.T) {
	e := newStockEngine(t)
	ans := q(t, e, "?.euter.r=R")
	if ans.Len() != 1 {
		t.Fatalf("rows = %d:\n%s", ans.Len(), ans)
	}
	set, ok := ans.Rows[0]["R"].(*object.Set)
	if !ok {
		t.Fatalf("R bound to %T, want *Set", ans.Rows[0]["R"])
	}
	if set.Len() != 9 {
		t.Errorf("R has %d elements, want 9", set.Len())
	}
}

func TestAggregateVariableJoinsStructurally(t *testing.T) {
	e := NewEngine()
	u := e.Base()
	db := object.NewTuple()
	db.Put("a", object.SetOf(1, 2))
	db.Put("b", object.SetOf(2, 1))
	db.Put("c", object.SetOf(3))
	u.Put("d", db)
	e.Invalidate()
	// Which relations are equal as sets? a=b (value-based equality).
	ans := q(t, e, "?.d.X=R, .d.Y=R, X != Y")
	if ans.Len() != 2 { // (a,b) and (b,a)
		t.Errorf("rows = %d, want 2:\n%s", ans.Len(), ans)
	}
}

// --- Semantics details ---

func TestNullSatisfiesNothing(t *testing.T) {
	e := NewEngine()
	db := object.NewTuple()
	db.Put("r", object.SetOf(
		object.TupleOf("a", object.Null{}, "k", 1),
		object.TupleOf("a", 5, "k", 2),
	))
	e.Base().Put("d", db)
	e.Invalidate()
	// Null never satisfies atomic expressions — not even =X or =null.
	if ans := q(t, e, "?.d.r(.a=5, .k=K)"); !ans.Contains(row("K", 2)) || ans.Len() != 1 {
		t.Errorf("=5 rows:\n%s", ans)
	}
	if ans := q(t, e, "?.d.r(.a=X, .k=K)"); ans.Len() != 1 || !ans.Contains(row("X", 5, "K", 2)) {
		t.Errorf("=X should skip null:\n%s", ans)
	}
	if ans := q(t, e, "?.d.r(.a=null)"); ans.Bool() {
		t.Errorf("null should not satisfy =null")
	}
	if ans := q(t, e, "?.d.r(.a<10, .k=K)"); ans.Len() != 1 {
		t.Errorf("comparison should skip null:\n%s", ans)
	}
}

func TestHeterogeneousArityTuples(t *testing.T) {
	e := NewEngine()
	db := object.NewTuple()
	db.Put("r", object.SetOf(
		object.TupleOf("x", 1),
		object.TupleOf("x", 2, "y", 3),
	))
	e.Base().Put("d", db)
	e.Invalidate()
	ans := q(t, e, "?.d.r(.y=Y)")
	if ans.Len() != 1 || !ans.Contains(row("Y", 3)) {
		t.Errorf("only the wider tuple has y:\n%s", ans)
	}
	ans = q(t, e, "?.d.r(.x=X)")
	if ans.Len() != 2 {
		t.Errorf("both tuples have x:\n%s", ans)
	}
}

func TestUnsafeQueryError(t *testing.T) {
	e := newStockEngine(t)
	query, err := parser.ParseQuery("?.euter.r(.clsPrice>P)")
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Query(query)
	var unsafe *UnsafeError
	if !errors.As(err, &unsafe) {
		t.Fatalf("want UnsafeError, got %v", err)
	}
	if unsafe.Var != "P" {
		t.Errorf("unsafe var = %s", unsafe.Var)
	}
}

func TestInequalityJoin(t *testing.T) {
	e := newStockEngine(t)
	// Pairs of stocks where one closed strictly lower than another on
	// 3/1/85: hp(50) < ibm(140) < sun(201).
	ans := q(t, e, "?.euter.r(.date=3/1/85,.stkCode=A,.clsPrice=PA), .euter.r(.date=3/1/85,.stkCode=B,.clsPrice=PB), PA < PB")
	if ans.Len() != 3 {
		t.Errorf("rows = %d, want 3:\n%s", ans.Len(), ans)
	}
	if !ans.Contains(row("A", "hp", "B", "sun", "PA", 50, "PB", 201)) {
		t.Errorf("missing hp<sun:\n%s", ans)
	}
}

func TestNegatedConjunctAtTopLevel(t *testing.T) {
	e := newStockEngine(t)
	ans := q(t, e, "?~.euter.r(.clsPrice>300)")
	if !ans.Bool() {
		t.Error("no stock closed above 300; negation should hold")
	}
	ans = q(t, e, "?~.euter.r(.clsPrice>200)")
	if ans.Bool() {
		t.Error("sun closed above 200; negation should fail")
	}
}

func TestNestedSetOfSets(t *testing.T) {
	e := NewEngine()
	db := object.NewTuple()
	inner1 := object.SetOf(object.TupleOf("v", 1))
	inner2 := object.SetOf(object.TupleOf("v", 2))
	db.Put("groups", object.SetOf(
		object.TupleOf("g", 1, "members", inner1),
		object.TupleOf("g", 2, "members", inner2),
	))
	e.Base().Put("d", db)
	e.Invalidate()
	ans := q(t, e, "?.d.groups(.g=G, .members(.v=2))")
	if ans.Len() != 1 || !ans.Contains(row("G", 2)) {
		t.Errorf("nested set query:\n%s", ans)
	}
}

func TestArithmeticInQuery(t *testing.T) {
	e := newStockEngine(t)
	// Stocks whose 3/2 price is exactly 3/1 price + 5 (hp: 50 -> 55).
	ans := q(t, e, "?.euter.r(.date=3/1/85,.stkCode=S,.clsPrice=P1), .euter.r(.date=3/2/85,.stkCode=S,.clsPrice=P2), P2 = P1+5")
	if ans.Len() != 1 || !ans.Contains(row("S", "hp", "P1", 50, "P2", 55)) {
		t.Errorf("arithmetic join:\n%s", ans)
	}
}

func TestVariableFreeBooleanAnswerString(t *testing.T) {
	e := newStockEngine(t)
	ans := q(t, e, "?.euter.r(.stkCode=hp)")
	if got := ans.String(); got != "true" {
		t.Errorf("String = %q", got)
	}
	ans = q(t, e, "?.euter.r(.stkCode=nosuch)")
	if got := ans.String(); got != "false" {
		t.Errorf("String = %q", got)
	}
}

func TestAnswerTableString(t *testing.T) {
	e := newStockEngine(t)
	ans := q(t, e, "?.ource.Y")
	want := "Y\nhp\nibm\nsun"
	if got := ans.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestQueryRejectsUpdateRequest(t *testing.T) {
	e := newStockEngine(t)
	query, err := parser.ParseQuery("?.euter.r+(.stkCode=x)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(query); err == nil {
		t.Error("Query should reject update requests")
	}
}

func TestAnswerColumnAndSort(t *testing.T) {
	e := newStockEngine(t)
	ans := q(t, e, "?.ource.Y")
	ans.Sort()
	col := ans.Column("Y")
	if len(col) != 3 || !col[0].Equal(object.Str("hp")) {
		t.Errorf("column = %v", col)
	}
}

func TestIndexAndScanAgree(t *testing.T) {
	for _, useIndex := range []bool{true, false} {
		opts := DefaultOptions()
		opts.UseIndex = useIndex
		e := NewEngineWithOptions(opts)
		buildStockBase(t, e)
		// Grow euter.r beyond the index threshold.
		rel := relation(t, e, "euter", "r")
		for i := 0; i < 100; i++ {
			rel.Add(object.TupleOf("date", object.NewDate(86, 1, 1+i%28), "stkCode", "bulk", "clsPrice", i))
		}
		e.Invalidate()
		ans := q(t, e, "?.euter.r(.stkCode=hp, .clsPrice=P, .date=D)")
		if ans.Len() != 3 {
			t.Errorf("useIndex=%v: rows = %d, want 3", useIndex, ans.Len())
		}
		stats := e.Stats()
		if useIndex && stats.IndexProbes == 0 {
			t.Error("expected index probes with UseIndex=true")
		}
		if !useIndex && stats.IndexProbes != 0 {
			t.Error("unexpected index probes with UseIndex=false")
		}
	}
}
