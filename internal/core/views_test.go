package core

import (
	"errors"
	"strings"
	"testing"

	"idl/internal/object"
	"idl/internal/parser"
)

// unifiedViewRules are the paper's §6 rules defining dbI.p over all three
// schemas.
var unifiedViewRules = []string{
	".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)",
	".dbI.p+(.date=D, .stk=S, .price=P) <- .chwab.r(.date=D, .S=P), S != date",
	".dbI.p+(.date=D, .stk=S, .price=P) <- .ource.S(.date=D, .clsPrice=P)",
}

// customizedViewRules re-render the unified view in each user's native
// schema (integration transparency, Figure 1). dbO's rule is a
// higher-order view: one relation per stock, data dependent.
var customizedViewRules = []string{
	".dbE.r+(.date=D, .stkCode=S, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
	".dbC.r+(.date=D, .S=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
	".dbO.S+(.date=D, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
}

func addRules(t testing.TB, e *Engine, rules []string) {
	t.Helper()
	for _, r := range rules {
		mustRule(t, e, r)
	}
}

func TestUnifiedViewOverThreeSchemas(t *testing.T) {
	e := newStockEngine(t)
	addRules(t, e, unifiedViewRules)
	// All three databases hold the same nine facts, so p has 9 tuples.
	ans := q(t, e, "?.dbI.p(.date=D, .stk=S, .price=P)")
	if ans.Len() != 9 {
		t.Fatalf("unified view rows = %d, want 9:\n%s", ans.Len(), ans)
	}
	if !ans.Contains(row("D", object.NewDate(85, 3, 3), "S", "hp", "P", 62)) {
		t.Errorf("missing hp 3/3/85:\n%s", ans)
	}
	// Database transparency: the same query once, against the view.
	above := q(t, e, "?.dbI.p(.stk=S, .price>200)")
	if above.Len() != 1 || !above.Contains(row("S", "sun")) {
		t.Errorf("above-200 via unified view:\n%s", above)
	}
}

func TestUnifiedViewUnionsDiscrepantFacts(t *testing.T) {
	e := newStockEngine(t)
	addRules(t, e, unifiedViewRules)
	// Introduce a price discrepancy in chwab only: "if there is any value
	// discrepancy … both prices are in the user's view" (§6).
	exec(t, e, "?.chwab.r(.date=3/1/85,.hp=C), .chwab.r-(.date=3/1/85,.hp=C), .chwab.r+(.date=3/1/85,.hp=51)")
	ans := q(t, e, "?.dbI.p(.stk=hp, .date=3/1/85, .price=P)")
	if ans.Len() != 2 {
		t.Fatalf("rows = %d, want both 50 and 51:\n%s", ans.Len(), ans)
	}
	if !ans.Contains(row("P", 50)) || !ans.Contains(row("P", 51)) {
		t.Errorf("want both prices:\n%s", ans)
	}
}

func TestPnewReconciliation(t *testing.T) {
	e := newStockEngine(t)
	addRules(t, e, unifiedViewRules)
	// pnew resolves discrepancies by keeping the highest quote (the
	// schema administrator's choice; §6 leaves the policy open). It is
	// definable inside IDL with stratified negation.
	mustRule(t, e, ".dbI.pnew+(.date=D,.stk=S,.price=P) <- .dbI.p(.date=D,.stk=S,.price=P), .dbI.p~(.date=D,.stk=S,.price>P)")
	exec(t, e, "?.chwab.r(.date=3/1/85,.hp=C), .chwab.r-(.date=3/1/85,.hp=C), .chwab.r+(.date=3/1/85,.hp=51)")
	ans := q(t, e, "?.dbI.pnew(.stk=hp, .date=3/1/85, .price=P)")
	if ans.Len() != 1 || !ans.Contains(row("P", 51)) {
		t.Errorf("pnew should keep 51 only:\n%s", ans)
	}
	// Undisputed facts pass through.
	ans = q(t, e, "?.dbI.pnew(.stk=ibm, .date=3/2/85, .price=P)")
	if ans.Len() != 1 || !ans.Contains(row("P", 155)) {
		t.Errorf("pnew ibm:\n%s", ans)
	}
}

func TestCustomizedViewsRoundTrip(t *testing.T) {
	e := newStockEngine(t)
	addRules(t, e, unifiedViewRules)
	addRules(t, e, customizedViewRules)

	// dbE.r must equal euter.r exactly (Figure 1 round trip).
	ansE := q(t, e, "?.dbE.r(.date=D,.stkCode=S,.clsPrice=P)")
	if ansE.Len() != 9 {
		t.Errorf("dbE.r rows = %d, want 9", ansE.Len())
	}
	for _, d := range fixDates {
		for _, s := range fixStocks {
			if !ansE.Contains(row("D", d, "S", s, "P", priceOf(s, d))) {
				t.Errorf("dbE missing (%s,%s)", d, s)
			}
		}
	}

	// dbC.r: one tuple per date with one attribute per stock.
	ansC := q(t, e, "?.dbC.r(.date=3/2/85, .hp=HP, .ibm=IBM, .sun=SUN)")
	if ansC.Len() != 1 || !ansC.Contains(row("HP", 55, "IBM", 155, "SUN", 210)) {
		t.Errorf("dbC row:\n%s", ansC)
	}

	// dbO: data-dependent relation set — exactly one relation per stock.
	ansO := q(t, e, "?.dbO.Y")
	if ansO.Len() != 3 {
		t.Fatalf("dbO relations = %d, want 3:\n%s", ansO.Len(), ansO)
	}
	for _, s := range fixStocks {
		if !ansO.Contains(row("Y", s)) {
			t.Errorf("dbO missing relation %s", s)
		}
	}
	ans := q(t, e, "?.dbO.hp(.date=3/3/85, .clsPrice=P)")
	if ans.Len() != 1 || !ans.Contains(row("P", 62)) {
		t.Errorf("dbO.hp:\n%s", ans)
	}
}

func priceOf(s string, d object.Date) int {
	for i, fd := range fixDates {
		if fd == d {
			return fixPrices[s][i]
		}
	}
	return -1
}

func TestHigherOrderViewGrowsWithData(t *testing.T) {
	e := newStockEngine(t)
	addRules(t, e, unifiedViewRules)
	addRules(t, e, customizedViewRules)
	if ans := q(t, e, "?.dbO.Y"); ans.Len() != 3 {
		t.Fatalf("dbO starts with %d relations", ans.Len())
	}
	// Adding a stock to ANY base database grows the dbO schema: the
	// number of relations is data dependent (§6).
	exec(t, e, "?.euter.r+(.date=3/1/85,.stkCode=dec,.clsPrice=80)")
	ans := q(t, e, "?.dbO.Y")
	if ans.Len() != 4 || !ans.Contains(row("Y", "dec")) {
		t.Errorf("dbO should now have dec:\n%s", ans)
	}
	ans = q(t, e, "?.dbO.dec(.date=3/1/85,.clsPrice=P)")
	if !ans.Contains(row("P", 80)) {
		t.Errorf("dbO.dec content:\n%s", ans)
	}
	// And dbC tuples gained an attribute.
	ans = q(t, e, "?.dbC.r(.date=3/1/85, .dec=P)")
	if !ans.Contains(row("P", 80)) {
		t.Errorf("dbC dec attribute:\n%s", ans)
	}
}

func TestNameMappings(t *testing.T) {
	// §6's last example: stock codes differ across databases; binary
	// mapping relations mapCE/mapOE translate chwab/ource names to euter
	// codes.
	e := NewEngine()
	u := e.Base()
	// euter uses full codes; chwab/ource use short names.
	euter := object.NewTuple()
	euter.Put("r", object.SetOf(
		object.TupleOf("date", object.NewDate(85, 3, 1), "stkCode", "hewlettPackard", "clsPrice", 50),
	))
	u.Put("euter", euter)
	chwab := object.NewTuple()
	chwab.Put("r", object.SetOf(
		object.TupleOf("date", object.NewDate(85, 3, 1), "hp", 50),
	))
	u.Put("chwab", chwab)
	ource := object.NewTuple()
	ource.Put("hpq", object.SetOf(
		object.TupleOf("date", object.NewDate(85, 3, 1), "clsPrice", 50),
	))
	u.Put("ource", ource)
	// Mapping relations live in a (base) mapping database.
	maps := object.NewTuple()
	maps.Put("mapCE", object.SetOf(object.TupleOf("from", "hp", "to", "hewlettPackard")))
	maps.Put("mapOE", object.SetOf(object.TupleOf("from", "hpq", "to", "hewlettPackard")))
	u.Put("maps", maps)
	e.Invalidate()

	mustRule(t, e, ".dbI.p+(.date=D,.stk=S,.price=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P)")
	mustRule(t, e, ".dbI.p+(.date=D,.stk=S,.price=P) <- .chwab.r(.date=D,.SC=P), .maps.mapCE(.from=SC,.to=S)")
	mustRule(t, e, ".dbI.p+(.date=D,.stk=S,.price=P) <- .ource.SO(.date=D,.clsPrice=P), .maps.mapOE(.from=SO,.to=S)")

	ans := q(t, e, "?.dbI.p(.stk=S,.price=P)")
	if ans.Len() != 1 || !ans.Contains(row("S", "hewlettPackard", "P", 50)) {
		t.Errorf("name-mapped unified view:\n%s", ans)
	}
}

func TestViewOverView(t *testing.T) {
	e := newStockEngine(t)
	addRules(t, e, unifiedViewRules)
	mustRule(t, e, ".dbX.expensive+(.stk=S) <- .dbI.p(.stk=S, .price>200)")
	ans := q(t, e, "?.dbX.expensive(.stk=S)")
	if ans.Len() != 1 || !ans.Contains(row("S", "sun")) {
		t.Errorf("view over view:\n%s", ans)
	}
}

func TestPositiveRecursionFixpoint(t *testing.T) {
	// Transitive closure — positive recursion must reach a fixpoint.
	e := NewEngine()
	g := object.NewTuple()
	g.Put("edge", object.SetOf(
		object.TupleOf("src", 1, "dst", 2),
		object.TupleOf("src", 2, "dst", 3),
		object.TupleOf("src", 3, "dst", 4),
	))
	e.Base().Put("g", g)
	e.Invalidate()
	mustRule(t, e, ".v.path+(.src=X,.dst=Y) <- .g.edge(.src=X,.dst=Y)")
	mustRule(t, e, ".v.path+(.src=X,.dst=Z) <- .v.path(.src=X,.dst=Y), .g.edge(.src=Y,.dst=Z)")
	ans := q(t, e, "?.v.path(.src=1,.dst=D)")
	if ans.Len() != 3 {
		t.Fatalf("paths from 1 = %d, want 3:\n%s", ans.Len(), ans)
	}
	for _, d := range []int{2, 3, 4} {
		if !ans.Contains(row("D", d)) {
			t.Errorf("missing path 1->%d", d)
		}
	}
}

func TestStratifiedNegationAcrossViews(t *testing.T) {
	e := newStockEngine(t)
	addRules(t, e, unifiedViewRules)
	// Stocks quoted in euter but not above 200 anywhere (negation over a
	// derived view → must be in a higher stratum).
	mustRule(t, e, ".dbX.cheap+(.stk=S) <- .euter.r(.stkCode=S), .dbI.p~(.stk=S, .price>200)")
	ans := q(t, e, "?.dbX.cheap(.stk=S)")
	if ans.Len() != 2 || !ans.Contains(row("S", "hp")) || !ans.Contains(row("S", "ibm")) {
		t.Errorf("cheap stocks:\n%s", ans)
	}
}

func TestNotStratifiedRejected(t *testing.T) {
	e := NewEngine()
	e.Base().Put("b", object.NewTuple())
	r1, err := parser.ParseRule(".v.p+(.x=X) <- .b.s(.x=X), .v.q~(.x=X)")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := parser.ParseRule(".v.q+(.x=X) <- .v.p(.x=X)")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(r1); err != nil {
		t.Fatal(err)
	}
	err = e.AddRule(r2)
	var ns *NotStratifiedError
	if !errors.As(err, &ns) {
		t.Fatalf("want NotStratifiedError, got %v", err)
	}
	// The failed rule must not have been kept.
	if len(e.Rules()) != 1 {
		t.Errorf("rules = %d, want 1", len(e.Rules()))
	}
}

func TestRuleValidation(t *testing.T) {
	e := NewEngine()
	bad := []string{
		".v.p+(.x=X) <- .b.s(.y=Y)",     // head var not in body
		".v.p+(.x>X) <- .b.s(.x=X)",     // non-simple head
		".v.p-(.x=X) <- .b.s(.x=X)",     // minus head
		".V.p+(.x=X) <- .b.s(.x=X, .V)", // variable database name in head
		".v.p+(.x=X) <- .b.s-(.x=X)",    // update in body
		".v.p~(.x=X) <- .b.s(.x=X)",     // negated head
	}
	for _, src := range bad {
		r, err := parser.ParseRule(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		if err := e.AddRule(r); err == nil {
			t.Errorf("AddRule(%q) should fail", src)
		}
	}
}

func TestViewsRefreshAfterBaseUpdate(t *testing.T) {
	e := newStockEngine(t)
	addRules(t, e, unifiedViewRules)
	if ans := q(t, e, "?.dbI.p(.stk=hp)"); !ans.Bool() {
		t.Fatal("view should see hp")
	}
	exec(t, e, "?.euter.r-(.stkCode=hp), .chwab.r(-.hp), .ource-.hp")
	ans := q(t, e, "?.dbI.p(.stk=hp)")
	if ans.Bool() {
		t.Error("hp removed from all bases; view must not show it")
	}
}

func TestDirectUpdateOfViewRejectedWithoutProgram(t *testing.T) {
	e := newStockEngine(t)
	addRules(t, e, unifiedViewRules)
	err := execErr(t, e, "?.dbI.p+(.date=3/9/85,.stk=hp,.price=99)")
	if !strings.Contains(err.Error(), "not updatable") {
		t.Errorf("error = %v", err)
	}
}

func TestSemiNaiveMatchesNaive(t *testing.T) {
	for _, semi := range []bool{true, false} {
		opts := DefaultOptions()
		opts.SemiNaive = semi
		e := NewEngineWithOptions(opts)
		buildStockBase(t, e)
		addRules(t, e, unifiedViewRules)
		addRules(t, e, customizedViewRules)
		ans := q(t, e, "?.dbO.Y")
		if ans.Len() != 3 {
			t.Errorf("semiNaive=%v: dbO relations = %d", semi, ans.Len())
		}
		ans = q(t, e, "?.dbE.r(.stkCode=S,.clsPrice>200)")
		if ans.Len() != 1 {
			t.Errorf("semiNaive=%v: rows = %d", semi, ans.Len())
		}
	}
}

func TestMaterializationStatsExposed(t *testing.T) {
	e := newStockEngine(t)
	addRules(t, e, unifiedViewRules)
	if _, err := e.EffectiveUniverse(); err != nil {
		t.Fatal(err)
	}
	st := e.LastRecompute()
	if st.RuleRuns == 0 || st.FactsDerived != 9 {
		t.Errorf("recompute stats = %+v", st)
	}
}

func TestMaxIterationsGuard(t *testing.T) {
	// A rule set that grows forever must hit the iteration guard, not
	// hang: counting upward via arithmetic in the body.
	opts := DefaultOptions()
	opts.MaxIterations = 5
	e := NewEngineWithOptions(opts)
	g := object.NewTuple()
	g.Put("seed", object.SetOf(object.TupleOf("n", 1)))
	e.Base().Put("g", g)
	e.Invalidate()
	mustRule(t, e, ".v.nums+(.n=N) <- .g.seed(.n=N)")
	r, err := parser.ParseRule(".v.nums+(.n=M) <- .v.nums(.n=N), M = N+1")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(r); err != nil {
		t.Fatal(err)
	}
	_, err = e.EffectiveUniverse()
	if err == nil || !strings.Contains(err.Error(), "iterations") {
		t.Errorf("want iteration-guard error, got %v", err)
	}
}

func TestDerivedOverlayDoesNotPolluteBase(t *testing.T) {
	e := newStockEngine(t)
	addRules(t, e, unifiedViewRules)
	if _, err := e.EffectiveUniverse(); err != nil {
		t.Fatal(err)
	}
	if e.Base().Has("dbI") {
		t.Error("derived database leaked into the base universe")
	}
}

func TestRuleHeadIntoBaseDatabaseMerges(t *testing.T) {
	// A rule may target an existing base database; queries see the union.
	e := newStockEngine(t)
	mustRule(t, e, ".euter.r2+(.stkCode=S) <- .euter.r(.stkCode=S, .clsPrice>200)")
	ans := q(t, e, "?.euter.Y")
	if ans.Len() != 2 || !ans.Contains(row("Y", "r2")) {
		t.Errorf("euter relations:\n%s", ans)
	}
	if e.Base().Has("dbI") {
		t.Error("unexpected")
	}
	// Base euter.r unchanged on disk.
	if relation(t, e, "euter", "r").Len() != 9 {
		t.Error("base relation mutated by derivation")
	}
}
