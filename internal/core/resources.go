package core

// Resources is the per-operation resource-accounting record: what one
// query, update request, or program call actually consumed, as opposed
// to the engine-lifetime totals in Stats. The evaluator fills it from
// the operation's private Stats delta (so parallel evaluation reports
// byte-identical numbers at every worker count, see DESIGN.md §10), and
// the entry points add the fixpoint rounds any view rematerialization
// the operation triggered cost. The facade layers federation fetches
// and WAL bytes on top (idl.DB), and the insights store aggregates the
// records per statement digest (DESIGN.md §15).
type Resources struct {
	RowsScanned    uint64 `json:"rows_scanned"`    // set elements tested by scans
	TuplesEmitted  uint64 `json:"tuples_emitted"`  // answer rows (queries) or bindings (updates)
	FixpointRounds uint64 `json:"fixpoint_rounds"` // view-materialization iterations triggered
	IndexBuilds    uint64 `json:"index_builds"`    // attribute indexes (re)built
	IndexProbes    uint64 `json:"index_probes"`    // index-answered set expressions
	AttrEnums      uint64 `json:"attr_enums"`      // higher-order attribute enumerations
}

// resourcesFrom projects one operation's evaluator counters into a
// resource record; emitted is the operation's output cardinality.
func resourcesFrom(local Stats, emitted int) Resources {
	return Resources{
		RowsScanned:   local.ElementsScanned,
		TuplesEmitted: uint64(emitted),
		IndexBuilds:   local.IndexBuilds,
		IndexProbes:   local.IndexProbes,
		AttrEnums:     local.AttrEnums,
	}
}
