package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"idl/internal/ast"
	"idl/internal/object"
	"idl/internal/parser"
)

// renderAnswer flattens an answer — variables, then every row in raw
// order — into one byte-comparable string.
func renderAnswer(ans *Answer) string {
	var b strings.Builder
	b.WriteString(strings.Join(ans.Vars, ","))
	for _, r := range ans.Rows {
		b.WriteString("\n")
		for _, v := range ans.Vars {
			fmt.Fprintf(&b, "%s=%v;", v, r[v])
		}
	}
	return b.String()
}

// pinnedAnswer evaluates src against one pinned snapshot version.
func pinnedAnswer(t testing.TB, e *Engine, v *version, src string) string {
	t.Helper()
	query, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	ctx := context.Background()
	ans, err := e.runSnapshot(cancellable(ctx), ctx, query, v, nil, nil)
	if err != nil {
		t.Fatalf("snapshot query %q: %v", src, err)
	}
	return renderAnswer(ans)
}

// TestMVCCRepeatableRead is the snapshot-isolation oracle: a reader that
// pins a version sees byte-identical answers no matter how many
// mutations, DDL statements, or rule registrations commit after the pin.
func TestMVCCRepeatableRead(t *testing.T) {
	e := newStockEngine(t)
	queries := []string{
		"?.euter.r(.stkCode=S, .clsPrice>200)",
		"?.euter.r(.date=D, .stkCode=hp, .clsPrice=P)",
		"?.chwab.r(.date=D, .hp=P)",
		"?.ource.S(.clsPrice>200)",
	}
	// A first read publishes the head; then pin it.
	q(t, e, queries[0])
	v := e.pinHead()
	if v == nil {
		t.Fatal("no head published after a query")
	}
	defer v.unpin()
	want := make([]string, len(queries))
	for i, src := range queries {
		want[i] = pinnedAnswer(t, e, v, src)
	}

	// Churn everything the snapshot must be isolated from: element
	// updates on every schema, new relations, and rule registrations.
	for i := 0; i < 8; i++ {
		exec(t, e, fmt.Sprintf("?.euter.r+(.date=3/%d/85,.stkCode=w%d,.clsPrice=%d)", 10+i, i, 300+i))
		exec(t, e, "?.chwab.r(.date=3/1/85,.hp-=1)")
		exec(t, e, fmt.Sprintf("?.ource.hp+(.date=3/%d/85,.clsPrice=%d)", 10+i, 400+i))
		mustRule(t, e, fmt.Sprintf(".dbI.v%d(.stk=S) <- .euter.r(.stkCode=S)", i))
		// Interleave reads so fresh versions are frozen and the retention
		// window slides past the pinned snapshot.
		q(t, e, queries[0])
		for qi, src := range queries {
			if got := pinnedAnswer(t, e, v, src); got != want[qi] {
				t.Fatalf("round %d: pinned answer for %q changed:\n got %s\nwant %s", i, src, got, want[qi])
			}
		}
	}

	st := e.MVCCStats()
	if st.PinnedReaders == 0 || len(st.PinnedEpochs) == 0 {
		t.Fatalf("pinned snapshot invisible in stats: %+v", st)
	}
	if st.PinnedEpochs[0] != v.epoch {
		t.Fatalf("pinned epoch %d, stats report %v", v.epoch, st.PinnedEpochs)
	}
	if st.Collected == 0 {
		t.Fatalf("retention never collected despite %d freezes: %+v", st.Freezes, st)
	}
	if st.COWClones == 0 {
		t.Fatal("writers never copy-on-wrote a published set")
	}
}

// TestMVCCRetentionBound pins the GC policy: unpinned versions beyond
// MaxRevisions are collected at each freeze, and the head plus pinned
// versions always survive.
func TestMVCCRetentionBound(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxRevisions = 2
	e := NewEngineWithOptions(opts)
	buildStockBase(t, e)
	for i := 0; i < 10; i++ {
		exec(t, e, fmt.Sprintf("?.euter.r+(.date=3/%d/85,.stkCode=g%d,.clsPrice=1)", 1+i%28, i))
		q(t, e, "?.euter.r(.clsPrice>200)") // freezes a fresh version
	}
	st := e.MVCCStats()
	if st.LiveVersions > 2 {
		t.Fatalf("%d live versions exceed MaxRevisions=2: %+v", st.LiveVersions, st)
	}
	if !st.HeadPublished || st.HeadEpoch == 0 {
		t.Fatalf("no published head after reads: %+v", st)
	}
	if st.Collected < 5 {
		t.Fatalf("collected %d versions across 10 freeze cycles: %+v", st.Collected, st)
	}
	if st.RetainedBytes <= 0 {
		t.Fatalf("retained-bytes estimate empty: %+v", st)
	}
}

// TestMVCCSerialReadsMode: under Options.SerialReads every query takes
// the locked path and no snapshot is ever published.
func TestMVCCSerialReadsMode(t *testing.T) {
	opts := DefaultOptions()
	opts.SerialReads = true
	e := NewEngineWithOptions(opts)
	buildStockBase(t, e)
	for i := 0; i < 3; i++ {
		q(t, e, "?.euter.r(.stkCode=S, .clsPrice>200)")
	}
	if st := e.MVCCStats(); st.HeadPublished || st.LiveVersions != 0 || st.Freezes != 0 {
		t.Fatalf("SerialReads engine published snapshots: %+v", st)
	}
}

// TestMVCCConcurrentChurn is the -race stress: unsynchronized readers
// against a writer flipping one tuple in and out, a DDL/member-install
// churner, and a rule registrar. Every reader answer must equal one of
// the two serializable states, and the stable part of the fixture must
// read back byte-identically throughout.
func TestMVCCConcurrentChurn(t *testing.T) {
	e := newStockEngine(t)

	churnQ := "?.euter.r(.stkCode=churn, .clsPrice=P)"
	stableQ := "?.euter.r(.stkCode=S, .clsPrice>200)"
	absent := renderAnswer(q(t, e, churnQ))
	stable := renderAnswer(q(t, e, stableQ))
	exec(t, e, "?.euter.r+(.date=3/9/85,.stkCode=churn,.clsPrice=5)")
	present := renderAnswer(q(t, e, churnQ))
	exec(t, e, "?.euter.r-(.stkCode=churn)")
	if absent == present {
		t.Fatal("oracle states indistinguishable")
	}

	parse := func(src string) *ast.Query {
		query, err := parser.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return query
	}
	churnAST, stableAST := parse(churnQ), parse(stableQ)

	const writerRounds = 120
	done := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Writer: flip the churn tuple in and out.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		ins := parse("?.euter.r+(.date=3/9/85,.stkCode=churn,.clsPrice=5)")
		del := parse("?.euter.r-(.stkCode=churn)")
		for i := 0; i < writerRounds; i++ {
			if _, err := e.Execute(ins); err != nil {
				errs <- fmt.Errorf("writer insert: %w", err)
				return
			}
			if _, err := e.Execute(del); err != nil {
				errs <- fmt.Errorf("writer delete: %w", err)
				return
			}
		}
	}()

	// DDL / member-snapshot churner: install and remove a scratch
	// database through the same UpdateBase path Sync uses.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-done:
				return
			default:
			}
			i++
			rel := object.NewSet()
			rel.Add(object.TupleOf("k", i))
			scratch := object.NewTuple()
			scratch.Put("t", rel)
			e.UpdateBase(func(base *object.Tuple) bool {
				base.Put("scratch", scratch)
				return true
			})
			e.UpdateBase(func(base *object.Tuple) bool {
				return base.Delete("scratch")
			})
		}
	}()

	// Rule registrar: epoch churn from registration.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			r, err := parser.ParseRule(fmt.Sprintf(".dbI.churn%d(.stk=S) <- .euter.r(.stkCode=S)", i))
			if err != nil {
				errs <- fmt.Errorf("parse rule: %w", err)
				return
			}
			if err := e.AddRule(r); err != nil {
				errs <- fmt.Errorf("add rule: %w", err)
				return
			}
		}
	}()

	// Readers: every answer must be a serializable state.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				ans, err := e.Query(churnAST)
				if err != nil {
					errs <- fmt.Errorf("reader churn query: %w", err)
					return
				}
				if got := renderAnswer(ans); got != absent && got != present {
					errs <- fmt.Errorf("reader saw a non-serializable state:\n got %s", got)
					return
				}
				ans, err = e.Query(stableAST)
				if err != nil {
					errs <- fmt.Errorf("reader stable query: %w", err)
					return
				}
				if got := renderAnswer(ans); got != stable {
					errs <- fmt.Errorf("stable rows changed under churn:\n got %s\nwant %s", got, stable)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := e.MVCCStats(); st.PinnedReaders != 0 {
		t.Fatalf("reader pins leaked: %+v", st)
	}
}
