package core

import (
	"fmt"
	"sort"

	"idl/internal/ast"
	"idl/internal/object"
)

// A compiledClause is one clause of an update program (§7.1): a head that
// names the program and declares parameters, and a body of query/update
// expressions executed left → right.
type compiledClause struct {
	src       *ast.Clause
	db        string   // head level-1 name (namespace, e.g. dbU)
	name      string   // head level-2 name for callable programs
	relTerm   ast.Term // head level-2 term for view updaters (const or var)
	sign      ast.Sign // SignNone: callable program; +/-: view updater
	params    *ast.TupleExpr
	paramVars []string // head parameter variables in declaration order
	required  []string // parameters that must be bound at call time
	// consumed is the body's consumed-variable analysis, computed once at
	// registration and seeded into every invocation's evaluator — the
	// clause-body half of compile-once-execute-many (updates run under
	// the engine mutex, so invocations may extend the shared map).
	consumed map[*ast.TupleExpr][][]string
}

// Program is a named update program: all clauses registered under one
// (db, name), executed in registration order on invocation.
type Program struct {
	DB      string
	Name    string
	Clauses []*compiledClause
}

// Required returns the union of parameters any clause requires bound (the
// program's binding signature, §7.1).
func (p *Program) Required() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range p.Clauses {
		for _, v := range c.required {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Params returns the union of declared parameter names across clauses.
func (p *Program) Params() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range p.Clauses {
		for _, pv := range c.paramVars {
			if !seen[pv] {
				seen[pv] = true
				out = append(out, pv)
			}
		}
	}
	sort.Strings(out)
	return out
}

// ParamAttrs maps each parameter variable to the attribute name that
// carries it at call sites — S → "stk" for `.dbU.insStk(.stk=S, …)` —
// so an API-level Call can be rendered back into IDL call syntax.
// Clauses that disagree on a variable's attribute keep the first
// mapping seen.
func (p *Program) ParamAttrs() map[string]string {
	out := map[string]string{}
	for _, c := range p.Clauses {
		if c.params == nil {
			continue
		}
		for _, conj := range c.params.Conjuncts {
			a, ok := conj.(*ast.AttrExpr)
			if !ok || a.Expr == nil {
				continue
			}
			k, ok := a.Name.(ast.Const)
			if !ok {
				continue
			}
			attr, ok := k.Value.(object.Str)
			if !ok {
				continue
			}
			for _, v := range ast.Vars(a.Expr) {
				if _, seen := out[v]; !seen {
					out[v] = string(attr)
				}
			}
		}
	}
	return out
}

// programKey identifies a callable program.
type programKey struct {
	db   string
	name string
}

// programRegistry stores callable programs and view updaters.
type programRegistry struct {
	programs map[programKey]*Program
	order    []programKey
	// View updaters, in registration order; matched by (db, rel, sign).
	viewUpdaters []*compiledClause
	// srcs is every registered clause — callable and view updater — in
	// global registration order, for checkpointing and replay.
	srcs []*ast.Clause
}

func newProgramRegistry() *programRegistry {
	return &programRegistry{programs: make(map[programKey]*Program)}
}

// compileClause validates and classifies a clause head:
//
//	.dbU.delStk(.stk=S, .date=D) -> …   callable program (no sign)
//	.dbX.p+(exp) -> …                   view updater for inserts into p
//	.dbO.S-(exp) -> …                   view updater for deletes, any rel
func compileClause(c *ast.Clause) (*compiledClause, error) {
	if c.Head == nil || len(c.Head.Conjuncts) != 1 {
		return nil, fmt.Errorf("core: clause head must be a single path expression")
	}
	dbAttr, ok := c.Head.Conjuncts[0].(*ast.AttrExpr)
	if !ok || dbAttr.Sign != ast.SignNone {
		return nil, fmt.Errorf("core: clause head must start with an unsigned database attribute")
	}
	dbConst, ok := dbAttr.Name.(ast.Const)
	if !ok {
		return nil, fmt.Errorf("core: clause head database name must be a constant")
	}
	dbStr, ok := dbConst.Value.(object.Str)
	if !ok {
		return nil, fmt.Errorf("core: clause head database name must be a string")
	}
	inner, ok := dbAttr.Expr.(*ast.TupleExpr)
	if !ok || len(inner.Conjuncts) != 1 {
		return nil, fmt.Errorf("core: clause head must be .db.name(params)")
	}
	nameAttr, ok := inner.Conjuncts[0].(*ast.AttrExpr)
	if !ok || nameAttr.Sign != ast.SignNone {
		return nil, fmt.Errorf("core: clause head must be .db.name(params)")
	}
	cc := &compiledClause{src: c, db: string(dbStr), relTerm: nameAttr.Name}
	// Parameter list and sign.
	switch pexpr := nameAttr.Expr.(type) {
	case *ast.SetExpr:
		cc.sign = pexpr.Sign
		switch inner := pexpr.X.(type) {
		case *ast.TupleExpr:
			cc.params = inner
		case ast.Epsilon:
			cc.params = &ast.TupleExpr{}
		case *ast.AttrExpr:
			cc.params = &ast.TupleExpr{Conjuncts: []ast.Expr{inner}}
		default:
			return nil, fmt.Errorf("core: clause head parameters must be a conjunct list")
		}
	case ast.Epsilon:
		cc.params = &ast.TupleExpr{}
	default:
		return nil, fmt.Errorf("core: clause head must end with a parameter list or nothing")
	}
	if cc.sign == ast.SignNone {
		nameConst, ok := nameAttr.Name.(ast.Const)
		if !ok {
			return nil, fmt.Errorf("core: callable program name must be a constant")
		}
		nameStr, ok := nameConst.Value.(object.Str)
		if !ok {
			return nil, fmt.Errorf("core: callable program name must be a string")
		}
		cc.name = string(nameStr)
	}
	// Parameter variables: every variable in the head.
	cc.paramVars = ast.Vars(c.Head)
	// Validate the parameter list: `.attr = Var` or `.attr = const` only.
	for _, pc := range cc.params.Conjuncts {
		a, ok := pc.(*ast.AttrExpr)
		if !ok || a.Sign != ast.SignNone {
			return nil, fmt.Errorf("core: clause parameter %q must be an unsigned attribute equality", pc.String())
		}
		if at, ok := a.Expr.(*ast.Atomic); !ok || at.Op != ast.OpEQ || at.Sign != ast.SignNone {
			return nil, fmt.Errorf("core: clause parameter %q must be an equality", pc.String())
		}
	}
	cc.required = requiredParams(cc)
	cc.consumed = consumedMap(c.Body)
	return cc, nil
}

// requiredParams computes the clause's binding signature: head parameters
// that feed a `+` expression in the body and are not produced by any
// unsigned query conjunct of the body (§7.1's insStk analysis).
func requiredParams(cc *compiledClause) []string {
	paramSet := map[string]bool{}
	for _, v := range cc.paramVars {
		paramSet[v] = true
	}
	plus := map[string]bool{}
	produced := map[string]bool{}
	for _, conjunct := range cc.src.Body.Conjuncts {
		if !ast.HasUpdate(conjunct) {
			// Query conjunct: its `=Var` atomics and var attribute names
			// can produce bindings.
			ast.Walk(conjunct, func(e ast.Expr) bool {
				switch x := e.(type) {
				case *ast.Atomic:
					if x.Op == ast.OpEQ {
						if v, ok := x.Term.(ast.Var); ok {
							produced[v.Name] = true
						}
					}
				case *ast.AttrExpr:
					if v, ok := x.Name.(ast.Var); ok {
						produced[v.Name] = true
					}
				}
				return true
			})
			continue
		}
		// Update conjunct: collect variables inside plus-signed regions.
		collectPlusVars(conjunct, false, plus)
	}
	var out []string
	for _, v := range cc.paramVars {
		if plus[v] && !produced[v] {
			out = append(out, v)
		}
	}
	return out
}

// collectPlusVars gathers every variable occurring under a plus sign.
func collectPlusVars(e ast.Expr, underPlus bool, out map[string]bool) {
	switch x := e.(type) {
	case *ast.Not:
		collectPlusVars(x.X, underPlus, out)
	case *ast.Atomic:
		if underPlus || x.Sign == ast.SignPlus {
			for _, v := range termVarNames(x.Term) {
				out[v] = true
			}
		}
	case *ast.AttrExpr:
		p := underPlus || x.Sign == ast.SignPlus
		if p {
			for _, v := range termVarNames(x.Name) {
				out[v] = true
			}
		}
		collectPlusVars(x.Expr, p, out)
	case *ast.TupleExpr:
		for _, c := range x.Conjuncts {
			collectPlusVars(c, underPlus, out)
		}
	case *ast.SetExpr:
		collectPlusVars(x.X, underPlus || x.Sign == ast.SignPlus, out)
	}
}

// add registers a compiled clause.
func (r *programRegistry) add(cc *compiledClause) {
	r.srcs = append(r.srcs, cc.src)
	if cc.sign != ast.SignNone {
		r.viewUpdaters = append(r.viewUpdaters, cc)
		return
	}
	key := programKey{db: cc.db, name: cc.name}
	p, ok := r.programs[key]
	if !ok {
		p = &Program{DB: cc.db, Name: cc.name}
		r.programs[key] = p
		r.order = append(r.order, key)
	}
	p.Clauses = append(p.Clauses, cc)
}

// lookup finds a callable program.
func (r *programRegistry) lookup(db, name string) (*Program, bool) {
	p, ok := r.programs[programKey{db: db, name: name}]
	return p, ok
}

// lookupViewUpdater finds the first registered view updater matching a
// (db, rel, sign) target.
func (r *programRegistry) lookupViewUpdater(db, rel string, sign ast.Sign) (*compiledClause, bool) {
	for _, cc := range r.viewUpdaters {
		if cc.db != db || cc.sign != sign {
			continue
		}
		switch t := cc.relTerm.(type) {
		case ast.Const:
			if s, ok := t.Value.(object.Str); ok && string(s) == rel {
				return cc, true
			}
		case ast.Var:
			return cc, true
		}
	}
	return nil, false
}

// All returns the callable programs in registration order.
func (r *programRegistry) All() []*Program {
	out := make([]*Program, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.programs[k])
	}
	return out
}

// ---------------------------------------------------------------------------
// Call-site matching

// bindCallParams matches a ground call parameter list against a clause's
// declared parameters, producing the invocation substitution. Call
// parameters not declared by the clause are an error; declared parameters
// the call omits stay unbound (wildcards).
func bindCallParams(cc *compiledClause, callParams *ast.TupleExpr, callerEnv *Env) (map[string]object.Object, error) {
	declared := map[string]ast.Term{} // attr name -> head term
	for _, pc := range cc.params.Conjuncts {
		a := pc.(*ast.AttrExpr)
		name, err := constName(a.Name)
		if err != nil {
			return nil, err
		}
		declared[name] = a.Expr.(*ast.Atomic).Term
	}
	out := map[string]object.Object{}
	for _, pc := range callParams.Conjuncts {
		a, ok := pc.(*ast.AttrExpr)
		if !ok || a.Sign != ast.SignNone {
			return nil, fmt.Errorf("core: call argument %q must be an unsigned attribute equality", pc.String())
		}
		name, err := constName(a.Name)
		if err != nil {
			return nil, err
		}
		headTerm, ok := declared[name]
		if !ok {
			return nil, fmt.Errorf("core: program has no parameter %q", name)
		}
		at, ok := a.Expr.(*ast.Atomic)
		if !ok || at.Op != ast.OpEQ || at.Sign != ast.SignNone {
			return nil, fmt.Errorf("core: call argument %q must be an equality", pc.String())
		}
		if _, isWild := singleUnboundVar(at.Term, callerEnv); isWild {
			// An unbound caller variable passes the parameter through as
			// omitted — wildcards cascade when programs reuse programs
			// (the paper's delStk-without-date pattern, §7.1).
			continue
		}
		val, err := evalTerm(at.Term, callerEnv)
		if err != nil {
			return nil, fmt.Errorf("core: call argument %q: %w", pc.String(), err)
		}
		switch ht := headTerm.(type) {
		case ast.Var:
			if prev, dup := out[ht.Name]; dup && !prev.Equal(val) {
				return nil, fmt.Errorf("core: conflicting bindings for parameter variable %s", ht.Name)
			}
			out[ht.Name] = val
		case ast.Const:
			if !ht.Value.Equal(val) {
				return nil, fmt.Errorf("core: argument %q does not match head constant %s", name, ht.Value)
			}
		}
	}
	return out, nil
}

func constName(t ast.Term) (string, error) {
	c, ok := t.(ast.Const)
	if !ok {
		return "", fmt.Errorf("core: parameter attribute names must be constants")
	}
	s, ok := c.Value.(object.Str)
	if !ok {
		return "", fmt.Errorf("core: parameter attribute name %s is not a string", c.Value)
	}
	return string(s), nil
}

// matchViewUpdate unifies a view updater's head against a user's update
// expression on the view: `.dbO.S+(.date=D,.clsPrice=P)` against
// `.dbO.hp+(.date=3/3/85,.clsPrice=50)` binds S, D, P. The user's
// expression must be ground under callerEnv; attributes the head does not
// declare are an error; declared head attributes the user omits leave
// their variables unbound.
func matchViewUpdate(cc *compiledClause, rel string, userInner ast.Expr, callerEnv *Env) (map[string]object.Object, error) {
	out := map[string]object.Object{}
	if v, ok := cc.relTerm.(ast.Var); ok {
		out[v.Name] = object.Str(rel)
	}
	var userParams *ast.TupleExpr
	switch inner := userInner.(type) {
	case *ast.TupleExpr:
		userParams = inner
	case ast.Epsilon:
		userParams = &ast.TupleExpr{}
	case *ast.AttrExpr:
		userParams = &ast.TupleExpr{Conjuncts: []ast.Expr{inner}}
	default:
		return nil, fmt.Errorf("core: view update expression must be a conjunct list")
	}
	declared := map[string]ast.Term{}
	for _, pc := range cc.params.Conjuncts {
		a := pc.(*ast.AttrExpr)
		name, err := constName(a.Name)
		if err != nil {
			return nil, err
		}
		declared[name] = a.Expr.(*ast.Atomic).Term
	}
	for _, pc := range userParams.Conjuncts {
		a, ok := pc.(*ast.AttrExpr)
		if !ok || a.Sign != ast.SignNone {
			return nil, fmt.Errorf("core: view update component %q must be an unsigned attribute equality", pc.String())
		}
		name, err := constName(a.Name)
		if err != nil {
			return nil, err
		}
		headTerm, ok := declared[name]
		if !ok {
			return nil, fmt.Errorf("core: view update program for this view declares no attribute %q", name)
		}
		at, ok := a.Expr.(*ast.Atomic)
		if !ok || at.Op != ast.OpEQ || at.Sign != ast.SignNone {
			return nil, fmt.Errorf("core: view update component %q must be an equality", pc.String())
		}
		if _, isWild := singleUnboundVar(at.Term, callerEnv); isWild {
			// Unbound component: pass through as omitted (wildcard
			// cascade; see bindCallParams).
			continue
		}
		val, err := evalTerm(at.Term, callerEnv)
		if err != nil {
			return nil, fmt.Errorf("core: view update component %q: %w", pc.String(), err)
		}
		switch ht := headTerm.(type) {
		case ast.Var:
			if prev, dup := out[ht.Name]; dup && !prev.Equal(val) {
				return nil, fmt.Errorf("core: conflicting bindings for view parameter %s", ht.Name)
			}
			out[ht.Name] = val
		case ast.Const:
			if !ht.Value.Equal(val) {
				return nil, fmt.Errorf("core: view update component %q does not match head constant %s", name, ht.Value)
			}
		}
	}
	return out, nil
}
