package core

import (
	"testing"

	"idl/internal/object"
)

func metaEngine(t *testing.T) *Engine {
	t.Helper()
	opts := DefaultOptions()
	opts.ExposeMeta = true
	e := NewEngineWithOptions(opts)
	buildStockBase(t, e)
	return e
}

func TestMetaDatabasesRelation(t *testing.T) {
	e := metaEngine(t)
	ans := q(t, e, "?.meta.databases(.db=D)")
	// euter, chwab, ource — meta does not list itself.
	if ans.Len() != 3 {
		t.Fatalf("databases = %d:\n%s", ans.Len(), ans)
	}
	if ans.Contains(row("D", "meta")) {
		t.Error("meta must not list itself")
	}
}

func TestMetaRelationsWithCardinality(t *testing.T) {
	e := metaEngine(t)
	ans := q(t, e, "?.meta.relations(.db=euter, .rel=R, .tuples=N)")
	if ans.Len() != 1 || !ans.Contains(row("R", "r", "N", 9)) {
		t.Errorf("euter relations:\n%s", ans)
	}
	// First-order query over metadata: relations with more than 5 tuples.
	ans = q(t, e, "?.meta.relations(.db=D, .rel=R, .tuples>5)")
	if ans.Len() != 1 { // only euter.r (9); chwab.r and ource.* have 3
		t.Errorf("big relations:\n%s", ans)
	}
}

func TestMetaAttributes(t *testing.T) {
	e := metaEngine(t)
	ans := q(t, e, "?.meta.attributes(.db=D, .rel=R, .attr=stkCode)")
	if ans.Len() != 1 || !ans.Contains(row("D", "euter", "R", "r")) {
		t.Errorf("stkCode attribute:\n%s", ans)
	}
}

func TestMetaJoinsWithData(t *testing.T) {
	e := metaEngine(t)
	// Which databases have a relation named after a stock that closed
	// above 200 in euter? (metadata ⋈ data, first order over reified
	// names.)
	ans := q(t, e, "?.euter.r(.stkCode=S, .clsPrice>200), .meta.relations(.db=D, .rel=S)")
	if ans.Len() != 1 || !ans.Contains(row("S", "sun", "D", "ource")) {
		t.Errorf("join:\n%s", ans)
	}
}

func TestMetaReflectsDerivedViews(t *testing.T) {
	e := metaEngine(t)
	addRules(t, e, unifiedViewRules)
	addRules(t, e, customizedViewRules)
	// The higher-order view's data-dependent schema is itself queryable.
	ans := q(t, e, "?.meta.relations(.db=dbO, .rel=R)")
	if ans.Len() != 3 {
		t.Fatalf("dbO meta relations = %d:\n%s", ans.Len(), ans)
	}
	// And it tracks growth.
	exec(t, e, "?.euter.r+(.date=3/1/85,.stkCode=dec,.clsPrice=80)")
	ans = q(t, e, "?.meta.relations(.db=dbO, .rel=R)")
	if ans.Len() != 4 || !ans.Contains(row("R", "dec")) {
		t.Errorf("dbO meta after insert:\n%s", ans)
	}
}

func TestMetaUpdatesAfterMutation(t *testing.T) {
	e := metaEngine(t)
	exec(t, e, "?.ource-.hp")
	ans := q(t, e, "?.meta.relations(.db=ource, .rel=R)")
	if ans.Len() != 2 || ans.Contains(row("R", "hp")) {
		t.Errorf("meta after drop:\n%s", ans)
	}
}

func TestMetaDoesNotLeakIntoBase(t *testing.T) {
	e := metaEngine(t)
	if _, err := e.EffectiveUniverse(); err != nil {
		t.Fatal(err)
	}
	if e.Base().Has(MetaDB) {
		t.Error("meta leaked into the base universe")
	}
}

func TestMetaReservedNameSkipped(t *testing.T) {
	opts := DefaultOptions()
	opts.ExposeMeta = true
	e := NewEngineWithOptions(opts)
	userMeta := object.NewTuple()
	userMeta.Put("own", object.SetOf(object.TupleOf("x", 1)))
	e.Base().Put("meta", userMeta)
	e.Invalidate()
	// The user's database wins; reification is skipped.
	ans := q(t, e, "?.meta.own(.x=X)")
	if !ans.Contains(row("X", 1)) {
		t.Errorf("user meta db should win:\n%s", ans)
	}
	if ans := q(t, e, "?.meta.databases"); ans.Bool() {
		t.Error("reified relations must not appear")
	}
}

func TestMetaOffByDefault(t *testing.T) {
	e := newStockEngine(t)
	if ans := q(t, e, "?.meta.databases(.db=D)"); ans.Bool() {
		t.Error("meta should be absent without ExposeMeta")
	}
}
