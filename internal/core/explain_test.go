package core

import (
	"strings"
	"testing"

	"idl/internal/object"
	"idl/internal/parser"
)

func explain(t *testing.T, e *Engine, src string) *Explain {
	t.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.ExplainQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// bigStockEngine grows euter.r past the index threshold.
func bigStockEngine(t *testing.T) *Engine {
	e := newStockEngine(t)
	rel := relation(t, e, "euter", "r")
	for i := 0; i < 50; i++ {
		rel.Add(object.TupleOf("date", object.NewDate(86, 1, 1+i%28), "stkCode", "bulk", "clsPrice", i))
	}
	e.Invalidate()
	return e
}

func TestExplainIndexVsScan(t *testing.T) {
	e := bigStockEngine(t)
	plan := explain(t, e, "?.euter.r(.stkCode=hp, .clsPrice=P)")
	if len(plan.Steps) != 1 {
		t.Fatalf("steps = %d", len(plan.Steps))
	}
	if plan.Steps[0].Access != "index" {
		t.Errorf("access = %s, want index", plan.Steps[0].Access)
	}
	// Without an equality conjunct: scan.
	plan = explain(t, e, "?.euter.r(.clsPrice=P, .stkCode=S)")
	if plan.Steps[0].Access != "scan" {
		t.Errorf("access = %s, want scan", plan.Steps[0].Access)
	}
	// Index disabled: scan.
	opts := DefaultOptions()
	opts.UseIndex = false
	e2 := NewEngineWithOptions(opts)
	buildStockBase(t, e2)
	plan = explain(t, e2, "?.euter.r(.stkCode=hp)")
	if plan.Steps[0].Access != "scan" {
		t.Errorf("no-index access = %s", plan.Steps[0].Access)
	}
}

func TestExplainDeferredNegation(t *testing.T) {
	e := newStockEngine(t)
	// Negation written first must be scheduled after its binder.
	plan := explain(t, e, "?.euter.r~(.stkCode=hp, .clsPrice>P), .euter.r(.stkCode=hp,.clsPrice=P,.date=D)")
	if len(plan.Steps) != 2 {
		t.Fatalf("steps = %d", len(plan.Steps))
	}
	if plan.Steps[0].Kind != "query" {
		t.Errorf("first scheduled = %s (%s)", plan.Steps[0].Kind, plan.Steps[0].Conjunct)
	}
	if plan.Steps[1].Kind != "negation" || !plan.Steps[1].Deferred {
		t.Errorf("negation step = %+v", plan.Steps[1])
	}
	if !strings.Contains(plan.String(), "deferred") {
		t.Errorf("plan rendering missing deferral:\n%s", plan)
	}
}

func TestExplainConstraintAndBinds(t *testing.T) {
	e := newStockEngine(t)
	plan := explain(t, e, "?.X.Y, X = ource")
	if len(plan.Steps) != 2 {
		t.Fatalf("steps = %d", len(plan.Steps))
	}
	// The constraint is a pure producer of X, so it may schedule first.
	kinds := []string{plan.Steps[0].Kind, plan.Steps[1].Kind}
	found := false
	for _, k := range kinds {
		if k == "constraint" {
			found = true
		}
	}
	if !found {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestExplainRejectsUpdates(t *testing.T) {
	e := newStockEngine(t)
	q, err := parser.ParseQuery("?.euter.r+(.x=1)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExplainQuery(q); err == nil {
		t.Error("explain of update request should fail")
	}
}

func TestExplainHigherOrderScan(t *testing.T) {
	e := newStockEngine(t)
	plan := explain(t, e, "?.X.Y(.stkCode)")
	if plan.Steps[0].Access != "scan" {
		t.Errorf("higher-order access = %s", plan.Steps[0].Access)
	}
	binds := plan.Steps[0].Binds
	if len(binds) != 2 {
		t.Errorf("binds = %v", binds)
	}
}
