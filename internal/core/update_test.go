package core

import (
	"errors"
	"strings"
	"testing"

	"idl/internal/object"
)

// --- Paper §5.2 examples ---

func TestInsertTuple(t *testing.T) {
	e := newStockEngine(t)
	res := exec(t, e, "?.euter.r+(.date=3/4/85,.stkCode=hp,.clsPrice=70)")
	if res.ElemsInserted != 1 {
		t.Fatalf("inserted = %d", res.ElemsInserted)
	}
	ans := q(t, e, "?.euter.r(.date=3/4/85,.stkCode=hp,.clsPrice=P)")
	if !ans.Contains(row("P", 70)) {
		t.Errorf("insert not visible:\n%s", ans)
	}
	// Duplicate insert is a set no-op.
	res = exec(t, e, "?.euter.r+(.date=3/4/85,.stkCode=hp,.clsPrice=70)")
	if res.ElemsInserted != 0 {
		t.Errorf("duplicate insert reported %d insertions", res.ElemsInserted)
	}
}

func TestDeleteTuples(t *testing.T) {
	e := newStockEngine(t)
	res := exec(t, e, "?.euter.r-(.date=3/3/85,.stkCode=hp)")
	if res.ElemsDeleted != 1 {
		t.Fatalf("deleted = %d", res.ElemsDeleted)
	}
	if ans := q(t, e, "?.euter.r(.date=3/3/85,.stkCode=hp)"); ans.Bool() {
		t.Error("tuple should be gone")
	}
	// Other tuples survive.
	if relation(t, e, "euter", "r").Len() != 8 {
		t.Errorf("relation size = %d, want 8", relation(t, e, "euter", "r").Len())
	}
}

func TestQueryDependentDelete(t *testing.T) {
	e := newStockEngine(t)
	// The paper's equivalent formulation: bind C first, then delete.
	res := exec(t, e, "?.euter.r(.date=3/3/85,.stkCode=hp,.clsPrice=C),.euter.r-(.date=3/3/85,.stkCode=hp,.clsPrice=C)")
	if res.ElemsDeleted != 1 || res.Bindings != 1 {
		t.Fatalf("deleted=%d bindings=%d", res.ElemsDeleted, res.Bindings)
	}
	if ans := q(t, e, "?.euter.r(.date=3/3/85,.stkCode=hp)"); ans.Bool() {
		t.Error("tuple should be gone")
	}
}

func TestAtomicMinusNullsValue(t *testing.T) {
	e := newStockEngine(t)
	// `.hp-=C` nulls hp's closing price for 3/3/85; the attribute stays.
	exec(t, e, "?.chwab.r(.date=3/3/85, .hp-=C)")
	// Query expressions on hp for that tuple are no longer satisfied…
	if ans := q(t, e, "?.chwab.r(.date=3/3/85, .hp=P)"); ans.Bool() {
		t.Errorf("null should not match =P:\n%s", ans)
	}
	// …but the attribute still exists (compare with the -.hp form below).
	ans := q(t, e, "?.chwab.r(.date=3/3/85, .A), A = hp")
	if !ans.Bool() {
		t.Error("attribute hp should still exist")
	}
	// Other dates untouched.
	if ans := q(t, e, "?.chwab.r(.date=3/1/85, .hp=50)"); !ans.Bool() {
		t.Error("3/1/85 should be untouched")
	}
}

func TestAttributeDeleteRemovesAttr(t *testing.T) {
	e := newStockEngine(t)
	// `-.hp=C` deletes the attribute itself — only in the matched tuple,
	// which the language permits because sets are heterogeneous (§5.2).
	exec(t, e, "?.chwab.r(.date=3/3/85, -.hp=C)")
	if ans := q(t, e, "?.chwab.r(.date=3/3/85, .A), A = hp"); ans.Bool() {
		t.Error("attribute hp should be deleted from the 3/3/85 tuple")
	}
	if ans := q(t, e, "?.chwab.r(.date=3/1/85, .hp=50)"); !ans.Bool() {
		t.Error("other tuples should keep hp")
	}
}

func TestUpdateAsDeleteThenInsert(t *testing.T) {
	e := newStockEngine(t)
	// Raise hp's 3/3/85 price by 10 (paper's composition example).
	exec(t, e, "?.chwab.r(.date=3/3/85,.hp=C), .chwab.r-(.date=3/3/85,.hp=C), .chwab.r+(.date=3/3/85,.hp=C+10)")
	ans := q(t, e, "?.chwab.r(.date=3/3/85,.hp=P)")
	if !ans.Contains(row("P", 72)) {
		t.Errorf("want 62+10=72:\n%s", ans)
	}
	// The inserted tuple replaces the full row only with the attrs named
	// in the plus expression — it is a *new* tuple (date, hp).
	ans = q(t, e, "?.chwab.r(.date=3/3/85,.ibm=P)")
	if ans.Bool() {
		t.Log("note: delete-then-insert replaced the whole row, as written in the paper")
	}
}

func TestUpdateOrderingMatters(t *testing.T) {
	// Reversing delete/insert yields a different outcome (§5.2: "the
	// ordering of these two update requests is relevant").
	e := newStockEngine(t)
	// Insert first, then delete: the delete removes both the original row
	// and the inserted one if they match the pattern.
	exec(t, e, "?.chwab.r(.date=3/3/85,.hp=C), .chwab.r+(.date=3/3/85,.hp=C+10), .chwab.r-(.date=3/3/85,.hp=C)")
	// The -(…hp=C) with C=62 deletes only the original; (date, hp:72) remains.
	ans := q(t, e, "?.chwab.r(.date=3/3/85,.hp=P)")
	if !ans.Contains(row("P", 72)) || ans.Len() != 1 {
		t.Errorf("rows:\n%s", ans)
	}

	e2 := newStockEngine(t)
	// Delete everything for the date first, then try to insert C+10 — but
	// C was bound before the delete, so this still works; contrast with
	// binding after deletion, which yields no bindings at all.
	res := exec(t, e2, "?.euter.r-(.stkCode=hp), .euter.r(.stkCode=hp,.clsPrice=C), .euter.r+(.stkCode=hp,.clsPrice=C+10)")
	if res.Bindings != 0 {
		t.Errorf("bindings after deleting all hp rows = %d, want 0", res.Bindings)
	}
}

func TestDeleteAttributeFromAllTuples(t *testing.T) {
	e := newStockEngine(t)
	// `.chwab.r(-.hp)` — delete the hp attribute from every tuple (the
	// rmStk translation for chwab).
	res := exec(t, e, "?.chwab.r(-.hp)")
	if res.AttrsDeleted != 3 {
		t.Fatalf("attrs deleted = %d, want 3", res.AttrsDeleted)
	}
	if ans := q(t, e, "?.chwab.r(.hp=P)"); ans.Bool() {
		t.Error("hp should be gone from all rows")
	}
	if ans := q(t, e, "?.chwab.r(.ibm=P)"); !ans.Bool() {
		t.Error("ibm untouched")
	}
}

func TestDeleteRelation(t *testing.T) {
	e := newStockEngine(t)
	// `.ource-.hp` — drop the hp relation (rmStk translation for ource).
	res := exec(t, e, "?.ource-.hp")
	if res.AttrsDeleted != 1 {
		t.Fatalf("attrs deleted = %d", res.AttrsDeleted)
	}
	if ans := q(t, e, "?.ource.Y"); ans.Len() != 2 || ans.Contains(row("Y", "hp")) {
		t.Errorf("relations after drop:\n%s", ans)
	}
}

func TestWildcardDeleteUnboundAttrVar(t *testing.T) {
	e := newStockEngine(t)
	// Unbound S: `.ource-.S` drops every relation (delStk-without-stock
	// wildcard semantics, §7.1).
	res := exec(t, e, "?.ource-.S")
	if res.AttrsDeleted != 3 {
		t.Fatalf("attrs deleted = %d, want 3", res.AttrsDeleted)
	}
	if ans := q(t, e, "?.ource.Y"); ans.Len() != 0 {
		t.Errorf("ource should be empty:\n%s", ans)
	}
}

func TestAtomicMinusWithWildcardAttr(t *testing.T) {
	e := newStockEngine(t)
	// `.chwab.r(.S-=X, .date=3/2/85)` — null every stock's price on one
	// date (delStk's chwab translation with the stock unbound).
	exec(t, e, "?.chwab.r(.date=3/2/85, .S-=X)")
	// The date attribute itself was also nulled (S ranges over all
	// attributes, including date) — matching the paper's literal program,
	// which relies on the date conjunct having matched first.
	if ans := q(t, e, "?.chwab.r(.date=3/2/85)"); ans.Bool() {
		t.Log("date attribute nulled as well — acceptable per the paper's literal semantics")
	}
	// Prices on other dates remain.
	if ans := q(t, e, "?.chwab.r(.date=3/1/85, .hp=50)"); !ans.Bool() {
		t.Error("3/1/85 untouched")
	}
}

func TestInsertCreatesAttributeAndRelation(t *testing.T) {
	e := newStockEngine(t)
	// Insert a new stock as an attribute in chwab (metadata update).
	exec(t, e, "?.chwab.r(.date=3/1/85, +.dec=77)")
	ans := q(t, e, "?.chwab.r(.date=3/1/85, .dec=P)")
	if !ans.Contains(row("P", 77)) {
		t.Errorf("dec attribute:\n%s", ans)
	}
	// Insert a new relation in ource via tuple plus on the database.
	exec(t, e, "?.ource+.dec")
	if ans := q(t, e, "?.ource.Y, Y = dec"); !ans.Bool() {
		t.Error("dec relation should exist")
	}
}

func TestInsertUnboundVariableError(t *testing.T) {
	e := newStockEngine(t)
	err := execErr(t, e, "?.euter.r+(.date=3/9/85,.stkCode=hp,.clsPrice=P)")
	var ib *InsertUnboundError
	if !errors.As(err, &ib) || ib.Var != "P" {
		t.Errorf("want InsertUnboundError{P}, got %v", err)
	}
}

func TestAtomicityRollback(t *testing.T) {
	e := newStockEngine(t)
	before := relation(t, e, "euter", "r").Len()
	// First conjunct mutates, second fails (unbound insert var): the
	// whole request must roll back.
	err := execErr(t, e, "?.euter.r-(.stkCode=hp), .euter.r+(.stkCode=Q,.clsPrice=V)")
	if err == nil {
		t.Fatal("expected error")
	}
	if got := relation(t, e, "euter", "r").Len(); got != before {
		t.Errorf("rollback failed: relation size %d, want %d", got, before)
	}
	if ans := q(t, e, "?.euter.r(.stkCode=hp)"); !ans.Bool() {
		t.Error("hp rows should be restored")
	}
}

func TestUpdatePerBinding(t *testing.T) {
	e := newStockEngine(t)
	// Insert a +100 row for every (date, price) of hp: three bindings.
	res := exec(t, e, "?.euter.r(.stkCode=hp,.date=D,.clsPrice=P), .euter.r+(.stkCode=hp2,.date=D,.clsPrice=P+100)")
	if res.Bindings != 3 || res.ElemsInserted != 3 {
		t.Fatalf("bindings=%d inserted=%d", res.Bindings, res.ElemsInserted)
	}
	ans := q(t, e, "?.euter.r(.stkCode=hp2,.clsPrice=P)")
	if ans.Len() != 3 || !ans.Contains(row("P", 150)) {
		t.Errorf("hp2 rows:\n%s", ans)
	}
}

func TestUpdateUnderNegationRejected(t *testing.T) {
	e := newStockEngine(t)
	execErr(t, e, "?~.euter.r-(.stkCode=hp)")
}

func TestNavigationToMissingAttributeFails(t *testing.T) {
	e := newStockEngine(t)
	err := execErr(t, e, "?.nosuch.r+(.x=1)")
	if !strings.Contains(err.Error(), "no attribute") {
		t.Errorf("error = %v", err)
	}
}

func TestAtomicPlusReplacesValue(t *testing.T) {
	e := newStockEngine(t)
	// `+=` on a navigated atomic slot replaces the value in place.
	exec(t, e, "?.chwab.r(.date=3/1/85, .hp+=99)")
	ans := q(t, e, "?.chwab.r(.date=3/1/85, .hp=P)")
	if !ans.Contains(row("P", 99)) {
		t.Errorf("hp should be 99:\n%s", ans)
	}
}

func TestAtomicUpdateOnAggregateRejected(t *testing.T) {
	e := newStockEngine(t)
	// `.euter.r+=5` — atomic plus applied to a set object is an error
	// (§5.2: "for all other cases, the expression is in error").
	execErr(t, e, "?.euter.r+=5")
}

func TestSetElementMutationKeepsMembershipCoherent(t *testing.T) {
	e := newStockEngine(t)
	rel := relation(t, e, "chwab", "r")
	// Null out one price, then verify the set still finds its elements
	// (hash index must have been maintained through the mutation).
	exec(t, e, "?.chwab.r(.date=3/1/85, .hp-=C)")
	found := 0
	rel.Each(func(elem object.Object) bool {
		if rel.Contains(elem) {
			found++
		}
		return true
	})
	if found != rel.Len() {
		t.Errorf("membership broken after in-place mutation: %d/%d", found, rel.Len())
	}
	if rel.Len() != 3 {
		t.Errorf("rows = %d, want 3", rel.Len())
	}
}

func TestSetMutationMergesEqualElements(t *testing.T) {
	e := NewEngine()
	db := object.NewTuple()
	db.Put("r", object.SetOf(
		object.TupleOf("k", 1, "v", 10),
		object.TupleOf("k", 2, "v", 10),
	))
	e.Base().Put("d", db)
	e.Invalidate()
	// Setting both k values to 0 makes the tuples equal; set semantics
	// merge them.
	exec(t, e, "?.d.r(.k+=0)")
	rel := relation(t, e, "d", "r")
	if rel.Len() != 1 {
		t.Errorf("rows = %d, want 1 (merged)", rel.Len())
	}
}

func TestInsertIntoEmptyRelationViaTuplePlus(t *testing.T) {
	e := NewEngine()
	e.Base().Put("d", object.NewTuple())
	e.Invalidate()
	// Create relation r as an empty set, then insert.
	exec(t, e, "?.d+.r()")
	exec(t, e, "?.d.r+(.x=1)")
	ans := q(t, e, "?.d.r(.x=X)")
	if !ans.Contains(row("X", 1)) {
		t.Errorf("insert into created relation:\n%s", ans)
	}
}

func TestDateArithmeticRejected(t *testing.T) {
	e := newStockEngine(t)
	err := execErr(t, e, "?.euter.r(.stkCode=hp,.date=D,.clsPrice=C), .euter.r+(.stkCode=hp3,.date=D+1,.clsPrice=C)")
	if !strings.Contains(err.Error(), "arithmetic") {
		t.Errorf("error = %v", err)
	}
}

func TestMixedRequestUsesUpdatedState(t *testing.T) {
	e := newStockEngine(t)
	// Insert, then query within the same request: the query conjunct sees
	// the insertion.
	res := exec(t, e, "?.euter.r+(.date=3/9/85,.stkCode=new,.clsPrice=1), .euter.r(.stkCode=new,.clsPrice=P)")
	if res.Bindings != 1 {
		t.Errorf("bindings = %d, want 1 (query should see prior insert)", res.Bindings)
	}
}

func TestExecResultChanged(t *testing.T) {
	e := newStockEngine(t)
	res := exec(t, e, "?.euter.r(.stkCode=hp)")
	if res.Changed() {
		t.Error("pure query request should not report changes")
	}
	res = exec(t, e, "?.euter.r-(.stkCode=hp)")
	if !res.Changed() {
		t.Error("delete should report changes")
	}
}
