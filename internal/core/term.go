package core

import (
	"fmt"

	"idl/internal/ast"
	"idl/internal/object"
)

// errUnbound is the distinguished "term not ground under this
// substitution" condition; callers decide whether that means "bindable",
// "delay this conjunct", or a hard error.
type unboundError struct {
	Var string
}

func (e *unboundError) Error() string {
	return fmt.Sprintf("variable %s is unbound", e.Var)
}

// evalTerm evaluates a term under env. It returns an unboundError when a
// variable in the term is unbound.
func evalTerm(t ast.Term, env *Env) (object.Object, error) {
	switch x := t.(type) {
	case ast.Const:
		return x.Value, nil
	case ast.Var:
		if v, ok := env.Lookup(x.Name); ok {
			return v, nil
		}
		return nil, &unboundError{Var: x.Name}
	case ast.Arith:
		l, err := evalTerm(x.L, env)
		if err != nil {
			return nil, err
		}
		r, err := evalTerm(x.R, env)
		if err != nil {
			return nil, err
		}
		return applyArith(x.Op, l, r)
	default:
		return nil, fmt.Errorf("core: unknown term type %T", t)
	}
}

// applyArith computes l op r for numeric atoms. Integer arithmetic stays
// integral; any float operand promotes the result to float.
func applyArith(op byte, l, r object.Object) (object.Object, error) {
	li, lInt := l.(object.Int)
	ri, rInt := r.(object.Int)
	if lInt && rInt {
		switch op {
		case '+':
			return li + ri, nil
		case '-':
			return li - ri, nil
		case '*':
			return li * ri, nil
		}
	}
	lf, lok := numeric(l)
	rf, rok := numeric(r)
	if !lok || !rok {
		return nil, fmt.Errorf("core: arithmetic %c on non-numeric operands %s and %s", op, l, r)
	}
	switch op {
	case '+':
		return object.Float(lf + rf), nil
	case '-':
		return object.Float(lf - rf), nil
	case '*':
		return object.Float(lf * rf), nil
	default:
		return nil, fmt.Errorf("core: unknown arithmetic operator %c", op)
	}
}

func numeric(o object.Object) (float64, bool) {
	switch v := o.(type) {
	case object.Int:
		return float64(v), true
	case object.Float:
		return float64(v), true
	}
	return 0, false
}

// compare applies a relational operator to two objects. Equality and
// inequality are defined for every pair; ordering operators require
// comparable kinds (both numeric, both strings, both dates, or both
// bools) and are false otherwise. The null atomic object satisfies no
// comparison (paper §5.2's simplifying assumption).
func compare(op ast.RelOp, o, c object.Object) bool {
	if _, isNull := o.(object.Null); isNull {
		return false
	}
	if _, isNull := c.(object.Null); isNull {
		return false
	}
	switch op {
	case ast.OpEQ:
		return o.Equal(c)
	case ast.OpNE:
		return !o.Equal(c)
	}
	if !object.Comparable(o, c) {
		return false
	}
	cmp := o.Compare(c)
	switch op {
	case ast.OpLT:
		return cmp < 0
	case ast.OpLE:
		return cmp <= 0
	case ast.OpGT:
		return cmp > 0
	case ast.OpGE:
		return cmp >= 0
	default:
		return false
	}
}

// termVarNames lists the variables in a term.
func termVarNames(t ast.Term) []string {
	var out []string
	var rec func(ast.Term)
	rec = func(t ast.Term) {
		switch x := t.(type) {
		case ast.Var:
			out = append(out, x.Name)
		case ast.Arith:
			rec(x.L)
			rec(x.R)
		}
	}
	rec(t)
	return out
}

// singleUnboundVar reports whether t is exactly one unbound variable.
func singleUnboundVar(t ast.Term, env *Env) (string, bool) {
	v, ok := t.(ast.Var)
	if !ok {
		return "", false
	}
	if env.Bound(v.Name) {
		return "", false
	}
	return v.Name, true
}
