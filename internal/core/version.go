package core

import (
	"sync/atomic"

	"idl/internal/object"
	"idl/internal/obs"
)

// MVCC universe versioning (DESIGN.md §17).
//
// The engine's base universe is mutable and guarded by e.mu, exactly as
// before. What changed is the read path: instead of evaluating queries
// under the mutex, the engine freezes the current effective universe
// into an immutable *version* — a copy of the tuple skeleton that shares
// every relation set by reference — and publishes it through an atomic
// head pointer. A query pins the head version (an atomic increment),
// evaluates against its frozen universe with no engine lock held, and
// unpins. Writers never wait for readers and readers never wait for
// writers; they meet only at the narrow publish step.
//
// The invariants that make the shared sets safe:
//
//   - Freezing happens only under e.mu, and every mutation path (Execute,
//     Call, UpdateBase, catalog DDL, rule registration, member-snapshot
//     installs) runs under e.mu for its whole duration and invalidates
//     the head (head = nil) the moment it changes anything. A reader that
//     finds no head takes the slow path: it acquires e.mu, refreshes the
//     effective universe, and freezes a fresh version — so a version can
//     never capture a mutation in progress.
//   - Every set reachable from any live version is recorded in
//     e.published. Mutators copy-on-write published sets (cowSet /
//     MutableSet): the set is shallow-cloned, the clone replaces it in
//     the (writer-private) parent tuple, and the mutation lands on the
//     clone. Readers of old versions keep iterating the original.
//   - Element-level updates never mutate a shared element in place: the
//     update evaluator removes the element, mutates a deep clone, and
//     re-adds it (update.go, rules.go), so elements shared through a
//     cloned set stay frozen too.
//
// Version retention is bounded by Options.MaxRevisions: at each freeze,
// unpinned versions beyond the newest MaxRevisions are collected.
// Pinned versions always survive — a long-running reader keeps exactly
// its own snapshot alive.

// defaultMaxRevisions is the retention bound when Options.MaxRevisions
// is zero: the head plus a few recent versions, enough to keep cache
// warmth across quick write bursts without accumulating history.
const defaultMaxRevisions = 4

// versionElemBytes is the crude per-element cost estimate used for the
// retained-bytes gauge (elements are shared, so this deliberately counts
// logical exposure, not unique heap).
const versionElemBytes = 64

// version is one immutable snapshot of the effective universe.
type version struct {
	// epoch is the catalog epoch the snapshot was frozen at; plans
	// validated at this epoch evaluate against it without revalidation.
	epoch uint64
	// eff is the frozen effective universe: a private copy of every
	// tuple reachable without crossing a set, sharing the sets.
	eff *object.Tuple
	// sets lists the shared relation sets, for publish-set accounting
	// and cache retention.
	sets []*object.Set
	// opts is the engine options at freeze time; the snapshot evaluates
	// under them even if the engine's change later.
	opts Options
	// em and tracer are the observability hooks captured at freeze.
	// Traced engines route queries through the locked path (per-conjunct
	// probes are not concurrency-safe), so tracer here only gates that
	// decision.
	em     *engineMetrics
	tracer *obs.Tracer
	// pins counts in-flight readers; a version is collectable only at
	// zero pins (and only when it is no longer the head).
	pins atomic.Int64
	// bytes estimates the snapshot's retained footprint.
	bytes int64
}

// pinHead pins the current head version for reading, or returns nil when
// no fresh version is published (the caller must take the locked slow
// path). The pin-then-recheck loop closes the race against a concurrent
// publish + GC: either the GC observes our pin and spares the version,
// or we observe the newer head and back off.
func (e *Engine) pinHead() *version {
	for {
		v := e.head.Load()
		if v == nil {
			return nil
		}
		v.pins.Add(1)
		if e.head.Load() == v {
			return v
		}
		v.pins.Add(-1)
	}
}

// unpin releases a pinned version.
func (v *version) unpin() { v.pins.Add(-1) }

// publishHeadLocked freezes the current effective universe into a new
// version and publishes it, unless a fresh head already exists. The
// caller holds e.mu and has already run refreshEffective successfully.
func (e *Engine) publishHeadLocked() *version {
	if v := e.head.Load(); v != nil {
		return v
	}
	v := &version{
		epoch:  e.epoch,
		opts:   e.opts,
		em:     e.em,
		tracer: e.tracer,
	}
	v.eff = freezeTuple(e.effective, v)
	e.versions = append(e.versions, v)
	e.head.Store(v)
	e.mvccFreezes++
	e.collectVersionsLocked()
	e.rebuildPublishedLocked()
	e.publishMVCCGauges()
	return v
}

// freezeTuple copies t's tuple skeleton — every tuple reachable without
// crossing a set — and shares sets and atoms by reference, recording the
// shared sets on v. The copy makes every tuple in the snapshot private
// to it, so in-place tuple mutation of the live universe (attribute
// writes, DDL at any nesting depth outside sets) needs no COW at all;
// only sets are shared mutables, and those go through cowSet.
func freezeTuple(t *object.Tuple, v *version) *object.Tuple {
	cp := object.NewTuple()
	t.Each(func(attr string, val object.Object) bool {
		switch x := val.(type) {
		case *object.Tuple:
			cp.Put(attr, freezeTuple(x, v))
		case *object.Set:
			v.sets = append(v.sets, x)
			v.bytes += int64(x.Len()) * versionElemBytes
			cp.Put(attr, x)
		default:
			cp.Put(attr, val)
		}
		v.bytes += versionElemBytes
		return true
	})
	return cp
}

// collectVersionsLocked drops versions that are not the head, not
// pinned, and beyond the MaxRevisions retention window (newest first).
// Callers hold e.mu.
func (e *Engine) collectVersionsLocked() {
	max := e.opts.MaxRevisions
	if max <= 0 {
		max = defaultMaxRevisions
	}
	head := e.head.Load()
	kept := e.versions[:0]
	// Walk oldest→newest; retain the newest max versions unconditionally.
	cut := len(e.versions) - max
	for i, v := range e.versions {
		if v == head || i >= cut || v.pins.Load() > 0 {
			kept = append(kept, v)
			continue
		}
		e.mvccCollected++
	}
	// Zero the tail so collected versions are actually unreachable.
	for i := len(kept); i < len(e.versions); i++ {
		e.versions[i] = nil
	}
	e.versions = kept
}

// rebuildPublishedLocked recomputes the published-set map as the union
// of every live version's shared sets. It must cover ALL live versions,
// not just the head: a set can drop out of the current effective
// universe (e.g. a new rule merges it into a union set) while an older
// pinned snapshot still shares it — a writer must keep copy-on-writing
// it until that snapshot dies. Callers hold e.mu.
func (e *Engine) rebuildPublishedLocked() {
	pub := make(map[*object.Set]bool)
	for _, v := range e.versions {
		for _, s := range v.sets {
			pub[s] = true
		}
	}
	e.published = pub
}

// cowSet is the copy-on-write choke point for set mutation under e.mu:
// if s is shared with a live snapshot, it is shallow-cloned, the clone
// replaces it under parent.attr, and the clone (writer-private until the
// next freeze) is returned; otherwise s itself is returned. Callers must
// hold e.mu — every mutation path does.
func (e *Engine) cowSet(parent *object.Tuple, attr string, s *object.Set) *object.Set {
	if !e.published[s] {
		return s
	}
	c := s.ShallowClone()
	parent.Put(attr, c)
	e.mvccCOWClones++
	return c
}

// cowSetUndo wraps cowSet with an undo entry restoring the original set
// pointer on rollback, so a rolled-back request leaves the universe
// pointer-identical and set-pointer-keyed caches (indexes, statistics,
// plan dependencies) stay warm.
func (e *Engine) cowSetUndo(u *updater) func(parent *object.Tuple, attr string, s *object.Set) *object.Set {
	return func(parent *object.Tuple, attr string, s *object.Set) *object.Set {
		c := e.cowSet(parent, attr, s)
		if c != s {
			u.undo.record(func() { parent.Put(attr, s) })
		}
		return c
	}
}

// MutableSet is cowSet exposed for the catalog's write barrier: the
// catalog calls it for the relation set it is about to Insert into. It
// must only be called from within an UpdateBase functor (which holds
// e.mu); it takes no lock itself.
func (e *Engine) MutableSet(parent *object.Tuple, attr string, s *object.Set) *object.Set {
	return e.cowSet(parent, attr, s)
}

// invalidateHead drops the published head so the next reader freezes a
// fresh snapshot. Called (under e.mu) by markDirty and by every setter
// that changes evaluation-relevant engine state.
func (e *Engine) invalidateHead() {
	e.head.Store(nil)
}

// MVCCStats reports the version chain's state for observability surfaces
// (`\mvcc`, /debug/mvcc, health).
type MVCCStats struct {
	// LiveVersions is the number of retained snapshot versions.
	LiveVersions int
	// HeadEpoch is the published head's epoch (0 when no head is
	// published — i.e. a mutation has not yet been followed by a read).
	HeadEpoch uint64
	// HeadPublished reports whether a head snapshot is currently live.
	HeadPublished bool
	// PinnedReaders is the instantaneous sum of reader pins.
	PinnedReaders int64
	// PinnedEpochs lists the epochs of versions pinned right now.
	PinnedEpochs []uint64
	// RetainedBytes estimates the logical footprint of retained
	// versions (shared sets counted per version exposing them).
	RetainedBytes int64
	// Freezes counts snapshots frozen since the engine started.
	Freezes uint64
	// Collected counts versions garbage-collected.
	Collected uint64
	// COWClones counts copy-on-write set clones taken by writers.
	COWClones uint64
	// MaxRevisions is the effective retention bound.
	MaxRevisions int
}

// MVCCStats snapshots the version-chain state.
func (e *Engine) MVCCStats() MVCCStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := MVCCStats{
		LiveVersions: len(e.versions),
		Freezes:      e.mvccFreezes,
		Collected:    e.mvccCollected,
		COWClones:    e.mvccCOWClones,
		MaxRevisions: e.opts.MaxRevisions,
	}
	if st.MaxRevisions <= 0 {
		st.MaxRevisions = defaultMaxRevisions
	}
	if h := e.head.Load(); h != nil {
		st.HeadEpoch = h.epoch
		st.HeadPublished = true
	}
	for _, v := range e.versions {
		st.RetainedBytes += v.bytes
		if p := v.pins.Load(); p > 0 {
			st.PinnedReaders += p
			st.PinnedEpochs = append(st.PinnedEpochs, v.epoch)
		}
	}
	return st
}

// publishMVCCGauges pushes the version-chain gauges to the metrics
// registry. Callers hold e.mu.
func (e *Engine) publishMVCCGauges() {
	if e.em == nil {
		return
	}
	var bytes int64
	for _, v := range e.versions {
		bytes += v.bytes
	}
	e.em.mvccLiveVersions.Set(int64(len(e.versions)))
	e.em.mvccRetainedBytes.Set(bytes)
}
