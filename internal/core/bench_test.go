package core

import (
	"fmt"
	"testing"

	"idl/internal/object"
	"idl/internal/parser"
)

// benchEngine builds a universe with one euter-style relation of n rows.
func benchEngine(b *testing.B, n int, opts Options) *Engine {
	b.Helper()
	e := NewEngineWithOptions(opts)
	rel := object.NewSet()
	for i := 0; i < n; i++ {
		rel.Add(object.TupleOf(
			"date", object.NewDate(85, 1+i%12, 1+i%28),
			"stkCode", fmt.Sprintf("stk%03d", i%50),
			"clsPrice", 10+i%300,
		))
	}
	d := object.NewTuple()
	d.Put("r", rel)
	e.Base().Put("euter", d)
	e.Invalidate()
	return e
}

func benchQuery(b *testing.B, e *Engine, src string) {
	b.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointQueryIndexed(b *testing.B) {
	e := benchEngine(b, 10000, DefaultOptions())
	benchQuery(b, e, "?.euter.r(.stkCode=stk025, .clsPrice=P, .date=D)")
}

func BenchmarkPointQueryScan(b *testing.B) {
	opts := DefaultOptions()
	opts.UseIndex = false
	e := benchEngine(b, 10000, opts)
	benchQuery(b, e, "?.euter.r(.stkCode=stk025, .clsPrice=P, .date=D)")
}

func BenchmarkHigherOrderAttrEnumeration(b *testing.B) {
	e := NewEngine()
	rel := object.NewSet()
	row := object.NewTuple()
	row.Put("date", object.NewDate(85, 1, 2))
	for i := 0; i < 200; i++ {
		row.Put(fmt.Sprintf("stk%03d", i), object.Int(i))
	}
	rel.Add(row)
	d := object.NewTuple()
	d.Put("r", rel)
	e.Base().Put("chwab", d)
	e.Invalidate()
	benchQuery(b, e, "?.chwab.r(.S>150)")
}

func BenchmarkNegationQuery(b *testing.B) {
	e := benchEngine(b, 2000, DefaultOptions())
	benchQuery(b, e, "?.euter.r(.stkCode=stk010,.clsPrice=P,.date=D), .euter.r~(.stkCode=stk010, .clsPrice>P)")
}

func BenchmarkInsertThroughput(b *testing.B) {
	e := benchEngine(b, 0, DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := parser.ParseQuery(fmt.Sprintf("?.euter.r+(.stkCode=s%07d, .clsPrice=%d)", i, i%100))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaterializeSimpleView(b *testing.B) {
	e := benchEngine(b, 5000, DefaultOptions())
	mustRuleB(b, e, ".v.hot+(.stk=S, .price=P) <- .euter.r(.stkCode=S, .clsPrice=P), .euter.r~(.stkCode=S, .clsPrice>P)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Invalidate()
		if _, err := e.EffectiveUniverse(); err != nil {
			b.Fatal(err)
		}
	}
}

func mustRuleB(b *testing.B, e *Engine, src string) {
	b.Helper()
	r, err := parser.ParseRule(src)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.AddRule(r); err != nil {
		b.Fatal(err)
	}
}
