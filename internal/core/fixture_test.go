package core

import (
	"testing"

	"idl/internal/ast"
	"idl/internal/object"
	"idl/internal/parser"
)

// The test fixture mirrors the paper's three stock databases with a small
// deterministic data set. The same nine facts (3 stocks × 3 days) render
// into all three schemas:
//
//	euter: r{(date, stkCode, clsPrice)}          — stock as data
//	chwab: r{(date, hp, ibm, sun)}               — stock as attribute name
//	ource: hp{(date, clsPrice)}, ibm{…}, sun{…}  — stock as relation name
//
// Prices: hp 50,55,62 · ibm 140,155,160 · sun 201,210,150 over
// 3/1/85, 3/2/85, 3/3/85. So "closed above 200" is sun (days 1 and 2),
// "hp>60 and ibm>150 same day" is 3/3/85, hp's all-time high is 62 on
// 3/3/85, and the per-day winners are sun, sun, ibm.

var (
	fixDates  = []object.Date{object.NewDate(85, 3, 1), object.NewDate(85, 3, 2), object.NewDate(85, 3, 3)}
	fixStocks = []string{"hp", "ibm", "sun"}
	fixPrices = map[string][]int{
		"hp":  {50, 55, 62},
		"ibm": {140, 155, 160},
		"sun": {201, 210, 150},
	}
)

// buildStockBase populates the engine's base universe with the three
// databases.
func buildStockBase(t testing.TB, e *Engine) {
	t.Helper()
	u := e.Base()

	euterR := object.NewSet()
	for di, d := range fixDates {
		for _, s := range fixStocks {
			euterR.Add(object.TupleOf("date", d, "stkCode", s, "clsPrice", fixPrices[s][di]))
		}
	}
	euter := object.NewTuple()
	euter.Put("r", euterR)
	u.Put("euter", euter)

	chwabR := object.NewSet()
	for di, d := range fixDates {
		row := object.NewTuple()
		row.Put("date", d)
		for _, s := range fixStocks {
			row.Put(s, object.Int(fixPrices[s][di]))
		}
		chwabR.Add(row)
	}
	chwab := object.NewTuple()
	chwab.Put("r", chwabR)
	u.Put("chwab", chwab)

	ource := object.NewTuple()
	for _, s := range fixStocks {
		rel := object.NewSet()
		for di, d := range fixDates {
			rel.Add(object.TupleOf("date", d, "clsPrice", fixPrices[s][di]))
		}
		ource.Put(s, rel)
	}
	u.Put("ource", ource)

	e.Invalidate()
}

func newStockEngine(t testing.TB) *Engine {
	t.Helper()
	e := NewEngine()
	buildStockBase(t, e)
	return e
}

// q runs a query string and returns the answer.
func q(t testing.TB, e *Engine, src string) *Answer {
	t.Helper()
	query, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	ans, err := e.Query(query)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return ans
}

// exec runs an update request string.
func exec(t testing.TB, e *Engine, src string) *ExecResult {
	t.Helper()
	query, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	res, err := e.Execute(query)
	if err != nil {
		t.Fatalf("execute %q: %v", src, err)
	}
	return res
}

// execErr runs an update request expecting an error.
func execErr(t testing.TB, e *Engine, src string) error {
	t.Helper()
	query, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	_, err = e.Execute(query)
	if err == nil {
		t.Fatalf("execute %q: expected error", src)
	}
	return err
}

// mustRule registers a rule from source.
func mustRule(t testing.TB, e *Engine, src string) {
	t.Helper()
	r, err := parser.ParseRule(src)
	if err != nil {
		t.Fatalf("parse rule %q: %v", src, err)
	}
	if err := e.AddRule(r); err != nil {
		t.Fatalf("add rule %q: %v", src, err)
	}
}

// mustClause registers an update-program clause from source.
func mustClause(t testing.TB, e *Engine, src string) {
	t.Helper()
	c, err := parser.ParseClause(src)
	if err != nil {
		t.Fatalf("parse clause %q: %v", src, err)
	}
	if err := e.AddClause(c); err != nil {
		t.Fatalf("add clause %q: %v", src, err)
	}
}

// strs builds a Row from alternating name/value pairs.
func row(pairs ...any) Row {
	if len(pairs)%2 != 0 {
		panic("row: odd pairs")
	}
	r := Row{}
	for i := 0; i < len(pairs); i += 2 {
		r[pairs[i].(string)] = toObj(pairs[i+1])
	}
	return r
}

func toObj(v any) object.Object {
	switch x := v.(type) {
	case object.Object:
		return x
	case int:
		return object.Int(x)
	case float64:
		return object.Float(x)
	case string:
		return object.Str(x)
	case bool:
		return object.Bool(x)
	default:
		panic("toObj: unsupported")
	}
}

// relation fetches a relation set from the engine's base universe.
func relation(t testing.TB, e *Engine, db, rel string) *object.Set {
	t.Helper()
	dbObj, ok := e.Base().Get(db)
	if !ok {
		t.Fatalf("no database %s", db)
	}
	relObj, ok := dbObj.(*object.Tuple).Get(rel)
	if !ok {
		t.Fatalf("no relation %s.%s", db, rel)
	}
	return relObj.(*object.Set)
}

// parseClauseHelper parses a clause, returning parse errors instead of
// failing, for validation tests that accept either parse- or
// compile-level rejection.
func parseClauseHelper(src string) (*ast.Clause, error) {
	return parser.ParseClause(src)
}
