package core

import (
	"idl/internal/object"
)

// Catalog statistics (DESIGN.md §11). Per-relation cardinalities and
// per-attribute distinct-value estimates feed the cost-based conjunct
// scheduler. Statistics are computed lazily — the first compilation that
// needs a relation's numbers pays for them — and memoized per set
// pointer, keyed by the set's version counter, so they track updates
// incrementally: an unchanged relation never recounts, a mutated one
// recounts once on next use. An epoch bump therefore never wipes the
// memo wholesale: only the relations whose (set, version) actually moved
// recompute, mirroring the index cache's per-relation invalidation.
//
// The memo is a sync.Map so the MVCC lock-free read path can estimate
// plans concurrently with writers. Entries are immutable once stored;
// a version mismatch stores a fresh entry. Concurrent computation of the
// same stale entry is benign — computeRelStat is deterministic, so both
// racers store equal values.

// statSampleCap bounds the elements examined per relation when
// estimating distinct counts. The sample is the insertion-order prefix,
// so it is deterministic for a given set content — identical statistics
// (and therefore identical plans) on every engine evaluating the same
// universe.
const statSampleCap = 256

// relStat holds one relation's statistics at one set version.
type relStat struct {
	version  uint64
	card     int
	distinct map[string]int // attribute -> estimated distinct values
}

// statFor returns (computing if absent or stale) the statistics of a
// relation set. Safe for concurrent use; callers need not hold e.mu, but
// the set must be immutable while they do (a frozen snapshot's set, or
// any set while holding e.mu).
func (e *Engine) statFor(set *object.Set) *relStat {
	if v, ok := e.relStats.Load(set); ok {
		st := v.(*relStat)
		if st.version == set.Version() {
			return st
		}
	}
	st := computeRelStat(set)
	e.relStats.Store(set, st)
	return st
}

// computeRelStat counts a relation: exact cardinality (O(1) from the
// set), and per-attribute distinct-value estimates from a bounded
// insertion-order sample. When every sampled value of an attribute is
// distinct the attribute is extrapolated as a key (distinct ≈
// cardinality); otherwise the sample's distinct count stands — small
// value domains saturate well inside the sample.
func computeRelStat(set *object.Set) *relStat {
	st := &relStat{version: set.Version(), card: set.Len(), distinct: map[string]int{}}
	sample := set.SampleN(statSampleCap)
	seen := map[string]map[uint64]struct{}{}
	rows := 0
	for _, el := range sample {
		tup, ok := el.(*object.Tuple)
		if !ok {
			continue
		}
		rows++
		for _, attr := range tup.Attrs() {
			v, ok := tup.Get(attr)
			if !ok {
				continue
			}
			vals := seen[attr]
			if vals == nil {
				vals = make(map[uint64]struct{})
				seen[attr] = vals
			}
			vals[v.Hash()] = struct{}{}
		}
	}
	for attr, vals := range seen {
		d := len(vals)
		if rows > 0 && d == rows && st.card > d {
			d = st.card
		}
		st.distinct[attr] = d
	}
	return st
}

// pruneStats drops statistics for sets no longer reachable from the
// effective universe or a retained MVCC snapshot, alongside the index
// cache's retain pass. Callers hold e.mu.
func (e *Engine) pruneStats(live map[*object.Set]bool) {
	e.relStats.Range(func(k, _ any) bool {
		if !live[k.(*object.Set)] {
			e.relStats.Delete(k)
		}
		return true
	})
}
