package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"idl/internal/object"
)

// randRelation describes a generated flat relation for property tests.
type randRelation struct {
	Rows []randRow
}

type randRow struct {
	K int // key-ish attribute, small domain
	V int // value attribute
	W int // extra attribute, sometimes omitted
	// OmitW drops the w attribute (heterogeneous arity).
	OmitW bool
}

// Generate implements quick.Generator.
func (randRelation) Generate(r *rand.Rand, _ int) reflect.Value {
	n := r.Intn(30)
	rel := randRelation{Rows: make([]randRow, n)}
	for i := range rel.Rows {
		rel.Rows[i] = randRow{
			K:     r.Intn(8),
			V:     r.Intn(50),
			W:     r.Intn(5),
			OmitW: r.Intn(4) == 0,
		}
	}
	return reflect.ValueOf(rel)
}

func (rr randRelation) tuple(i int) *object.Tuple {
	row := rr.Rows[i]
	t := object.NewTuple()
	t.Put("k", object.Int(row.K))
	t.Put("v", object.Int(row.V))
	if !row.OmitW {
		t.Put("w", object.Int(row.W))
	}
	return t
}

// engineWith builds an engine holding d.r = the generated relation,
// inserting rows in the given order.
func engineWith(rr randRelation, order []int) *Engine {
	e := NewEngine()
	rel := object.NewSet()
	for _, i := range order {
		rel.Add(rr.tuple(i))
	}
	d := object.NewTuple()
	d.Put("r", rel)
	e.Base().Put("d", d)
	e.Invalidate()
	return e
}

func identityOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

var propCfg = &quick.Config{MaxCount: 60}

// Answers must not depend on set insertion order.
func TestPropAnswerOrderInvariance(t *testing.T) {
	f := func(rr randRelation, seed int64) bool {
		n := len(rr.Rows)
		e1 := engineWith(rr, identityOrder(n))
		shuffled := identityOrder(n)
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		e2 := engineWith(rr, shuffled)
		for _, src := range []string{
			"?.d.r(.k=K, .v=V)",
			"?.d.r(.k=K, .v>25)",
			"?.d.r(.A=X)", // higher-order over attribute names
			"?.d.r(.k=K, .v=V), .d.r~(.k=K, .v>V)",
		} {
			a1, a2 := q(t, e1, src), q(t, e2, src)
			a1.Sort()
			a2.Sort()
			if a1.String() != a2.String() {
				t.Logf("query %s:\n%s\nvs\n%s", src, a1, a2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, propCfg); err != nil {
		t.Error(err)
	}
}

// A boolean condition and its negation are complementary.
func TestPropNegationComplementary(t *testing.T) {
	f := func(rr randRelation, threshold uint8) bool {
		e := engineWith(rr, identityOrder(len(rr.Rows)))
		cond := fmt.Sprintf("?.d.r(.v>%d)", threshold%60)
		neg := fmt.Sprintf("?~.d.r(.v>%d)", threshold%60)
		return q(t, e, cond).Bool() != q(t, e, neg).Bool()
	}
	if err := quick.Check(f, propCfg); err != nil {
		t.Error(err)
	}
}

// `=X` enumeration returns exactly the distinct attribute values.
func TestPropBindingEnumeratesDistinctValues(t *testing.T) {
	f := func(rr randRelation) bool {
		e := engineWith(rr, identityOrder(len(rr.Rows)))
		ans := q(t, e, "?.d.r(.k=K)")
		want := map[int]bool{}
		for _, row := range rr.Rows {
			want[row.K] = true
		}
		if ans.Len() != len(want) {
			return false
		}
		for k := range want {
			if !ans.Contains(Row{"K": object.Int(k)}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, propCfg); err != nil {
		t.Error(err)
	}
}

// Inserting then deleting a tuple restores the relation exactly.
func TestPropInsertDeleteInverse(t *testing.T) {
	f := func(rr randRelation, k, v uint8) bool {
		e := engineWith(rr, identityOrder(len(rr.Rows)))
		before := relation(t, e, "d", "r").Clone()
		ins := fmt.Sprintf("?.d.r+(.k=%d, .v=%d, .fresh=1)", k, v)
		del := fmt.Sprintf("?.d.r-(.k=%d, .v=%d, .fresh=1)", k, v)
		exec(t, e, ins)
		exec(t, e, del)
		return before.Equal(relation(t, e, "d", "r"))
	}
	if err := quick.Check(f, propCfg); err != nil {
		t.Error(err)
	}
}

// A failing request must leave the universe untouched (atomicity), no
// matter what mutations preceded the failure.
func TestPropAtomicityUnderFailure(t *testing.T) {
	f := func(rr randRelation, k uint8) bool {
		e := engineWith(rr, identityOrder(len(rr.Rows)))
		before := relation(t, e, "d", "r").Clone()
		// Mutates (delete all with key), then fails on an unbound insert.
		execErr(t, e, fmt.Sprintf("?.d.r-(.k=%d), .d.r+(.k=Unbound)", k%8))
		return before.Equal(relation(t, e, "d", "r"))
	}
	if err := quick.Check(f, propCfg); err != nil {
		t.Error(err)
	}
}

// A materialized copy view equals its source relation.
func TestPropCopyViewFidelity(t *testing.T) {
	f := func(rr randRelation) bool {
		e := engineWith(rr, identityOrder(len(rr.Rows)))
		mustRule(t, e, ".v.copy+(.k=K, .v=V) <- .d.r(.k=K, .v=V)")
		// The copy view projects k and v; compare against a projected
		// source.
		want := object.NewSet()
		for i := range rr.Rows {
			tp := object.NewTuple()
			tp.Put("k", object.Int(rr.Rows[i].K))
			tp.Put("v", object.Int(rr.Rows[i].V))
			want.Add(tp)
		}
		eff, err := e.EffectiveUniverse()
		if err != nil {
			t.Fatal(err)
		}
		v, ok := eff.Get("v")
		if !ok {
			return want.Len() == 0
		}
		got, _ := v.(*object.Tuple).Get("copy")
		if got == nil {
			return want.Len() == 0
		}
		return want.Equal(got)
	}
	if err := quick.Check(f, propCfg); err != nil {
		t.Error(err)
	}
}

// engineWithOptions is engineWith under explicit options, for the
// parallel-evaluation properties.
func engineWithOptions(rr randRelation, order []int, opts Options) *Engine {
	e := NewEngineWithOptions(opts)
	rel := object.NewSet()
	for _, i := range order {
		rel.Add(rr.tuple(i))
	}
	d := object.NewTuple()
	d.Put("r", rel)
	e.Base().Put("d", d)
	e.Invalidate()
	return e
}

// propQueries is the query mix the parallel properties compare: scans,
// projections, higher-order attribute enumeration, and negated
// self-joins over the generated relation.
var propQueries = []string{
	"?.d.r(.k=K, .v=V)",
	"?.d.r(.k=K, .v>25)",
	"?.d.r(.A=X)",
	"?.d.r(.k=K, .v=V), .d.r~(.k=K, .v>V)",
}

// Parallel answers are byte-identical to sequential ones — same rows in
// the same order, no sorting — at every worker count, for any generated
// relation in any insertion order.
func TestPropParallelWorkerInvariance(t *testing.T) {
	f := func(rr randRelation, seed int64) bool {
		n := len(rr.Rows)
		order := identityOrder(n)
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		opts := DefaultOptions()
		seqE := engineWithOptions(rr, order, opts)
		for _, workers := range []int{2, 3, 8} {
			opts.Workers = workers
			parE := engineWithOptions(rr, order, opts)
			for _, src := range propQueries {
				s, p := q(t, seqE, src), q(t, parE, src)
				if s.String() != p.String() {
					t.Logf("workers=%d query %s:\n%s\nvs\n%s", workers, src, s, p)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, propCfg); err != nil {
		t.Error(err)
	}
}

// propRules feed the rule-order property: two independent rules, one
// reading another's head (forcing a rule wave), one with a constraint.
var propRules = []string{
	".x.a+(.k=K) <- .d.r(.k=K, .v>10)",
	".x.b+(.k=K, .w=W) <- .d.r(.k=K, .w=W)",
	".x.c+(.k=K) <- .x.a(.k=K), .d.r~(.k=K, .v>40)",
	".x.d+(.v=V) <- .d.r(.v=V), V > 25",
}

// Materialization is invariant under rule registration order: for any
// permutation of the rule set, parallel overlays are byte-identical to
// sequential ones under the same permutation, and the derived facts are
// the same set under every permutation.
func TestPropParallelRuleOrderInvariance(t *testing.T) {
	f := func(rr randRelation, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		perm := r.Perm(len(propRules))
		addRules := func(e *Engine) {
			for _, i := range perm {
				mustRule(t, e, propRules[i])
			}
		}
		opts := DefaultOptions()
		seqE := engineWithOptions(rr, identityOrder(len(rr.Rows)), opts)
		addRules(seqE)
		seqOverlay, _ := overlayString(t, seqE)
		for _, workers := range []int{2, 4} {
			opts.Workers = workers
			parE := engineWithOptions(rr, identityOrder(len(rr.Rows)), opts)
			addRules(parE)
			parOverlay, _ := overlayString(t, parE)
			if parOverlay != seqOverlay {
				t.Logf("workers=%d perm %v overlay:\n%s\nvs\n%s", workers, perm, seqOverlay, parOverlay)
				return false
			}
		}
		// Across permutations the derived facts are order-independent as
		// sets: compare sorted answers against the identity ordering.
		baseE := engineWithOptions(rr, identityOrder(len(rr.Rows)), DefaultOptions())
		for _, src := range propRules {
			mustRule(t, baseE, src)
		}
		for _, src := range []string{"?.x.a(.k=K)", "?.x.b(.k=K, .w=W)", "?.x.c(.k=K)", "?.x.d(.v=V)"} {
			a, b := q(t, baseE, src), q(t, seqE, src)
			a.Sort()
			b.Sort()
			if a.String() != b.String() {
				t.Logf("perm %v query %s:\n%s\nvs\n%s", perm, src, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, propCfg); err != nil {
		t.Error(err)
	}
}

// Index and scan evaluation agree on every query.
func TestPropIndexScanEquivalence(t *testing.T) {
	f := func(rr randRelation, k uint8) bool {
		mk := func(useIndex bool) *Engine {
			opts := DefaultOptions()
			opts.UseIndex = useIndex
			e := NewEngineWithOptions(opts)
			rel := object.NewSet()
			for i := range rr.Rows {
				rel.Add(rr.tuple(i))
			}
			d := object.NewTuple()
			d.Put("r", rel)
			e.Base().Put("d", d)
			e.Invalidate()
			return e
		}
		e1, e2 := mk(true), mk(false)
		src := fmt.Sprintf("?.d.r(.k=%d, .v=V)", k%8)
		a1, a2 := q(t, e1, src), q(t, e2, src)
		a1.Sort()
		a2.Sort()
		return a1.String() == a2.String()
	}
	if err := quick.Check(f, propCfg); err != nil {
		t.Error(err)
	}
}
