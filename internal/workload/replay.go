package workload

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"idl"
	"idl/internal/qlog"
)

// Replay semantics. Journal records replay in order against a DB the
// caller built (usually workload.Open over the journal header's meta).
// Rules and clauses re-register; queries, update requests and program
// calls re-execute; each outcome is compared field-by-field with what
// the original run journaled. The canonical renderings qlog captures
// (sorted answers, deterministic degraded reports) make the comparison
// a byte comparison.
//
// Recovered mode relaxes one case: a record captured under degradation
// replayed against a healthy federation. The replayed answer then
// legitimately holds MORE rows than the recorded best-effort answer, so
// the record passes when the recorded rows are a subset of the replayed
// ones (and a recorded degraded false may recover to true).

// Options tunes Replay's comparison.
type Options struct {
	// Recovered accepts records whose recorded answer was degraded but
	// whose replayed answer is healthy, provided the recorded rows are a
	// subset of the replayed rows.
	Recovered bool
}

// Mismatch is one field where replay diverged from the journal.
type Mismatch struct {
	Seq   int
	Kind  string
	Text  string
	Field string // "answer", "rows", "exec", "degraded", "err", "kind"
	Want  string // journaled
	Got   string // replayed
}

func (m Mismatch) String() string {
	return fmt.Sprintf("#%d %s %s: %s: want %q, got %q", m.Seq, m.Kind, m.Text, m.Field, m.Want, m.Got)
}

// Outcome is one replayed record's timing, for perf-mode comparison.
type Outcome struct {
	Seq        int
	Kind       string
	RecordedNS int64
	ReplayedNS int64
}

// Report is the result of replaying a journal.
type Report struct {
	Total      int
	ByKind     map[string]int
	Recovered  int // degraded records accepted under Options.Recovered
	Mismatches []Mismatch
	Outcomes   []Outcome
}

// OK reports whether every record replayed to its journaled outcome.
func (r *Report) OK() bool { return len(r.Mismatches) == 0 }

func (r *Report) String() string {
	var kinds []string
	for k := range r.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var parts []string
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, r.ByKind[k]))
	}
	status := "OK"
	if !r.OK() {
		status = fmt.Sprintf("%d mismatches", len(r.Mismatches))
	}
	s := fmt.Sprintf("replayed %d records (%s): %s", r.Total, strings.Join(parts, " "), status)
	if r.Recovered > 0 {
		s += fmt.Sprintf(" (%d degraded records recovered)", r.Recovered)
	}
	return s
}

// Replay runs every record against db in journal order and compares
// outcomes. Execution errors do not stop the replay: they surface as
// "err" mismatches unless the journal recorded the same error.
func Replay(ctx context.Context, db *idl.DB, recs []qlog.Record, opts Options) *Report {
	rep := &Report{ByKind: map[string]int{}}
	for _, rec := range recs {
		rep.Total++
		rep.ByKind[rec.Kind]++
		start := time.Now()
		switch rec.Kind {
		case qlog.KindRule:
			compareErr(rep, rec, db.DefineView(rec.Text))
		case qlog.KindClause:
			compareErr(rep, rec, db.DefineProgram(rec.Text))
		case qlog.KindQuery:
			ans, err := db.QueryCtx(ctx, rec.Text)
			if compareErr(rep, rec, err) && err == nil {
				compareQuery(rep, rec, ans, opts)
			}
		case qlog.KindExec, qlog.KindCall:
			info, err := db.ExecCtx(ctx, rec.Text)
			if compareErr(rep, rec, err) && err == nil {
				compareExec(rep, rec, info)
			}
		default:
			rep.mismatch(rec, "kind", rec.Kind, "replayable record")
		}
		rep.Outcomes = append(rep.Outcomes, Outcome{
			Seq:        rec.Seq,
			Kind:       rec.Kind,
			RecordedNS: rec.NS,
			ReplayedNS: time.Since(start).Nanoseconds(),
		})
	}
	return rep
}

func (r *Report) mismatch(rec qlog.Record, field, want, got string) {
	r.Mismatches = append(r.Mismatches, Mismatch{
		Seq: rec.Seq, Kind: rec.Kind, Text: rec.Text,
		Field: field, Want: want, Got: got,
	})
}

// compareErr checks the error outcome; it returns true when the record
// agrees so far (both succeeded, or both failed identically).
func compareErr(r *Report, rec qlog.Record, err error) bool {
	got := ""
	if err != nil {
		got = err.Error()
	}
	if got != rec.Err {
		r.mismatch(rec, "err", rec.Err, got)
		return false
	}
	return true
}

func compareQuery(r *Report, rec qlog.Record, ans *idl.Result, opts Options) {
	gotAnswer := ans.String()
	gotDegraded := ""
	if ans.Degraded != nil {
		gotDegraded = ans.Degraded.String()
	}
	if opts.Recovered && rec.Degraded != "" && gotDegraded == "" {
		// Captured degraded, replayed healthy: the recorded best-effort
		// rows must all reappear in the (possibly larger) healthy answer.
		if !answerSubset(rec.Answer, gotAnswer) {
			r.mismatch(rec, "answer", rec.Answer+" (subset)", gotAnswer)
		} else {
			r.Recovered++
		}
		return
	}
	if gotDegraded != rec.Degraded {
		r.mismatch(rec, "degraded", rec.Degraded, gotDegraded)
	}
	if gotAnswer != rec.Answer {
		r.mismatch(rec, "answer", rec.Answer, gotAnswer)
		return
	}
	if ans.Len() != rec.Rows {
		r.mismatch(rec, "rows", fmt.Sprint(rec.Rows), fmt.Sprint(ans.Len()))
	}
}

func compareExec(r *Report, rec qlog.Record, info *idl.ExecInfo) {
	got := qlog.ExecSummary{
		ElemsInserted: info.ElemsInserted,
		ElemsDeleted:  info.ElemsDeleted,
		AttrsCreated:  info.AttrsCreated,
		AttrsDeleted:  info.AttrsDeleted,
		ValuesSet:     info.ValuesSet,
		Bindings:      info.Bindings,
	}
	want := qlog.ExecSummary{}
	if rec.Exec != nil {
		want = *rec.Exec
	}
	if got != want {
		r.mismatch(rec, "exec", fmt.Sprintf("%+v", want), fmt.Sprintf("%+v", got))
	}
}

// answerSubset reports whether every row of the recorded answer appears
// in the replayed one. Answers render as a header line plus sorted rows;
// boolean answers render as "true"/"false", where a degraded false may
// recover to true.
func answerSubset(recorded, replayed string) bool {
	if recorded == replayed {
		return true
	}
	if recorded == "false" && replayed == "true" {
		return true
	}
	recLines := strings.Split(recorded, "\n")
	repLines := strings.Split(replayed, "\n")
	if len(recLines) == 0 || len(repLines) == 0 || recLines[0] != repLines[0] {
		return false // different header: not the same query shape
	}
	have := make(map[string]bool, len(repLines))
	for _, l := range repLines[1:] {
		have[l] = true
	}
	for _, l := range recLines[1:] {
		if !have[l] {
			return false
		}
	}
	return true
}

// LatencySummary is a latency distribution over one record kind.
type LatencySummary struct {
	Count int
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d p50=%s p90=%s p99=%s max=%s", s.Count, s.P50, s.P90, s.P99, s.Max)
}

func summarize(ns []int64) LatencySummary {
	if len(ns) == 0 {
		return LatencySummary{}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	pick := func(q float64) time.Duration {
		i := int(q * float64(len(ns)-1))
		return time.Duration(ns[i])
	}
	return LatencySummary{
		Count: len(ns),
		P50:   pick(0.50),
		P90:   pick(0.90),
		P99:   pick(0.99),
		Max:   time.Duration(ns[len(ns)-1]),
	}
}

// Latencies summarizes the recorded and replayed latency distributions
// of one record kind ("" = all kinds).
func (r *Report) Latencies(kind string) (recorded, replayed LatencySummary) {
	var rec, rep []int64
	for _, o := range r.Outcomes {
		if kind != "" && o.Kind != kind {
			continue
		}
		rec = append(rec, o.RecordedNS)
		rep = append(rep, o.ReplayedNS)
	}
	return summarize(rec), summarize(rep)
}
