package workload

import (
	"context"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"idl"
	"idl/internal/federation"
	"idl/internal/object"
	"idl/internal/qlog"
	"idl/internal/stocks"
)

func TestMetaRoundTrip(t *testing.T) {
	cfg := Default()
	cfg.BestEffort = true
	cfg.ChaosSeed = 7
	cfg.Discrepancies = 3
	cfg.NameConflict = true
	cfg.Retries = 0
	got, err := FromMeta(cfg.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatalf("round trip drifted:\nin  %+v\nout %+v", cfg, got)
	}

	// Missing keys keep zero values: an unknown environment replays onto
	// an empty DB rather than failing.
	zero, err := FromMeta(nil)
	if err != nil {
		t.Fatal(err)
	}
	if zero != (Config{}) {
		t.Fatalf("FromMeta(nil) = %+v, want zero", zero)
	}

	if _, err := FromMeta(map[string]string{"stocks": "many"}); err == nil {
		t.Fatal("bad meta value should fail to parse")
	}
}

// capture runs stmts against a journaling DB built from cfg and returns
// the journal's header metadata and records.
func capture(t *testing.T, cfg Config, stmts []string) (*qlog.Header, []qlog.Record) {
	t.Helper()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "capture.idlog")
	if err := db.StartJournal(path, cfg.Meta()); err != nil {
		t.Fatal(err)
	}
	for _, s := range stmts {
		// Statement failures are legitimate capture outcomes (a fail-fast
		// update under an injected fault journals its error), so they do
		// not abort the capture.
		if _, err := db.Load(s); err != nil {
			t.Logf("capture %q: %v", s, err)
		}
	}
	if err := db.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	hdr, recs, err := qlog.ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	return hdr, recs
}

// paperStatements is the round-trip workload: the §6 unified view, E5
// (highest per day) and E3 (any above) on all three schemas, an update
// in between so replay must reproduce the mutation too.
func paperStatements() []string {
	var stmts []string
	for _, r := range stocks.RulesUnified {
		stmts = append(stmts, r)
	}
	for _, qs := range [](map[string]string){stocks.QueryHighestPerDay(), stocks.QueryAnyAbove(150)} {
		keys := make([]string, 0, len(qs))
		for k := range qs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			stmts = append(stmts, qs[k])
		}
	}
	stmts = append(stmts,
		"?.euter.r+(.date=6/6/85, .stkCode=newco, .clsPrice=321)",
		"?.euter.r(.stkCode=newco, .clsPrice=P)",
		"?.dbI.p(.stk=newco, .price=P)",
	)
	return stmts
}

// TestReplayRoundTrip captures the paper workload (E5 and E3 across all
// three stock schemas plus an update) and replays it on an environment
// rebuilt from the journal header alone: every answer must byte-match.
func TestReplayRoundTrip(t *testing.T) {
	cfg := Default()
	hdr, recs := capture(t, cfg, paperStatements())

	rebuilt, err := FromMeta(hdr.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt != cfg {
		t.Fatalf("header meta rebuilt %+v, want %+v", rebuilt, cfg)
	}
	db, err := Open(rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	rep := Replay(context.Background(), db, recs, Options{})
	if !rep.OK() {
		for _, m := range rep.Mismatches {
			t.Error(m)
		}
		t.Fatalf("replay diverged: %s", rep)
	}
	if rep.Total != len(recs) || rep.Total != len(paperStatements()) {
		t.Fatalf("replayed %d of %d records", rep.Total, len(recs))
	}
	if rep.ByKind[qlog.KindQuery] != 8 || rep.ByKind[qlog.KindRule] != 3 || rep.ByKind[qlog.KindExec] != 1 {
		t.Fatalf("kind counts = %v", rep.ByKind)
	}
	if len(rep.Outcomes) != rep.Total {
		t.Fatalf("outcomes = %d, want %d", len(rep.Outcomes), rep.Total)
	}
}

// TestReplayDetectsDivergence replays a journal against the wrong
// environment (different price seed) and expects answer mismatches.
func TestReplayDetectsDivergence(t *testing.T) {
	cfg := Default()
	_, recs := capture(t, cfg, paperStatements())

	wrong := cfg
	wrong.StockSeed = cfg.StockSeed + 1
	db, err := Open(wrong)
	if err != nil {
		t.Fatal(err)
	}
	rep := Replay(context.Background(), db, recs, Options{})
	if rep.OK() {
		t.Fatal("replay on a different universe should diverge")
	}
	var sawAnswer bool
	for _, m := range rep.Mismatches {
		if m.Field == "answer" {
			sawAnswer = true
		}
	}
	if !sawAnswer {
		t.Fatalf("no answer mismatch in %v", rep.Mismatches)
	}
}

// TestReplayCallRecord journals a program call (made through the Go
// API, not a script) and replays it as the IDL update request qlog
// rendered it into.
func TestReplayCallRecord(t *testing.T) {
	cfg := Default()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "call.idlog")
	if err := db.StartJournal(path, cfg.Meta()); err != nil {
		t.Fatal(err)
	}
	for _, c := range stocks.ProgramInsStk {
		if err := db.DefineProgram(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Call("dbU", "insStk", map[string]any{
		"S": "zcorp", "D": idl.Date(85, 7, 1), "P": 55,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("?.euter.r(.stkCode=zcorp, .clsPrice=P)"); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	_, recs, err := qlog.ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var call *qlog.Record
	for i := range recs {
		if recs[i].Kind == qlog.KindCall {
			call = &recs[i]
		}
	}
	if call == nil || call.Exec == nil {
		t.Fatalf("no call record with exec summary in %+v", recs)
	}
	fresh, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := Replay(context.Background(), fresh, recs, Options{})
	if !rep.OK() {
		for _, m := range rep.Mismatches {
			t.Error(m)
		}
		t.Fatalf("call replay diverged: %s", rep)
	}
	if rep.ByKind[qlog.KindCall] != 1 {
		t.Fatalf("kind counts = %v", rep.ByKind)
	}
}

// chaosConfig is the deterministic chaos environment: best-effort
// federation, no retries (so injected faults surface as degradation),
// and a breaker threshold high enough that the wall-clock cooldown can
// never influence the replayed schedule.
func chaosConfig(seed uint64) Config {
	cfg := Default()
	cfg.BestEffort = true
	cfg.ChaosSeed = seed
	cfg.Retries = 0
	cfg.BreakerThreshold = 1000
	return cfg
}

// TestChaosReplayDeterministic captures the workload against seeded
// fault-injected members and replays it from the journal header alone:
// the same seed must reproduce the same fault schedule, so every
// degraded report — down to the member error strings — must byte-match.
func TestChaosReplayDeterministic(t *testing.T) {
	cfg := chaosConfig(13)
	hdr, recs := capture(t, cfg, paperStatements())

	var degraded int
	for _, rec := range recs {
		if rec.Degraded != "" {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("chaos run produced no degraded records; pick another seed")
	}

	rebuilt, err := FromMeta(hdr.Meta)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	rep := Replay(context.Background(), db, recs, Options{})
	if !rep.OK() {
		for _, m := range rep.Mismatches {
			t.Error(m)
		}
		t.Fatalf("chaos replay diverged (%d degraded records): %s", degraded, rep)
	}
}

// TestReplayRecovered captures a degraded best-effort run (one member
// dead) and replays it on a healthy environment: strict mode must flag
// the degradation, recovered mode must accept the recorded rows as a
// subset of the healthy answer.
func TestReplayRecovered(t *testing.T) {
	cfg := Default()
	scfg := stocks.Config{Stocks: cfg.Stocks, Days: cfg.Days, Seed: cfg.StockSeed}
	u, _ := stocks.Universe(scfg)

	opts := idl.DefaultOptions()
	opts.BestEffort = true
	db := idl.OpenWithOptions(opts)
	for _, m := range []struct {
		name string
		dead bool
	}{{"euter", false}, {"chwab", true}} {
		v, _ := u.Get(m.name)
		src := idl.NewMemorySource(m.name, v.(*object.Tuple))
		if m.dead {
			src = federation.Inject(src, federation.InjectorConfig{ErrorRate: 1})
		}
		if err := db.Mount(m.name, src); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "degraded.idlog")
	if err := db.StartJournal(path, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("?.euter.r(.stkCode=S, .clsPrice>150)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("?.chwab.r(.date=D, .stk001=P)"); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := qlog.ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if rec.Degraded == "" {
			t.Fatalf("record %d not degraded: %+v", i, rec)
		}
	}

	healthy, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	strict := Replay(context.Background(), healthy, recs, Options{})
	if strict.OK() {
		t.Fatal("strict replay of a degraded journal on a healthy DB should diverge")
	}
	healthy2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := Replay(context.Background(), healthy2, recs, Options{Recovered: true})
	if !rep.OK() {
		for _, m := range rep.Mismatches {
			t.Error(m)
		}
		t.Fatalf("recovered replay diverged: %s", rep)
	}
	if rep.Recovered != len(recs) {
		t.Fatalf("recovered %d records, want %d", rep.Recovered, len(recs))
	}
}

func TestAnswerSubset(t *testing.T) {
	for _, tc := range []struct {
		recorded, replayed string
		want               bool
	}{
		{"S\nhp", "S\nhp", true},
		{"S", "S\nhp\nibm", true},                    // degraded empty ⊂ healthy rows
		{"S\nhp", "S\nhp\nibm", true},                // fewer rows
		{"S\nibm2", "S\nhp", false},                  // missing row
		{"S\nhp", "D\nhp", false},                    // different header
		{"false", "true", true},                      // boolean recovery
		{"true", "false", false},                     // boolean regression
		{"S\nhp\nibm", "S\nhp", false},               // replay lost rows
		{"S\tP\nhp\t5", "S\tP\nhp\t5\nibm\t6", true}, // multi-column rows
	} {
		if got := answerSubset(tc.recorded, tc.replayed); got != tc.want {
			t.Errorf("answerSubset(%q, %q) = %v, want %v", tc.recorded, tc.replayed, got, tc.want)
		}
	}
}

func TestLatencies(t *testing.T) {
	rep := &Report{}
	for i := 1; i <= 100; i++ {
		rep.Outcomes = append(rep.Outcomes, Outcome{
			Kind:       qlog.KindQuery,
			RecordedNS: int64(i) * int64(time.Millisecond),
			ReplayedNS: int64(i) * int64(time.Microsecond),
		})
	}
	recorded, replayed := rep.Latencies(qlog.KindQuery)
	if recorded.Count != 100 || replayed.Count != 100 {
		t.Fatalf("counts = %d / %d", recorded.Count, replayed.Count)
	}
	if recorded.P50 != 50*time.Millisecond || recorded.Max != 100*time.Millisecond {
		t.Fatalf("recorded = %+v", recorded)
	}
	if replayed.P99 != 99*time.Microsecond {
		t.Fatalf("replayed = %+v", replayed)
	}
	if none, _ := rep.Latencies("nope"); none.Count != 0 {
		t.Fatalf("unexpected outcomes for unknown kind: %+v", none)
	}
}
