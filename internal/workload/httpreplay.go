package workload

import (
	"context"
	"errors"
	"fmt"
	"time"

	"idl/internal/qlog"
	"idl/internal/server"
)

// Replay over the wire. ReplayServer is Replay with the DB behind
// idld's HTTP front: every record becomes a wire request through one
// Client (one tenant, one connection's worth of state), and the
// responses are compared against the journal exactly as the embedded
// replay compares engine results. Because the server renders answers
// with the same canonical sorted form the journal captured, a faithful
// server replays a journal byte-for-byte — this is the equivalence the
// round-trip tests assert.

// ReplayServer runs every record against the server behind c in
// journal order and compares wire outcomes with journaled ones. The
// returned Report's replayed latencies include the HTTP round-trip.
func ReplayServer(ctx context.Context, c *server.Client, recs []qlog.Record, opts Options) *Report {
	rep := &Report{ByKind: map[string]int{}}
	for _, rec := range recs {
		rep.Total++
		rep.ByKind[rec.Kind]++
		start := time.Now()
		switch rec.Kind {
		case qlog.KindRule:
			compareWireErr(rep, rec, c.Rule(ctx, rec.Text))
		case qlog.KindClause:
			compareWireErr(rep, rec, c.Clause(ctx, rec.Text))
		case qlog.KindQuery:
			resp, err := c.Query(ctx, rec.Text)
			if compareWireErr(rep, rec, err) && err == nil {
				compareWireQuery(rep, rec, resp, opts)
			}
		case qlog.KindExec, qlog.KindCall:
			resp, err := c.Exec(ctx, rec.Text)
			if compareWireErr(rep, rec, err) && err == nil {
				compareWireExec(rep, rec, resp)
			}
		default:
			rep.mismatch(rec, "kind", rec.Kind, "replayable record")
		}
		rep.Outcomes = append(rep.Outcomes, Outcome{
			Seq:        rec.Seq,
			Kind:       rec.Kind,
			RecordedNS: rec.NS,
			ReplayedNS: time.Since(start).Nanoseconds(),
		})
	}
	return rep
}

// compareWireErr is compareErr for wire outcomes: a StatusError's Msg
// carries the server-side error string verbatim, so it compares against
// the journaled error the same way an engine error would. Transport
// failures (no StatusError) can never match a journaled engine error.
func compareWireErr(r *Report, rec qlog.Record, err error) bool {
	got := ""
	if err != nil {
		var se *server.StatusError
		if errors.As(err, &se) {
			got = se.Msg
		} else {
			got = "transport: " + err.Error()
		}
	}
	if got != rec.Err {
		r.mismatch(rec, "err", rec.Err, got)
		return false
	}
	return true
}

func compareWireQuery(r *Report, rec qlog.Record, resp *server.QueryResponse, opts Options) {
	if opts.Recovered && rec.Degraded != "" && resp.Degraded == "" {
		if !answerSubset(rec.Answer, resp.Answer) {
			r.mismatch(rec, "answer", rec.Answer+" (subset)", resp.Answer)
		} else {
			r.Recovered++
		}
		return
	}
	if resp.Degraded != rec.Degraded {
		r.mismatch(rec, "degraded", rec.Degraded, resp.Degraded)
	}
	if resp.Answer != rec.Answer {
		r.mismatch(rec, "answer", rec.Answer, resp.Answer)
		return
	}
	if resp.Rows != rec.Rows {
		r.mismatch(rec, "rows", fmt.Sprint(rec.Rows), fmt.Sprint(resp.Rows))
	}
}

func compareWireExec(r *Report, rec qlog.Record, resp *server.ExecResponse) {
	want := qlog.ExecSummary{}
	if rec.Exec != nil {
		want = *rec.Exec
	}
	if resp.Exec != want {
		r.mismatch(rec, "exec", fmt.Sprintf("%+v", want), fmt.Sprintf("%+v", resp.Exec))
	}
}
