// Package workload builds reproducible IDL environments and replays
// captured .idlog journals against them.
//
// A workload Config fully describes how to rebuild the environment a
// journal was recorded in: the demo stock universe's shape and seed,
// the federation failure mode, and — for chaos runs — the fault
// injector's seed and the resilience stack's tuning. Config round-trips
// through the journal header's free-form metadata (Meta / FromMeta), so
// cmd/idlreplay can reconstruct the original run from the journal file
// alone and replay it deterministically.
package workload

import (
	"fmt"
	"strconv"
	"time"

	"idl"
	"idl/internal/federation"
	"idl/internal/object"
	"idl/internal/stocks"
)

// Config describes a reproducible workload environment.
type Config struct {
	// Demo preloads the paper's three stock databases (euter / chwab /
	// ource) from a deterministic generated dataset.
	Demo bool
	// Stocks, Days and StockSeed shape the generated dataset.
	Stocks    int
	Days      int
	StockSeed uint64
	// Discrepancies and NameConflict forward to stocks.Config: value
	// discrepancies between members and vendor-coded names (§6).
	Discrepancies int
	NameConflict  bool

	// BestEffort selects the federation failure mode: degrade gracefully
	// (true) or fail fast (false).
	BestEffort bool
	// ChaosSeed, when nonzero, mounts the demo databases as federated
	// members behind a seeded fault injector instead of populating them
	// in-process. The same seed over the same statement sequence injects
	// the same fault schedule — chaos runs replay deterministically.
	ChaosSeed uint64
	// Resilience-stack tuning for chaos mode.
	Timeout          time.Duration
	Retries          int
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Workers sets the evaluation parallelism degree (idl.DB.SetWorkers).
	// Parallel answers are byte-identical to sequential ones, so journals
	// captured under any worker count replay interchangeably; the value
	// still round-trips through journal metadata so a replay reconstructs
	// the recorded environment faithfully.
	Workers int
}

// Default is the standard demo workload: the universe cmd/idl -demo
// loads, fail-fast federation, production resilience tuning.
func Default() Config {
	fed := federation.DefaultConfig()
	return Config{
		Demo:             true,
		Stocks:           5,
		Days:             5,
		StockSeed:        1991,
		Timeout:          fed.Timeout,
		Retries:          fed.Retries,
		BreakerThreshold: fed.BreakerThreshold,
		BreakerCooldown:  fed.BreakerCooldown,
	}
}

// chaosMembers is the fixed order members are mounted in; each gets a
// distinct injector schedule derived from ChaosSeed.
var chaosMembers = []string{"chwab", "euter", "ource"}

// memberSeed spreads ChaosSeed into per-member injector seeds.
func memberSeed(chaosSeed uint64, i int) uint64 {
	return chaosSeed + uint64(i)*7919
}

// injectorFor is the chaos fault profile: mostly healthy, with errors,
// slow responses and truncated snapshots mixed in deterministically.
func injectorFor(chaosSeed uint64, i int) federation.InjectorConfig {
	return federation.InjectorConfig{
		Seed:          memberSeed(chaosSeed, i),
		ErrorRate:     0.2,
		SlowRate:      0.1,
		TruncateRate:  0.05,
		Latency:       5 * time.Millisecond,
		TruncateAfter: 1,
	}
}

// Open builds a fresh DB for cfg: OpenWithOptions + Apply.
func Open(cfg Config) (*idl.DB, error) {
	opts := idl.DefaultOptions()
	opts.BestEffort = cfg.BestEffort
	db := idl.OpenWithOptions(opts)
	if err := Apply(db, cfg); err != nil {
		return nil, err
	}
	return db, nil
}

// Apply populates db per cfg: nothing when Demo is off, the generated
// stock universe in-process when ChaosSeed is zero, or the same universe
// mounted as fault-injected federated members when it is set.
func Apply(db *idl.DB, cfg Config) error {
	if cfg.Workers > 0 {
		db.SetWorkers(cfg.Workers)
	}
	if !cfg.Demo {
		return nil
	}
	scfg := stocks.Config{
		Stocks:        cfg.Stocks,
		Days:          cfg.Days,
		Seed:          cfg.StockSeed,
		Discrepancies: cfg.Discrepancies,
		NameConflict:  cfg.NameConflict,
	}
	if cfg.ChaosSeed == 0 {
		ds := stocks.Generate(scfg)
		ds.Populate(db.Engine().Base())
		db.Engine().Invalidate()
		return nil
	}
	u, _ := stocks.Universe(scfg)
	fed := federation.DefaultConfig()
	fed.Timeout = cfg.Timeout
	fed.Retries = cfg.Retries
	fed.BreakerThreshold = cfg.BreakerThreshold
	fed.BreakerCooldown = cfg.BreakerCooldown
	fed.Seed = cfg.ChaosSeed
	for i, name := range chaosMembers {
		v, _ := u.Get(name)
		member, ok := v.(*object.Tuple)
		if !ok {
			return fmt.Errorf("workload: demo database %s missing", name)
		}
		injected := federation.Inject(federation.NewMemorySource(name, member), injectorFor(cfg.ChaosSeed, i))
		if err := db.Mount(name, idl.Resilient(injected, fed)); err != nil {
			return err
		}
	}
	return nil
}

// Journal metadata keys for Config round-tripping.
const (
	metaDemo             = "demo"
	metaStocks           = "stocks"
	metaDays             = "days"
	metaStockSeed        = "stock_seed"
	metaDiscrepancies    = "discrepancies"
	metaNameConflict     = "name_conflict"
	metaBestEffort       = "best_effort"
	metaChaosSeed        = "chaos_seed"
	metaTimeout          = "timeout"
	metaRetries          = "retries"
	metaBreakerThreshold = "breaker_threshold"
	metaBreakerCooldown  = "breaker_cooldown"
	metaWorkers          = "workers"
)

// Meta renders cfg as journal-header metadata. FromMeta inverts it.
func (cfg Config) Meta() map[string]string {
	return map[string]string{
		metaDemo:             strconv.FormatBool(cfg.Demo),
		metaStocks:           strconv.Itoa(cfg.Stocks),
		metaDays:             strconv.Itoa(cfg.Days),
		metaStockSeed:        strconv.FormatUint(cfg.StockSeed, 10),
		metaDiscrepancies:    strconv.Itoa(cfg.Discrepancies),
		metaNameConflict:     strconv.FormatBool(cfg.NameConflict),
		metaBestEffort:       strconv.FormatBool(cfg.BestEffort),
		metaChaosSeed:        strconv.FormatUint(cfg.ChaosSeed, 10),
		metaTimeout:          cfg.Timeout.String(),
		metaRetries:          strconv.Itoa(cfg.Retries),
		metaBreakerThreshold: strconv.Itoa(cfg.BreakerThreshold),
		metaBreakerCooldown:  cfg.BreakerCooldown.String(),
		metaWorkers:          strconv.Itoa(cfg.Workers),
	}
}

// FromMeta rebuilds a Config from journal-header metadata. Missing keys
// keep their zero value (an absent environment replays onto an empty
// DB); present keys must parse. Unknown keys are ignored for forward
// compatibility.
func FromMeta(meta map[string]string) (Config, error) {
	var cfg Config
	var err error
	get := func(key string, parse func(string) error) {
		if err != nil {
			return
		}
		s, ok := meta[key]
		if !ok {
			return
		}
		if perr := parse(s); perr != nil {
			err = fmt.Errorf("workload: meta %s=%q: %w", key, s, perr)
		}
	}
	parseBool := func(dst *bool) func(string) error {
		return func(s string) error { v, e := strconv.ParseBool(s); *dst = v; return e }
	}
	parseInt := func(dst *int) func(string) error {
		return func(s string) error { v, e := strconv.Atoi(s); *dst = v; return e }
	}
	parseUint := func(dst *uint64) func(string) error {
		return func(s string) error { v, e := strconv.ParseUint(s, 10, 64); *dst = v; return e }
	}
	parseDur := func(dst *time.Duration) func(string) error {
		return func(s string) error { v, e := time.ParseDuration(s); *dst = v; return e }
	}
	get(metaDemo, parseBool(&cfg.Demo))
	get(metaStocks, parseInt(&cfg.Stocks))
	get(metaDays, parseInt(&cfg.Days))
	get(metaStockSeed, parseUint(&cfg.StockSeed))
	get(metaDiscrepancies, parseInt(&cfg.Discrepancies))
	get(metaNameConflict, parseBool(&cfg.NameConflict))
	get(metaBestEffort, parseBool(&cfg.BestEffort))
	get(metaChaosSeed, parseUint(&cfg.ChaosSeed))
	get(metaTimeout, parseDur(&cfg.Timeout))
	get(metaRetries, parseInt(&cfg.Retries))
	get(metaBreakerThreshold, parseInt(&cfg.BreakerThreshold))
	get(metaBreakerCooldown, parseDur(&cfg.BreakerCooldown))
	get(metaWorkers, parseInt(&cfg.Workers))
	return cfg, err
}
