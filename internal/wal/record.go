package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk record layout. Every record is length-prefixed, checksummed
// and LSN-stamped:
//
//	[4  length]   uint32 LE: byte length of the body
//	[4  crc]      uint32 LE: CRC-32 (IEEE) of the body
//	[8+1+n body]  uint64 LE LSN · 1 type byte · n payload bytes
//
// The CRC covers the whole body, so a torn write — a partial tail left
// by a crash mid-append — fails the checksum and recovery truncates the
// log there. A record can tear three ways, and decodeRecord reports all
// of them as errTornTail: a partial length/CRC header, a body shorter
// than the declared length, and a full-length body whose bytes are
// wrong.

// Record types: the logical mutations that commit through the engine —
// the same event set that bumps the catalog epoch.
const (
	// TypeExec is an update request or program call, stored as IDL
	// source text and replayed through the engine's Execute path.
	TypeExec byte = 1
	// TypeRule is a view-rule registration, stored as rule source.
	TypeRule byte = 2
	// TypeClause is an update-program clause, stored as clause source.
	TypeClause byte = 3
	// TypeDDL is a catalog operation (create/drop database or relation,
	// bulk insert), stored as the JSON form of a DDLRecord.
	TypeDDL byte = 4
	// TypeMemberSnap is a federated member-snapshot install or removal,
	// stored as the JSON form of a MemberSnapRecord.
	TypeMemberSnap byte = 5
	// TypeCheckpoint marks a completed checkpoint; the payload is the
	// checkpoint file's name. Recovery uses the checkpoint files
	// themselves; the marker makes checkpoints visible in the tail.
	TypeCheckpoint byte = 6
)

// recordHeaderLen is the fixed prefix before the body.
const recordHeaderLen = 8

// recordBodyPrefix is the LSN + type prefix inside the body.
const recordBodyPrefix = 9

// maxRecordLen bounds a single record (a member snapshot of a large
// universe is the biggest payload). Longer declared lengths are treated
// as corruption, not allocation requests.
const maxRecordLen = 1 << 30

// Record is one decoded log record.
type Record struct {
	LSN     uint64
	Type    byte
	Payload []byte
}

// TypeName renders a record type for status output and banners.
func TypeName(t byte) string {
	switch t {
	case TypeExec:
		return "exec"
	case TypeRule:
		return "rule"
	case TypeClause:
		return "clause"
	case TypeDDL:
		return "ddl"
	case TypeMemberSnap:
		return "member"
	case TypeCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("type%d", t)
}

// errTornTail reports a partial or corrupt record at the end of a
// segment — the expected shape of a crash, repaired by truncation.
var errTornTail = errors.New("wal: torn record")

// appendRecord encodes a record onto buf.
func appendRecord(buf []byte, lsn uint64, typ byte, payload []byte) []byte {
	body := make([]byte, recordBodyPrefix+len(payload))
	binary.LittleEndian.PutUint64(body, lsn)
	body[8] = typ
	copy(body[recordBodyPrefix:], payload)
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	buf = append(buf, hdr[:]...)
	return append(buf, body...)
}

// decodeRecord decodes the record at the front of data, returning the
// record and how many bytes it consumed. Any shortfall or checksum
// mismatch returns errTornTail.
func decodeRecord(data []byte) (Record, int, error) {
	if len(data) < recordHeaderLen {
		return Record{}, 0, errTornTail
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	crc := binary.LittleEndian.Uint32(data[4:8])
	if n < recordBodyPrefix || n > maxRecordLen {
		return Record{}, 0, errTornTail
	}
	if len(data) < recordHeaderLen+int(n) {
		return Record{}, 0, errTornTail
	}
	body := data[recordHeaderLen : recordHeaderLen+int(n)]
	if crc32.ChecksumIEEE(body) != crc {
		return Record{}, 0, errTornTail
	}
	rec := Record{
		LSN:     binary.LittleEndian.Uint64(body[0:8]),
		Type:    body[8],
		Payload: append([]byte(nil), body[recordBodyPrefix:]...),
	}
	return rec, recordHeaderLen + int(n), nil
}

// DDLRecord is the JSON payload of a TypeDDL record. Op is one of
// "create-db", "drop-db", "create-rel", "drop-rel", "insert"; Tuples
// carries the inserted tuples' tagged-JSON encodings for "insert".
type DDLRecord struct {
	Op     string            `json:"op"`
	DB     string            `json:"db"`
	Rel    string            `json:"rel,omitempty"`
	Tuples []json.RawMessage `json:"tuples,omitempty"`
}

// MemberSnapRecord is the JSON payload of a TypeMemberSnap record. A nil
// Snap removes the member's snapshot (unmount, or an unreachable member
// dropped by a best-effort sync).
type MemberSnapRecord struct {
	Name string          `json:"name"`
	Snap json.RawMessage `json:"snap,omitempty"`
}
