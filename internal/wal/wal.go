// Package wal is the engine's durability layer: an append-only,
// segmented write-ahead log of committed logical mutations — update
// requests, DDL, rule and clause registrations, federated member
// snapshot installs; the same event set that bumps the catalog epoch —
// plus incremental checkpoints and redo recovery.
//
// Records are length-prefixed, CRC-checksummed and LSN-stamped
// (record.go). The log is redo-only: mutations apply in memory first and
// append on commit, so recovery is "load the newest good checkpoint,
// replay the tail". A crash mid-append leaves a torn trailing record;
// recovery truncates the log at the first checksum failure and reports
// it. Checkpoints are incremental: each relation set is written to its
// own rel-*.ckseg file (through the storage/object tagged-JSON codecs),
// unchanged relations keep their segment file from the previous
// checkpoint, and the ckpt-*.ckpt manifest carries only the universe
// skeleton plus the segment references. Recovery composes manifest +
// segments, verifying every checksum; sealed log segments older than a
// checkpoint are deleted — the same bounded-retention discipline the
// federation layer applies to history.
//
// All writes go through the FS seam (fs.go) so crash-point fault
// injection (faults.go) can short-write, fail fsync, or kill the "disk"
// at the Nth operation; the recovery tests in the root package drive a
// full crash grid against a prefix-consistency oracle.
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"idl/internal/object"
	"idl/internal/obs"
	"idl/internal/storage"
)

// segMagic starts every segment file, followed by the segment's first
// LSN as 8 little-endian bytes.
const segMagic = "IDLWAL1\n"

// segHeaderLen is the segment header size.
const segHeaderLen = len(segMagic) + 8

// SyncMode is the append-time durability policy.
type SyncMode int

const (
	// SyncAlways fsyncs after every append: an acknowledged commit is on
	// disk. The durable default.
	SyncAlways SyncMode = iota
	// SyncGroup fsyncs when GroupBytes of unsynced records accumulate
	// (and on rotate, checkpoint and close) — group commit: the fsync
	// cost amortizes over the batch, at the price of losing the unsynced
	// suffix in a crash.
	SyncGroup
	// SyncNever leaves fsync to rotations, checkpoints and Close. For
	// benchmarking the no-durability floor; a crash loses the OS-buffered
	// tail.
	SyncNever
)

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncGroup:
		return "group"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("mode%d", int(m))
}

// Options tune the log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 1 MiB).
	SegmentBytes int64
	// Mode is the append-time fsync policy (default SyncAlways).
	Mode SyncMode
	// GroupBytes is the SyncGroup threshold (default 64 KiB).
	GroupBytes int64
	// KeepCheckpoints bounds checkpoint-file retention: the newest N
	// checkpoint files survive a new checkpoint (default 2, minimum 1).
	KeepCheckpoints int
	// FS is the write-path filesystem (default the process filesystem).
	FS FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.GroupBytes <= 0 {
		o.GroupBytes = 64 << 10
	}
	if o.KeepCheckpoints < 1 {
		o.KeepCheckpoints = 2
	}
	if o.FS == nil {
		o.FS = OSFS()
	}
	return o
}

// Log is an open write-ahead log directory. Appends are serialized by an
// internal mutex; a write or fsync failure is sticky — every later
// append returns it, because a log that may have lost a record must not
// acknowledge new ones.
type Log struct {
	mu   sync.Mutex
	dir  string
	opts Options

	active     File
	activeName string
	activeSize int64
	sealed     []string // sealed segment file names, oldest first

	nextLSN   uint64
	appended  uint64 // records appended by this Log
	unsynced  int64  // bytes appended since the last fsync
	ckptLSN   uint64 // newest checkpoint's LSN
	ckptCount int    // checkpoints taken by this Log
	err       error  // sticky write failure

	// lastSegs tracks the relation segments referenced by the newest
	// checkpoint, keyed by db+"\x00"+rel. A relation whose set pointer
	// and version are unchanged since then is not rewritten by the next
	// checkpoint — its manifest references the existing segment file.
	// Holding the set pointer keeps the old set alive, so a recycled
	// allocation can never alias a stale (pointer, version) pair. Open
	// leaves the map empty: the first checkpoint after a restart rewrites
	// every relation.
	lastSegs map[string]*segRef

	// Last-checkpoint byte accounting (see Status): what the incremental
	// checkpoint actually wrote vs. what a full snapshot would occupy.
	ckptWroteBytes  int64 // manifest + newly written segment bytes
	ckptTotalBytes  int64 // manifest + every referenced segment's bytes
	ckptSegsWritten int
	ckptSegsReused  int

	// Native instrumentation, surfaced through Status even when no
	// metrics registry is attached.
	unsyncedRecs   uint64 // records appended since the last fsync
	fsyncs         uint64
	fsyncNanos     int64
	bytesAppended  int64 // record bytes appended (excluding headers)
	recoveryNS     int64 // Open's directory scan + tail decode
	replayNS       int64 // caller-reported logical replay (NoteReplay)
	truncatedTails uint64

	m *logMetrics // nil until SetMetrics
}

// logMetrics are the registry instruments the log feeds when a metrics
// registry is attached. All obs types are nil-safe, so a zero value
// works too.
type logMetrics struct {
	fsyncCount *obs.Counter
	fsyncLat   [3]*obs.Histogram // indexed by SyncMode at sync time
	batchRecs  *obs.Histogram    // group-commit batch size (records per fsync)
	appendB    *obs.Counter
	lsn        *obs.Gauge
	segments   *obs.Gauge
	ckptLag    *obs.Gauge // records appended since the last checkpoint
	ckptCount  *obs.Counter
	ckptLat    *obs.Histogram
	replay     *obs.Gauge // recovery scan + replay duration, ns
	truncated  *obs.Counter
}

// SetMetrics attaches a metrics registry: fsync latency split by sync
// policy, group-commit batch sizes, append volume, live LSN / segment /
// checkpoint-lag gauges, and recovery counters. Idempotent per registry;
// current state is pushed immediately so gauges are live from attach.
func (l *Log) SetMetrics(r *obs.Registry) {
	if l == nil || r == nil {
		return
	}
	m := &logMetrics{
		fsyncCount: r.Counter("wal.fsync.count"),
		batchRecs:  r.CountHistogram("wal.fsync.batch_records"),
		appendB:    r.Counter("wal.append.bytes"),
		lsn:        r.Gauge("wal.lsn"),
		segments:   r.Gauge("wal.segments"),
		ckptLag:    r.Gauge("wal.checkpoint.lag_records"),
		ckptCount:  r.Counter("wal.checkpoint.count"),
		ckptLat:    r.Histogram("wal.checkpoint.latency"),
		replay:     r.Gauge("wal.recovery.replay_ns"),
		truncated:  r.Counter("wal.recovery.truncated_tails"),
	}
	for mode := SyncAlways; mode <= SyncNever; mode++ {
		m.fsyncLat[mode] = r.Histogram("wal.fsync.latency." + mode.String())
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.m = m
	m.appendB.Add(uint64(l.bytesAppended))
	m.fsyncCount.Add(l.fsyncs)
	m.truncated.Add(l.truncatedTails)
	m.replay.Set(l.recoveryNS + l.replayNS)
	l.gaugesLocked()
}

// gaugesLocked refreshes the live gauges; callers hold l.mu.
func (l *Log) gaugesLocked() {
	if l.m == nil {
		return
	}
	l.m.lsn.Set(int64(l.nextLSN - 1))
	segs := int64(len(l.sealed))
	if l.active != nil {
		segs++
	}
	l.m.segments.Set(segs)
	l.m.ckptLag.Set(int64(l.nextLSN - 1 - l.ckptLSN))
}

// NoteReplay records the caller's logical replay duration (the redo pass
// over the recovered tail) so recovery cost is visible end to end.
func (l *Log) NoteReplay(d time.Duration) {
	if l == nil || d < 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.replayNS += int64(d)
	if l.m != nil {
		l.m.replay.Set(l.recoveryNS + l.replayNS)
	}
}

// Recovered is what Open reconstructed from the directory.
type Recovered struct {
	// CheckpointLSN is the newest good checkpoint's LSN (0 = none).
	CheckpointLSN uint64
	// Universe is the checkpointed universe (nil without a checkpoint).
	Universe *object.Tuple
	// Rules and Clauses are the checkpointed registration sources.
	Rules   []string
	Clauses []string
	// Tail holds the records after the checkpoint, in LSN order, ending
	// at the log's end or at the first corruption.
	Tail []Record
	// Truncated reports that a torn or corrupt trailing record was cut
	// off (the expected shape of a crash mid-append).
	Truncated bool
	// TruncatedSegment names the segment that was repaired.
	TruncatedSegment string
	// SkippedCheckpoints counts corrupt checkpoint files passed over on
	// the way to a good one.
	SkippedCheckpoints int
}

// Open opens (creating if needed) the log directory, recovers its
// contents, repairs any torn tail, and readies the log for appending at
// the next LSN. The returned Recovered carries everything the caller
// needs to rebuild in-memory state: checkpoint universe + rule/clause
// sources, then the tail records to replay.
func Open(dir string, opts Options) (*Log, *Recovered, error) {
	start := time.Now()
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	names, err := listDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: list dir: %w", err)
	}
	rec := &Recovered{}
	l := &Log{dir: dir, opts: opts, nextLSN: 1}

	// Newest good checkpoint wins; corrupt ones are skipped, not fatal —
	// a crash mid-checkpoint must not strand the directory.
	var ckpts []string
	for _, name := range names {
		if strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".ckpt") {
			ckpts = append(ckpts, name)
		}
	}
	sort.Strings(ckpts)
	for i := len(ckpts) - 1; i >= 0; i-- {
		ck, err := readCheckpoint(filepath.Join(dir, ckpts[i]))
		if err != nil {
			rec.SkippedCheckpoints++
			continue
		}
		rec.CheckpointLSN = ck.LSN
		rec.Universe = ck.universe
		rec.Rules = ck.Rules
		rec.Clauses = ck.Clauses
		l.ckptLSN = ck.LSN
		l.nextLSN = ck.LSN + 1
		break
	}

	// Replay segments in firstLSN order, keeping records after the
	// checkpoint. Contiguity is enforced: the first gap, torn record or
	// checksum failure ends the recovered prefix; the torn segment is
	// truncated at the last good record and later segments are removed,
	// so the directory converges to exactly the recovered state.
	type seg struct {
		name     string
		firstLSN uint64
	}
	var segs []seg
	for _, name := range names {
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		var first uint64
		if _, err := fmt.Sscanf(name, "wal-%016x.seg", &first); err != nil {
			continue
		}
		segs = append(segs, seg{name, first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	stopped := false
	for i, s := range segs {
		path := filepath.Join(dir, s.name)
		if stopped {
			// Past a torn point: these records are unreachable; drop them
			// so repeat recoveries agree.
			os.Remove(path)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: read segment %s: %w", s.name, err)
		}
		recs, ends, headerOK := parseSegment(data, s.firstLSN)
		// keepEnd is the byte offset up to which the segment's contents
		// survive: cleanly decoded records that are either folded into the
		// checkpoint (stale) or appended to the tail. torn marks anything
		// after it — a partial trailing record, a checksum failure, or an
		// LSN gap — for physical truncation.
		keepEnd := segHeaderLen
		torn := !headerOK
		for idx, r := range recs {
			if r.LSN <= l.ckptLSN {
				keepEnd = ends[idx]
				continue
			}
			if r.LSN != l.nextLSN {
				torn = true
				break
			}
			rec.Tail = append(rec.Tail, r)
			l.nextLSN = r.LSN + 1
			keepEnd = ends[idx]
		}
		if !torn && keepEnd < len(data) {
			torn = true // trailing bytes that failed to decode
		}
		if torn {
			stopped = true
			rec.Truncated = true
			rec.TruncatedSegment = s.name
			if !headerOK {
				// Nothing in the file is trustworthy; repeat recoveries must
				// not keep re-reporting it.
				os.Remove(path)
				continue
			}
			if keepEnd < len(data) {
				os.Truncate(path, int64(keepEnd))
			}
		}
		if keepEnd <= segHeaderLen && len(recs) == 0 && i < len(segs)-1 {
			// Header-only segment in the middle: a crash right after a
			// rotation; nothing to keep.
			os.Remove(path)
			continue
		}
		l.sealed = append(l.sealed, s.name)
	}

	if err := l.startSegment(); err != nil {
		return nil, nil, err
	}
	if rec.Truncated {
		l.truncatedTails++
	}
	l.recoveryNS = int64(time.Since(start))
	return l, rec, nil
}

// parseSegment decodes a segment's cleanly readable prefix. ends[i] is
// the byte offset just past record i; headerOK reports whether the
// segment header (magic + first LSN matching the file name) is valid.
// Decoding stops silently at the first torn record — the caller decides
// what to truncate from the offsets.
func parseSegment(data []byte, firstLSN uint64) (recs []Record, ends []int, headerOK bool) {
	if len(data) < segHeaderLen || string(data[:len(segMagic)]) != segMagic {
		return nil, nil, false
	}
	if binary.LittleEndian.Uint64(data[len(segMagic):segHeaderLen]) != firstLSN {
		return nil, nil, false
	}
	off := segHeaderLen
	for off < len(data) {
		r, n, err := decodeRecord(data[off:])
		if err != nil {
			break
		}
		recs = append(recs, r)
		off += n
		ends = append(ends, off)
	}
	return recs, ends, true
}

// startSegment seals the active segment (if any) and opens a fresh one
// whose first LSN is the log's next LSN.
func (l *Log) startSegment() error {
	if l.active != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.active.Close(); err != nil {
			return l.fail(fmt.Errorf("wal: close segment: %w", err))
		}
		l.sealed = append(l.sealed, l.activeName)
	}
	name := fmt.Sprintf("wal-%016x.seg", l.nextLSN)
	f, err := l.opts.FS.Create(filepath.Join(l.dir, name))
	if err != nil {
		return l.fail(fmt.Errorf("wal: create segment: %w", err))
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:], segMagic)
	binary.LittleEndian.PutUint64(hdr[len(segMagic):], l.nextLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return l.fail(fmt.Errorf("wal: write segment header: %w", err))
	}
	l.active, l.activeName, l.activeSize = f, name, int64(segHeaderLen)
	l.unsynced += int64(segHeaderLen)
	if err := l.opts.FS.SyncDir(l.dir); err != nil {
		return l.fail(fmt.Errorf("wal: sync dir: %w", err))
	}
	if l.opts.Mode == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// fail records a sticky failure; every later append reports it.
func (l *Log) fail(err error) error {
	if l.err == nil {
		l.err = err
	}
	return err
}

// Err returns the sticky write failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Append commits one record: it is stamped with the next LSN, written to
// the active segment, and made durable per the sync mode. The assigned
// LSN is returned.
func (l *Log) Append(typ byte, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.activeSize > int64(segHeaderLen) && l.activeSize >= l.opts.SegmentBytes {
		if err := l.startSegment(); err != nil {
			return 0, err
		}
	}
	lsn := l.nextLSN
	buf := appendRecord(nil, lsn, typ, payload)
	n, err := l.active.Write(buf)
	if err != nil {
		return 0, l.fail(fmt.Errorf("wal: append record %d: %w", lsn, err))
	}
	if n != len(buf) {
		return 0, l.fail(fmt.Errorf("wal: short append of record %d: %d of %d bytes", lsn, n, len(buf)))
	}
	l.activeSize += int64(len(buf))
	l.unsynced += int64(len(buf))
	l.nextLSN++
	l.appended++
	l.unsyncedRecs++
	l.bytesAppended += int64(len(buf))
	if l.m != nil {
		l.m.appendB.Add(uint64(len(buf)))
		l.gaugesLocked()
	}
	switch l.opts.Mode {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncGroup:
		if l.unsynced >= l.opts.GroupBytes {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	return lsn, nil
}

// Sync forces any buffered records to disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.unsynced == 0 || l.active == nil {
		return nil
	}
	start := time.Now()
	if err := l.active.Sync(); err != nil {
		return l.fail(fmt.Errorf("wal: fsync: %w", err))
	}
	d := time.Since(start)
	l.fsyncs++
	l.fsyncNanos += int64(d)
	if l.m != nil {
		l.m.fsyncCount.Inc()
		mode := l.opts.Mode
		if mode < SyncAlways || mode > SyncNever {
			mode = SyncAlways
		}
		l.m.fsyncLat[mode].Observe(d)
		if l.unsyncedRecs > 0 {
			l.m.batchRecs.ObserveN(int64(l.unsyncedRecs))
		}
	}
	l.unsynced = 0
	l.unsyncedRecs = 0
	return nil
}

// SetMode changes the append-time fsync policy. Tightening to SyncAlways
// syncs any deferred records immediately.
func (l *Log) SetMode(m SyncMode) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.opts.Mode = m
	if m == SyncAlways && l.err == nil {
		return l.syncLocked()
	}
	return l.err
}

// Mode returns the current fsync policy.
func (l *Log) Mode() SyncMode {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.opts.Mode
}

// checkpoint is the on-disk checkpoint manifest: a version, a checksum
// over the body, and the body itself — the covered LSN, the rule and
// clause sources, and the universe. Version 1 stores the whole universe
// in Snapshot. Version 2 is incremental: Snapshot holds only the
// universe *skeleton* (databases and relation attributes, with every
// relation set replaced by an empty placeholder) and Segments lists one
// relation-segment file per relation; recovery composes the two.
type checkpoint struct {
	Format   string          `json:"format"`
	Version  int             `json:"version"`
	Checksum string          `json:"checksum"`
	LSN      uint64          `json:"lsn"`
	Rules    []string        `json:"rules,omitempty"`
	Clauses  []string        `json:"clauses,omitempty"`
	Snapshot json.RawMessage `json:"snapshot"`
	Segments []ckptSeg       `json:"segments,omitempty"`

	universe *object.Tuple `json:"-"`
}

// ckptSeg is one manifest entry referencing a relation-segment file. An
// unchanged relation's entry points at the file written by an earlier
// checkpoint — that reference sharing is what makes checkpoints
// incremental.
type ckptSeg struct {
	DB       string `json:"db"`
	Rel      string `json:"rel"`
	File     string `json:"file"`
	Count    int    `json:"count"`
	Checksum string `json:"checksum"`
}

// segRef is the in-memory side of a ckptSeg: it remembers which live set
// (pointer + mutation version) a segment file captured, so the next
// checkpoint can prove the relation unchanged and reuse the file.
type segRef struct {
	ptr      *object.Set
	version  uint64
	file     string
	count    int
	bytes    int64
	checksum string
}

// ckseg is a relation-segment file: one relation's element set as a
// tagged-JSON object.Set, checksummed independently of any manifest so a
// half-written or recycled file can never be composed into a recovery.
type ckseg struct {
	Format   string          `json:"format"`
	Checksum string          `json:"checksum"`
	DB       string          `json:"db"`
	Rel      string          `json:"rel"`
	Count    int             `json:"count"`
	Set      json.RawMessage `json:"set"`
}

const (
	ckptFormat      = "idlwal-ckpt"
	ckptVersionFull = 1 // whole universe inline (still readable)
	ckptVersionIncr = 2 // skeleton + relation segments
	cksegFormat     = "idlwal-ckseg"
)

func ckptChecksum(lsn uint64, rules, clauses []string, snapshot []byte) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\n", lsn)
	for _, r := range rules {
		fmt.Fprintf(h, "r%s\n", r)
	}
	for _, c := range clauses {
		fmt.Fprintf(h, "c%s\n", c)
	}
	h.Write(snapshot)
	return fmt.Sprintf("%016x", h.Sum64())
}

// ckptChecksumV2 extends the v1 checksum with the segment references, so
// a manifest paired with the wrong segment file fails validation even
// before the segment's own checksum is consulted.
func ckptChecksumV2(lsn uint64, rules, clauses []string, skeleton []byte, segs []ckptSeg) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\n", lsn)
	for _, r := range rules {
		fmt.Fprintf(h, "r%s\n", r)
	}
	for _, c := range clauses {
		fmt.Fprintf(h, "c%s\n", c)
	}
	h.Write(skeleton)
	for _, s := range segs {
		fmt.Fprintf(h, "s%s\x00%s\x00%s\x00%d\x00%s\n", s.DB, s.Rel, s.File, s.Count, s.Checksum)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func segChecksum(db, rel string, set []byte) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\n", db, rel)
	h.Write(set)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Checkpoint snapshots the given state as covering every record up to
// the current LSN, installs it atomically, rotates the active segment,
// and drops the sealed segments and stale checkpoints the new one makes
// unnecessary. It returns the checkpoint's covered LSN.
//
// Checkpoints are incremental: each relation set is written to its own
// rel-*.ckseg file, and a relation whose set pointer and mutation
// version are unchanged since the previous checkpoint keeps its existing
// segment file — the new manifest just references it. The manifest
// itself carries only the universe skeleton, so a checkpoint after a
// single-relation update writes that one relation plus a small manifest
// instead of the whole universe. The caller must keep the universe
// unmutated for the duration of the call (the engine serializes
// checkpoints with mutations on its commit path).
func (l *Log) Checkpoint(universe *object.Tuple, rules, clauses []string) (uint64, error) {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	// Everything appended so far must be durable before the checkpoint
	// can claim to cover it.
	if err := l.syncLocked(); err != nil {
		return 0, err
	}
	lsn := l.nextLSN - 1

	// Walk databases depth-2: write a segment per changed relation, reuse
	// references for unchanged ones, and build the skeleton (relation
	// sets replaced by empty placeholders, attribute order preserved).
	skel := object.NewTuple()
	var segs []ckptSeg
	newRefs := make(map[string]*segRef)
	var wrote, total int64
	written, reused := 0, 0
	segIdx := 0
	var segErr error
	universe.Each(func(db string, v object.Object) bool {
		dt, ok := v.(*object.Tuple)
		if !ok {
			skel.Put(db, v)
			return true
		}
		nd := object.NewTuple()
		dt.Each(func(rel string, rv object.Object) bool {
			s, ok := rv.(*object.Set)
			if !ok {
				nd.Put(rel, rv)
				return true
			}
			nd.Put(rel, object.NewSet())
			key := db + "\x00" + rel
			if ref := l.lastSegs[key]; ref != nil && ref.ptr == s && ref.version == s.Version() {
				newRefs[key] = ref
				segs = append(segs, ckptSeg{DB: db, Rel: rel, File: ref.file, Count: ref.count, Checksum: ref.checksum})
				total += ref.bytes
				reused++
				return true
			}
			file := fmt.Sprintf("rel-%016x-%04d.ckseg", lsn, segIdx)
			segIdx++
			n, sum, err := l.writeRelSegment(file, db, rel, s)
			if err != nil {
				segErr = err
				return false
			}
			ref := &segRef{ptr: s, version: s.Version(), file: file, count: s.Len(), bytes: n, checksum: sum}
			newRefs[key] = ref
			segs = append(segs, ckptSeg{DB: db, Rel: rel, File: file, Count: ref.count, Checksum: sum})
			wrote += n
			total += n
			written++
			return true
		})
		skel.Put(db, nd)
		return segErr == nil
	})
	if segErr != nil {
		return 0, l.fail(segErr)
	}
	// Segment files must be durable (contents and directory entries)
	// before any manifest that references them can be installed.
	if written > 0 {
		if err := l.opts.FS.SyncDir(l.dir); err != nil {
			return 0, l.fail(fmt.Errorf("wal: sync dir: %w", err))
		}
	}

	var snap bytes.Buffer
	if err := storage.Save(&snap, skel); err != nil {
		return 0, fmt.Errorf("wal: checkpoint skeleton: %w", err)
	}
	// json.Marshal compacts embedded RawMessage, so the checksum must be
	// computed over the compacted form or it breaks on round-trip.
	var compact bytes.Buffer
	if err := json.Compact(&compact, snap.Bytes()); err != nil {
		return 0, fmt.Errorf("wal: compact checkpoint skeleton: %w", err)
	}
	ck := checkpoint{
		Format:   ckptFormat,
		Version:  ckptVersionIncr,
		Checksum: ckptChecksumV2(lsn, rules, clauses, compact.Bytes(), segs),
		LSN:      lsn,
		Rules:    rules,
		Clauses:  clauses,
		Snapshot: compact.Bytes(),
		Segments: segs,
	}
	raw, err := json.Marshal(&ck)
	if err != nil {
		return 0, fmt.Errorf("wal: encode checkpoint: %w", err)
	}
	name := fmt.Sprintf("ckpt-%016x.ckpt", lsn)
	tmp := filepath.Join(l.dir, fmt.Sprintf(".ckpt-%016x.tmp", lsn))
	f, err := l.opts.FS.Create(tmp)
	if err != nil {
		return 0, l.fail(fmt.Errorf("wal: create checkpoint: %w", err))
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		l.opts.FS.Remove(tmp)
		return 0, l.fail(fmt.Errorf("wal: write checkpoint: %w", err))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		l.opts.FS.Remove(tmp)
		return 0, l.fail(fmt.Errorf("wal: sync checkpoint: %w", err))
	}
	if err := f.Close(); err != nil {
		l.opts.FS.Remove(tmp)
		return 0, l.fail(fmt.Errorf("wal: close checkpoint: %w", err))
	}
	if err := l.opts.FS.Rename(tmp, filepath.Join(l.dir, name)); err != nil {
		l.opts.FS.Remove(tmp)
		return 0, l.fail(fmt.Errorf("wal: install checkpoint: %w", err))
	}
	if err := l.opts.FS.SyncDir(l.dir); err != nil {
		return 0, l.fail(fmt.Errorf("wal: sync dir: %w", err))
	}
	l.ckptLSN = lsn
	l.ckptCount++
	l.lastSegs = newRefs
	l.ckptWroteBytes = wrote + int64(len(raw))
	l.ckptTotalBytes = total + int64(len(raw))
	l.ckptSegsWritten = written
	l.ckptSegsReused = reused
	// The tail restarts in a fresh segment; every sealed segment is now
	// covered by the checkpoint and can go.
	if err := l.startSegment(); err != nil {
		return 0, err
	}
	for _, s := range l.sealed {
		l.opts.FS.Remove(filepath.Join(l.dir, s))
	}
	l.sealed = nil
	// Bounded checkpoint retention: newest KeepCheckpoints survive. A
	// relation segment survives as long as any surviving manifest
	// references it; the rest (including orphans from crashed
	// checkpoints) are garbage-collected.
	if names, err := listDir(l.dir); err == nil {
		var ckpts []string
		for _, n := range names {
			if strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".ckpt") {
				ckpts = append(ckpts, n)
			}
		}
		sort.Strings(ckpts)
		for len(ckpts) > l.opts.KeepCheckpoints {
			l.opts.FS.Remove(filepath.Join(l.dir, ckpts[0]))
			ckpts = ckpts[1:]
		}
		l.collectSegmentsLocked(names, ckpts)
	}
	// The marker makes the checkpoint visible in the record stream.
	if _, err := l.appendLocked(TypeCheckpoint, []byte(name)); err != nil {
		return 0, err
	}
	if l.m != nil {
		l.m.ckptCount.Inc()
		l.m.ckptLat.Observe(time.Since(start))
		l.gaugesLocked()
	}
	return lsn, nil
}

// writeRelSegment writes one relation's segment file durably and returns
// its size and content checksum.
func (l *Log) writeRelSegment(name, db, rel string, s *object.Set) (int64, string, error) {
	raw, err := object.MarshalJSON(s)
	if err != nil {
		return 0, "", fmt.Errorf("wal: encode relation %s.%s: %w", db, rel, err)
	}
	sum := segChecksum(db, rel, raw)
	env := ckseg{Format: cksegFormat, Checksum: sum, DB: db, Rel: rel, Count: s.Len(), Set: raw}
	data, err := json.Marshal(&env)
	if err != nil {
		return 0, "", fmt.Errorf("wal: encode segment %s: %w", name, err)
	}
	f, err := l.opts.FS.Create(filepath.Join(l.dir, name))
	if err != nil {
		return 0, "", fmt.Errorf("wal: create segment %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return 0, "", fmt.Errorf("wal: write segment %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, "", fmt.Errorf("wal: sync segment %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return 0, "", fmt.Errorf("wal: close segment %s: %w", name, err)
	}
	return int64(len(data)), sum, nil
}

// collectSegmentsLocked removes relation-segment files referenced by no
// surviving checkpoint manifest: segments of pruned checkpoints and
// orphans of crashed ones. A manifest that fails to parse is skipped at
// recovery anyway, so losing its segments changes nothing.
func (l *Log) collectSegmentsLocked(names, ckpts []string) {
	referenced := make(map[string]bool)
	for _, n := range ckpts {
		for _, seg := range manifestSegs(filepath.Join(l.dir, n)) {
			referenced[seg] = true
		}
	}
	for _, n := range names {
		if !strings.HasPrefix(n, "rel-") || !strings.HasSuffix(n, ".ckseg") {
			continue
		}
		if !referenced[n] {
			l.opts.FS.Remove(filepath.Join(l.dir, n))
		}
	}
}

// manifestSegs returns the segment files a checkpoint manifest
// references, without validating checksums; nil if it cannot be parsed.
func manifestSegs(path string) []string {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var ck checkpoint
	if err := json.Unmarshal(raw, &ck); err != nil {
		return nil
	}
	out := make([]string, 0, len(ck.Segments))
	for _, s := range ck.Segments {
		out = append(out, s.File)
	}
	return out
}

// appendLocked is Append without re-taking the mutex.
func (l *Log) appendLocked(typ byte, payload []byte) (uint64, error) {
	l.mu.Unlock()
	defer l.mu.Lock()
	return l.Append(typ, payload)
}

// readCheckpoint loads and validates one checkpoint file. Version 1
// manifests hold the whole universe inline; version 2 manifests are
// composed from the skeleton plus each referenced relation-segment file,
// and any missing, torn, or mismatched segment fails the whole
// checkpoint — Open then falls back to an older one.
func readCheckpoint(path string) (*checkpoint, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ck checkpoint
	if err := json.Unmarshal(raw, &ck); err != nil {
		return nil, fmt.Errorf("wal: %s: malformed checkpoint: %w", filepath.Base(path), err)
	}
	if ck.Format != ckptFormat || (ck.Version != ckptVersionFull && ck.Version != ckptVersionIncr) {
		return nil, fmt.Errorf("wal: %s: unsupported checkpoint format %q v%d", filepath.Base(path), ck.Format, ck.Version)
	}
	switch ck.Version {
	case ckptVersionFull:
		if got := ckptChecksum(ck.LSN, ck.Rules, ck.Clauses, ck.Snapshot); got != ck.Checksum {
			return nil, fmt.Errorf("wal: %s: checkpoint corrupt: checksum %s != %s", filepath.Base(path), got, ck.Checksum)
		}
	case ckptVersionIncr:
		if got := ckptChecksumV2(ck.LSN, ck.Rules, ck.Clauses, ck.Snapshot, ck.Segments); got != ck.Checksum {
			return nil, fmt.Errorf("wal: %s: checkpoint corrupt: checksum %s != %s", filepath.Base(path), got, ck.Checksum)
		}
	}
	u, err := storage.Load(bytes.NewReader(ck.Snapshot))
	if err != nil {
		return nil, fmt.Errorf("wal: %s: %w", filepath.Base(path), err)
	}
	if ck.Version == ckptVersionIncr {
		dir := filepath.Dir(path)
		for _, seg := range ck.Segments {
			s, err := readRelSegment(filepath.Join(dir, seg.File), seg)
			if err != nil {
				return nil, fmt.Errorf("wal: %s: %w", filepath.Base(path), err)
			}
			dv, ok := u.Get(seg.DB)
			if !ok {
				return nil, fmt.Errorf("wal: %s: segment %s: database %q missing from skeleton", filepath.Base(path), seg.File, seg.DB)
			}
			dt, ok := dv.(*object.Tuple)
			if !ok || !dt.Has(seg.Rel) {
				return nil, fmt.Errorf("wal: %s: segment %s: relation %s.%s missing from skeleton", filepath.Base(path), seg.File, seg.DB, seg.Rel)
			}
			dt.Put(seg.Rel, s)
		}
	}
	ck.universe = u
	return &ck, nil
}

// readRelSegment loads one relation-segment file and verifies it against
// its manifest entry.
func readRelSegment(path string, want ckptSeg) (*object.Set, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("segment %s: %w", filepath.Base(path), err)
	}
	var env ckseg
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, fmt.Errorf("segment %s: malformed: %w", filepath.Base(path), err)
	}
	if env.Format != cksegFormat {
		return nil, fmt.Errorf("segment %s: unsupported format %q", filepath.Base(path), env.Format)
	}
	if env.DB != want.DB || env.Rel != want.Rel {
		return nil, fmt.Errorf("segment %s: holds %s.%s, manifest expects %s.%s", filepath.Base(path), env.DB, env.Rel, want.DB, want.Rel)
	}
	if got := segChecksum(env.DB, env.Rel, env.Set); got != env.Checksum || got != want.Checksum {
		return nil, fmt.Errorf("segment %s: corrupt: checksum %s != %s", filepath.Base(path), got, want.Checksum)
	}
	o, err := object.UnmarshalJSON(env.Set)
	if err != nil {
		return nil, fmt.Errorf("segment %s: decode: %w", filepath.Base(path), err)
	}
	s, ok := o.(*object.Set)
	if !ok {
		return nil, fmt.Errorf("segment %s: payload is %T, not a set", filepath.Base(path), o)
	}
	if s.Len() != want.Count {
		return nil, fmt.Errorf("segment %s: %d elements, manifest expects %d", filepath.Base(path), s.Len(), want.Count)
	}
	return s, nil
}

// Status describes the log for status commands and banners.
type Status struct {
	Dir           string
	Mode          SyncMode
	NextLSN       uint64
	Appended      uint64 // records appended by this process
	Segments      int    // sealed + active
	SegmentBytes  int64  // bytes in the active segment
	CheckpointLSN uint64
	Checkpoints   int // checkpoints taken by this process
	Err           error

	// Durability instrumentation (native counters; live even without a
	// metrics registry).
	CheckpointLag  uint64 // records appended since the last checkpoint
	Fsyncs         uint64
	FsyncNanos     int64 // total time spent in fsync
	BytesAppended  int64 // record bytes appended by this process
	RecoveryNS     int64 // Open's scan + tail decode
	ReplayNS       int64 // caller-reported logical replay (NoteReplay)
	TruncatedTails uint64

	// Incremental-checkpoint accounting for the newest checkpoint this
	// process took: bytes actually written (manifest + new segments) vs.
	// the full footprint (manifest + every referenced segment), and the
	// segment reuse split. WroteBytes/TotalBytes is the incremental
	// ratio.
	CheckpointWroteBytes  int64
	CheckpointTotalBytes  int64
	CheckpointSegsWritten int
	CheckpointSegsReused  int
}

func (s Status) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wal: dir=%s mode=%s next-lsn=%d appended=%d segments=%d checkpoint-lsn=%d",
		s.Dir, s.Mode, s.NextLSN, s.Appended, s.Segments, s.CheckpointLSN)
	if s.Err != nil {
		fmt.Fprintf(&b, " ERROR=%v", s.Err)
	}
	return b.String()
}

// Status snapshots the log's state.
func (l *Log) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs := len(l.sealed)
	if l.active != nil {
		segs++
	}
	return Status{
		Dir:            l.dir,
		Mode:           l.opts.Mode,
		NextLSN:        l.nextLSN,
		Appended:       l.appended,
		Segments:       segs,
		SegmentBytes:   l.activeSize,
		CheckpointLSN:  l.ckptLSN,
		Checkpoints:    l.ckptCount,
		Err:            l.err,
		CheckpointLag:  l.nextLSN - 1 - l.ckptLSN,
		Fsyncs:         l.fsyncs,
		FsyncNanos:     l.fsyncNanos,
		BytesAppended:  l.bytesAppended,
		RecoveryNS:     l.recoveryNS,
		ReplayNS:       l.replayNS,
		TruncatedTails: l.truncatedTails,

		CheckpointWroteBytes:  l.ckptWroteBytes,
		CheckpointTotalBytes:  l.ckptTotalBytes,
		CheckpointSegsWritten: l.ckptSegsWritten,
		CheckpointSegsReused:  l.ckptSegsReused,
	}
}

// Close syncs and closes the active segment. The sticky write failure,
// if any, is returned.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return l.err
	}
	serr := l.syncLocked()
	cerr := l.active.Close()
	l.active = nil
	if l.err != nil {
		return l.err
	}
	if serr != nil {
		return serr
	}
	return cerr
}
