// Package wal is the engine's durability layer: an append-only,
// segmented write-ahead log of committed logical mutations — update
// requests, DDL, rule and clause registrations, federated member
// snapshot installs; the same event set that bumps the catalog epoch —
// plus incremental checkpoints and redo recovery.
//
// Records are length-prefixed, CRC-checksummed and LSN-stamped
// (record.go). The log is redo-only: mutations apply in memory first and
// append on commit, so recovery is "load the newest good checkpoint,
// replay the tail". A crash mid-append leaves a torn trailing record;
// recovery truncates the log at the first checksum failure and reports
// it. Checkpoints snapshot the universe through the existing
// storage.Save envelope plus the registered rule and clause sources, and
// sealed segments older than a checkpoint are deleted — the same
// bounded-retention discipline the federation layer applies to history.
//
// All writes go through the FS seam (fs.go) so crash-point fault
// injection (faults.go) can short-write, fail fsync, or kill the "disk"
// at the Nth operation; the recovery tests in the root package drive a
// full crash grid against a prefix-consistency oracle.
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"idl/internal/object"
	"idl/internal/obs"
	"idl/internal/storage"
)

// segMagic starts every segment file, followed by the segment's first
// LSN as 8 little-endian bytes.
const segMagic = "IDLWAL1\n"

// segHeaderLen is the segment header size.
const segHeaderLen = len(segMagic) + 8

// SyncMode is the append-time durability policy.
type SyncMode int

const (
	// SyncAlways fsyncs after every append: an acknowledged commit is on
	// disk. The durable default.
	SyncAlways SyncMode = iota
	// SyncGroup fsyncs when GroupBytes of unsynced records accumulate
	// (and on rotate, checkpoint and close) — group commit: the fsync
	// cost amortizes over the batch, at the price of losing the unsynced
	// suffix in a crash.
	SyncGroup
	// SyncNever leaves fsync to rotations, checkpoints and Close. For
	// benchmarking the no-durability floor; a crash loses the OS-buffered
	// tail.
	SyncNever
)

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncGroup:
		return "group"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("mode%d", int(m))
}

// Options tune the log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 1 MiB).
	SegmentBytes int64
	// Mode is the append-time fsync policy (default SyncAlways).
	Mode SyncMode
	// GroupBytes is the SyncGroup threshold (default 64 KiB).
	GroupBytes int64
	// KeepCheckpoints bounds checkpoint-file retention: the newest N
	// checkpoint files survive a new checkpoint (default 2, minimum 1).
	KeepCheckpoints int
	// FS is the write-path filesystem (default the process filesystem).
	FS FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.GroupBytes <= 0 {
		o.GroupBytes = 64 << 10
	}
	if o.KeepCheckpoints < 1 {
		o.KeepCheckpoints = 2
	}
	if o.FS == nil {
		o.FS = OSFS()
	}
	return o
}

// Log is an open write-ahead log directory. Appends are serialized by an
// internal mutex; a write or fsync failure is sticky — every later
// append returns it, because a log that may have lost a record must not
// acknowledge new ones.
type Log struct {
	mu   sync.Mutex
	dir  string
	opts Options

	active     File
	activeName string
	activeSize int64
	sealed     []string // sealed segment file names, oldest first

	nextLSN   uint64
	appended  uint64 // records appended by this Log
	unsynced  int64  // bytes appended since the last fsync
	ckptLSN   uint64 // newest checkpoint's LSN
	ckptCount int    // checkpoints taken by this Log
	err       error  // sticky write failure

	// Native instrumentation, surfaced through Status even when no
	// metrics registry is attached.
	unsyncedRecs   uint64 // records appended since the last fsync
	fsyncs         uint64
	fsyncNanos     int64
	bytesAppended  int64 // record bytes appended (excluding headers)
	recoveryNS     int64 // Open's directory scan + tail decode
	replayNS       int64 // caller-reported logical replay (NoteReplay)
	truncatedTails uint64

	m *logMetrics // nil until SetMetrics
}

// logMetrics are the registry instruments the log feeds when a metrics
// registry is attached. All obs types are nil-safe, so a zero value
// works too.
type logMetrics struct {
	fsyncCount *obs.Counter
	fsyncLat   [3]*obs.Histogram // indexed by SyncMode at sync time
	batchRecs  *obs.Histogram    // group-commit batch size (records per fsync)
	appendB    *obs.Counter
	lsn        *obs.Gauge
	segments   *obs.Gauge
	ckptLag    *obs.Gauge // records appended since the last checkpoint
	ckptCount  *obs.Counter
	ckptLat    *obs.Histogram
	replay     *obs.Gauge // recovery scan + replay duration, ns
	truncated  *obs.Counter
}

// SetMetrics attaches a metrics registry: fsync latency split by sync
// policy, group-commit batch sizes, append volume, live LSN / segment /
// checkpoint-lag gauges, and recovery counters. Idempotent per registry;
// current state is pushed immediately so gauges are live from attach.
func (l *Log) SetMetrics(r *obs.Registry) {
	if l == nil || r == nil {
		return
	}
	m := &logMetrics{
		fsyncCount: r.Counter("wal.fsync.count"),
		batchRecs:  r.CountHistogram("wal.fsync.batch_records"),
		appendB:    r.Counter("wal.append.bytes"),
		lsn:        r.Gauge("wal.lsn"),
		segments:   r.Gauge("wal.segments"),
		ckptLag:    r.Gauge("wal.checkpoint.lag_records"),
		ckptCount:  r.Counter("wal.checkpoint.count"),
		ckptLat:    r.Histogram("wal.checkpoint.latency"),
		replay:     r.Gauge("wal.recovery.replay_ns"),
		truncated:  r.Counter("wal.recovery.truncated_tails"),
	}
	for mode := SyncAlways; mode <= SyncNever; mode++ {
		m.fsyncLat[mode] = r.Histogram("wal.fsync.latency." + mode.String())
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.m = m
	m.appendB.Add(uint64(l.bytesAppended))
	m.fsyncCount.Add(l.fsyncs)
	m.truncated.Add(l.truncatedTails)
	m.replay.Set(l.recoveryNS + l.replayNS)
	l.gaugesLocked()
}

// gaugesLocked refreshes the live gauges; callers hold l.mu.
func (l *Log) gaugesLocked() {
	if l.m == nil {
		return
	}
	l.m.lsn.Set(int64(l.nextLSN - 1))
	segs := int64(len(l.sealed))
	if l.active != nil {
		segs++
	}
	l.m.segments.Set(segs)
	l.m.ckptLag.Set(int64(l.nextLSN - 1 - l.ckptLSN))
}

// NoteReplay records the caller's logical replay duration (the redo pass
// over the recovered tail) so recovery cost is visible end to end.
func (l *Log) NoteReplay(d time.Duration) {
	if l == nil || d < 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.replayNS += int64(d)
	if l.m != nil {
		l.m.replay.Set(l.recoveryNS + l.replayNS)
	}
}

// Recovered is what Open reconstructed from the directory.
type Recovered struct {
	// CheckpointLSN is the newest good checkpoint's LSN (0 = none).
	CheckpointLSN uint64
	// Universe is the checkpointed universe (nil without a checkpoint).
	Universe *object.Tuple
	// Rules and Clauses are the checkpointed registration sources.
	Rules   []string
	Clauses []string
	// Tail holds the records after the checkpoint, in LSN order, ending
	// at the log's end or at the first corruption.
	Tail []Record
	// Truncated reports that a torn or corrupt trailing record was cut
	// off (the expected shape of a crash mid-append).
	Truncated bool
	// TruncatedSegment names the segment that was repaired.
	TruncatedSegment string
	// SkippedCheckpoints counts corrupt checkpoint files passed over on
	// the way to a good one.
	SkippedCheckpoints int
}

// Open opens (creating if needed) the log directory, recovers its
// contents, repairs any torn tail, and readies the log for appending at
// the next LSN. The returned Recovered carries everything the caller
// needs to rebuild in-memory state: checkpoint universe + rule/clause
// sources, then the tail records to replay.
func Open(dir string, opts Options) (*Log, *Recovered, error) {
	start := time.Now()
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	names, err := listDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: list dir: %w", err)
	}
	rec := &Recovered{}
	l := &Log{dir: dir, opts: opts, nextLSN: 1}

	// Newest good checkpoint wins; corrupt ones are skipped, not fatal —
	// a crash mid-checkpoint must not strand the directory.
	var ckpts []string
	for _, name := range names {
		if strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".ckpt") {
			ckpts = append(ckpts, name)
		}
	}
	sort.Strings(ckpts)
	for i := len(ckpts) - 1; i >= 0; i-- {
		ck, err := readCheckpoint(filepath.Join(dir, ckpts[i]))
		if err != nil {
			rec.SkippedCheckpoints++
			continue
		}
		rec.CheckpointLSN = ck.LSN
		rec.Universe = ck.universe
		rec.Rules = ck.Rules
		rec.Clauses = ck.Clauses
		l.ckptLSN = ck.LSN
		l.nextLSN = ck.LSN + 1
		break
	}

	// Replay segments in firstLSN order, keeping records after the
	// checkpoint. Contiguity is enforced: the first gap, torn record or
	// checksum failure ends the recovered prefix; the torn segment is
	// truncated at the last good record and later segments are removed,
	// so the directory converges to exactly the recovered state.
	type seg struct {
		name     string
		firstLSN uint64
	}
	var segs []seg
	for _, name := range names {
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		var first uint64
		if _, err := fmt.Sscanf(name, "wal-%016x.seg", &first); err != nil {
			continue
		}
		segs = append(segs, seg{name, first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	stopped := false
	for i, s := range segs {
		path := filepath.Join(dir, s.name)
		if stopped {
			// Past a torn point: these records are unreachable; drop them
			// so repeat recoveries agree.
			os.Remove(path)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: read segment %s: %w", s.name, err)
		}
		recs, ends, headerOK := parseSegment(data, s.firstLSN)
		// keepEnd is the byte offset up to which the segment's contents
		// survive: cleanly decoded records that are either folded into the
		// checkpoint (stale) or appended to the tail. torn marks anything
		// after it — a partial trailing record, a checksum failure, or an
		// LSN gap — for physical truncation.
		keepEnd := segHeaderLen
		torn := !headerOK
		for idx, r := range recs {
			if r.LSN <= l.ckptLSN {
				keepEnd = ends[idx]
				continue
			}
			if r.LSN != l.nextLSN {
				torn = true
				break
			}
			rec.Tail = append(rec.Tail, r)
			l.nextLSN = r.LSN + 1
			keepEnd = ends[idx]
		}
		if !torn && keepEnd < len(data) {
			torn = true // trailing bytes that failed to decode
		}
		if torn {
			stopped = true
			rec.Truncated = true
			rec.TruncatedSegment = s.name
			if !headerOK {
				// Nothing in the file is trustworthy; repeat recoveries must
				// not keep re-reporting it.
				os.Remove(path)
				continue
			}
			if keepEnd < len(data) {
				os.Truncate(path, int64(keepEnd))
			}
		}
		if keepEnd <= segHeaderLen && len(recs) == 0 && i < len(segs)-1 {
			// Header-only segment in the middle: a crash right after a
			// rotation; nothing to keep.
			os.Remove(path)
			continue
		}
		l.sealed = append(l.sealed, s.name)
	}

	if err := l.startSegment(); err != nil {
		return nil, nil, err
	}
	if rec.Truncated {
		l.truncatedTails++
	}
	l.recoveryNS = int64(time.Since(start))
	return l, rec, nil
}

// parseSegment decodes a segment's cleanly readable prefix. ends[i] is
// the byte offset just past record i; headerOK reports whether the
// segment header (magic + first LSN matching the file name) is valid.
// Decoding stops silently at the first torn record — the caller decides
// what to truncate from the offsets.
func parseSegment(data []byte, firstLSN uint64) (recs []Record, ends []int, headerOK bool) {
	if len(data) < segHeaderLen || string(data[:len(segMagic)]) != segMagic {
		return nil, nil, false
	}
	if binary.LittleEndian.Uint64(data[len(segMagic):segHeaderLen]) != firstLSN {
		return nil, nil, false
	}
	off := segHeaderLen
	for off < len(data) {
		r, n, err := decodeRecord(data[off:])
		if err != nil {
			break
		}
		recs = append(recs, r)
		off += n
		ends = append(ends, off)
	}
	return recs, ends, true
}

// startSegment seals the active segment (if any) and opens a fresh one
// whose first LSN is the log's next LSN.
func (l *Log) startSegment() error {
	if l.active != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.active.Close(); err != nil {
			return l.fail(fmt.Errorf("wal: close segment: %w", err))
		}
		l.sealed = append(l.sealed, l.activeName)
	}
	name := fmt.Sprintf("wal-%016x.seg", l.nextLSN)
	f, err := l.opts.FS.Create(filepath.Join(l.dir, name))
	if err != nil {
		return l.fail(fmt.Errorf("wal: create segment: %w", err))
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:], segMagic)
	binary.LittleEndian.PutUint64(hdr[len(segMagic):], l.nextLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return l.fail(fmt.Errorf("wal: write segment header: %w", err))
	}
	l.active, l.activeName, l.activeSize = f, name, int64(segHeaderLen)
	l.unsynced += int64(segHeaderLen)
	if err := l.opts.FS.SyncDir(l.dir); err != nil {
		return l.fail(fmt.Errorf("wal: sync dir: %w", err))
	}
	if l.opts.Mode == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// fail records a sticky failure; every later append reports it.
func (l *Log) fail(err error) error {
	if l.err == nil {
		l.err = err
	}
	return err
}

// Err returns the sticky write failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Append commits one record: it is stamped with the next LSN, written to
// the active segment, and made durable per the sync mode. The assigned
// LSN is returned.
func (l *Log) Append(typ byte, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.activeSize > int64(segHeaderLen) && l.activeSize >= l.opts.SegmentBytes {
		if err := l.startSegment(); err != nil {
			return 0, err
		}
	}
	lsn := l.nextLSN
	buf := appendRecord(nil, lsn, typ, payload)
	n, err := l.active.Write(buf)
	if err != nil {
		return 0, l.fail(fmt.Errorf("wal: append record %d: %w", lsn, err))
	}
	if n != len(buf) {
		return 0, l.fail(fmt.Errorf("wal: short append of record %d: %d of %d bytes", lsn, n, len(buf)))
	}
	l.activeSize += int64(len(buf))
	l.unsynced += int64(len(buf))
	l.nextLSN++
	l.appended++
	l.unsyncedRecs++
	l.bytesAppended += int64(len(buf))
	if l.m != nil {
		l.m.appendB.Add(uint64(len(buf)))
		l.gaugesLocked()
	}
	switch l.opts.Mode {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncGroup:
		if l.unsynced >= l.opts.GroupBytes {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	return lsn, nil
}

// Sync forces any buffered records to disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.unsynced == 0 || l.active == nil {
		return nil
	}
	start := time.Now()
	if err := l.active.Sync(); err != nil {
		return l.fail(fmt.Errorf("wal: fsync: %w", err))
	}
	d := time.Since(start)
	l.fsyncs++
	l.fsyncNanos += int64(d)
	if l.m != nil {
		l.m.fsyncCount.Inc()
		mode := l.opts.Mode
		if mode < SyncAlways || mode > SyncNever {
			mode = SyncAlways
		}
		l.m.fsyncLat[mode].Observe(d)
		if l.unsyncedRecs > 0 {
			l.m.batchRecs.ObserveN(int64(l.unsyncedRecs))
		}
	}
	l.unsynced = 0
	l.unsyncedRecs = 0
	return nil
}

// SetMode changes the append-time fsync policy. Tightening to SyncAlways
// syncs any deferred records immediately.
func (l *Log) SetMode(m SyncMode) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.opts.Mode = m
	if m == SyncAlways && l.err == nil {
		return l.syncLocked()
	}
	return l.err
}

// Mode returns the current fsync policy.
func (l *Log) Mode() SyncMode {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.opts.Mode
}

// checkpoint is the on-disk checkpoint envelope: a version, a checksum
// over the body, and the body itself — the covered LSN, the rule and
// clause sources, and the universe as a storage.Save snapshot.
type checkpoint struct {
	Format   string          `json:"format"`
	Version  int             `json:"version"`
	Checksum string          `json:"checksum"`
	LSN      uint64          `json:"lsn"`
	Rules    []string        `json:"rules,omitempty"`
	Clauses  []string        `json:"clauses,omitempty"`
	Snapshot json.RawMessage `json:"snapshot"`

	universe *object.Tuple `json:"-"`
}

const (
	ckptFormat  = "idlwal-ckpt"
	ckptVersion = 1
)

func ckptChecksum(lsn uint64, rules, clauses []string, snapshot []byte) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\n", lsn)
	for _, r := range rules {
		fmt.Fprintf(h, "r%s\n", r)
	}
	for _, c := range clauses {
		fmt.Fprintf(h, "c%s\n", c)
	}
	h.Write(snapshot)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Checkpoint snapshots the given state as covering every record up to
// the current LSN, installs it atomically, rotates the active segment,
// and drops the sealed segments and stale checkpoints the new one makes
// unnecessary. It returns the checkpoint's covered LSN.
func (l *Log) Checkpoint(universe *object.Tuple, rules, clauses []string) (uint64, error) {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	// Everything appended so far must be durable before the checkpoint
	// can claim to cover it.
	if err := l.syncLocked(); err != nil {
		return 0, err
	}
	lsn := l.nextLSN - 1
	var snap bytes.Buffer
	if err := storage.Save(&snap, universe); err != nil {
		return 0, fmt.Errorf("wal: checkpoint snapshot: %w", err)
	}
	// json.Marshal compacts embedded RawMessage, so the checksum must be
	// computed over the compacted form or it breaks on round-trip.
	var compact bytes.Buffer
	if err := json.Compact(&compact, snap.Bytes()); err != nil {
		return 0, fmt.Errorf("wal: compact checkpoint snapshot: %w", err)
	}
	ck := checkpoint{
		Format:   ckptFormat,
		Version:  ckptVersion,
		Checksum: ckptChecksum(lsn, rules, clauses, compact.Bytes()),
		LSN:      lsn,
		Rules:    rules,
		Clauses:  clauses,
		Snapshot: compact.Bytes(),
	}
	raw, err := json.Marshal(&ck)
	if err != nil {
		return 0, fmt.Errorf("wal: encode checkpoint: %w", err)
	}
	name := fmt.Sprintf("ckpt-%016x.ckpt", lsn)
	tmp := filepath.Join(l.dir, fmt.Sprintf(".ckpt-%016x.tmp", lsn))
	f, err := l.opts.FS.Create(tmp)
	if err != nil {
		return 0, l.fail(fmt.Errorf("wal: create checkpoint: %w", err))
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		l.opts.FS.Remove(tmp)
		return 0, l.fail(fmt.Errorf("wal: write checkpoint: %w", err))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		l.opts.FS.Remove(tmp)
		return 0, l.fail(fmt.Errorf("wal: sync checkpoint: %w", err))
	}
	if err := f.Close(); err != nil {
		l.opts.FS.Remove(tmp)
		return 0, l.fail(fmt.Errorf("wal: close checkpoint: %w", err))
	}
	if err := l.opts.FS.Rename(tmp, filepath.Join(l.dir, name)); err != nil {
		l.opts.FS.Remove(tmp)
		return 0, l.fail(fmt.Errorf("wal: install checkpoint: %w", err))
	}
	if err := l.opts.FS.SyncDir(l.dir); err != nil {
		return 0, l.fail(fmt.Errorf("wal: sync dir: %w", err))
	}
	l.ckptLSN = lsn
	l.ckptCount++
	// The tail restarts in a fresh segment; every sealed segment is now
	// covered by the checkpoint and can go.
	if err := l.startSegment(); err != nil {
		return 0, err
	}
	for _, s := range l.sealed {
		l.opts.FS.Remove(filepath.Join(l.dir, s))
	}
	l.sealed = nil
	// Bounded checkpoint retention: newest KeepCheckpoints survive.
	if names, err := listDir(l.dir); err == nil {
		var ckpts []string
		for _, n := range names {
			if strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".ckpt") {
				ckpts = append(ckpts, n)
			}
		}
		sort.Strings(ckpts)
		for len(ckpts) > l.opts.KeepCheckpoints {
			l.opts.FS.Remove(filepath.Join(l.dir, ckpts[0]))
			ckpts = ckpts[1:]
		}
	}
	// The marker makes the checkpoint visible in the record stream.
	if _, err := l.appendLocked(TypeCheckpoint, []byte(name)); err != nil {
		return 0, err
	}
	if l.m != nil {
		l.m.ckptCount.Inc()
		l.m.ckptLat.Observe(time.Since(start))
		l.gaugesLocked()
	}
	return lsn, nil
}

// appendLocked is Append without re-taking the mutex.
func (l *Log) appendLocked(typ byte, payload []byte) (uint64, error) {
	l.mu.Unlock()
	defer l.mu.Lock()
	return l.Append(typ, payload)
}

// readCheckpoint loads and validates one checkpoint file.
func readCheckpoint(path string) (*checkpoint, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ck checkpoint
	if err := json.Unmarshal(raw, &ck); err != nil {
		return nil, fmt.Errorf("wal: %s: malformed checkpoint: %w", filepath.Base(path), err)
	}
	if ck.Format != ckptFormat || ck.Version != ckptVersion {
		return nil, fmt.Errorf("wal: %s: unsupported checkpoint format %q v%d", filepath.Base(path), ck.Format, ck.Version)
	}
	if got := ckptChecksum(ck.LSN, ck.Rules, ck.Clauses, ck.Snapshot); got != ck.Checksum {
		return nil, fmt.Errorf("wal: %s: checkpoint corrupt: checksum %s != %s", filepath.Base(path), got, ck.Checksum)
	}
	u, err := storage.Load(bytes.NewReader(ck.Snapshot))
	if err != nil {
		return nil, fmt.Errorf("wal: %s: %w", filepath.Base(path), err)
	}
	ck.universe = u
	return &ck, nil
}

// Status describes the log for status commands and banners.
type Status struct {
	Dir           string
	Mode          SyncMode
	NextLSN       uint64
	Appended      uint64 // records appended by this process
	Segments      int    // sealed + active
	SegmentBytes  int64  // bytes in the active segment
	CheckpointLSN uint64
	Checkpoints   int // checkpoints taken by this process
	Err           error

	// Durability instrumentation (native counters; live even without a
	// metrics registry).
	CheckpointLag  uint64 // records appended since the last checkpoint
	Fsyncs         uint64
	FsyncNanos     int64 // total time spent in fsync
	BytesAppended  int64 // record bytes appended by this process
	RecoveryNS     int64 // Open's scan + tail decode
	ReplayNS       int64 // caller-reported logical replay (NoteReplay)
	TruncatedTails uint64
}

func (s Status) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wal: dir=%s mode=%s next-lsn=%d appended=%d segments=%d checkpoint-lsn=%d",
		s.Dir, s.Mode, s.NextLSN, s.Appended, s.Segments, s.CheckpointLSN)
	if s.Err != nil {
		fmt.Fprintf(&b, " ERROR=%v", s.Err)
	}
	return b.String()
}

// Status snapshots the log's state.
func (l *Log) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs := len(l.sealed)
	if l.active != nil {
		segs++
	}
	return Status{
		Dir:            l.dir,
		Mode:           l.opts.Mode,
		NextLSN:        l.nextLSN,
		Appended:       l.appended,
		Segments:       segs,
		SegmentBytes:   l.activeSize,
		CheckpointLSN:  l.ckptLSN,
		Checkpoints:    l.ckptCount,
		Err:            l.err,
		CheckpointLag:  l.nextLSN - 1 - l.ckptLSN,
		Fsyncs:         l.fsyncs,
		FsyncNanos:     l.fsyncNanos,
		BytesAppended:  l.bytesAppended,
		RecoveryNS:     l.recoveryNS,
		ReplayNS:       l.replayNS,
		TruncatedTails: l.truncatedTails,
	}
}

// Close syncs and closes the active segment. The sticky write failure,
// if any, is returned.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return l.err
	}
	serr := l.syncLocked()
	cerr := l.active.Close()
	l.active = nil
	if l.err != nil {
		return l.err
	}
	if serr != nil {
		return serr
	}
	return cerr
}
