package wal

import (
	"io/fs"
	"os"
	"sort"
)

// FS is the filesystem seam the log writes through. Production uses the
// process filesystem (osFS); crash tests substitute a FaultFS that
// short-writes, fails fsync, or "dies" at the Nth write, so every
// durability claim in this package is exercised against simulated power
// loss rather than asserted.
//
// The read side (recovery) always goes through the real filesystem:
// recovery runs in a fresh process that, by definition, survived the
// crash.
type FS interface {
	// Create opens path for writing, truncating an existing file.
	Create(path string) (File, error)
	// Append opens path for appending, creating it if missing.
	Append(path string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(path string) error
	// SyncDir fsyncs a directory, making renames and creates durable.
	SyncDir(dir string) error
}

// File is the writable handle the log appends records through.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// osFS is the production FS: thin wrappers over package os.
type osFS struct{}

// OSFS returns the production filesystem.
func OSFS() FS { return osFS{} }

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (osFS) Append(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// listDir returns the directory's file names, sorted. Reads bypass the
// FS seam (see the FS comment).
func listDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.Type().IsRegular() || e.Type()&fs.ModeSymlink != 0 {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
