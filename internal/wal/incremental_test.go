package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idl/internal/object"
)

// wideUniverse builds a universe with nRel relations of nTup tuples each
// under one database, plus the relation sets for direct mutation.
func wideUniverse(nRel, nTup int) (*object.Tuple, []*object.Set) {
	u := object.NewTuple()
	db := object.NewTuple()
	var sets []*object.Set
	for r := 0; r < nRel; r++ {
		rel := object.NewSet()
		for i := 0; i < nTup; i++ {
			tp := object.NewTuple()
			tp.Put("rel", object.Int(int64(r)))
			tp.Put("i", object.Int(int64(i)))
			tp.Put("pad", object.Str(strings.Repeat("x", 32)))
			rel.Add(tp)
		}
		db.Put(relName(r), rel)
		sets = append(sets, rel)
	}
	u.Put("d", db)
	return u, sets
}

func relName(r int) string { return "rel" + string(rune('a'+r)) }

func countFiles(t *testing.T, dir, suffix string) int {
	t.Helper()
	names, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, name := range names {
		if strings.HasSuffix(name, suffix) {
			n++
		}
	}
	return n
}

// TestIncrementalCheckpointReuse pins the tentpole property: a second
// checkpoint after touching one of many relations rewrites only that
// relation's segment, reuses the rest by reference, and its written
// bytes are a small fraction of the full snapshot footprint.
func TestIncrementalCheckpointReuse(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	u, sets := wideUniverse(8, 50)
	if _, err := l.Checkpoint(u, nil, nil); err != nil {
		t.Fatal(err)
	}
	st := l.Status()
	if st.CheckpointSegsWritten != 8 || st.CheckpointSegsReused != 0 {
		t.Fatalf("first checkpoint wrote %d / reused %d segments, want 8 / 0",
			st.CheckpointSegsWritten, st.CheckpointSegsReused)
	}

	// Touch one relation in place: its set version bumps.
	extra := object.NewTuple()
	extra.Put("rel", object.Int(2))
	extra.Put("i", object.Int(999))
	sets[2].Add(extra)

	if _, err := l.Checkpoint(u, nil, nil); err != nil {
		t.Fatal(err)
	}
	st = l.Status()
	if st.CheckpointSegsWritten != 1 || st.CheckpointSegsReused != 7 {
		t.Fatalf("second checkpoint wrote %d / reused %d segments, want 1 / 7",
			st.CheckpointSegsWritten, st.CheckpointSegsReused)
	}
	if st.CheckpointWroteBytes <= 0 || st.CheckpointTotalBytes <= st.CheckpointWroteBytes {
		t.Fatalf("byte accounting wrote=%d total=%d", st.CheckpointWroteBytes, st.CheckpointTotalBytes)
	}
	if ratio := float64(st.CheckpointWroteBytes) / float64(st.CheckpointTotalBytes); ratio > 0.25 {
		t.Fatalf("incremental ratio %.3f exceeds 0.25 (wrote=%d total=%d)",
			ratio, st.CheckpointWroteBytes, st.CheckpointTotalBytes)
	}

	// A checkpoint with nothing changed reuses everything.
	if _, err := l.Checkpoint(u, nil, nil); err != nil {
		t.Fatal(err)
	}
	if st = l.Status(); st.CheckpointSegsWritten != 0 || st.CheckpointSegsReused != 8 {
		t.Fatalf("idle checkpoint wrote %d / reused %d segments, want 0 / 8",
			st.CheckpointSegsWritten, st.CheckpointSegsReused)
	}

	// Replacing a relation's set wholesale (new pointer) forces a rewrite
	// even if the version counter happens to match.
	repl := sets[3].ShallowClone()
	db, _ := u.Get("d")
	db.(*object.Tuple).Put(relName(3), repl)
	if _, err := l.Checkpoint(u, nil, nil); err != nil {
		t.Fatal(err)
	}
	if st = l.Status(); st.CheckpointSegsWritten != 1 || st.CheckpointSegsReused != 7 {
		t.Fatalf("pointer-swap checkpoint wrote %d / reused %d segments, want 1 / 7",
			st.CheckpointSegsWritten, st.CheckpointSegsReused)
	}
}

// TestIncrementalCheckpointRecovery composes manifest + segments + tail
// back into the original universe across reuse generations.
func TestIncrementalCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, sets := wideUniverse(4, 20)
	if _, err := l.Checkpoint(u, []string{"rule1"}, []string{"clause1"}); err != nil {
		t.Fatal(err)
	}
	extra := object.NewTuple()
	extra.Put("rel", object.Int(0))
	extra.Put("i", object.Int(1000))
	sets[0].Add(extra)
	// The second checkpoint reuses three segments written by the first.
	if _, err := l.Checkpoint(u, []string{"rule1"}, []string{"clause1"}); err != nil {
		t.Fatal(err)
	}
	if st := l.Status(); st.CheckpointSegsReused != 3 {
		t.Fatalf("reused %d segments, want 3", st.CheckpointSegsReused)
	}
	if _, err := l.Append(TypeExec, []byte("tail-stmt")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.SkippedCheckpoints != 0 {
		t.Fatalf("skipped %d checkpoints on a clean directory", rec.SkippedCheckpoints)
	}
	if got, want := universeJSON(t, rec.Universe), universeJSON(t, u); got != want {
		t.Fatalf("recovered universe diverges:\n got %s\nwant %s", got, want)
	}
	if len(rec.Rules) != 1 || rec.Rules[0] != "rule1" || len(rec.Clauses) != 1 {
		t.Fatalf("recovered sources %v / %v", rec.Rules, rec.Clauses)
	}
	// The tail carries the checkpoint's own marker record plus the
	// post-checkpoint statement.
	if len(rec.Tail) != 2 || rec.Tail[0].Type != TypeCheckpoint || string(rec.Tail[1].Payload) != "tail-stmt" {
		t.Fatalf("recovered tail %v", rec.Tail)
	}
}

// TestCorruptSegmentFallsBack flips a byte in the newest checkpoint's
// freshly written segment: recovery must reject that checkpoint wholesale
// and fall back to the previous one, whose own segment files — including
// the ones the corrupt manifest shares — must still be on disk.
func TestCorruptSegmentFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, sets := wideUniverse(3, 10)
	if _, err := l.Checkpoint(u, nil, nil); err != nil {
		t.Fatal(err)
	}
	want := universeJSON(t, u)
	before, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, n := range before {
		seen[n] = true
	}

	extra := object.NewTuple()
	extra.Put("rel", object.Int(1))
	extra.Put("i", object.Int(777))
	sets[1].Add(extra)
	if _, err := l.Checkpoint(u, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The one segment file that is new belongs to the newest checkpoint.
	after, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var fresh string
	for _, n := range after {
		if strings.HasSuffix(n, ".ckseg") && !seen[n] {
			fresh = n
		}
	}
	if fresh == "" {
		t.Fatal("second checkpoint wrote no new segment")
	}
	data, err := os.ReadFile(filepath.Join(dir, fresh))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, fresh), data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.SkippedCheckpoints == 0 {
		t.Fatal("corrupt segment went unnoticed")
	}
	if got := universeJSON(t, rec.Universe); got != want {
		t.Fatalf("fallback universe diverges:\n got %s\nwant %s", got, want)
	}
}

// TestSegmentGC checks bounded retention for segment files: segments
// referenced by no surviving manifest — pruned checkpoints' exclusives
// and orphans from crashed checkpoints — are collected, while shared
// segments survive as long as any manifest needs them.
func TestSegmentGC(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{KeepCheckpoints: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	u, sets := wideUniverse(4, 10)
	if _, err := l.Checkpoint(u, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Plant an orphan, as a crashed checkpoint would leave behind.
	orphan := filepath.Join(dir, "rel-ffffffffffffffff-0000.ckseg")
	if err := os.WriteFile(orphan, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	extra := object.NewTuple()
	extra.Put("rel", object.Int(0))
	extra.Put("i", object.Int(42))
	sets[0].Add(extra)
	if _, err := l.Checkpoint(u, nil, nil); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan segment survived GC: %v", err)
	}
	if n := countFiles(t, dir, ".ckpt"); n != 1 {
		t.Fatalf("%d checkpoint manifests survive, want 1", n)
	}
	// The survivor references exactly 4 segments (1 rewritten + 3 shared);
	// the first checkpoint's rewritten-relation segment must be gone.
	if n := countFiles(t, dir, ".ckseg"); n != 4 {
		t.Fatalf("%d segment files survive, want 4", n)
	}

	// Recovery still composes from what GC left behind.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.SkippedCheckpoints != 0 {
		t.Fatalf("skipped %d checkpoints after GC", rec.SkippedCheckpoints)
	}
	if got, want := universeJSON(t, rec.Universe), universeJSON(t, u); got != want {
		t.Fatalf("post-GC recovery diverges:\n got %s\nwant %s", got, want)
	}
}
