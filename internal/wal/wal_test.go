package wal

import (
	"bytes"

	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idl/internal/object"
)

func testUniverse(n int) *object.Tuple {
	u := object.NewTuple()
	db := object.NewTuple()
	rel := object.NewSet()
	for i := 0; i < n; i++ {
		t := object.NewTuple()
		t.Put("i", object.Int(int64(i)))
		rel.Add(t)
	}
	db.Put("r", rel)
	u.Put("d", db)
	return u
}

func universeJSON(t *testing.T, u *object.Tuple) string {
	t.Helper()
	if u == nil {
		return "<nil>"
	}
	raw, err := object.MarshalJSON(u)
	if err != nil {
		t.Fatalf("marshal universe: %v", err)
	}
	return string(raw)
}

func TestRecordRoundtrip(t *testing.T) {
	var buf []byte
	payloads := []string{"", "x", "insert into r", strings.Repeat("z", 5000)}
	for i, p := range payloads {
		buf = appendRecord(buf, uint64(i+1), TypeExec, []byte(p))
	}
	off := 0
	for i, p := range payloads {
		r, n, err := decodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if r.LSN != uint64(i+1) || r.Type != TypeExec || string(r.Payload) != p {
			t.Fatalf("record %d: got lsn=%d type=%d payload=%q", i, r.LSN, r.Type, r.Payload)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestRecordTornVariants(t *testing.T) {
	full := appendRecord(nil, 7, TypeRule, []byte("view v from r"))
	cases := map[string][]byte{
		"empty":          {},
		"partial header": full[:5],
		"partial body":   full[:len(full)-3],
		"flipped byte": func() []byte {
			b := append([]byte(nil), full...)
			b[len(b)-1] ^= 0xff
			return b
		}(),
		"huge length": func() []byte {
			b := append([]byte(nil), full...)
			b[0], b[1], b[2], b[3] = 0xff, 0xff, 0xff, 0x7f
			return b
		}(),
	}
	for name, data := range cases {
		if _, _, err := decodeRecord(data); !errors.Is(err, errTornTail) {
			t.Errorf("%s: err = %v, want errTornTail", name, err)
		}
	}
}

func TestAppendReopen(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 0 || rec.CheckpointLSN != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	stmts := []string{"a", "b", "c"}
	for i, s := range stmts {
		lsn, err := l.Append(TypeExec, []byte(s))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Truncated {
		t.Fatal("clean log reported truncation")
	}
	if len(rec.Tail) != len(stmts) {
		t.Fatalf("recovered %d records, want %d", len(rec.Tail), len(stmts))
	}
	for i, r := range rec.Tail {
		if r.LSN != uint64(i+1) || string(r.Payload) != stmts[i] {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
}

func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"one", "two", "three"} {
		if _, err := l.Append(TypeExec, []byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append half of a record to the segment.
	names, _ := listDir(dir)
	var seg string
	for _, n := range names {
		if strings.HasSuffix(n, ".seg") {
			seg = n
		}
	}
	torn := appendRecord(nil, 4, TypeExec, []byte("four"))
	f, err := os.OpenFile(filepath.Join(dir, seg), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(torn[:len(torn)/2])
	f.Close()

	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated || rec.TruncatedSegment != seg {
		t.Fatalf("rec = %+v, want truncation of %s", rec, seg)
	}
	if len(rec.Tail) != 3 {
		t.Fatalf("recovered %d records, want 3", len(rec.Tail))
	}
	// The repair is physical: a third open sees a clean log.
	if lsn, err := l2.Append(TypeExec, []byte("four')")); err != nil || lsn != 4 {
		t.Fatalf("append after repair: lsn=%d err=%v", lsn, err)
	}
	l2.Close()
	_, rec, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Truncated || len(rec.Tail) != 4 {
		t.Fatalf("after repair: %+v", rec)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := l.Append(TypeExec, bytes.Repeat([]byte{'p'}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Status()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, status %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != n || rec.Truncated {
		t.Fatalf("recovered %d records (truncated=%v), want %d", len(rec.Tail), rec.Truncated, n)
	}
}

func TestCheckpointAndTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(TypeExec, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	u := testUniverse(3)
	rules := []string{"view v as r"}
	clauses := []string{"on insert do x"}
	lsn, err := l.Checkpoint(u, rules, clauses)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 4 {
		t.Fatalf("checkpoint lsn = %d, want 4", lsn)
	}
	if _, err := l.Append(TypeExec, []byte("post")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointLSN != 4 {
		t.Fatalf("recovered checkpoint lsn = %d", rec.CheckpointLSN)
	}
	if got, want := universeJSON(t, rec.Universe), universeJSON(t, u); got != want {
		t.Fatalf("universe mismatch:\n got %s\nwant %s", got, want)
	}
	if len(rec.Rules) != 1 || rec.Rules[0] != rules[0] || len(rec.Clauses) != 1 || rec.Clauses[0] != clauses[0] {
		t.Fatalf("sources mismatch: %+v", rec)
	}
	// Tail: the checkpoint marker (lsn 5) and the post-checkpoint exec.
	var execs []string
	for _, r := range rec.Tail {
		if r.LSN <= rec.CheckpointLSN {
			t.Fatalf("tail record %d at or before checkpoint", r.LSN)
		}
		if r.Type == TypeExec {
			execs = append(execs, string(r.Payload))
		}
	}
	if len(execs) != 1 || execs[0] != "post" {
		t.Fatalf("tail execs = %v", execs)
	}
}

func TestCheckpointPrunesSegmentsAndOldCheckpoints(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 64, KeepCheckpoints: 1})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			if _, err := l.Append(TypeExec, bytes.Repeat([]byte{'q'}, 40)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := l.Checkpoint(testUniverse(round+1), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := listDir(dir)
	var ckpts, segs int
	for _, n := range names {
		switch {
		case strings.HasSuffix(n, ".ckpt"):
			ckpts++
		case strings.HasSuffix(n, ".seg"):
			segs++
		}
	}
	if ckpts != 1 {
		t.Fatalf("retained %d checkpoints, want 1 (files: %v)", ckpts, names)
	}
	// Only the post-checkpoint tail segment(s) should remain.
	if segs > 2 {
		t.Fatalf("retained %d segments, want <= 2 (files: %v)", segs, names)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := universeJSON(t, rec.Universe), universeJSON(t, testUniverse(3)); got != want {
		t.Fatalf("universe mismatch after pruning:\n got %s\nwant %s", got, want)
	}
}

func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{KeepCheckpoints: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Checkpoint(testUniverse(1), nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(TypeExec, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Checkpoint(testUniverse(2), nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest checkpoint.
	names, _ := listDir(dir)
	var newest string
	for _, n := range names {
		if strings.HasSuffix(n, ".ckpt") {
			newest = n
		}
	}
	path := filepath.Join(dir, newest)
	raw, _ := os.ReadFile(path)
	raw = bytes.Replace(raw, []byte(`"checksum":"`), []byte(`"checksum":"0`), 1)
	os.WriteFile(path, raw[:len(raw)-1], 0o644)

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SkippedCheckpoints != 1 {
		t.Fatalf("skipped %d checkpoints, want 1", rec.SkippedCheckpoints)
	}
	if got, want := universeJSON(t, rec.Universe), universeJSON(t, testUniverse(1)); got != want {
		t.Fatalf("fell back to wrong checkpoint:\n got %s\nwant %s", got, want)
	}
}

func TestStickyErrorAfterCrash(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS(), FaultPlan{CrashAtWrite: 3, ShortBytes: 5})
	l, _, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	var firstErr error
	var acked int
	for i := 0; i < 6; i++ {
		if _, err := l.Append(TypeExec, []byte{byte('a' + i)}); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if firstErr != nil {
			t.Fatal("append succeeded after a crash")
		}
		acked++
	}
	if !errors.Is(firstErr, ErrCrashed) {
		t.Fatalf("first error = %v, want ErrCrashed", firstErr)
	}
	if !errors.Is(l.Err(), ErrCrashed) {
		t.Fatalf("sticky err = %v", l.Err())
	}
	l.Close()

	// Recovery through the real FS sees the acked prefix (the torn write
	// is truncated away).
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != acked {
		t.Fatalf("recovered %d records, want %d acked", len(rec.Tail), acked)
	}
}

func TestGroupCommitDefersSync(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS(), FaultPlan{})
	l, _, err := Open(dir, Options{FS: ffs, Mode: SyncGroup, GroupBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	base := ffs.Syncs()
	for i := 0; i < 50; i++ {
		if _, err := l.Append(TypeExec, []byte("tiny")); err != nil {
			t.Fatal(err)
		}
	}
	if got := ffs.Syncs(); got != base {
		t.Fatalf("group mode issued %d fsyncs during appends", got-base)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ffs.Syncs(); got <= base {
		t.Fatal("close did not sync the deferred batch")
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 50 {
		t.Fatalf("recovered %d records, want 50", len(rec.Tail))
	}
}

func TestFailSyncIsSticky(t *testing.T) {
	dir := t.TempDir()
	// The directory fsync in Open counts too; probe how many syncs setup
	// needs, then fail the one belonging to the second append.
	probe := NewFaultFS(OSFS(), FaultPlan{})
	l0, _, err := Open(t.TempDir(), Options{FS: probe})
	if err != nil {
		t.Fatal(err)
	}
	l0.Append(TypeExec, []byte("a"))
	setup := probe.Syncs()
	l0.Close()

	ffs := NewFaultFS(OSFS(), FaultPlan{FailSyncAt: setup + 1})
	l, _, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(TypeExec, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(TypeExec, []byte("b")); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("append err = %v, want ErrInjectedSync", err)
	}
	// A log that may have lost a record must not acknowledge new ones.
	if _, err := l.Append(TypeExec, []byte("c")); err == nil {
		t.Fatal("append succeeded after fsync failure")
	}
	l.Close()
}

func TestStatusString(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append(TypeExec, []byte("s"))
	st := l.Status()
	if st.NextLSN != 2 || st.Appended != 1 {
		t.Fatalf("status %+v", st)
	}
	s := st.String()
	for _, want := range []string{"mode=always", "next-lsn=2", "appended=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("status string %q missing %q", s, want)
		}
	}
}
