package wal

import (
	"errors"
	"fmt"
	"sync"
)

// Crash-point fault injection: a FaultFS counts every write and fsync
// issued through it and, at a chosen operation index, either fails the
// operation (fsync failure), truncates it (short write — the torn-tail
// case recovery must repair), or "crashes" — the operation and every
// operation after it fail with ErrCrashed, simulating process death
// mid-commit. The schedule is explicit and deterministic, so a failing
// crash point replays exactly; the grid driver in the root package's
// recovery tests enumerates crash points rather than sampling them.
//
// This is the durability counterpart of internal/federation's fault
// injector: that one proves answers degrade gracefully when members die;
// this one proves committed state survives when the process does.

// ErrCrashed is returned by every operation after a FaultFS crash point
// fires. Code under test must treat it like the process dying: stop,
// reopen the directory through a clean FS, and recover.
var ErrCrashed = errors.New("wal: injected crash")

// ErrInjectedSync is the injected fsync failure.
var ErrInjectedSync = errors.New("wal: injected fsync failure")

// FaultPlan schedules at most one fault. Operation indices are 1-based
// and count across all files opened through the FS, in issue order.
type FaultPlan struct {
	// CrashAtWrite, when > 0, makes the Nth write crash the FS. The
	// crashing write first persists ShortBytes bytes (a torn write);
	// everything after it fails with ErrCrashed.
	CrashAtWrite int
	// ShortBytes is how much of the crashing write reaches the disk
	// (clamped to the write's length). 0 tears the write off entirely.
	ShortBytes int
	// FailSyncAt, when > 0, makes the Nth fsync return ErrInjectedSync
	// without crashing the FS — the transient-EIO case.
	FailSyncAt int
	// CrashAtSync, when > 0, makes the Nth fsync crash the FS: the sync
	// fails and every later operation returns ErrCrashed.
	CrashAtSync int
}

// FaultFS wraps an inner FS with a FaultPlan. Safe for concurrent use.
type FaultFS struct {
	mu      sync.Mutex
	inner   FS
	plan    FaultPlan
	writes  int
	syncs   int
	crashed bool
}

// NewFaultFS wraps inner with a fault schedule.
func NewFaultFS(inner FS, plan FaultPlan) *FaultFS {
	return &FaultFS{inner: inner, plan: plan}
}

// Crashed reports whether the crash point has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Writes returns how many writes the FS has seen — run once with a huge
// crash point to size a crash grid.
func (f *FaultFS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// Syncs returns how many fsyncs the FS has seen.
func (f *FaultFS) Syncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

func (f *FaultFS) String() string {
	return fmt.Sprintf("faultfs(crashAtWrite=%d shortBytes=%d failSyncAt=%d crashAtSync=%d)",
		f.plan.CrashAtWrite, f.plan.ShortBytes, f.plan.FailSyncAt, f.plan.CrashAtSync)
}

func (f *FaultFS) Create(path string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	inner, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Append(path string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	inner, err := f.inner.Append(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return f.inner.Remove(path)
}

func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.syncs++
	if f.syncs == f.plan.FailSyncAt {
		return ErrInjectedSync
	}
	if f.syncs == f.plan.CrashAtSync {
		f.crashed = true
		return ErrCrashed
	}
	return f.inner.SyncDir(dir)
}

// faultFile counts its writes and syncs against the owning FS schedule.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if ff.fs.crashed {
		return 0, ErrCrashed
	}
	ff.fs.writes++
	if ff.fs.writes == ff.fs.plan.CrashAtWrite {
		ff.fs.crashed = true
		short := ff.fs.plan.ShortBytes
		if short > len(p) {
			short = len(p)
		}
		if short > 0 {
			ff.inner.Write(p[:short]) // the torn half that reached the disk
		}
		return short, ErrCrashed
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if ff.fs.crashed {
		return ErrCrashed
	}
	ff.fs.syncs++
	if ff.fs.syncs == ff.fs.plan.FailSyncAt {
		return ErrInjectedSync
	}
	if ff.fs.syncs == ff.fs.plan.CrashAtSync {
		ff.fs.crashed = true
		return ErrCrashed
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	ff.fs.mu.Lock()
	crashed := ff.fs.crashed
	ff.fs.mu.Unlock()
	// Close the real handle even after a crash so temp dirs clean up;
	// the result the caller sees still reflects the crash.
	err := ff.inner.Close()
	if crashed {
		return ErrCrashed
	}
	return err
}
