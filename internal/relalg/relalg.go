// Package relalg provides hand-coded relational-algebra operators over
// object.Set relations of tuples: select, project, rename, union,
// hash equi-join, natural join, anti-join (for negation), and grouped
// extrema.
//
// It is the "what a programmer would write three times" baseline of the
// reproduction: where IDL poses one higher-order expression against all
// three stock schemas, the baseline needs a separate, schema-aware plan
// per database (see internal/stocks for those plans). It also serves as
// the performance yardstick for the benchmark harness — a direct plan
// with hash joins is the fastest thing our substrate can do, so it bounds
// the interpretation overhead of the IDL evaluator.
package relalg

import (
	"idl/internal/object"
)

// Pred is a tuple predicate for Select.
type Pred func(*object.Tuple) bool

// Select returns the tuples satisfying p.
func Select(r *object.Set, p Pred) *object.Set {
	out := object.NewSet()
	r.Each(func(e object.Object) bool {
		if t, ok := e.(*object.Tuple); ok && p(t) {
			out.Add(t)
		}
		return true
	})
	return out
}

// Project returns tuples restricted to attrs; tuples missing every
// attribute vanish (set semantics also collapse duplicates).
func Project(r *object.Set, attrs ...string) *object.Set {
	out := object.NewSet()
	r.Each(func(e object.Object) bool {
		t, ok := e.(*object.Tuple)
		if !ok {
			return true
		}
		p := object.NewTuple()
		for _, a := range attrs {
			if v, has := t.Get(a); has {
				p.Put(a, v)
			}
		}
		if p.Len() > 0 {
			out.Add(p)
		}
		return true
	})
	return out
}

// Rename returns tuples with attribute from renamed to to.
func Rename(r *object.Set, from, to string) *object.Set {
	out := object.NewSet()
	r.Each(func(e object.Object) bool {
		t, ok := e.(*object.Tuple)
		if !ok {
			out.Add(e)
			return true
		}
		n := object.NewTuple()
		t.Each(func(a string, v object.Object) bool {
			if a == from {
				n.Put(to, v)
			} else {
				n.Put(a, v)
			}
			return true
		})
		out.Add(n)
		return true
	})
	return out
}

// Union returns the set union of the inputs.
func Union(rs ...*object.Set) *object.Set {
	out := object.NewSet()
	for _, r := range rs {
		r.Each(func(e object.Object) bool {
			out.Add(e)
			return true
		})
	}
	return out
}

// EquiJoin hash-joins l and r on l.lAttr = r.rAttr, merging attributes
// (right-side attributes win name collisions except the join column).
func EquiJoin(l, r *object.Set, lAttr, rAttr string) *object.Set {
	// Build on the smaller side.
	if l.Len() > r.Len() {
		return EquiJoin(r, l, rAttr, lAttr)
	}
	build := map[uint64][]*object.Tuple{}
	l.Each(func(e object.Object) bool {
		t, ok := e.(*object.Tuple)
		if !ok {
			return true
		}
		if v, has := t.Get(lAttr); has {
			h := v.Hash()
			build[h] = append(build[h], t)
		}
		return true
	})
	out := object.NewSet()
	r.Each(func(e object.Object) bool {
		rt, ok := e.(*object.Tuple)
		if !ok {
			return true
		}
		rv, has := rt.Get(rAttr)
		if !has {
			return true
		}
		for _, lt := range build[rv.Hash()] {
			lv, _ := lt.Get(lAttr)
			if !lv.Equal(rv) {
				continue
			}
			merged := object.NewTuple()
			lt.Each(func(a string, v object.Object) bool { merged.Put(a, v); return true })
			rt.Each(func(a string, v object.Object) bool { merged.Put(a, v); return true })
			out.Add(merged)
		}
		return true
	})
	return out
}

// NaturalJoin joins on all shared attribute names.
func NaturalJoin(l, r *object.Set) *object.Set {
	shared := sharedAttrs(l, r)
	if len(shared) == 0 {
		// Cross product.
		out := object.NewSet()
		l.Each(func(le object.Object) bool {
			lt, ok := le.(*object.Tuple)
			if !ok {
				return true
			}
			r.Each(func(re object.Object) bool {
				rt, ok := re.(*object.Tuple)
				if !ok {
					return true
				}
				merged := object.NewTuple()
				lt.Each(func(a string, v object.Object) bool { merged.Put(a, v); return true })
				rt.Each(func(a string, v object.Object) bool { merged.Put(a, v); return true })
				out.Add(merged)
				return true
			})
			return true
		})
		return out
	}
	build := map[uint64][]*object.Tuple{}
	l.Each(func(e object.Object) bool {
		t, ok := e.(*object.Tuple)
		if !ok {
			return true
		}
		if h, ok := keyHash(t, shared); ok {
			build[h] = append(build[h], t)
		}
		return true
	})
	out := object.NewSet()
	r.Each(func(e object.Object) bool {
		rt, ok := e.(*object.Tuple)
		if !ok {
			return true
		}
		h, ok := keyHash(rt, shared)
		if !ok {
			return true
		}
		for _, lt := range build[h] {
			if !keysEqual(lt, rt, shared) {
				continue
			}
			merged := object.NewTuple()
			lt.Each(func(a string, v object.Object) bool { merged.Put(a, v); return true })
			rt.Each(func(a string, v object.Object) bool { merged.Put(a, v); return true })
			out.Add(merged)
		}
		return true
	})
	return out
}

// AntiJoin returns the tuples of l with no natural-join partner in r —
// the relational rendering of negation as failure.
func AntiJoin(l, r *object.Set) *object.Set {
	shared := sharedAttrs(l, r)
	out := object.NewSet()
	if len(shared) == 0 {
		if r.Len() == 0 {
			l.Each(func(e object.Object) bool { out.Add(e); return true })
		}
		return out
	}
	build := map[uint64][]*object.Tuple{}
	r.Each(func(e object.Object) bool {
		t, ok := e.(*object.Tuple)
		if !ok {
			return true
		}
		if h, ok := keyHash(t, shared); ok {
			build[h] = append(build[h], t)
		}
		return true
	})
	l.Each(func(e object.Object) bool {
		lt, ok := e.(*object.Tuple)
		if !ok {
			return true
		}
		h, ok := keyHash(lt, shared)
		if ok {
			for _, rt := range build[h] {
				if keysEqual(lt, rt, shared) {
					return true // has a partner: excluded
				}
			}
		}
		out.Add(lt)
		return true
	})
	return out
}

// GroupMax returns, per group (the values of groupAttrs), the tuples
// whose valueAttr is maximal — ties keep every maximal tuple. Tuples
// missing the value attribute or with non-comparable values are skipped.
func GroupMax(r *object.Set, groupAttrs []string, valueAttr string) *object.Set {
	type entry struct {
		max    object.Object
		tuples []*object.Tuple
	}
	groups := map[uint64][]*entry{}
	keyOf := func(t *object.Tuple) (uint64, bool) {
		return keyHash(t, groupAttrs)
	}
	r.Each(func(e object.Object) bool {
		t, ok := e.(*object.Tuple)
		if !ok {
			return true
		}
		v, has := t.Get(valueAttr)
		if !has || v.Kind() == object.KindNull {
			return true
		}
		h, ok := keyOf(t)
		if !ok {
			return true
		}
		var ent *entry
		for _, cand := range groups[h] {
			if keysEqual(cand.tuples[0], t, groupAttrs) {
				ent = cand
				break
			}
		}
		if ent == nil {
			groups[h] = append(groups[h], &entry{max: v, tuples: []*object.Tuple{t}})
			return true
		}
		switch {
		case !object.Comparable(v, ent.max):
			// skip incomparable values
		case v.Compare(ent.max) > 0:
			ent.max = v
			ent.tuples = ent.tuples[:0]
			ent.tuples = append(ent.tuples, t)
		case v.Compare(ent.max) == 0:
			ent.tuples = append(ent.tuples, t)
		}
		return true
	})
	out := object.NewSet()
	for _, ents := range groups {
		for _, ent := range ents {
			for _, t := range ent.tuples {
				out.Add(t)
			}
		}
	}
	return out
}

// sharedAttrs returns attribute names present in some tuple of both
// relations, in deterministic order.
func sharedAttrs(l, r *object.Set) []string {
	left := map[string]bool{}
	l.Each(func(e object.Object) bool {
		if t, ok := e.(*object.Tuple); ok {
			for _, a := range t.Attrs() {
				left[a] = true
			}
		}
		return true
	})
	seen := map[string]bool{}
	var shared []string
	r.Each(func(e object.Object) bool {
		if t, ok := e.(*object.Tuple); ok {
			for _, a := range t.Attrs() {
				if left[a] && !seen[a] {
					seen[a] = true
					shared = append(shared, a)
				}
			}
		}
		return true
	})
	return shared
}

func keyHash(t *object.Tuple, attrs []string) (uint64, bool) {
	var h uint64 = 1469598103934665603
	for _, a := range attrs {
		v, ok := t.Get(a)
		if !ok {
			return 0, false
		}
		h = h*1099511628211 ^ v.Hash()
	}
	return h, true
}

func keysEqual(a, b *object.Tuple, attrs []string) bool {
	for _, attr := range attrs {
		av, aok := a.Get(attr)
		bv, bok := b.Get(attr)
		if !aok || !bok || !av.Equal(bv) {
			return false
		}
	}
	return true
}
