package relalg

import (
	"testing"

	"idl/internal/object"
)

func euterRel() *object.Set {
	r := object.NewSet()
	prices := map[string][]int{"hp": {50, 55, 62}, "ibm": {140, 155, 160}, "sun": {201, 210, 150}}
	for s, ps := range prices {
		for i, p := range ps {
			r.Add(object.TupleOf("date", object.NewDate(85, 3, 1+i), "stkCode", s, "clsPrice", p))
		}
	}
	return r
}

func TestSelectProject(t *testing.T) {
	r := euterRel()
	above := Select(r, func(t *object.Tuple) bool {
		v, ok := t.Get("clsPrice")
		return ok && object.Comparable(v, object.Int(200)) && v.Compare(object.Int(200)) > 0
	})
	if above.Len() != 2 {
		t.Fatalf("above = %d", above.Len())
	}
	names := Project(above, "stkCode")
	if names.Len() != 1 || !names.Contains(object.TupleOf("stkCode", "sun")) {
		t.Errorf("projection = %s", names.CanonicalString())
	}
}

func TestProjectSkipsMissing(t *testing.T) {
	r := object.SetOf(object.TupleOf("a", 1), object.TupleOf("b", 2))
	p := Project(r, "a")
	if p.Len() != 1 {
		t.Errorf("project = %s", p.CanonicalString())
	}
}

func TestRename(t *testing.T) {
	r := object.SetOf(object.TupleOf("x", 1, "y", 2))
	out := Rename(r, "x", "z")
	if !out.Contains(object.TupleOf("z", 1, "y", 2)) {
		t.Errorf("rename = %s", out.CanonicalString())
	}
}

func TestUnion(t *testing.T) {
	a := object.SetOf(object.TupleOf("x", 1))
	b := object.SetOf(object.TupleOf("x", 1), object.TupleOf("x", 2))
	u := Union(a, b)
	if u.Len() != 2 {
		t.Errorf("union = %d", u.Len())
	}
}

func TestEquiJoin(t *testing.T) {
	emp := object.SetOf(
		object.TupleOf("name", "john", "dno", 10),
		object.TupleOf("name", "mary", "dno", 20),
		object.TupleOf("name", "ann", "dno", 99),
	)
	dept := object.SetOf(
		object.TupleOf("deptNo", 10, "mgr", "boss"),
		object.TupleOf("deptNo", 20, "mgr", "chief"),
	)
	j := EquiJoin(emp, dept, "dno", "deptNo")
	if j.Len() != 2 {
		t.Fatalf("join = %d rows: %s", j.Len(), j.CanonicalString())
	}
	found := false
	j.Each(func(e object.Object) bool {
		tp := e.(*object.Tuple)
		n, _ := tp.Get("name")
		m, _ := tp.Get("mgr")
		if n.Equal(object.Str("john")) && m.Equal(object.Str("boss")) {
			found = true
		}
		return true
	})
	if !found {
		t.Error("missing john/boss")
	}
	// Join direction symmetric.
	j2 := EquiJoin(dept, emp, "deptNo", "dno")
	if j2.Len() != 2 {
		t.Errorf("reverse join = %d", j2.Len())
	}
}

func TestNaturalJoinSelfJoin(t *testing.T) {
	r := euterRel()
	// Dates where hp>60 and ibm>150: rename to avoid stkCode collision.
	hp := Project(Select(r, eq("stkCode", object.Str("hp"))), "date", "clsPrice")
	hpHigh := Select(hp, gt("clsPrice", 60))
	ibm := Project(Select(r, eq("stkCode", object.Str("ibm"))), "date", "clsPrice")
	ibmHigh := Select(ibm, gt("clsPrice", 150))
	j := NaturalJoin(Project(hpHigh, "date"), Project(ibmHigh, "date"))
	if j.Len() != 1 || !j.Contains(object.TupleOf("date", object.NewDate(85, 3, 3))) {
		t.Errorf("join = %s", j.CanonicalString())
	}
}

func TestNaturalJoinCrossProduct(t *testing.T) {
	a := object.SetOf(object.TupleOf("x", 1), object.TupleOf("x", 2))
	b := object.SetOf(object.TupleOf("y", 3))
	j := NaturalJoin(a, b)
	if j.Len() != 2 {
		t.Errorf("cross = %d", j.Len())
	}
}

func TestAntiJoin(t *testing.T) {
	r := euterRel()
	hp := Select(r, eq("stkCode", object.Str("hp")))
	// All-time high: hp rows with no hp row of higher price.
	// Build "higher exists" via theta-join by hand, then anti-join.
	higher := object.NewSet()
	hp.Each(func(e object.Object) bool {
		t1 := e.(*object.Tuple)
		p1, _ := t1.Get("clsPrice")
		hp.Each(func(f object.Object) bool {
			t2 := f.(*object.Tuple)
			p2, _ := t2.Get("clsPrice")
			if p2.Compare(p1) > 0 {
				higher.Add(Project(object.SetOf(t1), "date", "clsPrice").Elems()[0])
			}
			return true
		})
		return true
	})
	high := AntiJoin(Project(hp, "date", "clsPrice"), higher)
	if high.Len() != 1 || !high.Contains(object.TupleOf("date", object.NewDate(85, 3, 3), "clsPrice", 62)) {
		t.Errorf("high = %s", high.CanonicalString())
	}
}

func TestAntiJoinNoSharedAttrs(t *testing.T) {
	a := object.SetOf(object.TupleOf("x", 1))
	empty := object.NewSet()
	if out := AntiJoin(a, empty); out.Len() != 1 {
		t.Error("anti-join with empty right should keep everything")
	}
	b := object.SetOf(object.TupleOf("y", 2))
	if out := AntiJoin(a, b); out.Len() != 0 {
		t.Error("anti-join with disjoint non-empty right excludes all (cross semantics)")
	}
}

func TestGroupMax(t *testing.T) {
	r := euterRel()
	// Per-day winner: sun, sun, ibm.
	winners := GroupMax(r, []string{"date"}, "clsPrice")
	if winners.Len() != 3 {
		t.Fatalf("winners = %d: %s", winners.Len(), winners.CanonicalString())
	}
	if !winners.Contains(object.TupleOf("date", object.NewDate(85, 3, 3), "stkCode", "ibm", "clsPrice", 160)) {
		t.Errorf("missing day-3 winner: %s", winners.CanonicalString())
	}
	// Ties keep all.
	r2 := object.SetOf(
		object.TupleOf("g", 1, "v", 5, "id", "a"),
		object.TupleOf("g", 1, "v", 5, "id", "b"),
		object.TupleOf("g", 1, "v", 4, "id", "c"),
	)
	if out := GroupMax(r2, []string{"g"}, "v"); out.Len() != 2 {
		t.Errorf("tie handling = %s", out.CanonicalString())
	}
}

func TestGroupMaxSkipsNullAndMissing(t *testing.T) {
	r := object.SetOf(
		object.TupleOf("g", 1, "v", object.Null{}),
		object.TupleOf("g", 1),
		object.TupleOf("g", 1, "v", 3),
	)
	out := GroupMax(r, []string{"g"}, "v")
	if out.Len() != 1 || !out.Contains(object.TupleOf("g", 1, "v", 3)) {
		t.Errorf("out = %s", out.CanonicalString())
	}
}

func eq(attr string, want object.Object) Pred {
	return func(t *object.Tuple) bool {
		v, ok := t.Get(attr)
		return ok && v.Equal(want)
	}
}

func gt(attr string, n int) Pred {
	return func(t *object.Tuple) bool {
		v, ok := t.Get(attr)
		return ok && object.Comparable(v, object.Int(n)) && v.Compare(object.Int(n)) > 0
	}
}
