package relalg

import (
	"fmt"
	"testing"

	"idl/internal/object"
)

func benchRelation(n, keyDomain int) *object.Set {
	s := object.NewSet()
	for i := 0; i < n; i++ {
		s.Add(object.TupleOf("k", i%keyDomain, "v", i, "tag", fmt.Sprintf("t%d", i%7)))
	}
	return s
}

func BenchmarkSelect(b *testing.B) {
	r := benchRelation(10000, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Select(r, func(t *object.Tuple) bool {
			v, _ := t.Get("k")
			return v.Equal(object.Int(42))
		})
		if out.Len() != 100 {
			b.Fatalf("selected %d", out.Len())
		}
	}
}

func BenchmarkEquiJoin(b *testing.B) {
	l := benchRelation(5000, 500)
	small := object.NewSet()
	for i := 0; i < 500; i++ {
		small.Add(object.TupleOf("key", i, "label", fmt.Sprintf("L%d", i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := EquiJoin(l, small, "k", "key")
		if out.Len() == 0 {
			b.Fatal("empty join")
		}
	}
}

func BenchmarkAntiJoin(b *testing.B) {
	l := benchRelation(5000, 500)
	r := benchRelation(2500, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AntiJoin(l, r)
	}
}

func BenchmarkGroupMax(b *testing.B) {
	r := benchRelation(10000, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := GroupMax(r, []string{"k"}, "v")
		if out.Len() != 100 {
			b.Fatalf("groups = %d", out.Len())
		}
	}
}
