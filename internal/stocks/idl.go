package stocks

import "fmt"

// Canonical IDL artifacts for the stock workload — the paper's §6 view
// rules and §7 update programs, shared by tests, examples, experiments
// and benchmarks.

// QueryAnyAbove returns the paper's "did any stock ever close above N"
// query for each schema (§2 query 1; §4.3): the same intention, one
// expression per schema, with the stock quantified over data, attribute
// names, and relation names respectively.
func QueryAnyAbove(threshold int) map[string]string {
	return map[string]string{
		"euter": fmt.Sprintf("?.euter.r(.stkCode=S, .clsPrice>%d)", threshold),
		"chwab": fmt.Sprintf("?.chwab.r(.S>%d)", threshold),
		"ource": fmt.Sprintf("?.ource.S(.clsPrice>%d)", threshold),
	}
}

// QueryHighestPerDay returns §2 query 2 ("for each day, the stock with
// the highest closing price") per schema.
func QueryHighestPerDay() map[string]string {
	return map[string]string{
		"euter": "?.euter.r(.date=D,.stkCode=S,.clsPrice=P), .euter.r~(.date=D, .clsPrice>P)",
		"chwab": "?.chwab.r(.date=D,.S=P), .chwab.r~(.date=D,.S2>P), S != date",
		"ource": "?.ource.S(.date=D,.clsPrice=P), ~.ource.S2(.date=D, .clsPrice>P)",
	}
}

// QueryCrossJoin is §4.3's cross-database join: stocks in ource and
// chwab with the same closing price on the same day.
const QueryCrossJoin = "?.chwab.r(.date=D,.S=P), .ource.S(.date=D,.clsPrice=P)"

// RulesUnified defines the unified view dbI.p over the three schemas
// (§6). The `S != date` guard keeps chwab's date attribute from being
// read as a stock.
var RulesUnified = []string{
	".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)",
	".dbI.p+(.date=D, .stk=S, .price=P) <- .chwab.r(.date=D, .S=P), S != date",
	".dbI.p+(.date=D, .stk=S, .price=P) <- .ource.S(.date=D, .clsPrice=P)",
}

// RulesUnifiedMapped is the name-mapping variant (§6's last example):
// chwab/ource names translate to euter codes via maps.mapCE / maps.mapOE.
var RulesUnifiedMapped = []string{
	".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)",
	".dbI.p+(.date=D, .stk=S, .price=P) <- .chwab.r(.date=D, .SC=P), .maps.mapCE(.from=SC, .to=S)",
	".dbI.p+(.date=D, .stk=S, .price=P) <- .ource.SO(.date=D, .clsPrice=P), .maps.mapOE(.from=SO, .to=S)",
}

// RulePnew reconciles value discrepancies by keeping the highest quote
// (the schema administrator's policy choice; §6 leaves it open).
const RulePnew = ".dbI.pnew+(.date=D,.stk=S,.price=P) <- .dbI.p(.date=D,.stk=S,.price=P), .dbI.p~(.date=D,.stk=S,.price>P)"

// RulesCustomized re-render the unified view in each user's native
// schema (Figure 1's D_i' views). dbO's rule is a higher-order view: its
// relation set is data dependent.
var RulesCustomized = []string{
	".dbE.r+(.date=D, .stkCode=S, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
	".dbC.r+(.date=D, .S=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
	".dbO.S+(.date=D, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
}

// ProgramDelStk deletes a stock's closing price on a date in all three
// schemas; unbound parameters act as wildcards (§7.1).
var ProgramDelStk = []string{
	".dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S,.date=D)",
	".dbU.delStk(.stk=S, .date=D) -> .chwab.r(.date=D, .S-=X)",
	".dbU.delStk(.stk=S, .date=D) -> .ource.S-(.date=D)",
}

// ProgramRmStk removes a stock entirely — data in euter, an attribute in
// chwab, a relation in ource (§7.1's metadata-updating program).
var ProgramRmStk = []string{
	".dbU.rmStk(.stk=S) -> .euter.r-(.stkCode=S)",
	".dbU.rmStk(.stk=S) -> .chwab.r(-.S)",
	".dbU.rmStk(.stk=S) -> .ource-.S",
}

// ProgramInsStk inserts a quote into all three schemas; every parameter
// is required (§7.1's binding-signature example).
var ProgramInsStk = []string{
	".dbU.insStk(.stk=S, .date=D, .price=P) -> .euter.r+(.stkCode=S,.date=D,.clsPrice=P)",
	".dbU.insStk(.stk=S, .date=D, .price=P) -> .chwab.r(.date=D, +.S=P)",
	".dbU.insStk(.stk=S, .date=D, .price=P) -> .ource.S+(.date=D,.clsPrice=P)",
}

// ViewUpdatePrograms are the §7.2 translations: updates on the unified
// view map to base updates; customized-view updates reuse them.
var ViewUpdatePrograms = []string{
	".dbI.p+(.date=D, .stk=S, .price=P) -> .euter.r+(.date=D, .stkCode=S, .clsPrice=P)",
	".dbI.p-(.date=D, .stk=S, .price=P) -> .euter.r-(.date=D, .stkCode=S, .clsPrice=P), .chwab.r(.date=D, .S-=P2), .ource.S-(.date=D)",
	".dbO.S+(.date=D, .clsPrice=P) -> .dbI.p+(.date=D, .stk=S, .price=P)",
	".dbE.r+(.date=D, .stkCode=S, .clsPrice=P) -> .dbI.p+(.date=D, .stk=S, .price=P)",
	".dbC.r+(.date=D, .S=P) -> .dbI.p+(.date=D, .stk=S, .price=P)",
}
