package stocks

import (
	"fmt"
	"sort"

	"idl/internal/datalog"
	"idl/internal/object"
	"idl/internal/relalg"
)

// The baselines encode the paper's central claim operationally: a
// first-order system needs schema-aware code. Each plan below takes the
// stock list (metadata!) as a Go-level input, and the generated Datalog
// programs grow linearly with the schema — one rule per stock for
// chwab/ource. IDL needs neither.

// getRelation fetches db.rel from a universe.
func getRelation(u *object.Tuple, db, rel string) (*object.Set, error) {
	dv, ok := u.Get(db)
	if !ok {
		return nil, fmt.Errorf("stocks: no database %s", db)
	}
	dt, ok := dv.(*object.Tuple)
	if !ok {
		return nil, fmt.Errorf("stocks: %s is not a database", db)
	}
	rv, ok := dt.Get(rel)
	if !ok {
		return nil, fmt.Errorf("stocks: no relation %s.%s", db, rel)
	}
	rs, ok := rv.(*object.Set)
	if !ok {
		return nil, fmt.Errorf("stocks: %s.%s is not a relation", db, rel)
	}
	return rs, nil
}

// AnyAboveEuter answers "which stocks ever closed above threshold" with a
// hand-coded plan over the euter schema: σ(clsPrice>t) then π(stkCode).
func AnyAboveEuter(u *object.Tuple, threshold int) ([]string, error) {
	r, err := getRelation(u, "euter", "r")
	if err != nil {
		return nil, err
	}
	t := object.Int(threshold)
	hot := relalg.Select(r, func(tp *object.Tuple) bool {
		v, ok := tp.Get("clsPrice")
		return ok && object.Comparable(v, t) && v.Compare(t) > 0
	})
	return stringColumn(relalg.Project(hot, "stkCode"), "stkCode"), nil
}

// AnyAboveChwab answers the same intention over chwab — but the plan must
// be handed the stock list, because the stocks are attribute names the
// query language cannot iterate.
func AnyAboveChwab(u *object.Tuple, stockAttrs []string, threshold int) ([]string, error) {
	r, err := getRelation(u, "chwab", "r")
	if err != nil {
		return nil, err
	}
	t := object.Int(threshold)
	seen := map[string]bool{}
	r.Each(func(e object.Object) bool {
		tp, ok := e.(*object.Tuple)
		if !ok {
			return true
		}
		for _, s := range stockAttrs {
			if seen[s] {
				continue
			}
			v, ok := tp.Get(s)
			if ok && object.Comparable(v, t) && v.Compare(t) > 0 {
				seen[s] = true
			}
		}
		return true
	})
	return sortedKeys(seen), nil
}

// AnyAboveOurce answers it over ource — one SELECT per relation, because
// the stocks are relation names.
func AnyAboveOurce(u *object.Tuple, stockRels []string, threshold int) ([]string, error) {
	t := object.Int(threshold)
	seen := map[string]bool{}
	for _, s := range stockRels {
		rel, err := getRelation(u, "ource", s)
		if err != nil {
			return nil, err
		}
		hot := relalg.Select(rel, func(tp *object.Tuple) bool {
			v, ok := tp.Get("clsPrice")
			return ok && object.Comparable(v, t) && v.Compare(t) > 0
		})
		if hot.Len() > 0 {
			seen[s] = true
		}
	}
	return sortedKeys(seen), nil
}

// DayWinner is one per-day highest-close answer row.
type DayWinner struct {
	Date  object.Date
	Stock string
	Price int
}

// HighestPerDayEuter computes §2 query 2 with a grouped-max plan.
func HighestPerDayEuter(u *object.Tuple) ([]DayWinner, error) {
	r, err := getRelation(u, "euter", "r")
	if err != nil {
		return nil, err
	}
	winners := relalg.GroupMax(r, []string{"date"}, "clsPrice")
	return collectWinners(winners, "stkCode")
}

// HighestPerDayChwab needs the stock list to scan the columns.
func HighestPerDayChwab(u *object.Tuple, stockAttrs []string) ([]DayWinner, error) {
	r, err := getRelation(u, "chwab", "r")
	if err != nil {
		return nil, err
	}
	var out []DayWinner
	var failure error
	r.Each(func(e object.Object) bool {
		tp, ok := e.(*object.Tuple)
		if !ok {
			return true
		}
		dv, ok := tp.Get("date")
		if !ok {
			return true
		}
		date, ok := dv.(object.Date)
		if !ok {
			return true
		}
		best, bestStock, have := 0, "", false
		for _, s := range stockAttrs {
			v, ok := tp.Get(s)
			if !ok {
				continue
			}
			n, ok := v.(object.Int)
			if !ok {
				continue
			}
			if !have || int(n) > best {
				best, bestStock, have = int(n), s, true
			}
		}
		if have {
			out = append(out, DayWinner{Date: date, Stock: bestStock, Price: best})
		}
		return true
	})
	if failure != nil {
		return nil, failure
	}
	sortWinners(out)
	return out, nil
}

// HighestPerDayOurce scans every stock relation — the plan enumerates
// metadata in Go.
func HighestPerDayOurce(u *object.Tuple, stockRels []string) ([]DayWinner, error) {
	best := map[object.Date]DayWinner{}
	for _, s := range stockRels {
		rel, err := getRelation(u, "ource", s)
		if err != nil {
			return nil, err
		}
		var bad error
		rel.Each(func(e object.Object) bool {
			tp, ok := e.(*object.Tuple)
			if !ok {
				return true
			}
			dv, _ := tp.Get("date")
			date, ok := dv.(object.Date)
			if !ok {
				return true
			}
			pv, _ := tp.Get("clsPrice")
			p, ok := pv.(object.Int)
			if !ok {
				return true
			}
			cur, has := best[date]
			if !has || int(p) > cur.Price {
				best[date] = DayWinner{Date: date, Stock: s, Price: int(p)}
			}
			return true
		})
		if bad != nil {
			return nil, bad
		}
	}
	out := make([]DayWinner, 0, len(best))
	for _, w := range best {
		out = append(out, w)
	}
	sortWinners(out)
	return out, nil
}

// CrossMatch is one (stock, date, price) agreement between chwab and
// ource.
type CrossMatch struct {
	Stock string
	Date  object.Date
	Price int
}

// CrossJoinChwabOurce computes §4.3's cross-database join with hand-coded
// per-stock joins: for each stock name the plan joins chwab's column
// against ource's relation.
func CrossJoinChwabOurce(u *object.Tuple, stocks []string) ([]CrossMatch, error) {
	chwab, err := getRelation(u, "chwab", "r")
	if err != nil {
		return nil, err
	}
	var out []CrossMatch
	for _, s := range stocks {
		rel, err := getRelation(u, "ource", s)
		if err != nil {
			return nil, err
		}
		// chwab side: (date, price-of-s); rename the column to clsPrice
		// and natural-join with the ource relation.
		col := object.NewSet()
		chwab.Each(func(e object.Object) bool {
			tp, ok := e.(*object.Tuple)
			if !ok {
				return true
			}
			d, dok := tp.Get("date")
			v, vok := tp.Get(s)
			if dok && vok && v.Kind() != object.KindNull {
				col.Add(object.TupleOf("date", d, "clsPrice", v))
			}
			return true
		})
		joined := relalg.NaturalJoin(col, rel)
		joined.Each(func(e object.Object) bool {
			tp := e.(*object.Tuple)
			d, _ := tp.Get("date")
			p, _ := tp.Get("clsPrice")
			date, dok := d.(object.Date)
			price, pok := p.(object.Int)
			if dok && pok {
				out = append(out, CrossMatch{Stock: s, Date: date, Price: int(price)})
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stock != out[j].Stock {
			return out[i].Stock < out[j].Stock
		}
		return out[i].Date.Compare(out[j].Date) < 0
	})
	return out, nil
}

// ---------------------------------------------------------------------------
// Datalog baselines: program size grows with the schema.

// DatalogEuter loads euter as quote(date, stock, price) facts plus one
// rule for "above threshold". Returns the database and the number of
// rules the program needed.
func DatalogEuter(u *object.Tuple, threshold int) (*datalog.DB, int, error) {
	r, err := getRelation(u, "euter", "r")
	if err != nil {
		return nil, 0, err
	}
	db := datalog.NewDB()
	r.Each(func(e object.Object) bool {
		tp := e.(*object.Tuple)
		d, _ := tp.Get("date")
		s, _ := tp.Get("stkCode")
		p, _ := tp.Get("clsPrice")
		db.Fact("quote", d, s, p)
		return true
	})
	rule := datalog.Rule{
		Head: datalog.P("above", datalog.V("S")),
		Body: []datalog.Atom{
			datalog.P("quote", datalog.V("D"), datalog.V("S"), datalog.V("P")),
			datalog.Cmp(datalog.V("P"), datalog.GT, datalog.C(threshold)),
		},
	}
	if err := db.AddRule(rule); err != nil {
		return nil, 0, err
	}
	return db, 1, nil
}

// DatalogOurce loads ource with one predicate per stock relation and
// generates ONE RULE PER STOCK for the same intention — the program size
// is linear in the schema, which is the paper's expressiveness argument
// made concrete.
func DatalogOurce(u *object.Tuple, stockRels []string, threshold int) (*datalog.DB, int, error) {
	db := datalog.NewDB()
	for _, s := range stockRels {
		rel, err := getRelation(u, "ource", s)
		if err != nil {
			return nil, 0, err
		}
		rel.Each(func(e object.Object) bool {
			tp := e.(*object.Tuple)
			d, _ := tp.Get("date")
			p, _ := tp.Get("clsPrice")
			db.Fact("stk_"+s, d, p)
			return true
		})
	}
	rules := 0
	for _, s := range stockRels {
		rule := datalog.Rule{
			Head: datalog.P("above", datalog.C(s)),
			Body: []datalog.Atom{
				datalog.P("stk_"+s, datalog.V("D"), datalog.V("P")),
				datalog.Cmp(datalog.V("P"), datalog.GT, datalog.C(threshold)),
			},
		}
		if err := db.AddRule(rule); err != nil {
			return nil, 0, err
		}
		rules++
	}
	return db, rules, nil
}

// DatalogChwab likewise needs one rule per stock: the price sits in a
// different column per stock, so each rule projects a different position
// of a wide fact.
func DatalogChwab(u *object.Tuple, stockAttrs []string, threshold int) (*datalog.DB, int, error) {
	r, err := getRelation(u, "chwab", "r")
	if err != nil {
		return nil, 0, err
	}
	db := datalog.NewDB()
	// Facts: col_<stock>(date, price) — the relational encoding a
	// first-order system would need after "unpivoting" by hand.
	r.Each(func(e object.Object) bool {
		tp := e.(*object.Tuple)
		d, _ := tp.Get("date")
		for _, s := range stockAttrs {
			if v, ok := tp.Get(s); ok && v.Kind() != object.KindNull {
				db.Fact("col_"+s, d, v)
			}
		}
		return true
	})
	rules := 0
	for _, s := range stockAttrs {
		rule := datalog.Rule{
			Head: datalog.P("above", datalog.C(s)),
			Body: []datalog.Atom{
				datalog.P("col_"+s, datalog.V("D"), datalog.V("P")),
				datalog.Cmp(datalog.V("P"), datalog.GT, datalog.C(threshold)),
			},
		}
		if err := db.AddRule(rule); err != nil {
			return nil, 0, err
		}
		rules++
	}
	return db, rules, nil
}

// ---------------------------------------------------------------------------
// helpers

func stringColumn(r *object.Set, attr string) []string {
	seen := map[string]bool{}
	r.Each(func(e object.Object) bool {
		if tp, ok := e.(*object.Tuple); ok {
			if v, ok := tp.Get(attr); ok {
				if s, ok := v.(object.Str); ok {
					seen[string(s)] = true
				}
			}
		}
		return true
	})
	return sortedKeys(seen)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortWinners(ws []DayWinner) {
	sort.Slice(ws, func(i, j int) bool {
		return ws[i].Date.Compare(ws[j].Date) < 0
	})
}

func collectWinners(r *object.Set, stockAttr string) ([]DayWinner, error) {
	var out []DayWinner
	r.Each(func(e object.Object) bool {
		tp := e.(*object.Tuple)
		d, _ := tp.Get("date")
		s, _ := tp.Get(stockAttr)
		p, _ := tp.Get("clsPrice")
		date, dok := d.(object.Date)
		stock, sok := s.(object.Str)
		price, pok := p.(object.Int)
		if dok && sok && pok {
			out = append(out, DayWinner{Date: date, Stock: string(stock), Price: int(price)})
		}
		return true
	})
	sortWinners(out)
	return out, nil
}
