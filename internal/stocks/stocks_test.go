package stocks

import (
	"reflect"
	"testing"

	"idl/internal/core"
	"idl/internal/datalog"
	"idl/internal/object"
	"idl/internal/parser"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Stocks: 5, Days: 7, Seed: 99, Discrepancies: 3})
	b := Generate(Config{Stocks: 5, Days: 7, Seed: 99, Discrepancies: 3})
	if !reflect.DeepEqual(a.Price, b.Price) || !reflect.DeepEqual(a.ChwabPrice, b.ChwabPrice) {
		t.Error("same config must generate identical datasets")
	}
	c := Generate(Config{Stocks: 5, Days: 7, Seed: 100})
	if reflect.DeepEqual(a.Price, c.Price) {
		t.Error("different seeds should differ")
	}
}

func TestGenerateShape(t *testing.T) {
	ds := Generate(Config{Stocks: 4, Days: 40, Seed: 1})
	if len(ds.Stocks) != 4 || len(ds.Dates) != 40 {
		t.Fatalf("shape = %d stocks, %d dates", len(ds.Stocks), len(ds.Dates))
	}
	for _, ps := range ds.Price {
		for _, p := range ps {
			if p < 1 {
				t.Fatalf("price %d < 1", p)
			}
		}
	}
	// Dates strictly increasing.
	for i := 1; i < len(ds.Dates); i++ {
		if ds.Dates[i].Compare(ds.Dates[i-1]) <= 0 {
			t.Fatalf("dates not increasing at %d: %v then %v", i, ds.Dates[i-1], ds.Dates[i])
		}
	}
	// Degenerate configs clamp.
	tiny := Generate(Config{})
	if len(tiny.Stocks) != 1 || len(tiny.Dates) != 1 {
		t.Errorf("zero config should clamp to 1×1")
	}
}

func TestPopulateSchemas(t *testing.T) {
	u, ds := Universe(Config{Stocks: 3, Days: 4, Seed: 7})
	e := engineOn(u)
	// euter has 12 rows.
	if ans := q(t, e, "?.euter.r(.date=D,.stkCode=S,.clsPrice=P)"); ans.Len() != 12 {
		t.Errorf("euter rows = %d", ans.Len())
	}
	// chwab has one row per date with one attribute per stock (+date).
	if ans := q(t, e, "?.chwab.r(.date=D)"); ans.Len() != 4 {
		t.Errorf("chwab rows = %d", ans.Len())
	}
	// ource has one relation per stock.
	if ans := q(t, e, "?.ource.Y"); ans.Len() != 3 {
		t.Errorf("ource relations = %d", ans.Len())
	}
	_ = ds
}

func TestDiscrepancyInjection(t *testing.T) {
	ds := Generate(Config{Stocks: 5, Days: 5, Seed: 3, Discrepancies: 4})
	diff := 0
	for s := range ds.Price {
		for d := range ds.Price[s] {
			if ds.Price[s][d] != ds.ChwabPrice[s][d] {
				diff++
				if ds.ChwabPrice[s][d] <= ds.Price[s][d] {
					t.Error("discrepancies should raise the chwab price")
				}
			}
		}
	}
	if diff == 0 || diff > 4 {
		t.Errorf("discrepancies applied = %d, want 1..4", diff)
	}
}

func TestNameConflictMappings(t *testing.T) {
	u, ds := Universe(Config{Stocks: 2, Days: 2, Seed: 5, NameConflict: true})
	if ds.ChwabName[0] == ds.Stocks[0] {
		t.Fatal("chwab names should differ under NameConflict")
	}
	e := engineOn(u)
	for _, src := range RulesUnifiedMapped {
		mustRule(t, e, src)
	}
	ans := q(t, e, "?.dbI.p(.date=D,.stk=S,.price=P)")
	if ans.Len() != 4 { // 2 stocks × 2 days, all three schemas agree
		t.Errorf("mapped unified view rows = %d, want 4:\n%s", ans.Len(), ans)
	}
}

// --- Differential tests: IDL vs relalg vs Datalog ---

func TestAnyAboveAgreesAcrossEngines(t *testing.T) {
	u, ds := Universe(Config{Stocks: 12, Days: 20, Seed: 11})
	threshold := ds.MaxPrice() * 3 / 4
	e := engineOn(u)

	// IDL per schema.
	idlResults := map[string][]string{}
	for db, src := range QueryAnyAbove(threshold) {
		ans := q(t, e, src)
		var names []string
		for _, v := range ans.Column("S") {
			names = append(names, string(v.(object.Str)))
		}
		sortStrings(names)
		idlResults[db] = names
	}
	// All three schemas hold the same facts, so all three IDL answers
	// must agree.
	if !reflect.DeepEqual(idlResults["euter"], idlResults["ource"]) {
		t.Errorf("IDL euter %v != ource %v", idlResults["euter"], idlResults["ource"])
	}
	if !reflect.DeepEqual(idlResults["euter"], idlResults["chwab"]) {
		t.Errorf("IDL euter %v != chwab %v", idlResults["euter"], idlResults["chwab"])
	}

	// Relalg baselines.
	fromEuter, err := AnyAboveEuter(u, threshold)
	if err != nil {
		t.Fatal(err)
	}
	fromChwab, err := AnyAboveChwab(u, ds.ChwabName, threshold)
	if err != nil {
		t.Fatal(err)
	}
	fromOurce, err := AnyAboveOurce(u, ds.OurceName, threshold)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromEuter, idlResults["euter"]) {
		t.Errorf("relalg euter %v != IDL %v", fromEuter, idlResults["euter"])
	}
	if !reflect.DeepEqual(fromChwab, idlResults["chwab"]) {
		t.Errorf("relalg chwab %v != IDL %v", fromChwab, idlResults["chwab"])
	}
	if !reflect.DeepEqual(fromOurce, idlResults["ource"]) {
		t.Errorf("relalg ource %v != IDL %v", fromOurce, idlResults["ource"])
	}

	// Datalog baselines — and the program-size claim.
	dlE, rulesE, err := DatalogEuter(u, threshold)
	if err != nil {
		t.Fatal(err)
	}
	dlO, rulesO, err := DatalogOurce(u, ds.OurceName, threshold)
	if err != nil {
		t.Fatal(err)
	}
	dlC, rulesC, err := DatalogChwab(u, ds.ChwabName, threshold)
	if err != nil {
		t.Fatal(err)
	}
	if rulesE != 1 {
		t.Errorf("euter Datalog program = %d rules, want 1", rulesE)
	}
	if rulesO != len(ds.Stocks) || rulesC != len(ds.Stocks) {
		t.Errorf("chwab/ource Datalog programs = %d/%d rules, want %d each (linear in schema)",
			rulesC, rulesO, len(ds.Stocks))
	}
	for name, db := range map[string]*datalog.DB{"euter": dlE, "ource": dlO, "chwab": dlC} {
		rows, err := db.Query(datalog.P("above", datalog.V("S")))
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, r := range rows {
			names = append(names, string(r["S"].(object.Str)))
		}
		sortStrings(names)
		if !reflect.DeepEqual(names, idlResults["euter"]) {
			t.Errorf("datalog %s %v != IDL %v", name, names, idlResults["euter"])
		}
	}
}

func TestHighestPerDayAgrees(t *testing.T) {
	u, ds := Universe(Config{Stocks: 8, Days: 12, Seed: 21})
	e := engineOn(u)

	baseline, err := HighestPerDayEuter(u)
	if err != nil {
		t.Fatal(err)
	}
	fromChwab, err := HighestPerDayChwab(u, ds.ChwabName)
	if err != nil {
		t.Fatal(err)
	}
	fromOurce, err := HighestPerDayOurce(u, ds.OurceName)
	if err != nil {
		t.Fatal(err)
	}
	// Ties make winner identity ambiguous; compare dates and prices,
	// which are unique per day.
	if len(baseline) != len(ds.Dates) {
		t.Fatalf("winners = %d, want %d", len(baseline), len(ds.Dates))
	}
	for i := range baseline {
		if baseline[i].Price != fromChwab[i].Price || baseline[i].Price != fromOurce[i].Price {
			t.Errorf("day %v: euter %d, chwab %d, ource %d",
				baseline[i].Date, baseline[i].Price, fromChwab[i].Price, fromOurce[i].Price)
		}
	}

	// IDL (euter form): winning prices must match.
	ans := q(t, e, QueryHighestPerDay()["euter"])
	got := map[object.Date]int{}
	for _, r := range ans.Rows {
		got[r["D"].(object.Date)] = int(r["P"].(object.Int))
	}
	for _, w := range baseline {
		if got[w.Date] != w.Price {
			t.Errorf("IDL winner on %v = %d, want %d", w.Date, got[w.Date], w.Price)
		}
	}
}

func TestCrossJoinAgrees(t *testing.T) {
	u, ds := Universe(Config{Stocks: 6, Days: 8, Seed: 31})
	e := engineOn(u)
	matches, err := CrossJoinChwabOurce(u, ds.Stocks)
	if err != nil {
		t.Fatal(err)
	}
	// No discrepancies: every (stock, day) agrees.
	if len(matches) != 6*8 {
		t.Fatalf("baseline matches = %d, want 48", len(matches))
	}
	ans := q(t, e, QueryCrossJoin)
	if ans.Len() != len(matches) {
		t.Errorf("IDL matches = %d, baseline = %d", ans.Len(), len(matches))
	}

	// With discrepancies, both engines must shrink identically.
	u2, ds2 := Universe(Config{Stocks: 6, Days: 8, Seed: 31, Discrepancies: 10})
	e2 := engineOn(u2)
	matches2, err := CrossJoinChwabOurce(u2, ds2.Stocks)
	if err != nil {
		t.Fatal(err)
	}
	ans2 := q(t, e2, QueryCrossJoin)
	if ans2.Len() != len(matches2) {
		t.Errorf("with discrepancies: IDL %d, baseline %d", ans2.Len(), len(matches2))
	}
	if len(matches2) >= len(matches) {
		t.Error("discrepancies should remove some matches")
	}
}

func TestUnifiedViewCountsWithDiscrepancies(t *testing.T) {
	u, ds := Universe(Config{Stocks: 5, Days: 6, Seed: 41, Discrepancies: 7})
	e := engineOn(u)
	for _, src := range RulesUnified {
		mustRule(t, e, src)
	}
	mustRule(t, e, RulePnew)
	// p holds base facts ∪ discrepant chwab quotes.
	distinct := countDistinctQuotes(ds)
	ans := q(t, e, "?.dbI.p(.date=D,.stk=S,.price=P)")
	if ans.Len() != distinct {
		t.Errorf("p rows = %d, want %d", ans.Len(), distinct)
	}
	// pnew resolves to exactly one price per (stock, day).
	ans = q(t, e, "?.dbI.pnew(.date=D,.stk=S,.price=P)")
	if ans.Len() != len(ds.Stocks)*len(ds.Dates) {
		t.Errorf("pnew rows = %d, want %d", ans.Len(), len(ds.Stocks)*len(ds.Dates))
	}
}

func countDistinctQuotes(ds *Dataset) int {
	n := 0
	for s := range ds.Price {
		for d := range ds.Price[s] {
			n++
			if ds.ChwabPrice[s][d] != ds.Price[s][d] {
				n++
			}
		}
	}
	return n
}

func TestRoundTripFidelity(t *testing.T) {
	// Figure 1 end to end at generated scale: D_i -> U -> D_i' ≡ D_i.
	u, ds := Universe(Config{Stocks: 7, Days: 9, Seed: 51})
	e := engineOn(u)
	for _, src := range RulesUnified {
		mustRule(t, e, src)
	}
	for _, src := range RulesCustomized {
		mustRule(t, e, src)
	}
	eff, err := e.EffectiveUniverse()
	if err != nil {
		t.Fatal(err)
	}
	// dbE.r ≡ euter.r
	baseE, _ := getRelation(u, "euter", "r")
	viewE, err := getRelation(eff, "dbE", "r")
	if err != nil {
		t.Fatal(err)
	}
	if !baseE.Equal(viewE) {
		t.Error("dbE.r != euter.r (round trip broken)")
	}
	// dbC.r ≡ chwab.r
	baseC, _ := getRelation(u, "chwab", "r")
	viewC, err := getRelation(eff, "dbC", "r")
	if err != nil {
		t.Fatal(err)
	}
	if !baseC.Equal(viewC) {
		t.Errorf("dbC.r != chwab.r (round trip broken):\nbase %d rows, view %d rows",
			baseC.Len(), viewC.Len())
	}
	// dbO.s ≡ ource.s for every stock.
	for _, s := range ds.OurceName {
		baseO, _ := getRelation(u, "ource", s)
		viewO, err := getRelation(eff, "dbO", s)
		if err != nil {
			t.Fatalf("dbO.%s missing: %v", s, err)
		}
		if !baseO.Equal(viewO) {
			t.Errorf("dbO.%s != ource.%s", s, s)
		}
	}
}

// --- helpers ---

func engineOn(u *object.Tuple) *core.Engine {
	e := core.NewEngine()
	u.Each(func(db string, v object.Object) bool {
		e.Base().Put(db, v)
		return true
	})
	e.Invalidate()
	return e
}

func q(t testing.TB, e *core.Engine, src string) *core.Answer {
	t.Helper()
	query, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	ans, err := e.Query(query)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return ans
}

func mustRule(t testing.TB, e *core.Engine, src string) {
	t.Helper()
	r, err := parser.ParseRule(src)
	if err != nil {
		t.Fatalf("parse rule %q: %v", src, err)
	}
	if err := e.AddRule(r); err != nil {
		t.Fatalf("add rule %q: %v", src, err)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
