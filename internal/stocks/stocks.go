// Package stocks generates the paper's three-schema stock-market workload
// at configurable scale, and carries the canonical IDL artifacts (unified
// and customized view rules, update programs) plus the schema-specific
// baseline plans the paper argues a first-order system is stuck with.
//
// The generator is deterministic: the same Config always produces the
// same universe, so experiments and benchmarks are reproducible. The same
// facts render into all three schemas:
//
//	euter: r{(date, stkCode, clsPrice)}
//	chwab: r{(date, stk1, stk2, …)}
//	ource: stk1{(date, clsPrice)}, stk2{…}, …
package stocks

import (
	"fmt"

	"idl/internal/object"
)

// Config sizes and seeds a workload.
type Config struct {
	// Stocks is how many stocks to generate (named stk001, stk002, …).
	Stocks int
	// Days is how many consecutive trading days, starting 1/2/85.
	Days int
	// Seed drives the deterministic price walk.
	Seed uint64
	// Discrepancies injects this many chwab prices that differ from the
	// euter/ource quote (exercising §6's value-reconciliation examples).
	Discrepancies int
	// NameConflict renders chwab attribute names and ource relation
	// names as vendor codes (cXXX/oXXX) different from euter's stkCodes,
	// together with the mapCE/mapOE mapping relations in a `maps`
	// database (§6's last example).
	NameConflict bool
}

// DefaultConfig is a small, fast workload.
func DefaultConfig() Config {
	return Config{Stocks: 10, Days: 10, Seed: 42}
}

// Dataset is a generated workload before rendering into schemas.
type Dataset struct {
	Config Config
	Stocks []string // euter stock codes
	Dates  []object.Date
	// Price[s][d] is the closing price (in whole dollars) of stock s on
	// day d as euter and ource report it.
	Price [][]int
	// ChwabPrice mirrors Price with Discrepancies perturbations applied.
	ChwabPrice [][]int
	// ChwabName / OurceName map stock index to the attribute / relation
	// name used in chwab / ource (same as Stocks unless NameConflict).
	ChwabName []string
	OurceName []string
}

// rng is a small deterministic xorshift* generator: the workload must not
// depend on math/rand's version-dependent stream.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 2685821657736338717
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Generate builds a deterministic dataset from cfg.
func Generate(cfg Config) *Dataset {
	if cfg.Stocks <= 0 {
		cfg.Stocks = 1
	}
	if cfg.Days <= 0 {
		cfg.Days = 1
	}
	r := &rng{s: cfg.Seed*2862933555777941757 + 3037000493}
	ds := &Dataset{Config: cfg}
	for i := 0; i < cfg.Stocks; i++ {
		ds.Stocks = append(ds.Stocks, fmt.Sprintf("stk%03d", i+1))
	}
	// Trading days: consecutive calendar days starting 1/2/85 (weekends
	// don't matter to the semantics).
	y, m, d := 1985, 1, 2
	for i := 0; i < cfg.Days; i++ {
		ds.Dates = append(ds.Dates, object.Date{Year: y, Month: m, Day: d})
		d++
		if d > 28 {
			d = 1
			m++
			if m > 12 {
				m = 1
				y++
			}
		}
	}
	// Price walk: start in [20, 220), move ±0..4 per day, floor at 1.
	ds.Price = make([][]int, cfg.Stocks)
	for s := range ds.Stocks {
		prices := make([]int, cfg.Days)
		p := 20 + r.intn(200)
		for day := 0; day < cfg.Days; day++ {
			move := r.intn(9) - 4
			p += move
			if p < 1 {
				p = 1
			}
			prices[day] = p
		}
		ds.Price[s] = prices
	}
	// Chwab prices: copy, then perturb Discrepancies entries by +1..5.
	ds.ChwabPrice = make([][]int, cfg.Stocks)
	for s := range ds.Price {
		ds.ChwabPrice[s] = append([]int(nil), ds.Price[s]...)
	}
	for i := 0; i < cfg.Discrepancies; i++ {
		s := r.intn(cfg.Stocks)
		day := r.intn(cfg.Days)
		ds.ChwabPrice[s][day] = ds.Price[s][day] + 1 + r.intn(5)
	}
	// Names per schema.
	ds.ChwabName = make([]string, cfg.Stocks)
	ds.OurceName = make([]string, cfg.Stocks)
	for s, code := range ds.Stocks {
		if cfg.NameConflict {
			ds.ChwabName[s] = fmt.Sprintf("c%03d", s+1)
			ds.OurceName[s] = fmt.Sprintf("o%03d", s+1)
		} else {
			ds.ChwabName[s] = code
			ds.OurceName[s] = code
		}
	}
	return ds
}

// Populate renders the dataset into a universe tuple, creating the
// euter, chwab and ource databases (and maps, when NameConflict).
func (ds *Dataset) Populate(u *object.Tuple) {
	euterR := object.NewSet()
	for s, code := range ds.Stocks {
		for day, date := range ds.Dates {
			euterR.Add(object.TupleOf("date", date, "stkCode", code, "clsPrice", ds.Price[s][day]))
		}
	}
	euter := object.NewTuple()
	euter.Put("r", euterR)
	u.Put("euter", euter)

	chwabR := object.NewSet()
	for day, date := range ds.Dates {
		tup := object.NewTuple()
		tup.Put("date", date)
		for s := range ds.Stocks {
			tup.Put(ds.ChwabName[s], object.Int(ds.ChwabPrice[s][day]))
		}
		chwabR.Add(tup)
	}
	chwab := object.NewTuple()
	chwab.Put("r", chwabR)
	u.Put("chwab", chwab)

	ource := object.NewTuple()
	for s := range ds.Stocks {
		rel := object.NewSet()
		for day, date := range ds.Dates {
			rel.Add(object.TupleOf("date", date, "clsPrice", ds.Price[s][day]))
		}
		ource.Put(ds.OurceName[s], rel)
	}
	u.Put("ource", ource)

	if ds.Config.NameConflict {
		mapCE := object.NewSet()
		mapOE := object.NewSet()
		for s, code := range ds.Stocks {
			mapCE.Add(object.TupleOf("from", ds.ChwabName[s], "to", code))
			mapOE.Add(object.TupleOf("from", ds.OurceName[s], "to", code))
		}
		maps := object.NewTuple()
		maps.Put("mapCE", mapCE)
		maps.Put("mapOE", mapOE)
		u.Put("maps", maps)
	}
}

// Universe generates and renders in one call.
func Universe(cfg Config) (*object.Tuple, *Dataset) {
	ds := Generate(cfg)
	u := object.NewTuple()
	ds.Populate(u)
	return u, ds
}

// MaxPrice returns the highest euter price in the dataset (useful for
// choosing selective thresholds).
func (ds *Dataset) MaxPrice() int {
	max := 0
	for _, ps := range ds.Price {
		for _, p := range ps {
			if p > max {
				max = p
			}
		}
	}
	return max
}
