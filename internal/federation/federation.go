// Package federation puts every member database of an IDL universe
// behind an explicit source boundary with failure semantics.
//
// The paper's setting is a federation of autonomously administered
// databases (Pegasus-style remote sources), yet a naive reproduction
// evaluates every member as an always-available in-memory tuple. This
// package restores the missing distance: a member database is a Source
// (Scan/Relations/Attributes, all context-aware), and composable
// wrappers add the failure modes and the defenses a real multidatabase
// system needs — a deterministic fault injector for chaos testing, a
// per-operation timeout, a retry policy with capped exponential backoff
// and jitter, and a per-source circuit breaker.
//
// The catalog mounts Sources next to local databases and snapshots them
// through the wrapper stack before evaluation; an unreachable member
// either fails the request (fail-fast, the default) or is dropped from
// the effective universe and reported in a Degraded report (best-effort).
package federation

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"idl/internal/object"
)

// Source is one member database of the federation: a named collection
// of relations that must be assumed remote, slow, or down. All methods
// honor context cancellation. Implementations must be safe for
// concurrent use.
type Source interface {
	// Name identifies the member database (diagnostics only; the mount
	// name decides where its relations appear in the universe).
	Name() string
	// Relations lists the member's relation names.
	Relations(ctx context.Context) ([]string, error)
	// Scan enumerates the elements of one relation, calling yield once
	// per element until it returns false. A non-nil error means the scan
	// did not complete; elements already yielded may be a prefix.
	Scan(ctx context.Context, rel string, yield func(object.Object) bool) error
	// Attributes lists the union of attribute names across a relation's
	// tuples.
	Attributes(ctx context.Context, rel string) ([]string, error)
}

// SourceError is the typed error every federation failure surfaces as:
// which member failed, during which operation, and why.
type SourceError struct {
	Source string // member database name
	Op     string // "relations", "scan", "attributes", "sync"
	Err    error
}

func (e *SourceError) Error() string {
	return fmt.Sprintf("federation: source %s: %s: %v", e.Source, e.Op, e.Err)
}

func (e *SourceError) Unwrap() error { return e.Err }

// ErrInjected is the root cause of every fault the Injector raises.
var ErrInjected = errors.New("injected fault")

// ErrOpen is returned by a Breaker that is rejecting calls without
// consulting its source.
var ErrOpen = errors.New("circuit open")

// MemorySource adapts an in-memory database (a tuple of relation sets,
// the shape the engine evaluates) to the Source interface. It checks
// cancellation between elements, so wrapped latency and timeouts behave
// as they would against a remote member.
type MemorySource struct {
	name string
	db   *object.Tuple
}

// NewMemorySource wraps a database tuple. The tuple is read, never
// mutated.
func NewMemorySource(name string, db *object.Tuple) *MemorySource {
	if db == nil {
		db = object.NewTuple()
	}
	return &MemorySource{name: name, db: db}
}

// Name implements Source.
func (m *MemorySource) Name() string { return m.name }

// Relations implements Source.
func (m *MemorySource) Relations(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return append([]string(nil), m.db.SortedAttrs()...), nil
}

// Scan implements Source.
func (m *MemorySource) Scan(ctx context.Context, rel string, yield func(object.Object) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	v, ok := m.db.Get(rel)
	if !ok {
		return fmt.Errorf("no relation %q in source %s", rel, m.name)
	}
	set, ok := v.(*object.Set)
	if !ok {
		return fmt.Errorf("relation %q in source %s is not a set", rel, m.name)
	}
	var failure error
	set.Each(func(e object.Object) bool {
		if err := ctx.Err(); err != nil {
			failure = err
			return false
		}
		return yield(e)
	})
	return failure
}

// Attributes implements Source.
func (m *MemorySource) Attributes(ctx context.Context, rel string) ([]string, error) {
	seen := map[string]bool{}
	err := m.Scan(ctx, rel, func(e object.Object) bool {
		if t, ok := e.(*object.Tuple); ok {
			for _, a := range t.Attrs() {
				seen[a] = true
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out, nil
}

// rng is the same deterministic xorshift* generator the stocks workload
// uses: fault schedules and retry jitter must not depend on math/rand's
// version-dependent stream.
type rng struct{ s uint64 }

func newRNG(seed uint64) rng {
	return rng{s: seed*2862933555777941757 + 3037000493}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 2685821657736338717
}

// chance reports an event with probability p, consuming one draw.
func (r *rng) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(r.next()%1e9)/1e9 < p
}
