package federation

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"idl/internal/object"
)

// Fetch pulls a complete snapshot of a member database: every relation
// scanned into a fresh set, assembled as a database tuple the engine
// can evaluate. On failure it returns a *SourceError naming the member
// and the operation that failed.
func Fetch(ctx context.Context, src Source) (*object.Tuple, error) {
	rels, err := src.Relations(ctx)
	if err != nil {
		return nil, &SourceError{Source: src.Name(), Op: "relations", Err: err}
	}
	sort.Strings(rels)
	db := object.NewTuple()
	for _, rel := range rels {
		set := object.NewSet()
		if err := src.Scan(ctx, rel, func(e object.Object) bool { set.Add(e); return true }); err != nil {
			return nil, &SourceError{Source: src.Name(), Op: fmt.Sprintf("scan %q", rel), Err: err}
		}
		db.Put(rel, set)
	}
	return db, nil
}

// Probe reports a source's observable resilience state, for sync
// reports: the breaker state name ("" when the source has no breaker)
// and the attempt count of the last operation (0 when unknown).
func Probe(src Source) (breaker string, attempts int) {
	return probeBreaker(src), probeAttempts(src)
}

// SourceHealth describes one member database after a sync pass.
type SourceHealth struct {
	Name     string
	Err      string // "" when the member was reachable
	Attempts int    // fetch attempts of the failing/last operation (0 = unknown)
	Breaker  string // breaker state name, "" when the source has none
}

// Report describes how degraded a best-effort answer is: the health of
// every member database at evaluation time and the query conjuncts that
// could not be grounded because their member was unreachable. Its
// rendering carries no wall-clock values, so a scripted chaos run is
// byte-reproducible.
type Report struct {
	Sources []SourceHealth // every mounted member, sorted by name
	Skipped []string       // conjuncts whose member database was dropped
}

// Degraded reports whether any member was unreachable.
func (r *Report) Degraded() bool {
	for _, s := range r.Sources {
		if s.Err != "" {
			return true
		}
	}
	return false
}

// Unavailable lists the unreachable members, sorted.
func (r *Report) Unavailable() []string {
	var out []string
	for _, s := range r.Sources {
		if s.Err != "" {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Health returns one member's status by name.
func (r *Report) Health(name string) (SourceHealth, bool) {
	for _, s := range r.Sources {
		if s.Name == name {
			return s, true
		}
	}
	return SourceHealth{}, false
}

// String renders the report deterministically, one line per unreachable
// member plus the skipped conjuncts.
func (r *Report) String() string {
	down := r.Unavailable()
	if len(down) == 0 {
		return fmt.Sprintf("all %d member databases reachable", len(r.Sources))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "degraded: %d/%d member databases unreachable", len(down), len(r.Sources))
	for _, s := range r.Sources {
		if s.Err == "" {
			continue
		}
		fmt.Fprintf(&b, "\n  %s: %s", s.Name, s.Err)
		var notes []string
		if s.Attempts > 0 {
			notes = append(notes, fmt.Sprintf("attempts=%d", s.Attempts))
		}
		if s.Breaker != "" {
			notes = append(notes, "breaker="+s.Breaker)
		}
		if len(notes) > 0 {
			fmt.Fprintf(&b, " (%s)", strings.Join(notes, ", "))
		}
	}
	for _, c := range r.Skipped {
		fmt.Fprintf(&b, "\n  skipped: %s", c)
	}
	return b.String()
}
