package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"idl/internal/object"
	"idl/internal/obs"
)

// ---------------------------------------------------------------------------
// Timeout

// TimeoutSource bounds every operation against a member database with a
// per-operation deadline. A member that stalls longer than d fails the
// operation with context.DeadlineExceeded.
type TimeoutSource struct {
	inner Source
	d     time.Duration
	// timeouts counts operations that died on this wrapper's own
	// deadline (nil-safe; wired by Resilient when Config.Metrics is set).
	timeouts *obs.Counter
}

// timedOut reports whether err is this wrapper's deadline rather than
// the caller's own cancellation, and counts it.
func (t *TimeoutSource) timedOut(parent context.Context, err error) {
	if err != nil && errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil {
		t.timeouts.Inc()
	}
}

// WithTimeout wraps inner; d <= 0 returns inner unchanged.
func WithTimeout(inner Source, d time.Duration) Source {
	if d <= 0 {
		return inner
	}
	return &TimeoutSource{inner: inner, d: d}
}

// Name implements Source.
func (t *TimeoutSource) Name() string { return t.inner.Name() }

// Relations implements Source.
func (t *TimeoutSource) Relations(parent context.Context) ([]string, error) {
	ctx, cancel := context.WithTimeout(parent, t.d)
	defer cancel()
	rels, err := t.inner.Relations(ctx)
	t.timedOut(parent, err)
	return rels, err
}

// Scan implements Source.
func (t *TimeoutSource) Scan(parent context.Context, rel string, yield func(object.Object) bool) error {
	ctx, cancel := context.WithTimeout(parent, t.d)
	defer cancel()
	err := t.inner.Scan(ctx, rel, yield)
	t.timedOut(parent, err)
	return err
}

// Attributes implements Source.
func (t *TimeoutSource) Attributes(parent context.Context, rel string) ([]string, error) {
	ctx, cancel := context.WithTimeout(parent, t.d)
	defer cancel()
	attrs, err := t.inner.Attributes(ctx, rel)
	t.timedOut(parent, err)
	return attrs, err
}

// ---------------------------------------------------------------------------
// Retry

// Retrier retries failed operations with capped exponential backoff and
// deterministic jitter. Scans are buffered internally and replayed to
// the caller only after a fully successful pass, so a retried
// truncation never delivers duplicate or partial data downstream.
//
// It does not retry caller cancellation (the caller's context is dead)
// or ErrOpen (the breaker already decided the member is down).
type Retrier struct {
	inner Source
	max   int // additional attempts after the first
	base  time.Duration
	cap   time.Duration
	sleep func(ctx context.Context, d time.Duration) error // test hook

	// retries counts re-attempts across all operations (nil-safe;
	// wired by Resilient when Config.Metrics is set).
	retries *obs.Counter

	mu           sync.Mutex
	r            rng
	lastAttempts int
}

// NewRetrier wraps inner with max retries (attempts = max+1), backoff
// doubling from base up to cap, and jitter drawn from seed.
func NewRetrier(inner Source, max int, base, cap time.Duration, seed uint64) *Retrier {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if cap < base {
		cap = base
	}
	return &Retrier{inner: inner, max: max, base: base, cap: cap, sleep: sleepCtx, r: newRNG(seed)}
}

// LastAttempts reports how many attempts the most recent operation
// took (1 = first try succeeded).
func (rt *Retrier) LastAttempts() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.lastAttempts
}

// backoff returns the jittered delay before attempt n (n = 1 is the
// first retry): a draw from [d/2, d] where d = min(cap, base·2ⁿ⁻¹).
func (rt *Retrier) backoff(n int) time.Duration {
	d := rt.base << uint(n-1)
	if d > rt.cap || d <= 0 {
		d = rt.cap
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rt.r.next()%uint64(half+1))
}

// retryable reports whether an error is worth another attempt under the
// caller's context.
func retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false // the caller's own deadline or cancellation
	}
	return !errors.Is(err, ErrOpen)
}

// do runs op up to max+1 times.
func (rt *Retrier) do(ctx context.Context, op func() error) error {
	var err error
	attempts := 0
	for {
		attempts++
		err = op()
		if err == nil || attempts > rt.max || !retryable(ctx, err) {
			break
		}
		if serr := rt.sleep(ctx, rt.backoff(attempts)); serr != nil {
			err = serr
			break
		}
	}
	rt.mu.Lock()
	rt.lastAttempts = attempts
	rt.mu.Unlock()
	if attempts > 1 {
		rt.retries.Add(uint64(attempts - 1))
	}
	return err
}

// Name implements Source.
func (rt *Retrier) Name() string { return rt.inner.Name() }

// Relations implements Source.
func (rt *Retrier) Relations(ctx context.Context) (rels []string, err error) {
	err = rt.do(ctx, func() error {
		rels, err = rt.inner.Relations(ctx)
		return err
	})
	return rels, err
}

// Scan implements Source.
func (rt *Retrier) Scan(ctx context.Context, rel string, yield func(object.Object) bool) error {
	var buf []object.Object
	err := rt.do(ctx, func() error {
		buf = buf[:0]
		return rt.inner.Scan(ctx, rel, func(e object.Object) bool {
			buf = append(buf, e)
			return true
		})
	})
	if err != nil {
		return err
	}
	for _, e := range buf {
		if !yield(e) {
			break
		}
	}
	return nil
}

// Attributes implements Source.
func (rt *Retrier) Attributes(ctx context.Context, rel string) (attrs []string, err error) {
	err = rt.do(ctx, func() error {
		attrs, err = rt.inner.Attributes(ctx, rel)
		return err
	})
	return attrs, err
}

// ---------------------------------------------------------------------------
// Circuit breaker

// BreakerState is the classic three-state circuit.
type BreakerState uint8

const (
	// BreakerClosed passes operations through, counting consecutive
	// failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects operations immediately with ErrOpen until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe operation; success closes
	// the circuit, failure reopens it.
	BreakerHalfOpen
)

// String names the state for reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a per-source circuit breaker: after threshold consecutive
// failures it opens and rejects operations without touching the member,
// giving a struggling source air; after cooldown it half-opens and lets
// one probe through.
type Breaker struct {
	inner     Source
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	// opened counts closed/half-open → open transitions; stateGauge
	// mirrors the current state (0 closed, 1 open, 2 half-open). Both are
	// nil-safe and wired by Resilient when Config.Metrics is set.
	opened     *obs.Counter
	stateGauge *obs.Gauge

	mu          sync.Mutex
	hook        func(member string, from, to BreakerState)
	state       BreakerState
	consecutive int
	openedAt    time.Time
	probing     bool
}

// setState records a transition and mirrors it to the state gauge.
// Callers hold b.mu.
func (b *Breaker) setState(s BreakerState) {
	if s == BreakerOpen && b.state != BreakerOpen {
		b.opened.Inc()
	}
	if b.hook != nil && s != b.state {
		b.hook(b.inner.Name(), b.state, s)
	}
	b.state = s
	b.stateGauge.Set(int64(s))
}

// SetHook registers fn to be called on every state transition. fn runs
// synchronously under the breaker's mutex — it must be fast and must
// not call back into the breaker. It feeds the flight recorder's
// breaker events.
func (b *Breaker) SetHook(fn func(member string, from, to BreakerState)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hook = fn
}

// NewBreaker wraps inner. threshold <= 0 defaults to 5; cooldown <= 0
// defaults to 5s.
func NewBreaker(inner Source, threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{inner: inner, threshold: threshold, cooldown: cooldown, now: time.Now}
}

// SetClock replaces the breaker's time source (tests drive cooldown
// expiry with a fake clock).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// State reports the current circuit state, applying any due
// open → half-open transition first.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick()
	return b.state
}

// tick applies the time-driven open → half-open transition. Callers
// hold b.mu.
func (b *Breaker) tick() {
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		b.setState(BreakerHalfOpen)
		b.probing = false
	}
}

// admit decides whether an operation may proceed.
func (b *Breaker) admit() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick()
	switch b.state {
	case BreakerOpen:
		return fmt.Errorf("source %s: %w", b.inner.Name(), ErrOpen)
	case BreakerHalfOpen:
		if b.probing {
			return fmt.Errorf("source %s: probe in flight: %w", b.inner.Name(), ErrOpen)
		}
		b.probing = true
	}
	return nil
}

// record folds an operation outcome into the circuit. Caller
// cancellation is not evidence about the member's health and is not
// counted.
func (b *Breaker) record(ctx context.Context, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.setState(BreakerClosed)
		b.consecutive = 0
		b.probing = false
		return
	}
	if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
		b.probing = false
		return
	}
	b.consecutive++
	if b.state == BreakerHalfOpen || b.consecutive >= b.threshold {
		b.setState(BreakerOpen)
		b.openedAt = b.now()
		b.probing = false
	}
}

// Name implements Source.
func (b *Breaker) Name() string { return b.inner.Name() }

// Relations implements Source.
func (b *Breaker) Relations(ctx context.Context) ([]string, error) {
	if err := b.admit(); err != nil {
		return nil, err
	}
	rels, err := b.inner.Relations(ctx)
	b.record(ctx, err)
	return rels, err
}

// Scan implements Source.
func (b *Breaker) Scan(ctx context.Context, rel string, yield func(object.Object) bool) error {
	if err := b.admit(); err != nil {
		return err
	}
	err := b.inner.Scan(ctx, rel, yield)
	b.record(ctx, err)
	return err
}

// Attributes implements Source.
func (b *Breaker) Attributes(ctx context.Context, rel string) ([]string, error) {
	if err := b.admit(); err != nil {
		return nil, err
	}
	attrs, err := b.inner.Attributes(ctx, rel)
	b.record(ctx, err)
	return attrs, err
}

// ---------------------------------------------------------------------------
// The composed stack

// Config sizes a full resilience stack around one member database.
type Config struct {
	// Timeout bounds each operation (0 disables).
	Timeout time.Duration
	// Retries is how many times a failed operation is re-attempted.
	Retries int
	// RetryBase and RetryCap bound the exponential backoff.
	RetryBase time.Duration
	RetryCap  time.Duration
	// BreakerThreshold consecutive failures open the circuit
	// (0 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is the open → half-open delay.
	BreakerCooldown time.Duration
	// Seed makes retry jitter deterministic.
	Seed uint64
	// Metrics, when set, instruments every layer of the stack under
	// federation.member.<name>.*: timeouts, retries, breaker transitions
	// and the breaker state gauge. nil (the default) disables metrics.
	Metrics *obs.Registry
}

// DefaultConfig is a sane production stack: 2s per operation, two
// retries backing off 10ms→500ms, breaker opening after 5 consecutive
// failures with a 5s cooldown.
func DefaultConfig() Config {
	return Config{
		Timeout:          2 * time.Second,
		Retries:          2,
		RetryBase:        10 * time.Millisecond,
		RetryCap:         500 * time.Millisecond,
		BreakerThreshold: 5,
		BreakerCooldown:  5 * time.Second,
	}
}

// Stack is the composed resilient view of one member database:
// breaker(retrier(timeout(source))) — the breaker outermost so an open
// circuit costs nothing, the timeout innermost so each retry attempt
// gets its own deadline.
type Stack struct {
	src     Source
	breaker *Breaker
	retrier *Retrier
}

// Resilient builds the stack. Zero-valued Config fields disable the
// corresponding layer.
func Resilient(inner Source, cfg Config) *Stack {
	st := &Stack{}
	prefix := "federation.member." + inner.Name() + "."
	s := WithTimeout(inner, cfg.Timeout)
	if ts, ok := s.(*TimeoutSource); ok && cfg.Metrics != nil {
		ts.timeouts = cfg.Metrics.Counter(prefix + "timeouts")
	}
	if cfg.Retries > 0 {
		st.retrier = NewRetrier(s, cfg.Retries, cfg.RetryBase, cfg.RetryCap, cfg.Seed)
		if cfg.Metrics != nil {
			st.retrier.retries = cfg.Metrics.Counter(prefix + "retries")
		}
		s = st.retrier
	}
	if cfg.BreakerThreshold > 0 {
		st.breaker = NewBreaker(s, cfg.BreakerThreshold, cfg.BreakerCooldown)
		if cfg.Metrics != nil {
			st.breaker.opened = cfg.Metrics.Counter(prefix + "breaker_opened")
			st.breaker.stateGauge = cfg.Metrics.Gauge(prefix + "breaker_state")
		}
		s = st.breaker
	}
	st.src = s
	return st
}

// Breaker exposes the stack's circuit breaker (nil when disabled).
func (st *Stack) Breaker() *Breaker { return st.breaker }

// SetBreakerHook implements BreakerHooker: it forwards the transition
// hook to the stack's breaker (a no-op when the breaker is disabled).
func (st *Stack) SetBreakerHook(fn func(member string, from, to BreakerState)) {
	if st.breaker != nil {
		st.breaker.SetHook(fn)
	}
}

// BreakerHooker is implemented by source wrappers whose circuit-breaker
// transitions can be observed. DB.Mount probes mounted sources for it
// so breaker flips land in the flight recorder.
type BreakerHooker interface {
	SetBreakerHook(fn func(member string, from, to BreakerState))
}

// Name implements Source.
func (st *Stack) Name() string { return st.src.Name() }

// Relations implements Source.
func (st *Stack) Relations(ctx context.Context) ([]string, error) { return st.src.Relations(ctx) }

// Scan implements Source.
func (st *Stack) Scan(ctx context.Context, rel string, yield func(object.Object) bool) error {
	return st.src.Scan(ctx, rel, yield)
}

// Attributes implements Source.
func (st *Stack) Attributes(ctx context.Context, rel string) ([]string, error) {
	return st.src.Attributes(ctx, rel)
}

// BreakerState implements the report probe used by the catalog sync.
func (st *Stack) BreakerState() (BreakerState, bool) {
	if st.breaker == nil {
		return BreakerClosed, false
	}
	return st.breaker.State(), true
}

// LastAttempts implements the report probe used by the catalog sync.
func (st *Stack) LastAttempts() int {
	if st.retrier == nil {
		return 0
	}
	return st.retrier.LastAttempts()
}

// breakerStater is probed by sync reports to surface circuit state.
type breakerStater interface {
	BreakerState() (BreakerState, bool)
}

// attemptsReporter is probed by sync reports to surface retry counts.
type attemptsReporter interface {
	LastAttempts() int
}

// probeBreaker extracts a breaker state name from any source wrapper
// that exposes one ("" when none does).
func probeBreaker(s Source) string {
	switch x := s.(type) {
	case *Breaker:
		return x.State().String()
	case breakerStater:
		if st, ok := x.BreakerState(); ok {
			return st.String()
		}
	}
	return ""
}

// probeAttempts extracts the last attempt count (0 = unknown).
func probeAttempts(s Source) int {
	if a, ok := s.(attemptsReporter); ok {
		return a.LastAttempts()
	}
	return 0
}
