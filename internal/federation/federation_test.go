package federation

import (
	"context"
	"errors"
	"testing"
	"time"

	"idl/internal/object"
)

// memberDB builds a small two-relation member database.
func memberDB() *object.Tuple {
	r := object.NewSet()
	r.Add(object.TupleOf("date", object.Date{Year: 1985, Month: 3, Day: 3}, "stkCode", "hp", "clsPrice", 50))
	r.Add(object.TupleOf("date", object.Date{Year: 1985, Month: 3, Day: 4}, "stkCode", "ibm", "clsPrice", 140))
	s := object.NewSet()
	s.Add(object.TupleOf("from", "c001", "to", "hp"))
	db := object.NewTuple()
	db.Put("r", r)
	db.Put("map", s)
	return db
}

func TestMemorySourceFetch(t *testing.T) {
	db := memberDB()
	src := NewMemorySource("euter", db)
	snap, err := Fetch(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Equal(db) {
		t.Errorf("snapshot differs from source:\n%s\n%s", snap, db)
	}
	attrs, err := src.Attributes(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 3 || attrs[0] != "clsPrice" {
		t.Errorf("attributes = %v", attrs)
	}
	if _, err := src.Attributes(context.Background(), "nope"); err == nil {
		t.Error("missing relation should error")
	}
}

func TestMemorySourceHonorsCancellation(t *testing.T) {
	src := NewMemorySource("euter", memberDB())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := src.Relations(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Relations err = %v", err)
	}
	if err := src.Scan(ctx, "r", func(object.Object) bool { return true }); !errors.Is(err, context.Canceled) {
		t.Errorf("Scan err = %v", err)
	}
}

func TestInjectorScriptedFaults(t *testing.T) {
	src := Inject(NewMemorySource("euter", memberDB()), InjectorConfig{
		Script: []Fault{{Kind: FaultError}, {Kind: FaultNone}, {Kind: FaultTruncate, After: 1}},
	})
	ctx := context.Background()
	if _, err := src.Relations(ctx); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 1 should fail injected, got %v", err)
	}
	if _, err := src.Relations(ctx); err != nil {
		t.Fatalf("op 2 should pass, got %v", err)
	}
	n := 0
	err := src.Scan(ctx, "r", func(object.Object) bool { n++; return true })
	if !errors.Is(err, ErrInjected) || n != 1 {
		t.Fatalf("op 3 should truncate after 1 (yielded %d, err %v)", n, err)
	}
	// Past the script: clean.
	if _, err := src.Relations(ctx); err != nil {
		t.Fatalf("op 4 should pass, got %v", err)
	}
	if src.Calls() != 4 || src.Injected() != 2 {
		t.Errorf("calls=%d injected=%d", src.Calls(), src.Injected())
	}
}

func TestInjectorSeededDeterminism(t *testing.T) {
	cfg := InjectorConfig{Seed: 17, ErrorRate: 0.3, SlowRate: 0.2, TruncateRate: 0.1, TruncateAfter: 1}
	run := func() []bool {
		in := Inject(NewMemorySource("euter", memberDB()), cfg)
		var outcomes []bool
		for i := 0; i < 50; i++ {
			_, err := in.Relations(context.Background())
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedule diverged at op %d", i)
		}
	}
}

func TestTimeoutConvertsLatencyToDeadline(t *testing.T) {
	slow := Inject(NewMemorySource("euter", memberDB()), InjectorConfig{
		Script: []Fault{{Kind: FaultLatency, Latency: 2 * time.Second}},
	})
	src := WithTimeout(slow, 5*time.Millisecond)
	start := time.Now()
	_, err := src.Relations(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout did not cut the stall short")
	}
}

func TestRetrierRecoversAndReportsAttempts(t *testing.T) {
	flaky := Inject(NewMemorySource("euter", memberDB()), InjectorConfig{
		Script: []Fault{{Kind: FaultError}, {Kind: FaultError}},
	})
	rt := NewRetrier(flaky, 2, time.Millisecond, 4*time.Millisecond, 7)
	slept := 0
	rt.sleep = func(context.Context, time.Duration) error { slept++; return nil }
	rels, err := rt.Relations(context.Background())
	if err != nil || len(rels) != 2 {
		t.Fatalf("rels=%v err=%v", rels, err)
	}
	if rt.LastAttempts() != 3 || slept != 2 {
		t.Errorf("attempts=%d slept=%d", rt.LastAttempts(), slept)
	}
}

func TestRetrierScanBuffersPartialResults(t *testing.T) {
	// First scan truncates after 1 element; the retry succeeds. The
	// consumer must see exactly the full relation, no duplicates.
	flaky := Inject(NewMemorySource("euter", memberDB()), InjectorConfig{
		Script: []Fault{{Kind: FaultTruncate, After: 1}},
	})
	rt := NewRetrier(flaky, 1, time.Millisecond, time.Millisecond, 7)
	rt.sleep = func(context.Context, time.Duration) error { return nil }
	got := object.NewSet()
	n := 0
	if err := rt.Scan(context.Background(), "r", func(e object.Object) bool { n++; got.Add(e); return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2 || got.Len() != 2 {
		t.Errorf("yielded %d elements (%d distinct), want 2", n, got.Len())
	}
}

func TestRetrierGivesUpAndStopsOnCancel(t *testing.T) {
	dead := Inject(NewMemorySource("euter", memberDB()), InjectorConfig{ErrorRate: 1})
	rt := NewRetrier(dead, 2, time.Millisecond, time.Millisecond, 7)
	rt.sleep = func(context.Context, time.Duration) error { return nil }
	if _, err := rt.Relations(context.Background()); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if rt.LastAttempts() != 3 {
		t.Errorf("attempts = %d, want 3", rt.LastAttempts())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rt.Relations(ctx); rt.LastAttempts() != 1 || err == nil {
		t.Errorf("cancelled caller retried: attempts=%d err=%v", rt.LastAttempts(), err)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	dead := Inject(NewMemorySource("euter", memberDB()), InjectorConfig{
		Script: []Fault{{Kind: FaultError}, {Kind: FaultError}},
	})
	clock := time.Unix(1000, 0)
	b := NewBreaker(dead, 2, time.Second)
	b.SetClock(func() time.Time { return clock })
	ctx := context.Background()

	// Two consecutive failures trip the circuit.
	if _, err := b.Relations(ctx); !errors.Is(err, ErrInjected) {
		t.Fatalf("first failure: %v", err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 1 failure = %v", b.State())
	}
	if _, err := b.Relations(ctx); !errors.Is(err, ErrInjected) {
		t.Fatalf("second failure: %v", err)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after 2 failures = %v", b.State())
	}
	// Open: rejected without consulting the member (script is spent, so
	// a pass-through would succeed).
	if _, err := b.Relations(ctx); !errors.Is(err, ErrOpen) {
		t.Fatalf("open circuit let a call through: %v", err)
	}
	// Cooldown elapses → half-open; the probe succeeds → closed.
	clock = clock.Add(2 * time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v", b.State())
	}
	if _, err := b.Relations(ctx); err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe = %v", b.State())
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	dead := Inject(NewMemorySource("euter", memberDB()), InjectorConfig{ErrorRate: 1})
	clock := time.Unix(1000, 0)
	b := NewBreaker(dead, 1, time.Second)
	b.SetClock(func() time.Time { return clock })
	ctx := context.Background()
	b.Relations(ctx) // trips immediately (threshold 1)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v", b.State())
	}
	clock = clock.Add(time.Second)
	if _, err := b.Relations(ctx); !errors.Is(err, ErrInjected) {
		t.Fatalf("probe err = %v", err)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("failed probe must reopen, state = %v", b.State())
	}
}

func TestStackComposition(t *testing.T) {
	flaky := Inject(NewMemorySource("euter", memberDB()), InjectorConfig{
		Script: []Fault{{Kind: FaultError}},
	})
	cfg := DefaultConfig()
	cfg.RetryBase = time.Microsecond
	cfg.RetryCap = time.Microsecond
	st := Resilient(flaky, cfg)
	snap, err := Fetch(context.Background(), st)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 2 {
		t.Errorf("snapshot relations = %d", snap.Len())
	}
	breaker, attempts := Probe(st)
	if breaker != "closed" || attempts < 1 {
		t.Errorf("probe = %q/%d", breaker, attempts)
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{
		Sources: []SourceHealth{
			{Name: "chwab", Err: `relations: injected fault`, Attempts: 3, Breaker: "open"},
			{Name: "euter"},
			{Name: "ource"},
		},
		Skipped: []string{".chwab.r(.date=D, .S=P)"},
	}
	want := "degraded: 1/3 member databases unreachable\n" +
		"  chwab: relations: injected fault (attempts=3, breaker=open)\n" +
		"  skipped: .chwab.r(.date=D, .S=P)"
	if got := rep.String(); got != want {
		t.Errorf("report rendering:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if !rep.Degraded() || len(rep.Unavailable()) != 1 {
		t.Error("degraded accessors inconsistent")
	}
	healthy := &Report{Sources: []SourceHealth{{Name: "euter"}}}
	if healthy.Degraded() || healthy.String() != "all 1 member databases reachable" {
		t.Errorf("healthy report: %q", healthy.String())
	}
}

func TestBreakerHook(t *testing.T) {
	dead := Inject(NewMemorySource("euter", memberDB()), InjectorConfig{
		Script: []Fault{{Kind: FaultError}, {Kind: FaultError}},
	})
	clock := time.Unix(1000, 0)
	b := NewBreaker(dead, 2, time.Second)
	b.SetClock(func() time.Time { return clock })
	type transition struct {
		member   string
		from, to BreakerState
	}
	var got []transition
	b.SetHook(func(member string, from, to BreakerState) {
		got = append(got, transition{member, from, to})
	})
	ctx := context.Background()

	b.Relations(ctx) // failure 1: still closed, no transition
	b.Relations(ctx) // failure 2: closed -> open
	clock = clock.Add(2 * time.Second)
	b.State()        // open -> half-open
	b.Relations(ctx) // script spent, probe succeeds: half-open -> closed

	want := []transition{
		{"euter", BreakerClosed, BreakerOpen},
		{"euter", BreakerOpen, BreakerHalfOpen},
		{"euter", BreakerHalfOpen, BreakerClosed},
	}
	if len(got) != len(want) {
		t.Fatalf("transitions = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("transition %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestStackForwardsBreakerHook(t *testing.T) {
	dead := Inject(NewMemorySource("euter", memberDB()), InjectorConfig{ErrorRate: 1})
	cfg := DefaultConfig()
	cfg.Retries = 0
	cfg.BreakerThreshold = 1
	st := Resilient(dead, cfg)
	var fired int
	var hooker BreakerHooker = st
	hooker.SetBreakerHook(func(member string, from, to BreakerState) { fired++ })
	st.Relations(context.Background())
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1 (closed -> open)", fired)
	}

	// Disabled breaker: forwarding is a no-op, not a panic.
	cfg.BreakerThreshold = -1
	none := Resilient(dead, cfg)
	if none.Breaker() != nil {
		t.Fatal("breaker should be disabled")
	}
	none.SetBreakerHook(func(string, BreakerState, BreakerState) {})
}
