package federation

import (
	"context"
	"time"

	"idl/internal/object"
	"idl/internal/obs"
)

// meteredSource counts and times every operation against a member
// database, whatever wrappers sit underneath (so breaker rejections and
// retry latency are visible too). It forwards the resilience probes so
// sync reports still see the stack's breaker state and attempt counts.
type meteredSource struct {
	inner Source
	ops   *obs.Counter
	errs  *obs.Counter
	lat   *obs.Histogram
}

// Meter wraps a source with per-operation metrics published under
// federation.member.<name>.{ops,op_errors,op_latency}. name defaults to
// the source's own name; a nil registry returns inner unchanged.
func Meter(name string, inner Source, reg *obs.Registry) Source {
	if reg == nil {
		return inner
	}
	if name == "" {
		name = inner.Name()
	}
	prefix := "federation.member." + name + "."
	return &meteredSource{
		inner: inner,
		ops:   reg.Counter(prefix + "ops"),
		errs:  reg.Counter(prefix + "op_errors"),
		lat:   reg.Histogram(prefix + "op_latency"),
	}
}

func (m *meteredSource) observe(start time.Time, err error) {
	m.ops.Inc()
	if err != nil {
		m.errs.Inc()
	}
	m.lat.Observe(time.Since(start))
}

// Name implements Source.
func (m *meteredSource) Name() string { return m.inner.Name() }

// Relations implements Source.
func (m *meteredSource) Relations(ctx context.Context) ([]string, error) {
	start := time.Now()
	rels, err := m.inner.Relations(ctx)
	m.observe(start, err)
	return rels, err
}

// Scan implements Source.
func (m *meteredSource) Scan(ctx context.Context, rel string, yield func(object.Object) bool) error {
	start := time.Now()
	err := m.inner.Scan(ctx, rel, yield)
	m.observe(start, err)
	return err
}

// Attributes implements Source.
func (m *meteredSource) Attributes(ctx context.Context, rel string) ([]string, error) {
	start := time.Now()
	attrs, err := m.inner.Attributes(ctx, rel)
	m.observe(start, err)
	return attrs, err
}

// BreakerState forwards the report probe through the wrapper.
func (m *meteredSource) BreakerState() (BreakerState, bool) {
	switch x := m.inner.(type) {
	case *Breaker:
		return x.State(), true
	case breakerStater:
		return x.BreakerState()
	}
	return BreakerClosed, false
}

// LastAttempts forwards the report probe through the wrapper.
func (m *meteredSource) LastAttempts() int { return probeAttempts(m.inner) }
