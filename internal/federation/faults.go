package federation

import (
	"context"
	"fmt"
	"sync"
	"time"

	"idl/internal/object"
)

// FaultKind classifies what the injector does to one operation.
type FaultKind uint8

const (
	// FaultNone lets the operation through untouched.
	FaultNone FaultKind = iota
	// FaultError fails the operation immediately with ErrInjected.
	FaultError
	// FaultLatency stalls the operation before it runs (a slow member);
	// the stall honors context cancellation, so a timeout wrapper turns
	// it into context.DeadlineExceeded.
	FaultLatency
	// FaultTruncate lets a Scan deliver a prefix of its elements and
	// then fails it — a connection dropped mid-transfer. Non-scan
	// operations treat it as FaultError.
	FaultTruncate
)

// String names the fault kind for reports and test output.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultError:
		return "error"
	case FaultLatency:
		return "latency"
	case FaultTruncate:
		return "truncate"
	default:
		return "unknown"
	}
}

// Fault is one scripted injection decision.
type Fault struct {
	Kind    FaultKind
	Latency time.Duration // FaultLatency: how long the operation stalls
	After   int           // FaultTruncate: elements delivered before the cut
}

// InjectorConfig drives an Injector. With a Script, faults are consumed
// one per operation in order (operations past the script run clean) —
// the form chaos tests use to assert exact breaker schedules. Without a
// Script, each operation draws independently from the seeded rates,
// which is what the CLI's -chaos-seed exposes: the same seed over the
// same operation sequence always injects the same faults.
type InjectorConfig struct {
	Seed uint64
	// ErrorRate, SlowRate, TruncateRate are per-operation probabilities
	// in [0, 1], tested in that order.
	ErrorRate    float64
	SlowRate     float64
	TruncateRate float64
	// Latency is the stall applied by seeded latency faults.
	Latency time.Duration
	// TruncateAfter is how many elements a seeded truncation delivers.
	TruncateAfter int
	// Script, when non-empty, overrides the rates entirely.
	Script []Fault
}

// Injector wraps a Source with a deterministic fault schedule. It is
// safe for concurrent use, but determinism of course also requires a
// deterministic operation order from the caller.
type Injector struct {
	inner Source
	cfg   InjectorConfig

	mu       sync.Mutex
	r        rng
	calls    int
	injected int
}

// Inject wraps inner with the given fault schedule.
func Inject(inner Source, cfg InjectorConfig) *Injector {
	return &Injector{inner: inner, cfg: cfg, r: newRNG(cfg.Seed)}
}

// Calls reports how many operations the injector has seen.
func (in *Injector) Calls() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls
}

// Injected reports how many operations were faulted.
func (in *Injector) Injected() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// draw consumes the next fault decision.
func (in *Injector) draw() Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	idx := in.calls
	in.calls++
	var f Fault
	switch {
	case len(in.cfg.Script) > 0:
		if idx < len(in.cfg.Script) {
			f = in.cfg.Script[idx]
		}
	case in.r.chance(in.cfg.ErrorRate):
		f = Fault{Kind: FaultError}
	case in.r.chance(in.cfg.SlowRate):
		f = Fault{Kind: FaultLatency, Latency: in.cfg.Latency}
	case in.r.chance(in.cfg.TruncateRate):
		f = Fault{Kind: FaultTruncate, After: in.cfg.TruncateAfter}
	}
	if f.Kind != FaultNone {
		in.injected++
	}
	return f
}

// Name implements Source.
func (in *Injector) Name() string { return in.inner.Name() }

// Relations implements Source.
func (in *Injector) Relations(ctx context.Context) ([]string, error) {
	if err := in.pre(ctx, in.draw()); err != nil {
		return nil, err
	}
	return in.inner.Relations(ctx)
}

// Attributes implements Source.
func (in *Injector) Attributes(ctx context.Context, rel string) ([]string, error) {
	if err := in.pre(ctx, in.draw()); err != nil {
		return nil, err
	}
	return in.inner.Attributes(ctx, rel)
}

// Scan implements Source. A truncation fault yields a prefix and then
// fails the scan, as a dropped connection would.
func (in *Injector) Scan(ctx context.Context, rel string, yield func(object.Object) bool) error {
	f := in.draw()
	if f.Kind == FaultTruncate {
		n := 0
		err := in.inner.Scan(ctx, rel, func(e object.Object) bool {
			if n >= f.After {
				return false
			}
			n++
			return yield(e)
		})
		if err != nil {
			return err
		}
		return fmt.Errorf("scan truncated after %d elements: %w", n, ErrInjected)
	}
	if err := in.pre(ctx, f); err != nil {
		return err
	}
	return in.inner.Scan(ctx, rel, yield)
}

// pre applies error and latency faults before an operation runs.
func (in *Injector) pre(ctx context.Context, f Fault) error {
	switch f.Kind {
	case FaultError, FaultTruncate:
		return fmt.Errorf("%w", ErrInjected)
	case FaultLatency:
		return sleepCtx(ctx, f.Latency)
	}
	return nil
}

// sleepCtx waits for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
